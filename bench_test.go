// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Run them all with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigure*/BenchmarkTable* iteration produces the complete
// table/figure, so ns/op reports how long the experiment takes to
// regenerate; the b.N=1 outputs of cmd/lia-bench are the human-readable
// form. Micro-benchmarks of the core primitives (AMX tile matmul, the
// 64-policy optimizer, the overlapped scheduler, the functional
// transformer) follow.
package lia_test

import (
	"context"
	"testing"

	"github.com/lia-sim/lia"
	"github.com/lia-sim/lia/internal/amx"
	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/experiments"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/quant"
	"github.com/lia-sim/lia/internal/tensor"
	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

// sink prevents dead-code elimination of benchmark results.
var sink any

func BenchmarkFigure1OpsPerByte(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Figure1()
	}
}

func BenchmarkFigure3TransferBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Figure3()
	}
}

func BenchmarkFigure4ComputeOffload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Figure4()
	}
}

func BenchmarkFigure5Microbench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gemm, gemv := experiments.Figure5()
		sink = [2]any{gemm, gemv}
	}
}

func BenchmarkFigure8CXLCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fa, fb := experiments.Figure8()
		sink = [2]any{fa, fb}
	}
}

func BenchmarkFigure9PolicyMaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pre, dec := experiments.Figure9(hw.SPRA100)
		sink = [2]any{pre, dec}
	}
}

func BenchmarkFigure10OnlineLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Figure10()
	}
}

func BenchmarkFigure11OfflineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Figure11()
	}
}

func BenchmarkFigure12Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Figure12()
	}
}

func BenchmarkFigure13GNRvsH100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, off := experiments.Figure13()
		sink = [2]any{on, off}
	}
}

func BenchmarkFigure14MultiGPUCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tput, cost := experiments.Figure14()
		sink = [2]any{tput, cost}
	}
}

func BenchmarkFigure15PowerInfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, off := experiments.Figure15()
		sink = [2]any{on, off}
	}
}

func BenchmarkTable1Formulas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Table1(180, 512)
	}
}

func BenchmarkTable3CXLOffloading(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Table3()
	}
}

func BenchmarkTable4Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Table4()
	}
}

func BenchmarkTable5Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Table5()
	}
}

func BenchmarkTable6GNRScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Table6()
	}
}

func BenchmarkGeneralizability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Generalizability()
	}
}

func BenchmarkDiscussion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = [3]any{experiments.GraceHopper(), experiments.CheaperGPUs(), experiments.CXLCostSavings()}
	}
}

// --- primitive micro-benchmarks -------------------------------------

// BenchmarkPolicyOptimizer measures one Eq. (1) solve: evaluating all 64
// offloading vectors for a decoder layer.
func BenchmarkPolicyOptimizer(b *testing.B) {
	env := core.NewEnv(hw.SPRA100, model.OPT175B)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, t := core.Optimize(env, model.Decode, 64, 512)
		sink = [2]any{p, t}
	}
}

// BenchmarkEngineOnline measures one full online estimate (prefill +
// 32-token decode) through the overlapped scheduler.
func BenchmarkEngineOnline(b *testing.B) {
	cfg := engine.Config{
		Framework: engine.LIA,
		System:    hw.SPRA100,
		Model:     model.OPT30B,
		Workload:  trace.Workload{Batch: 1, InputLen: 512, OutputLen: 32},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := engine.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sink = r
	}
}

// BenchmarkAMXMatmul measures the emulated tile pipeline on a 128³ GEMM.
func BenchmarkAMXMatmul(b *testing.B) {
	const n = 128
	a := make([]float32, n*n)
	bb := make([]float32, n*n)
	for i := range a {
		a[i] = float32(i%7) - 3
		bb[i] = float32(i%5) - 2
	}
	b.ReportAllocs()
	b.SetBytes(int64(3 * n * n * 4))
	for i := 0; i < b.N; i++ {
		c, _, err := amx.MatmulBF16(a, bb, n, n, n)
		if err != nil {
			b.Fatal(err)
		}
		sink = c
	}
}

// BenchmarkAMXMatmulPacked measures the same 128³ GEMM with the
// right-hand operand prepacked once — the steady-state weight path the
// functional executor runs.
func BenchmarkAMXMatmulPacked(b *testing.B) {
	const n = 128
	a := make([]float32, n*n)
	bb := make([]float32, n*n)
	for i := range a {
		a[i] = float32(i%7) - 3
		bb[i] = float32(i%5) - 2
	}
	pre, err := amx.PrepackBF16(bb, n, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(3 * n * n * 4))
	for i := 0; i < b.N; i++ {
		c, _, err := amx.MatmulBF16Packed(a, n, pre)
		if err != nil {
			b.Fatal(err)
		}
		sink = c
	}
}

// BenchmarkAMXMatmulSparse measures the 128³ GEMM with the right-hand
// operand pruned to 50% tile-block sparsity and prepacked with the
// zero-block bitmap — the compressed-tier CPU path. The ratio against
// BenchmarkAMXMatmulPacked is the skip win at this sparsity.
func BenchmarkAMXMatmulSparse(b *testing.B) {
	const n = 128
	a := make([]float32, n*n)
	w := tensor.New(n, n)
	for i := range a {
		a[i] = float32(i%7) - 3
		w.Data[i] = float32(i%5) - 2
	}
	pruned, _ := quant.PruneBlocks(w, 0.5)
	pre, err := amx.PrepackBF16Sparse(pruned.Data, n, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(3 * n * n * 4))
	for i := 0; i < b.N; i++ {
		c, _, err := amx.MatmulBF16Packed(a, n, pre)
		if err != nil {
			b.Fatal(err)
		}
		sink = c
	}
}

// BenchmarkINT4LUTGEMV measures a single-row 128→128 projection through
// the INT4 LUT-GEMV kernel — the decode-path shape the tier serves.
func BenchmarkINT4LUTGEMV(b *testing.B) {
	const n = 128
	w := tensor.New(n, n)
	for i := range w.Data {
		w.Data[i] = float32(i%5) - 2
	}
	q, err := quant.QuantizeINT4(w, 0)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(1, n)
	for j := range x.Data {
		x.Data[j] = float32(j%7) - 3
	}
	b.ReportAllocs()
	b.SetBytes(int64(n*4 + q.Bytes() + n*4))
	for i := 0; i < b.N; i++ {
		c, _, err := quant.LinearINT4LUT(x, q)
		if err != nil {
			b.Fatal(err)
		}
		sink = c.Data
	}
}

// BenchmarkAMXMatmulINT8Packed is the TDPBUSD mirror of
// BenchmarkAMXMatmulPacked.
func BenchmarkAMXMatmulINT8Packed(b *testing.B) {
	const n = 128
	a := make([]uint8, n*n)
	bb := make([]int8, n*n)
	for i := range a {
		a[i] = uint8(i)
		bb[i] = int8(i % 127)
	}
	pre, err := amx.PrepackINT8(bb, n, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(2*n*n + n*n*4))
	for i := 0; i < b.N; i++ {
		c, _, err := amx.MatmulINT8Packed(a, n, pre)
		if err != nil {
			b.Fatal(err)
		}
		sink = c
	}
}

// BenchmarkAMXMatmulSparseINT8 is the TDPBUSD mirror of
// BenchmarkAMXMatmulSparse: the same 128³ GEMM with the int8 weight
// operand zeroed to 50% tile-block sparsity and prepacked with the
// zero-block bitmap, so half the TileLoad+TDPBUSD pairs never enter the
// pipeline. The ratio against BenchmarkAMXMatmulINT8Packed is the
// sparse-int8 tier's skip win at this sparsity.
func BenchmarkAMXMatmulSparseINT8(b *testing.B) {
	const n = 128
	a := make([]uint8, n*n)
	bb := make([]int8, n*n)
	for i := range a {
		a[i] = uint8(i)
		bb[i] = int8(i % 127)
	}
	// Zero alternating weight blocks at the INT8 skip granularity.
	bk, bn := amx.BlockShapeINT8()
	for bi := 0; bi < n/bk; bi++ {
		for bj := 0; bj < n/bn; bj++ {
			if (bi+bj)%2 != 0 {
				continue
			}
			for r := bi * bk; r < (bi+1)*bk; r++ {
				for c := bj * bn; c < (bj+1)*bn; c++ {
					bb[r*n+c] = 0
				}
			}
		}
	}
	pre, err := amx.PrepackINT8Sparse(bb, n, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(2*n*n + n*n*4))
	for i := 0; i < b.N; i++ {
		c, _, err := amx.MatmulINT8Packed(a, n, pre)
		if err != nil {
			b.Fatal(err)
		}
		sink = c
	}
}

// BenchmarkTDPBF16PS measures one full-size TDPBF16PS tile op
// (16×16 C += 16×32 A · 32×16 B) through the byte-accurate oracle and the
// decoded fast path. The two sub-benchmarks run identical instruction
// sequences — zero the accumulator, one TMUL op — so their ratio is the
// pure operand-transport win the decoded tier buys.
func BenchmarkTDPBF16PS(b *testing.B) {
	const m, n, kPairs = 16, 16, 16
	lanes := 2 * kPairs
	cfg := amx.TileConfig{}
	cfg.Tiles[0] = amx.TileShape{Rows: m, ColBytes: n * 4}
	cfg.Tiles[1] = amx.TileShape{Rows: m, ColBytes: kPairs * 4}
	cfg.Tiles[2] = amx.TileShape{Rows: kPairs, ColBytes: n * 4}
	src := make([]float32, m*lanes)
	for i := range src {
		src[i] = float32(i%13)*0.25 - 1.5
	}
	aImg := amx.PackBF16(src, m, lanes, m, lanes)
	bImg := amx.PackBF16VNNI(src[:lanes*n], lanes, n, lanes, n)

	b.Run("byte", func(b *testing.B) {
		u := amx.NewUnit()
		if err := u.Configure(cfg); err != nil {
			b.Fatal(err)
		}
		if err := u.TileLoad(1, aImg, kPairs*4); err != nil {
			b.Fatal(err)
		}
		if err := u.TileLoad(2, bImg, n*4); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := u.TileZero(0); err != nil {
				b.Fatal(err)
			}
			if err := u.TDPBF16PS(0, 1, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decoded", func(b *testing.B) {
		u := amx.NewUnit()
		if err := u.Configure(cfg); err != nil {
			b.Fatal(err)
		}
		cDec := make([]float32, m*n)
		aDec := make([]float32, m*lanes)
		bCols := make([]float32, n*lanes)
		for i := range aDec {
			aDec[i] = amx.RoundFloat32(src[i])
		}
		for j := 0; j < n; j++ {
			for k := 0; k < lanes; k++ {
				bCols[j*lanes+k] = amx.RoundFloat32(src[k*n+j])
			}
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := u.TileZeroCheck(0); err != nil {
				b.Fatal(err)
			}
			clear(cDec)
			if err := u.TDPBF16PSDecoded(0, 1, 2, cDec, n, aDec, lanes, bCols, lanes); err != nil {
				b.Fatal(err)
			}
		}
		sink = cDec
	})
}

// BenchmarkTDPBUSD is the INT8 mirror of BenchmarkTDPBF16PS: one
// full-size TDPBUSD tile op (16×16 C += 16×64 A · 64×16 B) per tier.
func BenchmarkTDPBUSD(b *testing.B) {
	const m, n, kQuads = 16, 16, 16
	lanes := 4 * kQuads
	cfg := amx.TileConfig{}
	cfg.Tiles[0] = amx.TileShape{Rows: m, ColBytes: n * 4}
	cfg.Tiles[1] = amx.TileShape{Rows: m, ColBytes: kQuads * 4}
	cfg.Tiles[2] = amx.TileShape{Rows: kQuads, ColBytes: n * 4}
	aSrc := make([]uint8, m*lanes)
	bSrc := make([]int8, lanes*n)
	for i := range aSrc {
		aSrc[i] = uint8(i * 11)
	}
	for i := range bSrc {
		bSrc[i] = int8(i%253 - 126)
	}
	aImg := amx.PackU8(aSrc, m, lanes, m, lanes)
	bImg := amx.PackS8VNNI(bSrc, lanes, n, lanes, n)

	b.Run("byte", func(b *testing.B) {
		u := amx.NewUnit()
		if err := u.Configure(cfg); err != nil {
			b.Fatal(err)
		}
		if err := u.TileLoad(1, aImg, kQuads*4); err != nil {
			b.Fatal(err)
		}
		if err := u.TileLoad(2, bImg, n*4); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := u.TileZero(0); err != nil {
				b.Fatal(err)
			}
			if err := u.TDPBUSD(0, 1, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decoded", func(b *testing.B) {
		u := amx.NewUnit()
		if err := u.Configure(cfg); err != nil {
			b.Fatal(err)
		}
		cDec := make([]int32, m*n)
		bCols := make([]int8, n*lanes)
		for j := 0; j < n; j++ {
			for k := 0; k < lanes; k++ {
				bCols[j*lanes+k] = bSrc[k*n+j]
			}
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := u.TileZeroCheck(0); err != nil {
				b.Fatal(err)
			}
			clear(cDec)
			if err := u.TDPBUSDDecoded(0, 1, 2, cDec, n, aSrc, lanes, bCols, lanes); err != nil {
				b.Fatal(err)
			}
		}
		sink = cDec
	})
}

// BenchmarkFunctionalGenerateBatch measures an 8-sequence batch decoded
// in parallel on the runner pool with shared packed-weight caches.
func BenchmarkFunctionalGenerateBatch(b *testing.B) {
	m, err := lia.NewFunctionalModel(lia.TinyModelConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	exe := lia.NewFunctionalExecutor(m, lia.PartialCPU)
	prompts := make([][]int, 8)
	for i := range prompts {
		prompts[i] = []int{1 + i, 2 + i, 3 + i}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := exe.GenerateBatch(prompts, 16)
		if err != nil {
			b.Fatal(err)
		}
		sink = out
	}
}

// BenchmarkFunctionalDecodeStep measures one decode step of the tiny
// functional transformer under the partial-offload policy.
func BenchmarkFunctionalDecodeStep(b *testing.B) {
	m, err := lia.NewFunctionalModel(lia.TinyModelConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	exe := lia.NewFunctionalExecutor(m, lia.PartialCPU)
	_, cache, err := exe.Prefill([]int{1, 2, 3, 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		logits, err := exe.DecodeStep(cache, 5)
		if err != nil {
			b.Fatal(err)
		}
		sink = logits
		if cache.Len() > 100 {
			_, cache, _ = exe.Prefill([]int{1, 2, 3, 4})
		}
	}
}

// BenchmarkSpecDecode measures draft-and-verify speculative decoding of
// a low-entropy (draft-friendly) prompt: a 1-layer shared-weight draft
// proposes γ=3 tokens per round and the target scores them in one
// multi-row VerifyStep pass. Output is bit-identical to plain Generate.
func BenchmarkSpecDecode(b *testing.B) {
	m, err := lia.NewFunctionalModel(lia.TinyModelConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	exe := lia.NewFunctionalExecutor(m, lia.PartialCPU)
	dm, err := lia.NewDraftModel(m, 1)
	if err != nil {
		b.Fatal(err)
	}
	draft := lia.NewFunctionalExecutor(dm, lia.PartialCPU)
	gen, err := trace.NewLowEntropyGenerator(trace.LowEntropySpec{
		Vocab: lia.TinyModelConfig().VocabSize, HotTokens: 4, RepeatProb: 0.8,
		MinLen: 16, MaxLen: 16,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	prompt := gen.Next().Prompt
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, stats, err := exe.SpecGenerate(prompt, 32, draft, 3)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Rounds == 0 {
			b.Fatal("speculative loop never ran a verify round")
		}
		sink = out
	}
}

// BenchmarkChunkedPrefill measures a long prompt prefilled in 8-token
// chunks (the gateway's decode-interleaved TTFT path) followed by a
// short decode, end to end.
func BenchmarkChunkedPrefill(b *testing.B) {
	m, err := lia.NewFunctionalModel(lia.TinyModelConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	exe := lia.NewFunctionalExecutor(m, lia.PartialCPU)
	prompt := make([]int, 96)
	for i := range prompt {
		prompt[i] = 1 + (i*7)%100
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := exe.NewSequenceChunked(prompt, 4, 8, nil)
		if err != nil {
			b.Fatal(err)
		}
		for s.Prefilling() {
			if _, err := s.AdvancePrefill(); err != nil {
				b.Fatal(err)
			}
		}
		for !s.Done() {
			if _, err := s.Step(); err != nil {
				b.Fatal(err)
			}
		}
		sink = s.Output()
		s.Release()
	}
}

// BenchmarkBatchedDecodeRound measures one cross-sequence fused decode
// round: 8 sequences advanced by StepBatchFused, which stacks the four
// parameter sublayers of the whole batch into one GEMM each.
func BenchmarkBatchedDecodeRound(b *testing.B) {
	m, err := lia.NewFunctionalModel(lia.TinyModelConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	exe := lia.NewFunctionalExecutor(m, lia.PartialCPU)
	build := func() []*lia.FunctionalSequence {
		seqs := make([]*lia.FunctionalSequence, 8)
		for i := range seqs {
			s, err := exe.NewSequence([]int{1 + i, 2 + i, 3 + i}, 120)
			if err != nil {
				b.Fatal(err)
			}
			seqs[i] = s
		}
		return seqs
	}
	seqs := build()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if seqs[0].Done() {
			for _, s := range seqs {
				s.Release()
			}
			seqs = build()
		}
		if err := exe.StepBatchFused(ctx, seqs); err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range seqs {
		s.Release()
	}
}

func BenchmarkModelingAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.ModelingAblations()
	}
}

func BenchmarkQuantizationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.QuantizationStudy()
	}
}

func BenchmarkMultiGPUScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.MultiGPUScaling()
	}
}

// BenchmarkAMXMatmulINT8 measures the emulated TDPBUSD pipeline on a
// 128³ product.
func BenchmarkAMXMatmulINT8(b *testing.B) {
	const n = 128
	a := make([]uint8, n*n)
	bb := make([]int8, n*n)
	for i := range a {
		a[i] = uint8(i)
		bb[i] = int8(i % 127)
	}
	b.ReportAllocs()
	b.SetBytes(int64(2*n*n + n*n*4))
	for i := 0; i < b.N; i++ {
		c, _, err := amx.MatmulINT8(a, bb, n, n, n)
		if err != nil {
			b.Fatal(err)
		}
		sink = c
	}
}

// BenchmarkServing measures one serving simulation of 32 requests.
func BenchmarkServing(b *testing.B) {
	gen, err := lia.NewTraceGenerator(lia.TraceCode, 32, 512, 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := lia.PoissonArrivals(gen, 32, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := lia.ServeConfig{
		System: lia.SPRA100, Model: lia.OPT30B, Framework: lia.LIA,
		MaxBatch: 8, MaxWait: 2, AssumeHostCapacity: true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := lia.Serve(cfg, reqs)
		if err != nil {
			b.Fatal(err)
		}
		sink = m
	}
}

func BenchmarkSpeculativeDecoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.SpeculativeDecoding()
	}
}

func BenchmarkStorageTiers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.StorageTiers()
	}
}

func BenchmarkParallelismComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.ParallelismComparison()
	}
}

func BenchmarkMoEAdaptability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.MoEAdaptability()
	}
}

// BenchmarkTokenizerEncode measures BPE encoding of a ~200-byte string.
func BenchmarkTokenizerEncode(b *testing.B) {
	tok, err := lia.TrainTokenizer(`the quick brown fox jumps over the lazy dog.
large language models generate tokens one at a time. the key value cache
grows with the sequence. parameters stream over the interconnect.`, 384)
	if err != nil {
		b.Fatal(err)
	}
	s := "the lazy language model streams parameters over the interconnect one token at a time"
	b.ReportAllocs()
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		sink = tok.Encode(s)
	}
}

// BenchmarkKVPageChurn measures allocator throughput under an
// admit/extend/release churn typical of continuous batching.
func BenchmarkKVPageChurn(b *testing.B) {
	mgr, err := kvpage.ForModel(200*units.GB, 16, model.OPT30B)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := i
		if err := mgr.Admit(id, 300); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 32; j++ {
			if err := mgr.Extend(id); err != nil {
				b.Fatal(err)
			}
		}
		if err := mgr.Release(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContinuousServing measures the iteration-level scheduler.
func BenchmarkContinuousServing(b *testing.B) {
	gen, err := lia.NewTraceGenerator(lia.TraceCode, 32, 256, 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := lia.PoissonArrivals(gen, 24, 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := lia.ServeConfig{
		System: lia.SPRA100, Model: lia.OPT30B, Framework: lia.LIA,
		MaxBatch: 8, MaxWait: 2, AssumeHostCapacity: true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := lia.ServeContinuous(cfg, reqs)
		if err != nil {
			b.Fatal(err)
		}
		sink = m
	}
}

func BenchmarkFigure7Overlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pre, dec := experiments.Figure7()
		sink = [2]any{pre, dec}
	}
}
