package lia

import (
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/token"
)

// Functional-engine types: a runnable transformer whose sublayers are
// routed through an emulated AMX tile pipeline (CPU-assigned) or dense
// kernels (GPU-assigned) according to an offloading policy.
type (
	// FunctionalModel holds a runnable transformer's weights.
	FunctionalModel = llm.Model
	// FunctionalExecutor runs a FunctionalModel under a Policy.
	FunctionalExecutor = llm.Executor
)

// TinyModelConfig returns a laptop-scale architecture with the OPT
// decoder structure, suitable for functional runs and tests.
func TinyModelConfig() ModelConfig { return llm.TinyConfig() }

// TinyLlamaConfig returns a laptop-scale architecture with Llama2's
// structural features — grouped-query attention and a SwiGLU gated FFN —
// for functional runs of the §7.7/§7.9 model family.
func TinyLlamaConfig() ModelConfig { return llm.TinyLlamaConfig() }

// NewFunctionalModel builds a runnable transformer with deterministic
// random weights (the paper's artifact uses dummy weights too, §A.5).
// Any ModelConfig works; keep dimensions laptop-scale — every multiply
// really executes.
func NewFunctionalModel(cfg ModelConfig, seed int64) (*FunctionalModel, error) {
	return llm.NewRandom(cfg, seed)
}

// NewFunctionalExecutor wires a functional model to an offloading policy.
// CPU-assigned sublayers execute through the AMX emulator (real tile
// loads and TDPBF16PS semantics); GPU-assigned ones through plain BF16
// GEMM. Generated tokens are identical for every policy.
func NewFunctionalExecutor(m *FunctionalModel, p Policy) *FunctionalExecutor {
	return llm.NewExecutor(m, p)
}

// Sublayer names re-exported for policy construction.
const (
	// QKVMapping, QKT, SV, OutProjection, FC1 and FC2 index the six
	// decoder sublayers of an offloading vector, in execution order.
	QKVMapping = model.QKVMapping
	QKT        = model.QKT
	SV         = model.SV
	OutProj    = model.OutProjection
	FC1        = model.FC1
	FC2        = model.FC2
)

// SaveModel writes a functional model to disk in the BF16 checkpoint
// container (about 2 bytes per parameter).
func SaveModel(path string, m *FunctionalModel) error {
	return llm.SaveCheckpointFile(path, m)
}

// LoadModel reads a checkpoint written by SaveModel.
func LoadModel(path string) (*FunctionalModel, error) {
	return llm.LoadCheckpointFile(path)
}

// FunctionalSequence is an in-flight generation on a FunctionalExecutor:
// cache-resumed decode via Step, chunked prefill via AdvancePrefill
// (NewSequenceChunked), speculative rounds via EnableSpec/SpecStep, and
// cross-sequence fused rounds via FunctionalExecutor.StepBatchFused.
type FunctionalSequence = llm.Sequence

// SpecDecodeStats counts a speculative-decoding run's rounds, drafted,
// accepted and emitted tokens (see FunctionalExecutor.SpecGenerate).
type SpecDecodeStats = llm.SpecStats

// NewDraftModel derives a shallow draft from a target model: its first
// `layers` decoder layers wrapped in the target's own embeddings and
// final norm. The shared weights keep the draft's argmax surface
// correlated with the target's, which is what earns non-trivial
// speculative acceptance rates.
func NewDraftModel(m *FunctionalModel, layers int) (*FunctionalModel, error) {
	return llm.DraftModel(m, layers)
}

// Tokenizer is a byte-level BPE tokenizer — the text front-end ahead of
// the decoder stack.
type Tokenizer = token.Tokenizer

// TrainTokenizer learns a tokenizer from a corpus with at most vocabSize
// tokens (the first 256 are raw bytes, so round trips are lossless).
func TrainTokenizer(corpus string, vocabSize int) (*Tokenizer, error) {
	return token.Train(corpus, vocabSize)
}
