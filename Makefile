GO ?= go

.PHONY: check vet build test race bench bench-functional

# check is the CI gate: vet, build everything, then the full test suite
# under the race detector (the runner pool and shared caches are
# concurrent by default, so -race is not optional here).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=^$$ .

# bench-functional runs the allocation-sensitive micro-benchmarks the
# BENCH_functional.json baseline records (decode step, packed vs legacy
# AMX matmul, single tile ops byte vs decoded, parallel batch generation).
bench-functional:
	$(GO) test -bench='BenchmarkFunctionalDecodeStep|BenchmarkAMXMatmul|BenchmarkFunctionalGenerateBatch|BenchmarkTDP' \
		-benchmem -benchtime=2s -run=^$$ .
