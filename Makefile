GO ?= go

.PHONY: check vet build test race bench

# check is the CI gate: vet, build everything, then the full test suite
# under the race detector (the runner pool and shared caches are
# concurrent by default, so -race is not optional here).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
