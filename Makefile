GO ?= go

.PHONY: check vet build test race bench bench-functional bench-gateway bench-offload bench-prefix bench-smoke bench-chunked bench-quant bench-scenario bench-fleet scenario-smoke fleet-smoke fuzz-smoke

# check is the CI gate: vet, build everything, then the full test suite
# under the race detector (the runner pool and shared caches are
# concurrent by default, so -race is not optional here).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=^$$ .

# bench-functional runs the allocation-sensitive micro-benchmarks the
# BENCH_functional.json baseline records (decode step, packed vs legacy
# AMX matmul, block-sparse skip, INT4 LUT-GEMV, single tile ops byte vs
# decoded, parallel batch generation).
bench-functional:
	$(GO) test -bench='BenchmarkFunctionalDecodeStep|BenchmarkAMXMatmul|BenchmarkINT4LUTGEMV|BenchmarkFunctionalGenerateBatch|BenchmarkTDP' \
		-benchmem -benchtime=2s -run=^$$ .

# bench-gateway drives the live gateway with concurrent closed-loop
# clients and records sustained req/s plus exact client-side TTFT
# percentiles into BENCH_gateway.json.
bench-gateway:
	$(GO) run ./cmd/lia-serve -live-bench -bench-clients 8 -bench-seconds 3 \
		-max-batch 8 -live-kv-tokens 256 -seed 1 > BENCH_gateway.json
	@cat BENCH_gateway.json

# bench-offload generates the same stream resident and tier-hosted
# (DDR-streamed, CXL-streamed) and records the wall-clock and
# virtual-clock decode latencies into BENCH_offload.json.
bench-offload:
	$(GO) run ./cmd/lia-serve -offload-bench -bench-tokens 32 -seed 1 > BENCH_offload.json
	@cat BENCH_offload.json

# bench-prefix replays a skewed hot-prefix trace with the prefix cache
# off and on, checks the token streams stay bit-identical, and records
# TTFT medians plus the analytic concurrency win into BENCH_prefix.json.
bench-prefix:
	$(GO) run ./cmd/lia-serve -prefix-bench -seed 1 > BENCH_prefix.json
	@cat BENCH_prefix.json

# bench-smoke runs the latency-ladder benchmarks (speculative decode,
# chunked prefill, cross-sequence fused decode round) briefly under the
# race detector — a CI-sized check that the three rungs stay runnable
# and race-free, not a timing source.
bench-smoke:
	$(GO) test -race -bench='BenchmarkSpecDecode|BenchmarkChunkedPrefill|BenchmarkBatchedDecodeRound' \
		-benchtime=100ms -run=^$$ .

# bench-chunked replays a long-prompt + short-burst mix through the live
# gateway with monolithic vs chunked prefill, checks bit-identity, and
# reports short-request TTFT percentiles for both modes.
bench-chunked:
	$(GO) run ./cmd/lia-serve -chunked-bench -prefill-chunk 4 -seed 1

# bench-quant decodes the same stream under the dense, block-sparse,
# and INT4 LUT weight tiers and records per-tier decode speed, serving
# footprint, and accuracy against the dense baseline into
# BENCH_quant.json.
bench-quant:
	$(GO) run ./cmd/lia-serve -quant-bench -live-policy cpu -bench-tokens 64 -seed 1 > BENCH_quant.json
	@cat BENCH_quant.json

# bench-scenario runs the standing scenario-lab matrix (workload
# scenarios × chaos fault plans, N seeded trials per cell with live
# invariant legs) and records the byte-reproducible artifact into
# BENCH_scenario.json; the SLO verdict table prints on stderr.
bench-scenario:
	$(GO) run ./cmd/lia-serve -scenario -seed 1 > BENCH_scenario.json
	@cat BENCH_scenario.json

# bench-fleet replays one saturating code/chat blend burst through
# virtual multi-replica fleets across the scale-study matrix (placement
# policy × replica count 1/2/4/8 × homogeneous-vs-mixed device rotation)
# and records throughput plus TTFT percentiles into BENCH_fleet.json.
bench-fleet:
	$(GO) run ./cmd/lia-serve -fleet-bench -seed 1 > BENCH_fleet.json
	@cat BENCH_fleet.json

# fleet-smoke is the CI-sized cut of the fleet: the live 2-replica
# lifecycle/failover suite, the 1-replica router-vs-bare-gateway
# differential, and the fleet scenario legs, under the race detector.
fleet-smoke:
	$(GO) test -race -run 'TestRouter|TestFleetReplay' -count=1 ./internal/router
	$(GO) test -race -run 'TestFleetScenario' -count=1 ./internal/scenario

# scenario-smoke is the CI-sized cut of the lab: the 2-scenario ×
# 2-fault smoke matrix (2 trials per cell, one live leg each) plus the
# byte-determinism contract, under the race detector.
scenario-smoke:
	$(GO) test -race -run 'TestRunSmokeMatrix|TestExperimentBytesDeterministic|TestCancelStormLiveGateway' \
		-count=1 ./internal/scenario

# fuzz-smoke gives each native fuzz target a short budget — enough to
# exercise the mutator without turning CI into a fuzz farm.
fuzz-smoke:
	$(GO) test -fuzz=FuzzTraceGenerator -fuzztime=10s -run=^$$ ./internal/trace
	$(GO) test -fuzz=FuzzServeConfigValidate -fuzztime=10s -run=^$$ ./internal/serve
	$(GO) test -fuzz=FuzzPlanHost -fuzztime=10s -run=^$$ ./internal/memplan
	$(GO) test -fuzz=FuzzPrefixTree -fuzztime=10s -run=^$$ ./internal/kvprefix
	$(GO) test -fuzz=FuzzSparsePrepack -fuzztime=10s -run=^$$ ./internal/amx
	$(GO) test -fuzz=FuzzRouterPlacement -fuzztime=10s -run=^$$ ./internal/router
