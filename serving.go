package lia

import (
	"github.com/lia-sim/lia/internal/serve"
	"github.com/lia-sim/lia/internal/trace"
)

// Serving-layer types: batch a request stream in front of the engine.
type (
	// ServeConfig parameterizes a serving simulation (system, model,
	// framework, batch cap, batching window).
	ServeConfig = serve.Config
	// ServeMetrics reports latency percentiles, throughput, and batch
	// statistics.
	ServeMetrics = serve.Metrics
	// ServeRequest is a trace request with an arrival time.
	ServeRequest = serve.Request
	// TraceGenerator produces synthetic requests with the §7 Azure-trace
	// statistics.
	TraceGenerator = trace.Generator
	// TraceKind selects the code or conversation trace family.
	TraceKind = trace.Kind
)

// Trace families (§7: output lengths average 32 and 256 tokens).
const (
	// TraceCode mimics the code-completion trace.
	TraceCode = trace.Code
	// TraceConversation mimics the chat trace.
	TraceConversation = trace.Conversation
)

// NewTraceGenerator returns a deterministic request generator with input
// lengths uniform on [minIn, maxIn].
func NewTraceGenerator(kind TraceKind, minIn, maxIn int, seed int64) (*TraceGenerator, error) {
	return trace.NewGenerator(kind, minIn, maxIn, seed)
}

// PoissonArrivals attaches exponential inter-arrival times at the given
// rate (requests/second) to n generated requests.
func PoissonArrivals(gen *TraceGenerator, n int, ratePerSec float64, seed int64) ([]ServeRequest, error) {
	return serve.PoissonArrivals(gen, n, ratePerSec, seed)
}

// Serve simulates batch-serving the request stream and returns the
// operator-facing metrics.
func Serve(cfg ServeConfig, reqs []ServeRequest) (ServeMetrics, error) {
	return serve.Simulate(cfg, reqs)
}

// ServeContinuous simulates iteration-level (continuous) batching:
// requests join the running batch after a batched prefill and retire the
// moment their generation completes, instead of waiting for the whole
// batch.
func ServeContinuous(cfg ServeConfig, reqs []ServeRequest) (ServeMetrics, error) {
	return serve.SimulateContinuous(cfg, reqs)
}
