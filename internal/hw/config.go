package hw

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/lia-sim/lia/internal/units"
)

// systemJSON is the on-disk schema for a custom system description. All
// quantities use friendly units: GB, GB/s, TFLOPS, watts, dollars,
// microseconds. Zero-valued optional fields inherit from the named base
// system when `base` is set.
type systemJSON struct {
	Name string `json:"name"`
	Base string `json:"base,omitempty"`

	CPU *struct {
		Name        string  `json:"name,omitempty"`
		Cores       int     `json:"cores,omitempty"`
		ClockGHz    float64 `json:"clock_ghz,omitempty"`
		ISA         string  `json:"isa,omitempty"` // AMX, AVX512, SVE2
		PeakTFLOPS  float64 `json:"peak_tflops,omitempty"`
		MemChannels int     `json:"mem_channels,omitempty"`
		MemGBps     float64 `json:"mem_gbps,omitempty"`
		DRAMGB      float64 `json:"dram_gb,omitempty"`
		TDPWatts    float64 `json:"tdp_watts,omitempty"`
		CostUSD     float64 `json:"cost_usd,omitempty"`
	} `json:"cpu,omitempty"`

	GPU *struct {
		Name       string  `json:"name,omitempty"`
		MemGB      float64 `json:"mem_gb,omitempty"`
		MemGBps    float64 `json:"mem_gbps,omitempty"`
		PeakTFLOPS float64 `json:"peak_tflops,omitempty"`
		LinkGBps   float64 `json:"link_gbps,omitempty"`
		PeerGBps   float64 `json:"peer_gbps,omitempty"`
		TDPWatts   float64 `json:"tdp_watts,omitempty"`
		CostUSD    float64 `json:"cost_usd,omitempty"`
	} `json:"gpu,omitempty"`

	GPUCount int `json:"gpu_count,omitempty"`

	CXL *struct {
		Count          int     `json:"count"`
		CapacityGB     float64 `json:"capacity_gb,omitempty"`
		GBps           float64 `json:"gbps,omitempty"`
		ExtraLatencyNS float64 `json:"extra_latency_ns,omitempty"`
	} `json:"cxl,omitempty"`

	BasePowerWatts float64 `json:"base_power_watts,omitempty"`
	ChassisCostUSD float64 `json:"chassis_cost_usd,omitempty"`
}

// baseSystems names the built-ins a config may inherit from.
func baseSystems() map[string]System {
	return map[string]System{
		"SPR-A100": SPRA100, "SPR-H100": SPRH100,
		"GNR-A100": GNRA100, "GNR-H100": GNRH100,
		"GH200": GH200, "DGX-A100": DGXA100,
	}
}

// ParseSystem builds a System from JSON, inheriting unset fields from the
// optional base system (default: SPR-A100).
func ParseSystem(data []byte) (System, error) {
	var cfg systemJSON
	if err := json.Unmarshal(data, &cfg); err != nil {
		return System{}, fmt.Errorf("hw: parsing system config: %w", err)
	}
	base := SPRA100
	if cfg.Base != "" {
		b, ok := baseSystems()[cfg.Base]
		if !ok {
			return System{}, fmt.Errorf("hw: unknown base system %q", cfg.Base)
		}
		base = b
	}
	sys := base
	if cfg.Name != "" {
		sys.Name = cfg.Name
	}
	if cfg.CPU != nil {
		c := cfg.CPU
		if c.Name != "" {
			sys.CPU.Name = c.Name
		}
		if c.Cores > 0 {
			sys.CPU.Cores = c.Cores
		}
		if c.ClockGHz > 0 {
			sys.CPU.ClockGHz = c.ClockGHz
		}
		if c.ISA != "" {
			isa, err := parseISA(c.ISA)
			if err != nil {
				return System{}, err
			}
			sys.CPU.MatrixISA = isa
		}
		if c.PeakTFLOPS > 0 {
			sys.CPU.PeakMatrix = units.FLOPSRate(c.PeakTFLOPS) * units.TFLOPS
			sys.CPU.PeakVector = sys.CPU.PeakMatrix / 8
		}
		if c.MemChannels > 0 {
			sys.CPU.MemChannels = c.MemChannels
		}
		if c.MemGBps > 0 {
			sys.CPU.MemBW = units.BytesPerSecond(c.MemGBps) * units.GBps
		}
		if c.DRAMGB > 0 {
			sys.CPU.DRAMCapacity = units.Bytes(c.DRAMGB) * units.GB
		}
		if c.TDPWatts > 0 {
			sys.CPU.TDP = units.Watts(c.TDPWatts)
		}
		if c.CostUSD > 0 {
			sys.CPU.Cost = units.USD(c.CostUSD)
		}
	}
	if cfg.GPU != nil {
		g := cfg.GPU
		if g.Name != "" {
			sys.GPU.Name = g.Name
		}
		if g.MemGB > 0 {
			sys.GPU.MemCapacity = units.Bytes(g.MemGB) * units.GB
		}
		if g.MemGBps > 0 {
			sys.GPU.MemBW = units.BytesPerSecond(g.MemGBps) * units.GBps
		}
		if g.PeakTFLOPS > 0 {
			sys.GPU.PeakHalf = units.FLOPSRate(g.PeakTFLOPS) * units.TFLOPS
		}
		if g.LinkGBps > 0 {
			sys.GPU.HostLink = LinkSpec{
				Name:  fmt.Sprintf("custom %.0f GB/s", g.LinkGBps),
				BW:    units.BytesPerSecond(g.LinkGBps) * units.GBps,
				Setup: 10 * units.Microsecond,
			}
		}
		if g.PeerGBps > 0 {
			sys.GPU.PeerLink = LinkSpec{
				Name:  fmt.Sprintf("custom peer %.0f GB/s", g.PeerGBps),
				BW:    units.BytesPerSecond(g.PeerGBps) * units.GBps,
				Setup: 3 * units.Microsecond,
			}
		}
		if g.TDPWatts > 0 {
			sys.GPU.TDP = units.Watts(g.TDPWatts)
		}
		if g.CostUSD > 0 {
			sys.GPU.Cost = units.USD(g.CostUSD)
		}
	}
	if cfg.GPUCount > 0 {
		sys.GPUCount = cfg.GPUCount
	}
	if cfg.CXL != nil && cfg.CXL.Count > 0 {
		exp := SamsungCXL128
		if cfg.CXL.CapacityGB > 0 {
			exp.Capacity = units.Bytes(cfg.CXL.CapacityGB) * units.GB
		}
		if cfg.CXL.GBps > 0 {
			exp.BW = units.BytesPerSecond(cfg.CXL.GBps) * units.GBps
		}
		if cfg.CXL.ExtraLatencyNS > 0 {
			exp.ExtraLatency = units.Seconds(cfg.CXL.ExtraLatencyNS) * units.Nanosecond
		}
		name := sys.Name
		sys = sys.WithCXL(cfg.CXL.Count, exp)
		sys.Name = name // keep the user's name, not the derived suffix
	}
	if cfg.BasePowerWatts > 0 {
		sys.BasePower = units.Watts(cfg.BasePowerWatts)
	}
	if cfg.ChassisCostUSD > 0 {
		sys.ChassisCost = units.USD(cfg.ChassisCostUSD)
	}
	if err := sys.Validate(); err != nil {
		return System{}, err
	}
	return sys, nil
}

// LoadSystem reads a JSON system description from disk.
func LoadSystem(path string) (System, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return System{}, fmt.Errorf("hw: %w", err)
	}
	return ParseSystem(data)
}

// parseISA maps config strings onto ISA values.
func parseISA(s string) (ISA, error) {
	switch s {
	case "AMX", "amx":
		return AMX, nil
	case "AVX512", "avx512":
		return AVX512, nil
	case "SVE2", "sve2":
		return SVE2, nil
	default:
		return 0, fmt.Errorf("hw: unknown ISA %q", s)
	}
}
