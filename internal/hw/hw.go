// Package hw describes the hardware the paper evaluates on: AMX-enabled
// Intel Xeon CPUs (Sapphire Rapids, Granite Rapids), NVIDIA GPUs
// (P100 through H100 and Grace-Hopper), the PCIe/NVLink interconnects
// between them, and DDR5/CXL memory subsystems.
//
// Every quantity here is a *specification* — peak or nominal values taken
// from the paper's Table 2, Section 4, and footnotes. Shape-dependent
// effective throughput (what a GEMM of a given size actually achieves)
// lives in package perf, which layers calibrated utilization models on
// top of these specs.
package hw

import (
	"fmt"

	"github.com/lia-sim/lia/internal/units"
)

// ISA identifies the vector/matrix instruction set a CPU uses for
// offloaded computation.
type ISA int

// Supported CPU compute ISAs.
const (
	// AVX512 is the 1-D 512-bit vector engine used by pre-SPR offloading
	// frameworks (FlexGen, PowerInfer).
	AVX512 ISA = iota
	// AMX is Intel's 2-D tile matrix unit introduced with Sapphire Rapids.
	AMX
	// SVE2 is Arm's scalable vector extension (Grace CPU).
	SVE2
)

// String implements fmt.Stringer.
func (i ISA) String() string {
	switch i {
	case AVX512:
		return "AVX512"
	case AMX:
		return "AMX"
	case SVE2:
		return "SVE2"
	default:
		return fmt.Sprintf("ISA(%d)", int(i))
	}
}

// CPUSpec describes a CPU socket configuration.
type CPUSpec struct {
	// Name is the marketing / paper name, e.g. "SPR (Xeon 8460H, 40c)".
	Name string
	// Cores is the physical core count per socket times sockets in use.
	Cores int
	// ClockGHz is the sustained all-core frequency under AMX load.
	ClockGHz float64
	// MatrixISA is the best matrix-multiply engine available.
	MatrixISA ISA
	// PeakMatrix is the theoretical peak BF16 (or FP16) matrix throughput
	// of the matrix engine across all cores.
	PeakMatrix units.FLOPSRate
	// PeakVector is the theoretical peak half-precision throughput of the
	// AVX-class vector engine (used when a framework is AVX-only).
	PeakVector units.FLOPSRate
	// MemChannels is the number of populated DDR channels.
	MemChannels int
	// MemBW is the measured sustained DRAM bandwidth (e.g. 260 GB/s for
	// 8×DDR5-4800 on SPR per the paper).
	MemBW units.BytesPerSecond
	// DRAMCapacity is the installed DDR capacity.
	DRAMCapacity units.Bytes
	// TDP is the socket's thermal design power.
	TDP units.Watts
	// Cost is the approximate street price of the CPU + board + DRAM,
	// used by the cost model.
	Cost units.USD
}

// GPUSpec describes a GPU board.
type GPUSpec struct {
	// Name is the marketing name, e.g. "A100-40GB-PCIe".
	Name string
	// MemCapacity is the on-board HBM capacity.
	MemCapacity units.Bytes
	// MemBW is the HBM bandwidth.
	MemBW units.BytesPerSecond
	// PeakHalf is the peak dense half-precision (BF16/FP16, tensor-core
	// where available) throughput.
	PeakHalf units.FLOPSRate
	// KernelLaunch is the fixed host-side overhead to launch one kernel;
	// it dominates tiny GEMV shapes (§4.2's small-B/L observation).
	KernelLaunch units.Seconds
	// HostLink connects the GPU to the host CPU.
	HostLink LinkSpec
	// PeerLink connects GPUs to each other (NVLink); zero bandwidth means
	// no peer link.
	PeerLink LinkSpec
	// TDP is the board power.
	TDP units.Watts
	// Cost is the approximate street price of the board.
	Cost units.USD
}

// LinkSpec describes a point-to-point interconnect.
type LinkSpec struct {
	// Name identifies the link generation, e.g. "PCIe 4.0 x16".
	Name string
	// BW is the effective unidirectional bandwidth.
	BW units.BytesPerSecond
	// Setup is the fixed per-transfer latency (driver + DMA setup).
	Setup units.Seconds
}

// Transfer returns the time to move b bytes across the link.
func (l LinkSpec) Transfer(b units.Bytes) units.Seconds {
	return units.TransferTime(b, l.BW, l.Setup)
}

// Interconnect generations used across the evaluation systems.
var (
	// PCIe3x16 carries P100 and V100 boards.
	PCIe3x16 = LinkSpec{Name: "PCIe 3.0 x16", BW: 16 * units.GBps, Setup: 10 * units.Microsecond}
	// PCIe4x16 carries the A100 (Table 2).
	PCIe4x16 = LinkSpec{Name: "PCIe 4.0 x16", BW: 32 * units.GBps, Setup: 10 * units.Microsecond}
	// PCIe5x16 carries the H100 (Table 2; the paper quotes 64 GB/s).
	PCIe5x16 = LinkSpec{Name: "PCIe 5.0 x16", BW: 64 * units.GBps, Setup: 10 * units.Microsecond}
	// NVLink3 is the intra-DGX A100 fabric (per-GPU aggregate).
	NVLink3 = LinkSpec{Name: "NVLink 3.0", BW: 600 * units.GBps, Setup: 3 * units.Microsecond}
	// NVLinkC2C is the Grace-Hopper CPU-GPU link (900 GB/s, §8).
	NVLinkC2C = LinkSpec{Name: "NVLink-C2C", BW: 900 * units.GBps, Setup: 2 * units.Microsecond}
)

// CPU catalog. Peak matrix throughput follows the paper: SPR-AMX's
// theoretical peak is 90.1 TFLOPS (§4.1) and AMX performance scales with
// core count; AVX512 peaks at 1/8 of AMX on the same socket.
var (
	// SPR is the 40-core Sapphire Rapids Xeon Platinum 8460H from Table 2.
	SPR = CPUSpec{
		Name:         "SPR (Xeon 8460H, 40c)",
		Cores:        40,
		ClockGHz:     2.2,
		MatrixISA:    AMX,
		PeakMatrix:   90.1 * units.TFLOPS,
		PeakVector:   90.1 / 8 * units.TFLOPS,
		MemChannels:  8,
		MemBW:        260 * units.GBps, // measured, 8×DDR5-4800
		DRAMCapacity: 512 * units.GiB,
		TDP:          350,
		Cost:         7_000,
	}
	// GNR is the 128-core Granite Rapids part (§7.6). AMX peak scales with
	// cores (×3.2) at a slightly lower all-core clock; 12×DDR5-5600
	// channels deliver ~1.7× SPR's sustained bandwidth (§4.2).
	GNR = CPUSpec{
		Name:         "GNR (Xeon 6, 128c)",
		Cores:        128,
		ClockGHz:     2.0,
		MatrixISA:    AMX,
		PeakMatrix:   90.1 * (128.0 / 40.0) * (2.0 / 2.2) * units.TFLOPS, // ≈262 TFLOPS
		PeakVector:   90.1 * (128.0 / 40.0) * (2.0 / 2.2) / 8 * units.TFLOPS,
		MemChannels:  12,
		MemBW:        442 * units.GBps, // 1.7× SPR (§4.2)
		DRAMCapacity: 512 * units.GiB,
		TDP:          500,
		Cost:         9_000,
	}
	// Grace is the Arm CPU in a Grace-Hopper superchip (§8: 6.91 TFLOPS
	// SVE2, 512 GB/s memory bandwidth).
	Grace = CPUSpec{
		Name:         "Grace (72c, SVE2)",
		Cores:        72,
		ClockGHz:     3.1,
		MatrixISA:    SVE2,
		PeakMatrix:   6.91 * units.TFLOPS,
		PeakVector:   6.91 * units.TFLOPS,
		MemChannels:  16,
		MemBW:        512 * units.GBps,
		DRAMCapacity: 480 * units.GiB,
		TDP:          300,
		Cost:         12_000,
	}
)

// GPU catalog (§4's four generations plus the DGX SXM variant and GH200).
var (
	// P100 is the Pascal-generation board (FP16, no tensor cores).
	P100 = GPUSpec{
		Name:         "P100-16GB",
		MemCapacity:  16 * units.GiB,
		MemBW:        732 * units.GBps,
		PeakHalf:     21.2 * units.TFLOPS,
		KernelLaunch: 8 * units.Microsecond,
		HostLink:     PCIe3x16,
		TDP:          250,
		Cost:         2_500,
	}
	// V100 is the Volta board with first-generation tensor cores.
	V100 = GPUSpec{
		Name:         "V100-16GB",
		MemCapacity:  16 * units.GiB,
		MemBW:        900 * units.GBps,
		PeakHalf:     125 * units.TFLOPS,
		KernelLaunch: 8 * units.Microsecond,
		HostLink:     PCIe3x16,
		TDP:          300,
		Cost:         3_500,
	}
	// A100 is the 40 GB PCIe 4.0 Ampere board from Table 2.
	A100 = GPUSpec{
		Name:         "A100-40GB-PCIe",
		MemCapacity:  40 * units.GiB,
		MemBW:        1555 * units.GBps,
		PeakHalf:     312 * units.TFLOPS,
		KernelLaunch: 6 * units.Microsecond,
		HostLink:     PCIe4x16,
		TDP:          250,
		Cost:         10_000,
	}
	// A100SXM is the 80 GB NVLink variant populating a DGX-A100.
	A100SXM = GPUSpec{
		Name:         "A100-80GB-SXM",
		MemCapacity:  80 * units.GiB,
		MemBW:        2039 * units.GBps,
		PeakHalf:     312 * units.TFLOPS,
		KernelLaunch: 6 * units.Microsecond,
		HostLink:     PCIe4x16,
		PeerLink:     NVLink3,
		TDP:          500,
		Cost:         17_000,
	}
	// H100 is the 80 GB PCIe 5.0 Hopper board from Table 2.
	H100 = GPUSpec{
		Name:         "H100-80GB-PCIe",
		MemCapacity:  80 * units.GiB,
		MemBW:        2000 * units.GBps,
		PeakHalf:     756 * units.TFLOPS,
		KernelLaunch: 5 * units.Microsecond,
		HostLink:     PCIe5x16,
		TDP:          350,
		Cost:         30_000,
	}
	// H100GH is the Hopper die inside a GH200 superchip, reached over
	// NVLink-C2C rather than PCIe (§8).
	H100GH = GPUSpec{
		Name:         "H100-96GB-GH200",
		MemCapacity:  96 * units.GiB,
		MemBW:        4000 * units.GBps,
		PeakHalf:     989 * units.TFLOPS,
		KernelLaunch: 5 * units.Microsecond,
		HostLink:     NVLinkC2C,
		TDP:          700,
		Cost:         45_000,
	}
)

// CXLExpander describes one CXL Type-3 memory device (Table 2 lists two
// Samsung 128 GB expanders).
type CXLExpander struct {
	// Name identifies the device.
	Name string
	// Capacity is the device's usable capacity.
	Capacity units.Bytes
	// BW is the sustained bandwidth of a single expander (Figure 8a
	// measures ~17 GB/s each).
	BW units.BytesPerSecond
	// ExtraLatency is the added load-to-use latency over DDR
	// (140–170 ns, §2.3).
	ExtraLatency units.Seconds
	// CostPerGB is the repurposed-DDR4 cost per usable GB.
	CostPerGB units.USD
}

// SamsungCXL128 is the expander used in the paper's testbed.
var SamsungCXL128 = CXLExpander{
	Name:         "Samsung CXL Type-3 128GB",
	Capacity:     128 * units.GiB,
	BW:           17 * units.GBps,
	ExtraLatency: 155 * units.Nanosecond,
	// DDR-only memory costs $11.25/GB while a half-DDR half-CXL system
	// lands at $5.60/GB overall (§8); the repurposed-DDR4 expander side
	// therefore carries a small residual per-GB cost.
	CostPerGB: 1.6,
}

// System is an assembled evaluation platform: one CPU socket (or two for
// dual-socket GNR what-ifs), one or more GPUs, and optional CXL expanders.
type System struct {
	// Name identifies the configuration, e.g. "SPR-A100".
	Name string
	// CPU is the host processor.
	CPU CPUSpec
	// GPU is the accelerator board model.
	GPU GPUSpec
	// GPUCount is how many GPUs are installed (1 for LIA, 8 for DGX).
	GPUCount int
	// CXL lists installed CXL expanders (empty when none).
	CXL []CXLExpander
	// BasePower is the non-CPU/GPU platform power (fans, NICs, board).
	BasePower units.Watts
	// ChassisCost covers the server chassis, PSU, NIC, and storage.
	ChassisCost units.USD
}

// Validate reports configuration errors (no GPUs, nil CPU, etc.).
func (s System) Validate() error {
	if s.CPU.Cores <= 0 {
		return fmt.Errorf("system %s: CPU has no cores", s.Name)
	}
	if s.GPUCount < 0 {
		return fmt.Errorf("system %s: negative GPU count", s.Name)
	}
	if s.GPUCount > 0 && s.GPU.MemCapacity <= 0 {
		return fmt.Errorf("system %s: GPU %s has no memory", s.Name, s.GPU.Name)
	}
	for _, e := range s.CXL {
		if e.Capacity <= 0 || e.BW <= 0 {
			return fmt.Errorf("system %s: invalid CXL expander %s", s.Name, e.Name)
		}
	}
	return nil
}

// HostLink returns the CPU↔GPU interconnect.
func (s System) HostLink() LinkSpec { return s.GPU.HostLink }

// CXLCapacity returns the total installed CXL capacity.
func (s System) CXLCapacity() units.Bytes {
	var total units.Bytes
	for _, e := range s.CXL {
		total += e.Capacity
	}
	return total
}

// CXLBandwidth returns the aggregate bandwidth of the installed expanders
// under page-granularity NUMA interleaving (Observation-1, §6).
func (s System) CXLBandwidth() units.BytesPerSecond {
	var total units.BytesPerSecond
	for _, e := range s.CXL {
		total += e.BW
	}
	return total
}

// TotalCost returns the hardware acquisition cost of the system.
func (s System) TotalCost() units.USD {
	c := s.CPU.Cost + units.USD(s.GPUCount)*s.GPU.Cost + s.ChassisCost
	for _, e := range s.CXL {
		c += e.CostPerGB * units.USD(float64(e.Capacity)/float64(units.GiB))
	}
	return c
}

// TDP returns the nominal whole-system power envelope.
func (s System) TDP() units.Watts {
	return s.BasePower + s.CPU.TDP + units.Watts(s.GPUCount)*s.GPU.TDP
}

// Evaluation systems from Table 2, §7.6, §7.8 and §8.
var (
	// SPRA100 pairs the SPR Xeon with a 40 GB A100 over PCIe 4.0.
	SPRA100 = System{Name: "SPR-A100", CPU: SPR, GPU: A100, GPUCount: 1, BasePower: 300, ChassisCost: 3_000}
	// SPRH100 pairs the SPR Xeon with an 80 GB H100 over PCIe 5.0.
	SPRH100 = System{Name: "SPR-H100", CPU: SPR, GPU: H100, GPUCount: 1, BasePower: 300, ChassisCost: 3_000}
	// GNRA100 is the cost-efficient pairing highlighted in §7.6/§7.8
	// (the paper quotes a $22,000 system cost).
	GNRA100 = System{Name: "GNR-A100", CPU: GNR, GPU: A100, GPUCount: 1, BasePower: 300, ChassisCost: 3_000}
	// GNRH100 is the highest-end single-GPU configuration.
	GNRH100 = System{Name: "GNR-H100", CPU: GNR, GPU: H100, GPUCount: 1, BasePower: 300, ChassisCost: 3_000}
	// GH200 is the Grace-Hopper what-if from §8.
	GH200 = System{Name: "GH200", CPU: Grace, GPU: H100GH, GPUCount: 1, BasePower: 250, ChassisCost: 5_000}
	// DGXA100 is the 8-GPU NVLink baseline from §7.8 ($200,000, 6.5 kW).
	DGXA100 = System{Name: "DGX-A100", CPU: SPR, GPU: A100SXM, GPUCount: 8, BasePower: 1_500, ChassisCost: 48_000}
)

// WithCXL returns a copy of s with n CXL expanders of the given model
// installed.
func (s System) WithCXL(n int, model CXLExpander) System {
	out := s
	out.CXL = make([]CXLExpander, n)
	for i := range out.CXL {
		out.CXL[i] = model
	}
	out.Name = fmt.Sprintf("%s+%dxCXL", s.Name, n)
	return out
}
