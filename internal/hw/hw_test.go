package hw

import (
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/units"
)

func TestCatalogValidates(t *testing.T) {
	for _, s := range []System{SPRA100, SPRH100, GNRA100, GNRH100, GH200, DGXA100} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBadSystems(t *testing.T) {
	bad := System{Name: "no-cpu", GPU: A100, GPUCount: 1}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for CPU with no cores")
	}
	bad = SPRA100
	bad.GPUCount = -1
	if err := bad.Validate(); err == nil {
		t.Error("expected error for negative GPU count")
	}
	bad = SPRA100
	bad.GPU.MemCapacity = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for memory-less GPU")
	}
	bad = SPRA100.WithCXL(1, CXLExpander{Name: "broken"})
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero-capacity CXL expander")
	}
}

func TestLinkTransfer(t *testing.T) {
	// The paper's footnote: moving OPT-175B's ~325 GB of BF16 parameters
	// over PCIe 5.0 costs ~5 s.
	params := units.Bytes(175e9 * 2) // 175B params × 2 bytes
	got := PCIe5x16.Transfer(params)
	if got < 5*units.Second || got > 6*units.Second {
		t.Errorf("OPT-175B over PCIe5 = %v, want ~5.5 s", got)
	}
}

func TestISAString(t *testing.T) {
	if AVX512.String() != "AVX512" || AMX.String() != "AMX" || SVE2.String() != "SVE2" {
		t.Error("ISA String() values wrong")
	}
	if ISA(42).String() != "ISA(42)" {
		t.Errorf("unknown ISA formatting: %q", ISA(42).String())
	}
}

func TestAMXScalesWithCores(t *testing.T) {
	// §4.1: AMX performance scales proportionally with core count. GNR has
	// 3.2× SPR's cores at ~0.91× clock.
	ratio := float64(GNR.PeakMatrix) / float64(SPR.PeakMatrix)
	want := (128.0 / 40.0) * (2.0 / 2.2)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("GNR/SPR AMX peak ratio = %v, want %v", ratio, want)
	}
}

func TestAVXIsOneEighthOfAMX(t *testing.T) {
	// §4.1: SPR-AMX theoretical peak is 8× AVX512.
	if r := float64(SPR.PeakMatrix) / float64(SPR.PeakVector); math.Abs(r-8) > 1e-9 {
		t.Errorf("AMX/AVX512 ratio = %v, want 8", r)
	}
}

func TestCXLAggregation(t *testing.T) {
	s := SPRA100.WithCXL(2, SamsungCXL128)
	if got := s.CXLCapacity(); got != 256*units.GiB {
		t.Errorf("CXL capacity = %v, want 256 GiB", got)
	}
	// Two 17 GB/s expanders interleaved reach 34 GB/s ≥ PCIe4's 32 GB/s —
	// the bandwidth-parity condition of Observation-1.
	if got := s.CXLBandwidth(); got < s.HostLink().BW {
		t.Errorf("interleaved CXL BW %v below PCIe BW %v", got, s.HostLink().BW)
	}
	if s.Name != "SPR-A100+2xCXL" {
		t.Errorf("derived name = %q", s.Name)
	}
	// The base system must be untouched.
	if len(SPRA100.CXL) != 0 {
		t.Error("WithCXL mutated the catalog entry")
	}
}

func TestSystemCosts(t *testing.T) {
	// §7.8: GNR-A100 ≈ $22,000, DGX-A100 ≈ $200,000 (LIA system ≈ 10%).
	gnr := GNRA100.TotalCost()
	if gnr < 18_000 || gnr > 26_000 {
		t.Errorf("GNR-A100 cost = %v, want ≈ $22k", gnr)
	}
	dgx := DGXA100.TotalCost()
	if dgx < 170_000 || dgx > 230_000 {
		t.Errorf("DGX-A100 cost = %v, want ≈ $200k", dgx)
	}
	if ratio := float64(gnr) / float64(dgx); ratio > 0.15 {
		t.Errorf("GNR-A100/DGX cost ratio = %.2f, want ≈ 0.1", ratio)
	}
}

func TestSystemTDP(t *testing.T) {
	// DGX-A100 lands near its 6.5 kW envelope.
	if tdp := DGXA100.TDP(); tdp < 5_000 || tdp > 7_000 {
		t.Errorf("DGX TDP = %v", tdp)
	}
	if tdp := SPRA100.TDP(); tdp != 300+350+250 {
		t.Errorf("SPR-A100 TDP = %v, want 900 W", tdp)
	}
}

func TestHostLinkPerSystem(t *testing.T) {
	if SPRA100.HostLink() != PCIe4x16 {
		t.Error("SPR-A100 should use PCIe 4.0")
	}
	if SPRH100.HostLink() != PCIe5x16 {
		t.Error("SPR-H100 should use PCIe 5.0")
	}
	if GH200.HostLink() != NVLinkC2C {
		t.Error("GH200 should use NVLink-C2C")
	}
}
