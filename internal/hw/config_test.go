package hw

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lia-sim/lia/internal/units"
)

func TestParseSystemInheritsBase(t *testing.T) {
	sys, err := ParseSystem([]byte(`{"name": "my-box", "base": "GNR-H100"}`))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "my-box" {
		t.Errorf("name = %q", sys.Name)
	}
	if sys.CPU.Cores != GNR.Cores || sys.GPU.Name != H100.Name {
		t.Error("base fields not inherited")
	}
}

func TestParseSystemOverrides(t *testing.T) {
	cfg := `{
	  "name": "next-gen",
	  "base": "SPR-A100",
	  "cpu": {"cores": 96, "peak_tflops": 200, "mem_gbps": 600, "dram_gb": 1024},
	  "gpu": {"name": "B100", "mem_gb": 192, "peak_tflops": 900, "link_gbps": 128},
	  "gpu_count": 2,
	  "cxl": {"count": 4, "gbps": 25},
	  "base_power_watts": 400
	}`
	sys, err := ParseSystem([]byte(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if sys.CPU.Cores != 96 || sys.CPU.PeakMatrix != 200*units.TFLOPS {
		t.Errorf("CPU overrides lost: %+v", sys.CPU)
	}
	if sys.GPU.Name != "B100" || sys.GPU.MemCapacity != 192*units.GB {
		t.Errorf("GPU overrides lost: %+v", sys.GPU)
	}
	if sys.GPU.HostLink.BW != 128*units.GBps {
		t.Errorf("link = %v", sys.GPU.HostLink)
	}
	if sys.GPUCount != 2 {
		t.Errorf("gpu count = %d", sys.GPUCount)
	}
	if len(sys.CXL) != 4 || sys.CXL[0].BW != 25*units.GBps {
		t.Errorf("CXL config lost: %v", sys.CXL)
	}
	if sys.Name != "next-gen" {
		t.Errorf("name = %q (CXL suffix should not override)", sys.Name)
	}
	if sys.BasePower != 400 {
		t.Errorf("base power = %v", sys.BasePower)
	}
}

func TestParseSystemErrors(t *testing.T) {
	if _, err := ParseSystem([]byte(`not json`)); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ParseSystem([]byte(`{"base": "TPU-pod"}`)); err == nil {
		t.Error("unknown base accepted")
	}
	if _, err := ParseSystem([]byte(`{"cpu": {"isa": "NEON"}}`)); err == nil {
		t.Error("unknown ISA accepted")
	}
}

func TestLoadSystem(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sys.json")
	if err := os.WriteFile(path, []byte(`{"name":"from-disk","base":"GNR-A100"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err := LoadSystem(path)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "from-disk" {
		t.Errorf("name = %q", sys.Name)
	}
	if _, err := LoadSystem(filepath.Join(t.TempDir(), "missing.json")); err == nil || !strings.Contains(err.Error(), "hw:") {
		t.Errorf("missing file error = %v", err)
	}
}

func TestParseISA(t *testing.T) {
	for s, want := range map[string]ISA{"AMX": AMX, "avx512": AVX512, "SVE2": SVE2} {
		got, err := parseISA(s)
		if err != nil || got != want {
			t.Errorf("parseISA(%q) = %v, %v", s, got, err)
		}
	}
}
