package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/trace"
)

func TestFigure1HasAllCells(t *testing.T) {
	tab := Figure1()
	if len(tab.Rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(tab.Rows))
	}
	// Ops/byte spans the ~1 to ~50k dynamic range (§2.1).
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range tab.Rows {
		v, err := strconv.ParseFloat(r[len(r)-1], 64)
		if err != nil {
			t.Fatalf("bad ops/byte cell %q", r[len(r)-1])
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > 2 || hi < 10_000 {
		t.Errorf("ops/byte range [%.1f, %.1f] too narrow", lo, hi)
	}
}

func TestFigure3TransferDominates(t *testing.T) {
	tab := Figure3()
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	parsePct := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad percent %q", s)
		}
		return v
	}
	for _, r := range tab.Rows {
		stage, b, l := r[0], r[1], r[2]
		pct := parsePct(r[7])
		// §3.1: decode transfer share stays above 80% everywhere; B=1
		// short-L prefill is ≥98%.
		if stage == "decode" && pct < 80 {
			t.Errorf("decode B=%s L=%s transfer share %.1f%% < 80%%", b, l, pct)
		}
		if stage == "prefill" && b == "1" && l == "64" && pct < 95 {
			t.Errorf("B=1 L=64 prefill transfer share %.1f%% < 95%%", pct)
		}
	}
	// §3.1: prefill transfer share decreases with L at B=32.
	var prev float64 = 101
	for _, r := range tab.Rows {
		if r[0] == "prefill" && r[1] == "32" {
			pct := parsePct(r[7])
			if pct >= prev {
				t.Errorf("B=32 prefill share not decreasing at L=%s: %.1f ≥ %.1f", r[2], pct, prev)
			}
			prev = pct
		}
	}
}

func TestFigure4OffloadHelpsOnlyAtLongL(t *testing.T) {
	tab := Figure4()
	reduction := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(row[5], "+"), "%"), 64)
		if err != nil {
			t.Fatalf("bad reduction %q", row[5])
		}
		return v
	}
	first := reduction(tab.Rows[0])              // L=64
	last := reduction(tab.Rows[len(tab.Rows)-1]) // L=1024
	if first >= last {
		t.Errorf("offload benefit should grow with L: %.1f%% → %.1f%%", first, last)
	}
	if last <= 0 || last > 25 {
		t.Errorf("L=1024 reduction = %.1f%%, want small positive (paper: ≤10.2%%)", last)
	}
	if first > 2 {
		t.Errorf("L=64 reduction = %.1f%%, should be ≈0 or negative (paper: negative)", first)
	}
}

func TestFigure5Shapes(t *testing.T) {
	gemm, gemv := Figure5()
	if len(gemm.Series) != 7 || len(gemv.Series) != 7 {
		t.Fatal("expected 7 devices in both panels")
	}
	last := len(gemm.XTicks) - 1
	// §4.1 ranking at large shapes: H100 > A100 > V100 > GNR > SPR > P100 > AVX.
	if r := gemm.Ratio("SPR-AMX", "AVX512", last); r < 4 || r > 5 {
		t.Errorf("SPR-AMX/AVX512 GEMM = %.2f, want ≈4.5", r)
	}
	if r := gemm.Ratio("GNR-AMX", "SPR-AMX", last); r < 1.9 || r > 2.5 {
		t.Errorf("GNR/SPR GEMM = %.2f, want ≈2.2", r)
	}
	if r := gemm.Ratio("SPR-AMX", "H100", last); r < 0.035 || r > 0.07 {
		t.Errorf("SPR/H100 GEMM = %.2f, want ≈0.05", r)
	}
	// §4.2: GEMV is memory-bound; SPR ≈ 15% of H100 at large shapes.
	glast := len(gemv.XTicks) - 1
	if r := gemv.Ratio("SPR-AMX", "H100", glast); r < 0.10 || r > 0.20 {
		t.Errorf("SPR/H100 GEMV = %.2f, want ≈0.15", r)
	}
	if r := gemv.Ratio("SPR-AMX", "AVX512", glast); r < 0.9 || r > 1.1 {
		t.Errorf("AMX/AVX GEMV = %.2f, want ≈1.0", r)
	}
}

func TestFigure8Observations(t *testing.T) {
	a, b := Figure8()
	// Observation-1: at ≥300 MB, 2×CXL reaches the DDR transfer level.
	large := len(a.XTicks) - 1
	if r := a.Ratio("2xCXL interleaved", "DDR", large); r < 0.95 {
		t.Errorf("large-transfer 2xCXL/DDR = %.2f, want ≈1", r)
	}
	if r := a.Ratio("1xCXL", "DDR", large); r > 0.75 {
		t.Errorf("single expander should trail DDR: %.2f", r)
	}
	// Observation-2: decode-S2 (KV) degrades far more than prefill-S1.
	s := b.Series[0].Values
	prefillS1, decodeS2 := s[1], s[5]
	if decodeS2 >= prefillS1 {
		t.Errorf("decode-S2 ratio %.2f should be below prefill-S1 %.2f", decodeS2, prefillS1)
	}
	if decodeS2 > 0.35 {
		t.Errorf("decode-S2 CXL/DDR = %.2f, want ≤0.35 (paper: down to 0.18)", decodeS2)
	}
}

func TestFigure9Maps(t *testing.T) {
	pre, dec := Figure9(hw.SPRA100)
	if len(pre.Rows) == 0 || len(dec.Rows) == 0 {
		t.Fatal("empty maps")
	}
	// Top-left of the prefill map (B=1, L=32) is C; bottom-right is G.
	if pre.Rows[0][1] != "C" {
		t.Errorf("prefill B=1 L=32 = %s, want C", pre.Rows[0][1])
	}
	lastRow := pre.Rows[len(pre.Rows)-1]
	if lastRow[len(lastRow)-1] != "G" {
		t.Errorf("prefill B=1024 L=2048 = %s, want G", lastRow[len(lastRow)-1])
	}
	// Decode rows are constant across L (§7.1) and use only C or P.
	for _, r := range dec.Rows {
		for i := 2; i < len(r); i++ {
			if r[i] != r[1] {
				t.Errorf("decode policy varies with L in row B=%s: %v", r[0], r)
			}
		}
		if r[1] != "C" && r[1] != "P" {
			t.Errorf("decode policy %q outside {C, P}", r[1])
		}
	}
}

func TestFigure10And11Sanity(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation sweep")
	}
	figs := Figure10()
	if len(figs) != 8 { // 4 system/model points × 2 Lout
		t.Fatalf("Figure10 produced %d figures, want 8", len(figs))
	}
	for _, f := range figs {
		for i := range f.XTicks {
			// LIA ≤ both baselines at every point.
			if r := f.Ratio("IPEX", "LIA", i); !math.IsNaN(r) && r < 1 {
				t.Errorf("%s tick %s: IPEX/LIA = %.2f < 1", f.Title, f.XTicks[i], r)
			}
			if r := f.Ratio("FlexGen", "LIA", i); !math.IsNaN(r) && r < 1 {
				t.Errorf("%s tick %s: FlexGen/LIA = %.2f < 1", f.Title, f.XTicks[i], r)
			}
		}
	}
	figs11 := Figure11()
	if len(figs11) != 8 {
		t.Fatalf("Figure11 produced %d figures, want 8", len(figs11))
	}
	for _, f := range figs11 {
		for i := range f.XTicks {
			if r := f.Ratio("LIA", "FlexGen", i); !math.IsNaN(r) && r < 1 {
				t.Errorf("%s tick %s: LIA/FlexGen tput = %.2f < 1", f.Title, f.XTicks[i], r)
			}
		}
	}
}

func TestFigure12Normalized(t *testing.T) {
	fig := Figure12()
	for _, s := range fig.Series {
		for i, v := range s.Values {
			if !math.IsNaN(v) && v < 1 {
				t.Errorf("%s at %s: normalized energy %.2f < 1 (LIA must win)", s.Name, fig.XTicks[i], v)
			}
		}
	}
}

func TestFigure13GNRWinsOnline(t *testing.T) {
	online, offline := Figure13()
	// §7.6: GNR-A100 achieves 1.4-2.0× lower online latency than SPR-H100.
	for i := range online.XTicks {
		r := online.Ratio("SPR-H100", "GNR-A100", i)
		if r < 1.0 || r > 2.6 {
			t.Errorf("online SPR-H100/GNR-A100 at Lin=%s = %.2f, want [1.0, 2.6]", online.XTicks[i], r)
		}
	}
	// Offline at B=900: SPR-H100 leads (GNR reaches ~70%).
	for i, tick := range offline.XTicks {
		if strings.HasPrefix(tick, "B=900") {
			if r := offline.Ratio("GNR-A100", "SPR-H100", i); r > 1.1 {
				t.Errorf("B=900 GNR/SPR-H100 tput = %.2f, want ≤1.1 (paper: ≈0.7)", r)
			}
		}
	}
}

func TestFigure14Shape(t *testing.T) {
	tput, dollars := Figure14()
	if r := tput.Ratio("LIA (GNR-A100)", "DGX-A100 (TP-8)", 0); r <= 1 {
		t.Errorf("B=1 per-GPU ratio = %.2f, want >1", r)
	}
	if r := tput.Ratio("LIA (GNR-A100)", "DGX-A100 (TP-8)", 1); r >= 1 {
		t.Errorf("B=64 per-GPU ratio = %.2f, want <1", r)
	}
	// B=900: DGX OOM (NaN), LIA alive.
	var dgx, lia []float64
	for _, s := range tput.Series {
		if strings.HasPrefix(s.Name, "DGX") {
			dgx = s.Values
		} else {
			lia = s.Values
		}
	}
	if !math.IsNaN(dgx[2]) {
		t.Error("DGX at B=900 should be OOM")
	}
	if math.IsNaN(lia[2]) || lia[2] <= lia[1] {
		t.Errorf("LIA B=900 per-GPU %.2f should exceed B=64 %.2f", lia[2], lia[1])
	}
	// Cost: LIA cheaper at B=1.
	if r := dollars.Ratio("DGX-A100 (TP-8)", "LIA (GNR-A100)", 0); r < 1.2 {
		t.Errorf("B=1 DGX/LIA cost = %.2f, want ≥1.2 (paper: 1.5-2.0)", r)
	}
}

func TestFigure15Shape(t *testing.T) {
	online, offline := Figure15()
	for i := range online.XTicks {
		if r := online.Ratio("PowerInfer", "LIA", i); math.IsNaN(r) || r < 1.15 {
			t.Errorf("PowerInfer/LIA latency at Lin=%s = %.2f, want ≥1.15 (paper: 1.4-9.0)", online.XTicks[i], r)
		}
	}
	// PowerInfer runs at B=64 but CUDA-OOMs at B=900; LIA survives both.
	for _, s := range offline.Series {
		if s.Name == "PowerInfer" {
			if math.IsNaN(s.Values[0]) {
				t.Error("PowerInfer at B=64 should fit")
			}
			if !math.IsNaN(s.Values[1]) {
				t.Error("PowerInfer at B=900 should OOM")
			}
		}
		if s.Name == "LIA" && (math.IsNaN(s.Values[0]) || math.IsNaN(s.Values[1])) {
			t.Error("LIA must run at both batch sizes")
		}
	}
}

func TestTable1MatchesModel(t *testing.T) {
	tab := Table1(4, 128)
	if len(tab.Rows) != 12 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		for _, cell := range r {
			if cell == "" {
				t.Fatalf("empty cell in row %v", r)
			}
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tab := Table3()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		base, _ := strconv.ParseFloat(r[1], 64)
		withCXL, _ := strconv.ParseFloat(r[2], 64)
		bigger, _ := strconv.ParseFloat(r[5], 64)
		// CXL at the same B is within a few percent.
		if ratio := withCXL / base; ratio < 0.93 || ratio > 1.07 {
			t.Errorf("Lout=%s: CXL/base = %.3f, want ≈1 (paper: within 1%%)", r[0], ratio)
		}
		// The enlarged batch buys real throughput at short Lout. Our
		// simulator's decode is closer to pure-bandwidth-bound than the
		// paper's testbed, so the gain lands near 1.2x vs. their 1.45x
		// (see EXPERIMENTS.md).
		if r[0] == "32" && (bigger < 1.1*withCXL || bigger > 1.8*withCXL) {
			t.Errorf("Lout=32: larger-B throughput %.1f vs %.1f outside the [1.1x, 1.8x] band (paper: 1.45x)", bigger, withCXL)
		}
	}
	// Offloaded percentage decreases down the rows (Table 3's trend).
	prev := 101.0
	for _, r := range tab.Rows {
		pct, _ := strconv.ParseFloat(strings.TrimSuffix(r[3], "%"), 64)
		if pct >= prev {
			t.Errorf("offloaded %% not decreasing: %v", r)
		}
		prev = pct
	}
}

func TestTable4Shape(t *testing.T) {
	tab := Table4()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	get := func(row, col int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
		if err != nil {
			t.Fatalf("bad cell: %v", err)
		}
		return v
	}
	for col := 1; col <= 3; col++ {
		full := get(0, col)
		for row := 1; row < 4; row++ {
			if get(row, col) < full*0.999 {
				t.Errorf("ablation row %d col %d (%.2f) beats full LIA (%.2f)", row, col, get(row, col), full)
			}
		}
	}
	// Optimization-1 dominates at B=1; FlexGen's policy ties at B=900.
	if get(1, 1)/get(0, 1) < 1.3 {
		t.Errorf("B=1 no-Opt1 ratio = %.2f, want ≥1.3 (paper: 2.0)", get(1, 1)/get(0, 1))
	}
	if get(3, 3)/get(0, 3) > 1.2 {
		t.Errorf("B=900 FlexGen-policy ratio = %.2f, want ≈1.0", get(3, 3)/get(0, 3))
	}
}

func TestTable5Shape(t *testing.T) {
	tab := Table5()
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		liaComm, _ := strconv.ParseFloat(r[3], 64)
		ipexCPU, _ := strconv.ParseFloat(r[4], 64)
		liaCPU, _ := strconv.ParseFloat(r[1], 64)
		fgComm, _ := strconv.ParseFloat(r[7], 64)
		if liaComm >= fgComm {
			t.Errorf("B=%s: LIA comm %.2f ≥ FlexGen comm %.2f", r[0], liaComm, fgComm)
		}
		if ipexCPU <= liaCPU {
			t.Errorf("B=%s: IPEX CPU %.2f ≤ LIA CPU %.2f", r[0], ipexCPU, liaCPU)
		}
	}
}

func TestTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full GNR sweep")
	}
	tab := Table6()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		for _, cell := range r[2:] {
			lo, err := strconv.ParseFloat(strings.SplitN(strings.TrimSuffix(cell, "x"), "-", 2)[0], 64)
			if err != nil {
				t.Fatalf("bad range cell %q: %v", cell, err)
			}
			if lo < 1.0 {
				t.Errorf("%s vs %s: LIA speedup low end %.1f < 1 in %q", r[0], r[1], lo, cell)
			}
		}
	}
}

func TestGeneralizabilityTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full generalizability sweep")
	}
	tab := Generalizability()
	if len(tab.Rows) != 12 { // 3 models × 4 systems
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		for _, cell := range r[2:] {
			v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v < 1.0 {
				t.Errorf("%s on %s: ratio %s < 1", r[0], r[1], cell)
			}
		}
	}
}

func TestDiscussionTables(t *testing.T) {
	gh := GraceHopper()
	for _, r := range gh.Rows {
		adv, err := strconv.ParseFloat(strings.TrimSuffix(r[4], "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if adv < 1.0 {
			t.Errorf("GH200 should win %s (%s): %.1fx", r[0], r[1], adv)
		}
	}
	cheaper := CheaperGPUs()
	for _, r := range cheaper.Rows {
		adv, _ := strconv.ParseFloat(strings.TrimSuffix(r[3], "x"), 64)
		if adv < 1.5 {
			t.Errorf("LIA vs 3xV100 latency advantage %.1fx, want ≥1.5 (paper: 6.3-11)", adv)
		}
	}
	savings := CXLCostSavings()
	lastRow := savings.Rows[len(savings.Rows)-1]
	if !strings.HasPrefix(lastRow[0], "43") {
		t.Errorf("final row should be the 43%% case: %v", lastRow)
	}
}

func TestQuantizationStudy(t *testing.T) {
	tab := QuantizationStudy()
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		bf16Lat, _ := strconv.ParseFloat(r[3], 64)
		int8Lat, _ := strconv.ParseFloat(r[4], 64)
		if int8Lat >= bf16Lat {
			t.Errorf("%s: INT8 latency %.2f should beat BF16 %.2f (halved transfers)", r[0], int8Lat, bf16Lat)
		}
		bf16B, _ := strconv.Atoi(r[7])
		int8B, _ := strconv.Atoi(r[8])
		if int8B < int(1.8*float64(bf16B)) {
			t.Errorf("%s: INT8 max batch %d should be ≈2x BF16's %d", r[0], int8B, bf16B)
		}
	}
}

func TestMultiGPUScaling(t *testing.T) {
	tab := MultiGPUScaling()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Offline throughput improves monotonically with GPU count; online
	// latency never regresses past a small tolerance (the all-reduce
	// floor can eat small-batch gains, §8's PCIe caveat).
	prevTput := 0.0
	baseLat, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	for _, r := range tab.Rows {
		tput, _ := strconv.ParseFloat(r[3], 64)
		if tput < prevTput*0.999 {
			t.Errorf("offline throughput regressed at %s GPUs: %v", r[0], r)
		}
		prevTput = tput
		lat, _ := strconv.ParseFloat(r[1], 64)
		if lat > 1.1*baseLat {
			t.Errorf("online latency regressed badly at %s GPUs: %.2f vs %.2f", r[0], lat, baseLat)
		}
	}
	// Scaling is sublinear: 8 GPUs deliver well under 8x.
	t8, _ := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[3][4], "x"), 64)
	if t8 < 1.5 || t8 > 8 {
		t.Errorf("8-GPU offline speedup = %.2fx, want sublinear in (1.5, 8)", t8)
	}
}

// TestLIAMultiGPUShiftsPolicyGPUWard: §8 — with more GPUs the optimizer
// sends more sublayers to the GPU side.
func TestLIAMultiGPUShiftsPolicyGPUWard(t *testing.T) {
	count := func(n int) int {
		sys := gnrCluster(n)
		r := mustRun(engine.Config{
			Framework: engine.LIA, System: sys, Model: model.OPT175B,
			Workload:           trace.Workload{Batch: 1, InputLen: 512, OutputLen: 32},
			AssumeHostCapacity: true,
		})
		return r.DecodePolicy.CountCPU() + r.PrefillPolicy.CountCPU()
	}
	if count(8) > count(1) {
		t.Errorf("8-GPU policies should not be more CPU-heavy than 1-GPU: %d vs %d", count(8), count(1))
	}
}

func TestModelingAblations(t *testing.T) {
	tab := ModelingAblations()
	if len(tab.Rows) < 9 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	byDecision := map[string][][]string{}
	for _, r := range tab.Rows {
		byDecision[r[0]] = append(byDecision[r[0]], r)
	}
	// Mini-batch penalty rows are monotone in the penalty.
	pens := byDecision["mini-batch penalty"]
	prev := 0.0
	for _, r := range pens {
		v, _ := strconv.ParseFloat(r[3], 64)
		if v < prev {
			t.Errorf("penalty sweep not monotone: %v", pens)
		}
		prev = v
	}
	// LIA's pinning granularity never trails FlexGen's.
	for _, r := range byDecision["pinning granularity"] {
		parts := strings.SplitN(r[3], " vs ", 2)
		liaPct, _ := strconv.ParseFloat(strings.TrimSuffix(parts[0], "%"), 64)
		fgPct, _ := strconv.ParseFloat(strings.TrimSuffix(parts[1], "%"), 64)
		if liaPct < fgPct {
			t.Errorf("%s: LIA pinning %v%% < FlexGen %v%%", r[1], liaPct, fgPct)
		}
	}
	// Overlap always ≥ 1x.
	for _, r := range byDecision["overlap (Opt-2)"] {
		v, _ := strconv.ParseFloat(strings.TrimSuffix(r[3], "x"), 64)
		if v < 1 {
			t.Errorf("overlap speedup %v < 1", v)
		}
	}
}

func TestMoEAdaptabilityTable(t *testing.T) {
	tab := MoEAdaptability()
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// At some batch size the MoE policy offloads FC1/FC2 while the dense
	// model does not (the §7.1 divergence).
	diverged := false
	for _, r := range tab.Rows {
		densePol, err := core.ParsePolicy(r[1])
		if err != nil {
			t.Fatal(err)
		}
		moePol, err := core.ParsePolicy(r[2])
		if err != nil {
			t.Fatal(err)
		}
		if moePol.OnCPU(model.FC1) && !densePol.OnCPU(model.FC1) {
			diverged = true
		}
		// MoE FFN intensity always below dense.
		denseOB, _ := strconv.ParseFloat(r[3], 64)
		moeOB, _ := strconv.ParseFloat(r[4], 64)
		if moeOB >= denseOB {
			t.Errorf("B=%s: MoE ops/byte %v not below dense %v", r[0], moeOB, denseOB)
		}
	}
	if !diverged {
		t.Error("expected the MoE policy to extend CPU offloading to the FFN at some B")
	}
}

func TestSpeculativeDecodingFigure(t *testing.T) {
	fig := SpeculativeDecoding()
	if len(fig.Series) != 3 {
		t.Fatalf("%d series", len(fig.Series))
	}
	// Higher acceptance dominates at every depth; speedup > 1 at α≥0.8.
	for i := range fig.XTicks {
		lo := fig.Ratio("α=0.9", "α=0.6", i)
		if lo <= 1 {
			t.Errorf("tick %s: α=0.9 should beat α=0.6 (ratio %.2f)", fig.XTicks[i], lo)
		}
	}
	for _, s := range fig.Series {
		if s.Name == "α=0.8" || s.Name == "α=0.9" {
			for i, v := range s.Values {
				if v <= 1 {
					t.Errorf("%s at %s: speedup %.2f ≤ 1", s.Name, fig.XTicks[i], v)
				}
			}
		}
	}
}

func TestStorageTiers(t *testing.T) {
	tab := StorageTiers()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Full-GPU step time is monotone in tier slowness; CXL ties DDR
	// (Observation-1) while NVMe tiers do not.
	prev := 0.0
	for i, r := range tab.Rows {
		v, _ := strconv.ParseFloat(r[2], 64)
		if v < prev*0.999 {
			t.Errorf("row %d: step time fell: %v", i, tab.Rows)
		}
		prev = v
	}
	cxlRatio, _ := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[1][3], "x"), 64)
	if cxlRatio > 1.05 {
		t.Errorf("CXL tier should tie DDR (Observation-1): %.2fx", cxlRatio)
	}
	gen3, _ := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[3][3], "x"), 64)
	if gen3 < 2 {
		t.Errorf("NVMe Gen3 should throttle hard: %.2fx", gen3)
	}
	// The optimizer routes around slow tiers: its step never exceeds the
	// forced full-GPU step.
	for _, r := range tab.Rows {
		forced, _ := strconv.ParseFloat(r[2], 64)
		opt, _ := strconv.ParseFloat(r[5], 64)
		if opt > forced*1.001 {
			t.Errorf("%s: optimal %.2f worse than forced %.2f", r[0], opt, forced)
		}
	}
}

func TestParallelismComparison(t *testing.T) {
	tab := ParallelismComparison()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	get := func(row, col int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Rows: B=1 TP, B=1 PP, B=64 TP, B=64 PP.
	// TP's per-token latency beats PP's at both batch sizes.
	if get(0, 2) >= get(1, 2) {
		t.Errorf("B=1: TP latency %.4f should beat PP %.4f", get(0, 2), get(1, 2))
	}
	if get(2, 2) >= get(3, 2) {
		t.Errorf("B=64: TP latency should beat PP")
	}
	// PP's steady throughput beats its own latency-implied rate by ~n.
	ppLatRate := 1.0 / get(1, 2)
	if get(1, 3) < 4*ppLatRate {
		t.Errorf("PP steady throughput %.2f should be ≫ 1/latency %.2f", get(1, 3), ppLatRate)
	}
}

func TestFigure7Overlap(t *testing.T) {
	pre, dec := Figure7()
	for _, v := range []*Figure7View{pre, dec} {
		if !strings.Contains(v.String(), "#") {
			t.Fatal("no Gantt bars rendered")
		}
		if len(v.table.Rows) == 0 {
			t.Fatal("no task intervals")
		}
	}
	// The defining property of Figure 7: some transfer runs while compute
	// for an earlier layer is still in flight.
	overlapFound := false
	var intervals []struct {
		res        string
		start, end float64
	}
	for _, r := range pre.table.Rows {
		s, _ := strconv.ParseFloat(r[2], 64)
		e, _ := strconv.ParseFloat(r[3], 64)
		intervals = append(intervals, struct {
			res        string
			start, end float64
		}{r[1], s, e})
	}
	for _, a := range intervals {
		if a.res != "pcie" {
			continue
		}
		for _, b := range intervals {
			if b.res == "gpu" && a.start < b.end && b.start < a.end {
				overlapFound = true
			}
		}
	}
	if !overlapFound {
		t.Error("no transfer/compute overlap in the Figure 7 trace")
	}
}
