package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/perf"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/units"
)

// Figure8 reproduces the CXL characterization: (a) achieved CPU→GPU
// transfer bandwidth from DDR versus one and two interleaved CXL
// expanders across transfer sizes; (b) AMX throughput with operands in
// CXL normalized to DDR, for the parameter sublayer (S1) and the
// KV-cache sublayer (S2) in both stages.
func Figure8() (*report.Figure, *report.Figure) {
	sizes := []units.Bytes{1 * units.MB, 10 * units.MB, 50 * units.MB, 100 * units.MB, 300 * units.MB, 1000 * units.MB}
	ticks := make([]string, len(sizes))
	for i, s := range sizes {
		ticks[i] = s.String()
	}
	link := hw.PCIe4x16
	a := report.NewFigure("Figure 8(a): CPU->GPU transfer bandwidth by source tier", "transfer size", "GB/s", ticks...)
	a.Unit = "%.1f"

	ddr := cxl.FromSystem(hw.SPRA100)
	one := cxl.FromSystem(hw.SPRA100.WithCXL(1, hw.SamsungCXL128))
	two := cxl.FromSystem(hw.SPRA100.WithCXL(2, hw.SamsungCXL128))
	for _, src := range []struct {
		name string
		pool cxl.Pool
	}{{"DDR", ddr}, {"1xCXL", one}, {"2xCXL interleaved", two}} {
		vals := make([]float64, len(sizes))
		for i, size := range sizes {
			vals[i] = float64(src.pool.GPUTransferBW(link, size)) / 1e9
		}
		a.MustAdd(src.name, vals...)
	}

	// (b): CXL/DDR throughput ratio for sublayer 1 (QKV: activations ×
	// parameters) and sublayer 2 (QKT: activations × KV cache), sweeping
	// L with B=64 and B with L=256 (the paper's footnote 5 setup).
	m := model.OPT175B
	amxDev := perf.CPUDevice(hw.SPR, hw.AMX)
	cases := []struct {
		label string
		stage model.Stage
		sub   model.Sublayer
		b, l  int
	}{
		{"Prefill-S1 B=64 L=256", model.Prefill, model.QKVMapping, 64, 256},
		{"Prefill-S1 B=64 L=2048", model.Prefill, model.QKVMapping, 64, 2048},
		{"Decoding-S1 B=64 L=256", model.Decode, model.QKVMapping, 64, 256},
		{"Decoding-S1 B=1024 L=256", model.Decode, model.QKVMapping, 1024, 256},
		{"Decoding-S2 B=64 L=256", model.Decode, model.QKT, 64, 256},
		{"Decoding-S2 B=1024 L=256", model.Decode, model.QKT, 1024, 256},
	}
	bticks := make([]string, len(cases))
	for i, c := range cases {
		bticks[i] = c.label
	}
	b := report.NewFigure("Figure 8(b): AMX throughput with CXL-resident operands (normalized to DDR)", "sublayer", "ratio", bticks...)
	b.Unit = "%.2f"
	vals := make([]float64, len(cases))
	for i, c := range cases {
		rows := c.b * c.l
		if c.stage == model.Decode {
			rows = c.b
		}
		vals[i] = two.ThroughputRatio(amxDev,
			m.Compute(c.stage, c.sub, c.b, c.l),
			m.DataX(c.stage, c.sub, c.b, c.l)+m.DataY(c.stage, c.sub, c.b, c.l),
			rows)
	}
	b.MustAdd("CXL/DDR", vals...)
	return a, b
}

// policyLabel compacts a policy vector for the Figure 9 grid.
func policyLabel(p core.Policy) string {
	switch p {
	case core.FullCPU:
		return "C" // all sublayers on CPU
	case core.FullGPU:
		return "G" // all sublayers on GPU
	case core.PartialCPU:
		return "P" // attention on CPU
	case core.MoEPartial:
		return "M"
	default:
		return p.String()
	}
}

// Figure9 reproduces the optimal-policy maps for OPT-175B on a system:
// one grid per stage over (B, L_in). Legend: C = full CPU offloading
// (1,1,1,1,1,1); G = full GPU compute (0,0,0,0,0,0); P = partial CPU
// offloading (0,1,1,0,0,0).
func Figure9(sys hw.System) (*report.Table, *report.Table) {
	env := core.NewEnv(sys, model.OPT175B)
	bs := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	ls := []int{32, 64, 128, 256, 512, 1024, 2048}

	headers := make([]string, len(ls)+1)
	headers[0] = "B \\ L"
	for i, l := range ls {
		headers[i+1] = fmt.Sprint(l)
	}
	prefill := report.NewTable(fmt.Sprintf("Figure 9: optimal prefill policy, OPT-175B on %s (C=full CPU, G=full GPU, P=partial)", sys.Name), headers...)
	decode := report.NewTable(fmt.Sprintf("Figure 9: optimal decoding policy, OPT-175B on %s", sys.Name), headers...)

	for _, b := range bs {
		preRow := make([]string, len(ls)+1)
		decRow := make([]string, len(ls)+1)
		preRow[0] = fmt.Sprint(b)
		decRow[0] = fmt.Sprint(b)
		for i, l := range ls {
			pair := core.OptimalPair(env, b, l)
			preRow[i+1] = policyLabel(pair.Prefill)
			decRow[i+1] = policyLabel(pair.Decode)
		}
		prefill.AddRow(preRow...)
		decode.AddRow(decRow...)
	}
	return prefill, decode
}
