package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/memplan"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/trace"
)

// QuantizationStudy quantifies the compression alternative the paper's
// introduction weighs against offloading (§1): INT8 parameters halve
// every D_Y transfer, the KV cache, and the host footprint — without
// removing the need for offloading on the largest models. One row per
// model, comparing LIA BF16 vs LIA INT8 on SPR-A100.
func QuantizationStudy() *report.Table {
	t := report.NewTable(
		"Quantization study: LIA BF16 vs INT8 deployments on SPR-A100",
		"model", "params BF16", "params INT8", "online s/query (BF16)", "online (INT8)",
		"offline tok/s (BF16)", "offline (INT8)", "max B (BF16)", "max B (INT8)")
	rows := mustMap([]model.Config{model.OPT30B, model.OPT66B, model.OPT175B}, func(m model.Config) []string {
		int8 := m.Int8Variant()
		online := trace.Workload{Batch: 1, InputLen: 512, OutputLen: 32}
		offline := trace.Workload{Batch: 64, InputLen: 512, OutputLen: 32}
		lat := func(mc model.Config) float64 {
			return latencyOrNaN(engine.Config{Framework: engine.LIA, System: hw.SPRA100, Model: mc, Workload: online, AssumeHostCapacity: true})
		}
		tput := func(mc model.Config) float64 {
			return throughputOrNaN(engine.Config{Framework: engine.LIA, System: hw.SPRA100, Model: mc, Workload: offline, AssumeHostCapacity: true})
		}
		maxB := func(mc model.Config) int {
			b, err := memplan.MaxBatch(hw.SPRA100, mc, 544, 16384, cxl.DDROnlyPlacement())
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			return b
		}
		return []string{m.Name,
			m.ParamBytes().String(), int8.ParamBytes().String(),
			fmt.Sprintf("%.2f", lat(m)), fmt.Sprintf("%.2f", lat(int8)),
			fmt.Sprintf("%.1f", tput(m)), fmt.Sprintf("%.1f", tput(int8)),
			fmt.Sprint(maxB(m)), fmt.Sprint(maxB(int8))}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}
