package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/cost"
	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

// Generalizability reproduces §7.7: LIA's latency and throughput
// advantage over FlexGen and IPEX for Llama2-70B, Chinchilla-70B, and
// Bloom-176B across the four evaluation systems.
func Generalizability() *report.Table {
	t := report.NewTable(
		"§7.7: model generalizability — LIA speedup ranges (online latency / offline throughput)",
		"model", "system", "vs IPEX (lat)", "vs FlexGen (lat)", "vs IPEX (tput)", "vs FlexGen (tput)")
	systems := []hw.System{hw.SPRA100, hw.SPRH100, hw.GNRA100, hw.GNRH100}
	var pts []evalPoint
	for _, m := range []model.Config{model.Llama270B, model.Chinchilla70B, model.Bloom176B} {
		for _, sys := range systems {
			pts = append(pts, evalPoint{sys: sys, m: m})
		}
	}
	rows := mustMap(pts, func(pt evalPoint) []string {
		online := trace.Workload{Batch: 1, InputLen: 512, OutputLen: 32}
		offline := trace.Workload{Batch: 64, InputLen: 512, OutputLen: 32}
		ratios := func(w trace.Workload, base engine.Framework) (float64, float64) {
			lia := mustRun(engine.Config{Framework: engine.LIA, System: pt.sys, Model: pt.m, Workload: w, AssumeHostCapacity: true})
			other := mustRun(engine.Config{Framework: base, System: pt.sys, Model: pt.m, Workload: w, AssumeHostCapacity: true})
			return float64(other.Latency) / float64(lia.Latency), lia.Throughput / other.Throughput
		}
		ipexLat, _ := ratios(online, engine.IPEX)
		fgLat, _ := ratios(online, engine.FlexGen)
		_, ipexTput := ratios(offline, engine.IPEX)
		_, fgTput := ratios(offline, engine.FlexGen)
		return []string{pt.m.Name, pt.sys.Name,
			fmt.Sprintf("%.1fx", ipexLat), fmt.Sprintf("%.1fx", fgLat),
			fmt.Sprintf("%.1fx", ipexTput), fmt.Sprintf("%.1fx", fgTput)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// GraceHopper reproduces §8's what-if: LIA on a GH200 versus GNR-H100
// (the paper reports 1.8–2.3× lower latency and 3.0–4.1× higher
// throughput for Grace-Hopper).
func GraceHopper() *report.Table {
	t := report.NewTable(
		"§8: Grace-Hopper what-if — LIA on GH200 vs GNR-H100, OPT-175B",
		"metric", "workload", "GNR-H100", "GH200", "GH200 advantage")
	workloads := []trace.Workload{
		{Batch: 1, InputLen: 512, OutputLen: 32},
		{Batch: 1, InputLen: 2016, OutputLen: 32},
		{Batch: 64, InputLen: 512, OutputLen: 32},
		{Batch: 900, InputLen: 512, OutputLen: 32},
	}
	rows := mustMap(workloads, func(w trace.Workload) []string {
		gnr := mustRun(engine.Config{Framework: engine.LIA, System: hw.GNRH100, Model: model.OPT175B, Workload: w, AssumeHostCapacity: true})
		gh := mustRun(engine.Config{Framework: engine.LIA, System: hw.GH200, Model: model.OPT175B, Workload: w, AssumeHostCapacity: true})
		if w.Batch == 1 {
			return []string{"latency (s)", w.String(),
				fmt.Sprintf("%.2f", float64(gnr.Latency)), fmt.Sprintf("%.2f", float64(gh.Latency)),
				fmt.Sprintf("%.1fx", float64(gnr.Latency)/float64(gh.Latency))}
		}
		return []string{"throughput (tok/s)", w.String(),
			fmt.Sprintf("%.1f", gnr.Throughput), fmt.Sprintf("%.1f", gh.Throughput),
			fmt.Sprintf("%.1fx", gh.Throughput/gnr.Throughput)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// v100Cluster is the §8 alternative: three V100s (data offloading only)
// paired with a weaker CPU, at a GNR-A100-like total cost.
func v100Cluster() hw.System {
	weakCPU := hw.SPR
	weakCPU.Name = "low-end host"
	weakCPU.MatrixISA = hw.AVX512
	weakCPU.PeakMatrix = weakCPU.PeakVector
	weakCPU.Cost = 3_000
	v100 := hw.V100
	v100.PeerLink = hw.PCIe3x16 // no NVLink in the budget build
	return hw.System{
		Name: "3xV100", CPU: weakCPU, GPU: v100, GPUCount: 3,
		BasePower: 300, ChassisCost: 3_000,
	}
}

// CheaperGPUs reproduces §8's cost-alternative analysis: LIA on GNR-A100
// versus FlexGen-style data offloading on a 3×V100 box of similar cost.
func CheaperGPUs() *report.Table {
	t := report.NewTable(
		"§8: LIA (GNR-A100) vs data offloading on cost-equivalent 3xV100, OPT-175B",
		"workload", "LIA latency (s)", "3xV100 latency (s)", "LIA advantage", "LIA tput", "3xV100 tput", "tput advantage")
	cluster := v100Cluster()
	rows := mustMap([]trace.Workload{
		{Batch: 1, InputLen: 512, OutputLen: 32},
		{Batch: 64, InputLen: 512, OutputLen: 32},
	}, func(w trace.Workload) []string {
		lia := mustRun(engine.Config{Framework: engine.LIA, System: hw.GNRA100, Model: model.OPT175B, Workload: w, AssumeHostCapacity: true})
		// Data offloading across 3 V100s: model as FlexGen with tripled
		// effective PCIe bandwidth (three x16 slots stream concurrently)
		// on an AVX-only host.
		alt := cluster
		alt.GPU.HostLink.BW *= units.BytesPerSecond(alt.GPUCount)
		v := mustRun(engine.Config{Framework: engine.FlexGen, System: alt, Model: model.OPT175B, Workload: w, AssumeHostCapacity: true})
		return []string{w.String(),
			fmt.Sprintf("%.2f", float64(lia.Latency)),
			fmt.Sprintf("%.2f", float64(v.Latency)),
			fmt.Sprintf("%.1fx", float64(v.Latency)/float64(lia.Latency)),
			fmt.Sprintf("%.1f", lia.Throughput),
			fmt.Sprintf("%.1f", v.Throughput),
			fmt.Sprintf("%.1fx", lia.Throughput/v.Throughput)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// CXLCostSavings reproduces §8's memory-cost arithmetic: offloading 43%
// of the OPT-175B working set to CXL drops the memory system from
// ≈$6,300 to ≈$3,200.
func CXLCostSavings() *report.Table {
	t := report.NewTable(
		"§8: memory-system cost with CXL offloading, OPT-175B",
		"offloaded %", "all-DDR cost", "hybrid cost", "saved")
	capacity := model.OPT175B.ParamBytes() + 210*units.GB
	for _, frac := range []float64{0, 0.25, 0.43} {
		allDDR, withCXL, saved := cost.MemorySavings(capacity, frac)
		t.AddRow(fmt.Sprintf("%.0f%%", 100*frac), allDDR.String(), withCXL.String(), saved.String())
	}
	return t
}
