package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
)

// MoEAdaptability expands §7.1's "Adaptability to other models"
// paragraph into a measurable table: the optimal decode policy of a
// dense OPT-30B versus its 16-expert Mixture-of-Experts variant across
// batch sizes. As expert parameters grow while active FLOPs stay flat,
// the FFN sublayers' ops/byte collapses and the optimizer extends CPU
// offloading to FC1/FC2 — the paper's example policy (0,1,1,0,1,1).
func MoEAdaptability() *report.Table {
	t := report.NewTable(
		"§7.1: MoE adaptability — optimal decode policy, dense vs 16-expert (SPR-A100, L=512)",
		"B", "dense OPT-30B", "MoE-16x", "dense FC1 ops/byte", "MoE FC1 ops/byte")
	denseEnv := core.NewEnv(hw.SPRA100, model.OPT30B)
	moeEnv := core.NewEnv(hw.SPRA100, model.MoE16x)
	const l = 512
	for _, b := range []int{1, 16, 64, 256, 1024} {
		dense, _ := core.Optimize(denseEnv, model.Decode, b, l)
		moe, _ := core.Optimize(moeEnv, model.Decode, b, l)
		t.AddRow(fmt.Sprint(b), dense.String(), moe.String(),
			fmt.Sprintf("%.1f", model.OPT30B.OpsPerByte(model.Decode, model.FC1, b, l)),
			fmt.Sprintf("%.1f", model.MoE16x.OpsPerByte(model.Decode, model.FC1, b, l)))
	}
	return t
}
