// Package experiments regenerates every table and figure of the paper's
// evaluation (§3–§8). Each exported function returns renderable
// report.Table/report.Figure values; cmd/lia-bench prints them all, and
// the root bench suite wraps each one in a testing.B benchmark.
//
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records the
// measured-vs-paper comparison for each.
package experiments

import (
	"context"
	"fmt"
	"math"

	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/runner"
	"github.com/lia-sim/lia/internal/trace"
)

// mustRun executes an engine config through the shared memoization
// cache, panicking on configuration errors (experiment definitions are
// static; an error is a bug, not user input).
func mustRun(cfg engine.Config) engine.Result {
	r, err := engine.RunCached(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return r
}

// runCells evaluates every config on the parallel runner, preserving
// input order; identical cells dedupe through the engine cache.
func runCells(cfgs []engine.Config) []engine.Result {
	res, err := runner.Map(context.Background(), cfgs, func(_ context.Context, c engine.Config) (engine.Result, error) {
		return engine.RunCached(c)
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// mustMap fans fn over items on the parallel runner, preserving input
// order — the per-row/per-series parallelism the table generators use.
// fn must be pure (it may call mustRun; the engine cache is safe).
func mustMap[T, R any](items []T, fn func(T) R) []R {
	out, err := runner.Map(context.Background(), items, func(_ context.Context, it T) (R, error) {
		return fn(it), nil
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return out
}

// asLatency converts a result to end-to-end seconds, NaN on OOM.
func asLatency(r engine.Result) float64 {
	if r.OOM {
		return math.NaN()
	}
	return float64(r.Latency)
}

// asThroughput converts a result to tokens/s, NaN on OOM.
func asThroughput(r engine.Result) float64 {
	if r.OOM {
		return math.NaN()
	}
	return r.Throughput
}

// latencyOrNaN runs a config and returns end-to-end latency in seconds,
// NaN on OOM.
func latencyOrNaN(cfg engine.Config) float64 { return asLatency(mustRun(cfg)) }

// throughputOrNaN runs a config and returns tokens/s, NaN on OOM.
func throughputOrNaN(cfg engine.Config) float64 { return asThroughput(mustRun(cfg)) }

// latenciesOrNaN evaluates a config slice in parallel and returns each
// cell's latency (NaN on OOM) in input order.
func latenciesOrNaN(cfgs []engine.Config) []float64 {
	res := runCells(cfgs)
	out := make([]float64, len(res))
	for i, r := range res {
		out[i] = asLatency(r)
	}
	return out
}

// throughputsOrNaN evaluates a config slice in parallel and returns each
// cell's throughput (NaN on OOM) in input order.
func throughputsOrNaN(cfgs []engine.Config) []float64 {
	res := runCells(cfgs)
	out := make([]float64, len(res))
	for i, r := range res {
		out[i] = asThroughput(r)
	}
	return out
}

// onlineWorkload is the latency-driven scenario (§7): batch size 1.
func onlineWorkload(lin, lout int) trace.Workload {
	return trace.Workload{Batch: 1, InputLen: lin, OutputLen: lout}
}

// evalPoint names one (system, model) pairing of the evaluation matrix.
type evalPoint struct {
	sys hw.System
	m   model.Config
}

// evaluationMatrix is §7's system/model pairing: models that do not fit
// the GPU are run on each host.
func evaluationMatrix() []evalPoint {
	return []evalPoint{
		{hw.SPRA100, model.OPT30B},
		{hw.SPRA100, model.OPT175B},
		{hw.SPRH100, model.OPT66B},
		{hw.SPRH100, model.OPT175B},
	}
}

// frameworksCompared is the main three-way comparison.
var frameworksCompared = []engine.Framework{engine.LIA, engine.IPEX, engine.FlexGen}
