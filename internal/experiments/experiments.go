// Package experiments regenerates every table and figure of the paper's
// evaluation (§3–§8). Each exported function returns renderable
// report.Table/report.Figure values; cmd/lia-bench prints them all, and
// the root bench suite wraps each one in a testing.B benchmark.
//
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records the
// measured-vs-paper comparison for each.
package experiments

import (
	"fmt"
	"math"

	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/trace"
)

// mustRun executes an engine config, panicking on configuration errors
// (experiment definitions are static; an error is a bug, not user input).
func mustRun(cfg engine.Config) engine.Result {
	r, err := engine.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return r
}

// latencyOrNaN runs a config and returns end-to-end latency in seconds,
// NaN on OOM.
func latencyOrNaN(cfg engine.Config) float64 {
	r := mustRun(cfg)
	if r.OOM {
		return math.NaN()
	}
	return float64(r.Latency)
}

// throughputOrNaN runs a config and returns tokens/s, NaN on OOM.
func throughputOrNaN(cfg engine.Config) float64 {
	r := mustRun(cfg)
	if r.OOM {
		return math.NaN()
	}
	return r.Throughput
}

// onlineWorkload is the latency-driven scenario (§7): batch size 1.
func onlineWorkload(lin, lout int) trace.Workload {
	return trace.Workload{Batch: 1, InputLen: lin, OutputLen: lout}
}

// evalPoint names one (system, model) pairing of the evaluation matrix.
type evalPoint struct {
	sys hw.System
	m   model.Config
}

// evaluationMatrix is §7's system/model pairing: models that do not fit
// the GPU are run on each host.
func evaluationMatrix() []evalPoint {
	return []evalPoint{
		{hw.SPRA100, model.OPT30B},
		{hw.SPRA100, model.OPT175B},
		{hw.SPRH100, model.OPT66B},
		{hw.SPRH100, model.OPT175B},
	}
}

// frameworksCompared is the main three-way comparison.
var frameworksCompared = []engine.Framework{engine.LIA, engine.IPEX, engine.FlexGen}
