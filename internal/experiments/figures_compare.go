package experiments

import (
	"fmt"
	"math"

	"github.com/lia-sim/lia/internal/cost"
	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/trace"
)

// figure14Workload is the decode-dominated shape §7.8 compares on.
func figure14Workload(b int) trace.Workload {
	return trace.Workload{Batch: b, InputLen: 32, OutputLen: 256}
}

// Figure14 reproduces the multi-GPU cost comparison: per-GPU throughput
// and $/Mtoken of LIA on GNR-A100 versus 8-way tensor parallelism on a
// DGX-A100, at B ∈ {1, 64, 900}. The DGX OOMs at B=900.
func Figure14() (*report.Figure, *report.Figure) {
	bs := []int{1, 64, 900}
	ticks := make([]string, len(bs))
	for i, b := range bs {
		ticks[i] = fmt.Sprintf("B=%d", b)
	}
	tput := report.NewFigure("Figure 14 (top): per-GPU throughput, OPT-175B", "batch", "tokens/s/GPU", ticks...)
	tput.Unit = "%.2f"
	dollars := report.NewFigure("Figure 14 (bottom): inference cost, OPT-175B", "batch", "$/Mtoken", ticks...)
	dollars.Unit = "%.2f"

	assume := cost.Defaults()
	for _, sc := range []struct {
		name string
		fw   engine.Framework
		sys  hw.System
	}{
		{"LIA (GNR-A100)", engine.LIA, hw.GNRA100},
		{"DGX-A100 (TP-8)", engine.MultiGPU, hw.DGXA100},
	} {
		cfgs := make([]engine.Config, len(bs))
		for i, b := range bs {
			cfgs[i] = engine.Config{
				Framework:          sc.fw,
				System:             sc.sys,
				Model:              model.OPT175B,
				Workload:           figure14Workload(b),
				AssumeHostCapacity: true,
			}
		}
		tputVals := make([]float64, len(bs))
		costVals := make([]float64, len(bs))
		for i, r := range runCells(cfgs) {
			if r.OOM {
				tputVals[i] = math.NaN()
				costVals[i] = math.NaN()
				continue
			}
			tputVals[i] = cost.PerGPUThroughput(sc.sys, r.Throughput)
			costVals[i] = float64(assume.PerMillionTokens(sc.sys, r.Throughput))
		}
		tput.MustAdd(sc.name, tputVals...)
		dollars.MustAdd(sc.name, costVals...)
	}
	return tput, dollars
}

// Figure15 reproduces the PowerInfer comparison on GNR-A100 with
// Llama2-70B: online latency at B=1 across input lengths, and offline
// throughput at B ∈ {64, 900} (PowerInfer OOMs at 900).
func Figure15() (*report.Figure, *report.Figure) {
	lins := []int{32, 256, 1024, 2016}
	ticks := make([]string, len(lins))
	for i, l := range lins {
		ticks[i] = fmt.Sprint(l)
	}
	online := report.NewFigure("Figure 15 (left): Llama2-70B online latency on GNR-A100", "Lin", "s/query", ticks...)
	online.Unit = "%.2f"
	for _, fw := range []engine.Framework{engine.LIA, engine.PowerInfer} {
		cfgs := make([]engine.Config, len(lins))
		for i, lin := range lins {
			cfgs[i] = engine.Config{
				Framework: fw, System: hw.GNRA100, Model: model.Llama270B,
				Workload: onlineWorkload(lin, 32), AssumeHostCapacity: true,
			}
		}
		online.MustAdd(fw.String(), latenciesOrNaN(cfgs)...)
	}

	bs := []int{64, 900}
	bticks := []string{"B=64", "B=900"}
	offline := report.NewFigure("Figure 15 (right): Llama2-70B offline throughput on GNR-A100", "batch", "tokens/s", bticks...)
	offline.Unit = "%.1f"
	for _, fw := range []engine.Framework{engine.LIA, engine.PowerInfer} {
		cfgs := make([]engine.Config, len(bs))
		for i, b := range bs {
			cfgs[i] = engine.Config{
				Framework: fw, System: hw.GNRA100, Model: model.Llama270B,
				Workload:           trace.Workload{Batch: b, InputLen: 512, OutputLen: 32},
				AssumeHostCapacity: true,
			}
		}
		offline.MustAdd(fw.String(), throughputsOrNaN(cfgs)...)
	}
	return online, offline
}
