package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/memplan"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/trace"
)

// Table1 reproduces the symbolic Table 1 (operand sizes and compute
// counts per sublayer) alongside evaluated values for OPT-175B at the
// given shape.
func Table1(b, l int) *report.Table {
	m := model.OPT175B
	t := report.NewTable(
		fmt.Sprintf("Table 1: per-sublayer D_X / D_Y / C for BF16 (evaluated for %s, B=%d, L=%d)", m.Name, b, l),
		"stage", "sublayer", "D_X formula", "D_Y formula", "C formula", "D_X", "D_Y", "C")
	formulas := map[model.Stage]map[model.Sublayer][3]string{
		model.Prefill: {
			model.QKVMapping:    {"2BLd", "6d^2", "6BLd^2"},
			model.QKT:           {"2BLd", "2BLd", "2BL^2d"},
			model.SV:            {"2BLd", "2BLd", "2BL^2d"},
			model.OutProjection: {"2BLd", "2d^2", "2BLd^2"},
			model.FC1:           {"2BLd", "8d^2", "8BLd^2"},
			model.FC2:           {"8BLd", "8d^2", "8BLd^2"},
		},
		model.Decode: {
			model.QKVMapping:    {"2Bd", "6d^2", "6Bd^2"},
			model.QKT:           {"2Bd", "2BLd", "2BLd"},
			model.SV:            {"2Bd", "2BLd", "2BLd"},
			model.OutProjection: {"2Bd", "2d^2", "2Bd^2"},
			model.FC1:           {"2Bd", "8d^2", "8Bd^2"},
			model.FC2:           {"8Bd", "8d^2", "8Bd^2"},
		},
	}
	for _, stage := range []model.Stage{model.Prefill, model.Decode} {
		for _, s := range model.Sublayers() {
			f := formulas[stage][s]
			t.AddRow(stage.String(), s.String(), f[0], f[1], f[2],
				m.DataX(stage, s, b, l).String(),
				m.DataY(stage, s, b, l).String(),
				m.Compute(stage, s, b, l).String())
		}
	}
	return t
}

// Table3 reproduces the CXL offloading study: OPT-30B at B=900 on
// SPR-A100 with two expanders — throughput with and without parameter
// offloading, the DDR percentage offloaded, and the throughput at the
// enlarged batch the freed DDR admits.
func Table3() *report.Table {
	sys := hw.SPRA100.WithCXL(2, hw.SamsungCXL128)
	m := model.OPT30B
	const b, lin = 900, 32
	t := report.NewTable(
		"Table 3: OPT-30B inference throughput with and without CXL parameter offloading (B=900, Lin=32, SPR-A100)",
		"Lout", "LIA (tok/s)", "LIA w/ CXL (tok/s)", "offloaded %", "B w/ CXL", "LIA w/ CXL, larger B (tok/s)")

	rows := mustMap([]int{32, 64, 128, 256}, func(lout int) []string {
		w := trace.Workload{Batch: b, InputLen: lin, OutputLen: lout}
		base := mustRun(engine.Config{
			Framework: engine.LIA, System: sys, Model: m, Workload: w, AssumeHostCapacity: true,
		})
		withCXL := mustRun(engine.Config{
			Framework: engine.LIA, System: sys, Model: m, Workload: w,
			Placement: cxl.PolicyPlacement(), AssumeHostCapacity: true,
		})
		// Enlarged batch under the same DDR footprint.
		ddrPlan, err := memplan.PlanHost(sys, m, b, lin+lout, cxl.DDROnlyPlacement())
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		bigB, err := memplan.MaxBatchWithinDDR(sys, m, lin+lout, ddrPlan.DDRUsed, 8192, cxl.PolicyPlacement())
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		big := mustRun(engine.Config{
			Framework: engine.LIA, System: sys, Model: m,
			Workload:  trace.Workload{Batch: bigB, InputLen: lin, OutputLen: lout},
			Placement: cxl.PolicyPlacement(), AssumeHostCapacity: true,
		})
		return []string{fmt.Sprint(lout),
			fmt.Sprintf("%.2f", base.Throughput),
			fmt.Sprintf("%.2f", withCXL.Throughput),
			fmt.Sprintf("%.1f%%", 100*withCXL.HostPlan.OffloadedFraction),
			fmt.Sprint(bigB),
			fmt.Sprintf("%.2f", big.Throughput)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// Table4 reproduces the ablation study: OPT-30B inference latency for
// Lin=256, Lout=32 on SPR-A100 with each optimization disabled and with
// FlexGen's fixed policy forced.
func Table4() *report.Table {
	t := report.NewTable(
		"Table 4: ablation, OPT-30B latency (s), Lin=256, Lout=32, SPR-A100",
		"setting", "B=1", "B=64", "B=900")
	fgPolicy := core.PartialCPU
	settings := []struct {
		name string
		ab   engine.Ablation
	}{
		{"All optimizations", engine.Ablation{}},
		{"No Optimization-1", engine.Ablation{NoOpt1: true}},
		{"No Optimization-2", engine.Ablation{NoOpt2: true}},
		{"w/ FlexGen's policy", engine.Ablation{ForcePolicy: &fgPolicy}},
	}
	bs := []int{1, 64, 900}
	cfgs := make([]engine.Config, 0, len(settings)*len(bs))
	for _, s := range settings {
		for _, b := range bs {
			cfgs = append(cfgs, engine.Config{
				Framework: engine.LIA, System: hw.SPRA100, Model: model.OPT30B,
				Workload:           trace.Workload{Batch: b, InputLen: 256, OutputLen: 32},
				Ablation:           s.ab,
				AssumeHostCapacity: true,
			})
		}
	}
	results := runCells(cfgs)
	for si, s := range settings {
		row := []string{s.name}
		for bi := range bs {
			row = append(row, fmt.Sprintf("%.2f", float64(results[si*len(bs)+bi].Latency)))
		}
		t.AddRow(row...)
	}
	return t
}

// Table5 reproduces the runtime breakdown: CPU compute, GPU compute and
// transfer time of LIA, IPEX, and FlexGen during OPT-30B inference
// (Lin=256, Lout=32, SPR-A100, overlap disabled so the components are
// additive).
func Table5() *report.Table {
	t := report.NewTable(
		"Table 5: runtime breakdown (s), OPT-30B, Lin=256, Lout=32, SPR-A100, overlap off",
		"B", "LIA CPU", "LIA GPU", "LIA Com.", "IPEX CPU", "FlexGen CPU", "FlexGen GPU", "FlexGen Com.")
	rows := mustMap([]int{1, 64, 900}, func(b int) []string {
		w := trace.Workload{Batch: b, InputLen: 256, OutputLen: 32}
		lia := mustRun(engine.Config{
			Framework: engine.LIA, System: hw.SPRA100, Model: model.OPT30B, Workload: w,
			Ablation: engine.Ablation{NoOpt2: true}, AssumeHostCapacity: true,
		})
		ipex := mustRun(engine.Config{
			Framework: engine.IPEX, System: hw.SPRA100, Model: model.OPT30B, Workload: w,
			AssumeHostCapacity: true,
		})
		fg := mustRun(engine.Config{
			Framework: engine.FlexGen, System: hw.SPRA100, Model: model.OPT30B, Workload: w,
			AssumeHostCapacity: true,
		})
		return []string{fmt.Sprint(b),
			fmt.Sprintf("%.2f", float64(lia.Breakdown.CPU)),
			fmt.Sprintf("%.2f", float64(lia.Breakdown.GPU)),
			fmt.Sprintf("%.2f", float64(lia.Breakdown.Comm)),
			fmt.Sprintf("%.2f", float64(ipex.Breakdown.CPU)),
			fmt.Sprintf("%.2f", float64(fg.Breakdown.CPU)),
			fmt.Sprintf("%.2f", float64(fg.Breakdown.GPU)),
			fmt.Sprintf("%.2f", float64(fg.Breakdown.Comm))}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t
}

// table6Point evaluates LIA's speedup range over a baseline framework on
// one system/model across the standard shape grid; returns "lo-hi"
// formatted multipliers.
func table6Range(sys hw.System, m model.Config, base engine.Framework, online bool) string {
	lo, hi := 0.0, 0.0
	first := true
	record := func(r float64) {
		if first {
			lo, hi = r, r
			first = false
			return
		}
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	shapes := []trace.Workload{}
	if online {
		for _, lin := range []int{32, 512, 1024} {
			shapes = append(shapes, trace.Workload{Batch: 1, InputLen: lin, OutputLen: 32})
		}
	} else {
		for _, b := range []int{64, 900} {
			for _, lin := range []int{32, 512} {
				shapes = append(shapes, trace.Workload{Batch: b, InputLen: lin, OutputLen: 32})
			}
		}
	}
	cfgs := make([]engine.Config, 0, 2*len(shapes))
	for _, w := range shapes {
		cfgs = append(cfgs,
			engine.Config{Framework: engine.LIA, System: sys, Model: m, Workload: w, AssumeHostCapacity: true},
			engine.Config{Framework: base, System: sys, Model: m, Workload: w, AssumeHostCapacity: true})
	}
	results := runCells(cfgs)
	for i := 0; i < len(results); i += 2 {
		lia, other := results[i], results[i+1]
		if lia.OOM || other.OOM {
			continue
		}
		if online {
			record(float64(other.Latency) / float64(lia.Latency))
		} else {
			record(lia.Throughput / other.Throughput)
		}
	}
	return fmt.Sprintf("%.1f-%.1fx", lo, hi)
}

// Table6 reproduces the Granite Rapids scaling summary: LIA's improvement
// over IPEX and FlexGen on GNR-A100 and GNR-H100.
func Table6() *report.Table {
	t := report.NewTable(
		"Table 6: LIA improvement over IPEX and FlexGen on GNR systems",
		"scenario", "vs", "GNR-A100 OPT-30B", "GNR-A100 OPT-175B", "GNR-H100 OPT-66B", "GNR-H100 OPT-175B")
	for _, sc := range []struct {
		name   string
		online bool
	}{{"Online", true}, {"Offline", false}} {
		for _, base := range []engine.Framework{engine.IPEX, engine.FlexGen} {
			cols := mustMap([]evalPoint{
				{hw.GNRA100, model.OPT30B},
				{hw.GNRA100, model.OPT175B},
				{hw.GNRH100, model.OPT66B},
				{hw.GNRH100, model.OPT175B},
			}, func(pt evalPoint) string {
				return table6Range(pt.sys, pt.m, base, sc.online)
			})
			t.AddRow(append([]string{sc.name, base.String()}, cols...)...)
		}
	}
	return t
}
