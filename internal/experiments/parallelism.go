package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/perf"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/units"
)

// ppStageTime returns one pipeline stage's decode-step time: layers/n
// decoder layers on one GPU with resident weights, plus the activation
// hop to the next stage.
func ppStageTime(gpu perf.Device, link hw.LinkSpec, m model.Config, n, b, l int) (stage, hop units.Seconds) {
	layersPerStage := m.Layers / n
	var perLayer units.Seconds
	for _, s := range model.Sublayers() {
		perLayer += gpu.Time(
			m.Compute(model.Decode, s, b, l),
			m.DataX(model.Decode, s, b, l)+m.DataY(model.Decode, s, b, l),
			b)
	}
	hidden := m.DataX(model.Decode, model.QKVMapping, b, l)
	return perLayer * units.Seconds(layersPerStage), link.Transfer(hidden)
}

// ParallelismComparison contrasts the two ways to spread an LLM across
// the DGX's eight GPUs — tensor parallelism (every GPU works on every
// layer, two all-reduces per layer) versus pipeline parallelism (each GPU
// owns 1/8 of the layers, activations hop between stages) — for decode at
// B ∈ {1, 64}. TP buys per-token latency; PP buys throughput once the
// pipeline fills but cannot accelerate a single token. This grounds §8's
// choice of tensor parallelism for the multi-GPU extension.
func ParallelismComparison() *report.Table {
	t := report.NewTable(
		"TP-8 vs PP-8 decode on DGX-A100, OPT-175B (L=512)",
		"B", "scheme", "per-token latency (s)", "steady throughput (tok/s)")
	m := model.OPT175B
	gpu := perf.GPUDevice(hw.A100SXM)
	peer := hw.NVLink3
	const n = 8
	const l = 512

	for _, b := range []int{1, 64} {
		// Tensor parallelism: per-layer work / 8 plus two all-reduces.
		var tpLayer units.Seconds
		for _, s := range model.Sublayers() {
			tpLayer += gpu.Time(
				units.FLOPs(float64(m.Compute(model.Decode, s, b, l))/n),
				units.Bytes(float64(m.DataX(model.Decode, s, b, l)+m.DataY(model.Decode, s, b, l))/n),
				b)
		}
		hidden := m.DataX(model.Decode, model.QKVMapping, b, l)
		tpLayer += 2 * core.TPAllReduceTime(n, peer, hidden)
		tpToken := tpLayer * units.Seconds(m.Layers)
		t.AddRow(fmt.Sprint(b), "TP-8",
			fmt.Sprintf("%.4f", float64(tpToken)),
			fmt.Sprintf("%.1f", float64(b)/float64(tpToken)))

		// Pipeline parallelism: a token traverses all stages serially;
		// steady-state throughput is one batch per stage time.
		stage, hop := ppStageTime(gpu, peer, m, n, b, l)
		ppToken := units.Seconds(n)*stage + units.Seconds(n-1)*hop
		t.AddRow(fmt.Sprint(b), "PP-8",
			fmt.Sprintf("%.4f", float64(ppToken)),
			fmt.Sprintf("%.1f", float64(b)/float64(stage+hop)))
	}
	return t
}
