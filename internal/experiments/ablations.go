package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/exec"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/memplan"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/units"
)

// ModelingAblations quantifies the modeling decisions DESIGN.md §4 calls
// out, so a reader can see how much each one matters:
//
//  1. decode-context growth — summing per-token decode latencies with the
//     KV cache growing vs. evaluating once at the mean context length;
//  2. the mini-batch compute penalty — the §5.2 sub-linear-scaling factor
//     behind LIA's whole-batch decode;
//  3. pinning granularity — LIA's whole-layer packing vs. FlexGen's
//     sublayer columns, across models;
//  4. overlap — Optimization-2's effect at each batch size.
func ModelingAblations() *report.Table {
	t := report.NewTable(
		"Modeling ablations (OPT-30B on SPR-A100 unless noted)",
		"decision", "setting", "metric", "value")
	sys := hw.SPRA100
	m := model.OPT30B
	env := core.NewEnv(sys, m)

	// 1. Decode KV growth: 256 decode steps from context 512.
	const b, start, steps = 32, 512, 256
	growPlan := exec.Plan{Env: env, Policy: core.FullCPU, Layers: m.Layers, Overlap: true, MiniBatches: 1}
	grown, err := growPlan.RunDecodeSequence(b, start, steps)
	if err != nil {
		panic(err)
	}
	flat, err := growPlan.RunStage(model.Decode, b, start+steps/2)
	if err != nil {
		panic(err)
	}
	flatTotal := flat.Latency * units.Seconds(steps)
	t.AddRow("decode context growth", "per-token sum", "decode s (B=32, 256 steps)", fmt.Sprintf("%.2f", float64(grown.Latency)))
	t.AddRow("decode context growth", "mean-context approx", "decode s", fmt.Sprintf("%.2f (%.1f%% error)",
		float64(flatTotal), 100*(float64(flatTotal)/float64(grown.Latency)-1)))

	// 2. Mini-batch penalty sweep on FlexGen-style decode at B=900.
	for _, pen := range []float64{1.0, 1.2, 1.4} {
		p := exec.Plan{
			Env: env, Policy: core.PartialCPU, Layers: m.Layers,
			Overlap: true, MiniBatches: 2, MiniBatchPenalty: pen,
		}
		res, err := p.RunStage(model.Decode, 900, 256)
		if err != nil {
			panic(err)
		}
		t.AddRow("mini-batch penalty", fmt.Sprintf("%.1fx", pen), "decode step s (B=900)", fmt.Sprintf("%.3f", float64(res.Latency)))
	}

	// 3. Pinning granularity across models on the A100.
	for _, mc := range []model.Config{model.OPT30B, model.OPT66B, model.OPT175B} {
		lia := memplan.PlanLIAGPU(hw.A100, mc, 1, 2016)
		fg := memplan.PlanFlexGenGPU(hw.A100, mc, 1, 2016)
		t.AddRow("pinning granularity", mc.Name, "pinned params LIA vs FlexGen",
			fmt.Sprintf("%.0f%% vs %.0f%%", 100*lia.PinnedParamFraction, 100*fg.PinnedParamFraction))
	}

	// 4. Overlap effect per batch size (prefill stage).
	for _, bb := range []int{1, 64, 900} {
		on := exec.Plan{Env: env, Policy: core.FullGPU, Layers: m.Layers, Overlap: true, MiniBatches: 1}
		off := on
		off.Overlap = false
		rOn, err := on.RunStage(model.Prefill, bb, 256)
		if err != nil {
			panic(err)
		}
		rOff, err := off.RunStage(model.Prefill, bb, 256)
		if err != nil {
			panic(err)
		}
		t.AddRow("overlap (Opt-2)", fmt.Sprintf("B=%d", bb), "prefill speedup from overlap",
			fmt.Sprintf("%.2fx", float64(rOff.Latency)/float64(rOn.Latency)))
	}
	return t
}
