package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/exec"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/units"
)

// Host parameter-source tiers for the storage study. DDR is effectively
// unlimited relative to PCIe; two interleaved CXL expanders just reach
// PCIe 4.0; NVMe tiers fall below it and become the bottleneck.
var storageTiers = []struct {
	name string
	bw   units.BytesPerSecond // 0 = uncapped (DDR)
}{
	{"DDR (uncapped)", 0},
	{"2x CXL (34 GB/s)", 34 * units.GBps},
	{"NVMe Gen4 (7 GB/s)", 7 * units.GBps},
	{"NVMe Gen3 (3.5 GB/s)", 3.5 * units.GBps},
}

// StorageTiers extends the §6 placement study downward: what happens to
// an offloaded OPT-175B decode pass when the parameters live on ever
// slower tiers. Observation-1 generalizes — a tier is free exactly while
// it outruns the PCIe link — and breaks below it: NVMe-resident
// parameters throttle every GPU-assigned pass to the device's read
// bandwidth (the storage-offloading regime of FlexGen [43] and
// DeepSpeed [13]).
func StorageTiers() *report.Table {
	t := report.NewTable(
		"Storage-tier study: OPT-175B decode step (B=64, L=512) on SPR-A100 with parameters on each tier",
		"tier", "param source BW", "full-GPU step (s)", "vs DDR", "optimal policy", "optimal step (s)")
	m := model.OPT175B
	var ddrStep float64
	for _, tier := range storageTiers {
		env := core.NewEnv(hw.SPRA100, m)
		env.ParamSrcBW = tier.bw
		if tier.bw > 0 {
			// The tier throttles every parameter read — the CPU's too, not
			// just the PCIe stream (a CPU-offloaded sublayer still has to
			// pull its weights off the device).
			degraded := env.CPUParam
			if degraded.MemBW > tier.bw {
				degraded.MemBW = tier.bw
				degraded.StreamEff = 1 // the device read itself is the limit
			}
			env.CPUParam = degraded
		}
		plan := exec.Plan{
			Env: env, Policy: core.FullGPU, Layers: m.Layers,
			Overlap: true, MiniBatches: 1,
		}
		res, err := plan.RunStage(model.Decode, 64, 512)
		if err != nil {
			panic(err)
		}
		if tier.bw == 0 {
			ddrStep = float64(res.Latency)
		}
		pol, _ := core.Optimize(env, model.Decode, 64, 512)
		optPlan := plan
		optPlan.Policy = pol
		optRes, err := optPlan.RunStage(model.Decode, 64, 512)
		if err != nil {
			panic(err)
		}
		bwStr := "host DDR"
		if tier.bw > 0 {
			bwStr = tier.bw.String()
		}
		t.AddRow(tier.name, bwStr,
			fmt.Sprintf("%.2f", float64(res.Latency)),
			fmt.Sprintf("%.2fx", float64(res.Latency)/ddrStep),
			pol.String(),
			fmt.Sprintf("%.2f", float64(optRes.Latency)))
	}
	return t
}
