package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/trace"
)

// gnrCluster returns a GNR host with n PCIe-attached A100s (no NVLink —
// the §8 caveat about PCIe-interconnected GPUs applies).
func gnrCluster(n int) hw.System {
	sys := hw.GNRA100
	sys.Name = fmt.Sprintf("GNR-%dxA100", n)
	sys.GPUCount = n
	return sys
}

// MultiGPUScaling explores §8's "Scaling to multi-GPU" discussion: LIA
// with tensor parallelism across 1–8 PCIe-attached A100s, for OPT-175B.
// GPU count shifts the optimal policy GPU-ward (aggregate compute and
// PCIe bandwidth grow) while all-reduce overhead erodes the scaling.
func MultiGPUScaling() *report.Table {
	t := report.NewTable(
		"§8: LIA tensor-parallel scaling, OPT-175B on GNR + n×A100 (PCIe)",
		"GPUs", "online s/query", "online speedup", "offline tok/s", "offline speedup", "decode policy")
	online := trace.Workload{Batch: 1, InputLen: 512, OutputLen: 32}
	offline := trace.Workload{Batch: 64, InputLen: 512, OutputLen: 32}
	var baseLat, baseTput float64
	for _, n := range []int{1, 2, 4, 8} {
		sys := gnrCluster(n)
		on := mustRun(engine.Config{Framework: engine.LIA, System: sys, Model: model.OPT175B, Workload: online, AssumeHostCapacity: true})
		off := mustRun(engine.Config{Framework: engine.LIA, System: sys, Model: model.OPT175B, Workload: offline, AssumeHostCapacity: true})
		if n == 1 {
			baseLat = float64(on.Latency)
			baseTput = off.Throughput
		}
		t.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%.2f", float64(on.Latency)),
			fmt.Sprintf("%.2fx", baseLat/float64(on.Latency)),
			fmt.Sprintf("%.1f", off.Throughput),
			fmt.Sprintf("%.2fx", off.Throughput/baseTput),
			on.DecodePolicy.String())
	}
	return t
}
