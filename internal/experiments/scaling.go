package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/trace"
)

// gnrCluster returns a GNR host with n PCIe-attached A100s (no NVLink —
// the §8 caveat about PCIe-interconnected GPUs applies).
func gnrCluster(n int) hw.System {
	sys := hw.GNRA100
	sys.Name = fmt.Sprintf("GNR-%dxA100", n)
	sys.GPUCount = n
	return sys
}

// MultiGPUScaling explores §8's "Scaling to multi-GPU" discussion: LIA
// with tensor parallelism across 1–8 PCIe-attached A100s, for OPT-175B.
// GPU count shifts the optimal policy GPU-ward (aggregate compute and
// PCIe bandwidth grow) while all-reduce overhead erodes the scaling.
func MultiGPUScaling() *report.Table {
	t := report.NewTable(
		"§8: LIA tensor-parallel scaling, OPT-175B on GNR + n×A100 (PCIe)",
		"GPUs", "online s/query", "online speedup", "offline tok/s", "offline speedup", "decode policy")
	online := trace.Workload{Batch: 1, InputLen: 512, OutputLen: 32}
	offline := trace.Workload{Batch: 64, InputLen: 512, OutputLen: 32}
	// Rows normalize against the n=1 baseline, so evaluate every cluster
	// size in parallel first and assemble the table afterwards.
	ns := []int{1, 2, 4, 8}
	type pair struct{ on, off engine.Result }
	pairs := mustMap(ns, func(n int) pair {
		sys := gnrCluster(n)
		return pair{
			on:  mustRun(engine.Config{Framework: engine.LIA, System: sys, Model: model.OPT175B, Workload: online, AssumeHostCapacity: true}),
			off: mustRun(engine.Config{Framework: engine.LIA, System: sys, Model: model.OPT175B, Workload: offline, AssumeHostCapacity: true}),
		}
	})
	baseLat := float64(pairs[0].on.Latency)
	baseTput := pairs[0].off.Throughput
	for i, n := range ns {
		on, off := pairs[i].on, pairs[i].off
		t.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%.2f", float64(on.Latency)),
			fmt.Sprintf("%.2fx", baseLat/float64(on.Latency)),
			fmt.Sprintf("%.1f", off.Throughput),
			fmt.Sprintf("%.2fx", off.Throughput/baseTput),
			on.DecodePolicy.String())
	}
	return t
}
