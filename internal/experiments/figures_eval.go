package experiments

import (
	"fmt"
	"math"

	"github.com/lia-sim/lia/internal/engine"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/trace"
)

// Figure10 reproduces the online (B=1) latency comparison among LIA,
// IPEX and FlexGen, one figure per (system, model, L_out) combination.
// Points whose host footprint exceeds the testbed's 512 GB DDR follow
// the paper's latency-model convention (starred bars): they are still
// evaluated, with capacity assumed.
func Figure10() []*report.Figure {
	var figs []*report.Figure
	for _, pt := range evaluationMatrix() {
		for _, lout := range trace.RepresentativeOutputs() {
			lins := trace.RepresentativeInputs(pt.m.MaxSeqLen, lout)
			ticks := make([]string, len(lins))
			for i, l := range lins {
				ticks[i] = fmt.Sprint(l)
			}
			fig := report.NewFigure(
				fmt.Sprintf("Figure 10: online latency, %s on %s, Lout=%d", pt.m.Name, pt.sys.Name, lout),
				"Lin", "s/query", ticks...)
			fig.Unit = "%.2f"
			cfgs := make([]engine.Config, 0, len(frameworksCompared)*len(lins))
			for _, fw := range frameworksCompared {
				for _, lin := range lins {
					cfgs = append(cfgs, engine.Config{
						Framework:          fw,
						System:             pt.sys,
						Model:              pt.m,
						Workload:           onlineWorkload(lin, lout),
						AssumeHostCapacity: true,
					})
				}
			}
			vals := latenciesOrNaN(cfgs)
			for fi, fw := range frameworksCompared {
				fig.MustAdd(fw.String(), vals[fi*len(lins):(fi+1)*len(lins)]...)
			}
			figs = append(figs, fig)
		}
	}
	return figs
}

// Figure11 reproduces the offline throughput comparison at B=64 and
// B=900 (tokens/s; higher is better).
func Figure11() []*report.Figure {
	var figs []*report.Figure
	for _, pt := range evaluationMatrix() {
		for _, lout := range trace.RepresentativeOutputs() {
			lins := trace.RepresentativeInputs(pt.m.MaxSeqLen, lout)
			var ticks []string
			type shape struct{ b, lin int }
			var shapes []shape
			for _, b := range []int{64, 900} {
				for _, lin := range lins {
					shapes = append(shapes, shape{b, lin})
					ticks = append(ticks, fmt.Sprintf("B=%d,Lin=%d", b, lin))
				}
			}
			fig := report.NewFigure(
				fmt.Sprintf("Figure 11: offline throughput, %s on %s, Lout=%d", pt.m.Name, pt.sys.Name, lout),
				"shape", "tokens/s", ticks...)
			fig.Unit = "%.1f"
			cfgs := make([]engine.Config, 0, len(frameworksCompared)*len(shapes))
			for _, fw := range frameworksCompared {
				for _, s := range shapes {
					cfgs = append(cfgs, engine.Config{
						Framework:          fw,
						System:             pt.sys,
						Model:              pt.m,
						Workload:           trace.Workload{Batch: s.b, InputLen: s.lin, OutputLen: lout},
						AssumeHostCapacity: true, // starred bars beyond 512 GB DDR
					})
				}
			}
			vals := throughputsOrNaN(cfgs)
			for fi, fw := range frameworksCompared {
				fig.MustAdd(fw.String(), vals[fi*len(shapes):(fi+1)*len(shapes)]...)
			}
			figs = append(figs, fig)
		}
	}
	return figs
}

// Figure12 reproduces the energy comparison on SPR-A100: energy per
// generated token of IPEX and FlexGen normalized to LIA's.
func Figure12() *report.Figure {
	type point struct {
		m      model.Config
		b, lin int
	}
	points := []point{
		{model.OPT30B, 1, 32}, {model.OPT30B, 1, 1024},
		{model.OPT30B, 64, 32}, {model.OPT30B, 64, 1024},
		{model.OPT30B, 900, 32},
		{model.OPT175B, 1, 32}, {model.OPT175B, 64, 32}, {model.OPT175B, 900, 32},
	}
	ticks := make([]string, len(points))
	for i, p := range points {
		ticks[i] = fmt.Sprintf("%s B=%d Lin=%d", p.m.Name, p.b, p.lin)
	}
	fig := report.NewFigure("Figure 12: energy per token normalized to LIA (SPR-A100, Lout=32)", "workload", "x LIA", ticks...)
	fig.Unit = "%.2f"

	energies := func(fw engine.Framework) []float64 {
		cfgs := make([]engine.Config, len(points))
		for i, p := range points {
			cfgs[i] = engine.Config{
				Framework:          fw,
				System:             hw.SPRA100,
				Model:              p.m,
				Workload:           trace.Workload{Batch: p.b, InputLen: p.lin, OutputLen: 32},
				AssumeHostCapacity: true,
			}
		}
		vals := make([]float64, len(points))
		for i, r := range runCells(cfgs) {
			if r.OOM {
				vals[i] = math.NaN()
			} else {
				vals[i] = float64(r.EnergyPerToken)
			}
		}
		return vals
	}
	lia := energies(engine.LIA)
	for _, fw := range []engine.Framework{engine.IPEX, engine.FlexGen} {
		raw := energies(fw)
		norm := make([]float64, len(raw))
		for i := range raw {
			norm[i] = raw[i] / lia[i]
		}
		fig.MustAdd(fw.String(), norm...)
	}
	return fig
}

// Figure13 reproduces the CPU-vs-GPU scaling study: LIA on GNR-A100
// against LIA on SPR-H100 for OPT-175B, online latency and offline
// throughput.
func Figure13() (*report.Figure, *report.Figure) {
	lins := []int{32, 256, 1024, 2016}
	ticks := make([]string, len(lins))
	for i, l := range lins {
		ticks[i] = fmt.Sprint(l)
	}
	online := report.NewFigure("Figure 13 (left): OPT-175B online latency, LIA", "Lin", "s/query", ticks...)
	online.Unit = "%.2f"
	for _, sys := range []hw.System{hw.GNRA100, hw.SPRH100} {
		cfgs := make([]engine.Config, len(lins))
		for i, lin := range lins {
			cfgs[i] = engine.Config{
				Framework: engine.LIA, System: sys, Model: model.OPT175B,
				Workload: onlineWorkload(lin, 32), AssumeHostCapacity: true,
			}
		}
		online.MustAdd(sys.Name, latenciesOrNaN(cfgs)...)
	}

	type shape struct{ b, lin int }
	shapes := []shape{{64, 32}, {64, 1024}, {900, 32}, {900, 1024}}
	sticks := make([]string, len(shapes))
	for i, s := range shapes {
		sticks[i] = fmt.Sprintf("B=%d,Lin=%d", s.b, s.lin)
	}
	offline := report.NewFigure("Figure 13 (right): OPT-175B offline throughput, LIA", "shape", "tokens/s", sticks...)
	offline.Unit = "%.1f"
	for _, sys := range []hw.System{hw.GNRA100, hw.SPRH100} {
		cfgs := make([]engine.Config, len(shapes))
		for i, s := range shapes {
			cfgs[i] = engine.Config{
				Framework: engine.LIA, System: sys, Model: model.OPT175B,
				Workload:           trace.Workload{Batch: s.b, InputLen: s.lin, OutputLen: 32},
				AssumeHostCapacity: true,
			}
		}
		offline.MustAdd(sys.Name, throughputsOrNaN(cfgs)...)
	}
	return online, offline
}
