package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/exec"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
)

// Figure7View is the rendered timing diagram plus its underlying task
// table, so it can print as ASCII and export as CSV/markdown.
type Figure7View struct {
	gantt string
	table *report.Table
}

// String renders the Gantt followed by the task table.
func (v *Figure7View) String() string { return v.gantt + "\n" + v.table.String() }

// CSV exports the task intervals.
func (v *Figure7View) CSV() string { return v.table.CSV() }

// Markdown exports the task intervals as a markdown table.
func (v *Figure7View) Markdown() string { return v.table.Markdown() }

// Figure7 reproduces the paper's overlap timing diagram: a decoder-layer
// pipeline under Optimization-2 with the figure's example policies —
// prefill p = (0,0,0,0,0,0) with two mini-batches, and decode
// p = (0,1,1,0,0,0) whole-batch — showing the next layer's transfers
// running under the current layer's compute.
func Figure7() (*Figure7View, *Figure7View) {
	env := core.NewEnv(hw.SPRA100, model.OPT175B)
	const layers = 4 // enough to show the steady-state pipeline

	render := func(stage model.Stage, policy core.Policy, mb int, b, l int, title string) *Figure7View {
		plan := exec.Plan{
			Env:         env,
			Policy:      policy,
			Layers:      layers,
			Overlap:     true,
			MiniBatches: mb,
		}
		_, entries, err := plan.TraceStage(stage, b, l)
		if err != nil {
			panic(err)
		}
		table := report.NewTable(title, "task", "resource", "start (s)", "finish (s)")
		rows := make([]report.GanttRow, 0, len(entries))
		for _, e := range entries {
			if e.Finish == e.Start {
				continue
			}
			rows = append(rows, report.GanttRow{
				Label: e.ID, Lane: e.Resource,
				Start: float64(e.Start), Finish: float64(e.Finish),
			})
			table.AddRow(e.ID, e.Resource,
				fmt.Sprintf("%.4f", float64(e.Start)), fmt.Sprintf("%.4f", float64(e.Finish)))
		}
		return &Figure7View{gantt: report.Gantt(title, rows, 64), table: table}
	}

	prefill := render(model.Prefill, core.FullGPU, 2, 32, 512,
		"Figure 7 (top): prefill pipeline, p=(0,0,0,0,0,0), 2 mini-batches, OPT-175B B=32 L=512, SPR-A100")
	decode := render(model.Decode, core.PartialCPU, 1, 32, 512,
		"Figure 7 (bottom): decode pipeline, p=(0,1,1,0,0,0), whole batch")
	return prefill, decode
}
