package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/spec"
)

// SpeculativeDecoding explores speculative decoding on the offloaded
// stack: OPT-6.7B drafting for an offloaded OPT-175B target on SPR-A100
// at B=1, across speculation depths and acceptance rates. Because every
// target pass moves the full parameter set, batched verification
// amortizes exactly the cost Figure 3 shows dominating — speculation and
// offloading compound.
func SpeculativeDecoding() *report.Figure {
	gammas := []int{1, 2, 4, 8}
	ticks := make([]string, len(gammas))
	for i, g := range gammas {
		ticks[i] = fmt.Sprintf("γ=%d", g)
	}
	fig := report.NewFigure(
		"Speculative decoding speedup: OPT-6.7B draft → offloaded OPT-175B target (SPR-A100, B=1, L=512)",
		"depth", "speedup vs plain decode", ticks...)
	fig.Unit = "%.2f"
	for _, alpha := range []float64{0.6, 0.8, 0.9} {
		vals := make([]float64, len(gammas))
		for i, g := range gammas {
			res, err := spec.Estimate(spec.Config{
				System: hw.SPRA100, Target: model.OPT175B, Draft: model.OPT6B7,
				Gamma: g, Acceptance: alpha, Batch: 1, Context: 512,
			})
			if err != nil {
				panic(err)
			}
			vals[i] = res.Speedup
		}
		fig.MustAdd(fmt.Sprintf("α=%.1f", alpha), vals...)
	}
	return fig
}
