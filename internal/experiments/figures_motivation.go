package experiments

import (
	"fmt"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/perf"
	"github.com/lia-sim/lia/internal/report"
	"github.com/lia-sim/lia/internal/units"
)

// Figure1 reproduces the ops/byte heatmap: the arithmetic intensity of
// every sublayer in both stages for OPT-175B at L=512, B=180.
func Figure1() *report.Table {
	const b, l = 180, 512
	t := report.NewTable(
		fmt.Sprintf("Figure 1: operations/byte heatmap, %s, B=%d, L=%d", model.OPT175B.Name, b, l),
		"stage", "sublayer", "D_X", "D_Y", "FLOPs", "ops/byte")
	for _, cell := range model.OPT175B.OpsByteHeatmap(b, l) {
		dx := model.OPT175B.DataX(cell.Stage, cell.Sublayer, b, l)
		dy := model.OPT175B.DataY(cell.Stage, cell.Sublayer, b, l)
		c := model.OPT175B.Compute(cell.Stage, cell.Sublayer, b, l)
		t.AddRow(cell.Stage.String(), cell.Sublayer.String(),
			dx.String(), dy.String(), c.String(), fmt.Sprintf("%.1f", cell.OpsPerByte))
	}
	return t
}

// Figure3 reproduces the memory-offloading bottleneck analysis (§3.1):
// for FlexGen-style full streaming of OPT-175B on SPR-A100, the share of
// stage latency spent on CPU-GPU transfers of parameters, KV cache, and
// activations, across L, for B=1 and B=32.
func Figure3() *report.Table {
	m := model.OPT175B
	sys := hw.SPRA100
	gpu := perf.GPUDevice(sys.GPU)
	link := sys.HostLink()
	t := report.NewTable(
		"Figure 3: FlexGen transfer breakdown, OPT-175B on SPR-A100",
		"stage", "B", "L", "param xfer", "KV xfer", "act xfer", "compute", "xfer %", "xfer amount")

	for _, b := range []int{1, 32} {
		for _, l := range []int{64, 128, 256, 512, 1024} {
			for _, stage := range []model.Stage{model.Prefill, model.Decode} {
				// All parameters stream every pass.
				paramBytes := m.LayerParamBytes() * units.Bytes(m.Layers)
				// For B=1 the KV cache and activations stay on the GPU
				// (§3's setup); for B=32 they spill to host memory and
				// cross PCIe every pass.
				var kvBytes, actBytes units.Bytes
				if b > 1 {
					if stage == model.Prefill {
						kvBytes = m.KVBytes(b, l) // store fresh cache
					} else {
						kvBytes = m.KVBytes(b, l) + m.KVBytes(b, 1) // load + store delta
					}
					actBytes = 2 * m.ActivationBytes(b, l, stage) * units.Bytes(m.Layers)
				}
				paramT := link.Transfer(paramBytes)
				kvT := link.Transfer(kvBytes)
				actT := link.Transfer(actBytes)
				var compT units.Seconds
				rows := b * l
				if stage == model.Decode {
					rows = b
				}
				for _, s := range model.Sublayers() {
					compT += gpu.Time(m.Compute(stage, s, b, l),
						m.DataX(stage, s, b, l)+m.DataY(stage, s, b, l), rows) * units.Seconds(m.Layers)
				}
				xfer := paramT + kvT + actT
				total := xfer + compT
				t.AddRow(stage.String(), fmt.Sprint(b), fmt.Sprint(l),
					paramT.String(), kvT.String(), actT.String(), compT.String(),
					fmt.Sprintf("%.1f%%", 100*float64(xfer)/float64(total)),
					(paramBytes + kvBytes + actBytes).String())
			}
		}
	}
	return t
}

// Figure4 reproduces the compute-offloading analysis (§3.2): at B=32,
// the latency of AVX512 CPU attention versus transferring the KV cache
// to the GPU, and the end-to-end decode latency reduction offloading
// achieves — small at long L, negative at short L.
func Figure4() *report.Table {
	m := model.OPT175B
	sys := hw.SPRA100
	const b = 32
	avx := perf.CPUDevice(sys.CPU, hw.AVX512)
	gpu := perf.GPUDevice(sys.GPU)
	link := sys.HostLink()
	t := report.NewTable(
		"Figure 4: CPU(AVX) attention vs KV transfer, OPT-175B, B=32, SPR-A100",
		"L", "CPU attention", "KV transfer", "decode w/o offload", "decode w/ offload", "reduction %")

	// FlexGen's offloaded attention runs through the PyTorch CPU path,
	// paying a per-sublayer host dispatch cost on top of the kernel —
	// the reason the paper measures CPU attention slower than the KV
	// transfer it saves at short L (1 s vs 0.4 s, §3.2).
	const hostDispatch = 1500 * units.Microsecond
	for _, l := range []int{64, 128, 256, 512, 1024} {
		var cpuAttn, kvXfer, gpuAttn units.Seconds
		for _, s := range []model.Sublayer{model.QKT, model.SV} {
			c := m.Compute(model.Decode, s, b, l)
			traffic := m.DataX(model.Decode, s, b, l) + m.DataY(model.Decode, s, b, l)
			cpuAttn += (avx.Time(c, traffic, b) + hostDispatch) * units.Seconds(m.Layers)
			gpuAttn += gpu.Time(c, traffic, b) * units.Seconds(m.Layers)
			kvXfer += link.Transfer(m.DataY(model.Decode, s, b, l)) * units.Seconds(m.Layers)
		}
		// The rest of the decode pass (parameter transfers + GPU compute)
		// is common to both configurations.
		var rest units.Seconds
		for _, s := range []model.Sublayer{model.QKVMapping, model.OutProjection, model.FC1, model.FC2} {
			rest += link.Transfer(m.DataY(model.Decode, s, b, l)) * units.Seconds(m.Layers)
			rest += gpu.Time(m.Compute(model.Decode, s, b, l),
				m.DataX(model.Decode, s, b, l)+m.DataY(model.Decode, s, b, l), b) * units.Seconds(m.Layers)
		}
		without := rest + kvXfer + gpuAttn
		with := rest + cpuAttn
		t.AddRow(fmt.Sprint(l), cpuAttn.String(), kvXfer.String(),
			without.String(), with.String(),
			fmt.Sprintf("%+.1f%%", 100*(1-float64(with)/float64(without))))
	}
	return t
}

// Figure5 reproduces the §4 microbenchmarks: GEMM throughput of the FC1
// prefill shape and batched-GEMV throughput of the decode QKT shape
// across AVX512, SPR-AMX, GNR-AMX, and four GPU generations.
func Figure5() (*report.Figure, *report.Figure) {
	const dm = 12288 // OPT-175B model dimension
	devices := []struct {
		name string
		dev  perf.Device
	}{
		{"AVX512", perf.CPUDevice(hw.SPR, hw.AVX512)},
		{"SPR-AMX", perf.CPUDevice(hw.SPR, hw.AMX)},
		{"GNR-AMX", perf.CPUDevice(hw.GNR, hw.AMX)},
		{"P100", perf.GPUDevice(hw.P100)},
		{"V100", perf.GPUDevice(hw.V100)},
		{"A100", perf.GPUDevice(hw.A100)},
		{"H100", perf.GPUDevice(hw.H100)},
	}

	bls := []int{64, 256, 1024, 4096, 16384, 36864}
	ticks := make([]string, len(bls))
	for i, bl := range bls {
		ticks[i] = fmt.Sprint(bl)
	}
	gemm := report.NewFigure("Figure 5 (left): GEMM throughput, FC1 prefill shape (BxL, d)x(d, 4d)", "BxL", "TFLOPS", ticks...)
	gemm.Unit = "%.2f"
	for _, d := range devices {
		vals := make([]float64, len(bls))
		for i, bl := range bls {
			vals[i] = float64(d.dev.GEMMThroughput(bl, dm, 4*dm)) / 1e12
		}
		gemm.MustAdd(d.name, vals...)
	}

	// GEMV: (B·n_h, 1, d_h) × (B·n_h, d_h, L) with n_h=96, d_h=128.
	shapes := []struct{ b, l int }{{1, 64}, {1, 512}, {8, 512}, {64, 512}, {64, 2048}, {256, 1024}}
	gticks := make([]string, len(shapes))
	for i, s := range shapes {
		gticks[i] = fmt.Sprintf("B=%d,L=%d", s.b, s.l)
	}
	gemv := report.NewFigure("Figure 5 (right): batched GEMV throughput, QKT decode shape", "shape", "GFLOPS", gticks...)
	gemv.Unit = "%.1f"
	for _, d := range devices {
		vals := make([]float64, len(shapes))
		for i, s := range shapes {
			vals[i] = float64(d.dev.BatchedGEMVThroughput(s.b*96, 128, s.l)) / 1e9
		}
		gemv.MustAdd(d.name, vals...)
	}
	return gemm, gemv
}
