package batchpolicy

import (
	"math/rand"
	"testing"

	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/units"
)

// TestSchedulerProperties drives random admit/extend/finish/remove
// sequences through the scheduler over a paged pool and checks, after
// every operation, the invariants the hand-written cases only spot-check:
//
//  1. No leak, no double-free: blocks held by running sequences plus the
//     free list always partition the pool, and the pool's live count
//     always equals the running batch size.
//  2. The sole runnable sequence is never preempted: ExtendAll either
//     succeeds or errors, but a one-sequence batch never shrinks.
//  3. Preemption is youngest-first: every eviction wave is a suffix of
//     the pre-extension batch, in reverse admission order.
//  4. The batch cap is never exceeded and requeued work re-admits before
//     arrivals.
func TestSchedulerProperties(t *testing.T) {
	const (
		blockTokens = 4
		rounds      = 400
	)
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		blocks := 4 + rng.Intn(24)
		maxBatch := 1 + rng.Intn(6)
		pool, err := kvpage.NewManager(units.Bytes(blocks*blockTokens), blockTokens, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScheduler(maxBatch, pool)
		if err != nil {
			t.Fatal(err)
		}
		nextRef := 0
		check := func(op string) {
			t.Helper()
			if pool.Live() != s.RunningLen() {
				t.Fatalf("seed %d after %s: pool live %d != running %d", seed, op, pool.Live(), s.RunningLen())
			}
			used := 0
			for _, seq := range s.Running() {
				if pool.Tokens(seq.ID) <= 0 {
					t.Fatalf("seed %d after %s: running seq %d unknown to the pool", seed, op, seq.ID)
				}
				used += pool.Blocks(seq.ID)
			}
			if got := pool.TotalBlocks() - pool.FreeBlocks(); got != used {
				t.Fatalf("seed %d after %s: %d blocks allocated but running sequences account for %d — leak or double-free",
					seed, op, got, used)
			}
			if s.RunningLen() > maxBatch {
				t.Fatalf("seed %d after %s: batch %d exceeds cap %d", seed, op, s.RunningLen(), maxBatch)
			}
		}

		for i := 0; i < rounds; i++ {
			switch rng.Intn(4) {
			case 0: // admission wave of random items
				n := 1 + rng.Intn(3)
				var items []Item
				for j := 0; j < n; j++ {
					items = append(items, Item{
						Ref:       nextRef,
						PromptLen: 1 + rng.Intn(3*blockTokens),
						OutputLen: 1 + rng.Intn(12),
					})
					nextRef++
				}
				admitted, consumed := s.Admit(items)
				if consumed > len(items) {
					t.Fatalf("seed %d: consumed %d of %d", seed, consumed, len(items))
				}
				// Admission must consume a prefix: every admitted arrival
				// ref appears among the consumed items or the requeue list.
				if len(admitted) < consumed {
					t.Fatalf("seed %d: %d admitted < %d consumed arrivals", seed, len(admitted), consumed)
				}
				check("admit")
			case 1: // one extension round; invariants 2 and 3
				before := s.Running()
				evicted, err := s.ExtendAll()
				if err != nil {
					if len(before) != 1 {
						t.Fatalf("seed %d: ExtendAll errored with %d running: %v", seed, len(before), err)
					}
					if s.RunningLen() != 1 {
						t.Fatalf("seed %d: sole sequence was dropped on error", seed)
					}
					check("extend-error")
					continue
				}
				if len(before) == 1 && len(evicted) > 0 {
					t.Fatalf("seed %d: sole runnable sequence preempted", seed)
				}
				// Youngest-first: evictions are the pre-extension suffix in
				// reverse order.
				for j, ev := range evicted {
					want := before[len(before)-1-j]
					if ev.ID != want.ID {
						t.Fatalf("seed %d: eviction %d took seq %d, youngest-first demands %d (batch %+v)",
							seed, j, ev.ID, want.ID, before)
					}
				}
				check("extend")
			case 2: // one completed decode iteration
				if s.RunningLen() == 0 {
					continue
				}
				before := s.RunningLen()
				finished, err := s.FinishStep()
				if err != nil {
					t.Fatalf("seed %d: FinishStep: %v", seed, err)
				}
				if s.RunningLen()+len(finished) != before {
					t.Fatalf("seed %d: %d running + %d finished != %d before", seed, s.RunningLen(), len(finished), before)
				}
				check("finish")
			case 3: // cancel a random running sequence
				run := s.Running()
				if len(run) == 0 {
					continue
				}
				victim := run[rng.Intn(len(run))]
				if err := s.Remove(victim.ID); err != nil {
					t.Fatalf("seed %d: Remove(%d): %v", seed, victim.ID, err)
				}
				if err := s.Remove(victim.ID); err == nil {
					t.Fatalf("seed %d: double Remove(%d) succeeded", seed, victim.ID)
				}
				check("remove")
			}
		}
	}
}

// TestKVPageManagerProperties checks the allocator against a trivial
// reference model under random admit/extend/release traffic: block
// conservation, exact per-sequence accounting (admission reserves
// blocksFor(prompt)+1 including the headroom block; extension grows past
// that reservation only), and rejection of double-admit, double-release,
// and unknown-sequence operations.
func TestKVPageManagerProperties(t *testing.T) {
	const blockTokens = 4
	blocksFor := func(tokens int) int { return (tokens + blockTokens - 1) / blockTokens }
	type refSeq struct{ prompt, tokens int }
	held := func(s refSeq) int { // blocks a sequence owns
		if b := blocksFor(s.tokens); b > blocksFor(s.prompt)+1 {
			return b
		}
		return blocksFor(s.prompt) + 1
	}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		total := 2 + rng.Intn(30)
		m, err := kvpage.NewManager(units.Bytes(total*blockTokens), blockTokens, 1)
		if err != nil {
			t.Fatal(err)
		}
		ref := map[int]refSeq{} // live seq -> {prompt, tokens}
		nextID := 0
		check := func(op string) {
			t.Helper()
			if m.Live() != len(ref) {
				t.Fatalf("seed %d after %s: live %d, reference %d", seed, op, m.Live(), len(ref))
			}
			used := 0
			for id, s := range ref {
				if m.Tokens(id) != s.tokens {
					t.Fatalf("seed %d after %s: seq %d holds %d tokens, reference %d", seed, op, id, m.Tokens(id), s.tokens)
				}
				if m.Blocks(id) != held(s) {
					t.Fatalf("seed %d after %s: seq %d holds %d blocks, reference %d", seed, op, id, m.Blocks(id), held(s))
				}
				used += held(s)
			}
			if m.FreeBlocks() != total-used {
				t.Fatalf("seed %d after %s: %d free, reference %d — leak or double-free", seed, op, m.FreeBlocks(), total-used)
			}
		}
		for i := 0; i < 600; i++ {
			switch rng.Intn(3) {
			case 0: // admit — must succeed exactly when prompt + headroom fit
				tokens := 1 + rng.Intn(3*blockTokens)
				free := m.FreeBlocks()
				err := m.Admit(nextID, tokens)
				if blocksFor(tokens)+1 <= free && err != nil {
					t.Fatalf("seed %d: Admit(%d tokens) failed with %d free blocks: %v", seed, tokens, free, err)
				}
				if blocksFor(tokens)+1 > free && err == nil {
					t.Fatalf("seed %d: Admit(%d tokens) succeeded with only %d free blocks", seed, tokens, free)
				}
				if err == nil {
					ref[nextID] = refSeq{prompt: tokens, tokens: tokens}
					if err := m.Admit(nextID, tokens); err == nil {
						t.Fatalf("seed %d: double admit of %d accepted", seed, nextID)
					}
					nextID++
				}
				check("admit")
			case 1: // extend a random live sequence
				id, ok := anyKey(rng, ref)
				if !ok {
					continue
				}
				before := ref[id]
				err := m.Extend(id)
				if err != nil {
					// Rollback contract: a failed extension leaves the
					// sequence's token count untouched.
					if m.Tokens(id) != before.tokens {
						t.Fatalf("seed %d: failed Extend mutated tokens %d→%d", seed, before.tokens, m.Tokens(id))
					}
					if blocksFor(before.tokens+1) <= held(before) || m.FreeBlocks() > 0 {
						t.Fatalf("seed %d: Extend failed with room available", seed)
					}
				} else {
					before.tokens++
					ref[id] = before
				}
				check("extend")
			case 2: // release
				id, ok := anyKey(rng, ref)
				if !ok {
					if err := m.Release(12345 + i); err == nil {
						t.Fatalf("seed %d: releasing an unknown sequence succeeded", seed)
					}
					continue
				}
				if err := m.Release(id); err != nil {
					t.Fatalf("seed %d: Release(%d): %v", seed, id, err)
				}
				delete(ref, id)
				if err := m.Release(id); err == nil {
					t.Fatalf("seed %d: double release of %d accepted", seed, id)
				}
				check("release")
			}
		}
	}
}

// anyKey picks a deterministic pseudo-random live key (map iteration
// order is randomized, so sort-free selection must go through the rng
// over a stable ordering).
func anyKey[V any](rng *rand.Rand, ref map[int]V) (int, bool) {
	if len(ref) == 0 {
		return 0, false
	}
	max := -1
	for id := range ref {
		if id > max {
			max = id
		}
	}
	// Walk down from a random start until a live id is found — stable
	// for a given rng stream and map contents.
	start := rng.Intn(max + 1)
	for off := 0; off <= max; off++ {
		id := (start + off) % (max + 1)
		if _, ok := ref[id]; ok {
			return id, true
		}
	}
	return 0, false
}
