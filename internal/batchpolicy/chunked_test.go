package batchpolicy

import (
	"reflect"
	"testing"
)

// TestChunkedRoundInterleavesPrefillAndDecode drives the chunk>0 Round
// flow end to end: a long prompt is admitted while another sequence is
// mid-decode, and every round must carry BOTH one prompt chunk and one
// decode iteration — the interleaving that bounds the running batch's
// inter-token latency while the long arrival trickles in.
func TestChunkedRoundInterleavesPrefillAndDecode(t *testing.T) {
	s, err := NewScheduler(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetChunk(2); err != nil {
		t.Fatal(err)
	}

	short := Item{Ref: 0, PromptLen: 1, OutputLen: 8}
	long := Item{Ref: 1, PromptLen: 5, OutputLen: 2}
	queue := []Item{short}

	type round struct {
		chunks [][2]int // (seqID, chunk start) per PrefillChunk call
		steps  []int    // seq IDs handed to Step
	}
	var log []round
	h := Hooks{
		Waiting:  func() []Item { return queue },
		Consumed: func(n int) { queue = queue[n:] },
		PrefillChunk: func(prefilling []Seq) error {
			var cur round
			for _, q := range prefilling {
				cur.chunks = append(cur.chunks, [2]int{q.ID, q.Prefilled})
			}
			log = append(log, cur)
			return nil
		},
		Step: func(running []Seq) error {
			if len(log) == 0 || log[len(log)-1].steps != nil {
				log = append(log, round{})
			}
			for _, q := range running {
				log[len(log)-1].steps = append(log[len(log)-1].steps, q.ID)
			}
			return nil
		},
	}

	// Round 1: short admitted, its single chunk covers the whole prompt.
	if ok, err := Round(s, h); err != nil || !ok {
		t.Fatalf("round 1: ok=%v err=%v", ok, err)
	}
	// Round 2: long arrives; short decodes in the same rounds long chunks.
	queue = append(queue, long)
	for i := 0; i < 3; i++ {
		if ok, err := Round(s, h); err != nil || !ok {
			t.Fatalf("round %d: ok=%v err=%v", i+2, err, ok)
		}
	}

	want := []round{
		{chunks: [][2]int{{0, 0}}, steps: []int{0}},    // short: chunk + first decode same round
		{chunks: [][2]int{{1, 0}}, steps: []int{0}},    // long chunk [0,2), short decodes
		{chunks: [][2]int{{1, 2}}, steps: []int{0}},    // long chunk [2,4)
		{chunks: [][2]int{{1, 4}}, steps: []int{0, 1}}, // final chunk [4,5) → long joins decode
	}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("round log:\n got %+v\nwant %+v", log, want)
	}
	// Long finished prefilling and emitted one token per decode round.
	for _, q := range s.Running() {
		if q.Prefilling() {
			t.Fatalf("sequence %d still prefilling after its chunks ran", q.ID)
		}
	}
}

// TestChunkedPreemptionRestartsPrefill: evicting a prefilling sequence
// requeues its item, and re-admission restarts the chunk walk at zero
// (full recomputation, same policy as monolithic preemption).
func TestChunkedPreemptionRestartsPrefill(t *testing.T) {
	s := sched(t, 6, 8,
		[2]int{4, 8}, // 2 full blocks
		[2]int{4, 8}, // 2 full blocks
	)
	if err := s.SetChunk(2); err != nil {
		t.Fatal(err)
	}
	// Admit a chunked arrival into the remaining 2 blocks (prompt 4 needs
	// 1 block + 1 headroom); it starts prefilling.
	admitted, _ := s.Admit([]Item{{Ref: 9, PromptLen: 4, OutputLen: 10}})
	if len(admitted) != 1 || !admitted[0].Prefilling() || admitted[0].Prefilled != 0 {
		t.Fatalf("admitted %+v, want a prefilling sequence at position 0", admitted)
	}
	s.AdvancePrefills() // position 2 of 4
	// Decode pressure: both full sequences extend; pool is exhausted, so
	// the youngest (the prefilling arrival) is evicted.
	evicted, err := s.ExtendAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].Item.Ref != 9 {
		t.Fatalf("evicted %+v, want the prefilling arrival", evicted)
	}
	checkBooks(t, s)
	// Free room and re-admit: the chunk walk restarts at zero.
	if _, err := s.FinishStepN(map[int]int{0: 100}); err != nil { // retire seq 0
		t.Fatal(err)
	}
	readmitted, _ := s.Admit(nil)
	if len(readmitted) != 1 || readmitted[0].Item.Ref != 9 || readmitted[0].Prefilled != 0 {
		t.Fatalf("readmitted %+v, want ref 9 restarting at position 0", readmitted)
	}
}

// TestFinishStepN: variable-token retirement for speculative rounds.
func TestFinishStepN(t *testing.T) {
	s, err := NewScheduler(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Admit([]Item{
		{Ref: 0, PromptLen: 2, OutputLen: 5},
		{Ref: 1, PromptLen: 2, OutputLen: 5},
		{Ref: 2, PromptLen: 2, OutputLen: 5},
	})
	if _, err := s.FinishStepN(nil); err == nil {
		t.Fatal("nil counts accepted")
	}
	// Seq 0 emits 3 (spec round), seq 1 emits 5 (retires exactly), seq 2
	// absent from the map (no progress this round).
	finished, err := s.FinishStepN(map[int]int{0: 3, 1: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(finished) != 1 || finished[0].ID != 1 {
		t.Fatalf("finished %+v, want exactly seq 1", finished)
	}
	run := s.Running()
	if len(run) != 2 || run[0].Remaining != 2 || run[1].Remaining != 5 {
		t.Fatalf("running %+v, want seq 0 owing 2 and seq 2 owing 5", run)
	}
	if run[0].Context != 5 || run[1].Context != 2 {
		t.Fatalf("contexts %d,%d want 5,2", run[0].Context, run[1].Context)
	}
	// Over-emission past the budget still retires cleanly.
	finished, err = s.FinishStepN(map[int]int{0: 99, 2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(finished) != 1 || finished[0].ID != 0 {
		t.Fatalf("finished %+v, want seq 0", finished)
	}
}

// TestTryExtend: non-preempting single-slot reservation for the spec
// allowance top-up.
func TestTryExtend(t *testing.T) {
	s := sched(t, 4, 8,
		[2]int{4, 8}, // 2 full blocks
		[2]int{4, 7}, // 2 blocks, one slot spare
	)
	if s.Pool().FreeBlocks() != 0 {
		t.Fatalf("setup: want a full pool, %d free", s.Pool().FreeBlocks())
	}
	// Seq 1 has a spare slot in its last block: extension fits in place.
	if !s.TryExtend(1) {
		t.Fatal("in-block extension refused")
	}
	// Seq 0's blocks are full and the pool has none free: no preemption,
	// just a refusal.
	if s.TryExtend(0) {
		t.Fatal("TryExtend succeeded with an exhausted pool")
	}
	if s.RunningLen() != 2 || s.RequeuedLen() != 0 {
		t.Fatal("TryExtend preempted — it must never evict")
	}
	if s.TryExtend(77) {
		t.Fatal("TryExtend succeeded for an unknown sequence")
	}
	// Unconstrained scheduler always has room.
	free, err := NewScheduler(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	free.Admit([]Item{{Ref: 0, PromptLen: 1, OutputLen: 1}})
	if !free.TryExtend(0) {
		t.Fatal("unconstrained TryExtend refused")
	}
}

// TestSetChunkValidation: negative chunks are rejected, zero restores
// monolithic admission.
func TestSetChunkValidation(t *testing.T) {
	s, err := NewScheduler(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetChunk(-1); err == nil {
		t.Fatal("negative chunk accepted")
	}
	if err := s.SetChunk(4); err != nil || s.Chunk() != 4 {
		t.Fatalf("chunk not set: %v", err)
	}
	admitted, _ := s.Admit([]Item{{Ref: 0, PromptLen: 8, OutputLen: 1}})
	if !admitted[0].Prefilling() {
		t.Fatal("chunked admission not prefilling")
	}
	if err := s.SetChunk(0); err != nil {
		t.Fatal(err)
	}
	admitted, _ = s.Admit([]Item{{Ref: 1, PromptLen: 8, OutputLen: 1}})
	if admitted[0].Prefilling() {
		t.Fatal("monolithic admission left prefilling")
	}
	if s.PrefillingLen() != 1 {
		t.Fatalf("prefilling count %d, want 1", s.PrefillingLen())
	}
	if got := len(s.Ready()); got != 1 {
		t.Fatalf("ready count %d, want 1", got)
	}
}
