package batchpolicy

// Hooks parameterizes one scheduling round with the caller's arrival
// source and execution back-end. The simulator supplies analytic (or
// injected) stage costs and a virtual clock; the live gateway supplies
// the functional llm engine and real time. Every decision in between —
// who is admitted, who is preempted, who completes — is shared code, so
// the two stay behaviourally aligned by construction.
type Hooks struct {
	// Waiting returns the admissible work, FIFO. Admission consumes a
	// prefix; Consumed reports how long that prefix was.
	Waiting  func() []Item
	Consumed func(n int)
	// Prefill executes the batched prefill of newly admitted sequences.
	Prefill func(admitted []Seq) error
	// Step executes one decode iteration over the running batch (the
	// snapshot passed is pre-extension context lengths plus the new
	// token slot already reserved, batch in admission order).
	Step func(running []Seq) error
	// Evicted observes preemptions (already requeued inside the
	// scheduler); Finished observes retirements.
	Evicted  func(evicted []Seq)
	Finished func(finished []Seq)
}

// Round runs one scheduling round: admit (requeued work first, then the
// waiting list) and prefill if anything was admitted — returning so the
// caller can surface newly arrived work before decoding, exactly like
// the simulator's loop — otherwise extend the running batch (preempting
// youngest-first under KV pressure), run one decode iteration, and
// retire finished sequences. It reports false, nil when there was
// nothing to do (nothing admitted, nothing running): the caller decides
// whether to block for arrivals, jump its clock, or fail.
func Round(s *Scheduler, h Hooks) (progressed bool, err error) {
	var waiting []Item
	if h.Waiting != nil {
		waiting = h.Waiting()
	}
	admitted, consumed := s.Admit(waiting)
	if consumed > 0 && h.Consumed != nil {
		h.Consumed(consumed)
	}
	if len(admitted) > 0 {
		if err := h.Prefill(admitted); err != nil {
			return false, err
		}
		return true, nil
	}
	if s.RunningLen() == 0 {
		return false, nil
	}
	evicted, err := s.ExtendAll()
	if err != nil {
		return false, err
	}
	if len(evicted) > 0 && h.Evicted != nil {
		h.Evicted(evicted)
	}
	if err := h.Step(s.Running()); err != nil {
		return false, err
	}
	finished, err := s.FinishStep()
	if err != nil {
		return false, err
	}
	if len(finished) > 0 && h.Finished != nil {
		h.Finished(finished)
	}
	return true, nil
}
