package batchpolicy

// Hooks parameterizes one scheduling round with the caller's arrival
// source and execution back-end. The simulator supplies analytic (or
// injected) stage costs and a virtual clock; the live gateway supplies
// the functional llm engine and real time. Every decision in between —
// who is admitted, who is preempted, who completes — is shared code, so
// the two stay behaviourally aligned by construction.
type Hooks struct {
	// Waiting returns the admissible work, FIFO. Admission consumes a
	// prefix; Consumed reports how long that prefix was.
	Waiting  func() []Item
	Consumed func(n int)
	// Prefill executes the batched prefill of newly admitted sequences
	// (monolithic mode, chunk 0).
	Prefill func(admitted []Seq) error
	// PrefillChunk executes one prompt chunk per listed sequence
	// (chunked mode): each Seq's Prefilled field is its chunk start and
	// the scheduler's chunk size bounds the chunk length. Required when
	// the scheduler's chunk is nonzero.
	PrefillChunk func(prefilling []Seq) error
	// Step executes one decode iteration over the running batch (the
	// snapshot passed is pre-extension context lengths plus the new
	// token slot already reserved, batch in admission order).
	Step func(running []Seq) error
	// StepN, when set, replaces Step and may emit several tokens per
	// sequence per round (speculative decoding): it returns the emitted
	// token counts keyed by Seq.ID, which feed FinishStepN.
	StepN func(running []Seq) (map[int]int, error)
	// Evicted observes preemptions (already requeued inside the
	// scheduler); Finished observes retirements.
	Evicted  func(evicted []Seq)
	Finished func(finished []Seq)
}

// Round runs one scheduling round. With monolithic prefill (chunk 0):
// admit (requeued work first, then the waiting list) and prefill if
// anything was admitted — returning so the caller can surface newly
// arrived work before decoding, exactly like the simulator's loop —
// otherwise extend the running batch (preempting youngest-first under
// KV pressure), run one decode iteration, and retire finished
// sequences.
//
// With chunked prefill (chunk > 0) a round interleaves both phases:
// admit, compute one prompt chunk for every prefilling sequence, then
// run one decode iteration over the ready sequences. Decode rounds keep
// flowing while long prompts trickle in chunk by chunk — the TTFT/TBT
// trade the chunk size tunes. A sequence whose final chunk lands this
// round joins the decode in the same round (its first token is already
// pending), so chunking never adds a full-round bubble to TTFT.
//
// It reports false, nil when there was nothing to do (nothing admitted,
// nothing running): the caller decides whether to block for arrivals,
// jump its clock, or fail.
func Round(s *Scheduler, h Hooks) (progressed bool, err error) {
	var waiting []Item
	if h.Waiting != nil {
		waiting = h.Waiting()
	}
	admitted, consumed := s.Admit(waiting)
	if consumed > 0 && h.Consumed != nil {
		h.Consumed(consumed)
	}
	if s.chunk <= 0 {
		if len(admitted) > 0 {
			if err := h.Prefill(admitted); err != nil {
				return false, err
			}
			return true, nil
		}
		return s.decodeRound(h)
	}

	prefilling := s.AdvancePrefills()
	if len(prefilling) > 0 {
		if err := h.PrefillChunk(prefilling); err != nil {
			return false, err
		}
		progressed = true
	}
	decoded, err := s.decodeRound(h)
	if err != nil {
		return false, err
	}
	return progressed || decoded, nil
}

// decodeRound extends, steps and retires the ready portion of the
// running batch — the shared tail of both Round modes.
func (s *Scheduler) decodeRound(h Hooks) (bool, error) {
	if len(s.Ready()) == 0 {
		return false, nil
	}
	evicted, err := s.ExtendAll()
	if err != nil {
		return false, err
	}
	if len(evicted) > 0 && h.Evicted != nil {
		h.Evicted(evicted)
	}
	ready := s.Ready() // re-snapshot: eviction may have shrunk the batch
	var finished []Seq
	if h.StepN != nil {
		counts, err := h.StepN(ready)
		if err != nil {
			return false, err
		}
		if finished, err = s.FinishStepN(counts); err != nil {
			return false, err
		}
	} else {
		if err := h.Step(ready); err != nil {
			return false, err
		}
		if finished, err = s.FinishStep(); err != nil {
			return false, err
		}
	}
	if len(finished) > 0 && h.Finished != nil {
		h.Finished(finished)
	}
	return true, nil
}
