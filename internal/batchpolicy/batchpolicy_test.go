package batchpolicy

import (
	"testing"

	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/units"
)

// testPool builds a pool of exactly `blocks` blocks of 4 token slots each
// (1 byte per token keeps the budget arithmetic trivial).
func testPool(t *testing.T, blocks int) *kvpage.Manager {
	t.Helper()
	pool, err := kvpage.NewManager(units.Bytes(blocks*4), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pool.TotalBlocks() != blocks {
		t.Fatalf("pool sized %d blocks, want %d", pool.TotalBlocks(), blocks)
	}
	return pool
}

// sched builds a scheduler over a fresh test pool and places the given
// prompt lengths directly into the running batch (bypassing Admit's
// one-block headroom requirement, like the original hand-written serve
// tests, so exactly-full pools are constructible).
func sched(t *testing.T, blocks, maxBatch int, prompts ...int) *Scheduler {
	t.Helper()
	s, err := NewScheduler(maxBatch, testPool(t, blocks))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range prompts {
		if err := s.pool.Admit(i, p); err != nil {
			t.Fatal(err)
		}
		s.running = append(s.running, Seq{ID: i, Item: Item{Ref: i, PromptLen: p, OutputLen: 100}, Context: p, Remaining: 100})
		s.nextID = i + 1
	}
	return s
}

// checkBooks asserts the allocator's books balance: blocks held by the
// running sequences plus the free list must partition the pool.
func checkBooks(t *testing.T, s *Scheduler) {
	t.Helper()
	pool := s.Pool()
	if pool.Live() != s.RunningLen() {
		t.Errorf("pool holds %d live sequences, batch has %d", pool.Live(), s.RunningLen())
	}
	used := 0
	for _, seq := range s.Running() {
		used += (pool.Tokens(seq.ID) + 3) / 4 // blocksFor with 4-token blocks
	}
	if got := pool.TotalBlocks() - pool.FreeBlocks(); got != used {
		t.Errorf("%d blocks allocated, running sequences account for %d — blocks leaked", got, used)
	}
}

// TestExtendAllSelfPreemption: the regression the original extraction
// guarded. When the youngest sequence is itself the one that cannot
// extend, the preemption loop must evict it and stop — without walking
// past the shrunken batch or re-extending the evicted victim.
func TestExtendAllSelfPreemption(t *testing.T) {
	s := sched(t, 3, 8,
		3, // 1 block; extending to 4 tokens needs no new block
		3, // 1 block, likewise
		4, // 1 full block; extending demands a new one
	)
	if s.Pool().FreeBlocks() != 0 {
		t.Fatalf("setup: want a full pool, %d blocks free", s.Pool().FreeBlocks())
	}
	evicted, err := s.ExtendAll()
	if err != nil {
		t.Fatal(err)
	}
	// Sequence 2 was both the youngest and the one out of room: it must
	// be the (only) eviction, and 0 and 1 must survive extended.
	run := s.Running()
	if len(run) != 2 || run[0].ID != 0 || run[1].ID != 1 {
		t.Fatalf("kept %+v, want sequences 0 and 1", run)
	}
	if len(evicted) != 1 || evicted[0].ID != 2 {
		t.Fatalf("evicted %+v, want exactly the youngest (id 2)", evicted)
	}
	if s.RequeuedLen() != 1 {
		t.Fatalf("requeued %d items, want the evicted one", s.RequeuedLen())
	}
	if s.Pool().Tokens(0) != 4 || s.Pool().Tokens(1) != 4 {
		t.Errorf("survivors hold %d and %d tokens, want 4 and 4", s.Pool().Tokens(0), s.Pool().Tokens(1))
	}
	checkBooks(t, s)
}

// TestExtendAllPreemptsYoungestForOldest: when an older sequence needs a
// block, the youngest is the victim and the older retries until its
// extension fits.
func TestExtendAllPreemptsYoungestForOldest(t *testing.T) {
	s := sched(t, 4, 8,
		4, // full block: extension allocates
		4, // full block: extension allocates
		8, // 2 blocks — the eviction candidate
	)
	if s.Pool().FreeBlocks() != 0 {
		t.Fatalf("setup: want a full pool, %d blocks free", s.Pool().FreeBlocks())
	}
	evicted, err := s.ExtendAll()
	if err != nil {
		t.Fatal(err)
	}
	run := s.Running()
	if len(run) != 2 || run[0].ID != 0 || run[1].ID != 1 {
		t.Fatalf("kept %+v, want sequences 0 and 1", run)
	}
	if len(evicted) != 1 || evicted[0].ID != 2 {
		t.Fatalf("evicted %+v, want 1 (the youngest)", evicted)
	}
	if s.Pool().Tokens(0) != 5 || s.Pool().Tokens(1) != 5 {
		t.Errorf("survivors hold %d and %d tokens, want 5 and 5", s.Pool().Tokens(0), s.Pool().Tokens(1))
	}
	checkBooks(t, s)
}

// TestExtendAllSoleSequenceErrors: preempting the only member of the
// batch would make no progress, so a one-sequence batch that cannot
// extend is a hard error — and must not evict anything.
func TestExtendAllSoleSequenceErrors(t *testing.T) {
	s := sched(t, 1, 8, 4)
	evicted, err := s.ExtendAll()
	if err == nil {
		t.Fatal("expected an error extending a sole sequence in a full pool")
	}
	if len(evicted) != 0 {
		t.Fatalf("sole-sequence failure must not evict, got %+v", evicted)
	}
	if s.RunningLen() != 1 {
		t.Fatalf("sole sequence must stay running, batch has %d", s.RunningLen())
	}
}

// TestExtendAllNoPressure: with free blocks available nothing is evicted
// and every sequence's reservation grows by one token.
func TestExtendAllNoPressure(t *testing.T) {
	s := sched(t, 8, 8, 4, 2)
	evicted, err := s.ExtendAll()
	if err != nil {
		t.Fatal(err)
	}
	if s.RunningLen() != 2 || len(evicted) != 0 {
		t.Fatalf("kept %d evicted %d, want 2 and 0", s.RunningLen(), len(evicted))
	}
	if s.Pool().Tokens(0) != 5 || s.Pool().Tokens(1) != 3 {
		t.Errorf("tokens %d and %d, want 5 and 3", s.Pool().Tokens(0), s.Pool().Tokens(1))
	}
	checkBooks(t, s)
}

// TestAdmitRequeuedFirst: preempted work is served before new arrivals.
func TestAdmitRequeuedFirst(t *testing.T) {
	// Three 1-block sequences in a 4-block pool leave one free block;
	// extending the two full-block elders (4→5 tokens each needs a fresh
	// block) evicts the youngest (ref 2) to the requeue list.
	s := sched(t, 4, 8, 4, 4, 4)
	evicted, err := s.ExtendAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].Item.Ref != 2 {
		t.Fatalf("evicted %+v, want exactly ref 2", evicted)
	}
	if s.RequeuedLen() != 1 {
		t.Fatalf("requeued %d, want 1", s.RequeuedLen())
	}
	checkBooks(t, s)
	// Admission must re-admit ref 2 (requeued) before ref 12 (waiting).
	var order []int
	s.OnEvent = func(e Event) {
		if e.Kind == EventAdmit {
			order = append(order, e.Ref)
		}
	}
	for _, seq := range s.Running() {
		if err := s.Remove(seq.ID); err != nil {
			t.Fatal(err)
		}
	}
	adm, consumed := s.Admit([]Item{{Ref: 12, PromptLen: 4, OutputLen: 4}})
	if len(adm) != 2 || consumed != 1 {
		t.Fatalf("admitted %d consumed %d, want 2 and 1", len(adm), consumed)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 12 {
		t.Fatalf("admission order %v, want requeued ref 2 before arrival ref 12", order)
	}
	// The re-admitted sequence got a fresh pool id.
	if adm[0].ID == 2 {
		t.Error("re-admission must assign a new sequence id")
	}
}

// TestSchedulerValidation: a batch cap below one is rejected.
func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(0, nil); err == nil {
		t.Error("MaxBatch=0 accepted")
	}
	if _, err := NewScheduler(1, nil); err != nil {
		t.Errorf("MaxBatch=1 rejected: %v", err)
	}
}

// TestNilPoolUnconstrained: without a pool the policy admits up to the
// batch cap, never evicts, and retires on schedule.
func TestNilPoolUnconstrained(t *testing.T) {
	s, err := NewScheduler(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	adm, consumed := s.Admit([]Item{
		{Ref: 0, PromptLen: 100, OutputLen: 2},
		{Ref: 1, PromptLen: 100, OutputLen: 1},
		{Ref: 2, PromptLen: 100, OutputLen: 1},
	})
	if len(adm) != 2 || consumed != 2 {
		t.Fatalf("admitted %d consumed %d, want the batch cap of 2", len(adm), consumed)
	}
	if ev, err := s.ExtendAll(); err != nil || len(ev) != 0 {
		t.Fatalf("nil pool must never evict: %v %v", ev, err)
	}
	fin, err := s.FinishStep()
	if err != nil {
		t.Fatal(err)
	}
	if len(fin) != 1 || fin[0].Item.Ref != 1 {
		t.Fatalf("finished %+v, want exactly ref 1", fin)
	}
	fin, err = s.FinishStep()
	if err != nil {
		t.Fatal(err)
	}
	if len(fin) != 1 || fin[0].Item.Ref != 0 || s.Busy() {
		t.Fatalf("finished %+v busy=%v, want ref 0 and an idle scheduler", fin, s.Busy())
	}
}
