package batchpolicy

import (
	"testing"

	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/units"
)

// testPool builds a pool of exactly `blocks` blocks of 4 token slots each
// (1 byte per token keeps the budget arithmetic trivial).
func testPool(t *testing.T, blocks int) *kvpage.Manager {
	t.Helper()
	pool, err := kvpage.NewManager(units.Bytes(blocks*4), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pool.TotalBlocks() != blocks {
		t.Fatalf("pool sized %d blocks, want %d", pool.TotalBlocks(), blocks)
	}
	return pool
}

// sched builds a scheduler over a fresh test pool and places one running
// sequence per {prompt, tokens} pair: admitted at the prompt length
// (which reserves blocksFor(prompt)+1 blocks, headroom included) and then
// extended token by token to the target length. This is the only way to
// construct exactly-full pools now that Admit actually reserves the
// headroom block CanAdmit charges.
func sched(t *testing.T, blocks, maxBatch int, seqs ...[2]int) *Scheduler {
	t.Helper()
	s, err := NewScheduler(maxBatch, testPool(t, blocks))
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range seqs {
		prompt, tokens := pr[0], pr[1]
		if err := s.pool.Admit(i, prompt); err != nil {
			t.Fatal(err)
		}
		for tok := prompt; tok < tokens; tok++ {
			if err := s.pool.Extend(i); err != nil {
				t.Fatal(err)
			}
		}
		s.running = append(s.running, Seq{ID: i, Item: Item{Ref: i, PromptLen: prompt, OutputLen: 100}, Context: tokens, Remaining: 100, Prefilled: prompt})
		s.nextID = i + 1
	}
	return s
}

// checkBooks asserts the allocator's books balance: blocks held by the
// running sequences plus the free list must partition the pool.
func checkBooks(t *testing.T, s *Scheduler) {
	t.Helper()
	pool := s.Pool()
	if pool.Live() != s.RunningLen() {
		t.Errorf("pool holds %d live sequences, batch has %d", pool.Live(), s.RunningLen())
	}
	used := 0
	for _, seq := range s.Running() {
		used += pool.Blocks(seq.ID)
	}
	if got := pool.TotalBlocks() - pool.FreeBlocks(); got != used {
		t.Errorf("%d blocks allocated, running sequences account for %d — blocks leaked", got, used)
	}
}

// TestExtendAllSelfPreemption: the regression the original extraction
// guarded. When the youngest sequence is itself the one that cannot
// extend, the preemption loop must evict it and stop — without walking
// past the shrunken batch or re-extending the evicted victim.
func TestExtendAllSelfPreemption(t *testing.T) {
	s := sched(t, 6, 8,
		[2]int{4, 7}, // 2 blocks; extending to 8 tokens needs no new block
		[2]int{4, 7}, // 2 blocks, likewise
		[2]int{4, 8}, // 2 full blocks; extending demands a new one
	)
	if s.Pool().FreeBlocks() != 0 {
		t.Fatalf("setup: want a full pool, %d blocks free", s.Pool().FreeBlocks())
	}
	evicted, err := s.ExtendAll()
	if err != nil {
		t.Fatal(err)
	}
	// Sequence 2 was both the youngest and the one out of room: it must
	// be the (only) eviction, and 0 and 1 must survive extended.
	run := s.Running()
	if len(run) != 2 || run[0].ID != 0 || run[1].ID != 1 {
		t.Fatalf("kept %+v, want sequences 0 and 1", run)
	}
	if len(evicted) != 1 || evicted[0].ID != 2 {
		t.Fatalf("evicted %+v, want exactly the youngest (id 2)", evicted)
	}
	if s.RequeuedLen() != 1 {
		t.Fatalf("requeued %d items, want the evicted one", s.RequeuedLen())
	}
	if s.Pool().Tokens(0) != 8 || s.Pool().Tokens(1) != 8 {
		t.Errorf("survivors hold %d and %d tokens, want 8 and 8", s.Pool().Tokens(0), s.Pool().Tokens(1))
	}
	checkBooks(t, s)
}

// TestExtendAllPreemptsYoungestForOldest: when an older sequence needs a
// block, the youngest is the victim and the older retries until its
// extension fits.
func TestExtendAllPreemptsYoungestForOldest(t *testing.T) {
	s := sched(t, 7, 8,
		[2]int{4, 8},  // 2 full blocks: extension allocates
		[2]int{4, 8},  // 2 full blocks: extension allocates
		[2]int{4, 12}, // 3 blocks — the eviction candidate
	)
	if s.Pool().FreeBlocks() != 0 {
		t.Fatalf("setup: want a full pool, %d blocks free", s.Pool().FreeBlocks())
	}
	evicted, err := s.ExtendAll()
	if err != nil {
		t.Fatal(err)
	}
	run := s.Running()
	if len(run) != 2 || run[0].ID != 0 || run[1].ID != 1 {
		t.Fatalf("kept %+v, want sequences 0 and 1", run)
	}
	if len(evicted) != 1 || evicted[0].ID != 2 {
		t.Fatalf("evicted %+v, want 2 (the youngest)", evicted)
	}
	if s.Pool().Tokens(0) != 9 || s.Pool().Tokens(1) != 9 {
		t.Errorf("survivors hold %d and %d tokens, want 9 and 9", s.Pool().Tokens(0), s.Pool().Tokens(1))
	}
	checkBooks(t, s)
}

// TestExtendAllSoleSequenceErrors: preempting the only member of the
// batch would make no progress, so a one-sequence batch that cannot
// extend is a hard error — and must not evict anything.
func TestExtendAllSoleSequenceErrors(t *testing.T) {
	s := sched(t, 2, 8, [2]int{4, 8}) // prompt + headroom block, both full
	evicted, err := s.ExtendAll()
	if err == nil {
		t.Fatal("expected an error extending a sole sequence in a full pool")
	}
	if len(evicted) != 0 {
		t.Fatalf("sole-sequence failure must not evict, got %+v", evicted)
	}
	if s.RunningLen() != 1 {
		t.Fatalf("sole sequence must stay running, batch has %d", s.RunningLen())
	}
}

// TestExtendAllNoPressure: with free blocks available nothing is evicted
// and every sequence's reservation grows by one token.
func TestExtendAllNoPressure(t *testing.T) {
	s := sched(t, 8, 8, [2]int{4, 4}, [2]int{2, 2})
	evicted, err := s.ExtendAll()
	if err != nil {
		t.Fatal(err)
	}
	if s.RunningLen() != 2 || len(evicted) != 0 {
		t.Fatalf("kept %d evicted %d, want 2 and 0", s.RunningLen(), len(evicted))
	}
	if s.Pool().Tokens(0) != 5 || s.Pool().Tokens(1) != 3 {
		t.Errorf("tokens %d and %d, want 5 and 3", s.Pool().Tokens(0), s.Pool().Tokens(1))
	}
	checkBooks(t, s)
}

// TestAdmitRequeuedFirst: preempted work is served before new arrivals.
func TestAdmitRequeuedFirst(t *testing.T) {
	// Three 2-block sequences fill the 6-block pool; extending the two
	// full elders (8→9 tokens each needs a fresh block) evicts the
	// youngest (ref 2) to the requeue list.
	s := sched(t, 6, 8, [2]int{4, 8}, [2]int{4, 8}, [2]int{4, 8})
	evicted, err := s.ExtendAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0].Item.Ref != 2 {
		t.Fatalf("evicted %+v, want exactly ref 2", evicted)
	}
	if s.RequeuedLen() != 1 {
		t.Fatalf("requeued %d, want 1", s.RequeuedLen())
	}
	checkBooks(t, s)
	// Admission must re-admit ref 2 (requeued) before ref 12 (waiting).
	var order []int
	s.OnEvent = func(e Event) {
		if e.Kind == EventAdmit {
			order = append(order, e.Ref)
		}
	}
	for _, seq := range s.Running() {
		if err := s.Remove(seq.ID); err != nil {
			t.Fatal(err)
		}
	}
	adm, consumed := s.Admit([]Item{{Ref: 12, PromptLen: 4, OutputLen: 4}})
	if len(adm) != 2 || consumed != 1 {
		t.Fatalf("admitted %d consumed %d, want 2 and 1", len(adm), consumed)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 12 {
		t.Fatalf("admission order %v, want requeued ref 2 before arrival ref 12", order)
	}
	// The re-admitted sequence got a fresh pool id.
	if adm[0].ID == 2 {
		t.Error("re-admission must assign a new sequence id")
	}
}

// TestSchedulerValidation: a batch cap below one is rejected.
func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(0, nil); err == nil {
		t.Error("MaxBatch=0 accepted")
	}
	if _, err := NewScheduler(1, nil); err != nil {
		t.Errorf("MaxBatch=1 rejected: %v", err)
	}
	if _, err := NewSchedulerKV(0, nil); err == nil {
		t.Error("NewSchedulerKV MaxBatch=0 accepted")
	}
}

// TestSchedulerKVDelegates: a custom KV backend sees exactly the calls
// the plain pool would — admission gets the full Item (Ref included),
// extension and release run per sequence id.
func TestSchedulerKVDelegates(t *testing.T) {
	pool := testPool(t, 6)
	kv := &recordingKV{pool: pool}
	s, err := NewSchedulerKV(4, kv)
	if err != nil {
		t.Fatal(err)
	}
	adm, consumed := s.Admit([]Item{{Ref: 7, PromptLen: 4, OutputLen: 2}})
	if len(adm) != 1 || consumed != 1 {
		t.Fatalf("admitted %d consumed %d", len(adm), consumed)
	}
	if len(kv.admits) != 1 || kv.admits[0] != 7 {
		t.Fatalf("KV saw admit refs %v, want [7]", kv.admits)
	}
	if _, err := s.ExtendAll(); err != nil {
		t.Fatal(err)
	}
	if kv.extends != 1 {
		t.Fatalf("KV saw %d extends, want 1", kv.extends)
	}
	fin, err := s.FinishStep()
	if err != nil {
		t.Fatal(err)
	}
	if len(fin) != 0 {
		t.Fatalf("finished early: %+v", fin)
	}
	if err := s.Remove(adm[0].ID); err != nil {
		t.Fatal(err)
	}
	if kv.releases != 1 {
		t.Fatalf("KV saw %d releases, want 1", kv.releases)
	}
	if pool.Live() != 0 || pool.FreeBlocks() != pool.TotalBlocks() {
		t.Errorf("pool leaked: live=%d free=%d", pool.Live(), pool.FreeBlocks())
	}
}

// recordingKV wraps a pool and records the scheduler's KV traffic.
type recordingKV struct {
	pool     *kvpage.Manager
	admits   []int // refs, proving Item flows through
	extends  int
	releases int
}

func (r *recordingKV) CanAdmit(it Item) bool { return r.pool.CanAdmit(it.PromptLen) }
func (r *recordingKV) Admit(seqID int, it Item) error {
	if err := r.pool.Admit(seqID, it.PromptLen); err != nil {
		return err
	}
	r.admits = append(r.admits, it.Ref)
	return nil
}
func (r *recordingKV) Extend(seqID int) error {
	if err := r.pool.Extend(seqID); err != nil {
		return err
	}
	r.extends++
	return nil
}
func (r *recordingKV) Release(seqID int) error {
	if err := r.pool.Release(seqID); err != nil {
		return err
	}
	r.releases++
	return nil
}

// TestNilPoolUnconstrained: without a pool the policy admits up to the
// batch cap, never evicts, and retires on schedule.
func TestNilPoolUnconstrained(t *testing.T) {
	s, err := NewScheduler(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	adm, consumed := s.Admit([]Item{
		{Ref: 0, PromptLen: 100, OutputLen: 2},
		{Ref: 1, PromptLen: 100, OutputLen: 1},
		{Ref: 2, PromptLen: 100, OutputLen: 1},
	})
	if len(adm) != 2 || consumed != 2 {
		t.Fatalf("admitted %d consumed %d, want the batch cap of 2", len(adm), consumed)
	}
	if ev, err := s.ExtendAll(); err != nil || len(ev) != 0 {
		t.Fatalf("nil pool must never evict: %v %v", ev, err)
	}
	fin, err := s.FinishStep()
	if err != nil {
		t.Fatal(err)
	}
	if len(fin) != 1 || fin[0].Item.Ref != 1 {
		t.Fatalf("finished %+v, want exactly ref 1", fin)
	}
	fin, err = s.FinishStep()
	if err != nil {
		t.Fatal(err)
	}
	if len(fin) != 1 || fin[0].Item.Ref != 0 || s.Busy() {
		t.Fatalf("finished %+v busy=%v, want ref 0 and an idle scheduler", fin, s.Busy())
	}
}
