// Package batchpolicy is the iteration-level continuous-batching policy
// shared by the serving simulator (internal/serve) and the live serving
// gateway (internal/gateway): FIFO admission with eager KV-block
// reservation, youngest-first preemption under paged-KV pressure, and
// immediate retirement of finished sequences. Extracting the policy into
// one package is what lets the differential test pin the simulator and
// the gateway to the exact same admission/preemption/completion order —
// the LLMServingSim-style alignment the ROADMAP calls for.
//
// The Scheduler is deliberately single-goroutine: the simulator runs it
// inline and the gateway confines it to the batcher goroutine, so the
// policy itself needs no locks and stays a deterministic state machine.
package batchpolicy

import (
	"fmt"

	"github.com/lia-sim/lia/internal/kvpage"
)

// Item is one piece of admittable work: the caller-side handle plus the
// lengths the policy needs for KV-block accounting.
type Item struct {
	// Ref is the caller's handle for the request (trace index for the
	// simulator, request serial for the gateway). It survives preemption:
	// a re-admitted request keeps its Ref but receives a fresh Seq ID.
	Ref int
	// PromptLen is the prompt length in tokens (KV blocks reserved at
	// admission).
	PromptLen int
	// OutputLen is the number of tokens to generate.
	OutputLen int
}

// Seq is one running sequence's scheduler-visible state. The batch is
// ordered by admission, so the slice's last element is always the
// youngest — the preemption victim.
type Seq struct {
	// ID is the KV-pool sequence id, unique per admission (a preempted
	// and re-admitted request gets a new one).
	ID int
	// Item is the admitted work.
	Item Item
	// Context is the tokens in the KV cache; Remaining the output tokens
	// still to produce.
	Context   int
	Remaining int
	// Prefilled is how many prompt tokens have been computed so far.
	// Under monolithic prefill (chunk 0) it equals PromptLen from
	// admission; under chunked prefill it starts at 0 and AdvancePrefills
	// walks it forward chunk tokens per round. A preempted and
	// re-admitted sequence restarts at 0 (full recomputation).
	Prefilled int
}

// Prefilling reports whether prompt chunks remain to be computed before
// the sequence can decode.
func (q Seq) Prefilling() bool { return q.Prefilled < q.Item.PromptLen }

// EventKind labels a scheduling decision.
type EventKind uint8

// Scheduling decisions, in the order the policy can make them for one
// request: admitted (possibly again after preemption), preempted,
// completed — or removed mid-flight (the gateway's cancellation path and
// the scenario harness's cancel storms observe removals through the same
// event stream as every other decision).
const (
	EventAdmit EventKind = iota
	EventPreempt
	EventComplete
	EventRemove
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventAdmit:
		return "admit"
	case EventPreempt:
		return "preempt"
	case EventComplete:
		return "complete"
	case EventRemove:
		return "remove"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event records one scheduling decision — the differential test compares
// the full event streams of the simulator and the gateway replay.
type Event struct {
	Kind EventKind
	// Ref is the request's caller handle, Seq its pool id at the time of
	// the decision.
	Ref, Seq int
}

// KV is the admission-capacity interface the scheduler charges: the
// plain paged pool (NewScheduler wraps kvpage.Manager) or the gateway's
// prefix-cache admitter, which discounts the shared-prefix blocks a
// prompt can reuse. Item (not just PromptLen) flows into the admission
// calls so an implementation can resolve Ref back to the actual prompt.
// Implementations are driven from the scheduler's single goroutine.
type KV interface {
	// CanAdmit reports whether the item's prompt fits now.
	CanAdmit(it Item) bool
	// Admit reserves the item's prompt blocks under the sequence id.
	Admit(seqID int, it Item) error
	// Extend grows the sequence's reservation by one token slot.
	Extend(seqID int) error
	// Release frees the sequence's reservation.
	Release(seqID int) error
}

// poolKV adapts the plain paged pool to the KV interface.
type poolKV struct{ m *kvpage.Manager }

func (p poolKV) CanAdmit(it Item) bool        { return p.m.CanAdmit(it.PromptLen) }
func (p poolKV) Admit(seqID int, it Item) error { return p.m.Admit(seqID, it.PromptLen) }
func (p poolKV) Extend(seqID int) error       { return p.m.Extend(seqID) }
func (p poolKV) Release(seqID int) error      { return p.m.Release(seqID) }

// Scheduler owns the continuous-batching state: the running batch, the
// requeue list of preempted work (served before new arrivals), and the
// optional KV admission backend. It must be driven from a single
// goroutine.
type Scheduler struct {
	maxBatch int
	pool     *kvpage.Manager // nil when constructed via NewSchedulerKV or unconstrained
	kv       KV              // nil = unconstrained
	chunk    int             // 0 = monolithic prefill
	running  []Seq
	requeued []Item
	nextID   int

	// OnEvent, when set, observes every scheduling decision in order.
	OnEvent func(Event)
}

// NewScheduler builds a scheduler over an optional paged KV pool
// (nil pool = unconstrained admission up to maxBatch).
func NewScheduler(maxBatch int, pool *kvpage.Manager) (*Scheduler, error) {
	if maxBatch < 1 {
		return nil, fmt.Errorf("batchpolicy: max batch must be ≥1, got %d", maxBatch)
	}
	s := &Scheduler{maxBatch: maxBatch, pool: pool}
	if pool != nil {
		s.kv = poolKV{pool}
	}
	return s, nil
}

// NewSchedulerKV builds a scheduler over a custom KV admission backend
// (nil = unconstrained). The policy — FIFO admission, youngest-first
// preemption, immediate retirement — is identical to NewScheduler's;
// only the capacity arithmetic is delegated.
func NewSchedulerKV(maxBatch int, kv KV) (*Scheduler, error) {
	if maxBatch < 1 {
		return nil, fmt.Errorf("batchpolicy: max batch must be ≥1, got %d", maxBatch)
	}
	return &Scheduler{maxBatch: maxBatch, kv: kv}, nil
}

// event emits e to the observer, if any.
func (s *Scheduler) event(kind EventKind, ref, seq int) {
	if s.OnEvent != nil {
		s.OnEvent(Event{Kind: kind, Ref: ref, Seq: seq})
	}
}

// Running returns the running batch in admission order. The slice is a
// snapshot; mutating it does not affect the scheduler.
func (s *Scheduler) Running() []Seq {
	out := make([]Seq, len(s.running))
	copy(out, s.running)
	return out
}

// RunningLen returns the running batch's size.
func (s *Scheduler) RunningLen() int { return len(s.running) }

// RequeuedLen returns how many preempted items await re-admission.
func (s *Scheduler) RequeuedLen() int { return len(s.requeued) }

// Busy reports whether any work is running or awaiting re-admission.
func (s *Scheduler) Busy() bool { return len(s.running) > 0 || len(s.requeued) > 0 }

// Pool returns the paged KV pool (nil when unconstrained).
func (s *Scheduler) Pool() *kvpage.Manager { return s.pool }

// SetChunk switches admission to chunked prefill: newly admitted
// sequences start with Prefilled 0 and AdvancePrefills walks them
// forward chunk prompt tokens per round, so long prompts stop
// monopolizing whole rounds and decode latency for the rest of the
// batch stays bounded. 0 restores monolithic prefill. Sequences already
// running keep the mode they were admitted under.
func (s *Scheduler) SetChunk(chunk int) error {
	if chunk < 0 {
		return fmt.Errorf("batchpolicy: prefill chunk must be ≥0, got %d", chunk)
	}
	s.chunk = chunk
	return nil
}

// Chunk returns the prefill chunk size (0 = monolithic).
func (s *Scheduler) Chunk() int { return s.chunk }

// tryReserve admits one item if the batch has room and the pool can hold
// its prompt, reserving blocks eagerly so one admission wave cannot
// over-commit.
func (s *Scheduler) tryReserve(it Item) bool {
	if len(s.running) >= s.maxBatch {
		return false
	}
	if s.kv != nil {
		if !s.kv.CanAdmit(it) {
			return false
		}
		if err := s.kv.Admit(s.nextID, it); err != nil {
			return false
		}
	}
	seq := Seq{ID: s.nextID, Item: it, Context: it.PromptLen, Remaining: it.OutputLen, Prefilled: it.PromptLen}
	if s.chunk > 0 {
		seq.Prefilled = 0
	}
	s.nextID++
	s.running = append(s.running, seq)
	s.event(EventAdmit, it.Ref, seq.ID)
	return true
}

// Admit admits work into the running batch: preempted (requeued) items
// first, then the waiting list in order, while the batch and the pool
// both have room. Admission is FIFO-blocking within each list — the
// first item that cannot reserve its blocks stops that list — but a
// stuck requeued head does not block smaller arrivals (same semantics
// the simulator always had). It returns the newly admitted sequences in
// admission order and how many items were consumed from waiting.
func (s *Scheduler) Admit(waiting []Item) (admitted []Seq, consumed int) {
	first := len(s.running)
	for len(s.requeued) > 0 && s.tryReserve(s.requeued[0]) {
		s.requeued = s.requeued[1:]
	}
	for consumed < len(waiting) && s.tryReserve(waiting[consumed]) {
		consumed++
	}
	if len(s.running) > first {
		admitted = make([]Seq, len(s.running)-first)
		copy(admitted, s.running[first:])
	}
	return admitted, consumed
}

// ExtendAll grows every running sequence's KV reservation by one token
// slot ahead of a decode iteration. When the pool cannot supply a block,
// the youngest sequence is preempted — its blocks released and its item
// moved to the requeue list for full recomputation — and the allocation
// retries, repeating until the extension fits. If the victim is the very
// sequence being extended (it was both the youngest and the one that
// failed), extension stops there: everything before it already holds its
// new block. Errors when even a one-sequence batch cannot extend, since
// preempting the only member would make no progress. With a nil pool it
// is a no-op.
// Sequences still prefilling are skipped — their prompt blocks were
// reserved in full at admission and they do not decode this round.
func (s *Scheduler) ExtendAll() (evicted []Seq, err error) {
	if s.kv == nil {
		return nil, nil
	}
	for i := 0; i < len(s.running); i++ {
		if s.running[i].Prefilling() {
			continue
		}
		for s.kv.Extend(s.running[i].ID) != nil {
			if len(s.running) <= 1 {
				return nil, fmt.Errorf("batchpolicy: KV pool cannot extend the sole running sequence")
			}
			last := s.running[len(s.running)-1]
			s.running = s.running[:len(s.running)-1]
			if err := s.kv.Release(last.ID); err != nil {
				return nil, err
			}
			s.requeued = append(s.requeued, last.Item)
			s.event(EventPreempt, last.Item.Ref, last.ID)
			evicted = append(evicted, last)
			if i >= len(s.running) {
				return evicted, nil
			}
		}
	}
	return evicted, nil
}

// FinishStep accounts one completed decode iteration: every running
// sequence gains a context token and owes one fewer, and sequences that
// just emitted their last token retire immediately, releasing their
// blocks. Sequences still prefilling are untouched (they did not
// decode). It returns the finished sequences in batch order.
func (s *Scheduler) FinishStep() (finished []Seq, err error) {
	return s.finishCounts(nil)
}

// FinishStepN accounts one variable-token decode iteration — the
// speculative-decoding counterpart of FinishStep. emitted maps a
// sequence's pool ID to how many tokens its round produced (a
// draft-and-verify round emits 1+accepted); IDs absent from the map
// account zero tokens. Emitting at or past the sequence's remaining
// budget retires it. Prefilling sequences are untouched.
func (s *Scheduler) FinishStepN(emitted map[int]int) (finished []Seq, err error) {
	if emitted == nil {
		return nil, fmt.Errorf("batchpolicy: nil emitted counts")
	}
	return s.finishCounts(emitted)
}

// finishCounts retires sequences after a decode round. nil counts means
// one token for every non-prefilling sequence.
func (s *Scheduler) finishCounts(counts map[int]int) (finished []Seq, err error) {
	kept := s.running[:0]
	for _, seq := range s.running {
		n := 1
		if counts != nil {
			n = counts[seq.ID]
		}
		if seq.Prefilling() || n <= 0 {
			kept = append(kept, seq)
			continue
		}
		seq.Context += n
		seq.Remaining -= n
		if seq.Remaining <= 0 {
			if s.kv != nil {
				if err := s.kv.Release(seq.ID); err != nil {
					return nil, err
				}
			}
			s.event(EventComplete, seq.Item.Ref, seq.ID)
			finished = append(finished, seq)
		} else {
			kept = append(kept, seq)
		}
	}
	s.running = kept
	return finished, nil
}

// AdvancePrefills returns the still-prefilling sequences (admission
// order, pre-advance positions — Prefilled is each one's chunk start)
// and then walks every one forward by the chunk size, clamped to its
// prompt length. The caller executes the returned chunk assignments;
// a sequence whose Prefilled reaches PromptLen decodes from this round
// on (its first pending token is computed by the final chunk).
func (s *Scheduler) AdvancePrefills() []Seq {
	var snap []Seq
	for i := range s.running {
		if !s.running[i].Prefilling() {
			continue
		}
		snap = append(snap, s.running[i])
		next := s.running[i].Prefilled + s.chunk
		if s.chunk <= 0 || next > s.running[i].Item.PromptLen {
			next = s.running[i].Item.PromptLen
		}
		s.running[i].Prefilled = next
	}
	return snap
}

// Ready returns the running sequences whose prompt is fully prefilled
// (admission order, snapshot).
func (s *Scheduler) Ready() []Seq {
	var out []Seq
	for _, seq := range s.running {
		if !seq.Prefilling() {
			out = append(out, seq)
		}
	}
	return out
}

// PrefillingLen returns how many running sequences still owe prompt
// chunks.
func (s *Scheduler) PrefillingLen() int {
	n := 0
	for _, seq := range s.running {
		if seq.Prefilling() {
			n++
		}
	}
	return n
}

// TryExtend grows one running sequence's KV reservation by a single
// token slot without preempting anyone, reporting whether the pool had
// room. Speculative decoding uses it to top a sequence's allowance up
// to γ+1 slots before a draft-and-verify round: a false return just
// caps that round's draft depth, it is never fatal. With a nil pool it
// always succeeds.
func (s *Scheduler) TryExtend(id int) bool {
	if s.kv == nil {
		return true
	}
	for _, seq := range s.running {
		if seq.ID == id {
			return s.kv.Extend(id) == nil
		}
	}
	return false
}

// Remove drops a running sequence by pool id without requeueing it (the
// gateway's cancellation path), releasing its blocks. A successful
// removal is a scheduling decision like any other: observers see it as
// an EventRemove, which is how cancel storms show up in the event
// stream the differential and scenario harnesses compare.
func (s *Scheduler) Remove(id int) error {
	for i, seq := range s.running {
		if seq.ID == id {
			s.running = append(s.running[:i], s.running[i+1:]...)
			s.event(EventRemove, seq.Item.Ref, seq.ID)
			if s.kv != nil {
				return s.kv.Release(id)
			}
			return nil
		}
	}
	return fmt.Errorf("batchpolicy: sequence %d is not running", id)
}

// DropRequeued removes requeued items for which drop returns true (the
// gateway's cancellation path for preempted work) and returns them.
// Dropped items emit EventRemove with Seq -1: they held no pool id at
// the time of the decision (preemption already released it).
func (s *Scheduler) DropRequeued(drop func(Item) bool) []Item {
	var dropped []Item
	kept := s.requeued[:0]
	for _, it := range s.requeued {
		if drop(it) {
			dropped = append(dropped, it)
			s.event(EventRemove, it.Ref, -1)
		} else {
			kept = append(kept, it)
		}
	}
	s.requeued = kept
	return dropped
}
