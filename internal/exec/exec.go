// Package exec is LIA's execution back-end (§5.2, §5.3): it turns an
// offloading policy plus a memory plan into a schedule of PCIe transfers
// and CPU/GPU compute tasks, and times that schedule on the deterministic
// scheduler in package sim. It implements both performance optimizations:
//
//   - Optimization-1 enters through pinned decoder layers (whole layers
//     resident on the GPU, computed there with no parameter transfers).
//   - Optimization-2 enters through overlap: weight transfers for the next
//     decoder layer run concurrently with the current layer's compute
//     (Figure 7). Prefill additionally splits the batch into mini-batches
//     pipelined against the transfers; decode keeps the whole batch
//     (mini-batching decode hurts, §5.2).
package exec

import (
	"fmt"
	"sort"
	"strings"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/sim"
	"github.com/lia-sim/lia/internal/units"
)

// Resource names used in schedules.
const (
	// ResCPU is the host CPU compute stream.
	ResCPU = "cpu"
	// ResGPU is the GPU compute stream.
	ResGPU = "gpu"
	// ResPCIe is the CPU↔GPU transfer engine.
	ResPCIe = "pcie"
)

// Plan configures one stage's execution.
type Plan struct {
	// Env supplies the latency equations.
	Env core.Env
	// Policy assigns streamed layers' sublayers to devices.
	Policy core.Policy
	// Opt carries the residency flags for streamed layers (KV placement).
	Opt core.Options
	// Layers is the decoder layer count to execute.
	Layers int
	// PinnedLayers is how many of those layers are GPU-resident
	// (Optimization-1); they execute fully on the GPU with no parameter
	// traffic.
	PinnedLayers int
	// Overlap enables Optimization-2 (compute/transfer overlap).
	Overlap bool
	// MiniBatches splits the batch for pipelined prefill (≥1). LIA uses 2
	// during prefill and 1 during decode; FlexGen mini-batches both.
	MiniBatches int
	// MiniBatchPenalty inflates per-mini-batch compute time, modeling the
	// sub-linear scaling of compute with smaller batches that makes decode
	// mini-batching a loss (§5.2 cites 1.1–1.3×). Zero means the default.
	MiniBatchPenalty float64
}

// DefaultMiniBatchPenalty matches the paper's observed 1.1–1.3× decode
// penalty midpoint.
const DefaultMiniBatchPenalty = 1.2

// Validate reports plan errors.
func (p Plan) Validate() error {
	if err := p.Env.Validate(); err != nil {
		return err
	}
	if p.Layers <= 0 {
		return fmt.Errorf("exec: plan needs at least one layer")
	}
	if p.PinnedLayers < 0 || p.PinnedLayers > p.Layers {
		return fmt.Errorf("exec: pinned layers %d outside [0, %d]", p.PinnedLayers, p.Layers)
	}
	if p.MiniBatches < 1 {
		return fmt.Errorf("exec: mini-batch count %d must be ≥1", p.MiniBatches)
	}
	return nil
}

// layerCost aggregates one decoder layer's work into the three resources.
type layerCost struct {
	comm units.Seconds // PCIe loads + stores
	cpu  units.Seconds // CPU-assigned sublayer compute
	gpu  units.Seconds // GPU-assigned sublayer compute
}

// costFor computes a streamed or pinned layer's resource costs.
func (p Plan) costFor(stage model.Stage, pinned bool, b, l int) layerCost {
	policy := p.Policy
	opt := p.Opt
	if pinned {
		// A pinned layer's parameter sublayers run on the GPU for free
		// (weights resident); attention keeps the streamed policy's
		// placement — the KV cache's home, not the weights', decides it.
		policy = core.Policy{false, p.Policy[model.QKT], p.Policy[model.SV], false, false, false}
		opt.ParamsResident = true
	}
	_, parts := core.LayerLatencyOpts(p.Env, stage, policy, b, l, opt)
	var c layerCost
	for _, br := range parts {
		c.comm += br.Load + br.Store
		if br.OnCPU {
			c.cpu += br.Compute
		} else {
			c.gpu += br.Compute
		}
	}
	return c
}

// StageResult reports a stage execution's timing.
type StageResult struct {
	// Latency is the schedule makespan.
	Latency units.Seconds
	// CPUBusy, GPUBusy and CommBusy are the per-resource service totals —
	// the Table 5 breakdown.
	CPUBusy, GPUBusy, CommBusy units.Seconds
}

// Add accumulates another result (used to sum decode steps).
func (r *StageResult) Add(o StageResult) {
	r.Latency += o.Latency
	r.CPUBusy += o.CPUBusy
	r.GPUBusy += o.GPUBusy
	r.CommBusy += o.CommBusy
}

// RunStage executes one stage (a full prefill pass, or one decode step)
// across all layers and returns its timing. b is the batch size; l is the
// input length (prefill) or current context length (decode).
func (p Plan) RunStage(stage model.Stage, b, l int) (StageResult, error) {
	if err := p.Validate(); err != nil {
		return StageResult{}, err
	}
	s, err := p.buildSchedule(stage, b, l)
	if err != nil {
		return StageResult{}, err
	}
	res, err := s.Run()
	if err != nil {
		return StageResult{}, fmt.Errorf("exec: %w", err)
	}
	return StageResult{
		Latency:  res.Makespan,
		CPUBusy:  res.Busy[ResCPU],
		GPUBusy:  res.Busy[ResGPU],
		CommBusy: res.Busy[ResPCIe],
	}, nil
}

// buildSchedule constructs the stage's task graph.
func (p Plan) buildSchedule(stage model.Stage, b, l int) (*sim.Schedule, error) {
	nMB := p.MiniBatches
	if stage == model.Decode {
		// LIA never mini-batches decode; FlexGen-style plans may.
		if nMB < 1 {
			nMB = 1
		}
	}
	penalty := p.MiniBatchPenalty
	if penalty <= 0 {
		penalty = DefaultMiniBatchPenalty
	}
	if nMB == 1 {
		penalty = 1
	}

	s := sim.NewSchedule()
	prevComputeID := ""
	for j := 0; j < p.Layers; j++ {
		pinned := j < p.PinnedLayers
		c := p.costFor(stage, pinned, b, l)

		xferID := fmt.Sprintf("xfer-%d", j)
		var xferDeps []string
		if !p.Overlap && prevComputeID != "" {
			// Overlap disabled: the next layer's transfer waits for the
			// previous layer's compute to finish.
			xferDeps = []string{prevComputeID}
		}
		s.MustAdd(sim.Task{ID: xferID, Resource: ResPCIe, Duration: c.comm, Deps: xferDeps})

		// Per-mini-batch compute. Each mini-batch's CPU part feeds its GPU
		// part, and mini-batches serialize within a layer (they contend for
		// the same engines); their value is letting transfers for the next
		// layer start earlier, which Overlap already provides. The penalty
		// models compute's sub-linear scaling with smaller batches — the
		// reason LIA keeps decode whole-batch (§5.2).
		perMBcpu := units.Seconds(float64(c.cpu) / float64(nMB) * penalty)
		perMBgpu := units.Seconds(float64(c.gpu) / float64(nMB) * penalty)
		for m := 0; m < nMB; m++ {
			cpuID := fmt.Sprintf("cpu-%d-%d", j, m)
			gpuID := fmt.Sprintf("gpu-%d-%d", j, m)
			cpuDeps := []string{xferID}
			if m > 0 {
				cpuDeps = append(cpuDeps, fmt.Sprintf("gpu-%d-%d", j, m-1))
			} else if j > 0 {
				cpuDeps = append(cpuDeps, prevComputeID)
			}
			s.MustAdd(sim.Task{ID: cpuID, Resource: ResCPU, Duration: perMBcpu, Deps: cpuDeps})
			s.MustAdd(sim.Task{ID: gpuID, Resource: ResGPU, Duration: perMBgpu, Deps: []string{cpuID}})
		}
		prevComputeID = fmt.Sprintf("gpu-%d-%d", j, nMB-1)
	}
	return s, nil
}

// RunDecodeSequence executes `steps` decode iterations with the context
// growing from startLen, summing their timings — the Gen stage of one
// batch.
func (p Plan) RunDecodeSequence(b, startLen, steps int) (StageResult, error) {
	var total StageResult
	for t := 0; t < steps; t++ {
		r, err := p.RunStage(model.Decode, b, startLen+t)
		if err != nil {
			return StageResult{}, err
		}
		total.Add(r)
	}
	return total, nil
}

// TraceEntry is one executed task in a stage's timeline.
type TraceEntry struct {
	// ID names the task (e.g. "xfer-12", "gpu-3-0").
	ID string
	// Resource is the serial executor the task ran on.
	Resource string
	// Start and Finish bound the execution interval.
	Start, Finish units.Seconds
}

// TraceStage executes one stage like RunStage but also returns the full
// task timeline, ordered by start time — the raw material for a Gantt
// view of the Figure 7 overlap.
func (p Plan) TraceStage(stage model.Stage, b, l int) (StageResult, []TraceEntry, error) {
	if err := p.Validate(); err != nil {
		return StageResult{}, nil, err
	}
	s, err := p.buildSchedule(stage, b, l)
	if err != nil {
		return StageResult{}, nil, err
	}
	res, err := s.Run()
	if err != nil {
		return StageResult{}, nil, fmt.Errorf("exec: %w", err)
	}
	entries := make([]TraceEntry, 0, len(res.Start))
	for id, start := range res.Start {
		entries = append(entries, TraceEntry{
			ID:       id,
			Resource: resourceOf(id),
			Start:    start,
			Finish:   res.Finish[id],
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Start != entries[j].Start {
			return entries[i].Start < entries[j].Start
		}
		return entries[i].ID < entries[j].ID
	})
	return StageResult{
		Latency:  res.Makespan,
		CPUBusy:  res.Busy[ResCPU],
		GPUBusy:  res.Busy[ResGPU],
		CommBusy: res.Busy[ResPCIe],
	}, entries, nil
}

// resourceOf recovers a task's resource from its ID prefix.
func resourceOf(id string) string {
	switch {
	case strings.HasPrefix(id, "xfer-"):
		return ResPCIe
	case strings.HasPrefix(id, "cpu-"):
		return ResCPU
	default:
		return ResGPU
	}
}
