package exec

import (
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

func basePlan() Plan {
	return Plan{
		Env:         core.NewEnv(hw.SPRA100, model.OPT30B),
		Policy:      core.FullGPU,
		Layers:      model.OPT30B.Layers,
		Overlap:     true,
		MiniBatches: 1,
	}
}

func TestValidate(t *testing.T) {
	p := basePlan()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Layers = 0
	if p.Validate() == nil {
		t.Error("zero layers accepted")
	}
	p = basePlan()
	p.PinnedLayers = 99
	if p.Validate() == nil {
		t.Error("pinned > layers accepted")
	}
	p = basePlan()
	p.MiniBatches = 0
	if p.Validate() == nil {
		t.Error("zero mini-batches accepted")
	}
}

// TestOverlapHidesTransfers: with overlap on, the makespan approaches
// max(comm, compute) instead of their sum (Figure 7).
func TestOverlapHidesTransfers(t *testing.T) {
	on := basePlan()
	off := basePlan()
	off.Overlap = false
	rOn, err := on.RunStage(model.Prefill, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := off.RunStage(model.Prefill, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	if rOn.Latency >= rOff.Latency {
		t.Errorf("overlap should reduce latency: %v vs %v", rOn.Latency, rOff.Latency)
	}
	// Busy totals are placement-determined, not overlap-determined.
	if rOn.CommBusy != rOff.CommBusy || rOn.GPUBusy != rOff.GPUBusy {
		t.Error("overlap must not change resource busy totals")
	}
	// Lower bound: no schedule can beat the busiest resource.
	busiest := rOn.CommBusy
	if rOn.GPUBusy > busiest {
		busiest = rOn.GPUBusy
	}
	if rOn.CPUBusy > busiest {
		busiest = rOn.CPUBusy
	}
	if rOn.Latency < busiest {
		t.Errorf("latency %v below busiest resource %v", rOn.Latency, busiest)
	}
	// Serial upper bound.
	serial := rOn.CommBusy + rOn.GPUBusy + rOn.CPUBusy
	if rOff.Latency > serial*1.0000001 {
		t.Errorf("non-overlapped latency %v exceeds serial sum %v", rOff.Latency, serial)
	}
}

// TestPinnedLayersReduceComm: Optimization-1 removes parameter traffic
// for pinned layers.
func TestPinnedLayersReduceComm(t *testing.T) {
	unpinned := basePlan()
	pinned := basePlan()
	pinned.PinnedLayers = 24
	r0, err := unpinned.RunStage(model.Decode, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := pinned.RunStage(model.Decode, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CommBusy >= r0.CommBusy {
		t.Errorf("pinning should cut comm: %v vs %v", r1.CommBusy, r0.CommBusy)
	}
	if r1.Latency >= r0.Latency {
		t.Errorf("pinning should cut latency: %v vs %v", r1.Latency, r0.Latency)
	}
}

// TestDecodeMiniBatchingHurts reproduces §5.2: splitting the decode batch
// into mini-batches (FlexGen's approach) inflates latency by ~1.1–1.3×.
func TestDecodeMiniBatchingHurts(t *testing.T) {
	whole := basePlan()
	whole.Policy = core.PartialCPU
	split := whole
	split.MiniBatches = 2
	rWhole, err := whole.RunStage(model.Decode, 900, 256)
	if err != nil {
		t.Fatal(err)
	}
	rSplit, err := split.RunStage(model.Decode, 900, 256)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rSplit.Latency) / float64(rWhole.Latency)
	if ratio < 1.02 || ratio > 1.5 {
		t.Errorf("mini-batched decode penalty = %.2fx, want within (1.0, 1.5] (paper: 1.1-1.3x)", ratio)
	}
}

// TestPrefillMiniBatchingHelps: during prefill, mini-batching lets
// compute hide behind transfers when transfers dominate.
func TestPrefillMiniBatchingHelps(t *testing.T) {
	// OPT-175B streamed fully over PCIe: comm-bound, so pipelining
	// mini-batches cannot hurt much and the first compute starts earlier.
	p := Plan{
		Env:         core.NewEnv(hw.SPRA100, model.OPT175B),
		Policy:      core.FullGPU,
		Layers:      8,
		Overlap:     true,
		MiniBatches: 1,
	}
	split := p
	split.MiniBatches = 2
	split.MiniBatchPenalty = 1.1
	r1, err := p.RunStage(model.Prefill, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := split.RunStage(model.Prefill, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Comm dominates, so the pipelined version must stay within a few
	// percent of the unsplit one (the penalty hides under transfers).
	if float64(r2.Latency) > 1.05*float64(r1.Latency) {
		t.Errorf("comm-bound prefill mini-batching cost too much: %v vs %v", r2.Latency, r1.Latency)
	}
}

func TestRunDecodeSequenceGrowsContext(t *testing.T) {
	p := basePlan()
	p.Policy = core.FullCPU
	p.Layers = 4
	r, err := p.RunDecodeSequence(8, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	single, err := p.RunStage(model.Decode, 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	// 16 steps with growing context cost at least 16× the first step.
	if r.Latency < 16*single.Latency {
		t.Errorf("sequence latency %v below 16 × first step %v", r.Latency, single.Latency)
	}
}

// TestCPUPolicyShiftsBusyTime: a full-CPU policy leaves the GPU idle.
func TestCPUPolicyShiftsBusyTime(t *testing.T) {
	p := basePlan()
	p.Policy = core.FullCPU
	r, err := p.RunStage(model.Decode, 4, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r.GPUBusy != 0 {
		t.Errorf("full-CPU policy should not use the GPU, got %v", r.GPUBusy)
	}
	if r.CPUBusy <= 0 {
		t.Error("full-CPU policy must use the CPU")
	}
	if r.CommBusy != 0 {
		t.Errorf("full-CPU decode has no PCIe traffic, got %v", r.CommBusy)
	}
}

func TestTraceStage(t *testing.T) {
	p := basePlan()
	p.Layers = 4
	res, entries, err := p.TraceStage(model.Prefill, 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4*3 { // xfer + cpu + gpu per layer
		t.Fatalf("%d entries, want 12", len(entries))
	}
	// Sorted by start; finishes bound the makespan; resources recovered.
	prev := units.Seconds(-1)
	for _, e := range entries {
		if e.Start < prev {
			t.Fatal("entries not sorted by start")
		}
		prev = e.Start
		if e.Finish > res.Latency {
			t.Errorf("%s finishes at %v beyond makespan %v", e.ID, e.Finish, res.Latency)
		}
		switch e.Resource {
		case ResCPU, ResGPU, ResPCIe:
		default:
			t.Errorf("bad resource %q", e.Resource)
		}
	}
	// Trace and RunStage agree.
	plain, err := p.RunStage(model.Prefill, 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Latency != res.Latency {
		t.Error("TraceStage and RunStage disagree")
	}
}
