package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/gateway"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/trace"
)

// TestCancelStormLiveGateway is the chaos regression test: every client
// cancels mid-decode, and the gateway must come out clean — zero leaked
// goroutines, exact outcome accounting, and bit-identical tokens for
// whatever did complete before its cancel fired.
func TestCancelStormLiveGateway(t *testing.T) {
	cell := Cell{
		Scenario: ScenarioConfig{
			Name:     "cancel-storm",
			Arrival:  trace.ArrivalSpec{Process: trace.Bursty, Rate: 200, BurstMean: 8, BurstGap: 0.0002},
			Workload: HeavyTailed,
			Requests: 24,
			KVTokens: 128,
			SLO:      1,
		}.withDefaults(),
		Fault: FaultPlan{
			Name:        "all-cancel",
			CancelEvery: 1, // every client walks away
			CancelAfter: 0.002,
			QueueDepth:  4,
		},
	}
	stream, err := buildStream(cell, 9)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := runLiveTrial(cell, stream, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.AccountingExact {
		t.Fatalf("cancel storm broke outcome accounting: %+v", lr)
	}
	if !lr.LeakFree {
		t.Fatalf("cancel storm leaked goroutines (now %d): %+v", runtime.NumGoroutine(), lr)
	}
	if !lr.BitIdentical {
		t.Fatalf("tokens diverged under the cancel storm: %+v", lr)
	}
	if lr.Canceled == 0 {
		t.Fatalf("a storm where every client cancels after 2ms canceled nothing: %+v", lr)
	}
}

// TestHTTPShedAndDrainRetryAfter pins the HTTP face of chaos: a
// saturated queue answers 429 and a draining gateway 503, both promptly
// and both carrying a Retry-After hint.
func TestHTTPShedAndDrainRetryAfter(t *testing.T) {
	m, err := llm.NewRandom(llm.TinyConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gateway.New(llm.NewExecutor(m, core.FullGPU), gateway.Config{
		MaxBatch:   1,
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	post := func(n int) *http.Response {
		body, _ := json.Marshal(gateway.GenerateRequest{Prompt: []int{5, 17, 42, 9}, MaxNewTokens: n})
		resp, err := http.Post(srv.URL+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Saturate: the batcher drains the depth-1 queue eagerly between
	// engine rounds, so a shed needs two submissions racing into the same
	// mid-round window. Hammer with concurrent bursts until the race
	// lands (it lands within a round or two in practice); a burst into a
	// depth-1 queue that never sheds within the deadline is the bug.
	var shed, ok int
	deadline := time.Now().Add(10 * time.Second)
	for (shed == 0 || ok == 0) && time.Now().Before(deadline) {
		var wg sync.WaitGroup
		codes := make(chan int, 24)
		for i := 0; i < cap(codes); i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp := post(16)
				defer resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					if ra := resp.Header.Get("Retry-After"); ra != "1" {
						t.Errorf("429 without Retry-After: %q", ra)
					}
				}
				codes <- resp.StatusCode
			}()
		}
		wg.Wait()
		close(codes)
		for c := range codes {
			switch c {
			case http.StatusTooManyRequests:
				shed++
			case http.StatusOK:
				ok++
			default:
				t.Errorf("unexpected status %d", c)
			}
		}
	}
	if shed == 0 {
		t.Fatal("concurrent bursts into a depth-1 queue shed nothing")
	}
	if ok == 0 {
		t.Fatal("nothing completed")
	}

	// Drain: a shut-down gateway answers 503 + Retry-After immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp := post(2)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining gateway answered %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("503 without Retry-After: %q", ra)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("draining 503 took %v — refusal must be prompt", d)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("503 body not a JSON error: %v %+v", err, e)
	}
}

// TestTierPressureSpikePreempts: halving the KV pool mid-matrix (the
// KVScale fault) must surface as preemption-rate inflation in the
// virtual leg — the tier-pressure chaos signal.
func TestTierPressureSpikePreempts(t *testing.T) {
	scenario := ScenarioConfig{
		Name:     "pressure",
		Arrival:  trace.ArrivalSpec{Process: trace.Bursty, Rate: 300, BurstMean: 8, BurstGap: 0.0002},
		Workload: HeavyTailed,
		Requests: 32,
		MaxBatch: 8,
		KVTokens: 1024,
		SLO:      2,
	}.withDefaults()
	run := func(f FaultPlan) TrialResult {
		tr, err := RunTrial(Cell{Scenario: scenario, Fault: f}, 3, false)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	base := run(FaultPlan{Name: "baseline"})
	squeezed := run(FaultPlan{Name: "squeeze", KVScale: 0.25})
	if squeezed.Preempted <= base.Preempted {
		t.Fatalf("quartering the KV pool did not inflate preemptions: %d vs %d",
			squeezed.Preempted, base.Preempted)
	}
	if fmt.Sprint(base.Seed) != fmt.Sprint(squeezed.Seed) {
		t.Fatal("fault plans must not change the trial seed")
	}
}
