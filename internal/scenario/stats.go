package scenario

import (
	"math"
	"math/rand"
	"sort"
)

// Percentile returns the nearest-rank p-quantile of the samples (p in
// [0, 1]; 0 on an empty slice). Nearest-rank — not interpolation — so
// the value is always an observed sample and small-N results stay
// exactly reproducible.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(math.Ceil(p * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// MetricSummary aggregates one metric across a cell's trials.
type MetricSummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	// CI95Lo/Hi is a seeded-bootstrap 95% confidence interval on the
	// mean (percentile method, 200 resamples).
	CI95Lo float64 `json:"ci95_lo"`
	CI95Hi float64 `json:"ci95_hi"`
}

// bootstrapResamples balances CI stability against artifact-generation
// time; 200 puts the percentile-method endpoints well inside the noise
// floor of N≈10-trial cells.
const bootstrapResamples = 200

// Summarize aggregates per-trial samples into mean, percentiles, and a
// seeded-bootstrap CI on the mean. The rng is the caller's — one
// sequential source per cell, consumed in a fixed metric order, keeps
// the whole artifact a pure function of the experiment seed.
func Summarize(samples []float64, rng *rand.Rand) MetricSummary {
	if len(samples) == 0 {
		return MetricSummary{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(len(samples))
	out := MetricSummary{
		Mean: mean,
		P50:  Percentile(samples, 0.50),
		P99:  Percentile(samples, 0.99),
	}
	if len(samples) == 1 {
		out.CI95Lo, out.CI95Hi = mean, mean
		return out
	}
	means := make([]float64, bootstrapResamples)
	for i := range means {
		var s float64
		for j := 0; j < len(samples); j++ {
			s += samples[rng.Intn(len(samples))]
		}
		means[i] = s / float64(len(samples))
	}
	sort.Float64s(means)
	out.CI95Lo = means[int(0.025*float64(bootstrapResamples))]
	out.CI95Hi = means[int(0.975*float64(bootstrapResamples))-1]
	return out
}
