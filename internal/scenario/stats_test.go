package scenario

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPercentileNearestRank(t *testing.T) {
	s := []float64{9, 1, 7, 3, 5} // sorted: 1 3 5 7 9
	for _, tc := range []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 5}, {0.8, 7}, {0.99, 9}, {1, 9},
	} {
		if got := Percentile(s, tc.p); got != tc.want {
			t.Errorf("P%g = %g, want %g", tc.p*100, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %g, want 0", got)
	}
	// The input must not be mutated (callers reuse trial slices).
	if !reflect.DeepEqual(s, []float64{9, 1, 7, 3, 5}) {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarizeBootstrap(t *testing.T) {
	samples := []float64{0.8, 0.9, 0.85, 0.95, 0.7, 0.9, 0.88, 0.92, 0.81, 0.87}
	sum := func(seed int64) MetricSummary {
		return Summarize(samples, rand.New(rand.NewSource(seed)))
	}
	a, b := sum(7), sum(7)
	if a != b {
		t.Fatalf("same rng seed produced different summaries: %+v vs %+v", a, b)
	}
	if c := sum(8); c == a {
		t.Fatal("different rng seeds should move the bootstrap CI")
	}
	var mean float64
	for _, v := range samples {
		mean += v
	}
	mean /= float64(len(samples))
	if a.Mean != mean {
		t.Fatalf("mean %g, want %g", a.Mean, mean)
	}
	if a.CI95Lo > mean || a.CI95Hi < mean {
		t.Fatalf("bootstrap CI [%g, %g] does not bracket the mean %g", a.CI95Lo, a.CI95Hi, mean)
	}
	if a.CI95Lo >= a.CI95Hi {
		t.Fatalf("degenerate CI [%g, %g] on dispersed samples", a.CI95Lo, a.CI95Hi)
	}
	if a.P50 < 0.85 || a.P50 > 0.9 || a.P99 != 0.95 {
		t.Fatalf("percentiles p50=%g p99=%g", a.P50, a.P99)
	}

	one := Summarize([]float64{0.5}, rand.New(rand.NewSource(1)))
	if one.Mean != 0.5 || one.CI95Lo != 0.5 || one.CI95Hi != 0.5 {
		t.Fatalf("single-sample summary %+v", one)
	}
	if z := Summarize(nil, rand.New(rand.NewSource(1))); z != (MetricSummary{}) {
		t.Fatalf("empty summary %+v", z)
	}
}

func TestVerdictGrades(t *testing.T) {
	for _, tc := range []struct {
		att  float64
		ok   bool
		want string
	}{
		{0.95, true, "MET"},
		{0.7, true, "DEGRADED"},
		{0.2, true, "MISSED"},
		{0.95, false, "FAIL"},
	} {
		if got := Verdict(tc.att, tc.ok); got != tc.want {
			t.Errorf("Verdict(%g, %v) = %q, want %q", tc.att, tc.ok, got, tc.want)
		}
	}
}
