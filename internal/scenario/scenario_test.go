package scenario

import (
	"strings"
	"testing"

	"github.com/lia-sim/lia/internal/trace"
)

func smokeExperiment() Experiment {
	return Experiment{
		Name: "smoke",
		Scenarios: []ScenarioConfig{
			{
				Name:     "bursty-tight",
				Arrival:  trace.ArrivalSpec{Process: trace.Bursty, Rate: 120, BurstMean: 6, BurstGap: 0.0005},
				Workload: HeavyTailed,
				Requests: 16,
				KVTokens: 128,
				SLO:      1.0,
			},
			{
				Name:     "prefix-cxl",
				Arrival:  trace.ArrivalSpec{Process: trace.Poisson, Rate: 80},
				Workload: HotPrefix,
				Requests: 16,
				KVTokens: 192,
				SLO:      1.2,
				Mode:     Mode{PrefixCache: true, Offload: "cxl"},
			},
		},
		Faults: []FaultPlan{
			{Name: "baseline"},
			{
				Name:          "storm",
				LinkBWScale:   0.25,
				LinkFailEvery: 4,
				KVScale:       0.5,
				QueueDepth:    4,
				CancelEvery:   3,
				CancelAfter:   0.01,
				DeadlineEvery: 4,
				Deadline:      0.3,
			},
		},
		Trials:     2,
		Seed:       1,
		LiveTrials: 1,
	}
}

func TestDefaultExperimentValidates(t *testing.T) {
	e := Default().withDefaults()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(e.Cells()) < 6 {
		t.Fatalf("default matrix has %d cells, want ≥ 3 scenarios × 2 faults", len(e.Cells()))
	}
	if e.Trials < 5 {
		t.Fatalf("default trials %d, want ≥5 for the published CIs", e.Trials)
	}
}

func TestValidationRejectsBadDeclarations(t *testing.T) {
	base := smokeExperiment()
	for name, breakIt := range map[string]func(*Experiment){
		"no-scenarios":    func(e *Experiment) { e.Scenarios = nil },
		"no-faults":       func(e *Experiment) { e.Faults = nil },
		"dup-scenario":    func(e *Experiment) { e.Scenarios = append(e.Scenarios, e.Scenarios[0]) },
		"dup-fault":       func(e *Experiment) { e.Faults = append(e.Faults, e.Faults[0]) },
		"unnamed-fault":   func(e *Experiment) { e.Faults[0].Name = "" },
		"bad-arrival":     func(e *Experiment) { e.Scenarios[0].Arrival.Rate = 0 },
		"bad-workload":    func(e *Experiment) { e.Scenarios[0].Workload = "nope" },
		"bad-offload":     func(e *Experiment) { e.Scenarios[0].Mode.Offload = "nvme" },
		"spec-on-offload": func(e *Experiment) { e.Scenarios[1].Mode.SpecGamma = 2 },
		"bad-bw-scale":    func(e *Experiment) { e.Faults[1].LinkBWScale = 1.5 },
		"bad-kv-scale":    func(e *Experiment) { e.Faults[1].KVScale = 2 },
		"cancel-no-after": func(e *Experiment) { e.Faults[1].CancelAfter = 0 },
		"negative-trials": func(e *Experiment) { e.Trials = -1 },
	} {
		t.Run(name, func(t *testing.T) {
			e := smokeExperiment()
			breakIt(&e)
			e = e.withDefaults()
			if err := e.Validate(); err == nil {
				t.Fatalf("%s: broken declaration validated", name)
			}
		})
	}
	if err := base.withDefaults().Validate(); err != nil {
		t.Fatalf("pristine smoke experiment must validate: %v", err)
	}
}

func TestCellsExpandScenarioMajor(t *testing.T) {
	cells := smokeExperiment().Cells()
	want := []struct{ s, f string }{
		{"bursty-tight", "baseline"},
		{"bursty-tight", "storm"},
		{"prefix-cxl", "baseline"},
		{"prefix-cxl", "storm"},
	}
	if len(cells) != len(want) {
		t.Fatalf("%d cells, want %d", len(cells), len(want))
	}
	for i, w := range want {
		if cells[i].Scenario.Name != w.s || cells[i].Fault.Name != w.f {
			t.Fatalf("cell %d = %s/%s, want %s/%s", i, cells[i].Scenario.Name, cells[i].Fault.Name, w.s, w.f)
		}
	}
}

// TestRunSmokeMatrix is the CI smoke: the 2×2×2 matrix end to end —
// virtual statistics, one live chaos leg per cell, invariants, verdict
// table. Run under -race this also shakes the live leg's concurrency.
func TestRunSmokeMatrix(t *testing.T) {
	res, err := Run(smokeExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != Schema {
		t.Fatalf("schema %q, want %q", res.Schema, Schema)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("%d cells, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Trials != 2 || len(c.Raw) != 2 {
			t.Fatalf("cell %s/%s ran %d trials (%d raw), want 2", c.Scenario, c.Fault, c.Trials, len(c.Raw))
		}
		if c.Invariants.LiveTrials != 1 {
			t.Fatalf("cell %s/%s ran %d live legs, want 1", c.Scenario, c.Fault, c.Invariants.LiveTrials)
		}
		if !c.Invariants.OK() {
			t.Fatalf("cell %s/%s violated standing invariants: %+v", c.Scenario, c.Fault, c.Invariants)
		}
		if c.Verdict == "" || c.Verdict == "FAIL" {
			t.Fatalf("cell %s/%s verdict %q", c.Scenario, c.Fault, c.Verdict)
		}
		for _, tr := range c.Raw {
			if tr.Completed+tr.Shed+tr.Canceled != tr.Requests {
				t.Fatalf("cell %s/%s trial accounting: %+v", c.Scenario, c.Fault, tr)
			}
			if tr.Makespan <= 0 {
				t.Fatalf("cell %s/%s zero makespan", c.Scenario, c.Fault)
			}
		}
		if c.Fault == "storm" && c.Metrics.CancelRate.Mean == 0 {
			t.Fatalf("cell %s/storm canceled nothing — chaos not injected", c.Scenario)
		}
		if c.Scenario == "prefix-cxl" && c.Fault == "storm" && c.Metrics.RefetchRate.Mean == 0 {
			t.Fatal("offloaded storm cell recorded no link refetches")
		}
	}
	// The verdict table renders one row per cell.
	md := res.Markdown()
	if got := strings.Count(md, "\n"); got != len(res.Cells)+2 {
		t.Fatalf("markdown has %d lines, want header+separator+%d rows:\n%s", got, len(res.Cells), md)
	}
	for _, c := range res.Cells {
		if !strings.Contains(md, c.Scenario) || !strings.Contains(md, c.Verdict) {
			t.Fatalf("markdown missing cell %s/%s:\n%s", c.Scenario, c.Fault, md)
		}
	}
}
