package scenario

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/gateway"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/router"
	"github.com/lia-sim/lia/internal/units"
)

// runFleetTrial is the fleet scenarios' trial body: the virtual leg
// replays the stream through router.FleetReplay — N homogeneous
// replicas behind power-of-two-choices placement, with the fault plan's
// replica kill/respawn as discrete events on the virtual clock — and
// the live leg drives a real router fleet with a mid-traffic hard kill.
// The accounting identity (completed + shed + canceled == requests)
// must close exactly across any number of failovers, on both legs.
func runFleetTrial(cell Cell, stream []streamReq, seed int64, live bool) (TrialResult, error) {
	s, f := cell.Scenario, cell.Fault

	queue := s.QueueDepth
	if f.QueueDepth > 0 {
		queue = f.QueueDepth
	}
	kvTokens := s.KVTokens
	if f.KVScale > 0 && f.KVScale < 1 && kvTokens > 0 {
		kvTokens = int(float64(kvTokens) * f.KVScale)
	}

	reqs := make([]gateway.ReplayRequest, len(stream))
	for i, r := range stream {
		reqs[i] = r.ReplayRequest
	}
	replicas := make([]router.ReplayReplica, s.Replicas)
	for i := range replicas {
		replicas[i] = router.ReplayReplica{
			Name:          fmt.Sprintf("r%d", i),
			MaxBatch:      s.MaxBatch,
			QueueDepth:    queue,
			KVTokens:      kvTokens,
			KVBlockTokens: 4,
		}
	}
	// The fault plan kills (and maybe respawns) replica 0: the victim
	// is fixed so the trial stays a pure function of the seed.
	if f.ReplicaKillAt > 0 {
		replicas[0].DownAt = f.ReplicaKillAt
		replicas[0].UpAt = f.ReplicaRespawnAt
	}
	res, err := router.FleetReplay(router.FleetConfig{
		Policy:   router.PolicyP2C,
		Seed:     seed,
		Model:    llm.TinyConfig(),
		Replicas: replicas,
	}, reqs)
	if err != nil {
		return TrialResult{}, fmt.Errorf("scenario %s/%s: fleet replay: %w", s.Name, f.Name, err)
	}
	if got := res.Completed + res.Shed + res.Canceled; got != len(reqs) {
		return TrialResult{}, fmt.Errorf("scenario %s/%s: fleet outcome accounting broken: %d+%d+%d != %d",
			s.Name, f.Name, res.Completed, res.Shed, res.Canceled, len(reqs))
	}

	out := TrialResult{
		Seed:      seed,
		Requests:  len(reqs),
		Completed: res.Completed,
		Shed:      res.Shed,
		Canceled:  res.Canceled,
		Preempted: res.Preemptions,
		Failovers: res.Failovers,
		Makespan:  float64(res.Makespan),
	}
	var ttfts, lats []float64
	for _, r := range res.Requests {
		if r.FirstToken > 0 {
			ttfts = append(ttfts, float64(r.FirstToken-r.Arrival))
		}
		if r.Outcome == gateway.ReplayCompleted {
			lat := float64(r.Finish - r.Arrival)
			lats = append(lats, lat)
			if lat <= float64(s.SLO) {
				out.Attained++
			}
		}
	}
	out.TTFTP50, out.TTFTP99 = Percentile(ttfts, 0.50), Percentile(ttfts, 0.99)
	out.LatencyP50, out.LatencyP99 = Percentile(lats, 0.50), Percentile(lats, 0.99)

	if live {
		lr, err := runFleetLiveTrial(cell, stream, seed)
		if err != nil {
			return TrialResult{}, err
		}
		out.Live = lr
	}
	return out, nil
}

// runFleetLiveTrial drives a real router fleet over the tiny model with
// concurrent clients. When the fault plan kills a replica, the kill
// fires mid-traffic (after half the submissions have started) so
// in-flight work actually fails over; a planned respawn is verified to
// serve again. The standing invariants are the single-gateway leg's,
// plus the router's own accounting: placed == client successes and
// spilled == client-observed spills.
func runFleetLiveTrial(cell Cell, stream []streamReq, seed int64) (*LiveResult, error) {
	s, f := cell.Scenario, cell.Fault
	modelCfg := llm.TinyConfig()
	baseline := runtime.NumGoroutine()

	queue := s.QueueDepth
	if f.QueueDepth > 0 {
		queue = f.QueueDepth
	}
	kvTokens := s.KVTokens
	if f.KVScale > 0 && f.KVScale < 1 && kvTokens > 0 {
		kvTokens = int(float64(kvTokens) * f.KVScale)
	}
	var budget units.Bytes
	if kvTokens > 0 {
		budget = modelCfg.KVBytes(1, kvTokens)
	}
	specs := make([]router.ReplicaSpec, s.Replicas)
	for i := range specs {
		specs[i] = router.ReplicaSpec{
			Name:   fmt.Sprintf("r%d", i),
			Model:  modelCfg,
			Seed:   seed,
			Policy: core.FullGPU,
			Gateway: gateway.Config{
				MaxBatch:      s.MaxBatch,
				QueueDepth:    queue,
				KVBudget:      budget,
				KVBlockTokens: 4,
			},
		}
	}
	rt, err := router.New(router.Config{Seed: seed}, specs)
	if err != nil {
		return nil, err
	}

	n := len(stream)
	if n > liveRequests {
		n = liveRequests
	}
	type job struct {
		prompt []int
		out    int
	}
	jobs := make([]job, n)
	for i := 0; i < n; i++ {
		p := stream[i].Prompt
		if len(p) > 16 {
			p = p[:16]
		}
		prompt := make([]int, len(p))
		for j, t := range p {
			prompt[j] = t % modelCfg.VocabSize
		}
		out := stream[i].OutputLen
		if out > 6 {
			out = 6
		}
		jobs[i] = job{prompt: prompt, out: out}
	}

	lr := &LiveResult{Requests: n, BitIdentical: true}
	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		unknown   int
		started   atomic.Int64
		killOnce  sync.Once
		completed []struct {
			prompt, tokens []int
			n              int
		}
	)
	kill := f.ReplicaKillAt > 0 && s.Replicas >= 2
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if kill && started.Add(1) == int64(n/2) {
				// Mid-traffic hard kill: queued and running work on r0
				// fails with ErrShuttingDown and fails over through the
				// router's retry loop.
				killOnce.Do(func() { rt.Kill("r0") })
			}
			res, err := rt.Submit(context.Background(), jobs[i].prompt, jobs[i].out)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				lr.Completed++
				completed = append(completed, struct {
					prompt, tokens []int
					n              int
				}{jobs[i].prompt, res.Tokens, jobs[i].out})
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				lr.Canceled++
			case errors.Is(err, router.ErrNoReplicas):
				lr.Shed++
			default:
				unknown++
			}
		}(i)
	}
	wg.Wait()

	// A planned respawn must bring the victim back into service.
	if kill && f.ReplicaRespawnAt > 0 {
		if err := rt.Respawn("r0"); err != nil {
			return nil, fmt.Errorf("scenario %s/%s: live respawn: %w", s.Name, f.Name, err)
		}
		if _, err := rt.Submit(context.Background(), jobs[0].prompt, jobs[0].out); err == nil {
			mu.Lock()
			lr.Completed++
			lr.Requests++
			n++
			mu.Unlock()
		}
	}

	snap := rt.Snapshot()
	shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = rt.Shutdown(shCtx)
	shCancel()
	if err != nil {
		return nil, fmt.Errorf("scenario %s/%s: fleet shutdown: %w", s.Name, f.Name, err)
	}

	lr.AccountingExact = unknown == 0 &&
		lr.Completed+lr.Canceled+lr.Shed == n &&
		snap.Placed == uint64(lr.Completed) &&
		snap.Spilled == uint64(lr.Shed)

	// Every replica serves the same seed on the dense tier, so every
	// completed stream — whichever replica or failover path produced it
	// — must equal a solo Generate.
	ref, err := llm.NewRandom(modelCfg, seed)
	if err != nil {
		return nil, err
	}
	rexec := llm.NewExecutor(ref, core.FullGPU)
	type key struct {
		h uint64
		n int
	}
	seen := map[key][]int{}
	for _, c := range completed {
		k := key{hashTokens(c.prompt), c.n}
		want, ok := seen[k]
		if !ok {
			if want, err = rexec.Generate(c.prompt, c.n); err != nil {
				return nil, err
			}
			seen[k] = want
		}
		if !equalTokens(c.tokens, want) {
			lr.BitIdentical = false
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			lr.LeakFree = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return lr, nil
}
