package scenario

import (
	"reflect"
	"testing"

	"github.com/lia-sim/lia/internal/trace"
)

// fleetCell is the fleet-failover test fixture: a 3-replica fleet
// serving the mixed code/chat blend under a replica kill + respawn.
func fleetCell() Cell {
	return Cell{
		Scenario: ScenarioConfig{
			Name:     "fleet-mixed",
			Arrival:  trace.ArrivalSpec{Process: trace.Bursty, Rate: 120, BurstMean: 6, BurstGap: 0.0005},
			Workload: Mixed,
			Requests: 60,
			MaxBatch: 4,
			// Generous queue: the fleet test measures failover accounting,
			// not shed behaviour.
			QueueDepth: 30,
			KVTokens:   256,
			Replicas:   3,
			SLO:        1.5,
		},
		Fault: FaultPlan{
			Name:             "replica-kill",
			ReplicaKillAt:    0.05,
			ReplicaRespawnAt: 0.2,
		},
	}
}

// TestFleetScenarioFailoverAccounting runs the fleet trial's virtual
// leg through a replica kill + respawn: the kill must orphan real work
// (failovers observed), the outcome accounting must close exactly, and
// the whole trial must be byte-deterministic from its seed.
func TestFleetScenarioFailoverAccounting(t *testing.T) {
	cell := fleetCell()
	if err := cell.Scenario.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cell.Fault.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := RunTrial(cell, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Completed + res.Shed + res.Canceled; got != res.Requests {
		t.Errorf("accounting identity broken: %d+%d+%d = %d, want %d",
			res.Completed, res.Shed, res.Canceled, got, res.Requests)
	}
	if res.Failovers == 0 {
		t.Error("replica kill at mid-trace produced no failovers")
	}
	if res.Completed == 0 {
		t.Error("nothing completed across the failover")
	}
	if res.TTFTP50 <= 0 || res.Makespan <= 0 {
		t.Errorf("fleet trial statistics implausible: ttft p50 %v, makespan %v", res.TTFTP50, res.Makespan)
	}

	again, err := RunTrial(cell, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Errorf("fleet trial not deterministic:\n first %+v\nsecond %+v", res, again)
	}

	// A different seed draws a different stream (the trial is seeded,
	// not constant).
	other, err := RunTrial(cell, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(res, other) {
		t.Error("trials with different seeds produced identical results")
	}
}

// TestFleetScenarioLiveLeg drives the live router fleet through the
// mid-traffic kill and respawn: the standing invariants — leak-free
// shutdown, exact client/router accounting, bit-identical tokens across
// whichever replica served — must all hold.
func TestFleetScenarioLiveLeg(t *testing.T) {
	res, err := RunTrial(fleetCell(), 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Live == nil {
		t.Fatal("live leg did not run")
	}
	if !res.Live.LeakFree {
		t.Error("fleet live leg leaked goroutines")
	}
	if !res.Live.AccountingExact {
		t.Errorf("fleet live accounting inexact: %d completed + %d canceled + %d shed of %d",
			res.Live.Completed, res.Live.Canceled, res.Live.Shed, res.Live.Requests)
	}
	if !res.Live.BitIdentical {
		t.Error("a completed stream diverged from the solo reference")
	}
	if res.Live.Completed == 0 {
		t.Error("no live request completed across the kill")
	}
}

// TestFleetScenarioValidation pins the fleet-specific declaration
// rules.
func TestFleetScenarioValidation(t *testing.T) {
	s := fleetCell().Scenario
	s.Mode = Mode{Quant: "int8"}
	if err := s.Validate(); err == nil {
		t.Error("fleet scenario with a non-zero Mode should fail validation")
	}
	f := FaultPlan{Name: "bad", ReplicaRespawnAt: 1}
	if err := f.Validate(); err == nil {
		t.Error("respawn without a kill should fail validation")
	}
	f = FaultPlan{Name: "bad2", ReplicaKillAt: 0.5, ReplicaRespawnAt: 0.25}
	if err := f.Validate(); err == nil {
		t.Error("respawn before the kill should fail validation")
	}
	if (FaultPlan{Name: "kill", ReplicaKillAt: 0.5}).healthy() {
		t.Error("a replica-kill plan is not healthy")
	}
}
