package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/lia-sim/lia/internal/gateway"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/units"
)

// TestExperimentBytesDeterministic is the reproducibility contract: the
// same declaration and seed must yield byte-identical artifacts across
// two full runs — live legs, bootstrap, JSON rendering and all. This is
// what lets BENCH_scenario.json be committed and diffed. (Run under
// -race in CI, this doubles as the harness's concurrency shakedown.)
func TestExperimentBytesDeterministic(t *testing.T) {
	run := func() []byte {
		e := smokeExperiment()
		res, err := Run(e)
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		line := 0
		la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := range la {
			if i >= len(lb) || !bytes.Equal(la[i], lb[i]) {
				line = i
				break
			}
		}
		t.Fatalf("two runs of the same experiment differ at line %d:\nrun1: %s\nrun2: %s",
			line+1, la[line], lb[line])
	}
}

// TestCellEventStreamDeterministic pins the layer below the artifact:
// one cell's virtual leg must produce a bit-identical scheduling event
// stream — same admissions, same preemption victims, same removals —
// across two replays, faults included.
func TestCellEventStreamDeterministic(t *testing.T) {
	e := smokeExperiment()
	cell := Cell{Scenario: e.Scenarios[1].withDefaults(), Fault: e.Faults[1]}
	replay := func() gateway.ReplayResult {
		stream, err := buildStream(cell, 42)
		if err != nil {
			t.Fatal(err)
		}
		costs, _, err := virtualCosts(cell)
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]gateway.ReplayRequest, len(stream))
		for i, r := range stream {
			reqs[i] = r.ReplayRequest
		}
		modelCfg := llm.TinyConfig()
		kv := int(float64(cell.Scenario.KVTokens) * cell.Fault.KVScale)
		var budget units.Bytes
		if kv > 0 {
			budget = modelCfg.KVBytes(1, kv)
		}
		res, err := gateway.Replay(gateway.ReplayConfig{
			MaxBatch:      cell.Scenario.MaxBatch,
			Model:         modelCfg,
			KVBudget:      budget,
			KVBlockTokens: 4,
			Costs:         costs,
			QueueDepth:    cell.Fault.QueueDepth,
		}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := replay(), replay()
	if len(a.Events) == 0 {
		t.Fatal("cell produced no scheduling events")
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("event streams diverge between identical replays")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("replay results diverge between identical replays")
	}
}

// TestTrialSeedsDiffer: different trial indices must derive different
// seeds (and therefore different streams) — N trials are N samples, not
// N copies.
func TestTrialSeedsDiffer(t *testing.T) {
	s1 := deriveSeed("1", "lab", "scenario", "fault", "0")
	s2 := deriveSeed("1", "lab", "scenario", "fault", "1")
	if s1 == s2 {
		t.Fatal("trial seeds collide")
	}
	if s1 < 0 || s2 < 0 {
		t.Fatal("derived seeds must be non-negative for printability")
	}
	cell := Cell{Scenario: smokeExperiment().Scenarios[0].withDefaults(), Fault: FaultPlan{Name: "baseline"}}
	a, err := buildStream(cell, s1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildStream(cell, s2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical streams")
	}
}
