package scenario

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/gateway"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/offload"
	"github.com/lia-sim/lia/internal/serve"
	"github.com/lia-sim/lia/internal/spec"
	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

// Virtual cost model (the injected analytic engine the replay leg
// prices rounds with): whole-microsecond-resolution closed forms, so
// every clock comparison is exact in float64 and a trial is a pure
// function of its seed. Offloaded scenarios additionally pay per-round
// layer-stream time priced through a fault-hooked offload.XferEngine —
// that is where the chaos plans' degraded links and expander faults
// surface as deterministic latency-tail inflation.
const (
	prefillTokenCost = 0.25e-3 // seconds per prompt token of the widest prompt, per admitted sequence
	decodeSeqCost    = 1e-3    // seconds per running sequence per decode round
	decodeCtxCost    = 0.125e-3 // seconds per token of mean context per round
)

// quantFactor is the nominal compute scaling of each weight tier — the
// serving-speedup ratios the quant bench publishes, frozen here so the
// virtual leg stays self-contained.
func quantFactor(m Mode) float64 {
	switch m.Quant {
	case "int8":
		return 0.65
	case "sparse":
		s := m.QuantSparsity
		if s == 0 {
			s = 0.5
		}
		return 1 - 0.6*s
	case "int4lut":
		return 0.55
	}
	return 1
}

// specAcceptance is the draft-acceptance rate the virtual leg assumes:
// low-entropy streams are draft-friendly, everything else middling.
func specAcceptance(w WorkloadKind) float64 {
	if w == LowEntropy {
		return 0.8
	}
	return 0.6
}

// streamReq is one request of a trial's stream: the virtual-leg shape
// and the live-leg prompt content.
type streamReq struct {
	gateway.ReplayRequest
	Prompt []int
}

// buildStream draws the cell's request stream: workload lengths and
// prompts, arrival times, and the fault plan's cancel/deadline storm.
// Pure function of (cell, seed).
func buildStream(cell Cell, seed int64) ([]streamReq, error) {
	s := cell.Scenario
	arr, err := trace.NewArrivalGen(s.Arrival, seed)
	if err != nil {
		return nil, err
	}
	reqs := make([]streamReq, s.Requests)
	vocab := llm.TinyConfig().VocabSize
	switch s.Workload {
	case HeavyTailed:
		g, err := trace.NewGenerator(trace.Code, 4, 24, seed+1)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + 2))
		for i := range reqs {
			r := g.Next()
			out := r.OutputLen
			if out > 64 { // keep the tail inside the tiny model's window
				out = 64
			}
			prompt := make([]int, r.InputLen)
			for j := range prompt {
				prompt[j] = rng.Intn(vocab)
			}
			reqs[i].PromptLen, reqs[i].OutputLen, reqs[i].Prompt = r.InputLen, out, prompt
		}
	case LowEntropy:
		g, err := trace.NewLowEntropyGenerator(trace.LowEntropySpec{
			Vocab: vocab, HotTokens: 4, RepeatProb: 0.8, MinLen: 6, MaxLen: 20, OutputTokens: 8,
		}, seed+1)
		if err != nil {
			return nil, err
		}
		for i := range reqs {
			r := g.Next()
			reqs[i].PromptLen, reqs[i].OutputLen, reqs[i].Prompt = r.InputLen, r.OutputLen, r.Prompt
		}
	case Mixed:
		g, err := trace.NewBlendGenerator(0.5, 4, 24, seed+1)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + 2))
		for i := range reqs {
			r := g.Next()
			out := r.OutputLen
			if out > 64 { // keep the conversation tail inside the tiny model's window
				out = 64
			}
			prompt := make([]int, r.InputLen)
			for j := range prompt {
				prompt[j] = rng.Intn(vocab)
			}
			reqs[i].PromptLen, reqs[i].OutputLen, reqs[i].Prompt = r.InputLen, out, prompt
		}
	case HotPrefix:
		g, err := trace.NewPrefixGenerator(trace.PrefixSpec{
			Prefixes: 4, PrefixTokens: 8, Skew: 1.2, Vocab: vocab,
			MinSuffix: 2, MaxSuffix: 8, OutputTokens: 6,
		}, seed+1)
		if err != nil {
			return nil, err
		}
		for i := range reqs {
			r := g.Next()
			reqs[i].PromptLen, reqs[i].OutputLen, reqs[i].Prompt = r.InputLen, r.OutputLen, r.Prompt
		}
	default:
		return nil, fmt.Errorf("scenario: unknown workload %q", s.Workload)
	}
	f := cell.Fault
	for i := range reqs {
		reqs[i].Arrival = arr.Next()
		if f.CancelEvery > 0 && (i+1)%f.CancelEvery == 0 {
			reqs[i].CancelAt = reqs[i].Arrival + f.CancelAfter
		}
		if f.DeadlineEvery > 0 && (i+1)%f.DeadlineEvery == 0 {
			reqs[i].Deadline = reqs[i].Arrival + f.Deadline
		}
	}
	return reqs, nil
}

// faultHook builds the plan's offload.LinkFault (nil when the plan
// leaves the link alone).
func faultHook(f FaultPlan) offload.LinkFault {
	scale := f.LinkBWScale
	if scale == 0 {
		scale = 1
	}
	if scale == 1 && f.LinkFailEvery == 0 {
		return nil
	}
	every := uint64(f.LinkFailEvery)
	return func(transfer uint64, _ offload.Tier, _ units.Bytes) (float64, error) {
		if every > 0 && transfer%every == 0 {
			return scale, errors.New("scenario: injected expander fault")
		}
		return scale, nil
	}
}

// virtualCosts builds the replay leg's injected step costs. For
// offloaded modes it also returns the pricing XferEngine so the caller
// can read fault counters afterwards.
func virtualCosts(cell Cell) (*serve.StepCosts, *offload.XferEngine, error) {
	s := cell.Scenario
	qf := quantFactor(s.Mode)
	speedup := 1.0
	if g := s.Mode.SpecGamma; g > 0 {
		speedup = spec.ExpectedTokensPerRound(g, specAcceptance(s.Workload))
	}
	var (
		xfer   *offload.XferEngine
		stream func() units.Seconds
	)
	if s.offloaded() {
		cfg := llm.TinyConfig()
		nCXL, placement := 0, cxl.DDROnlyPlacement()
		if s.Mode.Offload == "cxl" {
			nCXL, placement = 1, cxl.PolicyPlacement()
		}
		plan, err := offload.NewPlan(offload.Config{
			System:    offload.TinySystem(cfg, 1, 256, 1, nCXL),
			Model:     cfg,
			Batch:     1,
			Context:   256,
			Placement: placement,
		})
		if err != nil {
			return nil, nil, err
		}
		xfer = offload.NewXferEngine(plan.Link, plan.Pool)
		xfer.SetLinkFault(faultHook(cell.Fault))
		layers, bytes, tier := plan.StreamedLayers(), plan.LayerBytes(), plan.ParamTier
		// One forward pass streams every unpinned layer over the link;
		// the round's added time is the link occupancy delta (transfers
		// serialize, and a faulted transfer's wasted attempt + retry land
		// here as tail inflation).
		stream = func() units.Seconds {
			before := xfer.LinkFree()
			for i := 0; i < layers; i++ {
				xfer.HostToGPU(tier, bytes, before)
			}
			return xfer.LinkFree() - before
		}
	}
	costs := &serve.StepCosts{
		Prefill: func(b, maxIn int) (units.Seconds, error) {
			c := units.Seconds(float64(b*maxIn) * prefillTokenCost * qf)
			if stream != nil {
				c += stream()
			}
			return c, nil
		},
		Decode: func(b, meanCtx int) (units.Seconds, error) {
			c := units.Seconds((float64(b)*decodeSeqCost + float64(meanCtx)*decodeCtxCost) * qf / speedup)
			if stream != nil {
				c += stream()
			}
			return c, nil
		},
	}
	return costs, xfer, nil
}

// TrialResult is one seeded trial's observable outcome: virtual-leg
// statistics (deterministic from the seed) plus, when the trial ran the
// live leg, its invariant verdicts.
type TrialResult struct {
	Seed      int64   `json:"seed"`
	Requests  int     `json:"requests"`
	Completed int     `json:"completed"`
	Shed      int     `json:"shed"`
	Canceled  int     `json:"canceled"`
	Preempted int     `json:"preempted"`
	// Failovers counts requests re-placed off a killed replica (fleet
	// scenarios only).
	Failovers int `json:"failovers,omitempty"`
	Attained  int `json:"attained"` // completed within the scenario SLO

	TTFTP50    float64 `json:"ttft_p50_s"`    // over requests that produced a first token
	TTFTP99    float64 `json:"ttft_p99_s"`
	LatencyP50 float64 `json:"latency_p50_s"` // arrival → finish, completed requests
	LatencyP99 float64 `json:"latency_p99_s"`
	Makespan   float64 `json:"makespan_s"`

	LinkTransfers uint64 `json:"link_transfers,omitempty"`
	LinkFaults    uint64 `json:"link_faults,omitempty"`

	Live *LiveResult `json:"live,omitempty"`
}

// LiveResult is the live chaos leg's verdict: outcome tallies from real
// concurrent clients plus the standing invariants. The tallies are
// wall-clock races (whether a cancel timer beats the batcher differs
// run to run) so they stay out of the serialized artifact — only the
// invariant verdicts, which are deterministic whenever they hold, are
// emitted.
type LiveResult struct {
	Requests  int `json:"-"`
	Completed int `json:"-"`
	Canceled  int `json:"-"`
	Shed      int `json:"-"`

	// LeakFree: the gateway's goroutines all exited after Shutdown.
	LeakFree bool `json:"leak_free"`
	// AccountingExact: received == completed + canceled, and the client
	// tallies sum to the submissions, with zero rejects.
	AccountingExact bool `json:"accounting_exact"`
	// BitIdentical: every completed stream matched a solo Generate with
	// the same prompt (checked when the mode guarantees identity;
	// vacuously true otherwise).
	BitIdentical bool `json:"bit_identical"`
}

// Invariants reports whether every standing invariant held.
func (l *LiveResult) Invariants() bool {
	return l != nil && l.LeakFree && l.AccountingExact && l.BitIdentical
}

// RunTrial runs one seeded trial of a cell: always the virtual leg,
// plus the live chaos leg when live is set.
func RunTrial(cell Cell, seed int64, live bool) (TrialResult, error) {
	cell.Scenario = cell.Scenario.withDefaults()
	stream, err := buildStream(cell, seed)
	if err != nil {
		return TrialResult{}, err
	}
	if cell.Scenario.Replicas >= 2 {
		// Fleet scenarios route the stream (and the fault plan's replica
		// kill) through the router instead of a single gateway.
		return runFleetTrial(cell, stream, seed, live)
	}
	costs, xfer, err := virtualCosts(cell)
	if err != nil {
		return TrialResult{}, err
	}
	s, f := cell.Scenario, cell.Fault
	modelCfg := llm.TinyConfig()

	kvTokens := s.KVTokens
	if f.KVScale > 0 && f.KVScale < 1 && kvTokens > 0 {
		kvTokens = int(float64(kvTokens) * f.KVScale)
	}
	var budget units.Bytes
	if kvTokens > 0 {
		budget = modelCfg.KVBytes(1, kvTokens)
	}
	queue := s.QueueDepth
	if f.QueueDepth > 0 {
		queue = f.QueueDepth
	}

	reqs := make([]gateway.ReplayRequest, len(stream))
	for i, r := range stream {
		reqs[i] = r.ReplayRequest
	}
	res, err := gateway.Replay(gateway.ReplayConfig{
		MaxBatch:      s.MaxBatch,
		Model:         modelCfg,
		KVBudget:      budget,
		KVBlockTokens: 4,
		Costs:         costs,
		QueueDepth:    queue,
	}, reqs)
	if err != nil {
		return TrialResult{}, fmt.Errorf("scenario %s/%s: %w", s.Name, f.Name, err)
	}
	if got := res.Completed + res.Shed + res.Canceled; got != len(reqs) {
		return TrialResult{}, fmt.Errorf("scenario %s/%s: outcome accounting broken: %d+%d+%d != %d",
			s.Name, f.Name, res.Completed, res.Shed, res.Canceled, len(reqs))
	}

	out := TrialResult{
		Seed:      seed,
		Requests:  len(reqs),
		Completed: res.Completed,
		Shed:      res.Shed,
		Canceled:  res.Canceled,
		Preempted: res.Preemptions,
		Makespan:  float64(res.Makespan),
	}
	var ttfts, lats []float64
	for _, r := range res.Requests {
		if r.FirstToken > 0 {
			ttfts = append(ttfts, float64(r.FirstToken-r.Arrival))
		}
		if r.Outcome == gateway.ReplayCompleted {
			lat := float64(r.Finish - r.Arrival)
			lats = append(lats, lat)
			if lat <= float64(s.SLO) {
				out.Attained++
			}
		}
	}
	out.TTFTP50, out.TTFTP99 = Percentile(ttfts, 0.50), Percentile(ttfts, 0.99)
	out.LatencyP50, out.LatencyP99 = Percentile(lats, 0.50), Percentile(lats, 0.99)
	if xfer != nil {
		st := xfer.Stats()
		out.LinkTransfers, out.LinkFaults = st.Transfers, st.LinkFaults
	}

	if live {
		lr, err := runLiveTrial(cell, stream, seed)
		if err != nil {
			return TrialResult{}, err
		}
		out.Live = lr
	}
	return out, nil
}

// liveRequests caps the live leg's stream: the chaos leg checks
// invariants, not statistics, so a dozen scaled-down requests exercise
// every code path without making a 10-trial cell take minutes on the
// functional model.
const liveRequests = 12

// runLiveTrial drives the real gateway over the tiny model with real
// concurrent clients and the fault plan's cancel/deadline storm, then
// verdicts the standing invariants.
func runLiveTrial(cell Cell, stream []streamReq, seed int64) (*LiveResult, error) {
	s, f := cell.Scenario, cell.Fault
	modelCfg := llm.TinyConfig()
	baseline := runtime.NumGoroutine()

	m, err := llm.NewRandom(modelCfg, seed)
	if err != nil {
		return nil, err
	}
	var host *offload.Host
	if s.offloaded() {
		nCXL, placement := 0, cxl.DDROnlyPlacement()
		if s.Mode.Offload == "cxl" {
			nCXL, placement = 1, cxl.PolicyPlacement()
		}
		plan, err := offload.NewPlan(offload.Config{
			System:    offload.TinySystem(modelCfg, 1, 256, 1, nCXL),
			Model:     modelCfg,
			Batch:     1,
			Context:   256,
			Placement: placement,
		})
		if err != nil {
			return nil, err
		}
		if host, err = offload.NewHost(plan, core.FullGPU); err != nil {
			return nil, err
		}
		defer host.Close()
		if hook := faultHook(f); hook != nil {
			host.InjectLinkFault(hook)
		}
	}
	exec := llm.NewExecutor(m, core.FullGPU)
	if host != nil {
		exec.Mem = host
	}
	queue := s.QueueDepth
	if f.QueueDepth > 0 {
		queue = f.QueueDepth
	}
	kvTokens := s.KVTokens
	if f.KVScale > 0 && f.KVScale < 1 && kvTokens > 0 {
		kvTokens = int(float64(kvTokens) * f.KVScale)
	}
	var budget units.Bytes
	if kvTokens > 0 {
		budget = modelCfg.KVBytes(1, kvTokens)
	}
	g, err := gateway.New(exec, gateway.Config{
		MaxBatch:      s.MaxBatch,
		QueueDepth:    queue,
		KVBudget:      budget,
		KVBlockTokens: 4,
		Offload:       host,
		PrefixCache:   s.Mode.PrefixCache,
		PrefillChunk:  s.Mode.PrefillChunk,
		SpecGamma:     s.Mode.SpecGamma,
		Quant:         s.Mode.Quant,
		QuantSparsity: s.Mode.QuantSparsity,
	})
	if err != nil {
		return nil, err
	}

	n := len(stream)
	if n > liveRequests {
		n = liveRequests
	}
	type job struct {
		prompt           []int
		out              int
		cancel, deadline bool
	}
	jobs := make([]job, n)
	for i := 0; i < n; i++ {
		p := stream[i].Prompt
		if len(p) > 16 {
			p = p[:16]
		}
		prompt := make([]int, len(p))
		for j, t := range p {
			prompt[j] = t % modelCfg.VocabSize
		}
		out := stream[i].OutputLen
		if out > 6 {
			out = 6
		}
		jobs[i] = job{
			prompt:   prompt,
			out:      out,
			cancel:   f.CancelEvery > 0 && (i+1)%f.CancelEvery == 0,
			deadline: f.DeadlineEvery > 0 && (i+1)%f.DeadlineEvery == 0,
		}
	}

	lr := &LiveResult{Requests: n, BitIdentical: true}
	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		unknown   int
		completed []struct {
			prompt, tokens []int
			n              int
		}
	)
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := jobs[i]
			ctx := context.Background()
			// The tiny model serves a request in microseconds, so the storm's
			// timers live on that scale too; every fourth canceler is dead
			// before it even submits, guaranteeing the cancel path fires no
			// matter how fast the batcher drains.
			if j.deadline {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(200+(i%4)*300)*time.Microsecond)
				defer cancel()
			}
			if j.cancel {
				cctx, cancel := context.WithCancel(ctx)
				ctx = cctx
				if d := time.Duration(i%4) * 250 * time.Microsecond; d == 0 {
					cancel()
				} else {
					t := time.AfterFunc(d, cancel)
					defer t.Stop()
				}
				defer cancel()
			}
			res, err := g.Submit(ctx, j.prompt, j.out)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				lr.Completed++
				completed = append(completed, struct {
					prompt, tokens []int
					n              int
				}{j.prompt, res.Tokens, j.out})
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				lr.Canceled++
			case errors.Is(err, gateway.ErrOverloaded):
				lr.Shed++
			default:
				unknown++
			}
		}(i)
	}
	wg.Wait()
	shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = g.Shutdown(shCtx)
	shCancel()
	if err != nil {
		return nil, fmt.Errorf("scenario %s/%s: live shutdown: %w", s.Name, f.Name, err)
	}

	snap := g.Snapshot()
	lr.AccountingExact = unknown == 0 &&
		lr.Completed+lr.Canceled+lr.Shed == n &&
		snap.Received == uint64(lr.Completed+lr.Canceled) &&
		snap.Completed == uint64(lr.Completed) &&
		snap.Shed == uint64(lr.Shed) &&
		snap.Rejected == 0

	// Bit-identity: each completed stream must equal a solo Generate on
	// an identical fresh executor — the guarantee every serving mode on
	// the dense tier makes. Quantized tiers are deterministic but differ
	// from the BF16 reference, so they are exempt.
	if s.Mode.Quant == "" || s.Mode.Quant == "dense" {
		ref, err := llm.NewRandom(modelCfg, seed)
		if err != nil {
			return nil, err
		}
		rexec := llm.NewExecutor(ref, core.FullGPU)
		type key struct {
			h uint64
			n int
		}
		seen := map[key][]int{}
		for _, c := range completed {
			k := key{hashTokens(c.prompt), c.n}
			want, ok := seen[k]
			if !ok {
				if want, err = rexec.Generate(c.prompt, c.n); err != nil {
					return nil, err
				}
				seen[k] = want
			}
			if !equalTokens(c.tokens, want) {
				lr.BitIdentical = false
			}
		}
	}

	// Goroutine-leak check: after Shutdown the batcher, all clients, and
	// every per-request timer must be gone. Poll with GC nudges — timer
	// goroutines and the runtime need a moment to settle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			lr.LeakFree = true
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return lr, nil
}

// hashTokens is FNV-1a over a token slice (reference-cache key).
func hashTokens(ts []int) uint64 {
	h := uint64(14695981039346656037)
	for _, t := range ts {
		h ^= uint64(uint32(t))
		h *= 1099511628211
	}
	return h
}

func equalTokens(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
