package scenario

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
)

// Schema identifies the artifact layout; bump on breaking changes.
const Schema = "lia-scenario/v1"

// CellMetrics is a cell's aggregated statistics. Fields are summarized
// in declaration order from one sequential rng, so the artifact is a
// pure function of the experiment seed — adding a metric means adding
// it at the end or accepting new CI draws everywhere.
type CellMetrics struct {
	// Attainment is the fraction of each trial's requests that completed
	// within the scenario SLO (sheds and cancels count against it).
	Attainment MetricSummary `json:"slo_attainment"`
	// ShedRate / CancelRate / PreemptRate are per-request rates.
	ShedRate    MetricSummary `json:"shed_rate"`
	CancelRate  MetricSummary `json:"cancel_rate"`
	PreemptRate MetricSummary `json:"preemption_rate"`
	// RefetchRate is link faults per link transfer (offloaded cells; the
	// retry traffic the expander-loss plans inject).
	RefetchRate MetricSummary `json:"refetch_rate"`
	TTFTP99     MetricSummary `json:"ttft_p99_s"`
	LatencyP99  MetricSummary `json:"latency_p99_s"`
	Makespan    MetricSummary `json:"makespan_s"`
}

// InvariantSummary conjoins the live legs' standing invariants.
type InvariantSummary struct {
	// LiveTrials is how many of the cell's trials ran the live chaos leg.
	LiveTrials int `json:"live_trials"`
	// The verdicts are conjunctions over those legs (vacuously true when
	// none ran).
	LeakFree        bool `json:"leak_free"`
	AccountingExact bool `json:"accounting_exact"`
	BitIdentical    bool `json:"bit_identical"`
}

// OK reports whether every standing invariant held.
func (s InvariantSummary) OK() bool { return s.LeakFree && s.AccountingExact && s.BitIdentical }

// CellResult is one matrix cell's aggregate plus its raw trials.
type CellResult struct {
	Scenario   string           `json:"scenario"`
	Fault      string           `json:"fault"`
	Trials     int              `json:"trials"`
	Metrics    CellMetrics      `json:"metrics"`
	Invariants InvariantSummary `json:"invariants"`
	Verdict    string           `json:"verdict"`
	Raw        []TrialResult    `json:"trial_results"`
}

// ExperimentResult is the emitted artifact.
type ExperimentResult struct {
	Schema        string       `json:"schema"`
	Name          string       `json:"name"`
	Seed          int64        `json:"seed"`
	TrialsPerCell int          `json:"trials_per_cell"`
	Cells         []CellResult `json:"cells"`
}

// Verdict grades a cell's mean SLO attainment, gated on its invariants:
// chaos may degrade the SLO, but an invariant violation always fails.
func Verdict(attainment float64, invariantsOK bool) string {
	switch {
	case !invariantsOK:
		return "FAIL"
	case attainment >= 0.9:
		return "MET"
	case attainment >= 0.5:
		return "DEGRADED"
	default:
		return "MISSED"
	}
}

// deriveSeed hashes experiment/scenario/fault/trial coordinates into a
// trial seed (FNV-1a, masked positive so it is stable across
// architectures when printed).
func deriveSeed(parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Run executes the experiment matrix cell by cell, trial by trial —
// sequentially, in declaration order, so the artifact bytes are a pure
// function of the declaration and the seed.
func Run(e Experiment) (*ExperimentResult, error) {
	e = e.withDefaults()
	if err := e.Validate(); err != nil {
		return nil, err
	}
	liveN := e.LiveTrials
	if liveN == 0 || liveN > e.Trials {
		liveN = e.Trials
	}
	out := &ExperimentResult{Schema: Schema, Name: e.Name, Seed: e.Seed, TrialsPerCell: e.Trials}
	for _, cell := range e.Cells() {
		cr := CellResult{Scenario: cell.Scenario.Name, Fault: cell.Fault.Name, Trials: e.Trials}
		cr.Invariants = InvariantSummary{LeakFree: true, AccountingExact: true, BitIdentical: true}
		for i := 0; i < e.Trials; i++ {
			seed := deriveSeed(fmt.Sprint(e.Seed), e.Name, cell.Scenario.Name, cell.Fault.Name, fmt.Sprint(i))
			tr, err := RunTrial(cell, seed, i < liveN)
			if err != nil {
				return nil, err
			}
			if tr.Live != nil {
				cr.Invariants.LiveTrials++
				cr.Invariants.LeakFree = cr.Invariants.LeakFree && tr.Live.LeakFree
				cr.Invariants.AccountingExact = cr.Invariants.AccountingExact && tr.Live.AccountingExact
				cr.Invariants.BitIdentical = cr.Invariants.BitIdentical && tr.Live.BitIdentical
			}
			cr.Raw = append(cr.Raw, tr)
		}
		rng := rand.New(rand.NewSource(deriveSeed(fmt.Sprint(e.Seed), e.Name, cell.Scenario.Name, cell.Fault.Name, "bootstrap")))
		sample := func(f func(TrialResult) float64) []float64 {
			s := make([]float64, len(cr.Raw))
			for i, tr := range cr.Raw {
				s[i] = f(tr)
			}
			return s
		}
		rate := func(num func(TrialResult) int) func(TrialResult) float64 {
			return func(tr TrialResult) float64 { return float64(num(tr)) / float64(tr.Requests) }
		}
		cr.Metrics = CellMetrics{
			Attainment:  Summarize(sample(rate(func(t TrialResult) int { return t.Attained })), rng),
			ShedRate:    Summarize(sample(rate(func(t TrialResult) int { return t.Shed })), rng),
			CancelRate:  Summarize(sample(rate(func(t TrialResult) int { return t.Canceled })), rng),
			PreemptRate: Summarize(sample(rate(func(t TrialResult) int { return t.Preempted })), rng),
			RefetchRate: Summarize(sample(func(t TrialResult) float64 {
				if t.LinkTransfers == 0 {
					return 0
				}
				return float64(t.LinkFaults) / float64(t.LinkTransfers)
			}), rng),
			TTFTP99:    Summarize(sample(func(t TrialResult) float64 { return t.TTFTP99 }), rng),
			LatencyP99: Summarize(sample(func(t TrialResult) float64 { return t.LatencyP99 }), rng),
			Makespan:   Summarize(sample(func(t TrialResult) float64 { return t.Makespan }), rng),
		}
		cr.Verdict = Verdict(cr.Metrics.Attainment.Mean, cr.Invariants.OK())
		out.Cells = append(out.Cells, cr)
	}
	return out, nil
}

// JSON renders the artifact deterministically (struct field order,
// indented, trailing newline): identical declaration + seed ⇒ identical
// bytes.
func (r *ExperimentResult) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Markdown renders the SLO verdict table EXPERIMENTS.md embeds.
func (r *ExperimentResult) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "| scenario | fault | SLO attainment (mean [95%% CI]) | shed | cancel | preempt | refetch | TTFT p99 | latency p99 | invariants | verdict |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, c := range r.Cells {
		inv := "ok"
		if !c.Invariants.OK() {
			inv = "VIOLATED"
		} else if c.Invariants.LiveTrials == 0 {
			inv = "n/a"
		}
		fmt.Fprintf(&b, "| %s | %s | %.3f [%.3f, %.3f] | %.3f | %.3f | %.3f | %.3f | %.3fs | %.3fs | %s | %s |\n",
			c.Scenario, c.Fault,
			c.Metrics.Attainment.Mean, c.Metrics.Attainment.CI95Lo, c.Metrics.Attainment.CI95Hi,
			c.Metrics.ShedRate.Mean, c.Metrics.CancelRate.Mean, c.Metrics.PreemptRate.Mean,
			c.Metrics.RefetchRate.Mean, c.Metrics.TTFTP99.Mean, c.Metrics.LatencyP99.Mean,
			inv, c.Verdict)
	}
	return b.String()
}
