// Package scenario is the statistical experiment harness: a declarative
// matrix of workload scenarios × fault plans, each cell run as N seeded
// trials, aggregated into SLO verdicts with bootstrap confidence
// intervals.
//
// Every trial has two legs. The virtual leg replays the cell's request
// stream through gateway.Replay — the batcher's own scheduling loop on
// a virtual clock with injected analytic step costs — where chaos
// (cancel storms, deadline storms, queue saturation, degraded or
// faulting CXL links, KV-pool pressure) is exact and every statistic is
// byte-for-byte reproducible from the seed. The live leg drives the
// real gateway over the tiny functional model with real concurrent
// clients and real mid-flight cancellations, and contributes the
// standing invariants: no goroutine leaks, exact outcome accounting
// (received == completed + canceled; submitted == completed + canceled
// + shed), and bit-identical tokens where the serving mode guarantees
// them. Splitting the legs is what squares "statistics from live
// chaos" with "deterministic artifact": wall-clock latencies under
// concurrency are not reproducible, scheduling decisions and virtual
// clocks are.
package scenario

import (
	"fmt"

	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

// WorkloadKind selects the length/content distribution of a scenario's
// request stream.
type WorkloadKind string

// Workload kinds.
const (
	// HeavyTailed draws geometric output lengths (trace.Generator,
	// conversation family): the long-tail chat workload.
	HeavyTailed WorkloadKind = "heavy-tailed"
	// LowEntropy draws draft-friendly repetitive prompts
	// (trace.LowEntropyGenerator): the speculative-decoding workload.
	LowEntropy WorkloadKind = "low-entropy"
	// HotPrefix draws prompts sharing a power-law population of hot
	// prefixes (trace.PrefixGenerator): the prefix-cache workload.
	HotPrefix WorkloadKind = "hot-prefix"
	// Mixed interleaves the code and conversation trace families into
	// one stream (trace.BlendGenerator, 50/50): the mixed front-door
	// traffic the fleet scale study routes.
	Mixed WorkloadKind = "mixed-blend"
)

// Mode is the serving configuration under test — any combination the
// gateway itself accepts (gateway.Config.Validate rejects the invalid
// ones, e.g. speculation over an offload host).
type Mode struct {
	// SpecGamma enables speculative decoding with the given draft depth.
	SpecGamma int `json:"spec_gamma,omitempty"`
	// PrefillChunk enables chunked prefill (live leg; the virtual leg
	// prices monolithic prefill — see trial.go).
	PrefillChunk int `json:"prefill_chunk,omitempty"`
	// PrefixCache enables cross-request KV prefix reuse (live leg).
	PrefixCache bool `json:"prefix_cache,omitempty"`
	// Quant selects the weight tier: "", "dense", "sparse", "int4lut",
	// "int8".
	Quant string `json:"quant,omitempty"`
	// QuantSparsity is the sparse tier's zero-block fraction.
	QuantSparsity float64 `json:"quant_sparsity,omitempty"`
	// Offload selects the tiered-memory runtime: "", "none", "ddr",
	// "cxl". Non-none modes stream unpinned layers over the host link —
	// the surface the link-fault plans attack.
	Offload string `json:"offload,omitempty"`
}

// ScenarioConfig declares one workload scenario: an arrival process, a
// length distribution, a serving mode, and the queueing/KV envelope.
type ScenarioConfig struct {
	Name     string            `json:"name"`
	Arrival  trace.ArrivalSpec `json:"-"`
	Workload WorkloadKind      `json:"workload"`
	// Requests per trial (default 40).
	Requests int `json:"requests"`
	// MaxBatch and QueueDepth bound the batcher (defaults 4 and 8).
	MaxBatch   int `json:"max_batch"`
	QueueDepth int `json:"queue_depth"`
	// KVTokens bounds the paged KV pool (0 = unconstrained).
	KVTokens int `json:"kv_tokens,omitempty"`
	// Replicas, when ≥2, serves the scenario through the fleet router
	// instead of a single gateway: the virtual leg replays the stream
	// through router.FleetReplay over that many homogeneous replicas
	// (each with the scenario's MaxBatch/QueueDepth/KVTokens envelope),
	// and the live leg drives a real router.Router fleet. Fleet
	// scenarios price the plain dense mode — Mode must be zero.
	Replicas int `json:"replicas,omitempty"`
	// SLO is the per-request completion target on the virtual clock
	// (arrival → finish; default 1.5s). Shed and canceled requests count
	// against attainment.
	SLO  units.Seconds `json:"slo_s"`
	Mode Mode          `json:"mode"`
}

func (s ScenarioConfig) withDefaults() ScenarioConfig {
	if s.Requests == 0 {
		s.Requests = 40
	}
	if s.MaxBatch == 0 {
		s.MaxBatch = 4
	}
	if s.QueueDepth == 0 {
		s.QueueDepth = 8
	}
	if s.SLO == 0 {
		s.SLO = 1.5
	}
	return s
}

// Validate reports scenario errors (after defaulting).
func (s ScenarioConfig) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: scenario needs a name")
	}
	if err := s.Arrival.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	switch s.Workload {
	case HeavyTailed, LowEntropy, HotPrefix, Mixed:
	default:
		return fmt.Errorf("scenario %q: unknown workload %q", s.Name, s.Workload)
	}
	if s.Requests < 1 {
		return fmt.Errorf("scenario %q: Requests must be ≥1, got %d", s.Name, s.Requests)
	}
	if s.MaxBatch < 1 || s.QueueDepth < 1 {
		return fmt.Errorf("scenario %q: MaxBatch/QueueDepth must be ≥1, got %d/%d", s.Name, s.MaxBatch, s.QueueDepth)
	}
	if s.KVTokens < 0 {
		return fmt.Errorf("scenario %q: KVTokens must be ≥0, got %d", s.Name, s.KVTokens)
	}
	if s.SLO <= 0 {
		return fmt.Errorf("scenario %q: SLO must be positive, got %v", s.Name, s.SLO)
	}
	switch s.Mode.Offload {
	case "", "none", "ddr", "cxl":
	default:
		return fmt.Errorf("scenario %q: unknown offload mode %q", s.Name, s.Mode.Offload)
	}
	if s.Mode.SpecGamma > 0 && s.offloaded() {
		return fmt.Errorf("scenario %q: speculative decoding requires the non-offloaded path", s.Name)
	}
	if s.Replicas < 0 {
		return fmt.Errorf("scenario %q: Replicas must be ≥0, got %d", s.Name, s.Replicas)
	}
	if s.Replicas >= 2 && s.Mode != (Mode{}) {
		return fmt.Errorf("scenario %q: fleet scenarios price the plain dense mode; clear Mode", s.Name)
	}
	return nil
}

func (s ScenarioConfig) offloaded() bool {
	return s.Mode.Offload != "" && s.Mode.Offload != "none"
}

// FaultPlan declares the chaos injected into every trial of a cell. The
// zero value (beyond Name) is the healthy baseline: all fields off.
type FaultPlan struct {
	Name string `json:"name"`
	// LinkBWScale degrades the host↔GPU link to this fraction of its
	// bandwidth (0 or 1 = healthy). Only offloaded scenarios feel it.
	LinkBWScale float64 `json:"link_bw_scale,omitempty"`
	// LinkFailEvery makes every k-th link transfer fault transiently
	// (one wasted attempt + retry; 0 = never) — the CXL expander-loss
	// storm.
	LinkFailEvery int `json:"link_fail_every,omitempty"`
	// KVScale multiplies the scenario's KV-pool budget (0 or 1 =
	// unchanged; 0.5 = a tier-pressure spike that halves the pool and
	// forces preemption storms). Requires the scenario to bound KVTokens.
	KVScale float64 `json:"kv_scale,omitempty"`
	// QueueDepth, when positive, overrides the scenario's queue depth —
	// the submit-channel saturation attack.
	QueueDepth int `json:"queue_depth,omitempty"`
	// CancelEvery makes every k-th request's client cancel CancelAfter
	// seconds after its arrival (0 = never) — the mid-flight cancel
	// storm.
	CancelEvery int           `json:"cancel_every,omitempty"`
	CancelAfter units.Seconds `json:"cancel_after_s,omitempty"`
	// DeadlineEvery gives every k-th request a completion deadline
	// Deadline seconds after its arrival (0 = never).
	DeadlineEvery int           `json:"deadline_every,omitempty"`
	Deadline      units.Seconds `json:"deadline_s,omitempty"`
	// ReplicaKillAt, when positive, kills one replica of a fleet
	// scenario at that virtual time: its waiting and running work fails
	// over through the router's placement, and the outcome accounting
	// must still close exactly. ReplicaRespawnAt, when positive,
	// respawns it later. Ignored by single-gateway scenarios (Replicas
	// < 2) — there is no router to route the failover through.
	ReplicaKillAt    units.Seconds `json:"replica_kill_at_s,omitempty"`
	ReplicaRespawnAt units.Seconds `json:"replica_respawn_at_s,omitempty"`
}

// Validate reports fault-plan errors.
func (f FaultPlan) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("scenario: fault plan needs a name")
	}
	if f.LinkBWScale < 0 || f.LinkBWScale > 1 {
		return fmt.Errorf("fault plan %q: LinkBWScale %g outside [0, 1]", f.Name, f.LinkBWScale)
	}
	if f.LinkFailEvery < 0 || f.QueueDepth < 0 || f.CancelEvery < 0 || f.DeadlineEvery < 0 {
		return fmt.Errorf("fault plan %q: counts must be ≥0", f.Name)
	}
	if f.KVScale < 0 || f.KVScale > 1 {
		return fmt.Errorf("fault plan %q: KVScale %g outside [0, 1]", f.Name, f.KVScale)
	}
	if f.CancelEvery > 0 && f.CancelAfter <= 0 {
		return fmt.Errorf("fault plan %q: CancelEvery needs a positive CancelAfter", f.Name)
	}
	if f.DeadlineEvery > 0 && f.Deadline <= 0 {
		return fmt.Errorf("fault plan %q: DeadlineEvery needs a positive Deadline", f.Name)
	}
	if f.ReplicaKillAt < 0 || f.ReplicaRespawnAt < 0 {
		return fmt.Errorf("fault plan %q: replica fault times must be ≥0", f.Name)
	}
	if f.ReplicaRespawnAt > 0 && f.ReplicaRespawnAt <= f.ReplicaKillAt {
		return fmt.Errorf("fault plan %q: ReplicaRespawnAt must follow ReplicaKillAt", f.Name)
	}
	if f.ReplicaRespawnAt > 0 && f.ReplicaKillAt == 0 {
		return fmt.Errorf("fault plan %q: ReplicaRespawnAt needs a ReplicaKillAt", f.Name)
	}
	return nil
}

// healthy reports whether the plan injects nothing.
func (f FaultPlan) healthy() bool {
	return (f.LinkBWScale == 0 || f.LinkBWScale == 1) && f.LinkFailEvery == 0 &&
		(f.KVScale == 0 || f.KVScale == 1) && f.QueueDepth == 0 &&
		f.CancelEvery == 0 && f.DeadlineEvery == 0 && f.ReplicaKillAt == 0
}

// Experiment is the declarative top level: scenarios × faults × trials.
type Experiment struct {
	Name      string           `json:"name"`
	Scenarios []ScenarioConfig `json:"-"`
	Faults    []FaultPlan      `json:"-"`
	// Trials per cell (default 10).
	Trials int `json:"trials"`
	// Seed roots every trial's derived seed.
	Seed int64 `json:"seed"`
	// LiveTrials caps how many of each cell's trials also run the live
	// chaos leg (0 = all of them). The virtual leg always runs.
	LiveTrials int `json:"live_trials,omitempty"`
}

func (e Experiment) withDefaults() Experiment {
	if e.Name == "" {
		e.Name = "scenario-lab"
	}
	if e.Trials == 0 {
		e.Trials = 10
	}
	for i := range e.Scenarios {
		e.Scenarios[i] = e.Scenarios[i].withDefaults()
	}
	return e
}

// Validate reports experiment errors (after defaulting).
func (e Experiment) Validate() error {
	if len(e.Scenarios) == 0 || len(e.Faults) == 0 {
		return fmt.Errorf("scenario: experiment needs ≥1 scenario and ≥1 fault plan")
	}
	if e.Trials < 1 {
		return fmt.Errorf("scenario: Trials must be ≥1, got %d", e.Trials)
	}
	if e.LiveTrials < 0 {
		return fmt.Errorf("scenario: LiveTrials must be ≥0, got %d", e.LiveTrials)
	}
	seen := map[string]bool{}
	for _, s := range e.Scenarios {
		if err := s.Validate(); err != nil {
			return err
		}
		if seen[s.Name] {
			return fmt.Errorf("scenario: duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
	seen = map[string]bool{}
	for _, f := range e.Faults {
		if err := f.Validate(); err != nil {
			return err
		}
		if seen[f.Name] {
			return fmt.Errorf("scenario: duplicate fault plan name %q", f.Name)
		}
		seen[f.Name] = true
	}
	return nil
}

// Cell is one (scenario, fault) pair of the matrix.
type Cell struct {
	Scenario ScenarioConfig
	Fault    FaultPlan
}

// Cells expands the matrix in declaration order (scenario-major), so
// result ordering — and therefore the emitted artifact — is a pure
// function of the experiment declaration.
func (e Experiment) Cells() []Cell {
	out := make([]Cell, 0, len(e.Scenarios)*len(e.Faults))
	for _, s := range e.Scenarios {
		for _, f := range e.Faults {
			out = append(out, Cell{Scenario: s, Fault: f})
		}
	}
	return out
}

// Default returns the lab's standing experiment: three scenarios
// spanning the arrival processes, length distributions, and serving
// modes, crossed with a healthy baseline and a combined chaos storm —
// the matrix EXPERIMENTS.md publishes.
func Default() Experiment {
	return Experiment{
		Name: "scenario-lab",
		Scenarios: []ScenarioConfig{
			{
				Name:     "bursty-chat",
				Arrival:  trace.ArrivalSpec{Process: trace.Bursty, Rate: 120, BurstMean: 6, BurstGap: 0.0005},
				Workload: HeavyTailed,
				KVTokens: 192,
				SLO:      1.2,
			},
			{
				Name:     "diurnal-chunked-spec",
				Arrival:  trace.ArrivalSpec{Process: trace.Diurnal, Rate: 100, Period: 0.5, Depth: 0.8},
				Workload: LowEntropy,
				KVTokens: 256,
				SLO:      1.0,
				Mode:     Mode{SpecGamma: 2, PrefillChunk: 8},
			},
			{
				Name:     "hot-prefix-cxl",
				Arrival:  trace.ArrivalSpec{Process: trace.Poisson, Rate: 80},
				Workload: HotPrefix,
				KVTokens: 256,
				SLO:      1.5,
				Mode:     Mode{PrefixCache: true, Offload: "cxl"},
			},
		},
		Faults: []FaultPlan{
			{Name: "baseline"},
			{
				Name:          "chaos-storm",
				LinkBWScale:   0.25,
				LinkFailEvery: 5,
				KVScale:       0.5,
				QueueDepth:    5,
				CancelEvery:   3,
				CancelAfter:   0.02,
				DeadlineEvery: 4,
				Deadline:      0.25,
			},
		},
		Trials: 10,
		Seed:   1,
	}
}
