package router

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/lia-sim/lia/internal/gateway"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/serve"
	"github.com/lia-sim/lia/internal/units"
)

// refCosts builds the serve.StepCosts that price rounds exactly as a
// speed-1 replay machine (SPRA100, no TP) does — the differential test
// hands these to gateway.Replay so both sides walk the same clock.
func refCosts() *serve.StepCosts {
	return &serve.StepCosts{
		Prefill: func(b, maxIn int) (units.Seconds, error) {
			return units.Seconds(float64(b*maxIn) * replayPrefillTokenCost), nil
		},
		Decode: func(b, meanCtx int) (units.Seconds, error) {
			return units.Seconds(float64(b)*replayDecodeSeqCost + float64(meanCtx)*replayDecodeCtxCost), nil
		},
	}
}

// burstTrace builds a deterministic arrival stream: n requests with
// jittered inter-arrival gaps, varied lengths, and (when withCancels)
// scattered client abandonments and deadlines.
func burstTrace(n int, seed int64, withCancels bool) []gateway.ReplayRequest {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]gateway.ReplayRequest, 0, n)
	var clock units.Seconds
	for i := 0; i < n; i++ {
		clock += units.Seconds(rng.Float64() * 0.004)
		r := gateway.ReplayRequest{
			PromptLen: 4 + rng.Intn(24),
			OutputLen: 1 + rng.Intn(16),
			Arrival:   clock,
		}
		if withCancels {
			if i%9 == 3 {
				r.CancelAt = clock + units.Seconds(0.003)
			}
			if i%13 == 7 {
				r.Deadline = clock + units.Seconds(0.02)
			}
		}
		reqs = append(reqs, r)
	}
	return reqs
}

// TestFleetReplaySingleReplicaMatchesBareGateway is the router's
// correctness differential: a 1-replica fleet must make exactly the
// scheduling decisions of the bare gateway replay — bit-identical event
// streams (same admissions, same preemption victims, same completion
// order), same counts, same per-request outcomes and virtual times. The
// fleet machinery (placement, global event ordering, per-machine
// clocks) must be observationally free when there is nothing to place
// across.
func TestFleetReplaySingleReplicaMatchesBareGateway(t *testing.T) {
	cfg := llm.TinyConfig()
	cases := []struct {
		name        string
		kvTokens    int
		maxBatch    int
		queueDepth  int
		withCancels bool
	}{
		// Roomy pool, bounded queue: exercises shed-at-ingest parity.
		{"bounded-queue", 1024, 4, 6, false},
		// Unbounded queue with abandonments: exercises the reap pass
		// (waiting cancels, mid-flight removes → EventRemove parity).
		{"cancels", 1024, 4, 0, true},
		// Tight pool: exercises preemption parity (EventPreempt victims
		// and re-admission order must match exactly).
		{"kv-pressure", 96, 6, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reqs := burstTrace(80, 11, tc.withCancels)
			bare, err := gateway.Replay(gateway.ReplayConfig{
				MaxBatch:      tc.maxBatch,
				Model:         cfg,
				KVBudget:      cfg.KVBytes(1, tc.kvTokens),
				KVBlockTokens: 16,
				Costs:         refCosts(),
				QueueDepth:    tc.queueDepth,
			}, reqs)
			if err != nil {
				t.Fatalf("gateway.Replay: %v", err)
			}
			fleet, err := FleetReplay(FleetConfig{
				Model: cfg,
				Replicas: []ReplayReplica{{
					Name:          "solo",
					System:        hw.SPRA100,
					MaxBatch:      tc.maxBatch,
					QueueDepth:    tc.queueDepth,
					KVTokens:      tc.kvTokens,
					KVBlockTokens: 16,
				}},
			}, reqs)
			if err != nil {
				t.Fatalf("FleetReplay: %v", err)
			}

			if !reflect.DeepEqual(bare.Events, fleet.Events) {
				t.Fatalf("event streams diverge: bare %d events, fleet %d events",
					len(bare.Events), len(fleet.Events))
			}
			if bare.Completed != fleet.Completed || bare.Shed != fleet.Shed ||
				bare.Canceled != fleet.Canceled || bare.Preemptions != fleet.Preemptions {
				t.Errorf("counts diverge: bare C/S/X/P = %d/%d/%d/%d, fleet %d/%d/%d/%d",
					bare.Completed, bare.Shed, bare.Canceled, bare.Preemptions,
					fleet.Completed, fleet.Shed, fleet.Canceled, fleet.Preemptions)
			}
			if bare.Makespan != fleet.Makespan {
				t.Errorf("makespan diverges: bare %v, fleet %v", bare.Makespan, fleet.Makespan)
			}
			for i := range reqs {
				b, f := bare.Requests[i], fleet.Requests[i]
				// Admitted is excluded: the bare replay re-stamps it on
				// re-admission after preemption, the fleet keeps first
				// admission. Shed Finish times are excluded too: the bare
				// replay stamps a shed when its single clock reaches the
				// ingest pass, the fleet at the arrival instant — matching
				// the live gateway's synchronous 429. The shed decisions
				// themselves must agree (checked via Outcome and the
				// aggregate counts above).
				if b.Outcome != f.Outcome || b.Emitted != f.Emitted || b.FirstToken != f.FirstToken {
					t.Errorf("request %d diverges: bare %+v, fleet %+v", i, b, f)
				}
				if b.Outcome != gateway.ReplayShed && b.Finish != f.Finish {
					t.Errorf("request %d finish diverges: bare %v, fleet %v", i, b.Finish, f.Finish)
				}
			}
			if fleet.Failovers != 0 {
				t.Errorf("1-replica fleet reported %d failovers", fleet.Failovers)
			}
		})
	}
}

// TestFleetReplayScalingThroughput pins the scale-study headline: a
// homogeneous 4-replica fleet sustains at least 3x the throughput of a
// single replica on a saturating burst, under both placement policies.
func TestFleetReplayScalingThroughput(t *testing.T) {
	cfg := llm.TinyConfig()
	const nReq = 64
	reqs := make([]gateway.ReplayRequest, nReq)
	for i := range reqs {
		reqs[i] = gateway.ReplayRequest{PromptLen: 16, OutputLen: 16}
	}
	run := func(policy string, replicas int) FleetResult {
		specs := make([]ReplayReplica, replicas)
		for i := range specs {
			specs[i] = ReplayReplica{
				System:     hw.SPRA100,
				MaxBatch:   4,
				QueueDepth: nReq,
				KVTokens:   2048,
			}
		}
		res, err := FleetReplay(FleetConfig{Policy: policy, Seed: 3, Model: cfg, Replicas: specs}, reqs)
		if err != nil {
			t.Fatalf("FleetReplay(%s, %d replicas): %v", policy, replicas, err)
		}
		if res.Completed != nReq {
			t.Fatalf("%s/%d completed %d of %d (shed %d, canceled %d)",
				policy, replicas, res.Completed, nReq, res.Shed, res.Canceled)
		}
		return res
	}
	for _, policy := range []string{PolicyP2C, PolicyRoundRobin} {
		one := run(policy, 1)
		four := run(policy, 4)
		speedup := four.ThroughputRPS / one.ThroughputRPS
		t.Logf("%s: 1 replica %.1f rps, 4 replicas %.1f rps (%.2fx)",
			policy, one.ThroughputRPS, four.ThroughputRPS, speedup)
		if speedup < 3 {
			t.Errorf("%s: 4-replica speedup %.2fx, want ≥3x", policy, speedup)
		}
	}
}

// TestFleetReplayFailoverAccounting kills a replica mid-trace and
// respawns it later: the accounting identity Completed+Shed+Canceled ==
// len(requests) must hold exactly across the failover, every request
// must carry a resolved outcome, orphans must actually fail over, and
// the whole replay must be byte-deterministic.
func TestFleetReplayFailoverAccounting(t *testing.T) {
	cfg := llm.TinyConfig()
	reqs := burstTrace(48, 23, true)
	fc := FleetConfig{
		Policy: PolicyP2C,
		Seed:   9,
		Model:  cfg,
		Replicas: []ReplayReplica{
			{Name: "a", System: hw.SPRA100, MaxBatch: 4, QueueDepth: 16, KVTokens: 512,
				DownAt: reqs[20].Arrival, UpAt: reqs[40].Arrival},
			{Name: "b", System: hw.SPRA100, MaxBatch: 4, QueueDepth: 16, KVTokens: 512},
		},
	}
	res, err := FleetReplay(fc, reqs)
	if err != nil {
		t.Fatalf("FleetReplay: %v", err)
	}
	if got := res.Completed + res.Shed + res.Canceled; got != len(reqs) {
		t.Errorf("accounting identity broken: %d completed + %d shed + %d canceled = %d, want %d",
			res.Completed, res.Shed, res.Canceled, got, len(reqs))
	}
	for i, r := range res.Requests {
		if r.Outcome == "" {
			t.Errorf("request %d has no resolved outcome", i)
		}
	}
	if res.Failovers == 0 {
		t.Error("kill at mid-trace produced no failovers")
	}
	if res.Completed == 0 {
		t.Error("nothing completed across the failover")
	}
	// Every request that was not shed reached a machine at least once
	// (shed can happen at arrival without a placement when nothing is
	// placeable); failovers re-place, so the sum may exceed it.
	var placed int
	for _, s := range res.PerReplica {
		placed += s.Placed
	}
	if placed < len(reqs)-res.Shed {
		t.Errorf("per-replica placements sum to %d, want ≥%d", placed, len(reqs)-res.Shed)
	}
	if res.PerReplica["a"].Rounds == 0 || res.PerReplica["b"].Rounds == 0 {
		t.Errorf("both replicas should have run rounds: %+v", res.PerReplica)
	}

	again, err := FleetReplay(fc, reqs)
	if err != nil {
		t.Fatalf("second FleetReplay: %v", err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("fleet replay with faults is not deterministic across runs")
	}
}

// TestFleetReplayHeterogeneousFleet routes one stream across an A100
// node, an H100 node, a CPU-only AMX node, and a 4-way tensor-parallel
// DGX node: the device-speed model must steer completions toward the
// fast replicas (P2C drains the fast queues and refills them) while the
// accounting identity still closes.
func TestFleetReplayHeterogeneousFleet(t *testing.T) {
	cfg := llm.TinyConfig()
	reqs := burstTrace(96, 31, false)
	cpuOnly := hw.System{Name: "SPR-CPU", CPU: hw.SPR}
	res, err := FleetReplay(FleetConfig{
		Policy: PolicyP2C,
		Seed:   5,
		Model:  cfg,
		Replicas: []ReplayReplica{
			{Name: "a100", System: hw.SPRA100, MaxBatch: 4, QueueDepth: 12, KVTokens: 512},
			{Name: "h100", System: hw.SPRH100, MaxBatch: 4, QueueDepth: 12, KVTokens: 512},
			{Name: "cpu", System: cpuOnly, MaxBatch: 4, QueueDepth: 12, KVTokens: 512},
			{Name: "tp4", System: hw.DGXA100, TPWays: 4, MaxBatch: 4, QueueDepth: 12, KVTokens: 512},
		},
	}, reqs)
	if err != nil {
		t.Fatalf("FleetReplay: %v", err)
	}
	if got := res.Completed + res.Shed + res.Canceled; got != len(reqs) {
		t.Errorf("accounting identity broken: %d, want %d", got, len(reqs))
	}
	for name, s := range res.PerReplica {
		if s.Placed == 0 {
			t.Errorf("replica %s was never placed on", name)
		}
	}
	if h, c := res.PerReplica["h100"].Completed, res.PerReplica["cpu"].Completed; h < c {
		t.Errorf("H100 completed %d < CPU-only %d; speed model should favour the fast node", h, c)
	}
	if len(res.TTFTs) == 0 {
		t.Fatal("no TTFT samples collected")
	}
	p50, p99 := Percentile(res.TTFTs, 50), Percentile(res.TTFTs, 99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("TTFT percentiles implausible: p50 %v, p99 %v", p50, p99)
	}
}

// TestPercentile pins nearest-rank behaviour.
func TestPercentile(t *testing.T) {
	s := []units.Seconds{4, 1, 3, 2}
	if got := Percentile(s, 50); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := Percentile(s, 100); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
	if got := Percentile(nil, 99); got != 0 {
		t.Errorf("empty p99 = %v, want 0", got)
	}
}
