// Package router is the fleet front door: N gateway+executor replicas —
// possibly heterogeneous in device, offload tiering, quant tier, and
// tensor-parallel width — behind one Submit. Placement is
// power-of-two-choices scored by least KV pressure (live kvpage
// headroom plus queue depth, reported over a per-replica health
// channel), with prefix-affinity hinting so hot-prefix traffic lands
// where the prefix cache already holds the blocks. A replica that sheds
// or drains is retried on the next-best replica before the router
// spills the request back to the caller. Replica lifecycle — spawn,
// drain, kill, respawn — is first-class, and the deterministic
// FleetReplay prices the same placement policies over virtual clocks
// for the scale study.
package router

import (
	"hash/fnv"
)

// Load is one replica's placement-relevant state: the router's health
// collector assembles these from gateway.Health reports, and the replay
// assembles them from virtual-machine state. Placement is a pure
// function of a []Load slice, so live and replayed fleets share the
// exact same policy code.
type Load struct {
	// Name identifies the replica.
	Name string
	// QueueLen and QueueCap are the admission queue's occupancy and bound.
	QueueLen, QueueCap int
	// Running is the in-flight batch size.
	Running int
	// KVFreeBlocks and KVTotalBlocks are the KV pool's headroom and
	// capacity (0/0 when the replica serves without a KV budget).
	KVFreeBlocks, KVTotalBlocks int
	// Placeable reports whether the replica accepts new work (up, not
	// draining, not down).
	Placeable bool
}

// Pressure scores how loaded a replica is, in [0, 2]: the queue's
// occupancy fraction plus the KV pool's used fraction. Lower is better.
// A replica with no KV budget scores only its queue; one with no queue
// bound scores only its pool.
func (l Load) Pressure() float64 {
	var p float64
	if l.QueueCap > 0 {
		p += float64(l.QueueLen) / float64(l.QueueCap)
	}
	if l.KVTotalBlocks > 0 {
		p += float64(l.KVTotalBlocks-l.KVFreeBlocks) / float64(l.KVTotalBlocks)
	}
	return p
}

// better reports whether loads[i] is the stricter placement choice than
// loads[j]: lower pressure, then fewer running sequences, then the
// lower index (a total order, so placement is deterministic given the
// sampled pair).
func better(loads []Load, i, j int) bool {
	pi, pj := loads[i].Pressure(), loads[j].Pressure()
	if pi != pj {
		return pi < pj
	}
	if loads[i].Running != loads[j].Running {
		return loads[i].Running < loads[j].Running
	}
	return i < j
}

// PickP2C places by power-of-two-choices: sample two distinct placeable
// replicas with the caller's rand source (intn(n) must return uniform
// values in [0, n)) and keep the less pressured. One placeable replica
// short-circuits; none returns -1. P2C keeps the maximum load within
// O(log log n) of the mean while sampling only two health reports per
// decision — the classic balls-into-bins result the placement property
// test pins against round-robin.
func PickP2C(loads []Load, intn func(int) int) int {
	idx := placeable(loads)
	switch len(idx) {
	case 0:
		return -1
	case 1:
		return idx[0]
	}
	a := idx[intn(len(idx))]
	b := idx[intn(len(idx))]
	for b == a {
		b = idx[intn(len(idx))]
	}
	if better(loads, a, b) {
		return a
	}
	return b
}

// PickRoundRobin places by rotation: the counter-th placeable replica,
// ignoring load entirely. The baseline policy of the scale study's A/B
// axis.
func PickRoundRobin(loads []Load, counter uint64) int {
	idx := placeable(loads)
	if len(idx) == 0 {
		return -1
	}
	return idx[counter%uint64(len(idx))]
}

// PickLeastPressure places on the globally least-pressured replica — a
// full scan, the upper bound P2C approximates. Used for spill-over
// ordering after a placement target sheds.
func PickLeastPressure(loads []Load) int {
	best := -1
	for i := range loads {
		if !loads[i].Placeable {
			continue
		}
		if best < 0 || better(loads, i, best) {
			best = i
		}
	}
	return best
}

// placeable collects the indexes a placement may choose.
func placeable(loads []Load) []int {
	idx := make([]int, 0, len(loads))
	for i := range loads {
		if loads[i].Placeable {
			idx = append(idx, i)
		}
	}
	return idx
}

// PrefixKey hashes a prompt's leading block — the granularity kvprefix
// caches at — into an affinity key: prompts sharing their first
// blockTokens tokens map to the same key, and the router remembers
// which replica last served each key so the shared prefix is a cache
// hit there. Prompts shorter than one block get key 0 (no affinity).
func PrefixKey(prompt []int, blockTokens int) uint64 {
	if blockTokens <= 0 || len(prompt) < blockTokens {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, tok := range prompt[:blockTokens] {
		v := uint64(tok)
		for b := 0; b < 8; b++ {
			buf[b] = byte(v >> (8 * b))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
