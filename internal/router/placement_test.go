package router

import (
	"math/rand"
	"testing"
)

// TestP2CLevelsSkewedFleet pins the balancing property the placement
// policy exists for: starting from a badly skewed fleet, power-of-two-
// choices converges the queues while round-robin — which ignores load —
// preserves the initial imbalance forever. The classic two-choices
// result bounds P2C's spread at O(log log n); round-robin's stays at
// the initial skew.
func TestP2CLevelsSkewedFleet(t *testing.T) {
	// Leveling the skew needs enough placements for the water-fill to
	// pass the deepest queue: lifting every replica to 700 costs
	// Σ(700−100i) = 2800, so 4000 placements push the common level to
	// ~800 with slack to spare.
	const (
		n          = 8
		queueCap   = 4096
		placements = 4000
	)
	mkLoads := func() []Load {
		loads := make([]Load, n)
		for i := range loads {
			loads[i] = Load{
				Name:      "r",
				QueueLen:  i * 100, // skew: replica 7 starts 700 deep
				QueueCap:  queueCap,
				Placeable: true,
			}
		}
		return loads
	}
	spread := func(loads []Load) int {
		min, max := loads[0].QueueLen, loads[0].QueueLen
		for _, l := range loads[1:] {
			if l.QueueLen < min {
				min = l.QueueLen
			}
			if l.QueueLen > max {
				max = l.QueueLen
			}
		}
		return max - min
	}

	p2c := mkLoads()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < placements; i++ {
		pick := PickP2C(p2c, rng.Intn)
		if pick < 0 {
			t.Fatalf("p2c placement %d found no replica", i)
		}
		p2c[pick].QueueLen++
	}

	rr := mkLoads()
	for i := 0; i < placements; i++ {
		pick := PickRoundRobin(rr, uint64(i))
		if pick < 0 {
			t.Fatalf("rr placement %d found no replica", i)
		}
		rr[pick].QueueLen++
	}

	// Round-robin spreads placements uniformly (250 each), so the
	// initial 700 spread survives untouched.
	if got := spread(rr); got != 700 {
		t.Errorf("round-robin spread = %d, want the initial 700 preserved", got)
	}
	// P2C steers placements at the least-loaded of each sampled pair;
	// once the fill passes the deepest queue the spread collapses to
	// the two-choices O(log log n) band.
	if got := spread(p2c); got > 16 {
		t.Errorf("p2c spread = %d, want ≤16 after leveling", got)
	}
	if spread(p2c) >= spread(rr) {
		t.Errorf("p2c spread %d not better than round-robin %d", spread(p2c), spread(rr))
	}
}

// TestRoundRobinUniform: on a homogeneous fleet, round-robin is exactly
// uniform and visits replicas in rotation order.
func TestRoundRobinUniform(t *testing.T) {
	loads := make([]Load, 4)
	for i := range loads {
		loads[i].Placeable = true
	}
	counts := make([]int, 4)
	for i := 0; i < 100; i++ {
		pick := PickRoundRobin(loads, uint64(i))
		if pick != i%4 {
			t.Fatalf("placement %d picked %d, want %d", i, pick, i%4)
		}
		counts[pick]++
	}
	for i, c := range counts {
		if c != 25 {
			t.Errorf("replica %d got %d placements, want 25", i, c)
		}
	}
}

// TestPickersRespectPlaceability: every picker returns -1 on an empty
// placeable set, and the sole placeable replica otherwise.
func TestPickersRespectPlaceability(t *testing.T) {
	down := []Load{{QueueCap: 8}, {QueueCap: 8}}
	rng := rand.New(rand.NewSource(1))
	if p := PickP2C(down, rng.Intn); p != -1 {
		t.Errorf("PickP2C on all-down fleet = %d, want -1", p)
	}
	if p := PickRoundRobin(down, 0); p != -1 {
		t.Errorf("PickRoundRobin on all-down fleet = %d, want -1", p)
	}
	if p := PickLeastPressure(down); p != -1 {
		t.Errorf("PickLeastPressure on all-down fleet = %d, want -1", p)
	}

	one := []Load{{Placeable: false}, {Placeable: true, QueueLen: 99, QueueCap: 100}, {Placeable: false}}
	for i := 0; i < 10; i++ {
		if p := PickP2C(one, rng.Intn); p != 1 {
			t.Fatalf("PickP2C with one placeable = %d, want 1", p)
		}
		if p := PickRoundRobin(one, uint64(i)); p != 1 {
			t.Fatalf("PickRoundRobin with one placeable = %d, want 1", p)
		}
	}
	if p := PickLeastPressure(one); p != 1 {
		t.Errorf("PickLeastPressure with one placeable = %d, want 1", p)
	}
}

// TestPickLeastPressure: global minimum by pressure, ties broken by
// fewer running sequences, then lower index — a total order.
func TestPickLeastPressure(t *testing.T) {
	loads := []Load{
		{Placeable: true, QueueLen: 4, QueueCap: 8},                                     // pressure 0.5
		{Placeable: true, QueueLen: 1, QueueCap: 8},                                     // pressure 0.125 ← min
		{Placeable: true, QueueLen: 1, QueueCap: 8, KVTotalBlocks: 10, KVFreeBlocks: 5}, // 0.625
		{Placeable: false}, // pressure 0 but down
	}
	if p := PickLeastPressure(loads); p != 1 {
		t.Errorf("PickLeastPressure = %d, want 1", p)
	}

	ties := []Load{
		{Placeable: true, Running: 3},
		{Placeable: true, Running: 1}, // same pressure (0), fewer running ← wins
		{Placeable: true, Running: 1}, // equal again; higher index loses
	}
	if p := PickLeastPressure(ties); p != 1 {
		t.Errorf("tie-break pick = %d, want 1", p)
	}
}

// TestPressureBounds: pressure is the queue fraction plus the KV used
// fraction, each term only present when bounded.
func TestPressureBounds(t *testing.T) {
	cases := []struct {
		l    Load
		want float64
	}{
		{Load{}, 0},
		{Load{QueueLen: 4, QueueCap: 8}, 0.5},
		{Load{KVTotalBlocks: 10, KVFreeBlocks: 2}, 0.8},
		{Load{QueueLen: 8, QueueCap: 8, KVTotalBlocks: 10, KVFreeBlocks: 0}, 2},
	}
	for i, c := range cases {
		if got := c.l.Pressure(); got != c.want {
			t.Errorf("case %d: pressure = %v, want %v", i, got, c.want)
		}
	}
}

// TestPrefixKey: prompts sharing their leading block share a key,
// differing blocks differ, and prompts too short for one block opt out.
func TestPrefixKey(t *testing.T) {
	const block = 16
	a := make([]int, 32)
	b := make([]int, 48)
	for i := range a {
		a[i] = i
	}
	for i := range b {
		if i < block {
			b[i] = i // same first block as a
		} else {
			b[i] = 1000 + i
		}
	}
	ka, kb := PrefixKey(a, block), PrefixKey(b, block)
	if ka == 0 || ka != kb {
		t.Errorf("shared first block: keys %d vs %d, want equal and nonzero", ka, kb)
	}
	c := append([]int(nil), a...)
	c[3] = 9999
	if kc := PrefixKey(c, block); kc == ka {
		t.Errorf("differing first block produced the same key %d", kc)
	}
	if k := PrefixKey(a[:block-1], block); k != 0 {
		t.Errorf("short prompt key = %d, want 0", k)
	}
	if k := PrefixKey(a, 0); k != 0 {
		t.Errorf("blockTokens 0 key = %d, want 0", k)
	}
}

// FuzzRouterPlacement checks placement invariants on arbitrary fleets:
// every picker returns -1 exactly when nothing is placeable, otherwise
// a placeable index; P2C is deterministic per rand seed; and
// PickLeastPressure returns a true global minimum under the better()
// order.
func FuzzRouterPlacement(f *testing.F) {
	f.Add([]byte{0, 8, 0, 4, 8, 1, 7, 8, 2, 0, 0, 1}, int64(1), uint64(0))
	f.Add([]byte{255, 255, 255, 255, 255, 255}, int64(42), uint64(9))
	f.Add([]byte{}, int64(0), uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, seed int64, counter uint64) {
		var loads []Load
		for i := 0; i+6 <= len(data) && len(loads) < 64; i += 6 {
			loads = append(loads, Load{
				QueueLen:      int(data[i]),
				QueueCap:      int(data[i+1]),
				Running:       int(data[i+2]),
				KVFreeBlocks:  int(data[i+3]),
				KVTotalBlocks: int(data[i+4]),
				Placeable:     data[i+5]&1 == 1,
			})
		}
		anyPlaceable := false
		for _, l := range loads {
			if l.Placeable {
				anyPlaceable = true
			}
		}
		check := func(name string, pick int) {
			if anyPlaceable {
				if pick < 0 || pick >= len(loads) || !loads[pick].Placeable {
					t.Fatalf("%s = %d: not a placeable index (fleet %+v)", name, pick, loads)
				}
			} else if pick != -1 {
				t.Fatalf("%s = %d on a fleet with nothing placeable", name, pick)
			}
		}
		p1 := PickP2C(loads, rand.New(rand.NewSource(seed)).Intn)
		p2 := PickP2C(loads, rand.New(rand.NewSource(seed)).Intn)
		check("PickP2C", p1)
		if p1 != p2 {
			t.Fatalf("PickP2C not deterministic per seed: %d vs %d", p1, p2)
		}
		check("PickRoundRobin", PickRoundRobin(loads, counter))
		lp := PickLeastPressure(loads)
		check("PickLeastPressure", lp)
		if lp >= 0 {
			for i := range loads {
				if loads[i].Placeable && better(loads, i, lp) {
					t.Fatalf("PickLeastPressure = %d but %d is strictly better", lp, i)
				}
			}
		}
	})
}
