package router

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/gateway"
	"github.com/lia-sim/lia/internal/llm"
)

// leakCheck snapshots the goroutine count and returns a verifier that
// fails the test if the count has not settled back by the deadline —
// the router must not strand probers, collectors, or gateway batchers.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after shutdown", before, runtime.NumGoroutine())
	}
}

func testPrompt(i int) []int {
	p := make([]int, 6)
	for j := range p {
		p[j] = (i*7 + j*3) % 101
	}
	return p
}

// TestRouterSingleReplicaBitIdenticalTokens: a 1-replica fleet serves
// exactly the tokens the bare gateway serves — the router adds routing,
// never alters results.
func TestRouterSingleReplicaBitIdenticalTokens(t *testing.T) {
	check := leakCheck(t)
	cfg := llm.TinyConfig()
	gwCfg := gateway.Config{MaxBatch: 4, QueueDepth: 16}

	m, err := llm.NewRandom(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := gateway.New(llm.NewExecutor(m, core.FullGPU), gwCfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{}, []ReplicaSpec{{Name: "solo", Model: cfg, Seed: 42, Policy: core.FullGPU, Gateway: gwCfg}})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for i := 0; i < 8; i++ {
		prompt := testPrompt(i)
		want, err := bare.Submit(ctx, prompt, 10)
		if err != nil {
			t.Fatalf("bare submit %d: %v", i, err)
		}
		got, err := r.Submit(ctx, prompt, 10)
		if err != nil {
			t.Fatalf("router submit %d: %v", i, err)
		}
		if len(got.Tokens) != len(want.Tokens) {
			t.Fatalf("submit %d: %d tokens vs bare %d", i, len(got.Tokens), len(want.Tokens))
		}
		for j := range want.Tokens {
			if got.Tokens[j] != want.Tokens[j] {
				t.Fatalf("submit %d token %d: router %d, bare %d", i, j, got.Tokens[j], want.Tokens[j])
			}
		}
	}
	s := r.Snapshot()
	if s.Placed != 8 || s.Spilled != 0 {
		t.Errorf("snapshot placed/spilled = %d/%d, want 8/0", s.Placed, s.Spilled)
	}

	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := bare.Shutdown(sctx); err != nil {
		t.Errorf("bare shutdown: %v", err)
	}
	if err := r.Shutdown(sctx); err != nil {
		t.Errorf("router shutdown: %v", err)
	}
	check()
}

// TestRouterFleetLifecycleAndFailover drives a heterogeneous 2-replica
// fleet under concurrent traffic through a kill, a respawn, and a
// drain. Because both replicas serve the same seed, every successful
// response must be bit-identical to the reference generation no matter
// which replica (or failover path) produced it; and every submission
// must resolve as exactly one success or one deliberate spill.
func TestRouterFleetLifecycleAndFailover(t *testing.T) {
	check := leakCheck(t)
	cfg := llm.TinyConfig()
	specs := []ReplicaSpec{
		{Name: "a", Model: cfg, Seed: 42, Policy: core.FullGPU,
			Gateway: gateway.Config{MaxBatch: 4, QueueDepth: 32}},
		{Name: "b", Model: cfg, Seed: 42, Policy: core.PartialCPU,
			Gateway: gateway.Config{MaxBatch: 4, QueueDepth: 32, Quant: "int8"}},
	}
	r, err := New(Config{Policy: PolicyP2C, Seed: 1, AffinityBlockTokens: 4}, specs)
	if err != nil {
		t.Fatal(err)
	}

	// Reference tokens per prompt (INT8 replica "b" serves a different
	// quant tier, so only compare exact tokens for prompts served by
	// matching tiers; here both replicas share seed 42 and the test
	// asserts self-consistency instead: a prompt's tokens are stable
	// across repeats from the same replica tier).
	const (
		workers   = 4
		perWorker = 6
		genTokens = 8
	)
	type result struct {
		ok      bool
		spilled bool
	}
	results := make([]result, workers*perWorker)
	var wg sync.WaitGroup
	ctx := context.Background()
	var killOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				idx := w*perWorker + i
				if idx == workers*perWorker/2 {
					// Halfway through, hard-kill replica a: its in-flight
					// work fails over to b through Submit's retry loop.
					killOnce.Do(func() {
						if err := r.Kill("a"); err != nil {
							t.Errorf("kill: %v", err)
						}
					})
				}
				_, err := r.Submit(ctx, testPrompt(idx%5), genTokens)
				switch {
				case err == nil:
					results[idx] = result{ok: true}
				case errors.Is(err, ErrNoReplicas):
					results[idx] = result{spilled: true}
				default:
					t.Errorf("submit %d: unexpected error %v", idx, err)
				}
			}
		}(w)
	}
	wg.Wait()

	var ok, spilled int
	for _, res := range results {
		if res.ok {
			ok++
		}
		if res.spilled {
			spilled++
		}
	}
	if ok+spilled != workers*perWorker {
		t.Errorf("accounting: %d ok + %d spilled != %d submitted", ok, spilled, workers*perWorker)
	}
	if ok == 0 {
		t.Error("no request succeeded across the kill")
	}
	if st, _ := r.State("a"); st != StateDown {
		t.Errorf("replica a state = %q after kill, want down", st)
	}
	if st, _ := r.State("b"); st != StateUp {
		t.Errorf("replica b state = %q, want up", st)
	}

	// Respawn a: same spec + seed, so it must serve tokens bit-identical
	// to its pre-kill self. Verify against a fresh reference executor.
	if err := r.Respawn("a"); err != nil {
		t.Fatalf("respawn: %v", err)
	}
	if st, _ := r.State("a"); st != StateUp {
		t.Errorf("replica a state after respawn = %q, want up", st)
	}
	m, err := llm.NewRandom(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := llm.NewExecutor(m, core.FullGPU).Generate(testPrompt(1), genTokens)
	if err != nil {
		t.Fatal(err)
	}
	// Drain b so the next submissions must land on the respawned a
	// (dense tier — comparable with the reference executor).
	dctx, dcancel := context.WithTimeout(ctx, 5*time.Second)
	if err := r.Drain(dctx, "b"); err != nil {
		t.Errorf("drain b: %v", err)
	}
	dcancel()
	res, err := r.Submit(ctx, testPrompt(1), genTokens)
	if err != nil {
		t.Fatalf("submit after respawn: %v", err)
	}
	if fmt.Sprint(res.Tokens) != fmt.Sprint(ref) {
		t.Errorf("respawned replica tokens %v != reference %v", res.Tokens, ref)
	}

	snap := r.Snapshot()
	if snap.Replicas["a"] != StateUp || snap.Replicas["b"] != StateDown {
		t.Errorf("final states %+v, want a up / b down", snap.Replicas)
	}
	if snap.Failovers == 0 && spilled == 0 {
		t.Log("note: kill landed between requests; no failover was observed this run")
	}

	sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
	defer scancel()
	if err := r.Shutdown(sctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	check()
}

// TestRouterDrainRemovesFromPlacement: a draining replica immediately
// leaves the placement set while the survivor keeps serving.
func TestRouterDrainRemovesFromPlacement(t *testing.T) {
	check := leakCheck(t)
	cfg := llm.TinyConfig()
	gwCfg := gateway.Config{MaxBatch: 2, QueueDepth: 8}
	r, err := New(Config{}, []ReplicaSpec{
		{Name: "a", Model: cfg, Seed: 42, Policy: core.FullGPU, Gateway: gwCfg},
		{Name: "b", Model: cfg, Seed: 42, Policy: core.FullGPU, Gateway: gwCfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dctx, dcancel := context.WithTimeout(ctx, 5*time.Second)
	if err := r.Drain(dctx, "a"); err != nil {
		t.Fatalf("drain: %v", err)
	}
	dcancel()
	for _, l := range r.Loads() {
		if l.Name == "a" && l.Placeable {
			t.Error("drained replica still placeable")
		}
	}
	if _, err := r.Submit(ctx, testPrompt(0), 4); err != nil {
		t.Errorf("submit after drain: %v", err)
	}
	if gw := r.Replica("a"); gw != nil {
		t.Error("down replica's gateway should be nil")
	}
	if gw := r.Replica("b"); gw == nil {
		t.Error("up replica's gateway should be accessible")
	}
	// Lifecycle guards: draining a down replica and respawning an up one
	// both refuse.
	if err := r.Drain(ctx, "a"); err == nil {
		t.Error("draining a down replica should fail")
	}
	if err := r.Respawn("b"); err == nil {
		t.Error("respawning an up replica should fail")
	}
	if err := r.Kill("missing"); err == nil {
		t.Error("killing an unknown replica should fail")
	}
	sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
	defer scancel()
	if err := r.Shutdown(sctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	check()
}

// TestRouterAffinitySteering: with prefix affinity on, repeat prompts
// sharing a leading block steer to the replica that served them first.
func TestRouterAffinitySteering(t *testing.T) {
	check := leakCheck(t)
	cfg := llm.TinyConfig()
	gwCfg := gateway.Config{MaxBatch: 4, QueueDepth: 16}
	r, err := New(Config{Seed: 2, AffinityBlockTokens: 4}, []ReplicaSpec{
		{Name: "a", Model: cfg, Seed: 42, Policy: core.FullGPU, Gateway: gwCfg},
		{Name: "b", Model: cfg, Seed: 42, Policy: core.FullGPU, Gateway: gwCfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	prompt := testPrompt(3) // 6 tokens ≥ one 4-token block
	for i := 0; i < 6; i++ {
		if _, err := r.Submit(ctx, prompt, 4); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if hits := r.Snapshot().AffinityHits; hits < 5 {
		t.Errorf("affinity hits = %d, want ≥5 (all repeats after the first)", hits)
	}
	sctx, scancel := context.WithTimeout(ctx, 5*time.Second)
	defer scancel()
	if err := r.Shutdown(sctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	check()
}
