package router

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/lia-sim/lia/internal/batchpolicy"
	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/gateway"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// Virtual per-round cost model, the same whole-microsecond closed forms
// the scenario lab's replay leg prices rounds with (scenario/trial.go),
// expressed here per reference device: a replica's costs divide by its
// device speed factor relative to the A100 the constants were shaped
// for.
const (
	replayPrefillTokenCost = 0.25e-3  // seconds per widest-prompt token per admitted sequence, on the reference device
	replayDecodeSeqCost    = 1e-3     // seconds per running sequence per decode round
	replayDecodeCtxCost    = 0.125e-3 // seconds per token of mean context per round
)

// ReplayReplica declares one virtual replica of a replayed fleet.
type ReplayReplica struct {
	// Name identifies the replica.
	Name string
	// System prices the replica's compute: its GPU's PeakHalf (or, for a
	// CPU-only AMX node, the CPU's PeakMatrix) relative to the A100
	// reference scales every round cost.
	System hw.System
	// TPWays, when ≥2, models the replica as a tensor-parallel node:
	// compute scales by the shard count and every round pays the two
	// analytic ring all-reduces per decoder layer (core.TPAllReduceTime
	// over the system's peer link, NVLink3 when unset).
	TPWays int
	// MaxBatch and QueueDepth bound the replica's batcher (queue 0 =
	// unbounded).
	MaxBatch   int
	QueueDepth int
	// KVTokens bounds the replica's paged KV pool (0 = unconstrained).
	KVTokens int
	// KVBlockTokens is the pool's block granularity (default 16).
	KVBlockTokens int
	// DownAt, when positive, kills the replica at that virtual time:
	// running and queued work fails over through placement. UpAt, when
	// positive, respawns it with a fresh scheduler.
	DownAt, UpAt units.Seconds
}

// FleetConfig parameterizes a fleet replay.
type FleetConfig struct {
	// Policy is the placement policy (PolicyP2C default, PolicyRoundRobin).
	Policy string
	// Seed drives the P2C sampler.
	Seed int64
	// Model is the served architecture (default llm.TinyConfig()); it
	// sizes KV pools and the TP comm payload.
	Model model.Config
	// Replicas is the fleet.
	Replicas []ReplayReplica
}

// ReplicaReplayStats is one replica's share of a replayed fleet's work.
type ReplicaReplayStats struct {
	// Placed counts requests routed to the replica (including failovers
	// onto it).
	Placed int
	// Completed counts requests it finished.
	Completed int
	// Rounds counts scheduling rounds it ran.
	Rounds int
}

// FleetResult is a fleet replay's outcome: the accounting identity
// Completed+Shed+Canceled == len(Requests) holds for every finished
// replay, across any number of failovers.
type FleetResult struct {
	Completed   int
	Shed        int
	Canceled    int
	Preemptions int
	// Failovers counts requests re-placed off a killed replica.
	Failovers int
	// Makespan is the latest virtual completion time across the fleet.
	Makespan units.Seconds
	// ThroughputRPS is Completed / Makespan.
	ThroughputRPS float64
	// TTFTs collects completed requests' arrival→first-token latencies,
	// unsorted (use Percentile).
	TTFTs []units.Seconds
	// Requests records per-request outcomes, indexed like the input.
	Requests []gateway.ReplayOutcome
	// PerReplica maps replica name → its share of the work.
	PerReplica map[string]ReplicaReplayStats
	// Events is the fleet-wide ordered scheduling-decision stream (for a
	// 1-replica fleet, directly comparable with gateway.Replay's — the
	// differential the router's correctness test pins).
	Events []batchpolicy.Event
}

// Percentile returns the p-th percentile (0 < p ≤ 100) of a latency
// sample by nearest-rank, 0 for an empty sample.
func Percentile(sample []units.Seconds, p float64) units.Seconds {
	if len(sample) == 0 {
		return 0
	}
	s := append([]units.Seconds(nil), sample...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// deviceSpeed is a replica's compute factor relative to the A100
// reference: H100 nodes run ≈2.4× faster, CPU-only AMX nodes ≈3.5×
// slower, and a TP node scales by its shard count (the per-round
// all-reduce tax is charged separately).
func deviceSpeed(sys hw.System, tpWays int) float64 {
	ref := float64(hw.A100.PeakHalf)
	var f float64
	if sys.GPUCount > 0 {
		f = float64(sys.GPU.PeakHalf) / ref
	} else {
		f = float64(sys.CPU.PeakMatrix) / ref
	}
	if f <= 0 {
		f = 1
	}
	if tpWays >= 2 {
		f *= float64(tpWays)
	}
	return f
}

// machine is one replica's virtual serving state.
type machine struct {
	spec  ReplayReplica
	cfg   model.Config
	speed float64
	peer  hw.LinkSpec

	up      bool
	clock   units.Seconds
	sched   *batchpolicy.Scheduler
	waiting []int // global request indexes, FIFO

	killed, respawned bool // fault transitions already processed
	stats             ReplicaReplayStats
}

// tpComm prices one round's tensor-parallel communication: two ring
// all-reduces per decoder layer over the batch's hidden states.
func (m *machine) tpComm(batch int) units.Seconds {
	if m.spec.TPWays < 2 {
		return 0
	}
	bytes := units.Bytes(batch * m.cfg.DModel * m.cfg.BytesPerParam)
	return units.Seconds(2*m.cfg.Layers) * core.TPAllReduceTime(m.spec.TPWays, m.peer, bytes)
}

func (m *machine) prefillCost(b, maxIn int) units.Seconds {
	return units.Seconds(float64(b*maxIn)*replayPrefillTokenCost/m.speed) + m.tpComm(b)
}

func (m *machine) decodeCost(b, meanCtx int) units.Seconds {
	return units.Seconds((float64(b)*replayDecodeSeqCost+float64(meanCtx)*replayDecodeCtxCost)/m.speed) + m.tpComm(b)
}

// newSched builds the machine's scheduler and pool.
func (m *machine) newSched() error {
	var pool *kvpage.Manager
	if m.spec.KVTokens > 0 {
		blockTokens := m.spec.KVBlockTokens
		if blockTokens <= 0 {
			blockTokens = 16
		}
		var err error
		pool, err = kvpage.ForModel(m.cfg.KVBytes(1, m.spec.KVTokens), blockTokens, m.cfg)
		if err != nil {
			return err
		}
	}
	sched, err := batchpolicy.NewScheduler(m.spec.MaxBatch, pool)
	if err != nil {
		return err
	}
	m.sched = sched
	return nil
}

// load snapshots the machine for a placement decision.
func (m *machine) load() Load {
	l := Load{
		Name:      m.spec.Name,
		QueueLen:  len(m.waiting),
		QueueCap:  m.spec.QueueDepth,
		Placeable: m.up && (m.spec.QueueDepth == 0 || len(m.waiting) < m.spec.QueueDepth),
	}
	if m.sched != nil {
		l.Running = m.sched.RunningLen()
		if p := m.sched.Pool(); p != nil {
			l.KVFreeBlocks = p.FreeBlocks()
			l.KVTotalBlocks = p.TotalBlocks()
		}
	}
	return l
}

// runnable reports whether the machine has work for its next round.
func (m *machine) runnable() bool {
	return m.up && (len(m.waiting) > 0 || m.sched.Busy())
}

// FleetReplay prices a request stream through a virtual fleet: the
// discrete-event composition of N gateway.Replay-style machines — each
// with its own clock, scheduler, KV pool, and device-scaled costs —
// behind the same placement policies the live router runs. Events
// (fault transitions, arrivals, machine rounds) are processed in global
// time order, so results are a pure function of (config, requests):
// byte-identical across runs, the property the scale study and the
// failover accounting tests rely on.
func FleetReplay(cfg FleetConfig, reqs []gateway.ReplayRequest) (FleetResult, error) {
	if len(cfg.Replicas) == 0 {
		return FleetResult{}, fmt.Errorf("router: replay fleet needs at least one replica")
	}
	switch cfg.Policy {
	case "", PolicyP2C, PolicyRoundRobin:
	default:
		return FleetResult{}, fmt.Errorf("router: unknown placement policy %q", cfg.Policy)
	}
	if cfg.Model.DModel == 0 {
		cfg.Model = llm.TinyConfig()
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return FleetResult{}, fmt.Errorf("router: replay requests not sorted by arrival")
		}
	}

	machines := make([]*machine, len(cfg.Replicas))
	seen := map[string]bool{}
	for i, spec := range cfg.Replicas {
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("replica-%d", i)
		}
		if seen[spec.Name] {
			return FleetResult{}, fmt.Errorf("router: duplicate replica name %q", spec.Name)
		}
		seen[spec.Name] = true
		if spec.MaxBatch < 1 {
			return FleetResult{}, fmt.Errorf("router: replica %q MaxBatch must be ≥1", spec.Name)
		}
		if spec.System.CPU.Cores == 0 {
			spec.System = hw.SPRA100
		}
		peer := spec.System.GPU.PeerLink
		if peer.BW == 0 {
			peer = hw.NVLink3
		}
		m := &machine{
			spec:  spec,
			cfg:   cfg.Model,
			speed: deviceSpeed(spec.System, spec.TPWays),
			peer:  peer,
			up:    true,
		}
		if err := m.newSched(); err != nil {
			return FleetResult{}, fmt.Errorf("router: replica %q: %w", spec.Name, err)
		}
		machines[i] = m
	}

	var (
		out FleetResult
		rng = rand.New(rand.NewSource(cfg.Seed))
		rr  uint64
	)
	out.Requests = make([]gateway.ReplayOutcome, len(reqs))
	out.PerReplica = map[string]ReplicaReplayStats{}
	for i := range reqs {
		out.Requests[i].Arrival = reqs[i].Arrival
	}

	expiry := func(i int) units.Seconds {
		e := reqs[i].CancelAt
		if d := reqs[i].Deadline; d > 0 && (e == 0 || d < e) {
			e = d
		}
		return e
	}
	cancelAt := func(i int, t units.Seconds, emitted int) {
		r := &out.Requests[i]
		r.Outcome = gateway.ReplayCanceled
		r.Finish = t
		r.Emitted = emitted
		out.Canceled++
	}
	shedAt := func(i int, t units.Seconds) {
		r := &out.Requests[i]
		r.Outcome = gateway.ReplayShed
		r.Finish = t
		out.Shed++
	}

	// attachEvents wires a machine's scheduler into the fleet-wide event
	// stream and outcome accounting; called at startup and on respawn
	// (before any round or reap can emit).
	attachEvents := func(m *machine) {
		m.sched.OnEvent = func(e batchpolicy.Event) {
			out.Events = append(out.Events, e)
			switch e.Kind {
			case batchpolicy.EventPreempt:
				out.Preemptions++
			case batchpolicy.EventComplete:
				out.Completed++
				m.stats.Completed++
				r := &out.Requests[e.Ref]
				r.Outcome = gateway.ReplayCompleted
				r.Finish = m.clock
				r.Emitted = reqs[e.Ref].OutputLen
				if r.FirstToken > 0 {
					out.TTFTs = append(out.TTFTs, r.FirstToken-r.Arrival)
				}
			}
		}
	}
	for _, m := range machines {
		attachEvents(m)
	}

	loads := func() []Load {
		ls := make([]Load, len(machines))
		for i, m := range machines {
			ls[i] = m.load()
		}
		return ls
	}
	// place routes one request at virtual time t: policy pick first,
	// then least-pressure spill over the remaining placeable machines
	// (the replay's analogue of Submit's retry loop — a full machine
	// refuses and the next-best is tried). Returns false when no machine
	// can hold it.
	place := func(req int, t units.Seconds) bool {
		ls := loads()
		var pick int
		if cfg.Policy == PolicyRoundRobin {
			pick = PickRoundRobin(ls, rr)
			rr++
		} else {
			pick = PickP2C(ls, rng.Intn)
		}
		if pick < 0 {
			pick = PickLeastPressure(ls)
		}
		if pick < 0 {
			return false
		}
		m := machines[pick]
		if !m.runnable() && m.clock < t {
			m.clock = t // idle machine wakes at the placement instant
		}
		m.waiting = append(m.waiting, req)
		m.stats.Placed++
		return true
	}

	// kill fails a machine over: every waiting, requeued, and running
	// request re-places across the survivors at the kill instant.
	kill := func(m *machine, t units.Seconds) {
		m.up = false
		m.killed = true
		if m.clock < t {
			m.clock = t
		}
		orphans := append([]int(nil), m.waiting...)
		m.waiting = nil
		for _, it := range m.sched.DropRequeued(func(batchpolicy.Item) bool { return true }) {
			orphans = append(orphans, it.Ref)
		}
		for _, seq := range m.sched.Running() {
			orphans = append(orphans, seq.Item.Ref)
		}
		m.sched = nil
		for _, req := range orphans {
			out.Failovers++
			if !place(req, t) {
				shedAt(req, t)
			}
		}
	}

	// One round on machine m: reap expired work, run batchpolicy.Round
	// with the machine's priced hooks, advance its clock.
	round := func(m *machine) error {
		// Reap expired waiting/requeued/running work against the
		// machine's clock — the per-machine reapCanceled pass.
		kept := m.waiting[:0]
		for _, i := range m.waiting {
			if e := expiry(i); e > 0 && e <= m.clock {
				cancelAt(i, m.clock, 0)
			} else {
				kept = append(kept, i)
			}
		}
		m.waiting = kept
		for _, it := range m.sched.DropRequeued(func(it batchpolicy.Item) bool {
			e := expiry(it.Ref)
			return e > 0 && e <= m.clock
		}) {
			cancelAt(it.Ref, m.clock, 0)
		}
		for _, seq := range m.sched.Running() {
			if e := expiry(seq.Item.Ref); e > 0 && e <= m.clock {
				if err := m.sched.Remove(seq.ID); err != nil {
					return err
				}
				cancelAt(seq.Item.Ref, m.clock, seq.Item.OutputLen-seq.Remaining)
			}
		}
		if !m.runnable() {
			return nil
		}
		hooks := batchpolicy.Hooks{
			Waiting: func() []batchpolicy.Item {
				items := make([]batchpolicy.Item, 0, len(m.waiting))
				for _, i := range m.waiting {
					items = append(items, batchpolicy.Item{Ref: i, PromptLen: reqs[i].PromptLen, OutputLen: reqs[i].OutputLen})
				}
				return items
			},
			Consumed: func(n int) {
				for _, i := range m.waiting[:n] {
					if r := &out.Requests[i]; r.Admitted == 0 {
						r.Admitted = m.clock
					}
				}
				m.waiting = m.waiting[n:]
			},
			Prefill: func(admitted []batchpolicy.Seq) error {
				maxIn := 1
				for _, a := range admitted {
					if a.Item.PromptLen > maxIn {
						maxIn = a.Item.PromptLen
					}
				}
				m.clock += m.prefillCost(len(admitted), maxIn)
				for _, a := range admitted {
					if r := &out.Requests[a.Item.Ref]; r.FirstToken == 0 {
						r.FirstToken = m.clock
					}
				}
				return nil
			},
			Step: func(running []batchpolicy.Seq) error {
				var ctxSum int
				for _, a := range running {
					ctxSum += a.Context
				}
				m.clock += m.decodeCost(len(running), ctxSum/len(running))
				return nil
			},
		}
		progressed, err := batchpolicy.Round(m.sched, hooks)
		if err != nil {
			return err
		}
		m.stats.Rounds++
		if !progressed && !m.sched.Busy() && len(m.waiting) > 0 {
			// The head request cannot be admitted even into a drained pool,
			// so it can never fit this machine — and in a homogeneous fleet,
			// any machine. Shed it (re-placing would ping-pong between full
			// machines without ever advancing a clock).
			req := m.waiting[0]
			m.waiting = m.waiting[1:]
			shedAt(req, m.clock)
		}
		if m.clock > out.Makespan {
			out.Makespan = m.clock
		}
		return nil
	}

	const never = units.Seconds(math.MaxFloat64)
	next := 0
	for {
		// Next fault transition, arrival, and machine round, in global
		// time order (faults before arrivals before rounds on ties).
		tFault, faultIdx, faultKill := never, -1, false
		for i, m := range machines {
			if d := m.spec.DownAt; d > 0 && !m.killed && (tFault > d) {
				tFault, faultIdx, faultKill = d, i, true
			}
			if u := m.spec.UpAt; u > 0 && m.killed && !m.respawned && tFault > u {
				tFault, faultIdx, faultKill = u, i, false
			}
		}
		tArr := never
		if next < len(reqs) {
			tArr = reqs[next].Arrival
		}
		tRound, roundIdx := never, -1
		for i, m := range machines {
			if m.runnable() && m.clock < tRound {
				tRound, roundIdx = m.clock, i
			}
		}
		switch {
		case faultIdx >= 0 && tFault <= tArr && tFault <= tRound:
			m := machines[faultIdx]
			if faultKill {
				kill(m, tFault)
			} else {
				m.respawned = true
				m.up = true
				m.clock = tFault
				if err := m.newSched(); err != nil {
					return FleetResult{}, err
				}
				attachEvents(m)
			}
		case next < len(reqs) && tArr <= tRound:
			i := next
			next++
			if e := expiry(i); e > 0 && e <= tArr {
				cancelAt(i, tArr, 0)
				continue
			}
			if !place(i, tArr) {
				shedAt(i, tArr)
			}
		case roundIdx >= 0:
			if err := round(machines[roundIdx]); err != nil {
				return FleetResult{}, fmt.Errorf("router: replay round on %q: %w", machines[roundIdx].spec.Name, err)
			}
		default:
			// No events left. Any work stranded on a killed machine that
			// never respawned is unreachable — shed it for the accounting
			// identity (the live router answers those ErrShuttingDown).
			for _, m := range machines {
				for _, i := range m.waiting {
					shedAt(i, m.clock)
				}
				m.waiting = nil
			}
			for _, m := range machines {
				out.PerReplica[m.spec.Name] = m.stats
			}
			if out.Makespan > 0 {
				out.ThroughputRPS = float64(out.Completed) / float64(out.Makespan)
			}
			return out, nil
		}
	}
}
