package router

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/gateway"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/model"
)

// ErrNoReplicas: every replica is down, draining, or was tried and
// refused — the router-level spill after retries are exhausted.
var ErrNoReplicas = errors.New("router: no replica accepted the request")

// Placement policies.
const (
	// PolicyP2C is power-of-two-choices by least KV pressure (default).
	PolicyP2C = "p2c"
	// PolicyRoundRobin rotates placements, ignoring load.
	PolicyRoundRobin = "round-robin"
)

// ReplicaSpec declares one replica of the fleet: a full gateway +
// executor stack. Fleets may be heterogeneous — each spec carries its
// own offload tiering, quant tier, TP width, and queue/KV envelope in
// its gateway config.
type ReplicaSpec struct {
	// Name identifies the replica (unique within the fleet).
	Name string
	// Model is the served architecture (default llm.TinyConfig()).
	Model model.Config
	// Seed draws the model weights (llm.NewRandom); replicas sharing a
	// seed and config serve bit-identical models, so failover between
	// them re-serves the same tokens.
	Seed int64
	// Policy is the executor's offloading policy.
	Policy core.Policy
	// Gateway is the replica's serving envelope (queue depth, batch
	// bound, KV budget, quant tier, TP width, ...).
	Gateway gateway.Config
}

// Config parameterizes the router.
type Config struct {
	// Policy selects placement: PolicyP2C (default) or PolicyRoundRobin.
	Policy string
	// Seed drives the P2C sampler (deterministic placement per seed
	// given identical health snapshots).
	Seed int64
	// ProbeInterval is how often each replica's prober publishes a
	// health report (default 1ms — the tiny model's rounds are fast).
	ProbeInterval time.Duration
	// AffinityBlockTokens, when positive, enables prefix-affinity
	// hinting at that block granularity: prompts sharing their leading
	// block are steered to the replica that last served that block,
	// unless it is more than AffinitySpill pressured.
	AffinityBlockTokens int
	// AffinitySpill is the pressure above which an affinity hint is
	// ignored and normal placement resumes (default 0.75).
	AffinitySpill float64
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = PolicyP2C
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Millisecond
	}
	if c.AffinitySpill == 0 {
		c.AffinitySpill = 0.75
	}
	return c
}

// Replica states.
const (
	// StateUp: serving and placeable.
	StateUp = "up"
	// StateDraining: finishing in-flight work, not placeable.
	StateDraining = "draining"
	// StateDown: stopped; Respawn restarts it.
	StateDown = "down"
)

// replica is one fleet slot. The gateway pointer and state are guarded
// by the router mutex; the health snapshot is the prober/collector
// pair's lock-free publication.
type replica struct {
	spec  ReplicaSpec
	model *llm.Model // weights, reused across respawns (read-only)

	state string
	gen   int // bumped by Respawn; stale probe reports are discarded
	gw    *gateway.Gateway

	health atomic.Pointer[gateway.Health]
}

// healthReport travels the per-replica health channel from prober to
// collector.
type healthReport struct {
	name string
	gen  int
	h    gateway.Health
}

// Router is the fleet front door.
type Router struct {
	cfg Config

	mu       sync.RWMutex
	replicas []*replica // placement order is slice order
	byName   map[string]*replica

	healthCh  chan healthReport
	stop      chan struct{}
	collector sync.WaitGroup
	probers   sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand
	rr    atomic.Uint64

	affMu    sync.Mutex
	affinity map[uint64]string

	// Routing counters for Snapshot.
	placed    atomic.Uint64
	retried   atomic.Uint64
	failovers atomic.Uint64
	spilled   atomic.Uint64
	affHits   atomic.Uint64
}

// New stands up the fleet: one gateway per spec, a prober per replica,
// and the health collector. Every replica starts Up.
func New(cfg Config, specs []ReplicaSpec) (*Router, error) {
	cfg = cfg.withDefaults()
	switch cfg.Policy {
	case PolicyP2C, PolicyRoundRobin:
	default:
		return nil, fmt.Errorf("router: unknown placement policy %q", cfg.Policy)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("router: fleet needs at least one replica")
	}
	r := &Router{
		cfg:      cfg,
		byName:   map[string]*replica{},
		healthCh: make(chan healthReport, 4*len(specs)),
		stop:     make(chan struct{}),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		affinity: map[uint64]string{},
	}
	for _, spec := range specs {
		if _, err := r.addReplica(spec); err != nil {
			// Unwind the replicas already started.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			for _, rep := range r.replicas {
				rep.gw.Shutdown(ctx)
			}
			close(r.stop)
			r.probers.Wait()
			return nil, err
		}
	}
	r.collector.Add(1)
	go r.collect()
	return r, nil
}

// addReplica builds and starts one replica (caller holds no locks; only
// used before the router is shared or under mu).
func (r *Router) addReplica(spec ReplicaSpec) (*replica, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("router: replica needs a name")
	}
	if _, dup := r.byName[spec.Name]; dup {
		return nil, fmt.Errorf("router: duplicate replica name %q", spec.Name)
	}
	if spec.Model.DModel == 0 {
		spec.Model = llm.TinyConfig()
	}
	if spec.Seed == 0 {
		spec.Seed = 42
	}
	m, err := llm.NewRandom(spec.Model, spec.Seed)
	if err != nil {
		return nil, fmt.Errorf("router: replica %q model: %w", spec.Name, err)
	}
	rep := &replica{spec: spec, model: m, state: StateUp}
	if err := r.startGateway(rep); err != nil {
		return nil, err
	}
	r.replicas = append(r.replicas, rep)
	r.byName[spec.Name] = rep
	return rep, nil
}

// startGateway builds a fresh executor over the replica's (shared,
// read-only) weights, starts its gateway, and launches the generation's
// prober.
func (r *Router) startGateway(rep *replica) error {
	exec := llm.NewExecutor(rep.model, rep.spec.Policy)
	gw, err := gateway.New(exec, rep.spec.Gateway)
	if err != nil {
		return fmt.Errorf("router: replica %q: %w", rep.spec.Name, err)
	}
	rep.gw = gw
	h := gw.Health()
	rep.health.Store(&h)
	name, gen := rep.spec.Name, rep.gen
	r.probers.Add(1)
	go r.probe(name, gen, gw)
	return nil
}

// probe is one replica generation's health publisher: every
// ProbeInterval it reads the gateway's load gauges and sends a report
// down the health channel. It exits when the router stops or the
// gateway finishes draining (its batcher exited).
func (r *Router) probe(name string, gen int, gw *gateway.Gateway) {
	defer r.probers.Done()
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		report := healthReport{name: name, gen: gen, h: gw.Health()}
		select {
		case r.healthCh <- report:
		case <-r.stop:
			return
		default:
			// Collector is behind; drop this tick rather than block the
			// prober (the next tick carries fresher data anyway).
		}
	}
}

// collect is the health collector: the single reader of the health
// channel, publishing each current-generation report into its replica's
// atomic snapshot slot.
func (r *Router) collect() {
	defer r.collector.Done()
	for {
		select {
		case <-r.stop:
			return
		case report := <-r.healthCh:
			r.mu.RLock()
			rep := r.byName[report.name]
			if rep != nil && rep.gen == report.gen {
				h := report.h
				rep.health.Store(&h)
			}
			r.mu.RUnlock()
		}
	}
}

// loads snapshots the fleet for a placement decision. The returned
// slices are index-aligned.
func (r *Router) loads() ([]Load, []*replica) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	loads := make([]Load, len(r.replicas))
	reps := make([]*replica, len(r.replicas))
	for i, rep := range r.replicas {
		h := rep.health.Load()
		loads[i] = Load{
			Name:          rep.spec.Name,
			QueueLen:      h.QueueLen,
			QueueCap:      h.QueueCap,
			Running:       h.Running,
			KVFreeBlocks:  h.KVFreeBlocks,
			KVTotalBlocks: h.KVTotalBlocks,
			Placeable:     rep.state == StateUp && !h.Draining,
		}
		reps[i] = rep
	}
	return loads, reps
}

// place picks a replica index by policy (affinity hint first), -1 when
// nothing is placeable.
func (r *Router) place(loads []Load, prompt []int) int {
	if r.cfg.AffinityBlockTokens > 0 {
		if key := PrefixKey(prompt, r.cfg.AffinityBlockTokens); key != 0 {
			r.affMu.Lock()
			name, ok := r.affinity[key]
			r.affMu.Unlock()
			if ok {
				for i := range loads {
					if loads[i].Name == name && loads[i].Placeable && loads[i].Pressure() < r.cfg.AffinitySpill {
						r.affHits.Add(1)
						return i
					}
				}
			}
		}
	}
	switch r.cfg.Policy {
	case PolicyRoundRobin:
		return PickRoundRobin(loads, r.rr.Add(1)-1)
	default:
		r.rngMu.Lock()
		defer r.rngMu.Unlock()
		return PickP2C(loads, r.rng.Intn)
	}
}

// rememberAffinity records which replica served a prompt's leading
// block. The table is bounded: at 64k keys it resets (a cold cache,
// never a leak).
func (r *Router) rememberAffinity(prompt []int, name string) {
	if r.cfg.AffinityBlockTokens <= 0 {
		return
	}
	key := PrefixKey(prompt, r.cfg.AffinityBlockTokens)
	if key == 0 {
		return
	}
	r.affMu.Lock()
	if len(r.affinity) >= 1<<16 {
		r.affinity = map[uint64]string{}
	}
	r.affinity[key] = name
	r.affMu.Unlock()
}

// retryable reports whether a replica-level error should fail over to
// another replica rather than surface to the caller.
func retryable(err error) bool {
	return errors.Is(err, gateway.ErrOverloaded) || errors.Is(err, gateway.ErrShuttingDown)
}

// Submit places and serves one request. The placed replica's shed or
// drain fails over to the least-pressured untried replica until one
// accepts or the fleet is exhausted (ErrNoReplicas wraps the last
// refusal — the router-level spill). A replica killed mid-request also
// fails over: the retry recomputes on a live replica, so callers see
// either a result or a deliberate spill, never a torn stream.
func (r *Router) Submit(ctx context.Context, prompt []int, n int) (gateway.Result, error) {
	loads, reps := r.loads()
	tried := make([]bool, len(reps))
	pick := r.place(loads, prompt)
	var lastErr error
	for attempt := 0; attempt < len(reps); attempt++ {
		if pick < 0 {
			break
		}
		tried[pick] = true
		rep := reps[pick]
		res, err := rep.gw.Submit(ctx, prompt, n)
		if err == nil {
			r.placed.Add(1)
			r.rememberAffinity(prompt, rep.spec.Name)
			return res, nil
		}
		if !retryable(err) {
			return res, err
		}
		lastErr = err
		r.retried.Add(1)
		if errors.Is(err, gateway.ErrShuttingDown) {
			r.failovers.Add(1)
		}
		// Re-snapshot (pressures moved while we waited) and spill to the
		// least-pressured replica we have not tried yet.
		loads, reps = r.loads()
		if len(tried) != len(reps) {
			tried = append(tried, make([]bool, len(reps)-len(tried))...)
		}
		masked := make([]Load, len(loads))
		copy(masked, loads)
		for i := range masked {
			if i < len(tried) && tried[i] {
				masked[i].Placeable = false
			}
		}
		pick = PickLeastPressure(masked)
	}
	r.spilled.Add(1)
	if lastErr == nil {
		lastErr = ErrNoReplicas
	}
	return gateway.Result{}, fmt.Errorf("%w: %w", ErrNoReplicas, lastErr)
}

// Drain gracefully stops a replica: it leaves placement immediately and
// its gateway finishes in-flight work (bounded by ctx). The replica
// ends Down.
func (r *Router) Drain(ctx context.Context, name string) error {
	rep, err := r.transition(name, StateUp, StateDraining)
	if err != nil {
		return err
	}
	shutdownErr := rep.gw.Shutdown(ctx)
	r.mu.Lock()
	rep.state = StateDown
	r.mu.Unlock()
	return shutdownErr
}

// Kill hard-stops a replica: in-flight and queued requests fail with
// ErrShuttingDown (and fail over through Submit's retry). The replica
// ends Down.
func (r *Router) Kill(name string) error {
	rep, err := r.transition(name, StateUp, StateDown)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired context = kill, not drain
	rep.gw.Shutdown(ctx)
	return nil
}

// Respawn restarts a Down replica with a fresh gateway and executor
// over the same weights (same spec, same seed — the respawned replica
// serves bit-identical tokens). Its health generation bumps so stale
// probe reports from the dead gateway are discarded.
func (r *Router) Respawn(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep, ok := r.byName[name]
	if !ok {
		return fmt.Errorf("router: unknown replica %q", name)
	}
	if rep.state != StateDown {
		return fmt.Errorf("router: replica %q is %s, not down", name, rep.state)
	}
	rep.gen++
	if err := r.startGateway(rep); err != nil {
		rep.gen--
		return err
	}
	rep.state = StateUp
	return nil
}

// transition atomically moves a replica between states.
func (r *Router) transition(name, from, to string) (*replica, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("router: unknown replica %q", name)
	}
	if rep.state != from {
		return nil, fmt.Errorf("router: replica %q is %s, not %s", name, rep.state, from)
	}
	rep.state = to
	return rep, nil
}

// State returns a replica's lifecycle state.
func (r *Router) State(name string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rep, ok := r.byName[name]
	if !ok {
		return "", fmt.Errorf("router: unknown replica %q", name)
	}
	return rep.state, nil
}

// Loads returns the current placement view — what the next Submit
// would score.
func (r *Router) Loads() []Load {
	loads, _ := r.loads()
	return loads
}

// Snapshot is the router's own counters (per-replica serving counters
// live in each gateway's Snapshot).
type Snapshot struct {
	// Placed counts requests a replica accepted.
	Placed uint64
	// Retried counts replica refusals that were retried elsewhere.
	Retried uint64
	// Failovers counts retries caused by a draining or killed replica.
	Failovers uint64
	// Spilled counts requests no replica accepted (returned ErrNoReplicas).
	Spilled uint64
	// AffinityHits counts placements steered by the prefix-affinity table.
	AffinityHits uint64
	// Replicas maps name → lifecycle state.
	Replicas map[string]string
}

// Snapshot returns the router counters and replica states.
func (r *Router) Snapshot() Snapshot {
	s := Snapshot{
		Placed:       r.placed.Load(),
		Retried:      r.retried.Load(),
		Failovers:    r.failovers.Load(),
		Spilled:      r.spilled.Load(),
		AffinityHits: r.affHits.Load(),
		Replicas:     map[string]string{},
	}
	r.mu.RLock()
	for _, rep := range r.replicas {
		s.Replicas[rep.spec.Name] = rep.state
	}
	r.mu.RUnlock()
	return s
}

// Replica returns a replica's gateway for metrics inspection (nil when
// the replica is down).
func (r *Router) Replica(name string) *gateway.Gateway {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rep, ok := r.byName[name]
	if !ok || rep.state == StateDown {
		return nil
	}
	return rep.gw
}

// Shutdown drains every Up replica (bounded by ctx), stops the probers
// and collector, and waits for all router goroutines to exit. Safe to
// call once.
func (r *Router) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	var toStop []*replica
	for _, rep := range r.replicas {
		if rep.state == StateUp || rep.state == StateDraining {
			rep.state = StateDown
			toStop = append(toStop, rep)
		}
	}
	r.mu.Unlock()
	var (
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for _, rep := range toStop {
		wg.Add(1)
		go func(g *gateway.Gateway) {
			defer wg.Done()
			if err := g.Shutdown(ctx); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(rep.gw)
	}
	wg.Wait()
	close(r.stop)
	r.probers.Wait()
	r.collector.Wait()
	return firstErr
}
