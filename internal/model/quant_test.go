package model

import (
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/units"
)

// The quant spec must scale exactly the parameter side of the Table 1
// accounting: DataY of the four parameter sublayers, LayerParamBytes,
// ParamBytes minus the dense embedding — and, for the sparse tier,
// parameter-sublayer FLOPs — while leaving activations, the KV cache and
// attention-scoring untouched.

func TestSparseVariantScalesParamsOnly(t *testing.T) {
	dense := OPT30B
	sparse := dense.SparseVariant(0.5)
	if err := sparse.Validate(); err != nil {
		t.Fatal(err)
	}
	b, l := 4, 512
	for _, s := range []Sublayer{QKVMapping, OutProjection, FC1, FC2} {
		if got, want := sparse.DataY(Decode, s, b, l), dense.DataY(Decode, s, b, l)/2; got != want {
			t.Errorf("%s DataY = %v, want half of dense (%v)", s, got, want)
		}
		if got, want := sparse.Compute(Decode, s, b, l), dense.Compute(Decode, s, b, l)/2; got != want {
			t.Errorf("%s Compute = %v, want half of dense (%v)", s, got, want)
		}
	}
	for _, s := range []Sublayer{QKT, SV} {
		if sparse.DataY(Decode, s, b, l) != dense.DataY(Decode, s, b, l) {
			t.Errorf("%s KV operand must not be compressed", s)
		}
		if sparse.Compute(Decode, s, b, l) != dense.Compute(Decode, s, b, l) {
			t.Errorf("%s attention FLOPs must not be compressed", s)
		}
	}
	if sparse.KVBytes(b, l) != dense.KVBytes(b, l) {
		t.Error("KV cache must stay BF16 under sparsity")
	}
	if sparse.ActivationBytes(b, l, Prefill) != dense.ActivationBytes(b, l, Prefill) {
		t.Error("activations must stay BF16 under sparsity")
	}
	if got, want := sparse.LayerParamBytes(), dense.LayerParamBytes()/2; got != want {
		t.Errorf("LayerParamBytes = %v, want %v", got, want)
	}
	// ParamBytes keeps the dense embedding: the saving is layers only.
	embed := dense.ParamBytes() - dense.LayerParamBytes()*units.Bytes(dense.Layers)
	if got, want := sparse.ParamBytes(), sparse.LayerParamBytes()*units.Bytes(sparse.Layers)+embed; got != want {
		t.Errorf("ParamBytes = %v, want %v", got, want)
	}
}

func TestInt4LUTVariantFootprint(t *testing.T) {
	dense := OPT30B
	int4 := dense.Int4LUTVariant(128)
	if err := int4.Validate(); err != nil {
		t.Fatal(err)
	}
	// 0.5 + 2/128 bytes per weight over 2 dense bytes ≈ 0.2578: strictly
	// under half of the INT8 variant's 1 byte per weight.
	wantScale := (0.5 + 2.0/128) / 2
	got := float64(int4.LayerParamBytes()) / float64(dense.LayerParamBytes())
	if math.Abs(got-wantScale) > 1e-9 {
		t.Errorf("int4lut layer scale = %g, want %g", got, wantScale)
	}
	// The analytic INT8 tier prices a bare 1 byte per weight (its
	// per-column side tables exist only in the functional format), so the
	// int4 nibble payload alone is exactly half of it and the bf16 group
	// scales push the total 2/group over. The strict ≤-half-of-INT8 bound
	// is asserted against the real storage formats — where INT8 carries
	// its side tables — in internal/quant/int4_test.go.
	int8 := dense.Int8Variant()
	if limit := float64(int8.LayerParamBytes()) * (0.5 + 2.0/128); float64(int4.LayerParamBytes()) > limit {
		t.Errorf("int4lut layer footprint %v above %v·(0.5+2/group)",
			int4.LayerParamBytes(), int8.LayerParamBytes())
	}
	// FLOPs are priced unchanged: one lookup+add per weight element.
	if int4.Compute(Decode, FC1, 1, 1) != dense.Compute(Decode, FC1, 1, 1) {
		t.Error("int4lut must not change FLOP pricing")
	}
}

func TestQuantSpecValidate(t *testing.T) {
	for _, bad := range []QuantSpec{
		{Policy: QuantSparse, BlockSparsity: -0.1},
		{Policy: QuantSparse, BlockSparsity: 1},
		{Policy: QuantINT4LUT, Group: -1},
		{Policy: "turbo"},
	} {
		c := OPT6B7
		c.Quant = bad
		if err := c.Validate(); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
	c := OPT6B7
	c.Quant = QuantSpec{Policy: QuantINT4LUT} // Group 0 = default 128
	if err := c.Validate(); err != nil {
		t.Errorf("default-group int4lut rejected: %v", err)
	}
}
