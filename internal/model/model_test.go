package model

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/lia-sim/lia/internal/units"
)

func TestCatalogValidates(t *testing.T) {
	for _, c := range Catalog() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := OPT175B
	bad.Layers = 0
	if bad.Validate() == nil {
		t.Error("zero layers accepted")
	}
	bad = OPT175B
	bad.Heads = 7 // 12288 % 7 != 0
	if bad.Validate() == nil {
		t.Error("indivisible heads accepted")
	}
	bad = Llama270B
	bad.KVHeads = 3
	if bad.Validate() == nil {
		t.Error("indivisible KV heads accepted")
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("OPT-175B")
	if err != nil || c.DModel != 12288 {
		t.Fatalf("ByName(OPT-175B) = %+v, %v", c, err)
	}
	if _, err := ByName("GPT-9000"); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestTable1Prefill checks every prefill formula of Table 1 symbolically
// for OPT-175B at B=4, L=128.
func TestTable1Prefill(t *testing.T) {
	c := OPT175B
	b, l := 4, 128
	d := float64(c.DModel)
	bl := float64(b * l)
	cases := []struct {
		s          Sublayer
		dx, dy, fl float64
	}{
		{QKVMapping, 2 * bl * d, 6 * d * d, 6 * bl * d * d},
		{QKT, 2 * bl * d, 2 * bl * d, 2 * bl * float64(l) * d},
		{SV, 2 * bl * d, 2 * bl * d, 2 * bl * float64(l) * d},
		{OutProjection, 2 * bl * d, 2 * d * d, 2 * bl * d * d},
		{FC1, 2 * bl * d, 8 * d * d, 8 * bl * d * d},
		{FC2, 8 * bl * d, 8 * d * d, 8 * bl * d * d},
	}
	for _, tc := range cases {
		if got := float64(c.DataX(Prefill, tc.s, b, l)); got != tc.dx {
			t.Errorf("%s D_X = %v, want %v", tc.s, got, tc.dx)
		}
		if got := float64(c.DataY(Prefill, tc.s, b, l)); got != tc.dy {
			t.Errorf("%s D_Y = %v, want %v", tc.s, got, tc.dy)
		}
		if got := float64(c.Compute(Prefill, tc.s, b, l)); got != tc.fl {
			t.Errorf("%s C = %v, want %v", tc.s, got, tc.fl)
		}
	}
}

// TestTable1Decode checks every decode formula of Table 1.
func TestTable1Decode(t *testing.T) {
	c := OPT175B
	b, l := 8, 512
	d := float64(c.DModel)
	bf := float64(b)
	lf := float64(l)
	cases := []struct {
		s          Sublayer
		dx, dy, fl float64
	}{
		{QKVMapping, 2 * bf * d, 6 * d * d, 6 * bf * d * d},
		{QKT, 2 * bf * d, 2 * bf * lf * d, 2 * bf * lf * d},
		{SV, 2 * bf * d, 2 * bf * lf * d, 2 * bf * lf * d},
		{OutProjection, 2 * bf * d, 2 * d * d, 2 * bf * d * d},
		{FC1, 2 * bf * d, 8 * d * d, 8 * bf * d * d},
		{FC2, 8 * bf * d, 8 * d * d, 8 * bf * d * d},
	}
	for _, tc := range cases {
		if got := float64(c.DataX(Decode, tc.s, b, l)); got != tc.dx {
			t.Errorf("%s D_X = %v, want %v", tc.s, got, tc.dx)
		}
		if got := float64(c.DataY(Decode, tc.s, b, l)); got != tc.dy {
			t.Errorf("%s D_Y = %v, want %v", tc.s, got, tc.dy)
		}
		if got := float64(c.Compute(Decode, tc.s, b, l)); got != tc.fl {
			t.Errorf("%s C = %v, want %v", tc.s, got, tc.fl)
		}
	}
}

func TestParamCounts(t *testing.T) {
	// One OPT-175B decoder layer holds 24·d² bytes ≈ 3.62 GiB of BF16;
	// an OPT-30B layer ≈ 1.2 GB (Optimization-1 discussion).
	if got := OPT175B.LayerParamBytes(); math.Abs(float64(got)-24*12288*12288) > 1 {
		t.Errorf("OPT-175B layer params = %v", got)
	}
	layer30 := OPT30B.LayerParamBytes()
	if layer30 < 1.1*units.GB || layer30 > 1.35*units.GB {
		t.Errorf("OPT-30B layer params = %v, want ≈1.2 GB", layer30)
	}
	// Whole-model parameter bytes land near 2 bytes/param of the nominal
	// parameter count.
	total := OPT175B.ParamBytes()
	if total < 330*units.GB || total > 370*units.GB {
		t.Errorf("OPT-175B params = %v, want ≈350 GB", total)
	}
}

func TestMemoryFootprintHeadlines(t *testing.T) {
	// §1: OPT-175B at L=1024 goes from ~330 GB at B=1 to ~1.6 TB at B=256.
	small := OPT175B.TotalFootprint(1, 1024)
	if small < 320*units.GB || small > 380*units.GB {
		t.Errorf("B=1 footprint = %v, want ≈330-350 GB", small)
	}
	big := OPT175B.TotalFootprint(256, 1024)
	if big < 1.4*units.TB || big > 1.8*units.TB {
		t.Errorf("B=256 footprint = %v, want ≈1.6 TB", big)
	}
}

func TestKVBytes(t *testing.T) {
	// KV per layer = 4·B·L·d bytes for MHA models.
	got := OPT175B.KVBytesPerLayer(2, 100)
	want := units.Bytes(4 * 2 * 100 * 12288)
	if got != want {
		t.Errorf("KV per layer = %v, want %v", got, want)
	}
	if OPT175B.KVBytes(2, 100) != want*96 {
		t.Error("total KV != layers × per-layer")
	}
	// GQA shrinks the cache by Heads/KVHeads.
	ratio := float64(Chinchilla70B.KVBytes(1, 1000)) / float64(Llama270B.KVBytes(1, 1000))
	if math.Abs(ratio-8) > 1e-9 {
		t.Errorf("MHA/GQA KV ratio = %v, want 8", ratio)
	}
}

func TestOpsPerByteHeatmapShape(t *testing.T) {
	// Figure 1: for OPT-175B at L=512, B=180, ops/byte spans ~1 to ~50,000.
	cells := OPT175B.OpsByteHeatmap(180, 512)
	if len(cells) != 12 {
		t.Fatalf("heatmap has %d cells, want 12", len(cells))
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, cell := range cells {
		if cell.OpsPerByte < minV {
			minV = cell.OpsPerByte
		}
		if cell.OpsPerByte > maxV {
			maxV = cell.OpsPerByte
		}
	}
	if minV < 0.4 || minV > 2 {
		t.Errorf("min ops/byte = %v, want ≈1", minV)
	}
	if maxV < 20_000 || maxV > 100_000 {
		t.Errorf("max ops/byte = %v, want ≈50,000", maxV)
	}
}

func TestDecodeAttentionIsMemoryBound(t *testing.T) {
	// §6 Observation-2: QKT's decode ops/byte is constant ≈1 regardless of
	// B and L.
	for _, b := range []int{1, 16, 256} {
		for _, l := range []int{64, 512, 2048} {
			got := OPT175B.OpsPerByte(Decode, QKT, b, l)
			if got < 0.5 || got > 1.5 {
				t.Errorf("decode QKT ops/byte at B=%d L=%d = %v, want ≈1", b, l, got)
			}
		}
	}
}

func TestPrefillFC1IntensityScalesWithBL(t *testing.T) {
	// §6 Observation-2: sublayer 1's ops/byte scales with B·L in prefill.
	lo := OPT175B.OpsPerByte(Prefill, FC1, 1, 32)
	hi := OPT175B.OpsPerByte(Prefill, FC1, 64, 512)
	if hi <= lo*10 {
		t.Errorf("FC1 intensity did not scale: %v → %v", lo, hi)
	}
}

func TestMoECollapsesFFNIntensity(t *testing.T) {
	// §7.1: with more experts, FC1/FC2 ops-per-byte drops (parameters grow,
	// active FLOPs do not).
	dense := OPT30B.OpsPerByte(Decode, FC1, 64, 256)
	moe := MoE16x.OpsPerByte(Decode, FC1, 64, 256)
	if moe >= dense/8 {
		t.Errorf("MoE FC1 intensity %v not ≪ dense %v", moe, dense)
	}
}

func TestGatedFFNDoublesFC1(t *testing.T) {
	gated := Llama270B
	plain := gated
	plain.GatedFFN = false
	if gated.Compute(Prefill, FC1, 2, 64) != 2*plain.Compute(Prefill, FC1, 2, 64) {
		t.Error("gated FFN should double FC1 FLOPs")
	}
	if gated.DataX(Prefill, FC2, 2, 64) != 2*plain.DataX(Prefill, FC2, 2, 64) {
		t.Error("gated FFN should double FC2's activation input")
	}
}

func TestStageAndSublayerStrings(t *testing.T) {
	if Prefill.String() != "prefill" || Decode.String() != "decode" {
		t.Error("stage strings wrong")
	}
	names := []string{"QKV", "QxK^T", "SxV", "OutProj", "FC1", "FC2"}
	for i, s := range Sublayers() {
		if s.String() != names[i] {
			t.Errorf("sublayer %d = %q, want %q", i, s.String(), names[i])
		}
	}
}

// Property: all byte sizes and FLOP counts are positive and monotone in B.
func TestFormulasMonotoneInBatch(t *testing.T) {
	c := OPT30B
	f := func(rawB uint8, rawL uint16) bool {
		b := int(rawB%64) + 1
		l := int(rawL%512) + 1
		for _, stage := range []Stage{Prefill, Decode} {
			for _, s := range Sublayers() {
				if c.DataX(stage, s, b, l) <= 0 || c.DataY(stage, s, b, l) <= 0 || c.Compute(stage, s, b, l) <= 0 {
					return false
				}
				if c.Compute(stage, s, 2*b, l) < c.Compute(stage, s, b, l) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewCatalogModels(t *testing.T) {
	if err := Falcon40B.Validate(); err != nil {
		t.Error(err)
	}
	if err := Mistral7B.Validate(); err != nil {
		t.Error(err)
	}
	// Falcon's aggressive GQA: 16 query heads per KV head.
	if Falcon40B.Heads/Falcon40B.KVHeads != 16 {
		t.Error("Falcon grouping wrong")
	}
	// Mistral-7B fits a 40 GB GPU outright (the no-offload control).
	if Mistral7B.ParamBytes() > 16e9 {
		t.Errorf("Mistral-7B params = %v, want <16 GB", Mistral7B.ParamBytes())
	}
	// Parameter counts land near the nominal sizes.
	f := float64(Falcon40B.ParamBytes()) / 2
	if f < 35e9 || f > 50e9 {
		t.Errorf("Falcon-40B param count ≈ %.1fB, want ≈40-45B", f/1e9)
	}
}

func TestInt8Variant(t *testing.T) {
	v := OPT175B.Int8Variant()
	if v.BytesPerParam != 1 || v.Name != "OPT-175B-int8" {
		t.Errorf("variant = %+v", v)
	}
	if v.ParamBytes()*2 != OPT175B.ParamBytes() {
		t.Error("INT8 must halve parameter bytes")
	}
	// The original is untouched.
	if OPT175B.BytesPerParam != 2 {
		t.Error("Int8Variant mutated the catalog entry")
	}
}
