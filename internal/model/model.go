// Package model describes decoder-only transformer architectures (the OPT
// family the paper evaluates, plus Llama2, Chinchilla, Bloom, and a
// Mixture-of-Experts variant for §7.1's adaptability discussion) and
// implements the paper's Table 1: the operand sizes D_X and D_Y and the
// FLOP count C of every GEMM/GEMV sublayer in a decoder layer, for both
// the prefill and decoding stages, in BF16.
//
// These formulas are the inputs to LIA's compute-offloading optimizer
// (package core) and the memory planner (package memplan); the ops/byte
// heatmap of Figure 1 falls directly out of them.
package model

import (
	"fmt"

	"github.com/lia-sim/lia/internal/units"
)

// Stage distinguishes the two phases of autoregressive inference.
type Stage int

// Inference stages.
const (
	// Prefill (the "Sum" stage) processes the whole input sequence at once
	// and materializes the KV cache.
	Prefill Stage = iota
	// Decode (the "Gen" stage) processes one new token per step, reusing
	// the KV cache.
	Decode
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	if s == Prefill {
		return "prefill"
	}
	return "decode"
}

// Sublayer indexes the six GEMM/GEMV sublayers of a decoder layer in
// execution order, matching Figure 6 (softmax/layernorm/residual are fused
// into their neighbours, §2.1).
type Sublayer int

// The six sublayers.
const (
	// QKVMapping projects the hidden states to queries, keys and values.
	QKVMapping Sublayer = iota
	// QKT is the attention-scoring product Q×Kᵀ against the KV cache.
	QKT
	// SV is the attention-weighted value product S×V.
	SV
	// OutProjection projects attention output back to the model dimension
	// (carries the attention residual).
	OutProjection
	// FC1 is the first feed-forward matrix (d_model → d_ff).
	FC1
	// FC2 is the second feed-forward matrix (d_ff → d_model, carries the
	// FFN residual).
	FC2
)

// NumSublayers is the length of an offloading vector.
const NumSublayers = 6

// String implements fmt.Stringer.
func (s Sublayer) String() string {
	switch s {
	case QKVMapping:
		return "QKV"
	case QKT:
		return "QxK^T"
	case SV:
		return "SxV"
	case OutProjection:
		return "OutProj"
	case FC1:
		return "FC1"
	case FC2:
		return "FC2"
	default:
		return fmt.Sprintf("Sublayer(%d)", int(s))
	}
}

// Sublayers lists all six in execution order.
func Sublayers() [NumSublayers]Sublayer {
	return [NumSublayers]Sublayer{QKVMapping, QKT, SV, OutProjection, FC1, FC2}
}

// QuantPolicy names a weight-compression compute tier. The empty string
// is dense BF16 (the paper's baseline). Policies change how parameter
// bytes and parameter-sublayer FLOPs are priced; activations and the KV
// cache stay BF16 under every policy (§6: attention is the precision-
// and bandwidth-sensitive path).
type QuantPolicy string

// The weight-compression tiers the stack serves.
const (
	// QuantDense is uncompressed BF16 weights.
	QuantDense QuantPolicy = ""
	// QuantSparse is SparAMX-style block sparsity: whole AMX tile blocks
	// of the weight are zero and the kernel skips them, so parameter
	// bytes and parameter-sublayer FLOPs both scale by the nonzero-block
	// fraction (cycles ∝ nonzero blocks — the calibrated kernel model).
	QuantSparse QuantPolicy = "sparse"
	// QuantINT4LUT is SAIL-style INT4 group quantization served through
	// the lookup-table GEMV kernel: 0.5 bytes per weight plus one 2-byte
	// bf16 scale per (group, column). FLOPs are priced unchanged — the
	// LUT path does one lookup+add per weight element, the same lane
	// count as a MAC.
	QuantINT4LUT QuantPolicy = "int4lut"
)

// QuantSpec parameterizes a weight-compression tier on a Config.
type QuantSpec struct {
	// Policy selects the tier (QuantDense when empty).
	Policy QuantPolicy
	// BlockSparsity is the zero tile-block fraction in [0, 1) for
	// QuantSparse.
	BlockSparsity float64
	// Group is the quantization group length along K for QuantINT4LUT
	// (0 selects 128, matching quant.DefaultGroupINT4).
	Group int
}

// defaultInt4Group mirrors quant.DefaultGroupINT4 (model cannot import
// quant — it sits below it).
const defaultInt4Group = 128

// paramByteScale returns the multiplier compressed parameter bytes carry
// relative to the dense BF16 footprint (1 for dense; the zero-block
// bitmap's bit-per-block is below the accessors' byte resolution and is
// priced at zero).
func (q QuantSpec) paramByteScale(bytesPerParam int) float64 {
	switch q.Policy {
	case QuantSparse:
		return 1 - q.BlockSparsity
	case QuantINT4LUT:
		group := q.Group
		if group <= 0 {
			group = defaultInt4Group
		}
		// 0.5 nibble bytes per weight plus 2 scale bytes amortized over a
		// group of weights, against bytesPerParam dense bytes.
		return (0.5 + 2/float64(group)) / float64(bytesPerParam)
	default:
		return 1
	}
}

// paramFLOPScale returns the multiplier compressed parameter-sublayer
// FLOPs carry: the sparse kernel skips zero blocks outright (cycles ∝
// nonzero blocks, pinned against the emulated kernel by the amx tests),
// every other tier executes the full MAC (or lookup+add) grid.
func (q QuantSpec) paramFLOPScale() float64 {
	if q.Policy == QuantSparse {
		return 1 - q.BlockSparsity
	}
	return 1
}

// Validate reports malformed quantization specs.
func (q QuantSpec) Validate() error {
	switch q.Policy {
	case QuantDense:
	case QuantSparse:
		if q.BlockSparsity < 0 || q.BlockSparsity >= 1 {
			return fmt.Errorf("model: block sparsity must be in [0, 1), got %g", q.BlockSparsity)
		}
	case QuantINT4LUT:
		if q.Group < 0 {
			return fmt.Errorf("model: int4 group must be ≥ 0, got %d", q.Group)
		}
	default:
		return fmt.Errorf("model: unknown quant policy %q", q.Policy)
	}
	return nil
}

// Config describes one decoder-only transformer architecture.
type Config struct {
	// Name identifies the model, e.g. "OPT-175B".
	Name string
	// Layers is the decoder layer count N.
	Layers int
	// DModel is the hidden dimension d_m.
	DModel int
	// Heads is the attention head count n_h.
	Heads int
	// KVHeads is the key/value head count (== Heads for multi-head
	// attention; smaller for grouped-query attention as in Llama2-70B).
	KVHeads int
	// DFF is the feed-forward intermediate dimension (4·DModel for OPT).
	DFF int
	// VocabSize is the token vocabulary size.
	VocabSize int
	// MaxSeqLen is the maximum model-defined sequence length.
	MaxSeqLen int
	// BytesPerParam is the parameter width (2 for BF16).
	BytesPerParam int
	// Experts is the FFN expert count: 1 for dense models; >1 models a
	// Mixture-of-Experts FFN whose full expert parameters must be resident
	// (or transferred) while only one expert's FLOPs execute per token.
	Experts int
	// GatedFFN marks a SwiGLU-style FFN (gate + up projections), which
	// doubles FC1's parameters and FLOPs.
	GatedFFN bool
	// RoPE selects rotary position embeddings instead of learned absolute
	// positions (the Llama family). It changes the functional engine's
	// attention math, not the Table 1 formulas.
	RoPE bool
	// Quant selects the weight-compression compute tier the deployment
	// serves (dense BF16 when zero). It scales parameter-operand bytes
	// (DataY of the four parameter sublayers, LayerParamBytes, ParamBytes)
	// and — for the sparse tier — parameter-sublayer FLOPs; activations
	// and the KV cache stay BF16.
	Quant QuantSpec
}

// Validate reports structural errors in the configuration.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("model %s: layers must be positive", c.Name)
	case c.DModel <= 0 || c.Heads <= 0 || c.KVHeads <= 0:
		return fmt.Errorf("model %s: dimensions must be positive", c.Name)
	case c.DModel%c.Heads != 0:
		return fmt.Errorf("model %s: d_model %d not divisible by %d heads", c.Name, c.DModel, c.Heads)
	case c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model %s: heads %d not divisible by %d KV heads", c.Name, c.Heads, c.KVHeads)
	case c.DFF <= 0 || c.BytesPerParam <= 0 || c.Experts <= 0:
		return fmt.Errorf("model %s: DFF/BytesPerParam/Experts must be positive", c.Name)
	case c.RoPE && c.HeadDim()%2 != 0:
		return fmt.Errorf("model %s: RoPE requires an even head dimension, got %d", c.Name, c.HeadDim())
	}
	if err := c.Quant.Validate(); err != nil {
		return fmt.Errorf("model %s: %w", c.Name, err)
	}
	return nil
}

// HeadDim returns d_h = d_model / n_h.
func (c Config) HeadDim() int { return c.DModel / c.Heads }

// KVDim is the width of the K (or V) projection output — d_h · KV heads,
// smaller than DModel under grouped-query attention.
func (c Config) KVDim() int { return c.HeadDim() * c.KVHeads }

// elem is the byte width of one value.
func (c Config) elem() int { return c.BytesPerParam }

// The model catalog. OPT dimensions follow Zhang et al. (2022); the three
// §7.7 generalizability models follow their respective papers.
var (
	// OPT6B7 is OPT-6.7B, small enough to fit one GPU — handy in tests.
	OPT6B7 = Config{Name: "OPT-6.7B", Layers: 32, DModel: 4096, Heads: 32, KVHeads: 32, DFF: 16384, VocabSize: 50272, MaxSeqLen: 2048, BytesPerParam: 2, Experts: 1}
	// OPT13B is OPT-13B.
	OPT13B = Config{Name: "OPT-13B", Layers: 40, DModel: 5120, Heads: 40, KVHeads: 40, DFF: 20480, VocabSize: 50272, MaxSeqLen: 2048, BytesPerParam: 2, Experts: 1}
	// OPT30B is OPT-30B (evaluated on SPR-A100).
	OPT30B = Config{Name: "OPT-30B", Layers: 48, DModel: 7168, Heads: 56, KVHeads: 56, DFF: 28672, VocabSize: 50272, MaxSeqLen: 2048, BytesPerParam: 2, Experts: 1}
	// OPT66B is OPT-66B (evaluated on SPR-H100).
	OPT66B = Config{Name: "OPT-66B", Layers: 64, DModel: 9216, Heads: 72, KVHeads: 72, DFF: 36864, VocabSize: 50272, MaxSeqLen: 2048, BytesPerParam: 2, Experts: 1}
	// OPT175B is the paper's flagship benchmark.
	OPT175B = Config{Name: "OPT-175B", Layers: 96, DModel: 12288, Heads: 96, KVHeads: 96, DFF: 49152, VocabSize: 50272, MaxSeqLen: 2048, BytesPerParam: 2, Experts: 1}
	// Llama270B uses grouped-query attention and a gated FFN (§7.7, §7.9).
	Llama270B = Config{Name: "Llama2-70B", Layers: 80, DModel: 8192, Heads: 64, KVHeads: 8, DFF: 28672, VocabSize: 32000, MaxSeqLen: 4096, BytesPerParam: 2, GatedFFN: true, RoPE: true, Experts: 1}
	// Chinchilla70B is DeepMind's compute-optimal 70B model (§7.7).
	Chinchilla70B = Config{Name: "Chinchilla-70B", Layers: 80, DModel: 8192, Heads: 64, KVHeads: 64, DFF: 32768, VocabSize: 32000, MaxSeqLen: 2048, BytesPerParam: 2, Experts: 1}
	// Bloom176B is BigScience's multilingual 176B model (§7.7).
	Bloom176B = Config{Name: "Bloom-176B", Layers: 70, DModel: 14336, Heads: 112, KVHeads: 112, DFF: 57344, VocabSize: 250880, MaxSeqLen: 2048, BytesPerParam: 2, Experts: 1}
	// MoE16x is a Switch-style 16-expert variant of OPT-30B used for
	// §7.1's adaptability analysis: FFN parameters grow 16× while active
	// FLOPs stay constant, collapsing FC1/FC2's ops-per-byte.
	MoE16x = Config{Name: "MoE-16x-30B", Layers: 48, DModel: 7168, Heads: 56, KVHeads: 56, DFF: 28672, VocabSize: 50272, MaxSeqLen: 2048, BytesPerParam: 2, Experts: 16}
	// Falcon40B uses 8-group GQA at an unusually high head count.
	Falcon40B = Config{Name: "Falcon-40B", Layers: 60, DModel: 8192, Heads: 128, KVHeads: 8, DFF: 32768, VocabSize: 65024, MaxSeqLen: 2048, BytesPerParam: 2, Experts: 1}
	// Mistral7B is a small gated-FFN GQA model that fits a single GPU —
	// the regime where offloading is unnecessary (a useful control).
	Mistral7B = Config{Name: "Mistral-7B", Layers: 32, DModel: 4096, Heads: 32, KVHeads: 8, DFF: 14336, VocabSize: 32000, MaxSeqLen: 4096, BytesPerParam: 2, GatedFFN: true, RoPE: true, Experts: 1}
)

// Int8Variant returns the model with 1-byte parameters — the INT8
// post-training-quantized deployment. Every Table 1 operand size, the KV
// cache, and the parameter footprint halve; FLOP counts are unchanged
// (the analytical model conservatively keeps BF16-class throughput).
func (c Config) Int8Variant() Config {
	out := c
	out.Name = c.Name + "-int8"
	out.BytesPerParam = 1
	return out
}

// SparseVariant returns the model under the block-sparse compute tier at
// the given zero tile-block fraction: parameter bytes and parameter-
// sublayer FLOPs both scale by the nonzero fraction (the kernel skips
// zero blocks' TileLoads and TDP — cycles ∝ nonzero blocks), while
// activations and KV cache stay BF16. The smaller layer footprint is
// what memplan turns into more pinned layers and bigger KV budgets.
func (c Config) SparseVariant(blockSparsity float64) Config {
	out := c
	out.Name = fmt.Sprintf("%s-sparse%.0f", c.Name, 100*blockSparsity)
	out.Quant = QuantSpec{Policy: QuantSparse, BlockSparsity: blockSparsity}
	return out
}

// Int4LUTVariant returns the model under the INT4 LUT-GEMV compute tier
// with the given quantization group length (0 = 128): parameter bytes
// shrink to 0.5 + 2/group per weight while FLOPs are priced unchanged.
func (c Config) Int4LUTVariant(group int) Config {
	out := c
	out.Name = c.Name + "-int4lut"
	out.Quant = QuantSpec{Policy: QuantINT4LUT, Group: group}
	return out
}

// Catalog lists every built-in model.
func Catalog() []Config {
	return []Config{OPT6B7, OPT13B, OPT30B, OPT66B, OPT175B, Llama270B, Chinchilla70B, Bloom176B, MoE16x, Falcon40B, Mistral7B}
}

// ByName returns the catalog model with the given name.
func ByName(name string) (Config, error) {
	for _, c := range Catalog() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown model %q", name)
}

// ffnFC1Width returns FC1's effective output width in elements (doubled
// for gated FFNs, which fuse the gate and up projections).
func (c Config) ffnFC1Width() int {
	if c.GatedFFN {
		return 2 * c.DFF
	}
	return c.DFF
}

// DataX returns D_X, the byte size of a sublayer's first (activation)
// operand, per Table 1.
func (c Config) DataX(stage Stage, s Sublayer, b, l int) units.Bytes {
	rows := b * l
	if stage == Decode {
		rows = b
	}
	e := c.elem()
	switch s {
	case QKVMapping, QKT, OutProjection, FC1:
		return units.Bytes(e * rows * c.DModel)
	case SV:
		// Table 1 counts the attention-probability operand at the hidden
		// width (scores for the active tokens).
		return units.Bytes(e * rows * c.DModel)
	case FC2:
		return units.Bytes(e * rows * c.ffnFC1Width())
	default:
		return 0
	}
}

// scaleParamBytes applies the quant tier's compression to a dense
// parameter-operand byte count.
func (c Config) scaleParamBytes(b units.Bytes) units.Bytes {
	scale := c.Quant.paramByteScale(c.elem())
	if scale == 1 {
		return b
	}
	return units.Bytes(float64(b) * scale)
}

// DataY returns D_Y, the byte size of a sublayer's second operand
// (parameters, or KV cache for the attention-scoring sublayers), per
// Table 1. l is the *total* context length (input tokens so far) — during
// decode the KV cache spans it. Parameter operands shrink under the
// Quant tier; the KV-cache operands of QKT/SV never do.
func (c Config) DataY(stage Stage, s Sublayer, b, l int) units.Bytes {
	e := c.elem()
	d := c.DModel
	switch s {
	case QKVMapping:
		// d×d query projection plus two d×kv projections.
		return c.scaleParamBytes(units.Bytes(e * (d*d + 2*d*c.KVDim())))
	case QKT, SV:
		// K (or V): one of the two KV-cache halves, unique per batch item.
		return units.Bytes(e * b * l * c.KVDim())
	case OutProjection:
		return c.scaleParamBytes(units.Bytes(e * d * d))
	case FC1:
		return c.scaleParamBytes(units.Bytes(e * d * c.ffnFC1Width() * c.Experts))
	case FC2:
		return c.scaleParamBytes(units.Bytes(e * c.DFF * d * c.Experts))
	default:
		return 0
	}
}

// Compute returns C, the FLOP count of a sublayer, per Table 1. l is the
// input length during prefill and the current context length during
// decode.
func (c Config) Compute(stage Stage, s Sublayer, b, l int) units.FLOPs {
	rows := b * l
	if stage == Decode {
		rows = b
	}
	d := c.DModel
	// The sparse tier skips zero blocks' work outright, so parameter-
	// sublayer FLOPs scale with the nonzero fraction (attention scoring
	// against the BF16 KV cache is never compressed).
	scale := func(f units.FLOPs) units.FLOPs {
		if s := c.Quant.paramFLOPScale(); s != 1 {
			return units.FLOPs(float64(f) * s)
		}
		return f
	}
	switch s {
	case QKVMapping:
		return scale(units.FLOPs(2 * rows * d * (d + 2*c.KVDim())))
	case QKT, SV:
		// Prefill: 2·B·L²·d; decode: 2·B·L·d (per Table 1). Attention
		// scoring always spans the full context per query row.
		return units.FLOPs(2 * rows * l * d)
	case OutProjection:
		return scale(units.FLOPs(2 * rows * d * d))
	case FC1:
		return scale(units.FLOPs(2 * rows * d * c.ffnFC1Width()))
	case FC2:
		return scale(units.FLOPs(2 * rows * c.DFF * d))
	default:
		return 0
	}
}

// OpsPerByte returns the sublayer's arithmetic intensity C/(D_X+D_Y),
// the quantity Figure 1's heatmap plots.
func (c Config) OpsPerByte(stage Stage, s Sublayer, b, l int) float64 {
	return units.OpsPerByte(c.Compute(stage, s, b, l), c.DataX(stage, s, b, l)+c.DataY(stage, s, b, l))
}

// KVBytes returns the KV-cache footprint for a batch of b sequences of
// context length l across all layers.
func (c Config) KVBytes(b, l int) units.Bytes {
	perLayer := units.Bytes(2 * c.elem() * b * l * c.KVDim()) // K and V
	return perLayer * units.Bytes(c.Layers)
}

// KVBytesPerLayer returns one layer's KV-cache footprint — D_KV in
// Eq. (9), the store cost when sublayer 1 runs on the GPU but the cache
// lives in CPU memory.
func (c Config) KVBytesPerLayer(b, l int) units.Bytes {
	return units.Bytes(2 * c.elem() * b * l * c.KVDim())
}

// LayerParamBytes returns one decoder layer's parameter footprint
// (24·d_m² bytes for dense OPT models — e.g. ~1.2 GB for OPT-30B, the
// Optimization-1 granularity). Compressed tiers (Quant) shrink it, which
// is exactly what lets PlanLIAGPU pin more layers and PlanHost budget
// more KV; the embedding table (ParamBytes) stays dense under every tier.
func (c Config) LayerParamBytes() units.Bytes {
	var sum units.Bytes
	for _, s := range Sublayers() {
		if s == QKT || s == SV {
			continue // KV cache, not parameters
		}
		sum += c.DataY(Prefill, s, 1, 1)
	}
	return sum
}

// ParamBytes returns the whole model's parameter footprint including the
// embedding table and LM head.
func (c Config) ParamBytes() units.Bytes {
	embed := units.Bytes(2 * c.elem() * c.VocabSize * c.DModel) // embedding + tied LM head
	return c.LayerParamBytes()*units.Bytes(c.Layers) + embed
}

// ActivationBytes returns the transient per-layer activation working set
// for a batch of b rows (hidden states at model and FFN width).
func (c Config) ActivationBytes(b, l int, stage Stage) units.Bytes {
	rows := b * l
	if stage == Decode {
		rows = b
	}
	return units.Bytes(c.elem() * rows * (c.DModel + c.ffnFC1Width()))
}

// WorkingSetBytes returns the peak memory needed to hold one decoder
// layer's parameters plus its activations and KV slice — the amount a
// memory-offloading framework must stage on the GPU per layer.
func (c Config) WorkingSetBytes(b, l int, stage Stage) units.Bytes {
	return c.LayerParamBytes() + c.ActivationBytes(b, l, stage) + c.KVBytesPerLayer(b, l)
}

// TotalFootprint returns the paper's headline memory requirement: all
// parameters plus KV cache and activations for the batch (e.g. ~1.4 TB
// for OPT-175B at B=1024, L=256).
func (c Config) TotalFootprint(b, l int) units.Bytes {
	return c.ParamBytes() + c.KVBytes(b, l) + c.ActivationBytes(b, l, Prefill)
}

// HeatmapCell is one entry of Figure 1's ops/byte heatmap.
type HeatmapCell struct {
	// Stage is prefill or decode.
	Stage Stage
	// Sublayer is the decoder sublayer.
	Sublayer Sublayer
	// OpsPerByte is the arithmetic intensity.
	OpsPerByte float64
}

// OpsByteHeatmap reproduces Figure 1: the ops/byte of all twelve
// stage × sublayer combinations for the given batch size and input length.
func (c Config) OpsByteHeatmap(b, l int) []HeatmapCell {
	var cells []HeatmapCell
	for _, stage := range []Stage{Prefill, Decode} {
		for _, s := range Sublayers() {
			cells = append(cells, HeatmapCell{
				Stage:      stage,
				Sublayer:   s,
				OpsPerByte: c.OpsPerByte(stage, s, b, l),
			})
		}
	}
	return cells
}
