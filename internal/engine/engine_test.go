package engine

import (
	"strings"
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/trace"
)

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustFit(t *testing.T, cfg Config) Result {
	t.Helper()
	r := run(t, cfg)
	if r.OOM {
		t.Fatalf("%v on %s OOMed: %s", cfg.Framework, cfg.System.Name, r.OOMReason)
	}
	return r
}

func wl(b, lin, lout int) trace.Workload {
	return trace.Workload{Batch: b, InputLen: lin, OutputLen: lout}
}

func TestFrameworkString(t *testing.T) {
	names := map[Framework]string{LIA: "LIA", IPEX: "IPEX", FlexGen: "FlexGen", PowerInfer: "PowerInfer", MultiGPU: "MultiGPU-TP8"}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d → %q, want %q", int(f), f.String(), want)
		}
	}
}

func TestRunValidatesInputs(t *testing.T) {
	if _, err := Run(Config{Framework: LIA, System: hw.SPRA100, Model: model.OPT30B}); err == nil {
		t.Error("zero workload accepted")
	}
	if _, err := Run(Config{Framework: Framework(99), System: hw.SPRA100, Model: model.OPT30B, Workload: wl(1, 32, 32)}); err == nil {
		t.Error("unknown framework accepted")
	}
}

// TestFigure10OnlineLatency reproduces the online (B=1) comparison on
// SPR-A100: LIA beats IPEX modestly and FlexGen massively, with the gap
// over FlexGen growing from OPT-30B to OPT-175B.
func TestFigure10OnlineLatency(t *testing.T) {
	for _, tc := range []struct {
		m              model.Config
		ipexLo, ipexHi float64
		fgLo           float64
		assumeHostFits bool
	}{
		{model.OPT30B, 1.2, 3.5, 3.0, false},
		{model.OPT175B, 1.0, 2.0, 4.0, false},
	} {
		w := wl(1, 512, 32)
		base := Config{System: hw.SPRA100, Model: tc.m, Workload: w, AssumeHostCapacity: tc.assumeHostFits}
		lia := mustFit(t, withFW(base, LIA))
		ipex := mustFit(t, withFW(base, IPEX))
		fg := mustFit(t, withFW(base, FlexGen))
		ipexRatio := float64(ipex.Latency) / float64(lia.Latency)
		fgRatio := float64(fg.Latency) / float64(lia.Latency)
		if ipexRatio < tc.ipexLo || ipexRatio > tc.ipexHi {
			t.Errorf("%s: IPEX/LIA = %.2f, want [%.1f, %.1f] (paper: 1.1-2.1)", tc.m.Name, ipexRatio, tc.ipexLo, tc.ipexHi)
		}
		if fgRatio < tc.fgLo {
			t.Errorf("%s: FlexGen/LIA = %.2f, want ≥%.1f (paper: 4.0-12)", tc.m.Name, fgRatio, tc.fgLo)
		}
	}
}

func withFW(cfg Config, f Framework) Config {
	cfg.Framework = f
	return cfg
}

// TestFigure10GapGrowsWithModel: LIA's advantage over FlexGen widens from
// OPT-30B to OPT-175B (§7.2).
func TestFigure10GapGrowsWithModel(t *testing.T) {
	ratio := func(m model.Config) float64 {
		base := Config{System: hw.SPRA100, Model: m, Workload: wl(1, 256, 32)}
		lia := mustFit(t, withFW(base, LIA))
		fg := mustFit(t, withFW(base, FlexGen))
		return float64(fg.Latency) / float64(lia.Latency)
	}
	if r30, r175 := ratio(model.OPT30B), ratio(model.OPT175B); r175 <= r30 {
		t.Errorf("FlexGen/LIA gap should grow with model size: %.2f → %.2f", r30, r175)
	}
}

// TestFigure10H100FasterThanA100: LIA on SPR-H100 beats SPR-A100 for
// OPT-175B (paper: 1.1-1.3×).
func TestFigure10H100FasterThanA100(t *testing.T) {
	w := wl(1, 512, 32)
	a := mustFit(t, Config{Framework: LIA, System: hw.SPRA100, Model: model.OPT175B, Workload: w})
	h := mustFit(t, Config{Framework: LIA, System: hw.SPRH100, Model: model.OPT175B, Workload: w})
	ratio := float64(a.Latency) / float64(h.Latency)
	if ratio < 1.0 || ratio > 1.8 {
		t.Errorf("A100/H100 LIA latency ratio = %.2f, want [1.0, 1.8] (paper: 1.1-1.3)", ratio)
	}
}

// TestFigure11OfflineThroughput: at B=64 and B=900, LIA's throughput
// leads both baselines on SPR-A100 for OPT-30B.
func TestFigure11OfflineThroughput(t *testing.T) {
	for _, b := range []int{64, 900} {
		base := Config{System: hw.SPRA100, Model: model.OPT30B, Workload: wl(b, 256, 32), AssumeHostCapacity: true}
		lia := mustFit(t, withFW(base, LIA))
		ipex := mustFit(t, withFW(base, IPEX))
		fg := mustFit(t, withFW(base, FlexGen))
		if lia.Throughput <= ipex.Throughput {
			t.Errorf("B=%d: LIA %.1f tok/s ≤ IPEX %.1f", b, lia.Throughput, ipex.Throughput)
		}
		if lia.Throughput <= fg.Throughput {
			t.Errorf("B=%d: LIA %.1f tok/s ≤ FlexGen %.1f", b, lia.Throughput, fg.Throughput)
		}
	}
}

// TestThroughputGrowsWithBatch: B=900 yields far higher throughput than
// B=64 (Figure 11's main vertical trend).
func TestThroughputGrowsWithBatch(t *testing.T) {
	base := Config{Framework: LIA, System: hw.SPRA100, Model: model.OPT30B, AssumeHostCapacity: true}
	small := mustFit(t, func() Config { c := base; c.Workload = wl(64, 32, 32); return c }())
	big := mustFit(t, func() Config { c := base; c.Workload = wl(900, 32, 32); return c }())
	if big.Throughput <= 2*small.Throughput {
		t.Errorf("B=900 throughput %.1f not ≫ B=64 %.1f", big.Throughput, small.Throughput)
	}
}

// TestTable4Ablation reproduces the ablation orderings: every disabled
// optimization hurts, Optimization-1 matters most at B=1, Optimization-2
// at B=900, and FlexGen's policy is far worse at B=1/B=64 but ties at
// B=900.
func TestTable4Ablation(t *testing.T) {
	base := Config{Framework: LIA, System: hw.SPRA100, Model: model.OPT30B, AssumeHostCapacity: true}
	lat := func(b int, ab Ablation) float64 {
		c := base
		c.Workload = wl(b, 256, 32)
		c.Ablation = ab
		return float64(mustFit(t, c).Latency)
	}
	fgPolicy := core.PartialCPU
	for _, b := range []int{1, 64, 900} {
		full := lat(b, Ablation{})
		noOpt1 := lat(b, Ablation{NoOpt1: true})
		noOpt2 := lat(b, Ablation{NoOpt2: true})
		forced := lat(b, Ablation{ForcePolicy: &fgPolicy})
		if noOpt1 < full*0.999 || noOpt2 < full*0.999 || forced < full*0.999 {
			t.Errorf("B=%d: ablations should not beat full LIA (full=%.2f, noOpt1=%.2f, noOpt2=%.2f, forced=%.2f)",
				b, full, noOpt1, noOpt2, forced)
		}
		switch b {
		case 1:
			if noOpt1/full < 1.3 {
				t.Errorf("B=1: Optimization-1 should matter strongly (ratio %.2f, paper: 2.0)", noOpt1/full)
			}
			if forced/full < 2 {
				t.Errorf("B=1: FlexGen policy should be much worse (ratio %.2f, paper: 6.2)", forced/full)
			}
		case 900:
			if noOpt2/full < 1.1 {
				t.Errorf("B=900: Optimization-2 should matter (ratio %.2f, paper: 1.5)", noOpt2/full)
			}
			if forced/full > 1.2 {
				t.Errorf("B=900: forced FlexGen policy should ≈ tie (ratio %.2f, paper: 1.0)", forced/full)
			}
		}
	}
}

// TestTable5BreakdownShape: LIA's communication time is far below
// FlexGen's, and IPEX has CPU time only.
func TestTable5BreakdownShape(t *testing.T) {
	base := Config{System: hw.SPRA100, Model: model.OPT30B, Workload: wl(64, 256, 32), AssumeHostCapacity: true}
	lia := mustFit(t, withFW(base, LIA))
	ipex := mustFit(t, withFW(base, IPEX))
	fg := mustFit(t, withFW(base, FlexGen))
	if ipex.Breakdown.GPU != 0 || ipex.Breakdown.Comm != 0 {
		t.Error("IPEX must be CPU-only")
	}
	if ipex.Breakdown.CPU <= lia.Breakdown.CPU {
		t.Error("IPEX should spend more CPU time than LIA (paper: 75.7 vs 16.9)")
	}
	if lia.Breakdown.Comm >= fg.Breakdown.Comm {
		t.Errorf("LIA comm %v should undercut FlexGen's %v (paper: 3.9 vs 86)", lia.Breakdown.Comm, fg.Breakdown.Comm)
	}
}

// TestTable3CXLNeutrality: CXL parameter offloading costs ≤ a few percent
// of throughput at the same B while cutting DDR usage substantially.
func TestTable3CXLNeutrality(t *testing.T) {
	sys := hw.SPRA100.WithCXL(2, hw.SamsungCXL128)
	w := wl(900, 32, 32)
	ddr := mustFit(t, Config{Framework: LIA, System: sys, Model: model.OPT30B, Workload: w})
	cxlRun := mustFit(t, Config{Framework: LIA, System: sys, Model: model.OPT30B, Workload: w, Placement: cxl.PolicyPlacement()})
	ratio := cxlRun.Throughput / ddr.Throughput
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("CXL/DDR throughput ratio = %.3f, want within 1%%–5%% (paper: within 1%%)", ratio)
	}
	if cxlRun.HostPlan.DDRUsed >= ddr.HostPlan.DDRUsed {
		t.Error("CXL placement must reduce DDR usage")
	}
	frac := cxlRun.HostPlan.OffloadedFraction
	if frac < 0.30 || frac > 0.55 {
		t.Errorf("offloaded fraction = %.2f, want ≈0.43", frac)
	}
}

// TestPowerInferComparison reproduces Figure 15's shape on GNR-A100 with
// Llama2-70B: LIA is faster online, and PowerInfer OOMs at B=900.
func TestPowerInferComparison(t *testing.T) {
	base := Config{System: hw.GNRA100, Model: model.Llama270B, Workload: wl(1, 512, 32)}
	lia := mustFit(t, withFW(base, LIA))
	pi := mustFit(t, withFW(base, PowerInfer))
	ratio := float64(pi.Latency) / float64(lia.Latency)
	if ratio < 1.2 {
		t.Errorf("PowerInfer/LIA latency = %.2f, want ≥1.2 (paper: 1.4-9.0)", ratio)
	}
	big := base
	big.Workload = wl(900, 512, 32)
	big.AssumeHostCapacity = true
	piBig := run(t, withFW(big, PowerInfer))
	if !piBig.OOM || !strings.Contains(piBig.OOMReason, "OOM") {
		t.Errorf("PowerInfer at B=900 should CUDA-OOM, got %+v", piBig.OOMReason)
	}
	liaBig := mustFit(t, withFW(big, LIA))
	if liaBig.Throughput <= lia.Throughput {
		t.Error("LIA should scale throughput with batch where PowerInfer cannot")
	}
}

// TestFigure14MultiGPU: per-GPU throughput favors LIA at B=1; the DGX
// wins per-GPU at B=64; and the DGX OOMs at B=900 where LIA keeps going.
func TestFigure14MultiGPU(t *testing.T) {
	liaCfg := Config{Framework: LIA, System: hw.GNRA100, Model: model.OPT175B, AssumeHostCapacity: true}
	dgxCfg := Config{Framework: MultiGPU, System: hw.DGXA100, Model: model.OPT175B, AssumeHostCapacity: true}

	perGPU := func(r Result, n int) float64 { return r.Throughput / float64(n) }

	// A decode-dominated shape, where tensor parallelism's per-layer
	// synchronization overhead shows (Figure 14's regime).
	liaCfg.Workload, dgxCfg.Workload = wl(1, 32, 256), wl(1, 32, 256)
	lia1 := mustFit(t, liaCfg)
	dgx1 := mustFit(t, dgxCfg)
	if perGPU(lia1, 1) <= perGPU(dgx1, 8) {
		t.Errorf("B=1: LIA per-GPU %.2f should beat DGX %.2f (paper: 1.4-1.8x)", perGPU(lia1, 1), perGPU(dgx1, 8))
	}

	liaCfg.Workload, dgxCfg.Workload = wl(64, 32, 256), wl(64, 32, 256)
	lia64 := mustFit(t, liaCfg)
	dgx64 := mustFit(t, dgxCfg)
	if perGPU(lia64, 1) >= perGPU(dgx64, 8) {
		t.Errorf("B=64: DGX per-GPU %.2f should lead LIA %.2f (paper: LIA 30-33%% lower)", perGPU(dgx64, 8), perGPU(lia64, 1))
	}

	dgxCfg.Workload = wl(900, 512, 32)
	dgx900 := run(t, dgxCfg)
	if !dgx900.OOM {
		t.Error("DGX at B=900 should OOM (Figure 14)")
	}
}

// TestEnergyOrdering reproduces Figure 12's ordering at small B: LIA's
// energy/token undercuts both IPEX and FlexGen.
func TestEnergyOrdering(t *testing.T) {
	base := Config{System: hw.SPRA100, Model: model.OPT30B, Workload: wl(1, 256, 32)}
	lia := mustFit(t, withFW(base, LIA))
	ipex := mustFit(t, withFW(base, IPEX))
	fg := mustFit(t, withFW(base, FlexGen))
	if lia.EnergyPerToken <= 0 {
		t.Fatal("energy must be positive")
	}
	if float64(ipex.EnergyPerToken)/float64(lia.EnergyPerToken) < 1.05 {
		t.Errorf("IPEX/LIA energy = %.2f, want >1.05 (paper: 1.1-5.8)", float64(ipex.EnergyPerToken)/float64(lia.EnergyPerToken))
	}
	if float64(fg.EnergyPerToken)/float64(lia.EnergyPerToken) < 1.5 {
		t.Errorf("FlexGen/LIA energy = %.2f, want >1.5 (paper: 1.6-10.3)", float64(fg.EnergyPerToken)/float64(lia.EnergyPerToken))
	}
}

// TestGNRNarrowsIPEXGapWidensFlexGenGap reproduces §7.6: upgrading
// SPR→GNR shrinks LIA's lead over IPEX and grows it over FlexGen.
func TestGNRNarrowsIPEXGapWidensFlexGenGap(t *testing.T) {
	gaps := func(sys hw.System) (float64, float64) {
		base := Config{System: sys, Model: model.OPT30B, Workload: wl(1, 512, 32)}
		lia := mustFit(t, withFW(base, LIA))
		ipex := mustFit(t, withFW(base, IPEX))
		fg := mustFit(t, withFW(base, FlexGen))
		return float64(ipex.Latency) / float64(lia.Latency), float64(fg.Latency) / float64(lia.Latency)
	}
	sprIPEX, sprFG := gaps(hw.SPRA100)
	gnrIPEX, gnrFG := gaps(hw.GNRA100)
	if gnrIPEX >= sprIPEX {
		t.Errorf("GNR should narrow the IPEX gap: %.2f → %.2f", sprIPEX, gnrIPEX)
	}
	if gnrFG <= sprFG {
		t.Errorf("GNR should widen the FlexGen gap: %.2f → %.2f", sprFG, gnrFG)
	}
}

// TestGH200PrefersAllGPU reproduces §8: on Grace-Hopper the optimizer
// sends everything to the GPU — NVLink-C2C removes the transfer penalty.
func TestGH200PrefersAllGPU(t *testing.T) {
	r := mustFit(t, Config{Framework: LIA, System: hw.GH200, Model: model.OPT175B, Workload: wl(4, 512, 32)})
	if r.PrefillPolicy != core.FullGPU || r.DecodePolicy != core.FullGPU {
		t.Errorf("GH200 policies = %s / %s, want all-GPU", r.PrefillPolicy, r.DecodePolicy)
	}
}

// TestHostOOMWithoutAssume: OPT-175B at B=900 overflows 512 GB DDR and
// must report OOM when the latency-model escape hatch is off.
func TestHostOOMWithoutAssume(t *testing.T) {
	r := run(t, Config{Framework: LIA, System: hw.SPRA100, Model: model.OPT175B, Workload: wl(900, 512, 32)})
	if !r.OOM {
		t.Error("expected host OOM")
	}
	if r.Latency != 0 || r.Throughput != 0 {
		t.Error("OOM results must carry no performance numbers")
	}
}

// TestGeneralizability runs the §7.7 models end to end: LIA beats
// FlexGen for Llama2/Chinchilla/Bloom on SPR-A100.
func TestGeneralizability(t *testing.T) {
	for _, m := range []model.Config{model.Llama270B, model.Chinchilla70B, model.Bloom176B} {
		base := Config{System: hw.SPRA100, Model: m, Workload: wl(1, 512, 32), AssumeHostCapacity: true}
		lia := mustFit(t, withFW(base, LIA))
		fg := mustFit(t, withFW(base, FlexGen))
		if float64(fg.Latency)/float64(lia.Latency) < 1.2 {
			t.Errorf("%s: FlexGen/LIA = %.2f, want ≥1.2", m.Name, float64(fg.Latency)/float64(lia.Latency))
		}
	}
}

// TestEngineDeterminism: identical configs produce identical results.
func TestEngineDeterminism(t *testing.T) {
	cfg := Config{Framework: LIA, System: hw.SPRA100, Model: model.OPT30B, Workload: wl(8, 256, 16)}
	a := mustFit(t, cfg)
	b := mustFit(t, cfg)
	if a.Latency != b.Latency || a.Throughput != b.Throughput || a.Energy != b.Energy {
		t.Error("engine runs are not deterministic")
	}
}

// TestLIAOnDGX: the §8 multi-GPU extension — LIA with 8-way tensor
// parallelism pins the whole model (640 GB holds OPT-175B), goes all-GPU,
// and at least matches the plain MultiGPU baseline.
func TestLIAOnDGX(t *testing.T) {
	w := wl(64, 32, 64)
	liaTP := mustFit(t, Config{Framework: LIA, System: hw.DGXA100, Model: model.OPT175B, Workload: w, AssumeHostCapacity: true})
	plain := mustFit(t, Config{Framework: MultiGPU, System: hw.DGXA100, Model: model.OPT175B, Workload: w, AssumeHostCapacity: true})
	if liaTP.PinnedLayers != model.OPT175B.Layers {
		t.Errorf("LIA-TP8 pinned %d/%d layers, want all", liaTP.PinnedLayers, model.OPT175B.Layers)
	}
	if liaTP.DecodePolicy != core.FullGPU {
		t.Errorf("LIA-TP8 decode policy = %s, want all-GPU (§8)", liaTP.DecodePolicy)
	}
	if float64(liaTP.Latency) > 1.3*float64(plain.Latency) {
		t.Errorf("LIA-TP8 latency %v should be within 1.3x of plain TP's %v", liaTP.Latency, plain.Latency)
	}
}

// TestMultiGPULIAThroughputScales: adding PCIe-attached GPUs never hurts
// and eventually helps.
func TestMultiGPULIAThroughputScales(t *testing.T) {
	tput := func(n int) float64 {
		sys := hw.GNRA100
		sys.GPUCount = n
		r := mustFit(t, Config{Framework: LIA, System: sys, Model: model.OPT175B, Workload: wl(64, 256, 16), AssumeHostCapacity: true})
		return r.Throughput
	}
	t1, t4 := tput(1), tput(4)
	if t4 < t1 {
		t.Errorf("4-GPU throughput %.1f below 1-GPU %.1f", t4, t1)
	}
}

// TestInt8VariantThroughEngine: INT8 halves the host footprint and
// improves transfer-bound latency.
func TestInt8VariantThroughEngine(t *testing.T) {
	w := wl(1, 256, 16)
	bf16 := mustFit(t, Config{Framework: LIA, System: hw.SPRA100, Model: model.OPT175B, Workload: w})
	int8 := mustFit(t, Config{Framework: LIA, System: hw.SPRA100, Model: model.OPT175B.Int8Variant(), Workload: w})
	if int8.Latency >= bf16.Latency {
		t.Errorf("INT8 latency %v should beat BF16 %v", int8.Latency, bf16.Latency)
	}
	if int8.HostPlan.DDRUsed >= bf16.HostPlan.DDRUsed {
		t.Error("INT8 must shrink the host footprint")
	}
}

// TestZeROInferenceOrdering: pure data offloading trails FlexGen (which
// at least offloads attention once the KV cache spills) and LIA at large
// batch, but matches FlexGen-class behaviour at B=1 where the KV fits.
func TestZeROInferenceOrdering(t *testing.T) {
	big := Config{System: hw.SPRA100, Model: model.OPT30B, Workload: wl(128, 512, 16), AssumeHostCapacity: true}
	zero := mustFit(t, withFW(big, ZeROInference))
	fg := mustFit(t, withFW(big, FlexGen))
	liaRes := mustFit(t, withFW(big, LIA))
	if zero.Throughput > fg.Throughput*1.05 {
		t.Errorf("ZeRO %.1f tok/s should not beat FlexGen %.1f at spilled KV", zero.Throughput, fg.Throughput)
	}
	if zero.Throughput >= liaRes.Throughput {
		t.Errorf("ZeRO %.1f tok/s should trail LIA %.1f", zero.Throughput, liaRes.Throughput)
	}
	if zero.DecodePolicy != core.FullGPU || zero.PinnedLayers != 0 {
		t.Error("ZeRO must be all-GPU with no pinning")
	}
	if ZeROInference.String() != "ZeRO-Inference" {
		t.Error("name wrong")
	}
}

// TestCXLPlacementWithoutExpanders: asking for the §6 placement on a
// system with no CXL installed is an immediate host OOM (capacity 0), not
// a silent fallback.
func TestCXLPlacementWithoutExpanders(t *testing.T) {
	r := run(t, Config{
		Framework: LIA, System: hw.SPRA100, Model: model.OPT30B,
		Workload:  wl(1, 64, 8),
		Placement: cxl.PolicyPlacement(),
	})
	if !r.OOM {
		t.Error("CXL placement without expanders should OOM on CXL capacity")
	}
	if !strings.Contains(r.OOMReason, "host memory") {
		t.Errorf("reason = %q", r.OOMReason)
	}
}
