package engine

import (
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/amx"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/quant"
	"github.com/lia-sim/lia/internal/tensor"
)

// The compressed-weight tiers thread through the analytic engine via
// model.Config.Quant: smaller parameter bytes mean more pinned layers
// and less PCIe traffic, and the sparse tier's (1 − s) FLOP scaling
// means faster CPU-offloaded parameter sublayers.

func TestSparseVariantFasterAndPinsMore(t *testing.T) {
	base := Config{Framework: LIA, System: hw.SPRA100, Model: model.OPT30B, Workload: wl(8, 512, 128)}
	dense := mustFit(t, base)

	sp := base
	sp.Model = model.OPT30B.SparseVariant(0.5)
	sparse := mustFit(t, sp)

	if sparse.Throughput <= dense.Throughput {
		t.Errorf("sparse throughput %v not above dense %v", sparse.Throughput, dense.Throughput)
	}
	if sparse.PinnedLayers < dense.PinnedLayers {
		t.Errorf("sparse pins %d layers, dense pins %d — compression must not pin fewer", sparse.PinnedLayers, dense.PinnedLayers)
	}
}

func TestInt4LUTVariantPinsEverythingSooner(t *testing.T) {
	base := Config{Framework: LIA, System: hw.SPRA100, Model: model.OPT66B, Workload: wl(8, 512, 128)}
	dense := mustFit(t, base)

	i4 := base
	i4.Model = model.OPT66B.Int4LUTVariant(0)
	int4 := mustFit(t, i4)

	if int4.PinnedLayers <= dense.PinnedLayers {
		t.Errorf("int4 pins %d layers, dense pins %d — a quarter-size image must pin more", int4.PinnedLayers, dense.PinnedLayers)
	}
	if int4.Throughput <= dense.Throughput {
		t.Errorf("int4 throughput %v not above dense %v", int4.Throughput, dense.Throughput)
	}
}

// Calibration: the analytic model prices the sparse tier's parameter
// FLOPs at (1 − s)× dense. The emulated kernel's measured cycle ratio at
// the same block sparsity must agree within 10% — the documented
// tolerance, which covers the per-row-stripe TileZero/TileStore overhead
// the skip path cannot elide.
func TestSparseSpeedupCalibratedAgainstKernel(t *testing.T) {
	const k, n, rows = 256, 256, 16
	w := tensor.New(k, n)
	for i := range w.Data {
		w.Data[i] = float32((i%17)-8) * 0.03
	}
	x := make([]float32, rows*k)
	for i := range x {
		x[i] = float32((i%13)-6) * 0.05
	}

	densePre, err := amx.PrepackBF16(w.Data, k, n)
	if err != nil {
		t.Fatal(err)
	}
	_, denseCycles, err := amx.MatmulBF16Packed(x, rows, densePre)
	if err != nil {
		t.Fatal(err)
	}

	const sparsity = 0.5
	pruned, st := quant.PruneBlocks(w, sparsity)
	sparsePre, err := amx.PrepackBF16Sparse(pruned.Data, pruned.Rows, pruned.Cols)
	if err != nil {
		t.Fatal(err)
	}
	_, sparseCycles, err := amx.MatmulBF16Packed(x, rows, sparsePre)
	if err != nil {
		t.Fatal(err)
	}

	measured := float64(sparseCycles) / float64(denseCycles)
	analytic := 1 - st.Sparsity() // the Compute() scale the engine prices
	if math.Abs(measured-analytic) > 0.10 {
		t.Errorf("measured sparse cycle ratio %.3f vs analytic %.3f — outside the 10%% calibration tolerance", measured, analytic)
	}

	// And the analytic engine's sublayer pricing reflects exactly that
	// scale: the sparse variant's FC1 FLOPs are (1 − s)× dense.
	cfg := model.OPT30B
	sp := cfg.SparseVariant(st.Sparsity())
	ratio := float64(sp.Compute(model.Decode, model.FC1, 1, 1)) / float64(cfg.Compute(model.Decode, model.FC1, 1, 1))
	if math.Abs(ratio-analytic) > 1e-9 {
		t.Errorf("engine FLOP scale %.6f, want %.6f", ratio, analytic)
	}
}
