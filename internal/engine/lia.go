package engine

import (
	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/exec"
	"github.com/lia-sim/lia/internal/memplan"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// runLIA executes the full LIA stack: the §5.1 optimizer picks per-stage
// policies, Optimization-1 pins decoder layers (and, when it fits, the KV
// cache) in GPU memory, and Optimization-2 overlaps transfers with
// compute; prefill splits the batch into two mini-batches, decode runs
// whole-batch (§5.2).
func runLIA(cfg Config) (Result, error) {
	var r Result
	w := cfg.Workload
	m := cfg.Model

	plan, oom, reason := hostPlanFor(cfg)
	if oom {
		return Result{OOM: true, OOMReason: reason}, nil
	}
	r.HostPlan = plan

	// §8's multi-GPU extension: with n GPUs, the GPU side of the policy
	// runs tensor-parallel — aggregate capacity, bandwidth, and compute,
	// n concurrent PCIe links, plus per-layer all-reduces charged by the
	// latency equations.
	sys := cfg.System
	nGPU := sys.GPUCount
	if nGPU > 1 {
		sys.GPU.MemCapacity *= units.Bytes(nGPU)
		sys.GPU.MemBW *= units.BytesPerSecond(nGPU)
		sys.GPU.HostLink.BW *= units.BytesPerSecond(nGPU)
	}

	gpuPlan := memplan.GPUPlan{Capacity: sys.GPU.MemCapacity}
	if !cfg.Ablation.NoOpt1 {
		gpuPlan = memplan.PlanLIAGPU(sys.GPU, m, w.Batch, w.InputLen+w.OutputLen)
	}
	r.PinnedLayers = gpuPlan.PinnedLayers
	r.KVOnGPU = gpuPlan.KVOnGPU

	env := core.NewEnvWithPlacement(sys, m, cfg.Placement)
	if nGPU > 1 {
		// Aggregate the calibrated compute ceiling across ranks (the spec
		// multipliers above only cover memory and links).
		env.GPU.Ceiling *= units.FLOPSRate(float64(nGPU))
		env.GPU.Peak *= units.FLOPSRate(float64(nGPU))
	}
	opt := core.Options{KVOnGPU: gpuPlan.KVOnGPU}
	if nGPU > 1 {
		opt.TPGPUs = nGPU
		opt.TPPeer = cfg.System.GPU.PeerLink
		if opt.TPPeer.BW <= 0 {
			// PCIe-attached cluster: peers reduce over the host links.
			opt.TPPeer = cfg.System.GPU.HostLink
		}
	}

	overlap := !cfg.Ablation.NoOpt2
	prefillMB := 1
	if overlap && w.Batch > 1 {
		prefillMB = 2
	}

	// Policy selection (C1): the Eq. (2) optimum seeds a small candidate
	// set that is then costed on the actual execution back-end — the
	// schedule with Optimization-1 pinning and Optimization-2 overlap —
	// because overlap can hide transfer time the closed-form model counts
	// in full. The decode policy depends only on B (§7.1), evaluated at
	// the mid-run context length.
	pickPolicy := func(stage model.Stage, l, mb int) (core.Policy, error) {
		seed, _ := core.OptimizeOpts(env, stage, w.Batch, l, opt)
		candidates := []core.Policy{seed, core.FullCPU, core.FullGPU, core.PartialCPU}
		best := seed
		var bestT units.Seconds = -1
		for _, p := range candidates {
			plan := exec.Plan{
				Env:          env,
				Policy:       p,
				Opt:          opt,
				Layers:       m.Layers,
				PinnedLayers: gpuPlan.PinnedLayers,
				Overlap:      overlap,
				MiniBatches:  mb,
			}
			res, err := plan.RunStage(stage, w.Batch, l)
			if err != nil {
				return core.Policy{}, err
			}
			if bestT < 0 || res.Latency < bestT {
				best, bestT = p, res.Latency
			}
		}
		return best, nil
	}
	prefillPolicy, err := pickPolicy(model.Prefill, w.InputLen, prefillMB)
	if err != nil {
		return Result{}, err
	}
	decodePolicy, err := pickPolicy(model.Decode, w.InputLen+w.OutputLen/2, 1)
	if err != nil {
		return Result{}, err
	}
	if cfg.Ablation.ForcePolicy != nil {
		prefillPolicy = *cfg.Ablation.ForcePolicy
		decodePolicy = *cfg.Ablation.ForcePolicy
	}
	r.PrefillPolicy = prefillPolicy
	r.DecodePolicy = decodePolicy

	prefillPlan := exec.Plan{
		Env:          env,
		Policy:       prefillPolicy,
		Opt:          opt,
		Layers:       m.Layers,
		PinnedLayers: gpuPlan.PinnedLayers,
		Overlap:      overlap,
		MiniBatches:  prefillMB,
	}
	pre, err := prefillPlan.RunStage(model.Prefill, w.Batch, w.InputLen)
	if err != nil {
		return Result{}, err
	}
	r.PrefillLatency = pre.Latency
	r.Breakdown = Breakdown{CPU: pre.CPUBusy, GPU: pre.GPUBusy, Comm: pre.CommBusy}

	decodePlan := prefillPlan
	decodePlan.Policy = decodePolicy
	decodePlan.MiniBatches = 1 // LIA never mini-batches decode (§5.2)
	dec, err := decodePlan.RunDecodeSequence(w.Batch, w.InputLen, w.OutputLen)
	if err != nil {
		return Result{}, err
	}
	r.DecodeLatency = dec.Latency
	r.Breakdown.CPU += dec.CPUBusy
	r.Breakdown.GPU += dec.GPUBusy
	r.Breakdown.Comm += dec.CommBusy
	return r, nil
}
