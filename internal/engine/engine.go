// Package engine runs end-to-end inference estimates: given a system, a
// model, and a workload (B, L_in, L_out), it executes the full
// prefill-plus-decode pipeline under one of the frameworks the paper
// compares — LIA, IPEX (CPU-only AMX), FlexGen (AVX offloading),
// PowerInfer (hot/cold neuron split), 8-way tensor-parallel multi-GPU,
// and ZeRO-Inference (pure data offloading) — and reports latency,
// throughput, the Table 5 resource breakdown, energy, and memory
// placement.
package engine

import (
	"fmt"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/energy"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/memplan"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

// Framework identifies an inference stack.
type Framework int

// The compared frameworks.
const (
	// LIA is the paper's framework: optimal compute offloading, AMX CPU
	// kernels, Optimization-1 and Optimization-2.
	LIA Framework = iota
	// IPEX is Intel's CPU-only AMX stack.
	IPEX
	// FlexGen is the memory-offloading baseline: AVX CPU kernels, fixed
	// attention offload, per-sublayer-column GPU pinning, mini-batched
	// overlap in both stages.
	FlexGen
	// PowerInfer splits hot neurons to the GPU and cold neurons to the
	// CPU, exchanging activations over PCIe inside every layer.
	PowerInfer
	// MultiGPU is 8-way tensor parallelism on a DGX (no offloading).
	MultiGPU
	// ZeROInference is DeepSpeed-style pure data offloading (§9 [13]):
	// parameters stream from host memory every pass, all compute on the
	// GPU, no attention offload and no sublayer pinning.
	ZeROInference
)

// String implements fmt.Stringer.
func (f Framework) String() string {
	switch f {
	case LIA:
		return "LIA"
	case IPEX:
		return "IPEX"
	case FlexGen:
		return "FlexGen"
	case PowerInfer:
		return "PowerInfer"
	case MultiGPU:
		return "MultiGPU-TP8"
	case ZeROInference:
		return "ZeRO-Inference"
	default:
		return fmt.Sprintf("Framework(%d)", int(f))
	}
}

// Ablation switches individual LIA features off (Table 4).
type Ablation struct {
	// NoOpt1 disables GPU-memory pinning (Optimization-1).
	NoOpt1 bool
	// NoOpt2 disables compute/transfer overlap (Optimization-2).
	NoOpt2 bool
	// ForcePolicy overrides LIA's optimizer with a fixed policy (e.g.
	// FlexGen's) for both stages.
	ForcePolicy *core.Policy
}

// Config is one experiment's full specification.
type Config struct {
	// Framework selects the stack.
	Framework Framework
	// System is the hardware platform.
	System hw.System
	// Model is the network.
	Model model.Config
	// Workload is the (B, L_in, L_out) shape.
	Workload trace.Workload
	// Placement is the host DDR/CXL split (§6); zero value = DDR only.
	Placement cxl.Placement
	// Ablation disables LIA features (ignored by other frameworks).
	Ablation Ablation
	// AssumeHostCapacity skips the host-memory OOM check — the paper's
	// "latency model" mode (starred datapoints in Figures 10–11) for
	// workloads beyond the testbed's 512 GB DDR.
	AssumeHostCapacity bool
}

// Breakdown aggregates resource busy time across the whole run (Table 5).
type Breakdown struct {
	// CPU, GPU and Comm are accumulated service times.
	CPU, GPU, Comm units.Seconds
}

// Result is an end-to-end estimate.
type Result struct {
	// Config echoes the inputs.
	Config Config
	// OOM marks runs that do not fit (GPU memory for PowerInfer/MultiGPU,
	// host memory otherwise); all other fields are zero when set.
	OOM bool
	// OOMReason explains what overflowed.
	OOMReason string
	// PrefillLatency and DecodeLatency split the run by stage.
	PrefillLatency, DecodeLatency units.Seconds
	// Latency is the end-to-end seconds/query (§7's online metric).
	Latency units.Seconds
	// Throughput is generated tokens per second (§7's offline metric).
	Throughput float64
	// Breakdown is the Table 5 resource decomposition.
	Breakdown Breakdown
	// Energy and EnergyPerToken follow §7.5.
	Energy         units.Joules
	EnergyPerToken units.Joules
	// PrefillPolicy and DecodePolicy record the offloading decisions.
	PrefillPolicy, DecodePolicy core.Policy
	// PinnedLayers and KVOnGPU record the Optimization-1 plan.
	PinnedLayers int
	KVOnGPU      bool
	// HostPlan records the DDR/CXL placement accounting.
	HostPlan memplan.HostPlan
}

// Run executes the configured estimate.
func Run(cfg Config) (Result, error) {
	if err := cfg.Workload.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.System.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Model.Validate(); err != nil {
		return Result{}, err
	}
	var (
		res Result
		err error
	)
	switch cfg.Framework {
	case LIA:
		res, err = runLIA(cfg)
	case IPEX:
		res, err = runIPEX(cfg)
	case FlexGen:
		res, err = runFlexGen(cfg)
	case PowerInfer:
		res, err = runPowerInfer(cfg)
	case MultiGPU:
		res, err = runMultiGPU(cfg)
	case ZeROInference:
		res, err = runZeRO(cfg)
	default:
		return Result{}, fmt.Errorf("engine: unknown framework %v", cfg.Framework)
	}
	if err != nil {
		return Result{}, err
	}
	res.Config = cfg
	finalize(&res)
	return res, nil
}

// finalize derives latency/throughput/energy from the stage results.
func finalize(r *Result) {
	if r.OOM {
		return
	}
	r.Latency = r.PrefillLatency + r.DecodeLatency
	w := r.Config.Workload
	if r.Latency > 0 {
		r.Throughput = float64(w.TotalTokens()) / float64(r.Latency)
	}
	em := energy.ForSystem(r.Config.System)
	r.Energy = em.Energy(r.Latency, r.Breakdown.CPU, r.Breakdown.GPU)
	r.EnergyPerToken = energy.PerToken(r.Energy, w.TotalTokens())
}

// hostPlanFor computes and capacity-checks the host placement. It returns
// an OOM result when host memory cannot hold the workload, or when the
// placement itself is unsatisfiable (CXL classes with no expanders — a
// zero-capacity tier no AssumeHostCapacity can conjure up).
func hostPlanFor(cfg Config) (memplan.HostPlan, bool, string) {
	w := cfg.Workload
	plan, err := memplan.PlanHost(cfg.System, cfg.Model, w.Batch, w.InputLen+w.OutputLen, cfg.Placement)
	if err != nil {
		return plan, true, fmt.Sprintf("host memory: %v", err)
	}
	if !plan.Fits && !cfg.AssumeHostCapacity {
		return plan, true, fmt.Sprintf("host memory: %s", plan)
	}
	return plan, false, ""
}
