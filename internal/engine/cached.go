package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/runner"
)

// runCache memoizes engine.Run results across the process: experiment
// suites re-evaluate many identical (framework, system, workload) cells,
// and Run is a pure function of its Config, so identical cells share one
// computation (single-flight under concurrency).
var runCache runner.Cache[string, Result]

// runCalls counts RunCached invocations (hits + misses), for the
// lia-bench -stats dedup report.
var runCalls atomic.Int64

// RunCached is Run behind the shared memoization cache. Concurrent
// callers with an identical Config block on a single computation and
// share its Result. Errors are cached too — a malformed Config fails the
// same way every time.
func RunCached(cfg Config) (Result, error) {
	runCalls.Add(1)
	return runCache.Do(cfg.cacheKey(), func() (Result, error) {
		return Run(cfg)
	})
}

// ResetRunCache drops every memoized result (tests and long-lived
// servers that mutate hw.System values in place between runs).
func ResetRunCache() { runCache.Reset() }

// RunCacheStats reports total RunCached calls and the distinct configs
// actually evaluated; the difference is work the memoization saved.
func RunCacheStats() (calls, distinct int) {
	return int(runCalls.Load()), runCache.Len()
}

// cacheKey serializes every Run input into a deterministic string. Config
// is not directly usable as a map key: System carries a CXL expander
// slice, Placement a map, and Ablation a *core.Policy whose address (not
// value) would otherwise leak into the key. %v formatting is value-deep
// for slices and structs, and fmt prints maps in sorted key order, so the
// only field needing care is the policy pointer, which is dereferenced.
func (c Config) cacheKey() string {
	var forced string
	if c.Ablation.ForcePolicy != nil {
		forced = c.Ablation.ForcePolicy.String()
	}
	return fmt.Sprintf("fw=%d|sys=%v|model=%v|w=%v|pl=%s|ab=%t,%t,%q|ahc=%t",
		c.Framework, c.System, c.Model, c.Workload,
		placementKey(c.Placement),
		c.Ablation.NoOpt1, c.Ablation.NoOpt2, forced,
		c.AssumeHostCapacity)
}

// placementKey canonicalizes the CXL placement map (only classes held in
// CXL matter; map iteration order must not reach the key).
func placementKey(pl cxl.Placement) string {
	var held []string
	for class, in := range pl.InCXL {
		if in {
			held = append(held, fmt.Sprint(class))
		}
	}
	sort.Strings(held)
	return strings.Join(held, ",")
}
