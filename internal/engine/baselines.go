package engine

import (
	"fmt"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/exec"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/memplan"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/perf"
	"github.com/lia-sim/lia/internal/units"
)

// runIPEX models Intel's CPU-only AMX stack: every sublayer on the CPU,
// no GPU, no PCIe traffic. It is the strongest CPU baseline (§7's IPEX).
func runIPEX(cfg Config) (Result, error) {
	var r Result
	w := cfg.Workload
	plan, oom, reason := hostPlanFor(cfg)
	if oom {
		return Result{OOM: true, OOMReason: reason}, nil
	}
	r.HostPlan = plan
	env := core.NewEnvWithPlacement(cfg.System, cfg.Model, cfg.Placement)
	p := exec.Plan{
		Env:         env,
		Policy:      core.FullCPU,
		Layers:      cfg.Model.Layers,
		Overlap:     false,
		MiniBatches: 1,
	}
	r.PrefillPolicy = core.FullCPU
	r.DecodePolicy = core.FullCPU
	pre, err := p.RunStage(model.Prefill, w.Batch, w.InputLen)
	if err != nil {
		return Result{}, err
	}
	dec, err := p.RunDecodeSequence(w.Batch, w.InputLen, w.OutputLen)
	if err != nil {
		return Result{}, err
	}
	r.PrefillLatency = pre.Latency
	r.DecodeLatency = dec.Latency
	r.Breakdown = Breakdown{CPU: pre.CPUBusy + dec.CPUBusy}
	return r, nil
}

// runFlexGen models the latest offloading baseline (§3, §7): AVX512 CPU
// kernels, the fixed attention-scoring offload (only when the KV cache is
// CPU-resident), per-sublayer-column GPU pinning, and mini-batched
// overlap in *both* stages — including the decode mini-batching that
// costs it 1.1–1.3× against LIA at large B (§5.2).
func runFlexGen(cfg Config) (Result, error) {
	var r Result
	w := cfg.Workload
	m := cfg.Model
	plan, oom, reason := hostPlanFor(cfg)
	if oom {
		return Result{OOM: true, OOMReason: reason}, nil
	}
	r.HostPlan = plan

	gpuPlan := memplan.PlanFlexGenGPU(cfg.System.GPU, m, w.Batch, w.InputLen+w.OutputLen)
	r.KVOnGPU = gpuPlan.KVOnGPU
	// Column pinning reduces aggregate parameter traffic like pinning an
	// equivalent number of whole layers.
	pinnedEquiv := int(gpuPlan.PinnedParamFraction * float64(m.Layers))
	r.PinnedLayers = pinnedEquiv

	env := core.NewEnv(cfg.System, m).WithAVXCPU(cfg.System)
	opt := core.Options{KVOnGPU: gpuPlan.KVOnGPU}

	// FlexGen's fixed policy: everything on GPU, except attention scoring
	// on the CPU once the KV cache has spilled to host memory.
	policy := core.FullGPU
	if !gpuPlan.KVOnGPU {
		policy = core.PartialCPU
	}
	r.PrefillPolicy = core.FullGPU // prefill attention stays on GPU
	r.DecodePolicy = policy

	mb := 1
	if w.Batch > 1 {
		mb = 2
	}
	prefillPlan := exec.Plan{
		Env:          env,
		Policy:       core.FullGPU,
		Opt:          opt,
		Layers:       m.Layers,
		PinnedLayers: pinnedEquiv,
		Overlap:      true,
		MiniBatches:  mb,
	}
	pre, err := prefillPlan.RunStage(model.Prefill, w.Batch, w.InputLen)
	if err != nil {
		return Result{}, err
	}
	decodePlan := prefillPlan
	decodePlan.Policy = policy
	decodePlan.MiniBatches = mb // FlexGen mini-batches decode too
	dec, err := decodePlan.RunDecodeSequence(w.Batch, w.InputLen, w.OutputLen)
	if err != nil {
		return Result{}, err
	}
	r.PrefillLatency = pre.Latency
	r.DecodeLatency = dec.Latency
	r.Breakdown = Breakdown{
		CPU:  pre.CPUBusy + dec.CPUBusy,
		GPU:  pre.GPUBusy + dec.GPUBusy,
		Comm: pre.CommBusy + dec.CommBusy,
	}
	return r, nil
}

// PowerInfer modeling constants: the hot-neuron fraction resident on the
// GPU, the effective cold-neuron activity per request, and the reuse
// window of the sparse CPU kernels.
const (
	powerInferHotFraction = 0.15
	// ReLU models exhibit strong natural sparsity; gated-FFN models
	// (SwiGLU, e.g. Llama2) do not — PowerInfer "focuses only on LLMs
	// with high sparsity" (§7.9), so its cold side runs nearly dense
	// there.
	powerInferColdActivityReLU  = 0.35
	powerInferColdActivityGated = 0.90
	// Per-request activation masks defeat cross-batch weight reuse in the
	// sparse cold-neuron kernels: each request touches its own cold set,
	// so cold weight traffic grows with batch up to this reuse window.
	powerInferReuseWindow = 8
)

// runPowerInfer models the hot/cold neuron split (§7.9): the GPU holds
// hot FFN neurons plus attention and the KV cache; the CPU (AVX-class
// kernels — PowerInfer targets consumer CPUs and does not use AMX)
// computes cold neurons, with activations crossing PCIe twice per FFN.
// It OOMs when hot parameters + KV cache exceed GPU memory (the B=900
// failure in Figure 15).
func runPowerInfer(cfg Config) (Result, error) {
	var r Result
	w := cfg.Workload
	m := cfg.Model
	plan, oom, reason := hostPlanFor(cfg)
	if oom {
		return Result{OOM: true, OOMReason: reason}, nil
	}
	r.HostPlan = plan

	lMax := w.InputLen + w.OutputLen
	// The GPU holds the hot FFN neurons, the KV cache, activations, and a
	// double-buffered layer working set; attention weights and cold
	// neurons stream from the host.
	ffnParams := (m.DataY(model.Prefill, model.FC1, 1, 1) + m.DataY(model.Prefill, model.FC2, 1, 1)) * units.Bytes(m.Layers)
	hotParams := units.Bytes(powerInferHotFraction * float64(ffnParams))
	gpuNeed := hotParams + m.KVBytes(w.Batch, lMax) +
		m.ActivationBytes(w.Batch, lMax, model.Prefill) + 2*m.LayerParamBytes()
	if gpuNeed > cfg.System.GPU.MemCapacity {
		return Result{OOM: true, OOMReason: fmt.Sprintf("PowerInfer GPU working set %v exceeds %v (CUDA OOM)", gpuNeed, cfg.System.GPU.MemCapacity)}, nil
	}
	// Attention/projection weights occupy whatever GPU memory remains;
	// the rest streams over PCIe every layer — the "frequent data
	// transfer" §7.9 blames for PowerInfer's losses.
	attnParams := m.ParamBytes() - ffnParams
	attnResidentFrac := 0.0
	if attnParams > 0 {
		attnResidentFrac = float64(cfg.System.GPU.MemCapacity-gpuNeed) / float64(attnParams)
		if attnResidentFrac > 1 {
			attnResidentFrac = 1
		}
	}

	gpu := perf.GPUDevice(cfg.System.GPU)
	cpu := perf.CPUDevice(cfg.System.CPU, hw.AVX512)
	link := cfg.System.HostLink()

	stageTime := func(stage model.Stage, l int) (units.Seconds, Breakdown) {
		rows := w.Batch * l
		if stage == model.Decode {
			rows = w.Batch
		}
		var gpuT, cpuT, commT units.Seconds
		for _, s := range model.Sublayers() {
			c := m.Compute(stage, s, w.Batch, l)
			dx := m.DataX(stage, s, w.Batch, l)
			dy := m.DataY(stage, s, w.Batch, l)
			switch s {
			case model.FC1, model.FC2:
				// Hot fraction on GPU at full density; cold fraction on
				// CPU at its activity level, with cold weight traffic
				// replicated per request up to the sparse-kernel reuse
				// window. Activations cross PCIe both ways around the
				// split.
				activity := powerInferColdActivityReLU
				if m.GatedFFN {
					activity = powerInferColdActivityGated
				}
				reuse := w.Batch
				if reuse > powerInferReuseWindow {
					reuse = powerInferReuseWindow
				}
				hotC := units.FLOPs(powerInferHotFraction * float64(c))
				coldC := units.FLOPs((1 - powerInferHotFraction) * activity * float64(c))
				hotY := units.Bytes(powerInferHotFraction * float64(dy))
				coldY := units.Bytes((1 - powerInferHotFraction) * activity * float64(dy) * float64(reuse))
				gpuT += gpu.Time(hotC, dx+hotY, rows)
				cpuT += cpu.Time(coldC, dx+coldY, rows)
				commT += link.Transfer(dx) * 2
			default:
				// Attention and projections on the GPU; the non-resident
				// share of their weights streams over PCIe each layer.
				gpuT += gpu.Time(c, dx+dy, rows)
				if s != model.QKT && s != model.SV {
					commT += link.Transfer(units.Bytes((1 - attnResidentFrac) * float64(dy)))
				}
			}
		}
		// CPU and GPU halves of each FFN run concurrently; transfers
		// serialize with the slower half.
		compute := gpuT
		if cpuT > compute {
			compute = cpuT
		}
		return compute + commT, Breakdown{CPU: cpuT, GPU: gpuT, Comm: commT}
	}

	preT, preB := stageTime(model.Prefill, w.InputLen)
	r.PrefillLatency = preT * units.Seconds(m.Layers)
	r.Breakdown = Breakdown{CPU: preB.CPU * units.Seconds(m.Layers), GPU: preB.GPU * units.Seconds(m.Layers), Comm: preB.Comm * units.Seconds(m.Layers)}
	for t := 0; t < w.OutputLen; t++ {
		decT, decB := stageTime(model.Decode, w.InputLen+t)
		r.DecodeLatency += decT * units.Seconds(m.Layers)
		r.Breakdown.CPU += decB.CPU * units.Seconds(m.Layers)
		r.Breakdown.GPU += decB.GPU * units.Seconds(m.Layers)
		r.Breakdown.Comm += decB.Comm * units.Seconds(m.Layers)
	}
	r.PrefillPolicy = core.FullGPU
	r.DecodePolicy = core.MoEPartial // closest vector: FFN partially on CPU
	return r, nil
}

// runMultiGPU models 8-way tensor parallelism on a DGX (§7.8): all
// parameters and KV resident across the GPUs, per-GPU FLOPs divided by
// the GPU count, and two NVLink all-reduces per decoder layer (after the
// attention output projection and after FC2).
func runMultiGPU(cfg Config) (Result, error) {
	var r Result
	w := cfg.Workload
	m := cfg.Model
	n := cfg.System.GPUCount
	if n < 1 {
		return Result{}, fmt.Errorf("engine: MultiGPU needs GPUs")
	}
	lMax := w.InputLen + w.OutputLen
	if !memplan.GPUFits(cfg.System.GPU, n, m, w.Batch, lMax) {
		return Result{OOM: true, OOMReason: fmt.Sprintf("model + KV exceed %d × %v", n, cfg.System.GPU.MemCapacity)}, nil
	}

	gpu := perf.GPUDevice(cfg.System.GPU)
	peer := cfg.System.GPU.PeerLink
	if peer.BW <= 0 {
		return Result{}, fmt.Errorf("engine: MultiGPU requires a peer link on %s", cfg.System.GPU.Name)
	}

	stageTime := func(stage model.Stage, l int) (units.Seconds, Breakdown) {
		rows := w.Batch * l
		if stage == model.Decode {
			rows = w.Batch
		}
		var gpuT units.Seconds
		for _, s := range model.Sublayers() {
			c := units.FLOPs(float64(m.Compute(stage, s, w.Batch, l)) / float64(n))
			traffic := units.Bytes(float64(m.DataX(stage, s, w.Batch, l)+m.DataY(stage, s, w.Batch, l)) / float64(n))
			gpuT += gpu.Time(c, traffic, rows)
		}
		// Ring all-reduce of the hidden states after OutProj and FC2
		// (core.TPAllReduceTime carries the calibrated per-op floor).
		hidden := m.DataX(stage, model.QKVMapping, w.Batch, l)
		comm := 2 * core.TPAllReduceTime(n, peer, hidden)
		return gpuT + comm, Breakdown{GPU: gpuT, Comm: comm}
	}

	preT, preB := stageTime(model.Prefill, w.InputLen)
	r.PrefillLatency = preT * units.Seconds(m.Layers)
	r.Breakdown = Breakdown{GPU: preB.GPU * units.Seconds(m.Layers), Comm: preB.Comm * units.Seconds(m.Layers)}
	for t := 0; t < w.OutputLen; t++ {
		decT, decB := stageTime(model.Decode, w.InputLen+t)
		r.DecodeLatency += decT * units.Seconds(m.Layers)
		r.Breakdown.GPU += decB.GPU * units.Seconds(m.Layers)
		r.Breakdown.Comm += decB.Comm * units.Seconds(m.Layers)
	}
	r.PrefillPolicy = core.FullGPU
	r.DecodePolicy = core.FullGPU
	r.KVOnGPU = true
	r.PinnedLayers = m.Layers
	return r, nil
}

// runZeRO models DeepSpeed-style pure data offloading (§9): every
// parameter streams from host memory on every pass, all sublayers compute
// on the GPU, the KV cache stays on the GPU while it fits and spills to
// the host (with per-step PCIe traffic) when it does not. No compute
// offloading, no pinning, no mini-batching — the simplest point in the
// offloading design space, and the reason FlexGen's optimizations (and
// LIA's) exist.
func runZeRO(cfg Config) (Result, error) {
	var r Result
	w := cfg.Workload
	m := cfg.Model
	plan, oom, reason := hostPlanFor(cfg)
	if oom {
		return Result{OOM: true, OOMReason: reason}, nil
	}
	r.HostPlan = plan

	lMax := w.InputLen + w.OutputLen
	kvFits := m.KVBytes(w.Batch, lMax)+m.ActivationBytes(w.Batch, lMax, model.Prefill)+2*m.LayerParamBytes() <= cfg.System.GPU.MemCapacity
	r.KVOnGPU = kvFits

	env := core.NewEnv(cfg.System, m)
	p := exec.Plan{
		Env:         env,
		Policy:      core.FullGPU,
		Opt:         core.Options{KVOnGPU: kvFits},
		Layers:      m.Layers,
		Overlap:     true, // DeepSpeed prefetches the next layer
		MiniBatches: 1,
	}
	r.PrefillPolicy = core.FullGPU
	r.DecodePolicy = core.FullGPU
	pre, err := p.RunStage(model.Prefill, w.Batch, w.InputLen)
	if err != nil {
		return Result{}, err
	}
	dec, err := p.RunDecodeSequence(w.Batch, w.InputLen, w.OutputLen)
	if err != nil {
		return Result{}, err
	}
	r.PrefillLatency = pre.Latency
	r.DecodeLatency = dec.Latency
	r.Breakdown = Breakdown{
		CPU:  pre.CPUBusy + dec.CPUBusy,
		GPU:  pre.GPUBusy + dec.GPUBusy,
		Comm: pre.CommBusy + dec.CommBusy,
	}
	return r, nil
}
