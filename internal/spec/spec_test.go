package spec

import (
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
)

func baseCfg() Config {
	return Config{
		System:     hw.SPRA100,
		Target:     model.OPT175B,
		Draft:      model.OPT6B7,
		Gamma:      4,
		Acceptance: 0.8,
		Batch:      1,
		Context:    512,
	}
}

func TestValidate(t *testing.T) {
	c := baseCfg()
	c.Gamma = 0
	if c.Validate() == nil {
		t.Error("gamma=0 accepted")
	}
	c = baseCfg()
	c.Acceptance = 1.5
	if c.Validate() == nil {
		t.Error("acceptance>1 accepted")
	}
	c = baseCfg()
	c.Batch = 0
	if c.Validate() == nil {
		t.Error("batch=0 accepted")
	}
}

func TestExpectedTokensPerRound(t *testing.T) {
	// α=0: only the target's own token survives.
	if got := ExpectedTokensPerRound(4, 0); got != 1 {
		t.Errorf("α=0 → %v, want 1", got)
	}
	// α=1: every drafted token accepted.
	if got := ExpectedTokensPerRound(4, 1); got != 5 {
		t.Errorf("α=1 → %v, want 5", got)
	}
	// Geometric series: γ=2, α=0.5 → 1 + 0.5 + 0.25 = 1.75.
	if got := ExpectedTokensPerRound(2, 0.5); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("got %v, want 1.75", got)
	}
	// Monotone in both arguments.
	if ExpectedTokensPerRound(8, 0.8) <= ExpectedTokensPerRound(4, 0.8) {
		t.Error("not monotone in gamma")
	}
	if ExpectedTokensPerRound(4, 0.9) <= ExpectedTokensPerRound(4, 0.5) {
		t.Error("not monotone in acceptance")
	}
}

// TestSpeculationPaysOffWhenOffloaded: with an offloaded OPT-175B target
// whose per-pass cost is dominated by parameter movement, a decent draft
// yields a real speedup at B=1.
func TestSpeculationPaysOffWhenOffloaded(t *testing.T) {
	res, err := Estimate(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 1.5 {
		t.Errorf("speedup = %.2f, want ≥1.5 (verification amortizes parameter reads)", res.Speedup)
	}
	if res.TokensPerRound <= 1 || res.TokensPerRound > 5 {
		t.Errorf("tokens/round = %v", res.TokensPerRound)
	}
	if res.VerifyPerRound <= 0 || res.DraftPerRound <= 0 {
		t.Error("round components must be positive")
	}
}

// TestZeroAcceptanceHurts: a useless draft makes speculation a pure
// overhead (speedup < 1).
func TestZeroAcceptanceHurts(t *testing.T) {
	c := baseCfg()
	c.Acceptance = 0
	res, err := Estimate(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup >= 1 {
		t.Errorf("speedup = %.2f with α=0, want <1", res.Speedup)
	}
}

// TestDraftMustFitGPU: an oversized draft is rejected.
func TestDraftMustFitGPU(t *testing.T) {
	c := baseCfg()
	c.Draft = model.OPT66B // 123 GB > 40 GB A100
	if _, err := Estimate(c); err == nil {
		t.Error("oversized draft accepted")
	}
}

// TestSpeedupShrinksAtLargeBatch: at B=900 the target pass is compute/
// bandwidth-bound rather than parameter-movement-bound, so verification
// amortizes less and speculation loses its edge.
func TestSpeedupShrinksAtLargeBatch(t *testing.T) {
	small := baseCfg()
	big := baseCfg()
	big.Batch = 512
	rs, err := Estimate(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Estimate(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Speedup >= rs.Speedup {
		t.Errorf("speedup should shrink with batch: %.2f (B=1) vs %.2f (B=512)", rs.Speedup, rb.Speedup)
	}
}
