package spec

import (
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/trace"
)

// runSpecWorkload decodes a deterministic workload speculatively on the
// functional engine and pools the round statistics. Every output is
// checked bit-identical to plain Generate on the way — the measured α̂
// only means something if speculation changed nothing but the cost.
func runSpecWorkload(t *testing.T, spec trace.LowEntropySpec, gamma int, seed int64) llm.SpecStats {
	t.Helper()
	m, err := llm.NewRandom(llm.TinyConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	target := llm.NewExecutor(m, core.PartialCPU)
	dm, err := llm.DraftModel(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	draft := llm.NewExecutor(dm, core.PartialCPU)
	gen, err := trace.NewLowEntropyGenerator(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	var agg llm.SpecStats
	for _, r := range gen.Batch(16) {
		got, st, err := target.SpecGenerate(r.Prompt, r.OutputLen, draft, gamma)
		if err != nil {
			t.Fatal(err)
		}
		want, err := target.Generate(r.Prompt, r.OutputLen)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("request %d: speculative output diverged: got %v want %v", r.ID, got, want)
			}
		}
		agg.Rounds += st.Rounds
		agg.PlainSteps += st.PlainSteps
		agg.Drafted += st.Drafted
		agg.Accepted += st.Accepted
		agg.Emitted += st.Emitted
	}
	return agg
}

// TestCrossValidateAcceptanceModel closes the loop between the two spec
// implementations: internal/llm measures acceptance empirically,
// internal/spec predicts tokens/round analytically from an acceptance
// probability. Feeding the measured α̂ into ExpectedTokensPerRound must
// reproduce the measured tokens/round within a documented bound.
//
// The analytic model (Leviathan-style) assumes every round drafts
// exactly γ i.i.d.-accepted tokens; the functional loop truncates
// drafts near sequence tails and its acceptances are serially
// correlated (draft and target share weights), so exact equality is not
// expected. The 15% relative bound here is the one EXPERIMENTS.md
// records.
func TestCrossValidateAcceptanceModel(t *testing.T) {
	const gamma = 3
	spec := trace.LowEntropySpec{
		Vocab:        101, // llm.TinyConfig().VocabSize
		HotTokens:    4,
		RepeatProb:   0.8,
		MinLen:       8,
		MaxLen:       24,
		OutputTokens: 24,
	}
	agg := runSpecWorkload(t, spec, gamma, 5)
	if agg.Rounds == 0 || agg.Drafted == 0 {
		t.Fatalf("speculative loop never drafted: %+v", agg)
	}

	alpha := agg.AcceptanceRate()
	measured := agg.TokensPerRound()
	analytic := ExpectedTokensPerRound(gamma, alpha)
	relErr := math.Abs(measured-analytic) / analytic
	t.Logf("γ=%d: α̂=%.3f measured tokens/round=%.3f analytic=%.3f relerr=%.3f (stats %+v)",
		gamma, alpha, measured, analytic, relErr, agg)
	if relErr > 0.15 {
		t.Errorf("measured tokens/round %.3f vs analytic %.3f: relative error %.3f > 0.15",
			measured, analytic, relErr)
	}
	// Sanity on the regime: tokens/round must beat plain decode's 1.0
	// for speculation to be worth pricing at all.
	if measured <= 1 {
		t.Errorf("tokens/round %.3f not above 1; speculation never accepted anything", measured)
	}
}

// TestCrossValidateAcrossEntropyRegimes: the analytic acceptance model
// holds on both ends of the workload-entropy knob — the draft-friendly
// low-entropy stream and uniform draws over the full vocabulary. (With
// random tiny weights the draft's agreement comes mostly from weight
// sharing, so α̂ lands high in both regimes; what the knob pins is the
// workload the spec benches report α̂ against, and what this test pins
// is that the γ-truncated-geometric prediction tracks the measurement
// in each.)
func TestCrossValidateAcrossEntropyRegimes(t *testing.T) {
	const gamma = 3
	low := trace.LowEntropySpec{
		Vocab: 101, HotTokens: 4, RepeatProb: 0.8,
		MinLen: 8, MaxLen: 24, OutputTokens: 24,
	}
	flat := low
	flat.HotTokens = flat.Vocab
	flat.RepeatProb = 0

	for _, tc := range []struct {
		name string
		spec trace.LowEntropySpec
	}{{"low-entropy", low}, {"uniform", flat}} {
		agg := runSpecWorkload(t, tc.spec, gamma, 5)
		alpha := agg.AcceptanceRate()
		if alpha <= 0 || alpha >= 1 {
			t.Errorf("%s: degenerate acceptance rate %.3f", tc.name, alpha)
		}
		measured := agg.TokensPerRound()
		analytic := ExpectedTokensPerRound(gamma, alpha)
		relErr := math.Abs(measured-analytic) / analytic
		t.Logf("%s: α̂=%.3f measured=%.3f analytic=%.3f relerr=%.3f", tc.name, alpha, measured, analytic, relErr)
		if relErr > 0.15 {
			t.Errorf("%s: measured tokens/round %.3f vs analytic %.3f: relative error %.3f > 0.15",
				tc.name, measured, analytic, relErr)
		}
	}
}
