// Package spec models speculative decoding on top of the offloading
// engine: a small draft model (GPU-resident) proposes γ tokens, and the
// big offloaded target model verifies them in a single batched pass.
// Speculation has an outsized payoff in LIA's regime: every target pass
// streams (or CPU-reads) the full parameter set regardless of how many
// tokens it scores, so verifying γ+1 positions per pass amortizes the
// dominant per-pass cost that Figure 3 identifies — the same economics
// that make prefill cheap per token.
package spec

import (
	"fmt"
	"math"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/exec"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/memplan"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// Config parameterizes a speculative-decoding estimate.
type Config struct {
	// System is the platform (the draft must fit its GPU).
	System hw.System
	// Target is the big offloaded model.
	Target model.Config
	// Draft is the small proposal model.
	Draft model.Config
	// Gamma is the speculation depth (tokens proposed per round).
	Gamma int
	// Acceptance is the per-token probability α that the target accepts a
	// drafted token (draft/target agreement).
	Acceptance float64
	// Batch and Context give the decode operating point.
	Batch, Context int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Target.Validate(); err != nil {
		return err
	}
	if err := c.Draft.Validate(); err != nil {
		return err
	}
	if c.Gamma < 1 {
		return fmt.Errorf("spec: gamma must be ≥1")
	}
	if c.Acceptance < 0 || c.Acceptance > 1 {
		return fmt.Errorf("spec: acceptance must be in [0,1]")
	}
	if c.Batch < 1 || c.Context < 1 {
		return fmt.Errorf("spec: batch and context must be positive")
	}
	return nil
}

// ExpectedTokensPerRound returns the mean accepted tokens per
// speculation round: 1 + α + α² + … + α^γ (the verified token plus the
// accepted prefix), following Leviathan et al.'s acceptance model.
func ExpectedTokensPerRound(gamma int, acceptance float64) float64 {
	if acceptance >= 1 {
		return float64(gamma + 1)
	}
	return (1 - math.Pow(acceptance, float64(gamma+1))) / (1 - acceptance)
}

// Result reports the estimate.
type Result struct {
	// BaselinePerToken is the target model's plain decode cost per token.
	BaselinePerToken units.Seconds
	// DraftPerRound and VerifyPerRound split one speculation round.
	DraftPerRound, VerifyPerRound units.Seconds
	// TokensPerRound is the expected accepted tokens per round.
	TokensPerRound float64
	// SpecPerToken is the speculative cost per accepted token.
	SpecPerToken units.Seconds
	// Speedup is BaselinePerToken / SpecPerToken.
	Speedup float64
	// TargetPolicy records the offloading decision for target passes.
	TargetPolicy core.Policy
}

// Estimate prices speculative decoding against plain decoding at the
// operating point. The draft runs fully on the GPU (it must fit); the
// target runs under LIA's optimal policy with Optimization-1 pinning.
// A verify pass scores γ+1 positions at once — modeled as a decode step
// whose batch is B·(γ+1), which is exactly how the batched-verification
// kernel shapes it.
func Estimate(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Draft.ParamBytes() > cfg.System.GPU.MemCapacity {
		return Result{}, fmt.Errorf("spec: draft %s (%v) does not fit the GPU (%v)",
			cfg.Draft.Name, cfg.Draft.ParamBytes(), cfg.System.GPU.MemCapacity)
	}

	env := core.NewEnv(cfg.System, cfg.Target)
	gpuPlan := memplan.PlanLIAGPU(cfg.System.GPU, cfg.Target, cfg.Batch, cfg.Context)
	opt := core.Options{KVOnGPU: gpuPlan.KVOnGPU}
	policy, _ := core.OptimizeOpts(env, model.Decode, cfg.Batch, cfg.Context, opt)

	targetPlan := exec.Plan{
		Env:          env,
		Policy:       policy,
		Opt:          opt,
		Layers:       cfg.Target.Layers,
		PinnedLayers: gpuPlan.PinnedLayers,
		Overlap:      true,
		MiniBatches:  1,
	}
	baseline, err := targetPlan.RunStage(model.Decode, cfg.Batch, cfg.Context)
	if err != nil {
		return Result{}, err
	}
	// Verification: the same per-pass parameter movement, with γ+1 query
	// positions per sequence.
	verify, err := targetPlan.RunStage(model.Decode, cfg.Batch*(cfg.Gamma+1), cfg.Context)
	if err != nil {
		return Result{}, err
	}

	// Draft: fully GPU-resident, γ sequential decode steps.
	draftEnv := core.NewEnv(cfg.System, cfg.Draft)
	draftPlan := exec.Plan{
		Env:          draftEnv,
		Policy:       core.FullGPU,
		Opt:          core.Options{ParamsResident: true, KVOnGPU: true},
		Layers:       cfg.Draft.Layers,
		PinnedLayers: cfg.Draft.Layers,
		Overlap:      true,
		MiniBatches:  1,
	}
	draftStep, err := draftPlan.RunStage(model.Decode, cfg.Batch, cfg.Context)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		BaselinePerToken: baseline.Latency,
		DraftPerRound:    draftStep.Latency * units.Seconds(cfg.Gamma),
		VerifyPerRound:   verify.Latency,
		TokensPerRound:   ExpectedTokensPerRound(cfg.Gamma, cfg.Acceptance),
		TargetPolicy:     policy,
	}
	res.SpecPerToken = units.Seconds(float64(res.DraftPerRound+res.VerifyPerRound) / res.TokensPerRound)
	if res.SpecPerToken > 0 {
		res.Speedup = float64(res.BaselinePerToken) / float64(res.SpecPerToken)
	}
	return res, nil
}
