package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
	if got := m.Row(1); len(got) != 3 || got[2] != 5 {
		t.Errorf("Row(1) = %v", got)
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if got.Data[i] != w {
			t.Errorf("C[%d] = %v, want %v", i, got.Data[i], w)
		}
	}
}

func TestMatMulTMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(7, 11)
	b := New(5, 11) // will be used transposed
	for i := range a.Data {
		a.Data[i] = rng.Float32()
	}
	for i := range b.Data {
		b.Data[i] = rng.Float32()
	}
	// Build explicit transpose of b.
	bt := New(11, 5)
	for r := 0; r < b.Rows; r++ {
		for c := 0; c < b.Cols; c++ {
			bt.Set(c, r, b.At(r, c))
		}
	}
	got := MatMulT(a, b)
	want := MatMul(a, bt)
	if !got.Equal(want, 1e-5) {
		t.Error("MatMulT disagrees with MatMul on transposed operand")
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestAddAndBias(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{10, 20, 30})
	if got := Add(a, b); got.Data[2] != 33 {
		t.Errorf("Add = %v", got.Data)
	}
	m := FromSlice(2, 2, []float32{0, 0, 1, 1})
	AddBias(m, []float32{5, 6})
	if m.At(0, 1) != 6 || m.At(1, 0) != 6 {
		t.Errorf("AddBias = %v", m.Data)
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(1, 3, []float32{1, 2, 3})
	SoftmaxRows(m)
	var sum float32
	for _, v := range m.Data {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-6 {
		t.Errorf("softmax row sums to %v", sum)
	}
	if !(m.Data[2] > m.Data[1] && m.Data[1] > m.Data[0]) {
		t.Errorf("softmax not monotone: %v", m.Data)
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Huge logits must not overflow.
	m := FromSlice(1, 2, []float32{1e30, 1e30})
	SoftmaxRows(m)
	if math.IsNaN(float64(m.Data[0])) || math.Abs(float64(m.Data[0])-0.5) > 1e-6 {
		t.Errorf("softmax of equal huge logits = %v", m.Data)
	}
}

func TestCausalMask(t *testing.T) {
	scores := New(3, 3)
	CausalMask(scores, 0)
	SoftmaxRows(scores)
	// Row 0 attends only to col 0; row 2 attends to all.
	if scores.At(0, 0) != 1 || scores.At(0, 1) != 0 {
		t.Errorf("row 0 after mask = %v", scores.Row(0))
	}
	if math.Abs(float64(scores.At(2, 0))-1.0/3) > 1e-6 {
		t.Errorf("row 2 after mask = %v", scores.Row(2))
	}
}

func TestCausalMaskWithOffset(t *testing.T) {
	// A decode row with 2 cached positions: offset = cached length means
	// nothing is masked for the single query row.
	scores := New(1, 3)
	CausalMask(scores, 2)
	for c := 0; c < 3; c++ {
		if math.IsInf(float64(scores.At(0, c)), -1) {
			t.Errorf("col %d unexpectedly masked", c)
		}
	}
}

func TestLayerNorm(t *testing.T) {
	m := FromSlice(1, 4, []float32{1, 2, 3, 4})
	gain := []float32{1, 1, 1, 1}
	bias := []float32{0, 0, 0, 0}
	out := LayerNorm(m, gain, bias, 1e-5)
	var mean, variance float32
	for _, v := range out.Data {
		mean += v
	}
	mean /= 4
	for _, v := range out.Data {
		variance += (v - mean) * (v - mean)
	}
	variance /= 4
	if math.Abs(float64(mean)) > 1e-6 {
		t.Errorf("normalized mean = %v", mean)
	}
	if math.Abs(float64(variance)-1) > 1e-3 {
		t.Errorf("normalized variance = %v", variance)
	}
}

func TestReLUAndGELU(t *testing.T) {
	m := FromSlice(1, 3, []float32{-1, 0, 2})
	ReLU(m)
	if m.Data[0] != 0 || m.Data[2] != 2 {
		t.Errorf("ReLU = %v", m.Data)
	}
	g := FromSlice(1, 2, []float32{0, 10})
	GELU(g)
	if g.Data[0] != 0 {
		t.Errorf("GELU(0) = %v", g.Data[0])
	}
	if math.Abs(float64(g.Data[1])-10) > 1e-3 {
		t.Errorf("GELU(10) = %v, want ≈10", g.Data[1])
	}
}

func TestConcatAndSliceCols(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(2, 2, []float32{3, 4, 5, 6})
	c := Concat(a, b)
	if c.Rows != 3 || c.At(2, 1) != 6 {
		t.Errorf("Concat = %+v", c)
	}
	s := c.SliceCols(1, 2)
	if s.Cols != 1 || s.At(0, 0) != 2 || s.At(2, 0) != 6 {
		t.Errorf("SliceCols = %+v", s)
	}
}

func TestArgmaxRow(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 5, 2, 9, 0, 3})
	if m.ArgmaxRow(0) != 1 || m.ArgmaxRow(1) != 0 {
		t.Error("ArgmaxRow wrong")
	}
}

// Property: (A·B)·C == A·(B·C) within float tolerance for small matrices.
func TestMatMulAssociativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed) + rng.Int63()))
		a, b, c := New(3, 4), New(4, 5), New(5, 2)
		for i := range a.Data {
			a.Data[i] = r.Float32() - 0.5
		}
		for i := range b.Data {
			b.Data[i] = r.Float32() - 0.5
		}
		for i := range c.Data {
			c.Data[i] = r.Float32() - 0.5
		}
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.Equal(right, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: softmax output is a probability distribution for finite input.
func TestSoftmaxDistributionProperty(t *testing.T) {
	f := func(vals [6]int8) bool {
		m := New(1, 6)
		for i, v := range vals {
			m.Data[i] = float32(v) / 8
		}
		SoftmaxRows(m)
		var sum float32
		for _, v := range m.Data {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(float64(sum)-1) < 1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSiLU(t *testing.T) {
	m := FromSlice(1, 3, []float32{0, 10, -10})
	SiLU(m)
	if m.Data[0] != 0 {
		t.Errorf("SiLU(0) = %v", m.Data[0])
	}
	if math.Abs(float64(m.Data[1])-10) > 1e-3 {
		t.Errorf("SiLU(10) = %v, want ≈10", m.Data[1])
	}
	if math.Abs(float64(m.Data[2])) > 1e-3 {
		t.Errorf("SiLU(-10) = %v, want ≈0", m.Data[2])
	}
}

func TestMulElem(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{4, 5, 6})
	MulElem(a, b)
	if a.Data[2] != 18 {
		t.Errorf("MulElem = %v", a.Data)
	}
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	MulElem(FromSlice(1, 2, []float32{1, 2}), FromSlice(2, 1, []float32{1, 2}))
}
