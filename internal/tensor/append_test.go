package tensor

import "testing"

func TestNewWithCapGrowsInPlace(t *testing.T) {
	m := NewWithCap(0, 4, 8)
	if m.Rows != 0 || m.Cols != 4 || cap(m.Data) != 32 {
		t.Fatalf("unexpected shape/cap: %dx%d cap %d", m.Rows, m.Cols, cap(m.Data))
	}
	base := &m.Data[:1][0]
	for r := 0; r < 8; r++ {
		row := New(1, 4)
		for c := range row.Data {
			row.Data[c] = float32(r*4 + c)
		}
		m = m.AppendRows(row)
		if &m.Data[0] != base {
			t.Fatalf("append reallocated backing array at row %d", r)
		}
	}
	if m.Rows != 8 {
		t.Fatalf("rows = %d, want 8", m.Rows)
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 4; c++ {
			if m.At(r, c) != float32(r*4+c) {
				t.Fatalf("element (%d,%d) = %v", r, c, m.At(r, c))
			}
		}
	}
}

func TestAppendRowsMatchesConcat(t *testing.T) {
	a := New(3, 5)
	b := New(2, 5)
	for i := range a.Data {
		a.Data[i] = float32(i)
	}
	for i := range b.Data {
		b.Data[i] = float32(100 + i)
	}
	want := Concat(a, b)
	got := a.Clone().AppendRows(b)
	if !got.Equal(want, 0) {
		t.Fatal("AppendRows result differs from Concat")
	}
}

func TestNewWithCapValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capRows < rows accepted")
		}
	}()
	NewWithCap(4, 2, 3)
}

func TestAppendRowsShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("column mismatch accepted")
		}
	}()
	New(1, 3).AppendRows(New(1, 4))
}
