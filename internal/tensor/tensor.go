// Package tensor provides the dense float32 linear algebra the functional
// LLM engine (package llm) is built on: row-major matrices, cache-blocked
// parallel GEMM, the attention primitives (softmax, scaling, causal
// masking), layer normalization, and the activation functions OPT-style
// transformers use.
//
// This is the "GPU kernel library" counterpart to package amx's tile
// pipeline: sublayers a policy places on the GPU run through these
// kernels, while CPU-offloaded sublayers run through the AMX emulator.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	// Rows and Cols give the logical shape.
	Rows, Cols int
	// Data holds Rows×Cols values in row-major order.
	Data []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewWithCap returns a zeroed rows×cols matrix whose backing array can
// hold capRows rows, so AppendRows grows it in place up to that capacity
// — the KV-cache preallocation hook.
func NewWithCap(rows, cols, capRows int) Matrix {
	if rows < 0 || cols < 0 || capRows < rows {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d (cap %d)", rows, cols, capRows))
	}
	return Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols, capRows*cols)}
}

// AppendRows returns m extended by src's rows. When m's backing array has
// capacity the existing rows are not copied (amortized O(src) instead of
// the O(m+src) a Concat pays every call).
func (m Matrix) AppendRows(src Matrix) Matrix {
	if m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: append cols %d != %d", src.Cols, m.Cols))
	}
	m.Data = append(m.Data, src.Data...)
	m.Rows += src.Rows
	return m
}

// FromSlice wraps data (length rows×cols) without copying.
func FromSlice(rows, cols int, data []float32) Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: %d values cannot form %dx%d", len(data), rows, cols))
	}
	return Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (r, c).
func (m Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set writes the element at (r, c).
func (m Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a slice aliasing the matrix storage.
func (m Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Equal reports whether two matrices have identical shapes and all
// elements within tol of each other.
func (m Matrix) Equal(other Matrix, tol float32) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - other.Data[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}

// parallelRows runs fn over [0, rows) split across GOMAXPROCS workers.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes a·b (a is M×K, b is K×N) with float32 accumulation,
// parallelized over output rows.
func MatMul(a, b Matrix) Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	k, n := a.Cols, b.Cols
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			// Four k-rows per pass amortize the orow load/store fourfold.
			// orow[j] + p0 + p1 + p2 + p3 evaluates left to right with each
			// float32 add rounded, exactly the scalar loop's sequence; any
			// zero coefficient drops to the scalar tail so the zero-skip
			// (and its effect on ±0/NaN propagation) is preserved verbatim.
			kk := 0
			for ; kk+4 <= k; kk += 4 {
				a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
				if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 {
					matmulAxpyTail(orow, arow[kk:kk+4], b.Data[kk*n:], n)
					continue
				}
				b0 := b.Data[kk*n : kk*n+n]
				b1 := b.Data[(kk+1)*n : (kk+1)*n+n]
				b2 := b.Data[(kk+2)*n : (kk+2)*n+n]
				b3 := b.Data[(kk+3)*n : (kk+3)*n+n]
				for j := range orow {
					orow[j] = orow[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			if kk < k {
				matmulAxpyTail(orow, arow[kk:k], b.Data[kk*n:], n)
			}
		}
	})
	return out
}

// matmulAxpyTail accumulates the given k-rows one at a time with the
// zero-skip — the scalar inner loop MatMul's unrolled pass falls back to
// for its remainder and for coefficient groups containing zeros.
func matmulAxpyTail(orow, coeffs, bData []float32, n int) {
	for kk, av := range coeffs {
		if av == 0 {
			continue
		}
		brow := bData[kk*n : kk*n+n]
		for j, bv := range brow {
			orow[j] += av * bv
		}
	}
}

// MatMulT computes a·bᵀ (a is M×K, b is N×K). Transposed weights keep the
// inner loop sequential for both operands, the layout attention scoring
// uses (Q·Kᵀ).
func MatMulT(a, b Matrix) Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var acc float32
				for kk, av := range arow {
					acc += av * brow[kk]
				}
				orow[j] = acc
			}
		}
	})
	return out
}

// Add returns a + b elementwise.
func Add(a, b Matrix) Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: add shape mismatch %dx%d + %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// AddBias adds the row vector bias to every row of m in place and returns m.
func AddBias(m Matrix, bias []float32) Matrix {
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: bias length %d != cols %d", len(bias), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, b := range bias {
			row[c] += b
		}
	}
	return m
}

// Scale multiplies every element by s in place and returns m.
func Scale(m Matrix, s float32) Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// SoftmaxRows applies a numerically stable softmax to each row in place
// and returns m.
func SoftmaxRows(m Matrix) Matrix {
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		maxV := float32(math.Inf(-1))
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float32
		for i, v := range row {
			e := float32(math.Exp(float64(v - maxV)))
			row[i] = e
			sum += e
		}
		if sum > 0 {
			inv := 1 / sum
			for i := range row {
				row[i] *= inv
			}
		}
	}
	return m
}

// CausalMask sets entries above the diagonal offset to -Inf so softmax
// zeroes them: row i may attend to columns ≤ i+offset. Used during prefill
// where scores are (L × L); during decode the single query row attends to
// everything, so no mask is needed.
func CausalMask(scores Matrix, offset int) Matrix {
	negInf := float32(math.Inf(-1))
	for r := 0; r < scores.Rows; r++ {
		row := scores.Row(r)
		for c := r + offset + 1; c < scores.Cols; c++ {
			row[c] = negInf
		}
	}
	return scores
}

// LayerNorm normalizes each row to zero mean and unit variance, then
// applies the learned gain and bias. eps guards the variance.
func LayerNorm(m Matrix, gain, bias []float32, eps float32) Matrix {
	if len(gain) != m.Cols || len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: layernorm params %d,%d != cols %d", len(gain), len(bias), m.Cols))
	}
	out := New(m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(m.Cols)
		var variance float32
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float32(m.Cols)
		inv := 1 / float32(math.Sqrt(float64(variance+eps)))
		orow := out.Row(r)
		for c, v := range row {
			orow[c] = (v-mean)*inv*gain[c] + bias[c]
		}
	}
	return out
}

// ReLU applies max(0, x) in place and returns m (OPT's FFN activation).
func ReLU(m Matrix) Matrix {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
	return m
}

// GELU applies the tanh-approximated Gaussian error linear unit in place
// and returns m (used by GPT/Llama-style models).
func GELU(m Matrix) Matrix {
	const c = 0.7978845608028654 // sqrt(2/π)
	for i, v := range m.Data {
		x := float64(v)
		m.Data[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
	return m
}

// SiLU applies x·sigmoid(x) in place and returns m (the gated-FFN
// activation Llama-family models use).
func SiLU(m Matrix) Matrix {
	for i, v := range m.Data {
		m.Data[i] = v / (1 + float32(math.Exp(float64(-v))))
	}
	return m
}

// MulElem multiplies a by b elementwise in place and returns a.
func MulElem(a, b Matrix) Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: mulelem shape mismatch %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := range a.Data {
		a.Data[i] *= b.Data[i]
	}
	return a
}

// Concat stacks a on top of b (matching column counts).
func Concat(a, b Matrix) Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: concat cols %d != %d", a.Cols, b.Cols))
	}
	out := New(a.Rows+b.Rows, a.Cols)
	copy(out.Data, a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// SliceCols returns columns [lo, hi) as a copy.
func (m Matrix) SliceCols(lo, hi int) Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: column slice [%d,%d) of %d cols", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r), m.Row(r)[lo:hi])
	}
	return out
}

// ArgmaxRow returns the column index of the maximum value in row r.
func (m Matrix) ArgmaxRow(r int) int {
	row := m.Row(r)
	best, bestV := 0, float32(math.Inf(-1))
	for i, v := range row {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
