package memplan

import (
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// TestOptimization1Example reproduces §5.2's worked example: OPT-30B at
// B=1, L=2016 on an A100-40GB. LIA pins ≈60% of decoder layers using
// ≈35 GB; FlexGen's coarser column granularity pins slightly less.
func TestOptimization1Example(t *testing.T) {
	lia := PlanLIAGPU(hw.A100, model.OPT30B, 1, 2016)
	if lia.PinnedLayers < 24 || lia.PinnedLayers > 34 {
		t.Errorf("LIA pinned %d layers, want ≈30 (62%% of 48)", lia.PinnedLayers)
	}
	if lia.PinnedParamFraction < 0.50 || lia.PinnedParamFraction > 0.72 {
		t.Errorf("LIA pinned fraction = %.2f, want ≈0.62", lia.PinnedParamFraction)
	}
	if lia.Used > hw.A100.MemCapacity {
		t.Errorf("plan overcommits GPU memory: %v", lia.Used)
	}
	if !lia.KVOnGPU {
		t.Error("B=1 KV cache easily fits on the GPU")
	}

	fg := PlanFlexGenGPU(hw.A100, model.OPT30B, 1, 2016)
	if fg.PinnedParamFraction >= lia.PinnedParamFraction {
		t.Errorf("FlexGen fraction %.2f should trail LIA's %.2f (granularity)",
			fg.PinnedParamFraction, lia.PinnedParamFraction)
	}
	if fg.PinnedParamFraction < 0.40 {
		t.Errorf("FlexGen fraction = %.2f, want ≈0.58", fg.PinnedParamFraction)
	}
}

func TestPinningShrinksWithBatch(t *testing.T) {
	// Table 4 commentary: Optimization-1's benefit diminishes with B as
	// activations/KV eat the spare memory.
	small := PlanLIAGPU(hw.A100, model.OPT30B, 1, 288)
	big := PlanLIAGPU(hw.A100, model.OPT30B, 900, 288)
	if big.PinnedLayers >= small.PinnedLayers {
		t.Errorf("pinned layers should shrink with B: %d → %d", small.PinnedLayers, big.PinnedLayers)
	}
	if big.KVOnGPU {
		t.Error("B=900 KV cannot live on a 40 GB GPU")
	}
}

func TestLargeModelPinsNothingMuch(t *testing.T) {
	// OPT-175B layers are 3.6 GB; a 40 GB A100 pins only a handful and
	// never the whole model.
	p := PlanLIAGPU(hw.A100, model.OPT175B, 1, 2016)
	if p.PinnedLayers > 12 {
		t.Errorf("pinned %d OPT-175B layers on 40 GB", p.PinnedLayers)
	}
	if p.PinnedLayers == model.OPT175B.Layers {
		t.Error("cannot pin all of OPT-175B")
	}
}

func TestSmallModelFullyResident(t *testing.T) {
	// OPT-6.7B fits entirely on an 80 GB H100.
	p := PlanLIAGPU(hw.H100, model.OPT6B7, 1, 2016)
	if p.PinnedLayers != model.OPT6B7.Layers {
		t.Errorf("pinned %d/%d layers", p.PinnedLayers, model.OPT6B7.Layers)
	}
	if !p.KVOnGPU {
		t.Error("KV should be resident too")
	}
}

func TestHostPlanDDROnly(t *testing.T) {
	plan, err := PlanHost(hw.SPRA100, model.OPT30B, 64, 288, cxl.DDROnlyPlacement())
	if err != nil {
		t.Fatal(err)
	}
	if plan.CXLUsed != 0 {
		t.Error("DDR-only placement must not touch CXL")
	}
	if !plan.Fits {
		t.Errorf("OPT-30B at B=64 should fit in 512 GB DDR: %v", plan)
	}
	if plan.OffloadedFraction != 0 {
		t.Error("no offload expected")
	}
}

// TestTable3OffloadFraction reproduces Table 3's offloaded percentage:
// for OPT-30B at B=900 with short sequences, parameters are a large
// minority of the footprint (paper: 43.1% at L_in=32, L_out=32, falling
// as L_out grows).
func TestTable3OffloadFraction(t *testing.T) {
	sys := hw.SPRA100.WithCXL(2, hw.SamsungCXL128)
	frac := func(lout int) float64 {
		p, err := PlanHost(sys, model.OPT30B, 900, 32+lout, cxl.PolicyPlacement())
		if err != nil {
			t.Fatal(err)
		}
		return p.OffloadedFraction
	}
	f32 := frac(32)
	if f32 < 0.30 || f32 < frac(256) {
		t.Errorf("offloaded fraction at L_out=32 = %.2f, want ≥0.30 and decreasing in L_out (got %.2f at 256)", f32, frac(256))
	}
	// Longer outputs grow the KV share, shrinking the offloadable slice —
	// the monotone trend of Table 3.
	prev := 1.0
	for _, lout := range []int{32, 64, 128, 256} {
		f := frac(lout)
		if f >= prev {
			t.Errorf("offload fraction not decreasing at L_out=%d: %.3f ≥ %.3f", lout, f, prev)
		}
		prev = f
	}
}

func TestCXLReducesDDRUse(t *testing.T) {
	sys := hw.SPRA100.WithCXL(2, hw.SamsungCXL128)
	before, err := PlanHost(sys, model.OPT30B, 900, 64, cxl.DDROnlyPlacement())
	if err != nil {
		t.Fatal(err)
	}
	after, err := PlanHost(sys, model.OPT30B, 900, 64, cxl.PolicyPlacement())
	if err != nil {
		t.Fatal(err)
	}
	saved := DDRSavings(before, after)
	if saved != model.OPT30B.ParamBytes() {
		t.Errorf("DDR savings = %v, want the parameter bytes %v", saved, model.OPT30B.ParamBytes())
	}
}

// TestMaxBatchGrowsWithCXL reproduces Table 3's second effect: under the
// *same DDR footprint* as the B=900 DDR-only run, parameter offloading
// admits a larger batch — 1580 at L_out=32 (1.76×) down to 1050 at
// L_out=256 (1.17×) in the paper.
func TestMaxBatchGrowsWithCXL(t *testing.T) {
	sys := hw.SPRA100.WithCXL(2, hw.SamsungCXL128)
	cases := []struct {
		lout      int
		wantLo    float64
		wantHi    float64
		wantRatio float64
	}{
		{32, 1350, 1850, 1.76},
		{256, 950, 1250, 1.17},
	}
	for _, tc := range cases {
		lTotal := 32 + tc.lout
		ddr, err := PlanHost(sys, model.OPT30B, 900, lTotal, cxl.DDROnlyPlacement())
		if err != nil {
			t.Fatal(err)
		}
		got, err := MaxBatchWithinDDR(sys, model.OPT30B, lTotal, ddr.DDRUsed, 8192, cxl.PolicyPlacement())
		if err != nil {
			t.Fatal(err)
		}
		if float64(got) < tc.wantLo || float64(got) > tc.wantHi {
			t.Errorf("L_out=%d: max batch = %d, want ≈%.0f (%.2fx of 900)",
				tc.lout, got, 900*tc.wantRatio, tc.wantRatio)
		}
	}
}

func TestMaxBatchZeroWhenNothingFits(t *testing.T) {
	tiny := hw.SPRA100
	tiny.CPU.DRAMCapacity = units.GiB
	got, err := MaxBatch(tiny, model.OPT175B, 2048, 1024, cxl.DDROnlyPlacement())
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("MaxBatch = %d, want 0", got)
	}
}

func TestGPUFits(t *testing.T) {
	// §7.8: OPT-175B at B=900 OOMs even on 8×80 GB.
	if GPUFits(hw.A100SXM, 8, model.OPT175B, 900, 288) {
		t.Error("B=900 should OOM a DGX-A100")
	}
	if !GPUFits(hw.A100SXM, 8, model.OPT175B, 1, 288) {
		t.Error("B=1 fits a DGX-A100")
	}
}

func TestPlanStrings(t *testing.T) {
	g := PlanLIAGPU(hw.A100, model.OPT30B, 1, 2016)
	if g.String() == "" {
		t.Error("empty GPUPlan string")
	}
	h, err := PlanHost(hw.SPRA100, model.OPT30B, 64, 288, cxl.DDROnlyPlacement())
	if err != nil {
		t.Fatal(err)
	}
	if h.String() == "" {
		t.Error("empty HostPlan string")
	}
}

// TestPlansNeverOvercommit: across batch sizes, plans stay within GPU
// capacity, and among plans with the same KV residency decision the
// pinned fraction never grows with B. (Crossing the KV-fits boundary can
// legitimately *raise* pinning: evicting the cache frees its space.)
func TestPlansNeverOvercommit(t *testing.T) {
	prev := math.Inf(1)
	prevKV := true
	for _, b := range []int{1, 8, 64, 256, 900} {
		p := PlanLIAGPU(hw.A100, model.OPT30B, b, 288)
		if p.Used > p.Capacity {
			t.Errorf("B=%d overcommits: %v > %v", b, p.Used, p.Capacity)
		}
		if p.KVOnGPU == prevKV && p.PinnedParamFraction > prev {
			t.Errorf("pinned fraction rose at B=%d without a residency change", b)
		}
		prev, prevKV = p.PinnedParamFraction, p.KVOnGPU
	}
}
