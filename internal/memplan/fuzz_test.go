package memplan

import (
	"errors"
	"testing"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// TestPlanHostRejectsDegenerateInputs pins the hardening contract: shapes
// that used to produce silently wrong plans (negative KV bytes, garbage
// fractions) now return errors.
func TestPlanHostRejectsDegenerateInputs(t *testing.T) {
	sys := hw.SPRA100
	for _, tc := range []struct {
		name   string
		b, l   int
		pl     cxl.Placement
		wantOK bool
	}{
		{"valid", 1, 64, cxl.DDROnlyPlacement(), true},
		{"zero batch", 0, 64, cxl.DDROnlyPlacement(), false},
		{"negative batch", -3, 64, cxl.DDROnlyPlacement(), false},
		{"zero context", 1, 0, cxl.DDROnlyPlacement(), false},
		{"negative context", 1, -128, cxl.DDROnlyPlacement(), false},
		{"cxl placement without expanders", 1, 64, cxl.PolicyPlacement(), false},
	} {
		_, err := PlanHost(sys, model.OPT30B, tc.b, tc.l, tc.pl)
		if tc.wantOK && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.wantOK && err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
	if _, err := PlanHost(sys, model.Config{}, 1, 64, cxl.DDROnlyPlacement()); err == nil {
		t.Error("invalid model config: expected an error")
	}
	if _, err := PlanHost(sys, model.OPT30B, 1, 64, cxl.NaivePlacement()); !errors.Is(err, ErrNoCXL) {
		t.Errorf("naive placement without expanders: want ErrNoCXL, got %v", err)
	}
	// With expanders installed the same placements plan cleanly.
	withCXL := hw.SPRA100.WithCXL(2, hw.SamsungCXL128)
	if _, err := PlanHost(withCXL, model.OPT30B, 1, 64, cxl.PolicyPlacement()); err != nil {
		t.Errorf("placement with expanders: %v", err)
	}
}

// TestMaxBatchRejectsDegenerateInputs mirrors the PlanHost contract for
// the batch searches.
func TestMaxBatchRejectsDegenerateInputs(t *testing.T) {
	if _, err := MaxBatch(hw.SPRA100, model.OPT30B, 0, 128, cxl.DDROnlyPlacement()); err == nil {
		t.Error("zero context: expected an error")
	}
	if _, err := MaxBatch(hw.SPRA100, model.OPT30B, 64, 0, cxl.DDROnlyPlacement()); err == nil {
		t.Error("zero limit: expected an error")
	}
	if _, err := MaxBatch(hw.SPRA100, model.OPT30B, 64, 128, cxl.PolicyPlacement()); !errors.Is(err, ErrNoCXL) {
		t.Error("CXL placement without expanders: want ErrNoCXL")
	}
	if _, err := MaxBatchWithinDDR(hw.SPRA100, model.OPT30B, -1, units.GiB, 128, cxl.DDROnlyPlacement()); err == nil {
		t.Error("negative context: expected an error")
	}
}

// FuzzPlanHost throws arbitrary shapes, capacities and placements at the
// host planner and checks the structural invariants every returned plan
// must satisfy: fractions in [0, 1], non-negative usage, Fits implying
// Used ≤ Capacity per tier, and byte conservation across tiers.
func FuzzPlanHost(f *testing.F) {
	f.Add(1, 288, uint(512), uint(0), 0, true, false, false)
	f.Add(900, 64, uint(512), uint(256), 2, true, false, false)
	f.Add(64, 2048, uint(64), uint(128), 4, true, true, true)
	f.Add(0, 0, uint(0), uint(0), 0, false, false, false)
	f.Add(-5, -7, uint(1), uint(1), 1, false, true, false)
	f.Fuzz(func(t *testing.T, b, lTotal int, ddrGiB, cxlGiB uint, nCXL int, pParams, pKV, pAct bool) {
		sys := hw.SPRA100
		sys.CPU.DRAMCapacity = units.Bytes(ddrGiB%4096) * units.GiB
		if nCXL < 0 {
			nCXL = -nCXL
		}
		nCXL %= 8
		if nCXL > 0 {
			exp := hw.SamsungCXL128
			exp.Capacity = units.Bytes(cxlGiB%4096) * units.GiB
			sys = sys.WithCXL(nCXL, exp)
		}
		pl := cxl.Placement{InCXL: map[cxl.DataClass]bool{
			cxl.Parameters: pParams, cxl.KVCache: pKV, cxl.Activations: pAct,
		}}
		m := model.OPT30B
		plan, err := PlanHost(sys, m, b, lTotal, pl)
		if err != nil {
			return // rejected inputs carry no invariants
		}
		if plan.OffloadedFraction < 0 || plan.OffloadedFraction > 1 {
			t.Fatalf("OffloadedFraction %v outside [0,1] (plan %v)", plan.OffloadedFraction, plan)
		}
		if plan.DDRUsed < 0 || plan.CXLUsed < 0 {
			t.Fatalf("negative usage: %v", plan)
		}
		if plan.Fits && (plan.DDRUsed > plan.DDRCapacity || plan.CXLUsed > plan.CXLCapacity) {
			t.Fatalf("Fits but overcommitted: %v", plan)
		}
		want := m.ParamBytes() + m.KVBytes(b, lTotal) + m.ActivationBytes(b, lTotal, model.Prefill)
		if got := plan.DDRUsed + plan.CXLUsed; got != want {
			t.Fatalf("placed bytes %v, footprint is %v", got, want)
		}
	})
}
