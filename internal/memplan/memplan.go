// Package memplan decides where model state lives: how many whole decoder
// layers LIA pins in otherwise-idle GPU memory (Optimization-1, §5.2),
// which sublayer columns FlexGen pins instead, whether the KV cache fits
// on the GPU at all, how host memory splits between DDR and CXL under the
// §6 policy, and the largest batch a given memory budget admits.
package memplan

import (
	"errors"
	"fmt"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// GPUPlan describes how GPU memory is used while streaming a model.
type GPUPlan struct {
	// PinnedLayers is the number of whole decoder layers whose parameters
	// stay resident (LIA's granularity). Zero for FlexGen-style plans.
	PinnedLayers int
	// PinnedParamFraction is the fraction of all decoder-layer parameter
	// bytes resident on the GPU (layers/N for LIA; the packed column
	// fraction for FlexGen).
	PinnedParamFraction float64
	// KVOnGPU reports whether the entire KV cache (at maximum context)
	// also fits in GPU memory, eliminating decode KV transfers.
	KVOnGPU bool
	// Used is the planned GPU memory consumption.
	Used units.Bytes
	// Capacity is the GPU's total memory.
	Capacity units.Bytes
}

// streamingReserve is the GPU memory a streaming framework needs
// regardless of pinning: double-buffered parameters for the current and
// next layer, plus the layer's activation working set.
func streamingReserve(m model.Config, b, l int) units.Bytes {
	return 2*m.LayerParamBytes() + m.ActivationBytes(b, l, model.Prefill)
}

// PlanLIAGPU implements Optimization-1: pin *all sublayers of as many
// decoder layers as possible* in the unused GPU memory. The KV cache
// moves on-GPU too when the remaining space holds it at maximum context
// length lMax.
func PlanLIAGPU(g hw.GPUSpec, m model.Config, b, lMax int) GPUPlan {
	plan := GPUPlan{Capacity: g.MemCapacity}
	budget := g.MemCapacity - streamingReserve(m, b, lMax)
	if budget < 0 {
		budget = 0
	}
	// KV first: a GPU-resident cache removes per-token PCIe traffic, which
	// dominates at small B (the B=1 online case).
	kv := m.KVBytes(b, lMax)
	if kv <= budget {
		plan.KVOnGPU = true
		budget -= kv
		plan.Used += kv
	}
	layer := m.LayerParamBytes()
	if layer > 0 {
		n := int(budget / layer)
		if n > m.Layers {
			n = m.Layers
		}
		plan.PinnedLayers = n
		plan.PinnedParamFraction = float64(n) / float64(m.Layers)
		plan.Used += units.Bytes(n) * layer
	}
	plan.Used += streamingReserve(m, b, lMax)
	if plan.Used > plan.Capacity {
		plan.Used = plan.Capacity
	}
	return plan
}

// paramColumns returns the per-sublayer parameter column sizes across all
// layers (FlexGen's pinning granularity: one sublayer of *all* decoder
// layers).
func paramColumns(m model.Config) []units.Bytes {
	var cols []units.Bytes
	for _, s := range model.Sublayers() {
		if s == model.QKT || s == model.SV {
			continue
		}
		cols = append(cols, m.DataY(model.Prefill, s, 1, 1)*units.Bytes(m.Layers))
	}
	return cols
}

// PlanFlexGenGPU models FlexGen's coarser placement: it pins whole
// sublayer columns (e.g. "FC1 of every layer"), greedily packing the
// largest columns that fit. The coarse granularity strands capacity that
// LIA's per-layer granularity uses (§5.2's 62% vs 58% example).
func PlanFlexGenGPU(g hw.GPUSpec, m model.Config, b, lMax int) GPUPlan {
	plan := GPUPlan{Capacity: g.MemCapacity}
	budget := g.MemCapacity - streamingReserve(m, b, lMax)
	if budget < 0 {
		budget = 0
	}
	kv := m.KVBytes(b, lMax)
	if kv <= budget {
		plan.KVOnGPU = true
		budget -= kv
		plan.Used += kv
	}
	total := m.LayerParamBytes() * units.Bytes(m.Layers)
	var pinned units.Bytes
	// Greedy largest-first packing of whole columns.
	cols := paramColumns(m)
	for {
		bestIdx := -1
		var best units.Bytes
		for i, c := range cols {
			if c > 0 && c <= budget && c > best {
				best = c
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		pinned += best
		budget -= best
		cols[bestIdx] = 0
	}
	if total > 0 {
		plan.PinnedParamFraction = float64(pinned) / float64(total)
	}
	plan.Used += pinned + streamingReserve(m, b, lMax)
	if plan.Used > plan.Capacity {
		plan.Used = plan.Capacity
	}
	return plan
}

// HostPlan describes host-side (CPU) memory consumption.
type HostPlan struct {
	// DDRUsed and CXLUsed split the footprint across tiers.
	DDRUsed, CXLUsed units.Bytes
	// DDRCapacity and CXLCapacity are the installed capacities.
	DDRCapacity, CXLCapacity units.Bytes
	// Fits reports whether both tiers hold their assignments.
	Fits bool
	// OffloadedFraction is CXLUsed / (DDRUsed + CXLUsed) — Table 3's
	// "Offloaded Percentage".
	OffloadedFraction float64
}

// ErrNoCXL reports a placement that sends data classes to CXL on a system
// with no expanders installed — a configuration error, not a capacity
// shortfall (there is no tier to be short of).
var ErrNoCXL = errors.New("memplan: placement requires CXL but no expanders are installed")

// validateHostInputs rejects the degenerate shapes that used to produce
// silently wrong plans: non-positive batch or context (negative KV and
// activation bytes), an invalid model, and CXL placements without CXL.
func validateHostInputs(sys hw.System, m model.Config, b, lTotal int, pl cxl.Placement) error {
	if b < 1 {
		return fmt.Errorf("memplan: batch must be ≥1, got %d", b)
	}
	if lTotal < 1 {
		return fmt.Errorf("memplan: context length must be ≥1, got %d", lTotal)
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("memplan: %w", err)
	}
	if sys.CXLCapacity() == 0 {
		for _, class := range []cxl.DataClass{cxl.Parameters, cxl.KVCache, cxl.Activations} {
			if pl.Holds(class) {
				return fmt.Errorf("%w (%s)", ErrNoCXL, class)
			}
		}
	}
	return nil
}

// PlanHost places the model's host-resident state (parameters, KV cache
// at full context, activations) across DDR and CXL under a placement
// policy. lTotal should be the maximum context length (L_in + L_out).
// Degenerate inputs (batch or context < 1, invalid model, CXL placement
// without expanders) return an error instead of a garbage plan.
func PlanHost(sys hw.System, m model.Config, b, lTotal int, pl cxl.Placement) (HostPlan, error) {
	if err := validateHostInputs(sys, m, b, lTotal, pl); err != nil {
		return HostPlan{}, err
	}
	plan := HostPlan{
		DDRCapacity: sys.CPU.DRAMCapacity,
		CXLCapacity: sys.CXLCapacity(),
	}
	place := func(class cxl.DataClass, bytes units.Bytes) {
		if pl.Holds(class) {
			plan.CXLUsed += bytes
		} else {
			plan.DDRUsed += bytes
		}
	}
	place(cxl.Parameters, m.ParamBytes())
	place(cxl.KVCache, m.KVBytes(b, lTotal))
	place(cxl.Activations, m.ActivationBytes(b, lTotal, model.Prefill))
	plan.Fits = plan.DDRUsed <= plan.DDRCapacity && plan.CXLUsed <= plan.CXLCapacity
	if total := plan.DDRUsed + plan.CXLUsed; total > 0 {
		plan.OffloadedFraction = float64(plan.CXLUsed) / float64(total)
	}
	return plan, nil
}

// MaxBatch returns the largest batch size whose host footprint fits under
// the placement, searching up to limit. Returns 0 when even B=1 does not
// fit, and an error for degenerate inputs (limit or context < 1, invalid
// model, CXL placement without expanders).
func MaxBatch(sys hw.System, m model.Config, lTotal, limit int, pl cxl.Placement) (int, error) {
	if limit < 1 {
		return 0, fmt.Errorf("memplan: batch search limit must be ≥1, got %d", limit)
	}
	if err := validateHostInputs(sys, m, 1, lTotal, pl); err != nil {
		return 0, err
	}
	lo, hi := 0, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		p, err := PlanHost(sys, m, mid, lTotal, pl)
		if err != nil {
			return 0, err
		}
		if p.Fits {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// MaxBatchWithinDDR returns the largest batch whose *DDR* usage stays
// within ddrBudget (and whose CXL usage fits the installed expanders)
// under the placement — Table 3's "same DDR memory footprint" comparison:
// offloading parameters to CXL frees DDR for more KV cache, admitting a
// larger B. Degenerate inputs error exactly as in MaxBatch.
func MaxBatchWithinDDR(sys hw.System, m model.Config, lTotal int, ddrBudget units.Bytes, limit int, pl cxl.Placement) (int, error) {
	if limit < 1 {
		return 0, fmt.Errorf("memplan: batch search limit must be ≥1, got %d", limit)
	}
	if err := validateHostInputs(sys, m, 1, lTotal, pl); err != nil {
		return 0, err
	}
	lo, hi := 0, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		p, err := PlanHost(sys, m, mid, lTotal, pl)
		if err != nil {
			return 0, err
		}
		if p.DDRUsed <= ddrBudget && p.CXLUsed <= p.CXLCapacity {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// GPUFits reports whether a fully GPU-resident deployment (no offloading)
// of the model at the workload shape fits in nGPUs × capacity — the
// multi-GPU OOM check of §7.8.
func GPUFits(g hw.GPUSpec, nGPUs int, m model.Config, b, lTotal int) bool {
	need := m.ParamBytes() + m.KVBytes(b, lTotal) + m.ActivationBytes(b, lTotal, model.Prefill)
	return need <= g.MemCapacity*units.Bytes(nGPUs)
}

// DDRSavings compares two host plans and returns the DDR bytes the second
// saves relative to the first (Table 3's headline).
func DDRSavings(before, after HostPlan) units.Bytes {
	return before.DDRUsed - after.DDRUsed
}

// String summarizes a GPU plan.
func (p GPUPlan) String() string {
	return fmt.Sprintf("pinned %d layers (%.0f%% of params), KV-on-GPU=%v, %s/%s used",
		p.PinnedLayers, 100*p.PinnedParamFraction, p.KVOnGPU, p.Used, p.Capacity)
}

// String summarizes a host plan.
func (p HostPlan) String() string {
	return fmt.Sprintf("DDR %s/%s, CXL %s/%s, fits=%v, offloaded=%.1f%%",
		p.DDRUsed, p.DDRCapacity, p.CXLUsed, p.CXLCapacity, p.Fits, 100*p.OffloadedFraction)
}
