package memplan

import (
	"testing"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
)

// The compressed-weight tiers reach the planners through
// model.Config.Quant: smaller per-layer parameter bytes pin more layers
// under the same HBM budget, shrink the host-resident parameter pool,
// and admit larger batches within the same DDR.

func TestCompressedVariantsPinMoreLayers(t *testing.T) {
	dense := PlanLIAGPU(hw.A100, model.OPT66B, 1, 2016)
	sparse := PlanLIAGPU(hw.A100, model.OPT66B.SparseVariant(0.5), 1, 2016)
	int4 := PlanLIAGPU(hw.A100, model.OPT66B.Int4LUTVariant(0), 1, 2016)

	if sparse.PinnedLayers <= dense.PinnedLayers {
		t.Errorf("sparse pins %d layers, dense %d — half-size layers must pin more", sparse.PinnedLayers, dense.PinnedLayers)
	}
	if int4.PinnedLayers <= sparse.PinnedLayers {
		t.Errorf("int4 pins %d layers, sparse %d — quarter-size layers must pin more still", int4.PinnedLayers, sparse.PinnedLayers)
	}
	for _, p := range []GPUPlan{sparse, int4} {
		if p.Used > hw.A100.MemCapacity {
			t.Errorf("compressed plan overcommits GPU memory: %v", p.Used)
		}
	}
}

func TestCompressedVariantsShrinkHostPlan(t *testing.T) {
	pl := cxl.DDROnlyPlacement()
	dense, err := PlanHost(hw.SPRA100, model.OPT66B, 4, 2048, pl)
	if err != nil {
		t.Fatal(err)
	}
	int4, err := PlanHost(hw.SPRA100, model.OPT66B.Int4LUTVariant(0), 4, 2048, pl)
	if err != nil {
		t.Fatal(err)
	}
	if int4.DDRUsed >= dense.DDRUsed {
		t.Errorf("int4 host plan %v not below dense %v", int4.DDRUsed, dense.DDRUsed)
	}
}

func TestCompressedVariantsAdmitBiggerBatches(t *testing.T) {
	pl := cxl.DDROnlyPlacement()
	const limit = 4096
	dense, err := MaxBatch(hw.SPRA100, model.OPT175B, 2048, limit, pl)
	if err != nil {
		t.Fatal(err)
	}
	int4, err := MaxBatch(hw.SPRA100, model.OPT175B.Int4LUTVariant(0), 2048, limit, pl)
	if err != nil {
		t.Fatal(err)
	}
	if int4 <= dense {
		t.Errorf("int4 max batch %d not above dense %d — freed DDR must become KV budget", int4, dense)
	}
}
