package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lia-sim/lia/internal/tensor"
)

func randomMatrix(rows, cols int, scale float32, seed int64) tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return m
}

func TestQuantizeWeightsRoundTrip(t *testing.T) {
	w := randomMatrix(32, 16, 0.5, 1)
	qw := QuantizeWeights(w)
	back := qw.Dequantize()
	// Per-column symmetric int8: error ≤ scale/2 per element.
	for j := 0; j < w.Cols; j++ {
		bound := float64(qw.ColScales[j]) * 0.51
		for i := 0; i < w.Rows; i++ {
			d := math.Abs(float64(w.At(i, j) - back.At(i, j)))
			if d > bound {
				t.Fatalf("(%d,%d): error %v exceeds %v", i, j, d, bound)
			}
		}
	}
}

func TestQuantizeWeightsZeroColumn(t *testing.T) {
	w := tensor.New(4, 2) // all zeros
	qw := QuantizeWeights(w)
	if qw.ColScales[0] != 1 {
		t.Error("zero column should get unit scale, not divide by zero")
	}
	back := qw.Dequantize()
	for _, v := range back.Data {
		if v != 0 {
			t.Error("zero weights must stay zero")
		}
	}
}

func TestWeightsBytes(t *testing.T) {
	qw := QuantizeWeights(randomMatrix(8, 4, 1, 2))
	// K·N int8 values + 4 bytes of float32 scale + 4 bytes of int32
	// column sum per output column — the sums are part of the shipped
	// format (the zero-point correction needs them at serve time).
	if qw.Bytes() != 8*4+4*4+4*4 {
		t.Errorf("Bytes = %d", qw.Bytes())
	}
	if qw.Footprint() != qw.Bytes() {
		t.Errorf("Footprint = %d, want Bytes %d", qw.Footprint(), qw.Bytes())
	}
}

func TestQuantizeActivationsRoundTrip(t *testing.T) {
	x := randomMatrix(5, 7, 3, 3)
	qx := QuantizeActivations(x)
	back := qx.Dequantize()
	bound := float64(qx.Scale) * 0.51
	for i := range x.Data {
		if d := math.Abs(float64(x.Data[i] - back.Data[i])); d > bound {
			t.Fatalf("element %d: error %v > %v", i, d, bound)
		}
	}
}

func TestQuantizeActivationsAllPositive(t *testing.T) {
	x := tensor.FromSlice(1, 4, []float32{1, 2, 3, 4})
	qx := QuantizeActivations(x)
	// Range is extended to include zero, so zero-point is 0.
	if qx.Zero != 0 {
		t.Errorf("zero point = %d, want 0", qx.Zero)
	}
	back := qx.Dequantize()
	if math.Abs(float64(back.At(0, 3)-4)) > float64(qx.Scale) {
		t.Error("round trip broke on all-positive input")
	}
}

func TestLinearMatchesFloatMatmul(t *testing.T) {
	x := randomMatrix(9, 33, 2, 4)
	w := randomMatrix(33, 11, 0.1, 5)
	want := tensor.MatMul(x, w)
	qw := QuantizeWeights(w)
	got, cycles, err := Linear(x, qw)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Error("Linear must run through the AMX pipeline")
	}
	// INT8×U8 with per-channel scales: expect ~1% relative error against
	// the float reference at these magnitudes.
	var ref float64
	for _, v := range want.Data {
		ref = math.Max(ref, math.Abs(float64(v)))
	}
	if e := MaxAbsError(got, want); e > 0.03*ref {
		t.Errorf("max abs error %v vs reference magnitude %v", e, ref)
	}
}

func TestLinearShapeMismatch(t *testing.T) {
	if _, _, err := Linear(tensor.New(2, 3), QuantizeWeights(tensor.New(4, 2))); err == nil {
		t.Error("shape mismatch accepted")
	}
}

// Property: quantizing, dequantizing and re-quantizing weights is stable
// (idempotent after the first pass).
func TestWeightQuantizationIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		w := randomMatrix(8, 8, 1, seed)
		q1 := QuantizeWeights(w)
		q2 := QuantizeWeights(q1.Dequantize())
		for i := range q1.Q {
			if q1.Q[i] != q2.Q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMaxAbsErrorShapeGuard(t *testing.T) {
	if !math.IsInf(MaxAbsError(tensor.New(1, 2), tensor.New(2, 1)), 1) {
		t.Error("shape mismatch should be +Inf")
	}
}
