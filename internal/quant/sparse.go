package quant

import (
	"sort"

	"github.com/lia-sim/lia/internal/amx"
	"github.com/lia-sim/lia/internal/tensor"
)

// Block-magnitude pruning for the sparse AMX tier. The tile drivers can
// only skip whole (blockK×blockN) tile blocks of the right-hand operand,
// so pruning happens at exactly that granularity: rank every block by its
// squared magnitude and zero the smallest ones until the requested
// fraction of blocks is gone. The pruned matrix is then prepacked with
// amx.PrepackBF16Sparse, whose bitmap turns every zeroed block into
// skipped TileLoads + TDP.

// SparseStats reports what PruneBlocks removed.
type SparseStats struct {
	// ZeroBlocks and TotalBlocks count tile blocks after pruning
	// (ZeroBlocks includes blocks that were already all zero).
	ZeroBlocks, TotalBlocks int
}

// Sparsity returns the zeroed-block fraction.
func (s SparseStats) Sparsity() float64 {
	if s.TotalBlocks == 0 {
		return 0
	}
	return float64(s.ZeroBlocks) / float64(s.TotalBlocks)
}

// PruneBlocks returns a copy of w (K×N) with its lowest-magnitude tile
// blocks zeroed so that at least the given fraction of blocks is zero
// (blocks that are already zero count toward the target). sparsity is
// clamped to [0, 1]; the block shape is the BF16 tile granularity the
// sparse kernel skips at.
func PruneBlocks(w tensor.Matrix, sparsity float64) (tensor.Matrix, SparseStats) {
	bk, bn := amx.BlockShapeBF16()
	return pruneBlocksAt(w, sparsity, bk, bn)
}

// PruneBlocksINT8 prunes at the INT8 tile granularity — the block shape
// the TDPBUSD zero-block bitmap skips at — so that quantizing the pruned
// matrix and prepacking it sparse skips exactly the pruned blocks.
func PruneBlocksINT8(w tensor.Matrix, sparsity float64) (tensor.Matrix, SparseStats) {
	bk, bn := amx.BlockShapeINT8()
	return pruneBlocksAt(w, sparsity, bk, bn)
}

// pruneBlocksAt is the shared magnitude-pruning body, parameterized by
// the kernel's skippable block shape.
func pruneBlocksAt(w tensor.Matrix, sparsity float64, bk, bn int) (tensor.Matrix, SparseStats) {
	if sparsity < 0 {
		sparsity = 0
	}
	if sparsity > 1 {
		sparsity = 1
	}
	kBlocks := (w.Rows + bk - 1) / bk
	nBlocks := (w.Cols + bn - 1) / bn
	total := kBlocks * nBlocks
	type blockNorm struct {
		kb, nb int
		norm   float64
	}
	norms := make([]blockNorm, 0, total)
	for kb := 0; kb < kBlocks; kb++ {
		for nb := 0; nb < nBlocks; nb++ {
			var sum float64
			for r := kb * bk; r < (kb+1)*bk && r < w.Rows; r++ {
				for c := nb * bn; c < (nb+1)*bn && c < w.Cols; c++ {
					v := float64(w.At(r, c))
					sum += v * v
				}
			}
			norms = append(norms, blockNorm{kb, nb, sum})
		}
	}
	sort.SliceStable(norms, func(i, j int) bool { return norms[i].norm < norms[j].norm })

	out := w.Clone()
	target := int(sparsity * float64(total))
	zeroed := 0
	for _, b := range norms {
		if zeroed >= target && b.norm != 0 {
			break
		}
		for r := b.kb * bk; r < (b.kb+1)*bk && r < w.Rows; r++ {
			row := out.Row(r)
			for c := b.nb * bn; c < (b.nb+1)*bn && c < w.Cols; c++ {
				row[c] = 0
			}
		}
		zeroed++
	}
	return out, SparseStats{ZeroBlocks: zeroed, TotalBlocks: total}
}

// SparseFootprint models the bytes a block-sparse BF16 encoding ships
// for a K×N weight with the given zero-block stats: the nonzero blocks'
// bf16 payload plus one bitmap bit per block. (The functional runtime
// keeps the full image resident for simplicity; the planning layers
// price the compressed form, which is what a production encoding moves.)
func SparseFootprint(k, n int, st SparseStats) int {
	if st.TotalBlocks == 0 {
		return 2 * k * n
	}
	nz := st.TotalBlocks - st.ZeroBlocks
	payload := 2 * k * n * nz / st.TotalBlocks
	return payload + (st.TotalBlocks+7)/8
}
