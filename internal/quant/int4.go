package quant

import (
	"fmt"
	"math"

	"github.com/lia-sim/lia/internal/amx"
	"github.com/lia-sim/lia/internal/tensor"
)

// INT4 group quantization — the storage format behind the LUT-GEMV
// compute tier (amx.PrepackedINT4). Weights are quantized symmetrically
// per (group, output column): within each run of Group consecutive K
// rows of a column, q = clamp(round(w/s), −8, 7) with s = max|w|/7
// rounded to bfloat16 (the 2-byte precision the format stores). Two
// codes pack per byte, so the shipped footprint is K·N/2 nibble bytes
// plus 2·N·ceil(K/Group) scale bytes — for Group 128 that is at most
// half of the INT8 format's K·N + 8·N whenever K ≤ 256 (the model
// shapes the functional engine serves; int4_test.go asserts the bound).

// DefaultGroupINT4 is the group length the serving paths use: large
// enough that the bf16 scale overhead keeps the footprint under half of
// INT8 for every tiny-model K, small enough to track per-region weight
// magnitude.
const DefaultGroupINT4 = 128

// WeightsINT4 is an INT4 group-quantized weight matrix.
type WeightsINT4 struct {
	// K and N are the logical dimensions, Group the quantization group
	// length along K (the last group of a column may be short).
	K, N, Group int
	// Codes holds the nibble codes (value = code − 8 ∈ [−8, 7]) packed
	// two per byte over the row-major flat index r·N + j: element i lives
	// in Codes[i/2], even i in the low nibble.
	Codes []uint8
	// Scales holds the bfloat16 bit patterns of the per-(group, column)
	// scales, row-major groups×N.
	Scales []uint16
	// pre is the LUT kernel's runtime image, built once at quantization
	// time (mirroring Weights.pre); nil only for hand-built values.
	pre *amx.PrepackedINT4
}

// QuantizeINT4 quantizes w (K×N float32) into the group format. group ≤ 0
// selects DefaultGroupINT4.
func QuantizeINT4(w tensor.Matrix, group int) (WeightsINT4, error) {
	if group <= 0 {
		group = DefaultGroupINT4
	}
	k, n := w.Rows, w.Cols
	if k <= 0 || n <= 0 {
		return WeightsINT4{}, fmt.Errorf("quant: int4 dimensions must be positive, got %dx%d", k, n)
	}
	groups := (k + group - 1) / group
	out := WeightsINT4{
		K: k, N: n, Group: group,
		Codes:  make([]uint8, (k*n+1)/2),
		Scales: make([]uint16, groups*n),
	}
	codes := make([]uint8, k*n)   // unpacked, for the amx image
	scales := make([]float32, groups*n)
	for j := 0; j < n; j++ {
		for g := 0; g < groups; g++ {
			lo := g * group
			hi := lo + group
			if hi > k {
				hi = k
			}
			var maxAbs float32
			for i := lo; i < hi; i++ {
				v := w.At(i, j)
				if v < 0 {
					v = -v
				}
				if v > maxAbs {
					maxAbs = v
				}
			}
			s := amx.RoundFloat32(maxAbs / 7)
			scales[g*n+j] = s
			out.Scales[g*n+j] = uint16(amx.BF16FromFloat32(s))
			for i := lo; i < hi; i++ {
				code := int32(0)
				if s != 0 {
					code = int32(math.RoundToEven(float64(w.At(i, j) / s)))
					if code > 7 {
						code = 7
					}
					if code < -8 {
						code = -8
					}
				}
				codes[i*n+j] = uint8(code + 8)
			}
		}
	}
	for i, c := range codes {
		if i%2 == 0 {
			out.Codes[i/2] |= c
		} else {
			out.Codes[i/2] |= c << 4
		}
	}
	pre, err := amx.PrepackINT4LUT(codes, k, n, group, scales)
	if err != nil {
		return WeightsINT4{}, fmt.Errorf("quant: int4 prepack: %w", err)
	}
	out.pre = pre
	return out, nil
}

// code returns the unpacked nibble at flat index i.
func (w WeightsINT4) code(i int) uint8 {
	b := w.Codes[i/2]
	if i%2 == 0 {
		return b & 0x0f
	}
	return b >> 4
}

// scale returns the float32 value of the (group g, column j) scale.
func (w WeightsINT4) scale(g, j int) float32 {
	return amx.BF16(w.Scales[g*w.N+j]).Float32()
}

// Dequantize reconstructs the float32 weights: s(g,j) · (code − 8).
func (w WeightsINT4) Dequantize() tensor.Matrix {
	out := tensor.New(w.K, w.N)
	for i := 0; i < w.K; i++ {
		g := i / w.Group
		for j := 0; j < w.N; j++ {
			out.Set(i, j, w.scale(g, j)*float32(int(w.code(i*w.N+j))-8))
		}
	}
	return out
}

// Bytes returns the shipped storage footprint: packed nibbles plus the
// 2-byte bf16 group scales. Unlike the INT8 format there is no zero-point
// side table — the LUT path consumes float activations directly.
func (w WeightsINT4) Bytes() int { return len(w.Codes) + 2*len(w.Scales) }

// Footprint is the serving-footprint accessor, identical to Bytes() —
// the INT4 twin of Weights.Footprint.
func (w WeightsINT4) Footprint() int { return w.Bytes() }

// LinearINT4LUT computes y = x·W through the LUT-GEMV kernel (table
// lookups instead of inner-loop multiplies; see amx.PrepackedINT4 for
// the numeric contract) and returns the result plus modeled cycles.
func LinearINT4LUT(x tensor.Matrix, w WeightsINT4) (tensor.Matrix, uint64, error) {
	if x.Cols != w.K {
		return tensor.Matrix{}, 0, fmt.Errorf("quant: int4 linear shape mismatch %dx%d · %dx%d", x.Rows, x.Cols, w.K, w.N)
	}
	if w.pre == nil {
		return tensor.Matrix{}, 0, fmt.Errorf("quant: int4 weights missing prepacked image (use QuantizeINT4)")
	}
	out := tensor.New(x.Rows, w.N)
	cycles, err := w.pre.GEMV4LUTInto(out.Data, x.Data, x.Rows)
	if err != nil {
		return tensor.Matrix{}, 0, err
	}
	return out, cycles, nil
}
