package quant

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/lia-sim/lia/internal/amx"
	"github.com/lia-sim/lia/internal/tensor"
)

func TestQuantizeINT4RoundTrip(t *testing.T) {
	w := randomMatrix(96, 24, 0.5, 11)
	qw, err := QuantizeINT4(w, 32)
	if err != nil {
		t.Fatal(err)
	}
	back := qw.Dequantize()
	// Symmetric 4-bit per (group, column): error ≤ s/2 per element, plus a
	// little slack for the bf16 rounding of s itself.
	groups := (w.Rows + qw.Group - 1) / qw.Group
	for j := 0; j < w.Cols; j++ {
		for g := 0; g < groups; g++ {
			bound := float64(qw.scale(g, j)) * 0.52
			lo, hi := g*qw.Group, (g+1)*qw.Group
			if hi > w.Rows {
				hi = w.Rows
			}
			for i := lo; i < hi; i++ {
				if d := math.Abs(float64(w.At(i, j) - back.At(i, j))); d > bound {
					t.Fatalf("(%d,%d): error %v exceeds s/2 bound %v", i, j, d, bound)
				}
			}
		}
	}
}

func TestQuantizeINT4ZeroGroup(t *testing.T) {
	w := tensor.New(8, 3) // all zeros
	qw, err := QuantizeINT4(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range qw.Dequantize().Data {
		if v != 0 {
			t.Fatal("zero weights must stay zero")
		}
	}
}

// The ISSUE's footprint bound: the INT4 format ships at most half the
// bytes of the INT8 format for every weight shape the functional engine
// serves (K up to a few hundred at the default group of 128 — the bf16
// group scales cost 2·N·ceil(K/128) against INT8's 8·N side tables, so
// the bound holds exactly when ceil(K/128) ≤ (K/2 + 8 − K/2·...)… see
// int4.go; here we assert it directly on served shapes).
func TestINT4FootprintAtMostHalfOfINT8(t *testing.T) {
	for _, dims := range [][2]int{{64, 64}, {128, 384}, {256, 96}, {96, 256}} {
		w := randomMatrix(dims[0], dims[1], 1, int64(dims[0]))
		q8 := QuantizeWeights(w)
		q4, err := QuantizeINT4(w, 0) // DefaultGroupINT4
		if err != nil {
			t.Fatal(err)
		}
		if 2*q4.Bytes() > q8.Bytes() {
			t.Errorf("%dx%d: int4 %d B not ≤ half of int8 %d B", dims[0], dims[1], q4.Bytes(), q8.Bytes())
		}
		if q4.Footprint() != q4.Bytes() {
			t.Errorf("Footprint = %d, want Bytes %d", q4.Footprint(), q4.Bytes())
		}
	}
}

func TestLinearINT4LUTMatchesDequantizedReference(t *testing.T) {
	x := randomMatrix(3, 96, 2, 12)
	w := randomMatrix(96, 40, 0.1, 13)
	qw, err := QuantizeINT4(w, 32)
	if err != nil {
		t.Fatal(err)
	}
	got, cycles, err := LinearINT4LUT(x, qw)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Error("LUT path must account cycles")
	}
	// The LUT kernel factors the bf16 group scale out of the lookup sum
	// and accumulates in a different order, so it is not bit-identical to
	// dequantize-then-matmul — the documented contract (DESIGN.md) is a
	// 5e-3 relative float tolerance.
	want := tensor.MatMul(x, qw.Dequantize())
	var ref float64
	for _, v := range want.Data {
		ref = math.Max(ref, math.Abs(float64(v)))
	}
	if e := MaxAbsError(got, want); e > 5e-3*math.Max(ref, 1) {
		t.Errorf("max abs error %v vs reference magnitude %v", e, ref)
	}
}

func TestLinearINT4LUTShapeMismatch(t *testing.T) {
	qw, err := QuantizeINT4(randomMatrix(8, 4, 1, 14), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LinearINT4LUT(tensor.New(2, 7), qw); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, _, err := LinearINT4LUT(tensor.New(2, 8), WeightsINT4{K: 8, N: 4, Group: 4}); err == nil {
		t.Error("missing prepacked image accepted")
	}
}

func TestQuantizeINT4RejectsBadDims(t *testing.T) {
	if _, err := QuantizeINT4(tensor.Matrix{}, 16); err == nil {
		t.Error("empty matrix accepted")
	}
}

// Property: INT4 quantization is idempotent after the first pass — the
// bf16 scales and nibble codes survive a dequantize/requantize cycle.
func TestINT4QuantizationIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		w := randomMatrix(16, 8, 1, seed)
		q1, err := QuantizeINT4(w, 8)
		if err != nil {
			return false
		}
		q2, err := QuantizeINT4(q1.Dequantize(), 8)
		if err != nil {
			return false
		}
		for i := range q1.Codes {
			if q1.Codes[i] != q2.Codes[i] {
				return false
			}
		}
		for i := range q1.Scales {
			if q1.Scales[i] != q2.Scales[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The block-pruning helper must hit its sparsity target at exactly the
// kernel's skip granularity and report honest stats.
func TestPruneBlocksTargetsAndFootprint(t *testing.T) {
	w := randomMatrix(96, 64, 1, 15)
	pruned, st := PruneBlocks(w, 0.5)
	if got := st.Sparsity(); got < 0.5 {
		t.Fatalf("sparsity %v below target", got)
	}
	pre, err := amx.PrepackBF16Sparse(pruned.Data, pruned.Rows, pruned.Cols)
	if err != nil {
		t.Fatal(err)
	}
	nz, total := pre.BlockStats()
	if total != st.TotalBlocks || total-nz != st.ZeroBlocks {
		t.Errorf("prepack sees %d/%d zero blocks, prune reported %d/%d",
			total-nz, total, st.ZeroBlocks, st.TotalBlocks)
	}
	// Compressed footprint shrinks with sparsity and never exceeds dense.
	dense := 2 * w.Rows * w.Cols
	if f := SparseFootprint(w.Rows, w.Cols, st); f >= dense {
		t.Errorf("sparse footprint %d not below dense %d", f, dense)
	}
	if f := SparseFootprint(w.Rows, w.Cols, SparseStats{}); f != dense {
		t.Errorf("empty stats must price dense bytes, got %d", f)
	}
}

func TestPruneBlocksAllAndNothing(t *testing.T) {
	w := randomMatrix(32, 32, 1, 16)
	if _, st := PruneBlocks(w, 0); st.ZeroBlocks != 0 {
		t.Errorf("sparsity 0 zeroed %d blocks", st.ZeroBlocks)
	}
	all, st := PruneBlocks(w, 1)
	if st.ZeroBlocks != st.TotalBlocks {
		t.Errorf("sparsity 1 left %d live blocks", st.TotalBlocks-st.ZeroBlocks)
	}
	for _, v := range all.Data {
		if v != 0 {
			t.Fatal("sparsity 1 must zero everything")
		}
	}
}
