// Package quant implements INT8 post-training quantization for the
// functional engine and the quantized-deployment studies: symmetric
// per-output-channel weight quantization, asymmetric per-tensor
// activation quantization, and a fused Linear that runs the integer
// product through the emulated AMX TDPBUSD pipeline and dequantizes with
// the zero-point correction.
//
// The paper positions quantization as the orthogonal compression
// alternative to offloading (§1: even 4-bit OPT-175B still needs two
// H100s); this package lets the reproduction quantify that trade-off —
// INT8 halves parameter bytes (and therefore every D_Y transfer and
// memory footprint in the analytical model) at a bounded accuracy cost
// the functional engine can measure directly.
package quant

import (
	"fmt"
	"math"

	"github.com/lia-sim/lia/internal/amx"
	"github.com/lia-sim/lia/internal/tensor"
)

// Weights is an INT8 weight matrix with per-output-channel scales.
type Weights struct {
	// Q holds the quantized values, row-major K×N.
	Q []int8
	// K and N are the logical dimensions.
	K, N int
	// ColScales holds one dequantization scale per output column.
	ColScales []float32
	// ColSums caches Σ_k Q[k][j], needed for the activation zero-point
	// correction.
	ColSums []int32
	// pre is the prepacked form of Q, built once at quantization time so
	// Linear never re-packs the static operand: the VNNI tile image plus
	// the decoded column-major lane view amx's fast path consumes
	// (PrepackINT8 builds both; packing is layout-only, so results are
	// unchanged). Nil for hand-built Weights, which fall back to the
	// per-call packing path.
	pre *amx.PrepackedINT8
}

// QuantizeWeights quantizes w (K×N float32) symmetrically per output
// column: q = round(w / s_j), s_j = max|w[:,j]| / 127.
func QuantizeWeights(w tensor.Matrix) Weights {
	k, n := w.Rows, w.Cols
	out := Weights{
		Q:         make([]int8, k*n),
		K:         k,
		N:         n,
		ColScales: make([]float32, n),
		ColSums:   make([]int32, n),
	}
	for j := 0; j < n; j++ {
		var maxAbs float32
		for i := 0; i < k; i++ {
			v := w.At(i, j)
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1
		}
		out.ColScales[j] = scale
		for i := 0; i < k; i++ {
			q := int32(math.RoundToEven(float64(w.At(i, j) / scale)))
			if q > 127 {
				q = 127
			}
			if q < -127 {
				q = -127
			}
			out.Q[i*n+j] = int8(q)
			out.ColSums[j] += q
		}
	}
	pre, err := amx.PrepackINT8(out.Q, k, n)
	if err != nil {
		panic(fmt.Sprintf("quant: prepack: %v", err))
	}
	out.pre = pre
	return out
}

// QuantizeWeightsSparse prunes w to the requested block-sparsity at the
// INT8 tile granularity, quantizes the pruned matrix per output column,
// and prepacks it through amx.PrepackINT8Sparse so the TDPBUSD drivers
// skip the zeroed blocks. A pruned element quantizes to code 0 exactly
// (round(0/s) = 0), so the sparse image's skipped blocks contribute the
// same +0 the dense kernel would compute — results are bit-identical to
// QuantizeWeights over the pruned matrix.
func QuantizeWeightsSparse(w tensor.Matrix, sparsity float64) (Weights, SparseStats) {
	pruned, stats := PruneBlocksINT8(w, sparsity)
	out := QuantizeWeights(pruned)
	pre, err := amx.PrepackINT8Sparse(out.Q, out.K, out.N)
	if err != nil {
		panic(fmt.Sprintf("quant: sparse prepack: %v", err))
	}
	out.pre = pre
	return out, stats
}

// BlockStats reports the prepacked image's (nonzero, total) tile-block
// counts — (0, 0) for hand-built Weights with no prepacked form. For
// dense-prepacked weights every block counts as nonzero.
func (w Weights) BlockStats() (nz, total int) {
	if w.pre == nil {
		return 0, 0
	}
	return w.pre.BlockStats()
}

// FootprintSparse models the bytes a block-sparse INT8 encoding ships:
// the nonzero blocks' int8 payload, one bitmap bit per block, and the
// full per-column side tables (scales + column sums — both are needed
// for dequantization regardless of sparsity).
func (w Weights) FootprintSparse() int {
	nz, total := w.BlockStats()
	side := 4*len(w.ColScales) + 4*len(w.ColSums)
	if total == 0 {
		return len(w.Q) + side
	}
	payload := len(w.Q) * nz / total
	return payload + (total+7)/8 + side
}

// Dequantize reconstructs the float32 weights.
func (w Weights) Dequantize() tensor.Matrix {
	out := tensor.New(w.K, w.N)
	for i := 0; i < w.K; i++ {
		for j := 0; j < w.N; j++ {
			out.Set(i, j, float32(w.Q[i*w.N+j])*w.ColScales[j])
		}
	}
	return out
}

// Bytes returns the quantized storage footprint: the int8 values plus
// every per-column side table the format ships — the float32 scales AND
// the int32 column sums (the zero-point correction cannot be applied
// without them, so a serving deployment stores them alongside the
// weights; earlier revisions omitted them and under-counted by 4 bytes
// per output column).
func (w Weights) Bytes() int { return len(w.Q) + 4*len(w.ColScales) + 4*len(w.ColSums) }

// Footprint is the serving-footprint accessor the planning layers
// (memplan scaled plans, offload traffic accounting, gateway metrics)
// read: the bytes a deployment must hold resident for this weight —
// identical to Bytes(). The dense BF16 image it replaces costs 2·K·N, so
// the INT8 scale factor is (K·N + 8·N) / (2·K·N) ≈ ½ for K ≫ 8.
func (w Weights) Footprint() int { return w.Bytes() }

// Activations is an asymmetric per-tensor uint8 quantization of an
// activation matrix: x ≈ scale · (q − zero).
type Activations struct {
	// Q holds the quantized values, row-major M×K.
	Q []uint8
	// M and K are the logical dimensions.
	M, K int
	// Scale and Zero define the affine mapping.
	Scale float32
	// Zero is the uint8 zero point.
	Zero uint8
}

// QuantizeActivations maps x's observed range onto [0, 255].
func QuantizeActivations(x tensor.Matrix) Activations {
	minV, maxV := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, v := range x.Data {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if minV > 0 {
		minV = 0
	}
	if maxV < 0 {
		maxV = 0
	}
	scale := (maxV - minV) / 255
	if scale == 0 {
		scale = 1
	}
	zero := uint8(math.RoundToEven(float64(-minV / scale)))
	out := Activations{
		Q:     make([]uint8, len(x.Data)),
		M:     x.Rows,
		K:     x.Cols,
		Scale: scale,
		Zero:  zero,
	}
	for i, v := range x.Data {
		q := int32(math.RoundToEven(float64(v/scale))) + int32(zero)
		if q < 0 {
			q = 0
		}
		if q > 255 {
			q = 255
		}
		out.Q[i] = uint8(q)
	}
	return out
}

// Dequantize reconstructs the float32 activations.
func (a Activations) Dequantize() tensor.Matrix {
	out := tensor.New(a.M, a.K)
	for i, q := range a.Q {
		out.Data[i] = a.Scale * (float32(q) - float32(a.Zero))
	}
	return out
}

// Linear computes y = x·W using the AMX INT8 pipeline: x is quantized to
// uint8, the integer product runs through TDPBUSD, and the result is
// dequantized with the zero-point correction
//
//	y[i][j] = s_x · s_j · (Σ_k q_x[i][k]·q_w[k][j] − z_x · Σ_k q_w[k][j]).
//
// It returns the float32 result and the AMX cycles consumed.
func Linear(x tensor.Matrix, w Weights) (tensor.Matrix, uint64, error) {
	if x.Cols != w.K {
		return tensor.Matrix{}, 0, fmt.Errorf("quant: linear shape mismatch %dx%d · %dx%d", x.Rows, x.Cols, w.K, w.N)
	}
	qx := QuantizeActivations(x)
	var (
		acc    []int32
		cycles uint64
		err    error
	)
	if w.pre != nil {
		acc, cycles, err = amx.MatmulINT8Packed(qx.Q, qx.M, w.pre)
	} else {
		acc, cycles, err = amx.MatmulINT8(qx.Q, w.Q, qx.M, qx.K, w.N)
	}
	if err != nil {
		return tensor.Matrix{}, 0, err
	}
	out := tensor.New(x.Rows, w.N)
	zx := int32(qx.Zero)
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < w.N; j++ {
			corrected := acc[i*w.N+j] - zx*w.ColSums[j]
			out.Set(i, j, qx.Scale*w.ColScales[j]*float32(corrected))
		}
	}
	return out, cycles, nil
}

// MaxAbsError returns the largest absolute elementwise difference between
// two equally-shaped matrices — the quantization-error metric tests use.
func MaxAbsError(a, b tensor.Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var worst float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}
