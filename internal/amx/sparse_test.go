package amx

import (
	"math"
	"math/rand"
	"testing"
)

// This file pins the sparse tier: zero-block bitmaps built at prepack
// time, the drivers' block skips (decoded and byte oracle taking the
// same skips, bit-identical to each other and to the dense product on
// finite inputs), the exact cycles-∝-nonzero-blocks model, and the
// measurable speedup the skip buys.

// blockSparseBF16 builds a k×n matrix whose (blockK×blockN) tile blocks
// are zeroed according to zeroBlock(kb, cb); nonzero blocks get values
// from rng offset away from zero so no product cancels to ±0.
func blockSparseBF16(rng *rand.Rand, k, n int, zeroBlock func(kb, cb int) bool) []float32 {
	b := make([]float32, k*n)
	for r := 0; r < k; r++ {
		for c := 0; c < n; c++ {
			if !zeroBlock(r/blockK, c/blockN) {
				b[r*n+c] = float32(rng.NormFloat64()) + 0.25
			}
		}
	}
	return b
}

// sameF32ZeroTolerant compares float32 slices bit-for-bit except that
// +0.0 and -0.0 compare equal (the documented sparse-skip corner: a
// skipped block's ±0.0 adds can only flip the sign of an exactly-zero
// accumulator lane).
func sameF32ZeroTolerant(t *testing.T, got, want []float32, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] == 0 && want[i] == 0 {
			continue
		}
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %g (bits %#x), want %g (bits %#x)",
				label, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

func TestSparsePrepackMatchesDenseBF16(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ m, k, n int }{
		{1, 64, 48},   // decode GEMV, padded N
		{1, 96, 64},   // ragged K
		{5, 64, 64},   // partial row block
		{33, 128, 80}, // multi row block
	}
	for _, sh := range shapes {
		kb := ceilDiv(sh.k, blockK)
		cb := ceilDiv(sh.n, blockN)
		for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
			zero := make(map[int]bool)
			total := kb * cb
			for i := 0; i < int(frac*float64(total)); i++ {
				zero[i*7919%total] = true
			}
			b := blockSparseBF16(rng, sh.k, sh.n, func(kbi, cbi int) bool { return zero[cbi*kb+kbi] })
			a := make([]float32, sh.m*sh.k)
			for i := range a {
				a[i] = float32(rng.NormFloat64())
			}

			dense, err := PrepackBF16(b, sh.k, sh.n)
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := PrepackBF16Sparse(b, sh.k, sh.n)
			if err != nil {
				t.Fatal(err)
			}
			nz, tot := sparse.BlockStats()
			if tot != total {
				t.Fatalf("total blocks %d, want %d", tot, total)
			}
			if tot-nz < len(zero) {
				// >=: a random nonzero block could still round to all-zero bf16 — not with +0.25 offset.
				t.Fatalf("sparsity %.2f: %d zero blocks found, want >= %d", frac, tot-nz, len(zero))
			}

			want, _, err := MatmulBF16Packed(a, sh.m, dense)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := MatmulBF16Packed(a, sh.m, sparse)
			if err != nil {
				t.Fatal(err)
			}
			sameF32ZeroTolerant(t, got, want, "sparse decoded vs dense")

			// Byte-path oracle with the same bitmap takes the same skips.
			byteOp, err := prepackBF16Bytes(b, sh.k, sh.n)
			if err != nil {
				t.Fatal(err)
			}
			byteOp.zero = scanZeroBF16VNNI(byteOp.vnni, byteOp.padK, byteOp.padN)
			gotBytes, _, err := MatmulBF16Packed(a, sh.m, byteOp)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(gotBytes[i]) {
					t.Fatalf("sparse byte oracle diverged from decoded at %d: %g vs %g", i, gotBytes[i], got[i])
				}
			}
		}
	}
}

func TestSparsePrepackMatchesDenseINT8(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range []struct{ m, k, n int }{{1, 128, 48}, {7, 64, 32}, {20, 192, 64}} {
		kb := ceilDiv(sh.k, blockKi8)
		cb := ceilDiv(sh.n, blockNi8)
		total := kb * cb
		zero := make(map[int]bool)
		for i := 0; i < total/2; i++ {
			zero[i*31%total] = true
		}
		b := make([]int8, sh.k*sh.n)
		for r := 0; r < sh.k; r++ {
			for c := 0; c < sh.n; c++ {
				if !zero[(c/blockNi8)*kb+r/blockKi8] {
					b[r*sh.n+c] = int8(rng.Intn(255) - 127)
				}
			}
		}
		a := make([]uint8, sh.m*sh.k)
		for i := range a {
			a[i] = uint8(rng.Intn(256))
		}
		dense, err := PrepackINT8(b, sh.k, sh.n)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := PrepackINT8Sparse(b, sh.k, sh.n)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := MatmulINT8Packed(a, sh.m, dense)
		if err != nil {
			t.Fatal(err)
		}
		got, cySparse, err := MatmulINT8Packed(a, sh.m, sparse)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("int8 sparse diverged at %d: %d vs %d", i, got[i], want[i])
			}
		}
		_, cyDense, err := MatmulINT8Packed(a, sh.m, dense)
		if err != nil {
			t.Fatal(err)
		}
		if cySparse >= cyDense {
			t.Fatalf("int8 sparse cycles %d not below dense %d", cySparse, cyDense)
		}
	}
}

// TestSparseCyclesModelExact pins PredictCycles to the emulator's
// measured accounting: on a warm unit the GEMV consumes exactly the
// predicted cycles; a cold unit adds at most one palette configure.
func TestSparseCyclesModelExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	k, n := 256, 128
	kb, cb := k/blockK, n/blockN
	b := blockSparseBF16(rng, k, n, func(kbi, cbi int) bool { return (kbi+cbi)%2 == 0 })
	for _, build := range []struct {
		name string
		mk   func() (*Prepacked, error)
	}{
		{"sparse", func() (*Prepacked, error) { return PrepackBF16Sparse(b, k, n) }},
		{"dense", func() (*Prepacked, error) { return PrepackBF16(b, k, n) }},
	} {
		w, err := build.mk()
		if err != nil {
			t.Fatal(err)
		}
		a := make([]float32, k)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		for _, m := range []int{1, 9, 16} {
			am := make([]float32, m*k)
			for i := range am {
				am[i] = float32(rng.NormFloat64())
			}
			want := w.PredictCycles(m)
			// Two calls: the second is guaranteed warm only when the caller
			// unit survives the pool round-trip, so accept the configure term.
			for call := 0; call < 2; call++ {
				_, cy, err := MatmulBF16Packed(am, m, w)
				if err != nil {
					t.Fatal(err)
				}
				if cy != want && cy != want+cyclesConfig {
					t.Fatalf("%s m=%d call %d: measured %d cycles, predicted %d (+%d config)",
						build.name, m, call, cy, want, cyclesConfig)
				}
			}
		}
	}
	// Sanity: the checkerboard's predicted saving is exactly the skipped
	// blocks' TileLoads + TDP.
	sparse, _ := PrepackBF16Sparse(b, k, n)
	dense, _ := PrepackBF16(b, k, n)
	nz, total := sparse.BlockStats()
	if nz != total/2 {
		t.Fatalf("checkerboard nonzero blocks %d of %d, want half", nz, total)
	}
	saved := dense.PredictCycles(1) - sparse.PredictCycles(1)
	if want := uint64(total-nz) * (2*cyclesTileLoad + cyclesTDP); saved != want {
		t.Fatalf("predicted saving %d cycles, want %d", saved, want)
	}
	_ = kb
	_ = cb
}

// TestSparseDecodeFaster is the acceptance gate: at 50% block sparsity
// the sparse GEMV must beat dense measurably — here by at least 1.3x in
// modeled cycles (the exact ratio is (9·cb+32·blocks)/(9·cb+32·nz)).
func TestSparseDecodeFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	k, n := 512, 256
	b := blockSparseBF16(rng, k, n, func(kbi, cbi int) bool { return (kbi+cbi)%2 == 0 })
	sparse, err := PrepackBF16Sparse(b, k, n)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := PrepackBF16(b, k, n)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, k)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	var cyS, cyD uint64
	for call := 0; call < 2; call++ { // second call is palette-warm
		_, cyS, err = MatmulBF16Packed(a, 1, sparse)
		if err != nil {
			t.Fatal(err)
		}
		_, cyD, err = MatmulBF16Packed(a, 1, dense)
		if err != nil {
			t.Fatal(err)
		}
	}
	if ratio := float64(cyD) / float64(cyS); ratio < 1.3 {
		t.Fatalf("50%% block sparsity speedup %.2fx (dense %d vs sparse %d cycles), want >= 1.3x", ratio, cyD, cyS)
	}
}

// FuzzSparsePrepack round-trips arbitrary block-zero patterns — including
// the all-zero and no-zero extremes seeded below — through dense and
// sparse images of the same matrix and requires equivalent products
// (±0.0-tolerant) plus bit-identical byte-oracle/decoded sparse paths
// and a bitmap that counts at least the planted zero blocks.
func FuzzSparsePrepack(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(2), uint64(0))      // no zero blocks
	f.Add(int64(2), uint8(2), uint8(3), uint8(2), ^uint64(0))     // all blocks zero
	f.Add(int64(3), uint8(1), uint8(4), uint8(4), uint64(0xA5A5)) // checkerboard-ish
	f.Add(int64(4), uint8(16), uint8(1), uint8(1), uint64(1))     // single block, multi row
	f.Fuzz(func(t *testing.T, seed int64, mRaw, kbRaw, cbRaw uint8, mask uint64) {
		m := int(mRaw)%33 + 1
		kBlocks := int(kbRaw)%4 + 1
		colBlocks := int(cbRaw)%4 + 1
		// Offsets must stay non-negative: a negative seed would *grow* k/n
		// past the planned block counts and add unplanned blocks.
		kOff := int(seed % 7)
		if kOff < 0 {
			kOff = -kOff
		}
		nOff := int(seed % 5)
		if nOff < 0 {
			nOff = -nOff
		}
		k := kBlocks*blockK - kOff*2 // exercise ragged K too
		if k < 1 {
			k = kBlocks * blockK
		}
		n := colBlocks*blockN - nOff
		if n < 1 {
			n = colBlocks * blockN
		}
		rng := rand.New(rand.NewSource(seed))
		planted := 0
		b := blockSparseBF16(rng, k, n, func(kbi, cbi int) bool {
			return mask&(1<<uint((cbi*kBlocks+kbi)%64)) != 0
		})
		for cbi := 0; cbi < colBlocks; cbi++ {
			for kbi := 0; kbi < kBlocks; kbi++ {
				if mask&(1<<uint((cbi*kBlocks+kbi)%64)) != 0 {
					planted++
				}
			}
		}
		a := make([]float32, m*k)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}

		dense, err := PrepackBF16(b, k, n)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := PrepackBF16Sparse(b, k, n)
		if err != nil {
			t.Fatal(err)
		}
		nz, total := sparse.BlockStats()
		if total != kBlocks*colBlocks || total-nz < planted {
			t.Fatalf("block stats nz=%d total=%d, planted %d zero of %d", nz, total, planted, kBlocks*colBlocks)
		}
		want, _, err := MatmulBF16Packed(a, m, dense)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := MatmulBF16Packed(a, m, sparse)
		if err != nil {
			t.Fatal(err)
		}
		sameF32ZeroTolerant(t, got, want, "fuzz sparse vs dense")

		byteOp, err := prepackBF16Bytes(b, k, n)
		if err != nil {
			t.Fatal(err)
		}
		byteOp.zero = scanZeroBF16VNNI(byteOp.vnni, byteOp.padK, byteOp.padN)
		if bnz, btot := byteOp.BlockStats(); bnz != nz || btot != total {
			t.Fatalf("byte-image bitmap (%d/%d) disagrees with decoded (%d/%d)", bnz, btot, nz, total)
		}
		gotBytes, _, err := MatmulBF16Packed(a, m, byteOp)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(gotBytes[i]) {
				t.Fatalf("sparse byte vs decoded at %d: %g vs %g", i, gotBytes[i], got[i])
			}
		}
	})
}

// TestLUTGEMVMatchesDequantizedReference pins the INT4 LUT kernel to a
// dequantize-then-reference-GEMM oracle within the tier's documented
// float tolerance, and its cycles model to the deterministic formula.
func TestLUTGEMVMatchesDequantizedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sh := range []struct{ m, k, n, g int }{{1, 64, 48, 32}, {3, 96, 40, 64}, {2, 128, 64, 128}} {
		groups := ceilDiv(sh.k, sh.g)
		codes := make([]uint8, sh.k*sh.n)
		scales := make([]float32, groups*sh.n)
		for i := range codes {
			codes[i] = uint8(rng.Intn(16))
		}
		for i := range scales {
			scales[i] = float32(rng.Float64()*0.1 + 0.01)
		}
		w, err := PrepackINT4LUT(codes, sh.k, sh.n, sh.g, scales)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float32, sh.m*sh.k)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		got, cycles, err := w.GEMV4LUT(x, sh.m)
		if err != nil {
			t.Fatal(err)
		}
		if cycles != w.PredictCycles(sh.m) {
			t.Fatalf("cycles %d != model %d", cycles, w.PredictCycles(sh.m))
		}
		// Oracle: dequantize and accumulate in float64.
		var maxAbs float64
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				var acc float64
				for kk := 0; kk < sh.k; kk++ {
					s := float64(RoundFloat32(scales[(kk/sh.g)*sh.n+j]))
					wv := s * float64(int(codes[kk*sh.n+j])-8)
					acc += float64(RoundFloat32(x[i*sh.k+kk])) * wv
				}
				if d := math.Abs(acc - float64(got[i*sh.n+j])); d > maxAbs {
					maxAbs = d
				}
			}
		}
		if maxAbs > 1e-3 {
			t.Fatalf("%dx%dx%d g=%d: LUT vs dequantized oracle max abs error %g > 1e-3", sh.m, sh.k, sh.n, sh.g, maxAbs)
		}
	}
}

func TestLUTPrepackValidation(t *testing.T) {
	codes := make([]uint8, 32*16)
	scales := make([]float32, 16)
	if _, err := PrepackINT4LUT(codes, 32, 16, 32, scales); err != nil {
		t.Fatalf("valid prepack rejected: %v", err)
	}
	if _, err := PrepackINT4LUT(codes[:10], 32, 16, 32, scales); err == nil {
		t.Fatal("short codes accepted")
	}
	if _, err := PrepackINT4LUT(codes, 32, 16, 0, scales); err == nil {
		t.Fatal("zero group accepted")
	}
	if _, err := PrepackINT4LUT(codes, 32, 16, 16, scales); err == nil {
		t.Fatal("scale count mismatch accepted")
	}
	bad := make([]uint8, 32*16)
	bad[5] = 16
	if _, err := PrepackINT4LUT(bad, 32, 16, 32, scales); err == nil {
		t.Fatal("out-of-range nibble accepted")
	}
}
