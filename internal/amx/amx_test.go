package amx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBF16RoundTrip(t *testing.T) {
	cases := []float32{0, 1, -1, 0.5, 3.140625, 65504, 1e-3, -2.5e7}
	for _, f := range cases {
		got := BF16FromFloat32(f).Float32()
		rel := math.Abs(float64(got-f)) / math.Max(1e-30, math.Abs(float64(f)))
		if rel > 1.0/128 { // bf16 has 8 significand bits
			t.Errorf("BF16 round trip of %v = %v (rel err %v)", f, got, rel)
		}
	}
}

func TestBF16SpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	if got := BF16FromFloat32(inf).Float32(); got != inf {
		t.Errorf("+Inf → %v", got)
	}
	nan := float32(math.NaN())
	if got := BF16FromFloat32(nan).Float32(); !math.IsNaN(float64(got)) {
		t.Errorf("NaN → %v, want NaN", got)
	}
	// Exact bf16 values survive unchanged.
	if got := RoundFloat32(1.5); got != 1.5 {
		t.Errorf("1.5 → %v", got)
	}
}

func TestBF16RoundToNearestEven(t *testing.T) {
	// bf16 has 7 mantissa bits, so 1 + 2^-8 is exactly halfway between
	// bf16(1.0) and the next representable value 1 + 2^-7; ties round to
	// even (1.0).
	halfway := float32(1 + 1.0/256)
	if got := RoundFloat32(halfway); got != 1.0 {
		t.Errorf("tie %v → %v, want 1.0", halfway, got)
	}
	// Just above the tie rounds up.
	above := math.Float32frombits(math.Float32bits(halfway) + 1)
	if got := RoundFloat32(above); got != 1+1.0/128 {
		t.Errorf("above-tie %v → %v, want %v", above, got, 1+1.0/128)
	}
}

func TestBF16IdempotentProperty(t *testing.T) {
	f := func(bits uint32) bool {
		v := math.Float32frombits(bits)
		if v != v { // NaN: just require NaN-ness is preserved
			r := RoundFloat32(v)
			return r != r
		}
		once := RoundFloat32(v)
		twice := RoundFloat32(once)
		return once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnitFaultsWhenUnconfigured(t *testing.T) {
	u := NewUnit()
	if err := u.TileZero(0); !errors.Is(err, ErrNotConfigured) {
		t.Errorf("TileZero on INIT unit: %v, want ErrNotConfigured", err)
	}
	if err := u.TileLoad(9, nil, 64); !errors.Is(err, ErrBadTile) {
		t.Errorf("tmm9: %v, want ErrBadTile", err)
	}
}

func TestConfigureRejectsBadShapes(t *testing.T) {
	u := NewUnit()
	cfg := TileConfig{}
	cfg.Tiles[0] = TileShape{Rows: 17, ColBytes: 64}
	if err := u.Configure(cfg); !errors.Is(err, ErrShape) {
		t.Errorf("rows=17: %v, want ErrShape", err)
	}
	cfg.Tiles[0] = TileShape{Rows: 16, ColBytes: 65}
	if err := u.Configure(cfg); !errors.Is(err, ErrShape) {
		t.Errorf("colsb=65: %v, want ErrShape", err)
	}
}

func TestTileLoadStoreRoundTrip(t *testing.T) {
	u := NewUnit()
	cfg := TileConfig{}
	cfg.Tiles[0] = TileShape{Rows: 4, ColBytes: 8}
	if err := u.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 4*16)
	for i := range src {
		src[i] = byte(i)
	}
	if err := u.TileLoad(0, src, 16); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4*8)
	if err := u.TileStore(0, dst, 8); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 8; c++ {
			if dst[r*8+c] != src[r*16+c] {
				t.Fatalf("row %d col %d: got %d want %d", r, c, dst[r*8+c], src[r*16+c])
			}
		}
	}
}

func TestTileLoadBoundsChecked(t *testing.T) {
	u := NewUnit()
	cfg := TileConfig{}
	cfg.Tiles[0] = TileShape{Rows: 16, ColBytes: 64}
	if err := u.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	short := make([]byte, 100)
	if err := u.TileLoad(0, short, 64); !errors.Is(err, ErrBounds) {
		t.Errorf("short load: %v, want ErrBounds", err)
	}
	if err := u.TileLoad(0, make([]byte, 4096), 32); !errors.Is(err, ErrShape) {
		t.Errorf("narrow stride: %v, want ErrShape", err)
	}
}

func TestTDPBF16PSSingleTile(t *testing.T) {
	// C(2×2) = A(2×4) · B(4×2) through one tile op with exact small ints.
	a := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float32{1, 0, 0, 1, 2, 0, 0, 2}
	u := NewUnit()
	cfg := TileConfig{}
	cfg.Tiles[tmmC] = TileShape{Rows: 2, ColBytes: 2 * 4}
	cfg.Tiles[tmmA] = TileShape{Rows: 2, ColBytes: 4 * 2}
	cfg.Tiles[tmmB] = TileShape{Rows: 2, ColBytes: 2 * 4}
	if err := u.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := u.TileZero(tmmC); err != nil {
		t.Fatal(err)
	}
	if err := u.TileLoad(tmmA, PackBF16(a, 2, 4, 2, 4), 8); err != nil {
		t.Fatal(err)
	}
	if err := u.TileLoad(tmmB, PackBF16VNNI(b, 4, 2, 4, 2), 8); err != nil {
		t.Fatal(err)
	}
	if err := u.TDPBF16PS(tmmC, tmmA, tmmB); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 2*8)
	if err := u.TileStore(tmmC, out, 8); err != nil {
		t.Fatal(err)
	}
	want := []float32{7, 10, 19, 22} // [[1,2,3,4]·cols, ...]
	for i, w := range want {
		bits := uint32(out[i*4]) | uint32(out[i*4+1])<<8 | uint32(out[i*4+2])<<16 | uint32(out[i*4+3])<<24
		if got := math.Float32frombits(bits); got != w {
			t.Errorf("C[%d] = %v, want %v", i, got, w)
		}
	}
	if u.Cycles() == 0 {
		t.Error("cycle counter did not advance")
	}
}

func TestTDPBUSD(t *testing.T) {
	// C(1×1) = row [1,2,3,4] (u8) · col [1,1,1,1] (s8) = 10.
	u := NewUnit()
	cfg := TileConfig{}
	cfg.Tiles[0] = TileShape{Rows: 1, ColBytes: 4} // C: 1×1 i32
	cfg.Tiles[1] = TileShape{Rows: 1, ColBytes: 4} // A: 1×4 u8
	cfg.Tiles[2] = TileShape{Rows: 1, ColBytes: 4} // B: 1 quad × 1 col
	if err := u.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if err := u.TileZero(0); err != nil {
		t.Fatal(err)
	}
	if err := u.TileLoad(1, []byte{1, 2, 3, 4}, 4); err != nil {
		t.Fatal(err)
	}
	if err := u.TileLoad(2, []byte{1, 0xFF, 1, 1}, 4); err != nil { // 0xFF = -1 signed
		t.Fatal(err)
	}
	if err := u.TDPBUSD(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4)
	if err := u.TileStore(0, out, 4); err != nil {
		t.Fatal(err)
	}
	got := int32(uint32(out[0]) | uint32(out[1])<<8 | uint32(out[2])<<16 | uint32(out[3])<<24)
	// 1·1 + 2·(-1) + 3·1 + 4·1 = 6
	if got != 6 {
		t.Errorf("TDPBUSD = %d, want 6", got)
	}
}

func TestMatmulExactSmallIntegers(t *testing.T) {
	// Integer-valued matrices below 256 are exact in bf16, so the tile
	// pipeline must be exactly right.
	const m, k, n = 5, 7, 3
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = float32(i % 9)
	}
	for i := range b {
		b[i] = float32((i*3 + 1) % 7)
	}
	got, cycles, err := MatmulBF16(a, b, m, k, n)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceMatmulBF16(a, b, m, k, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("C[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if cycles == 0 {
		t.Error("no cycles recorded")
	}
}

func TestMatmulMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][3]int{{1, 1, 1}, {16, 32, 16}, {17, 33, 18}, {40, 64, 48}, {3, 100, 5}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
		}
		for i := range b {
			b[i] = rng.Float32()*2 - 1
		}
		got, _, err := MatmulBF16(a, b, m, k, n)
		if err != nil {
			t.Fatal(err)
		}
		want := ReferenceMatmulBF16(a, b, m, k, n)
		for i := range want {
			diff := math.Abs(float64(got[i] - want[i]))
			scale := math.Max(1, math.Abs(float64(want[i])))
			if diff/scale > 1e-5 {
				t.Fatalf("%dx%dx%d: C[%d] = %v, want %v", m, k, n, i, got[i], want[i])
			}
		}
	}
}

func TestMatmulRejectsBadSizes(t *testing.T) {
	if _, _, err := MatmulBF16(make([]float32, 3), make([]float32, 4), 2, 2, 2); err == nil {
		t.Error("expected size mismatch error")
	}
	if _, _, err := MatmulBF16(nil, nil, 0, 2, 2); err == nil {
		t.Error("expected dimension error")
	}
}

func TestReleaseReturnsToInit(t *testing.T) {
	u := NewUnit()
	if err := u.Configure(matmulConfig); err != nil {
		t.Fatal(err)
	}
	before := u.Cycles()
	u.Release()
	if u.Cycles() != before {
		t.Error("Release must preserve the cycle counter")
	}
	if err := u.TileZero(tmmC); !errors.Is(err, ErrNotConfigured) {
		t.Errorf("post-release TileZero: %v, want ErrNotConfigured", err)
	}
}

// Property: matmul with an identity right operand returns the (bf16
// rounded) left operand.
func TestMatmulIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const m, k = 20, 24
	a := make([]float32, m*k)
	for i := range a {
		a[i] = rng.Float32()*10 - 5
	}
	eye := make([]float32, k*k)
	for i := 0; i < k; i++ {
		eye[i*k+i] = 1
	}
	got, _, err := MatmulBF16(a, eye, m, k, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if got[i] != RoundFloat32(a[i]) {
			t.Fatalf("identity matmul[%d] = %v, want %v", i, got[i], RoundFloat32(a[i]))
		}
	}
}
