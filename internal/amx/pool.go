package amx

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the execution layer shared by the blocked matmul drivers:
// a persistent pool of tile workers (each owning an emulated Unit, i.e. a
// core's tile file) that row-block jobs are dispatched onto, plus pooled
// operand scratch. Spawning goroutines and allocating pack buffers per
// matmul call is exactly the per-iteration overhead a real AMX kernel
// amortizes away, so the steady state here does neither.

// pooledUnit is one worker's persistent emulator state: a Unit, the
// last-installed tile palette (so reconfiguration only happens when the
// pipeline switches between BF16 and INT8 geometry), a C-tile staging
// buffer for the byte path, and the decoded fast path's flat C
// accumulators (float32 for TDPBF16PSDecoded, int32 for TDPBUSDDecoded).
type pooledUnit struct {
	u     *Unit
	cfg   TileConfig
	cTile [MaxRows * MaxColBytes]byte
	cDecF [blockM * blockN]float32
	cDecI [blockMi8 * blockNi8]int32
}

// ensure installs cfg unless it is already the active palette.
func (w *pooledUnit) ensure(cfg TileConfig) error {
	if w.cfg == cfg {
		return nil
	}
	if err := w.u.Configure(cfg); err != nil {
		return err
	}
	w.cfg = cfg
	return nil
}

// tileTask is one matmul's row-block work queue. Workers — and the
// submitting goroutine, which always participates — claim block indices
// from next until total is exhausted. Per-block results land in disjoint
// output rows, so claim order cannot affect the product; cycle counts are
// summed and therefore partition-independent too.
type tileTask struct {
	cfg   TileConfig
	run   func(w *pooledUnit, rb int) error
	next  atomic.Int64
	total int

	wg     sync.WaitGroup
	mu     sync.Mutex
	err    error
	cycles uint64
}

// work claims and runs row blocks until the task is drained or fails.
func (t *tileTask) work(w *pooledUnit) {
	defer t.wg.Done()
	start := w.u.Cycles()
	err := w.ensure(t.cfg)
	for err == nil {
		rb := int(t.next.Add(1)) - 1
		if rb >= t.total {
			break
		}
		err = t.run(w, rb)
	}
	delta := w.u.Cycles() - start
	t.mu.Lock()
	if err != nil && t.err == nil {
		t.err = err
	}
	t.cycles += delta
	t.mu.Unlock()
}

var (
	poolOnce    sync.Once
	poolJobs    chan *tileTask
	poolWorkers int
)

// startPool launches the persistent workers. GOMAXPROCS-1 of them suffice
// because the submitting goroutine always works its own task.
func startPool() {
	poolWorkers = runtime.GOMAXPROCS(0) - 1
	if poolWorkers < 0 {
		poolWorkers = 0
	}
	poolJobs = make(chan *tileTask, poolWorkers)
	for i := 0; i < poolWorkers; i++ {
		go func() {
			w := &pooledUnit{u: NewUnit()}
			for t := range poolJobs {
				t.work(w)
			}
		}()
	}
}

// callerUnits recycles tile state for submitting goroutines (and for the
// single-block fast path, which never touches the pool).
var callerUnits = sync.Pool{New: func() any { return &pooledUnit{u: NewUnit()} }}

// runTiled executes row blocks [0, total) under cfg across the persistent
// pool plus the calling goroutine, returning the emulated cycles consumed.
func runTiled(cfg TileConfig, total int, run func(w *pooledUnit, rb int) error) (uint64, error) {
	caller := callerUnits.Get().(*pooledUnit)
	defer callerUnits.Put(caller)
	if total <= 1 {
		// Decode-shaped fast path: one row block, no task, no handoff.
		start := caller.u.Cycles()
		err := caller.ensure(cfg)
		if err == nil && total == 1 {
			err = run(caller, 0)
		}
		return caller.u.Cycles() - start, err
	}
	poolOnce.Do(startPool)
	t := &tileTask{cfg: cfg, run: run, total: total}
	t.wg.Add(1) // the caller's own share
	helpers := poolWorkers
	if helpers > total-1 {
		helpers = total - 1
	}
enqueue:
	for i := 0; i < helpers; i++ {
		t.wg.Add(1)
		select {
		case poolJobs <- t:
		default:
			// Pool saturated by concurrent matmuls; the enqueued workers
			// and the caller absorb the remaining blocks.
			t.wg.Done()
			break enqueue
		}
	}
	t.work(caller)
	t.wg.Wait()
	return t.cycles, t.err
}

// packScratch recycles operand pack buffers across matmul calls.
var packScratch = sync.Pool{New: func() any { return new([]byte) }}

// getScratch returns a length-n byte buffer (contents unspecified; the
// pack routines overwrite every byte including padding).
func getScratch(n int) *[]byte {
	bp := packScratch.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// putScratch returns a buffer obtained from getScratch.
func putScratch(bp *[]byte) { packScratch.Put(bp) }

// f32Scratch and i8Scratch recycle the decoded fast path's operand
// buffers (pre-rounded A stripes, per-call decoded B views) across
// matmul calls, mirroring packScratch for the byte images.
var (
	f32Scratch = sync.Pool{New: func() any { return new([]float32) }}
	i8Scratch  = sync.Pool{New: func() any { return new([]int8) }}
)

// getScratchF32 returns a length-n float32 buffer (contents unspecified;
// the decoded pack routines overwrite every element including padding).
func getScratchF32(n int) *[]float32 {
	bp := f32Scratch.Get().(*[]float32)
	if cap(*bp) < n {
		*bp = make([]float32, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// putScratchF32 returns a buffer obtained from getScratchF32.
func putScratchF32(bp *[]float32) { f32Scratch.Put(bp) }

// getScratchI8 returns a length-n int8 buffer under the same contract.
func getScratchI8(n int) *[]int8 {
	bp := i8Scratch.Get().(*[]int8)
	if cap(*bp) < n {
		*bp = make([]int8, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// putScratchI8 returns a buffer obtained from getScratchI8.
func putScratchI8(bp *[]int8) { i8Scratch.Put(bp) }
