package amx

import (
	"reflect"
	"testing"
)

// matrices returns deterministic float32 test operands.
func matrices(m, k, n int, seed float32) (a, b []float32) {
	a = make([]float32, m*k)
	b = make([]float32, k*n)
	for i := range a {
		a[i] = float32(i%11) - 5 + seed
	}
	for i := range b {
		b[i] = float32(i%7) - 3 - seed
	}
	return a, b
}

// TestPackedMatchesLegacyBF16 requires MatmulBF16Packed over a prepacked
// operand to reproduce MatmulBF16 bit for bit, including awkward
// non-multiple-of-tile shapes and the m=1 decode shape.
func TestPackedMatchesLegacyBF16(t *testing.T) {
	for _, s := range []struct{ m, k, n int }{
		{1, 64, 64},   // decode GEMV, single row block
		{16, 32, 16},  // exactly one tile
		{33, 48, 20},  // ragged everything
		{5, 129, 3},   // k padding dominates
		{64, 64, 128}, // multiple row blocks → worker pool
	} {
		a, b := matrices(s.m, s.k, s.n, 0.25)
		want, _, err := MatmulBF16(a, b, s.m, s.k, s.n)
		if err != nil {
			t.Fatalf("%dx%dx%d legacy: %v", s.m, s.k, s.n, err)
		}
		pre, err := PrepackBF16(b, s.k, s.n)
		if err != nil {
			t.Fatalf("%dx%dx%d prepack: %v", s.m, s.k, s.n, err)
		}
		for rep := 0; rep < 3; rep++ { // reuse must not drift
			got, _, err := MatmulBF16Packed(a, s.m, pre)
			if err != nil {
				t.Fatalf("%dx%dx%d packed: %v", s.m, s.k, s.n, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%dx%dx%d rep %d: packed result diverges from legacy", s.m, s.k, s.n, rep)
			}
		}
		ref := ReferenceMatmulBF16(a, b, s.m, s.k, s.n)
		if !reflect.DeepEqual(want, ref) {
			t.Fatalf("%dx%dx%d: tile pipeline diverges from reference", s.m, s.k, s.n)
		}
	}
}

// TestPackedMatchesLegacyINT8 is the TDPBUSD mirror of the BF16 test.
func TestPackedMatchesLegacyINT8(t *testing.T) {
	for _, s := range []struct{ m, k, n int }{
		{1, 64, 16}, {16, 64, 16}, {33, 100, 20}, {64, 128, 64},
	} {
		a := make([]uint8, s.m*s.k)
		b := make([]int8, s.k*s.n)
		for i := range a {
			a[i] = uint8(i * 13)
		}
		for i := range b {
			b[i] = int8(i%251 - 125)
		}
		want, _, err := MatmulINT8(a, b, s.m, s.k, s.n)
		if err != nil {
			t.Fatalf("%dx%dx%d legacy: %v", s.m, s.k, s.n, err)
		}
		pre, err := PrepackINT8(b, s.k, s.n)
		if err != nil {
			t.Fatalf("%dx%dx%d prepack: %v", s.m, s.k, s.n, err)
		}
		for rep := 0; rep < 3; rep++ {
			got, _, err := MatmulINT8Packed(a, s.m, pre)
			if err != nil {
				t.Fatalf("%dx%dx%d packed: %v", s.m, s.k, s.n, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%dx%dx%d rep %d: packed result diverges from legacy", s.m, s.k, s.n, rep)
			}
		}
		if ref := ReferenceMatmulINT8(a, b, s.m, s.k, s.n); !reflect.DeepEqual(want, ref) {
			t.Fatalf("%dx%dx%d: tile pipeline diverges from reference", s.m, s.k, s.n)
		}
	}
}

// TestScratchReuseNoStaleData interleaves differently-shaped products so
// pooled pack buffers are handed shrinking operands; stale bytes from the
// larger predecessor must never leak into the smaller product.
func TestScratchReuseNoStaleData(t *testing.T) {
	big, bigB := matrices(48, 96, 48, 1)
	small, smallB := matrices(3, 10, 5, 2)
	wantSmall := ReferenceMatmulBF16(small, smallB, 3, 10, 5)
	for rep := 0; rep < 4; rep++ {
		if _, _, err := MatmulBF16(big, bigB, 48, 96, 48); err != nil {
			t.Fatal(err)
		}
		got, _, err := MatmulBF16(small, smallB, 3, 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantSmall, got) {
			t.Fatalf("rep %d: small product corrupted by pooled scratch reuse", rep)
		}
	}
}

// TestPrepackValidation covers the error paths.
func TestPrepackValidation(t *testing.T) {
	if _, err := PrepackBF16(make([]float32, 5), 2, 3); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := PrepackBF16(nil, 0, 3); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, _, err := MatmulBF16Packed(make([]float32, 4), 2, nil); err == nil {
		t.Error("nil prepacked operand accepted")
	}
	pre, err := PrepackBF16(make([]float32, 6), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MatmulBF16Packed(make([]float32, 3), 1, pre); err == nil {
		t.Error("mismatched activation width accepted")
	}
	if _, err := PrepackINT8(make([]int8, 5), 2, 3); err == nil {
		t.Error("int8 size mismatch accepted")
	}
	if _, _, err := MatmulINT8Packed(nil, 1, nil); err == nil {
		t.Error("nil int8 prepacked operand accepted")
	}
}

// TestMatmulBF16PackedInto pins the destination-reusing entry point
// against the allocating one: identical bits across shapes (including
// multi-row-block stacked-decode shapes), matching cycles modulo palette
// reconfiguration (a pooled unit that already carries the matmul config
// skips the LDTILECFG charge, so back-to-back calls may differ by a
// multiple of cyclesConfig — same tolerance as the decoded-parity suite),
// full overwrite of a dirty destination, and size validation.
func TestMatmulBF16PackedInto(t *testing.T) {
	for _, s := range []struct{ m, k, n int }{
		{1, 64, 64},   // decode GEMV
		{8, 48, 20},   // stacked decode round, ragged shape
		{33, 129, 3},  // padding in every dimension
		{64, 64, 128}, // multiple row blocks → worker pool
	} {
		a, b := matrices(s.m, s.k, s.n, 1.5)
		pre, err := PrepackBF16(b, s.k, s.n)
		if err != nil {
			t.Fatal(err)
		}
		want, wantCycles, err := MatmulBF16Packed(a, s.m, pre)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float32, s.m*s.n)
		for i := range dst {
			dst[i] = -1e30 // poison: every element must be overwritten
		}
		cycles, err := MatmulBF16PackedInto(dst, a, s.m, pre)
		if err != nil {
			t.Fatalf("%dx%dx%d into: %v", s.m, s.k, s.n, err)
		}
		if !reflect.DeepEqual(want, dst) {
			t.Fatalf("%dx%dx%d: Into result diverges from allocating path", s.m, s.k, s.n)
		}
		if diff := cycleDiff(cycles, wantCycles); diff%cyclesConfig != 0 {
			t.Fatalf("%dx%dx%d: Into cycles %d != %d", s.m, s.k, s.n, cycles, wantCycles)
		}
	}

	a, b := matrices(4, 32, 16, 0)
	pre, err := PrepackBF16(b, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MatmulBF16PackedInto(make([]float32, 4*16-1), a, 4, pre); err == nil {
		t.Error("short destination accepted")
	}
	if _, err := MatmulBF16PackedInto(make([]float32, 4*16+1), a, 4, pre); err == nil {
		t.Error("oversized destination accepted")
	}
	if _, err := MatmulBF16PackedInto(make([]float32, 4*16), a[:1], 4, pre); err == nil {
		t.Error("short A accepted")
	}
	if _, err := MatmulBF16PackedInto(make([]float32, 0), a, 0, pre); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := MatmulBF16PackedInto(nil, nil, 1, nil); err == nil {
		t.Error("nil operand accepted")
	}
}
