package amx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatmulINT8SmallExact(t *testing.T) {
	// 2×3 · 3×2 with hand-checked values.
	a := []uint8{1, 2, 3, 4, 5, 6}
	b := []int8{1, -1, 2, 0, -3, 4}
	got, cycles, err := MatmulINT8(a, b, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1*1 + 2*2 + 3*(-3), 1*(-1) + 0 + 3*4, 4*1 + 5*2 + 6*(-3), 4*(-1) + 0 + 6*4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if cycles == 0 {
		t.Error("no cycles recorded")
	}
}

func TestMatmulINT8MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{1, 1, 1}, {16, 64, 16}, {17, 65, 18}, {40, 200, 48}, {3, 300, 5}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := make([]uint8, m*k)
		b := make([]int8, k*n)
		for i := range a {
			a[i] = uint8(rng.Intn(256))
		}
		for i := range b {
			b[i] = int8(rng.Intn(256) - 128)
		}
		got, _, err := MatmulINT8(a, b, m, k, n)
		if err != nil {
			t.Fatal(err)
		}
		want := ReferenceMatmulINT8(a, b, m, k, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%dx%dx%d: C[%d] = %d, want %d (integer matmul must be exact)", m, k, n, i, got[i], want[i])
			}
		}
	}
}

func TestMatmulINT8RejectsBadSizes(t *testing.T) {
	if _, _, err := MatmulINT8(make([]uint8, 3), make([]int8, 4), 2, 2, 2); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, _, err := MatmulINT8(nil, nil, 0, 1, 1); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestPackS8VNNIPanicsOnBadPad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PackS8VNNI(nil, 0, 0, 3, 4)
}

// Property: INT8 matmul with an all-ones B column sums the (unsigned) A
// rows exactly.
func TestMatmulINT8RowSumProperty(t *testing.T) {
	f := func(raw [24]uint8) bool {
		const m, k = 4, 6
		a := raw[:]
		b := make([]int8, k)
		for i := range b {
			b[i] = 1
		}
		got, _, err := MatmulINT8(a, b, m, k, 1)
		if err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			var sum int32
			for j := 0; j < k; j++ {
				sum += int32(a[i*k+j])
			}
			if got[i] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The INT8 pipeline consumes roughly half the TDP cycles of the BF16
// pipeline for the same logical shape (64 vs 32 reduction elements per
// instruction) — the 2× INT8 throughput claim of the AMX ISA.
func TestINT8HalvesTDPCycles(t *testing.T) {
	const m, k, n = 32, 128, 32
	af := make([]float32, m*k)
	bf := make([]float32, k*n)
	_, bf16Cycles, err := MatmulBF16(af, bf, m, k, n)
	if err != nil {
		t.Fatal(err)
	}
	ai := make([]uint8, m*k)
	bi := make([]int8, k*n)
	_, int8Cycles, err := MatmulINT8(ai, bi, m, k, n)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(bf16Cycles) / float64(int8Cycles)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("BF16/INT8 cycle ratio = %.2f, want ≈2", ratio)
	}
}
