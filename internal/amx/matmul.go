package amx

import (
	"fmt"
)

// Tile-blocking geometry for BF16 matmul: each TDPBF16PS consumes a
// 16×32 bf16 A block and a 32×16 bf16 B block (VNNI-packed into 16 rows)
// and accumulates into a 16×16 float32 C block.
const (
	blockM = MaxRows         // 16 output rows per tile
	blockK = MaxColBytes / 2 // 32 bf16 values per A row
	blockN = MaxColBytes / 4 // 16 float32 outputs per C row
)

// tmm register roles used by the driver.
const (
	tmmC = 0
	tmmA = 1
	tmmB = 2
)

// matmulConfig is the tile palette the driver installs: C is 16×64B
// (16×16 f32), A is 16×64B (16×32 bf16), B is 16×64B (VNNI 32×16 bf16).
var matmulConfig = TileConfig{Tiles: [NumTiles]TileShape{
	tmmC: {Rows: blockM, ColBytes: MaxColBytes},
	tmmA: {Rows: blockM, ColBytes: MaxColBytes},
	tmmB: {Rows: blockK / 2, ColBytes: MaxColBytes},
}}

// PackBF16 converts a row-major float32 matrix (rows × cols) into a
// row-major bf16 byte buffer padded to padRows × padCols values.
func PackBF16(src []float32, rows, cols, padRows, padCols int) []byte {
	out := make([]byte, padRows*padCols*2)
	packBF16Into(out, src, rows, cols, padRows, padCols)
	return out
}

// packBF16Into writes the padded bf16 image of src into dst, overwriting
// every byte (dst may carry stale data from a previous use). Only the
// padding rows/columns are zeroed — the payload region is written
// exactly once, not zeroed and then overwritten.
func packBF16Into(dst []byte, src []float32, rows, cols, padRows, padCols int) {
	for r := 0; r < rows; r++ {
		srow := src[r*cols : r*cols+cols]
		drow := dst[r*padCols*2 : (r+1)*padCols*2]
		for c, f := range srow {
			v := BF16FromFloat32(f)
			drow[c*2] = byte(v)
			drow[c*2+1] = byte(v >> 8)
		}
		clear(drow[cols*2:]) // padding columns
	}
	clear(dst[rows*padCols*2 : padRows*padCols*2]) // padding rows
}

// packBF16DecodedInto writes the padded, bf16-pre-rounded float32 image
// of src into dst — the decoded twin of packBF16Into: element (r, c)
// lands at dst[r*padCols+c] holding RoundFloat32(src[r][c]), which is
// bit-identical to decoding the byte image's bf16 lane. Padding is
// zeroed, the payload written once.
func packBF16DecodedInto(dst []float32, src []float32, rows, cols, padRows, padCols int) {
	for r := 0; r < rows; r++ {
		srow := src[r*cols : r*cols+cols]
		drow := dst[r*padCols : (r+1)*padCols]
		for c, f := range srow {
			drow[c] = RoundFloat32(f)
		}
		clear(drow[cols:])
	}
	clear(dst[rows*padCols : padRows*padCols])
}

// PackBF16VNNI converts a row-major float32 matrix (rows × cols) into the
// VNNI tile layout AMX requires for the right-hand GEMM operand: logical
// row pairs (2r, 2r+1) are interleaved column-wise, so packed row r holds
// B[2r][0], B[2r+1][0], B[2r][1], B[2r+1][1], … The result is padded to
// padRows × padCols logical values (padRows must be even).
func PackBF16VNNI(src []float32, rows, cols, padRows, padCols int) []byte {
	if padRows%2 != 0 {
		panic(fmt.Sprintf("amx: VNNI padRows %d must be even", padRows))
	}
	out := make([]byte, padRows*padCols*2)
	packBF16VNNIInto(out, src, rows, cols, padRows, padCols)
	return out
}

// packBF16VNNIInto writes the VNNI image of src into dst, overwriting
// every byte. The inner loop works on hoisted row slices — no per-element
// closure call or in-bounds test — and zeroes only the padding region:
// prepack time is part of executor construction, so it is kept off the
// per-element slow path too.
func packBF16VNNIInto(dst []byte, src []float32, rows, cols, padRows, padCols int) {
	for pr := 0; pr < padRows/2; pr++ {
		r0, r1 := 2*pr, 2*pr+1
		drow := dst[pr*padCols*4 : (pr+1)*padCols*4]
		if r0 >= rows {
			// Pure padding pair rows.
			clear(drow)
			continue
		}
		row0 := src[r0*cols : r0*cols+cols]
		if r1 < rows {
			row1 := src[r1*cols : r1*cols+cols]
			for c := 0; c < cols; c++ {
				v0 := BF16FromFloat32(row0[c])
				v1 := BF16FromFloat32(row1[c])
				drow[c*4] = byte(v0)
				drow[c*4+1] = byte(v0 >> 8)
				drow[c*4+2] = byte(v1)
				drow[c*4+3] = byte(v1 >> 8)
			}
		} else {
			// Odd trailing row: the second lane of every pair is padding.
			for c := 0; c < cols; c++ {
				v0 := BF16FromFloat32(row0[c])
				drow[c*4] = byte(v0)
				drow[c*4+1] = byte(v0 >> 8)
				drow[c*4+2] = 0
				drow[c*4+3] = 0
			}
		}
		clear(drow[cols*4:]) // padding columns
	}
}

// packBF16DecodedBInto writes the decoded view of src's VNNI image into
// dst: the bf16-pre-rounded values laid out **column-major**,
// dst[c*padRows+r] = RoundFloat32(src[r][c]), padding zeroed. Column c's
// slice dst[c*padRows:] then holds exactly the lane sequence the byte
// path reads from the VNNI image for output column c — pair p at
// elements (2p, 2p+1) — but contiguously, so the decoded MAC loop is a
// flat dot product.
func packBF16DecodedBInto(dst []float32, src []float32, rows, cols, padRows, padCols int) {
	for c := 0; c < cols; c++ {
		dcol := dst[c*padRows : (c+1)*padRows]
		for r := 0; r < rows; r++ {
			dcol[r] = RoundFloat32(src[r*cols+c])
		}
		clear(dcol[rows:])
	}
	clear(dst[cols*padRows : padCols*padRows])
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Prepacked is a right-hand BF16 GEMM operand converted once into the
// VNNI tile layout. Building it is the per-weight cost LIA's §5 kernels
// amortize: every MatmulBF16Packed call afterwards streams activations
// through the same immutable image, so the steady state never re-packs.
// Packing is layout-only — the stored values are the same bf16 roundings
// MatmulBF16 produces per call, so results are bit-identical.
type Prepacked struct {
	// K and N are the logical dimensions of the packed matrix.
	K, N       int
	padK, padN int
	vnni       []byte
	// dec is the decoded view of the VNNI image: the same bf16-rounded
	// values as float32, column-major (column c's padK lanes at
	// dec[c*padK:]), built once at prepack time so the decoded fast path
	// never reassembles an operand from bytes. Nil only on byte-path-only
	// operands built by prepackBF16Bytes (the oracle used in tests).
	dec []float32
	// zero is the sparse tier's zero-block bitmap (sparse.go), nil on
	// dense operands. Both drivers skip a marked block's TileLoads + TDP.
	zero *zeroBitmap
}

// PrepackBF16 packs a row-major float32 matrix (k × n) for reuse as the
// right-hand operand of MatmulBF16Packed, building both the VNNI byte
// image (the byte-accurate oracle's operand) and its decoded float32
// view (the fast path's).
func PrepackBF16(b []float32, k, n int) (*Prepacked, error) {
	w, err := prepackBF16Bytes(b, k, n)
	if err != nil {
		return nil, err
	}
	w.dec = make([]float32, w.padN*w.padK)
	packBF16DecodedBInto(w.dec, b, k, n, w.padK, w.padN)
	return w, nil
}

// prepackBF16Bytes builds a Prepacked with only the VNNI byte image —
// the operand form the byte-path oracle driver consumes. Production
// callers go through PrepackBF16; tests use this to pin the decoded
// fast path against the byte path.
func prepackBF16Bytes(b []float32, k, n int) (*Prepacked, error) {
	if len(b) != k*n {
		return nil, fmt.Errorf("amx: prepack operand size %d does not match %dx%d", len(b), k, n)
	}
	if k <= 0 || n <= 0 {
		return nil, fmt.Errorf("amx: prepack dimensions must be positive, got %dx%d", k, n)
	}
	padK := ceilDiv(k, blockK) * blockK
	padN := ceilDiv(n, blockN) * blockN
	return &Prepacked{K: k, N: n, padK: padK, padN: padN, vnni: PackBF16VNNI(b, k, n, padK, padN)}, nil
}

// MatmulBF16 computes C = A·B through the emulated AMX tile pipeline:
// A is M×K, B is K×N, both row-major float32; inputs are rounded to
// bfloat16 (as a BF16 kernel would read them) and accumulation is float32,
// matching TDPBF16PS semantics exactly. It returns the M×N row-major
// result and the total AMX cycles consumed.
//
// B is packed into VNNI layout on every call; when B is a static weight,
// prepack it once with PrepackBF16 and use MatmulBF16Packed instead.
func MatmulBF16(a, b []float32, m, k, n int) ([]float32, uint64, error) {
	if len(a) != m*k || len(b) != k*n {
		return nil, 0, fmt.Errorf("amx: matmul operand sizes %d,%d do not match %dx%d · %dx%d", len(a), len(b), m, k, m, n)
	}
	if m <= 0 || k <= 0 || n <= 0 {
		return nil, 0, fmt.Errorf("amx: matmul dimensions must be positive, got %dx%dx%d", m, k, n)
	}
	padK := ceilDiv(k, blockK) * blockK
	padN := ceilDiv(n, blockN) * blockN
	bScratch := getScratchF32(padK * padN)
	defer putScratchF32(bScratch)
	packBF16DecodedBInto(*bScratch, b, k, n, padK, padN)
	w := Prepacked{K: k, N: n, padK: padK, padN: padN, dec: *bScratch}
	c := make([]float32, m*n)
	cycles, err := matmulBF16Driver(c, a, m, &w)
	if err != nil {
		return nil, 0, err
	}
	return c, cycles, nil
}

// MatmulBF16Packed computes C = A·W for a prepacked right-hand operand,
// skipping the per-call VNNI conversion. A is M×K row-major float32; the
// result and cycle accounting match MatmulBF16(a, w, m, k, n) bit for bit.
func MatmulBF16Packed(a []float32, m int, w *Prepacked) ([]float32, uint64, error) {
	if w == nil {
		return nil, 0, fmt.Errorf("amx: nil prepacked operand")
	}
	if len(a) != m*w.K {
		return nil, 0, fmt.Errorf("amx: matmul operand size %d does not match %dx%d", len(a), m, w.K)
	}
	if m <= 0 {
		return nil, 0, fmt.Errorf("amx: matmul rows must be positive, got %d", m)
	}
	c := make([]float32, m*w.N)
	cycles, err := matmulBF16Driver(c, a, m, w)
	if err != nil {
		return nil, 0, err
	}
	return c, cycles, nil
}

// MatmulBF16PackedInto is MatmulBF16Packed writing into a caller-owned
// destination (len must be exactly m×W.N) instead of allocating one —
// the steady-state entry point for decode loops that reuse an output
// ring across rounds. Every element of dst is overwritten; results and
// cycle accounting are bit-identical to MatmulBF16Packed.
func MatmulBF16PackedInto(dst, a []float32, m int, w *Prepacked) (uint64, error) {
	if w == nil {
		return 0, fmt.Errorf("amx: nil prepacked operand")
	}
	if len(a) != m*w.K {
		return 0, fmt.Errorf("amx: matmul operand size %d does not match %dx%d", len(a), m, w.K)
	}
	if m <= 0 {
		return 0, fmt.Errorf("amx: matmul rows must be positive, got %d", m)
	}
	if len(dst) != m*w.N {
		return 0, fmt.Errorf("amx: matmul destination size %d does not match %dx%d", len(dst), m, w.N)
	}
	return matmulBF16Driver(dst, a, m, w)
}

// matmulBF16Driver routes a product to the decoded fast path when the
// operand carries its decoded view (every production Prepacked does),
// falling back to the byte-accurate oracle otherwise. Both paths share
// the same blocking, worker-pool dispatch, fault checks and cycle
// accounting, write the full m×N result into c, and produce
// bit-identical results.
func matmulBF16Driver(c, a []float32, m int, w *Prepacked) (uint64, error) {
	if w.dec != nil {
		return matmulBF16DriverDecoded(c, a, m, w)
	}
	return matmulBF16DriverBytes(c, a, m, w)
}

// matmulBF16DriverBytes packs A into pooled scratch and dispatches row
// blocks onto the persistent worker pool (single-block products run
// inline on the caller), moving every operand through the tile file
// byte-for-byte — the instruction-level oracle the decoded fast path is
// pinned against.
func matmulBF16DriverBytes(c, a []float32, m int, w *Prepacked) (uint64, error) {
	padM := ceilDiv(m, blockM) * blockM
	aScratch := getScratch(padM * w.padK * 2)
	defer putScratch(aScratch)
	packedA := *aScratch
	packBF16Into(packedA, a, m, w.K, padM, w.padK)

	rowBlocks := padM / blockM
	colBlocks := w.padN / blockN
	kBlocks := w.padK / blockK

	if rowBlocks == 1 {
		// Decode-shaped fast path, closure-free.
		caller := callerUnits.Get().(*pooledUnit)
		defer callerUnits.Put(caller)
		start := caller.u.Cycles()
		err := caller.ensure(matmulConfig)
		if err == nil {
			err = runRowBlock(caller.u, 0, colBlocks, kBlocks, w.padK, w.padN, packedA, w.vnni, caller.cTile[:blockM*blockN*4], c, m, w.N, w.zero)
		}
		if err != nil {
			return 0, err
		}
		return caller.u.Cycles() - start, nil
	}

	cycles, err := runTiled(matmulConfig, rowBlocks, func(pu *pooledUnit, rb int) error {
		return runRowBlock(pu.u, rb, colBlocks, kBlocks, w.padK, w.padN, packedA, w.vnni, pu.cTile[:blockM*blockN*4], c, m, w.N, w.zero)
	})
	if err != nil {
		return 0, err
	}
	return cycles, nil
}

// matmulBF16DriverDecoded is the decoded-tile fast path: A is rounded
// once per call into pooled float32 scratch (the same values decoding
// the byte image would yield), the prepacked operand supplies its
// decoded VNNI view, and row blocks run TDPBF16PSDecoded over flat
// slices. Blocking, faults and cycle accounting mirror the byte driver
// exactly.
func matmulBF16DriverDecoded(c, a []float32, m int, w *Prepacked) (uint64, error) {
	padM := ceilDiv(m, blockM) * blockM
	aScratch := getScratchF32(padM * w.padK)
	defer putScratchF32(aScratch)
	decA := *aScratch
	packBF16DecodedInto(decA, a, m, w.K, padM, w.padK)

	rowBlocks := padM / blockM
	colBlocks := w.padN / blockN
	kBlocks := w.padK / blockK

	if rowBlocks == 1 {
		// Decode-shaped fast path, closure-free.
		caller := callerUnits.Get().(*pooledUnit)
		defer callerUnits.Put(caller)
		start := caller.u.Cycles()
		err := caller.ensure(matmulConfig)
		if err == nil {
			err = runRowBlockDecoded(caller, 0, colBlocks, kBlocks, w.padK, w.padN, decA, w.dec, c, m, w.N, w.zero)
		}
		if err != nil {
			return 0, err
		}
		return caller.u.Cycles() - start, nil
	}

	cycles, err := runTiled(matmulConfig, rowBlocks, func(pu *pooledUnit, rb int) error {
		return runRowBlockDecoded(pu, rb, colBlocks, kBlocks, w.padK, w.padN, decA, w.dec, c, m, w.N, w.zero)
	})
	if err != nil {
		return 0, err
	}
	return cycles, nil
}

// runRowBlock computes one 16-row stripe of the output. A non-nil zero
// bitmap (sparse operand) elides a marked block's TileLoads and TDP —
// the same skips the decoded path takes, so the two stay bit-identical.
func runRowBlock(u *Unit, rb, colBlocks, kBlocks, padK, padN int, packedA, packedB, cTile []byte, c []float32, m, n int, zero *zeroBitmap) error {
	aStride := padK * 2 // bytes per packed A row
	bStride := padN * 4 // bytes per packed VNNI B row (pairs)
	for cb := 0; cb < colBlocks; cb++ {
		if err := u.TileZero(tmmC); err != nil {
			return err
		}
		for kb := 0; kb < kBlocks; kb++ {
			if zero.skipBlock(cb, kb, kBlocks) {
				continue
			}
			aOff := rb*blockM*aStride + kb*blockK*2
			if err := u.TileLoad(tmmA, packedA[aOff:], aStride); err != nil {
				return err
			}
			bOff := kb*(blockK/2)*bStride + cb*blockN*4
			if err := u.TileLoad(tmmB, packedB[bOff:], bStride); err != nil {
				return err
			}
			if err := u.TDPBF16PS(tmmC, tmmA, tmmB); err != nil {
				return err
			}
		}
		if err := u.TileStore(tmmC, cTile, blockN*4); err != nil {
			return err
		}
		// Scatter the f32 tile into the unpadded result.
		for r := 0; r < blockM; r++ {
			row := rb*blockM + r
			if row >= m {
				break
			}
			for col := 0; col < blockN; col++ {
				j := cb*blockN + col
				if j >= n {
					break
				}
				off := (r*blockN + col) * 4
				bits := uint32(cTile[off]) | uint32(cTile[off+1])<<8 |
					uint32(cTile[off+2])<<16 | uint32(cTile[off+3])<<24
				c[row*n+j] = f32FromBits(bits)
			}
		}
	}
	return nil
}

// runRowBlockDecoded computes one 16-row stripe of the output through
// the decoded entry points: the same TileZero/TileLoad/TDP/TileStore
// sequence as runRowBlock — with identical faults and cycle accounting
// via the *Check variants — but the MAC loop reads flat pre-decoded
// slices and the accumulator stays float32 end to end (a byte image of
// the accumulator would round-trip losslessly anyway, so results are
// bit-identical).
func runRowBlockDecoded(pu *pooledUnit, rb, colBlocks, kBlocks, padK, padN int, decA, decB []float32, c []float32, m, n int, zero *zeroBitmap) error {
	u := pu.u
	cDec := pu.cDecF[:blockM*blockN]
	// Rows of this stripe that carry real data; the rest of the tile is
	// zero padding whose accumulator rows are never scattered, so the
	// decoded MAC skips them (a GEMV otherwise pays 16 rows of host
	// arithmetic for 1 row of output).
	valid := m - rb*blockM
	if valid > blockM {
		valid = blockM
	}
	aStrideB := padK * 2 // byte stride of the A image the byte path would load
	bStrideB := padN * 4 // byte stride of the VNNI image the byte path would load
	aBytes := 2 * len(decA)
	bBytes := 2 * len(decB)
	for cb := 0; cb < colBlocks; cb++ {
		if err := u.TileZeroCheck(tmmC); err != nil {
			return err
		}
		clear(cDec)
		for kb := 0; kb < kBlocks; kb++ {
			if zero.skipBlock(cb, kb, kBlocks) {
				continue
			}
			aOff := rb*blockM*padK + kb*blockK
			if err := u.TileLoadCheck(tmmA, aBytes-2*aOff, aStrideB); err != nil {
				return err
			}
			// The byte path loads the VNNI image at this offset; the bounds
			// arithmetic is identical even though the decoded view is
			// column-major.
			bOffB := kb*(blockK/2)*bStrideB + cb*blockN*4
			if err := u.TileLoadCheck(tmmB, bBytes-bOffB, bStrideB); err != nil {
				return err
			}
			bOff := cb*blockN*padK + kb*blockK
			if err := u.tdpBF16PSDecodedRows(tmmC, tmmA, tmmB, valid, cDec, blockN, decA[aOff:], padK, decB[bOff:], padK); err != nil {
				return err
			}
		}
		if err := u.TileStoreCheck(tmmC, blockM*blockN*4, blockN*4); err != nil {
			return err
		}
		// Scatter the f32 accumulator into the unpadded result.
		for r := 0; r < blockM; r++ {
			row := rb*blockM + r
			if row >= m {
				break
			}
			cols := n - cb*blockN
			if cols > blockN {
				cols = blockN
			}
			copy(c[row*n+cb*blockN:row*n+cb*blockN+cols], cDec[r*blockN:r*blockN+cols])
		}
	}
	return nil
}

// ReferenceMatmulBF16 computes the same product with plain loops but
// identical numerics (bf16-rounded inputs, f32 accumulation in the same
// k-order). Tests compare the tile pipeline against it bit-for-bit.
func ReferenceMatmulBF16(a, b []float32, m, k, n int) []float32 {
	ar := make([]float32, len(a))
	for i, v := range a {
		ar[i] = RoundFloat32(v)
	}
	br := make([]float32, len(b))
	for i, v := range b {
		br[i] = RoundFloat32(v)
	}
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for kk := 0; kk < k; kk++ {
				acc += ar[i*k+kk] * br[kk*n+j]
			}
			c[i*n+j] = acc
		}
	}
	return c
}
