package amx

import (
	"fmt"
	"runtime"
	"sync"
)

// Tile-blocking geometry for BF16 matmul: each TDPBF16PS consumes a
// 16×32 bf16 A block and a 32×16 bf16 B block (VNNI-packed into 16 rows)
// and accumulates into a 16×16 float32 C block.
const (
	blockM = MaxRows         // 16 output rows per tile
	blockK = MaxColBytes / 2 // 32 bf16 values per A row
	blockN = MaxColBytes / 4 // 16 float32 outputs per C row
)

// tmm register roles used by the driver.
const (
	tmmC = 0
	tmmA = 1
	tmmB = 2
)

// matmulConfig is the tile palette the driver installs: C is 16×64B
// (16×16 f32), A is 16×64B (16×32 bf16), B is 16×64B (VNNI 32×16 bf16).
var matmulConfig = TileConfig{Tiles: [NumTiles]TileShape{
	tmmC: {Rows: blockM, ColBytes: MaxColBytes},
	tmmA: {Rows: blockM, ColBytes: MaxColBytes},
	tmmB: {Rows: blockK / 2, ColBytes: MaxColBytes},
}}

// PackBF16 converts a row-major float32 matrix (rows × cols) into a
// row-major bf16 byte buffer padded to padRows × padCols values.
func PackBF16(src []float32, rows, cols, padRows, padCols int) []byte {
	out := make([]byte, padRows*padCols*2)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := BF16FromFloat32(src[r*cols+c])
			off := (r*padCols + c) * 2
			out[off] = byte(v)
			out[off+1] = byte(v >> 8)
		}
	}
	return out
}

// PackBF16VNNI converts a row-major float32 matrix (rows × cols) into the
// VNNI tile layout AMX requires for the right-hand GEMM operand: logical
// row pairs (2r, 2r+1) are interleaved column-wise, so packed row r holds
// B[2r][0], B[2r+1][0], B[2r][1], B[2r+1][1], … The result is padded to
// padRows × padCols logical values (padRows must be even).
func PackBF16VNNI(src []float32, rows, cols, padRows, padCols int) []byte {
	if padRows%2 != 0 {
		panic(fmt.Sprintf("amx: VNNI padRows %d must be even", padRows))
	}
	out := make([]byte, padRows*padCols*2)
	at := func(r, c int) BF16 {
		if r >= rows || c >= cols {
			return 0
		}
		return BF16FromFloat32(src[r*cols+c])
	}
	for pr := 0; pr < padRows/2; pr++ {
		for c := 0; c < padCols; c++ {
			v0 := at(2*pr, c)
			v1 := at(2*pr+1, c)
			off := (pr*padCols + c) * 4
			out[off] = byte(v0)
			out[off+1] = byte(v0 >> 8)
			out[off+2] = byte(v1)
			out[off+3] = byte(v1 >> 8)
		}
	}
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// MatmulBF16 computes C = A·B through the emulated AMX tile pipeline:
// A is M×K, B is K×N, both row-major float32; inputs are rounded to
// bfloat16 (as a BF16 kernel would read them) and accumulation is float32,
// matching TDPBF16PS semantics exactly. It returns the M×N row-major
// result and the total AMX cycles consumed.
//
// The driver parallelizes across row blocks with one emulated Unit per
// worker, mirroring how a real kernel gives each core its own tile file.
func MatmulBF16(a, b []float32, m, k, n int) ([]float32, uint64, error) {
	if len(a) != m*k || len(b) != k*n {
		return nil, 0, fmt.Errorf("amx: matmul operand sizes %d,%d do not match %dx%d · %dx%d", len(a), len(b), m, k, m, n)
	}
	if m <= 0 || k <= 0 || n <= 0 {
		return nil, 0, fmt.Errorf("amx: matmul dimensions must be positive, got %dx%dx%d", m, k, n)
	}
	padM := ceilDiv(m, blockM) * blockM
	padK := ceilDiv(k, blockK) * blockK
	padN := ceilDiv(n, blockN) * blockN

	packedA := PackBF16(a, m, k, padM, padK)
	packedB := PackBF16VNNI(b, k, n, padK, padN)

	c := make([]float32, m*n)
	rowBlocks := padM / blockM
	colBlocks := padN / blockN
	kBlocks := padK / blockK

	workers := runtime.GOMAXPROCS(0)
	if workers > rowBlocks {
		workers = rowBlocks
	}
	if workers < 1 {
		workers = 1
	}

	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		totalCycles uint64
		firstErr    error
	)
	next := make(chan int, rowBlocks)
	for rb := 0; rb < rowBlocks; rb++ {
		next <- rb
	}
	close(next)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			u := NewUnit()
			if err := u.Configure(matmulConfig); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			cTile := make([]byte, blockM*blockN*4)
			for rb := range next {
				if err := runRowBlock(u, rb, colBlocks, kBlocks, padK, padN, packedA, packedB, cTile, c, m, n); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			totalCycles += u.Cycles()
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return c, totalCycles, nil
}

// runRowBlock computes one 16-row stripe of the output.
func runRowBlock(u *Unit, rb, colBlocks, kBlocks, padK, padN int, packedA, packedB, cTile []byte, c []float32, m, n int) error {
	aStride := padK * 2 // bytes per packed A row
	bStride := padN * 4 // bytes per packed VNNI B row (pairs)
	for cb := 0; cb < colBlocks; cb++ {
		if err := u.TileZero(tmmC); err != nil {
			return err
		}
		for kb := 0; kb < kBlocks; kb++ {
			aOff := rb*blockM*aStride + kb*blockK*2
			if err := u.TileLoad(tmmA, packedA[aOff:], aStride); err != nil {
				return err
			}
			bOff := kb*(blockK/2)*bStride + cb*blockN*4
			if err := u.TileLoad(tmmB, packedB[bOff:], bStride); err != nil {
				return err
			}
			if err := u.TDPBF16PS(tmmC, tmmA, tmmB); err != nil {
				return err
			}
		}
		if err := u.TileStore(tmmC, cTile, blockN*4); err != nil {
			return err
		}
		// Scatter the f32 tile into the unpadded result.
		for r := 0; r < blockM; r++ {
			row := rb*blockM + r
			if row >= m {
				break
			}
			for col := 0; col < blockN; col++ {
				j := cb*blockN + col
				if j >= n {
					break
				}
				off := (r*blockN + col) * 4
				bits := uint32(cTile[off]) | uint32(cTile[off+1])<<8 |
					uint32(cTile[off+2])<<16 | uint32(cTile[off+3])<<24
				c[row*n+j] = f32FromBits(bits)
			}
		}
	}
	return nil
}

// ReferenceMatmulBF16 computes the same product with plain loops but
// identical numerics (bf16-rounded inputs, f32 accumulation in the same
// k-order). Tests compare the tile pipeline against it bit-for-bit.
func ReferenceMatmulBF16(a, b []float32, m, k, n int) []float32 {
	ar := make([]float32, len(a))
	for i, v := range a {
		ar[i] = RoundFloat32(v)
	}
	br := make([]float32, len(b))
	for i, v := range b {
		br[i] = RoundFloat32(v)
	}
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for kk := 0; kk < k; kk++ {
				acc += ar[i*k+kk] * br[kk*n+j]
			}
			c[i*n+j] = acc
		}
	}
	return c
}
