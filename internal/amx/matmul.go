package amx

import (
	"fmt"
)

// Tile-blocking geometry for BF16 matmul: each TDPBF16PS consumes a
// 16×32 bf16 A block and a 32×16 bf16 B block (VNNI-packed into 16 rows)
// and accumulates into a 16×16 float32 C block.
const (
	blockM = MaxRows         // 16 output rows per tile
	blockK = MaxColBytes / 2 // 32 bf16 values per A row
	blockN = MaxColBytes / 4 // 16 float32 outputs per C row
)

// tmm register roles used by the driver.
const (
	tmmC = 0
	tmmA = 1
	tmmB = 2
)

// matmulConfig is the tile palette the driver installs: C is 16×64B
// (16×16 f32), A is 16×64B (16×32 bf16), B is 16×64B (VNNI 32×16 bf16).
var matmulConfig = TileConfig{Tiles: [NumTiles]TileShape{
	tmmC: {Rows: blockM, ColBytes: MaxColBytes},
	tmmA: {Rows: blockM, ColBytes: MaxColBytes},
	tmmB: {Rows: blockK / 2, ColBytes: MaxColBytes},
}}

// PackBF16 converts a row-major float32 matrix (rows × cols) into a
// row-major bf16 byte buffer padded to padRows × padCols values.
func PackBF16(src []float32, rows, cols, padRows, padCols int) []byte {
	out := make([]byte, padRows*padCols*2)
	packBF16Into(out, src, rows, cols, padRows, padCols)
	return out
}

// packBF16Into writes the padded bf16 image of src into dst, overwriting
// every byte (dst may carry stale data from a previous use).
func packBF16Into(dst []byte, src []float32, rows, cols, padRows, padCols int) {
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := BF16FromFloat32(src[r*cols+c])
			off := (r*padCols + c) * 2
			dst[off] = byte(v)
			dst[off+1] = byte(v >> 8)
		}
	}
}

// PackBF16VNNI converts a row-major float32 matrix (rows × cols) into the
// VNNI tile layout AMX requires for the right-hand GEMM operand: logical
// row pairs (2r, 2r+1) are interleaved column-wise, so packed row r holds
// B[2r][0], B[2r+1][0], B[2r][1], B[2r+1][1], … The result is padded to
// padRows × padCols logical values (padRows must be even).
func PackBF16VNNI(src []float32, rows, cols, padRows, padCols int) []byte {
	if padRows%2 != 0 {
		panic(fmt.Sprintf("amx: VNNI padRows %d must be even", padRows))
	}
	out := make([]byte, padRows*padCols*2)
	packBF16VNNIInto(out, src, rows, cols, padRows, padCols)
	return out
}

// packBF16VNNIInto writes the VNNI image of src into dst, overwriting
// every byte.
func packBF16VNNIInto(dst []byte, src []float32, rows, cols, padRows, padCols int) {
	at := func(r, c int) BF16 {
		if r >= rows || c >= cols {
			return 0
		}
		return BF16FromFloat32(src[r*cols+c])
	}
	for pr := 0; pr < padRows/2; pr++ {
		for c := 0; c < padCols; c++ {
			v0 := at(2*pr, c)
			v1 := at(2*pr+1, c)
			off := (pr*padCols + c) * 4
			dst[off] = byte(v0)
			dst[off+1] = byte(v0 >> 8)
			dst[off+2] = byte(v1)
			dst[off+3] = byte(v1 >> 8)
		}
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Prepacked is a right-hand BF16 GEMM operand converted once into the
// VNNI tile layout. Building it is the per-weight cost LIA's §5 kernels
// amortize: every MatmulBF16Packed call afterwards streams activations
// through the same immutable image, so the steady state never re-packs.
// Packing is layout-only — the stored values are the same bf16 roundings
// MatmulBF16 produces per call, so results are bit-identical.
type Prepacked struct {
	// K and N are the logical dimensions of the packed matrix.
	K, N       int
	padK, padN int
	vnni       []byte
}

// PrepackBF16 packs a row-major float32 matrix (k × n) for reuse as the
// right-hand operand of MatmulBF16Packed.
func PrepackBF16(b []float32, k, n int) (*Prepacked, error) {
	if len(b) != k*n {
		return nil, fmt.Errorf("amx: prepack operand size %d does not match %dx%d", len(b), k, n)
	}
	if k <= 0 || n <= 0 {
		return nil, fmt.Errorf("amx: prepack dimensions must be positive, got %dx%d", k, n)
	}
	padK := ceilDiv(k, blockK) * blockK
	padN := ceilDiv(n, blockN) * blockN
	return &Prepacked{K: k, N: n, padK: padK, padN: padN, vnni: PackBF16VNNI(b, k, n, padK, padN)}, nil
}

// MatmulBF16 computes C = A·B through the emulated AMX tile pipeline:
// A is M×K, B is K×N, both row-major float32; inputs are rounded to
// bfloat16 (as a BF16 kernel would read them) and accumulation is float32,
// matching TDPBF16PS semantics exactly. It returns the M×N row-major
// result and the total AMX cycles consumed.
//
// B is packed into VNNI layout on every call; when B is a static weight,
// prepack it once with PrepackBF16 and use MatmulBF16Packed instead.
func MatmulBF16(a, b []float32, m, k, n int) ([]float32, uint64, error) {
	if len(a) != m*k || len(b) != k*n {
		return nil, 0, fmt.Errorf("amx: matmul operand sizes %d,%d do not match %dx%d · %dx%d", len(a), len(b), m, k, m, n)
	}
	if m <= 0 || k <= 0 || n <= 0 {
		return nil, 0, fmt.Errorf("amx: matmul dimensions must be positive, got %dx%dx%d", m, k, n)
	}
	padK := ceilDiv(k, blockK) * blockK
	padN := ceilDiv(n, blockN) * blockN
	bScratch := getScratch(padK * padN * 2)
	defer putScratch(bScratch)
	packBF16VNNIInto(*bScratch, b, k, n, padK, padN)
	w := Prepacked{K: k, N: n, padK: padK, padN: padN, vnni: *bScratch}
	return matmulBF16Driver(a, m, &w)
}

// MatmulBF16Packed computes C = A·W for a prepacked right-hand operand,
// skipping the per-call VNNI conversion. A is M×K row-major float32; the
// result and cycle accounting match MatmulBF16(a, w, m, k, n) bit for bit.
func MatmulBF16Packed(a []float32, m int, w *Prepacked) ([]float32, uint64, error) {
	if w == nil {
		return nil, 0, fmt.Errorf("amx: nil prepacked operand")
	}
	if len(a) != m*w.K {
		return nil, 0, fmt.Errorf("amx: matmul operand size %d does not match %dx%d", len(a), m, w.K)
	}
	if m <= 0 {
		return nil, 0, fmt.Errorf("amx: matmul rows must be positive, got %d", m)
	}
	return matmulBF16Driver(a, m, w)
}

// matmulBF16Driver packs A into pooled scratch and dispatches row blocks
// onto the persistent worker pool (single-block products run inline on
// the caller).
func matmulBF16Driver(a []float32, m int, w *Prepacked) ([]float32, uint64, error) {
	padM := ceilDiv(m, blockM) * blockM
	aScratch := getScratch(padM * w.padK * 2)
	defer putScratch(aScratch)
	packedA := *aScratch
	packBF16Into(packedA, a, m, w.K, padM, w.padK)

	c := make([]float32, m*w.N)
	rowBlocks := padM / blockM
	colBlocks := w.padN / blockN
	kBlocks := w.padK / blockK

	if rowBlocks == 1 {
		// Decode-shaped fast path, closure-free.
		caller := callerUnits.Get().(*pooledUnit)
		defer callerUnits.Put(caller)
		start := caller.u.Cycles()
		err := caller.ensure(matmulConfig)
		if err == nil {
			err = runRowBlock(caller.u, 0, colBlocks, kBlocks, w.padK, w.padN, packedA, w.vnni, caller.cTile[:blockM*blockN*4], c, m, w.N)
		}
		if err != nil {
			return nil, 0, err
		}
		return c, caller.u.Cycles() - start, nil
	}

	cycles, err := runTiled(matmulConfig, rowBlocks, func(pu *pooledUnit, rb int) error {
		return runRowBlock(pu.u, rb, colBlocks, kBlocks, w.padK, w.padN, packedA, w.vnni, pu.cTile[:blockM*blockN*4], c, m, w.N)
	})
	if err != nil {
		return nil, 0, err
	}
	return c, cycles, nil
}

// runRowBlock computes one 16-row stripe of the output.
func runRowBlock(u *Unit, rb, colBlocks, kBlocks, padK, padN int, packedA, packedB, cTile []byte, c []float32, m, n int) error {
	aStride := padK * 2 // bytes per packed A row
	bStride := padN * 4 // bytes per packed VNNI B row (pairs)
	for cb := 0; cb < colBlocks; cb++ {
		if err := u.TileZero(tmmC); err != nil {
			return err
		}
		for kb := 0; kb < kBlocks; kb++ {
			aOff := rb*blockM*aStride + kb*blockK*2
			if err := u.TileLoad(tmmA, packedA[aOff:], aStride); err != nil {
				return err
			}
			bOff := kb*(blockK/2)*bStride + cb*blockN*4
			if err := u.TileLoad(tmmB, packedB[bOff:], bStride); err != nil {
				return err
			}
			if err := u.TDPBF16PS(tmmC, tmmA, tmmB); err != nil {
				return err
			}
		}
		if err := u.TileStore(tmmC, cTile, blockN*4); err != nil {
			return err
		}
		// Scatter the f32 tile into the unpadded result.
		for r := 0; r < blockM; r++ {
			row := rb*blockM + r
			if row >= m {
				break
			}
			for col := 0; col < blockN; col++ {
				j := cb*blockN + col
				if j >= n {
					break
				}
				off := (r*blockN + col) * 4
				bits := uint32(cTile[off]) | uint32(cTile[off+1])<<8 |
					uint32(cTile[off+2])<<16 | uint32(cTile[off+3])<<24
				c[row*n+j] = f32FromBits(bits)
			}
		}
	}
	return nil
}

// ReferenceMatmulBF16 computes the same product with plain loops but
// identical numerics (bf16-rounded inputs, f32 accumulation in the same
// k-order). Tests compare the tile pipeline against it bit-for-bit.
func ReferenceMatmulBF16(a, b []float32, m, k, n int) []float32 {
	ar := make([]float32, len(a))
	for i, v := range a {
		ar[i] = RoundFloat32(v)
	}
	br := make([]float32, len(b))
	for i, v := range b {
		br[i] = RoundFloat32(v)
	}
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for kk := 0; kk < k; kk++ {
				acc += ar[i*k+kk] * br[kk*n+j]
			}
			c[i*n+j] = acc
		}
	}
	return c
}
