// Package amx is a functional emulator of Intel Advanced Matrix
// Extensions: the eight tile registers (tmm0–tmm7), the tile
// configuration state, and the TMUL dot-product instructions TDPBF16PS
// (bfloat16 → float32 accumulate) and TDPBUSD (uint8 × int8 → int32
// accumulate). It reproduces the architectural semantics — including the
// VNNI operand layout and bfloat16 rounding — and keeps an instruction
// cycle count so higher layers can reason about AMX throughput the same
// way §4 of the paper does.
//
// The blocked matmul drivers in matmul.go are the "kernel library" the
// functional LLM engine (package llm) routes CPU-offloaded sublayers
// through, proving that the dataflow LIA's analytical model assumes is
// executable end to end.
package amx

import (
	"errors"
	"fmt"
	"math"
)

// Architectural constants of the AMX tile file.
const (
	// NumTiles is the number of tile registers (tmm0–tmm7).
	NumTiles = 8
	// MaxRows is the maximum rows per tile.
	MaxRows = 16
	// MaxColBytes is the maximum bytes per tile row.
	MaxColBytes = 64
)

// Instruction cycle costs for the throughput model. TDP* occupies the
// TMUL grid for 16 cycles on SPR; loads/stores stream a tile through the
// load ports.
const (
	cyclesTileLoad  = 8
	cyclesTileStore = 8
	cyclesTileZero  = 1
	cyclesTDP       = 16
	cyclesConfig    = 18
)

// TileShape describes one tile's configured geometry.
type TileShape struct {
	// Rows is the configured row count (1–16); zero means the tile is
	// unconfigured and faults on use.
	Rows int
	// ColBytes is the configured bytes per row (1–64).
	ColBytes int
}

// TileConfig is the LDTILECFG state: a shape per tile register.
type TileConfig struct {
	// Tiles holds the geometry of tmm0–tmm7.
	Tiles [NumTiles]TileShape
}

// Common errors returned by the emulator.
var (
	// ErrNotConfigured is returned when an instruction touches a tile with
	// no configured shape — the hardware raises #UD.
	ErrNotConfigured = errors.New("amx: tile not configured")
	// ErrBadTile is returned for a tile index outside tmm0–tmm7.
	ErrBadTile = errors.New("amx: tile index out of range")
	// ErrShape is returned when instruction operands have incompatible
	// configured shapes.
	ErrShape = errors.New("amx: incompatible tile shapes")
	// ErrBounds is returned when a load or store would run past the
	// provided memory slice.
	ErrBounds = errors.New("amx: memory access out of bounds")
)

// tile is one tile register's backing store.
type tile struct {
	shape TileShape
	data  [MaxRows * MaxColBytes]byte
}

// Unit is one core's AMX state: tile configuration, tile registers, and a
// cycle counter.
type Unit struct {
	tiles  [NumTiles]tile
	cycles uint64
	onLine bool
}

// NewUnit returns an AMX unit in the INIT state (no tiles configured).
func NewUnit() *Unit { return &Unit{} }

// Cycles reports the cycles consumed by all instructions so far.
func (u *Unit) Cycles() uint64 { return u.cycles }

// Configure executes LDTILECFG: validates and installs the tile palette,
// zeroing all tile data.
func (u *Unit) Configure(cfg TileConfig) error {
	for i, sh := range cfg.Tiles {
		if sh == (TileShape{}) {
			continue
		}
		if sh.Rows < 1 || sh.Rows > MaxRows || sh.ColBytes < 1 || sh.ColBytes > MaxColBytes {
			return fmt.Errorf("amx: tile %d shape %dx%dB invalid: %w", i, sh.Rows, sh.ColBytes, ErrShape)
		}
	}
	for i := range u.tiles {
		u.tiles[i] = tile{shape: cfg.Tiles[i]}
	}
	u.onLine = true
	u.cycles += cyclesConfig
	return nil
}

// Release executes TILERELEASE, returning the unit to the INIT state.
func (u *Unit) Release() {
	*u = Unit{cycles: u.cycles}
}

func (u *Unit) tileFor(idx int) (*tile, error) {
	if idx < 0 || idx >= NumTiles {
		return nil, fmt.Errorf("amx: tmm%d: %w", idx, ErrBadTile)
	}
	t := &u.tiles[idx]
	if !u.onLine || t.shape == (TileShape{}) {
		return nil, fmt.Errorf("amx: tmm%d: %w", idx, ErrNotConfigured)
	}
	return t, nil
}

// TileZero executes TILEZERO tmm{idx}.
func (u *Unit) TileZero(idx int) error {
	t, err := u.tileFor(idx)
	if err != nil {
		return err
	}
	for i := range t.data {
		t.data[i] = 0
	}
	u.cycles += cyclesTileZero
	return nil
}

// TileLoad executes TILELOADD tmm{idx}, [mem+stride]: it copies
// shape.Rows rows of shape.ColBytes bytes from mem, advancing by stride
// bytes per row.
func (u *Unit) TileLoad(idx int, mem []byte, stride int) error {
	t, err := u.tileFor(idx)
	if err != nil {
		return err
	}
	if stride < t.shape.ColBytes {
		return fmt.Errorf("amx: stride %d < row bytes %d: %w", stride, t.shape.ColBytes, ErrShape)
	}
	need := (t.shape.Rows-1)*stride + t.shape.ColBytes
	if need > len(mem) {
		return fmt.Errorf("amx: load needs %d bytes, have %d: %w", need, len(mem), ErrBounds)
	}
	for r := 0; r < t.shape.Rows; r++ {
		copy(t.data[r*MaxColBytes:r*MaxColBytes+t.shape.ColBytes], mem[r*stride:])
	}
	u.cycles += cyclesTileLoad
	return nil
}

// TileStore executes TILESTORED [mem+stride], tmm{idx}.
func (u *Unit) TileStore(idx int, mem []byte, stride int) error {
	t, err := u.tileFor(idx)
	if err != nil {
		return err
	}
	if stride < t.shape.ColBytes {
		return fmt.Errorf("amx: stride %d < row bytes %d: %w", stride, t.shape.ColBytes, ErrShape)
	}
	need := (t.shape.Rows-1)*stride + t.shape.ColBytes
	if need > len(mem) {
		return fmt.Errorf("amx: store needs %d bytes, have %d: %w", need, len(mem), ErrBounds)
	}
	for r := 0; r < t.shape.Rows; r++ {
		copy(mem[r*stride:r*stride+t.shape.ColBytes], t.data[r*MaxColBytes:])
	}
	u.cycles += cyclesTileStore
	return nil
}

// readBF16 reads the bfloat16 at byte offset off within a tile row.
func (t *tile) readBF16(row, pair int) BF16 {
	off := row*MaxColBytes + pair*2
	return BF16(uint16(t.data[off]) | uint16(t.data[off+1])<<8)
}

// readF32 reads the float32 at element column c of a tile row.
func (t *tile) readF32(row, col int) float32 {
	off := row*MaxColBytes + col*4
	bits := uint32(t.data[off]) | uint32(t.data[off+1])<<8 |
		uint32(t.data[off+2])<<16 | uint32(t.data[off+3])<<24
	return f32FromBits(bits)
}

func (t *tile) writeF32(row, col int, v float32) {
	off := row*MaxColBytes + col*4
	bits := f32Bits(v)
	t.data[off] = byte(bits)
	t.data[off+1] = byte(bits >> 8)
	t.data[off+2] = byte(bits >> 16)
	t.data[off+3] = byte(bits >> 24)
}

// readI32 reads the int32 at element column c of a tile row.
func (t *tile) readI32(row, col int) int32 {
	off := row*MaxColBytes + col*4
	return int32(uint32(t.data[off]) | uint32(t.data[off+1])<<8 |
		uint32(t.data[off+2])<<16 | uint32(t.data[off+3])<<24)
}

func (t *tile) writeI32(row, col int, v int32) {
	t.writeF32(row, col, f32FromBits(uint32(v)))
}

// TDPBF16PS executes dst += a × b where a holds bfloat16 pairs
// (M rows × 2K values), b holds the VNNI-packed right operand
// (K rows × N bfloat16 pairs), and dst accumulates float32 (M rows × N).
//
// VNNI layout: row r of b contains, for each output column n, the pair
// (B[2r][n], B[2r+1][n]) of the logical (2K × N) matrix.
func (u *Unit) TDPBF16PS(dst, a, b int) error {
	td, err := u.tileFor(dst)
	if err != nil {
		return err
	}
	ta, err := u.tileFor(a)
	if err != nil {
		return err
	}
	tb, err := u.tileFor(b)
	if err != nil {
		return err
	}
	m := td.shape.Rows
	n := td.shape.ColBytes / 4
	kPairs := ta.shape.ColBytes / 4 // bf16 pairs per A row
	if ta.shape.Rows != m {
		return fmt.Errorf("amx: A rows %d != dst rows %d: %w", ta.shape.Rows, m, ErrShape)
	}
	if tb.shape.Rows != kPairs || tb.shape.ColBytes/4 != n {
		return fmt.Errorf("amx: B shape %dx%d incompatible with dst %dx%d / A pairs %d: %w",
			tb.shape.Rows, tb.shape.ColBytes/4, m, n, kPairs, ErrShape)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := td.readF32(i, j)
			for k := 0; k < kPairs; k++ {
				a0 := ta.readBF16(i, 2*k).Float32()
				a1 := ta.readBF16(i, 2*k+1).Float32()
				b0 := tb.readBF16(k, 2*j).Float32()
				b1 := tb.readBF16(k, 2*j+1).Float32()
				acc += a0*b0 + a1*b1
			}
			td.writeF32(i, j, acc)
		}
	}
	u.cycles += cyclesTDP
	return nil
}

// TDPBUSD executes dst += a × b with a holding unsigned 8-bit quads
// (M rows × 4K values), b holding the VNNI-packed signed 8-bit right
// operand (K rows × N quads), and dst accumulating int32 (M rows × N).
func (u *Unit) TDPBUSD(dst, a, b int) error {
	td, err := u.tileFor(dst)
	if err != nil {
		return err
	}
	ta, err := u.tileFor(a)
	if err != nil {
		return err
	}
	tb, err := u.tileFor(b)
	if err != nil {
		return err
	}
	m := td.shape.Rows
	n := td.shape.ColBytes / 4
	kQuads := ta.shape.ColBytes / 4
	if ta.shape.Rows != m || tb.shape.Rows != kQuads || tb.shape.ColBytes/4 != n {
		return fmt.Errorf("amx: TDPBUSD operand shapes incompatible: %w", ErrShape)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := td.readI32(i, j)
			for k := 0; k < kQuads; k++ {
				for q := 0; q < 4; q++ {
					av := int32(ta.data[i*MaxColBytes+4*k+q])       // unsigned
					bv := int32(int8(tb.data[k*MaxColBytes+4*j+q])) // signed
					acc += av * bv
				}
			}
			td.writeI32(i, j, acc)
		}
	}
	u.cycles += cyclesTDP
	return nil
}

func f32Bits(f float32) uint32 { return math.Float32bits(f) }

func f32FromBits(b uint32) float32 { return math.Float32frombits(b) }
