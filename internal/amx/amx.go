// Package amx is a functional emulator of Intel Advanced Matrix
// Extensions: the eight tile registers (tmm0–tmm7), the tile
// configuration state, and the TMUL dot-product instructions TDPBF16PS
// (bfloat16 → float32 accumulate) and TDPBUSD (uint8 × int8 → int32
// accumulate). It reproduces the architectural semantics — including the
// VNNI operand layout and bfloat16 rounding — and keeps an instruction
// cycle count so higher layers can reason about AMX throughput the same
// way §4 of the paper does.
//
// The blocked matmul drivers in matmul.go are the "kernel library" the
// functional LLM engine (package llm) routes CPU-offloaded sublayers
// through, proving that the dataflow LIA's analytical model assumes is
// executable end to end.
//
// The emulator is two-tier. The byte-accurate instructions (TDPBF16PS,
// TDPBUSD, TileLoad/TileStore) reassemble every operand from the tile
// file's bytes and are the semantic reference. The decoded fast path
// (TDPBF16PSDecoded, TDPBUSDDecoded, the *Check tile ops) applies the
// discipline real AMX kernel libraries apply on hardware — hoist format
// conversion out of the MAC loop — to the emulator itself: operands are
// decoded once (at prepack time for weights, once per call for
// activations) and the inner loops run over flat slices. Faults, cycle
// accounting, accumulation order and therefore results are identical;
// a fuzz + exhaustive-shape suite pins the two tiers bit-for-bit.
package amx

import (
	"errors"
	"fmt"
	"math"
)

// Architectural constants of the AMX tile file.
const (
	// NumTiles is the number of tile registers (tmm0–tmm7).
	NumTiles = 8
	// MaxRows is the maximum rows per tile.
	MaxRows = 16
	// MaxColBytes is the maximum bytes per tile row.
	MaxColBytes = 64
)

// Instruction cycle costs for the throughput model. TDP* occupies the
// TMUL grid for 16 cycles on SPR; loads/stores stream a tile through the
// load ports.
const (
	cyclesTileLoad  = 8
	cyclesTileStore = 8
	cyclesTileZero  = 1
	cyclesTDP       = 16
	cyclesConfig    = 18
)

// TileShape describes one tile's configured geometry.
type TileShape struct {
	// Rows is the configured row count (1–16); zero means the tile is
	// unconfigured and faults on use.
	Rows int
	// ColBytes is the configured bytes per row (1–64).
	ColBytes int
}

// TileConfig is the LDTILECFG state: a shape per tile register.
type TileConfig struct {
	// Tiles holds the geometry of tmm0–tmm7.
	Tiles [NumTiles]TileShape
}

// Common errors returned by the emulator.
var (
	// ErrNotConfigured is returned when an instruction touches a tile with
	// no configured shape — the hardware raises #UD.
	ErrNotConfigured = errors.New("amx: tile not configured")
	// ErrBadTile is returned for a tile index outside tmm0–tmm7.
	ErrBadTile = errors.New("amx: tile index out of range")
	// ErrShape is returned when instruction operands have incompatible
	// configured shapes.
	ErrShape = errors.New("amx: incompatible tile shapes")
	// ErrBounds is returned when a load or store would run past the
	// provided memory slice.
	ErrBounds = errors.New("amx: memory access out of bounds")
)

// tile is one tile register's backing store.
type tile struct {
	shape TileShape
	data  [MaxRows * MaxColBytes]byte
}

// Unit is one core's AMX state: tile configuration, tile registers, and a
// cycle counter.
type Unit struct {
	tiles  [NumTiles]tile
	cycles uint64
	onLine bool
}

// NewUnit returns an AMX unit in the INIT state (no tiles configured).
func NewUnit() *Unit { return &Unit{} }

// Cycles reports the cycles consumed by all instructions so far.
func (u *Unit) Cycles() uint64 { return u.cycles }

// Configure executes LDTILECFG: validates and installs the tile palette,
// zeroing all tile data.
func (u *Unit) Configure(cfg TileConfig) error {
	for i, sh := range cfg.Tiles {
		if sh == (TileShape{}) {
			continue
		}
		if sh.Rows < 1 || sh.Rows > MaxRows || sh.ColBytes < 1 || sh.ColBytes > MaxColBytes {
			return fmt.Errorf("amx: tile %d shape %dx%dB invalid: %w", i, sh.Rows, sh.ColBytes, ErrShape)
		}
	}
	for i := range u.tiles {
		u.tiles[i] = tile{shape: cfg.Tiles[i]}
	}
	u.onLine = true
	u.cycles += cyclesConfig
	return nil
}

// Release executes TILERELEASE, returning the unit to the INIT state.
func (u *Unit) Release() {
	*u = Unit{cycles: u.cycles}
}

func (u *Unit) tileFor(idx int) (*tile, error) {
	if idx < 0 || idx >= NumTiles {
		return nil, fmt.Errorf("amx: tmm%d: %w", idx, ErrBadTile)
	}
	t := &u.tiles[idx]
	if !u.onLine || t.shape == (TileShape{}) {
		return nil, fmt.Errorf("amx: tmm%d: %w", idx, ErrNotConfigured)
	}
	return t, nil
}

// TileZero executes TILEZERO tmm{idx}.
func (u *Unit) TileZero(idx int) error {
	t, err := u.tileFor(idx)
	if err != nil {
		return err
	}
	for i := range t.data {
		t.data[i] = 0
	}
	u.cycles += cyclesTileZero
	return nil
}

// loadCheck validates a TILELOADD's configuration, stride and memory
// bounds against a memory region of memBytes bytes; loadOp selects the
// "load"/"store" wording so the error text matches the faulting
// instruction exactly.
func (u *Unit) loadCheck(idx, memBytes, stride int, op string) (*tile, error) {
	t, err := u.tileFor(idx)
	if err != nil {
		return nil, err
	}
	if stride < t.shape.ColBytes {
		return nil, fmt.Errorf("amx: stride %d < row bytes %d: %w", stride, t.shape.ColBytes, ErrShape)
	}
	need := (t.shape.Rows-1)*stride + t.shape.ColBytes
	if need > memBytes {
		return nil, fmt.Errorf("amx: %s needs %d bytes, have %d: %w", op, need, memBytes, ErrBounds)
	}
	return t, nil
}

// TileLoad executes TILELOADD tmm{idx}, [mem+stride]: it copies
// shape.Rows rows of shape.ColBytes bytes from mem, advancing by stride
// bytes per row.
func (u *Unit) TileLoad(idx int, mem []byte, stride int) error {
	t, err := u.loadCheck(idx, len(mem), stride, "load")
	if err != nil {
		return err
	}
	for r := 0; r < t.shape.Rows; r++ {
		copy(t.data[r*MaxColBytes:r*MaxColBytes+t.shape.ColBytes], mem[r*stride:])
	}
	u.cycles += cyclesTileLoad
	return nil
}

// TileLoadCheck performs TILELOADD's fault checking and cycle accounting
// without moving any bytes: the decoded fast path keeps its operands in
// flat pre-decoded slices, but a load that would fault on hardware must
// fault identically — and cost the same cycles — there too. memBytes is
// the byte length of the region the byte-path load would read.
func (u *Unit) TileLoadCheck(idx, memBytes, stride int) error {
	if _, err := u.loadCheck(idx, memBytes, stride, "load"); err != nil {
		return err
	}
	u.cycles += cyclesTileLoad
	return nil
}

// TileStore executes TILESTORED [mem+stride], tmm{idx}.
func (u *Unit) TileStore(idx int, mem []byte, stride int) error {
	t, err := u.loadCheck(idx, len(mem), stride, "store")
	if err != nil {
		return err
	}
	for r := 0; r < t.shape.Rows; r++ {
		copy(mem[r*stride:r*stride+t.shape.ColBytes], t.data[r*MaxColBytes:])
	}
	u.cycles += cyclesTileStore
	return nil
}

// TileStoreCheck is TileStore's fault-and-cycles-only counterpart, the
// store analog of TileLoadCheck.
func (u *Unit) TileStoreCheck(idx, memBytes, stride int) error {
	if _, err := u.loadCheck(idx, memBytes, stride, "store"); err != nil {
		return err
	}
	u.cycles += cyclesTileStore
	return nil
}

// TileZeroCheck is TILEZERO's fault-and-cycles-only counterpart: the
// decoded fast path zeroes its flat accumulator itself but still pays
// the instruction's cycle (and faults on an unconfigured tile).
func (u *Unit) TileZeroCheck(idx int) error {
	if _, err := u.tileFor(idx); err != nil {
		return err
	}
	u.cycles += cyclesTileZero
	return nil
}

// readBF16 reads the bfloat16 at byte offset off within a tile row.
func (t *tile) readBF16(row, pair int) BF16 {
	off := row*MaxColBytes + pair*2
	return BF16FromBytes(t.data[off], t.data[off+1])
}

// readF32 reads the float32 at element column c of a tile row.
func (t *tile) readF32(row, col int) float32 {
	off := row*MaxColBytes + col*4
	bits := uint32(t.data[off]) | uint32(t.data[off+1])<<8 |
		uint32(t.data[off+2])<<16 | uint32(t.data[off+3])<<24
	return f32FromBits(bits)
}

func (t *tile) writeF32(row, col int, v float32) {
	off := row*MaxColBytes + col*4
	bits := f32Bits(v)
	t.data[off] = byte(bits)
	t.data[off+1] = byte(bits >> 8)
	t.data[off+2] = byte(bits >> 16)
	t.data[off+3] = byte(bits >> 24)
}

// readI32 reads the int32 at element column c of a tile row.
func (t *tile) readI32(row, col int) int32 {
	off := row*MaxColBytes + col*4
	return int32(uint32(t.data[off]) | uint32(t.data[off+1])<<8 |
		uint32(t.data[off+2])<<16 | uint32(t.data[off+3])<<24)
}

func (t *tile) writeI32(row, col int, v int32) {
	// Write the four bytes directly: routing the bits through a float32
	// round trip could canonicalize a signaling-NaN-patterned accumulator
	// on platforms whose FP moves quieten sNaNs, and integer accumulators
	// are plain bit patterns.
	off := row*MaxColBytes + col*4
	bits := uint32(v)
	t.data[off] = byte(bits)
	t.data[off+1] = byte(bits >> 8)
	t.data[off+2] = byte(bits >> 16)
	t.data[off+3] = byte(bits >> 24)
}

// tdpTiles resolves the three TMUL operand tiles, faulting exactly as
// the hardware would on a bad index or unconfigured tile. Both the byte
// and decoded entry points go through it so their faults are identical.
func (u *Unit) tdpTiles(dst, a, b int) (td, ta, tb *tile, err error) {
	if td, err = u.tileFor(dst); err != nil {
		return nil, nil, nil, err
	}
	if ta, err = u.tileFor(a); err != nil {
		return nil, nil, nil, err
	}
	if tb, err = u.tileFor(b); err != nil {
		return nil, nil, nil, err
	}
	return td, ta, tb, nil
}

// tdpBF16Shapes validates the configured geometry for TDPBF16PS and
// returns the m/n/kPairs trip counts. Shared by the byte and decoded
// entry points: same checks, same error text.
func tdpBF16Shapes(td, ta, tb *tile) (m, n, kPairs int, err error) {
	m = td.shape.Rows
	n = td.shape.ColBytes / 4
	kPairs = ta.shape.ColBytes / 4 // bf16 pairs per A row
	if ta.shape.Rows != m {
		return 0, 0, 0, fmt.Errorf("amx: A rows %d != dst rows %d: %w", ta.shape.Rows, m, ErrShape)
	}
	if tb.shape.Rows != kPairs || tb.shape.ColBytes/4 != n {
		return 0, 0, 0, fmt.Errorf("amx: B shape %dx%d incompatible with dst %dx%d / A pairs %d: %w",
			tb.shape.Rows, tb.shape.ColBytes/4, m, n, kPairs, ErrShape)
	}
	return m, n, kPairs, nil
}

// TDPBF16PS executes dst += a × b where a holds bfloat16 pairs
// (M rows × 2K values), b holds the VNNI-packed right operand
// (K rows × N bfloat16 pairs), and dst accumulates float32 (M rows × N).
//
// VNNI layout: row r of b contains, for each output column n, the pair
// (B[2r][n], B[2r+1][n]) of the logical (2K × N) matrix.
//
// This is the byte-accurate oracle: every operand value is reassembled
// from the tile file's bytes on every multiply. The decoded fast path
// (TDPBF16PSDecoded) runs the same accumulation over pre-decoded flat
// slices; a fuzz + exhaustive-shape suite pins the two bit-for-bit.
func (u *Unit) TDPBF16PS(dst, a, b int) error {
	td, ta, tb, err := u.tdpTiles(dst, a, b)
	if err != nil {
		return err
	}
	m, n, kPairs, err := tdpBF16Shapes(td, ta, tb)
	if err != nil {
		return err
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := td.readF32(i, j)
			for k := 0; k < kPairs; k++ {
				a0 := ta.readBF16(i, 2*k).Float32()
				a1 := ta.readBF16(i, 2*k+1).Float32()
				b0 := tb.readBF16(k, 2*j).Float32()
				b1 := tb.readBF16(k, 2*j+1).Float32()
				acc += a0*b0 + a1*b1
			}
			td.writeF32(i, j, acc)
		}
	}
	u.cycles += cyclesTDP
	return nil
}

// tdpINT8Shapes validates the configured geometry for TDPBUSD, shared
// by the byte and decoded entry points.
func tdpINT8Shapes(td, ta, tb *tile) (m, n, kQuads int, err error) {
	m = td.shape.Rows
	n = td.shape.ColBytes / 4
	kQuads = ta.shape.ColBytes / 4
	if ta.shape.Rows != m || tb.shape.Rows != kQuads || tb.shape.ColBytes/4 != n {
		return 0, 0, 0, fmt.Errorf("amx: TDPBUSD operand shapes incompatible: %w", ErrShape)
	}
	return m, n, kQuads, nil
}

// TDPBUSD executes dst += a × b with a holding unsigned 8-bit quads
// (M rows × 4K values), b holding the VNNI-packed signed 8-bit right
// operand (K rows × N quads), and dst accumulating int32 (M rows × N).
// Like TDPBF16PS it is the byte-accurate oracle; TDPBUSDDecoded is the
// flat-slice fast path pinned to it bit-for-bit.
func (u *Unit) TDPBUSD(dst, a, b int) error {
	td, ta, tb, err := u.tdpTiles(dst, a, b)
	if err != nil {
		return err
	}
	m, n, kQuads, err := tdpINT8Shapes(td, ta, tb)
	if err != nil {
		return err
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			acc := td.readI32(i, j)
			for k := 0; k < kQuads; k++ {
				for q := 0; q < 4; q++ {
					av := int32(ta.data[i*MaxColBytes+4*k+q])       // unsigned
					bv := int32(int8(tb.data[k*MaxColBytes+4*j+q])) // signed
					acc += av * bv
				}
			}
			td.writeI32(i, j, acc)
		}
	}
	u.cycles += cyclesTDP
	return nil
}

// TDPBF16PSDecoded executes TDPBF16PS's accumulation over pre-decoded
// operands — the fast path real AMX kernel libraries model: format
// conversion is hoisted out of the MAC loop, which runs over flat
// float32 slices with hoisted row subslices and no per-element byte
// assembly.
//
//   - cDec is the float32 accumulator: element (i, j) at cDec[i*cStride+j].
//   - aDec holds tile a's bf16 lanes pre-rounded to float32, row-major:
//     lane k of row i at aDec[i*aStride+k] (2·kPairs lanes per row).
//   - bCols holds tile b's lanes decoded **column-major**: output column
//     j's 2·kPairs lanes, in k order, at bCols[j*bColStride:]. This is a
//     layout-only transpose of the VNNI image — pair p of column j is
//     (bCols[j*bColStride+2p], bCols[j*bColStride+2p+1]), exactly the
//     (B[2p][j], B[2p+1][j]) pair the byte path reads from packed row p.
//
// Configuration and shape faults, trip counts, cycle accounting and the
// m/n/k accumulation order are identical to TDPBF16PS, so results are
// bit-for-bit the same; only the operand transport differs.
func (u *Unit) TDPBF16PSDecoded(dst, a, b int, cDec []float32, cStride int, aDec []float32, aStride int, bCols []float32, bColStride int) error {
	return u.tdpBF16PSDecodedRows(dst, a, b, MaxRows, cDec, cStride, aDec, aStride, bCols, bColStride)
}

// tdpBF16PSDecodedRows is TDPBF16PSDecoded with the MAC loop bounded to
// the first rows tile rows. The matmul drivers use it to skip A rows
// that are pure zero padding (a GEMV pads 1 real row to a 16-row tile):
// a zero A row contributes only zero adds to its accumulator row, and
// the drivers never scatter those rows into the result, so skipping
// them changes no observable output. Faults, trip-count validation and
// cycle accounting are those of the full instruction — the modeled AMX
// unit still pays for the whole tile; only the emulation's host-side
// arithmetic is elided.
func (u *Unit) tdpBF16PSDecodedRows(dst, a, b, rows int, cDec []float32, cStride int, aDec []float32, aStride int, bCols []float32, bColStride int) error {
	td, ta, tb, err := u.tdpTiles(dst, a, b)
	if err != nil {
		return err
	}
	m, n, kPairs, err := tdpBF16Shapes(td, ta, tb)
	if err != nil {
		return err
	}
	lanes := 2 * kPairs
	if cStride < n || aStride < lanes || bColStride < lanes {
		return fmt.Errorf("amx: decoded strides %d/%d/%d below widths %d/%d: %w", cStride, aStride, bColStride, n, lanes, ErrShape)
	}
	if need := (m-1)*cStride + n; need > len(cDec) {
		return fmt.Errorf("amx: decoded accumulator needs %d values, have %d: %w", need, len(cDec), ErrBounds)
	}
	if need := (m-1)*aStride + lanes; need > len(aDec) {
		return fmt.Errorf("amx: decoded A needs %d values, have %d: %w", need, len(aDec), ErrBounds)
	}
	if need := (n-1)*bColStride + lanes; need > len(bCols) {
		return fmt.Errorf("amx: decoded B needs %d values, have %d: %w", need, len(bCols), ErrBounds)
	}
	if rows < m {
		// Bounds and faults above are the full instruction's; only the
		// MAC trip count shrinks.
		m = rows
	}
	for i := 0; i < m; i++ {
		arow := aDec[i*aStride : i*aStride+lanes]
		crow := cDec[i*cStride : i*cStride+n]
		// Each output element is a serial float32 add chain — the byte
		// path's exact sequence acc += a0·b0 + a1·b1 per pair, in k order,
		// cannot be reassociated — so single-column walks are bound by add
		// latency. Register-blocking four columns per k-walk interleaves
		// four *independent* chains (each still in its original order) and
		// reuses every A load fourfold.
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := bCols[j*bColStride : j*bColStride+lanes]
			b1 := bCols[(j+1)*bColStride : (j+1)*bColStride+lanes]
			b2 := bCols[(j+2)*bColStride : (j+2)*bColStride+lanes]
			b3 := bCols[(j+3)*bColStride : (j+3)*bColStride+lanes]
			acc0, acc1, acc2, acc3 := crow[j], crow[j+1], crow[j+2], crow[j+3]
			for k := 0; k < lanes; k += 2 {
				a0, a1 := arow[k], arow[k+1]
				acc0 += a0*b0[k] + a1*b0[k+1]
				acc1 += a0*b1[k] + a1*b1[k+1]
				acc2 += a0*b2[k] + a1*b2[k+1]
				acc3 += a0*b3[k] + a1*b3[k+1]
			}
			crow[j], crow[j+1], crow[j+2], crow[j+3] = acc0, acc1, acc2, acc3
		}
		for ; j < n; j++ {
			bcol := bCols[j*bColStride : j*bColStride+lanes]
			acc := crow[j]
			for k := 0; k < lanes; k += 2 {
				acc += arow[k]*bcol[k] + arow[k+1]*bcol[k+1]
			}
			crow[j] = acc
		}
	}
	u.cycles += cyclesTDP
	return nil
}

// TDPBUSDDecoded executes TDPBUSD's accumulation over pre-decoded
// operands, mirroring TDPBF16PSDecoded: aDec holds tile a's unsigned
// lanes row-major (4·kQuads per row), bCols tile b's signed lanes
// column-major (output column j's 4·kQuads lanes, in k order, at
// bCols[j*bColStride:]), cDec the int32 accumulator. Faults, cycles and
// results are identical to TDPBUSD.
func (u *Unit) TDPBUSDDecoded(dst, a, b int, cDec []int32, cStride int, aDec []uint8, aStride int, bCols []int8, bColStride int) error {
	return u.tdpBUSDDecodedRows(dst, a, b, MaxRows, cDec, cStride, aDec, aStride, bCols, bColStride)
}

// tdpBUSDDecodedRows bounds TDPBUSDDecoded's MAC loop to the first rows
// tile rows, the INT8 twin of tdpBF16PSDecodedRows: callers guarantee
// the elided rows are zero padding whose accumulator rows are never
// scattered, and faults and cycle accounting stay those of the full
// instruction.
func (u *Unit) tdpBUSDDecodedRows(dst, a, b, rows int, cDec []int32, cStride int, aDec []uint8, aStride int, bCols []int8, bColStride int) error {
	td, ta, tb, err := u.tdpTiles(dst, a, b)
	if err != nil {
		return err
	}
	m, n, kQuads, err := tdpINT8Shapes(td, ta, tb)
	if err != nil {
		return err
	}
	lanes := 4 * kQuads
	if cStride < n || aStride < lanes || bColStride < lanes {
		return fmt.Errorf("amx: decoded strides %d/%d/%d below widths %d/%d: %w", cStride, aStride, bColStride, n, lanes, ErrShape)
	}
	if need := (m-1)*cStride + n; need > len(cDec) {
		return fmt.Errorf("amx: decoded accumulator needs %d values, have %d: %w", need, len(cDec), ErrBounds)
	}
	if need := (m-1)*aStride + lanes; need > len(aDec) {
		return fmt.Errorf("amx: decoded A needs %d values, have %d: %w", need, len(aDec), ErrBounds)
	}
	if need := (n-1)*bColStride + lanes; need > len(bCols) {
		return fmt.Errorf("amx: decoded B needs %d values, have %d: %w", need, len(bCols), ErrBounds)
	}
	if rows < m {
		m = rows
	}
	for i := 0; i < m; i++ {
		arow := aDec[i*aStride : i*aStride+lanes]
		crow := cDec[i*cStride : i*cStride+n]
		for j := 0; j < n; j++ {
			// Four independent partial sums break the loop-carried
			// dependency on the accumulator; int32 addition wraps and is
			// associative, so the total is bit-identical to the byte path's
			// sequential sum. Walking by reslicing lets the compiler prove
			// every access in bounds (lanes is always a multiple of 4:
			// 4·kQuads).
			ap, bp := arow, bCols[j*bColStride:j*bColStride+lanes]
			var s0, s1, s2, s3 int32
			for len(ap) >= 16 && len(bp) >= 16 {
				s0 += int32(ap[0])*int32(bp[0]) + int32(ap[4])*int32(bp[4]) + int32(ap[8])*int32(bp[8]) + int32(ap[12])*int32(bp[12])
				s1 += int32(ap[1])*int32(bp[1]) + int32(ap[5])*int32(bp[5]) + int32(ap[9])*int32(bp[9]) + int32(ap[13])*int32(bp[13])
				s2 += int32(ap[2])*int32(bp[2]) + int32(ap[6])*int32(bp[6]) + int32(ap[10])*int32(bp[10]) + int32(ap[14])*int32(bp[14])
				s3 += int32(ap[3])*int32(bp[3]) + int32(ap[7])*int32(bp[7]) + int32(ap[11])*int32(bp[11]) + int32(ap[15])*int32(bp[15])
				ap, bp = ap[16:], bp[16:]
			}
			for len(ap) >= 4 && len(bp) >= 4 {
				s0 += int32(ap[0]) * int32(bp[0])
				s1 += int32(ap[1]) * int32(bp[1])
				s2 += int32(ap[2]) * int32(bp[2])
				s3 += int32(ap[3]) * int32(bp[3])
				ap, bp = ap[4:], bp[4:]
			}
			crow[j] += s0 + s1 + s2 + s3
		}
	}
	u.cycles += cyclesTDP
	return nil
}

func f32Bits(f float32) uint32 { return math.Float32bits(f) }

func f32FromBits(b uint32) float32 { return math.Float32frombits(b) }
