package amx

// Sparse AMX tier (SparAMX-style): a prepacked right-hand operand can
// carry a per-tile-block zero-block bitmap, built once at prepack time by
// scanning the VNNI byte image. The matmul drivers then skip a zero
// (kb, cb) block outright — no TileLoads, no TDP — which is where the
// cycles go: each skipped block saves 2·cyclesTileLoad + cyclesTDP while
// the per-column-block TileZero/TileStore bookkeeping is unchanged.
// Because the bitmap is a property of the operand (data-independent at
// matmul time), the byte-accurate oracle and the decoded fast path take
// exactly the same skips and stay bit-identical to each other.
//
// Numerics: a skipped BF16 block contributes only ±0.0 products to the
// accumulator. Eliding those adds is exact whenever the running sum is
// nonzero (x + ±0.0 == x); the only divergence from the dense product is
// the sign of an exactly-zero accumulator lane or a NaN that an Inf×0
// would have minted — neither occurs with finite weights/activations,
// which is the documented tolerance of the sparse tier (the INT8 skip is
// exact unconditionally: integer +0). The golden-corpus suites pin the
// token streams.

// zeroBitmap marks which (kb, cb) tile blocks of a prepacked operand are
// entirely zero. Bit index cb*kBlocks+kb matches the drivers' loop order.
type zeroBitmap struct {
	bits []uint64
	nz   int // nonzero blocks
}

func newZeroBitmap(total int) *zeroBitmap {
	return &zeroBitmap{bits: make([]uint64, (total+63)/64)}
}

func (z *zeroBitmap) set(i int)       { z.bits[i>>6] |= 1 << uint(i&63) }
func (z *zeroBitmap) skip(i int) bool { return z.bits[i>>6]&(1<<uint(i&63)) != 0 }

// skipBlock reports whether block (kb, cb) of a sparse operand is zero;
// a nil bitmap (dense operand) never skips.
func (z *zeroBitmap) skipBlock(cb, kb, kBlocks int) bool {
	if z == nil {
		return false
	}
	return z.skip(cb*kBlocks + kb)
}

// scanZeroBF16VNNI builds the bitmap for a BF16 VNNI image: block
// (kb, cb) spans logical K rows [kb·blockK, (kb+1)·blockK) and columns
// [cb·blockN, (cb+1)·blockN), i.e. VNNI pair-rows [kb·blockK/2, …) at
// byte columns cb·blockN·4. A lane counts as zero when its bf16 bits are
// ±0.0 (0x0000 or 0x8000) — see the tier note above for why -0.0 lanes
// are skippable.
func scanZeroBF16VNNI(vnni []byte, padK, padN int) *zeroBitmap {
	kBlocks := padK / blockK
	colBlocks := padN / blockN
	z := newZeroBitmap(kBlocks * colBlocks)
	bStride := padN * 4
	for cb := 0; cb < colBlocks; cb++ {
		for kb := 0; kb < kBlocks; kb++ {
			if bf16BlockZero(vnni, kb, cb, bStride) {
				z.set(cb*kBlocks + kb)
			} else {
				z.nz++
			}
		}
	}
	return z
}

func bf16BlockZero(vnni []byte, kb, cb, bStride int) bool {
	for pr := 0; pr < blockK/2; pr++ {
		row := vnni[(kb*(blockK/2)+pr)*bStride+cb*blockN*4:]
		for c := 0; c < blockN; c++ {
			// Two bf16 lanes per pair entry; zero iff magnitude bits clear.
			if row[c*4] != 0 || row[c*4+1]&0x7f != 0 ||
				row[c*4+2] != 0 || row[c*4+3]&0x7f != 0 {
				return false
			}
		}
	}
	return true
}

// scanZeroINT8VNNI is the INT8 twin: a lane is zero iff its byte is 0.
func scanZeroINT8VNNI(vnni []byte, padK, padN int) *zeroBitmap {
	kBlocks := padK / blockKi8
	colBlocks := padN / blockNi8
	z := newZeroBitmap(kBlocks * colBlocks)
	bStride := padN * 4
	for cb := 0; cb < colBlocks; cb++ {
		for kb := 0; kb < kBlocks; kb++ {
			if int8BlockZero(vnni, kb, cb, bStride) {
				z.set(cb*kBlocks + kb)
			} else {
				z.nz++
			}
		}
	}
	return z
}

func int8BlockZero(vnni []byte, kb, cb, bStride int) bool {
	for qr := 0; qr < blockKi8/4; qr++ {
		row := vnni[(kb*(blockKi8/4)+qr)*bStride+cb*blockNi8*4:]
		for c := 0; c < blockNi8*4; c++ {
			if row[c] != 0 {
				return false
			}
		}
	}
	return true
}

// PrepackBF16Sparse is PrepackBF16 plus the zero-block bitmap: the
// returned operand runs through the same MatmulBF16Packed entry points
// but skips zero (kb, cb) tile blocks entirely. Prepack cost is one extra
// scan of the VNNI image.
func PrepackBF16Sparse(b []float32, k, n int) (*Prepacked, error) {
	w, err := PrepackBF16(b, k, n)
	if err != nil {
		return nil, err
	}
	w.zero = scanZeroBF16VNNI(w.vnni, w.padK, w.padN)
	return w, nil
}

// PrepackINT8Sparse is PrepackINT8 plus the zero-block bitmap (the INT8
// skip is exact: a zero block contributes integer +0 to every lane).
func PrepackINT8Sparse(b []int8, k, n int) (*PrepackedINT8, error) {
	w, err := PrepackINT8(b, k, n)
	if err != nil {
		return nil, err
	}
	w.zero = scanZeroINT8VNNI(w.vnni, w.padK, w.padN)
	return w, nil
}

// BlockStats reports the operand's (nonzero, total) tile-block counts.
// Dense operands (no bitmap) report every block nonzero.
func (w *Prepacked) BlockStats() (nz, total int) {
	total = (w.padK / blockK) * (w.padN / blockN)
	if w.zero == nil {
		return total, total
	}
	return w.zero.nz, total
}

// BlockStats is the PrepackedINT8 twin of Prepacked.BlockStats.
func (w *PrepackedINT8) BlockStats() (nz, total int) {
	total = (w.padK / blockKi8) * (w.padN / blockNi8)
	if w.zero == nil {
		return total, total
	}
	return w.zero.nz, total
}

// BlockShapeBF16 reports the (k, n) granularity of one BF16 tile block —
// the unit at which the sparse tier can skip work. Pruning that wants the
// skip to fire must zero whole k×n blocks of the weight matrix.
func BlockShapeBF16() (k, n int) { return blockK, blockN }

// BlockShapeINT8 reports the (k, n) granularity of one INT8 tile block.
func BlockShapeINT8() (k, n int) { return blockKi8, blockNi8 }

// PredictCycles returns the steady-state AMX cycles one
// MatmulBF16Packed call with m activation rows consumes once the tile
// palette is installed (a cold unit adds cyclesConfig once): per 16-row
// stripe every column block pays TileZero + TileStore and every nonzero
// (kb, cb) block pays two TileLoads and one TDP. This is the calibrated
// cycles-∝-nonzero-blocks model the analytic layers price sparsity with;
// the emulator's deterministic accounting makes it exact, which
// sparse_test.go pins against measured Unit cycles.
func (w *Prepacked) PredictCycles(m int) uint64 {
	nz, _ := w.BlockStats()
	colBlocks := w.padN / blockN
	perStripe := uint64(colBlocks)*(cyclesTileZero+cyclesTileStore) +
		uint64(nz)*(2*cyclesTileLoad+cyclesTDP)
	return uint64(ceilDiv(m, blockM)) * perStripe
}

// PredictCycles is the PrepackedINT8 twin of Prepacked.PredictCycles,
// for MatmulINT8Packed calls.
func (w *PrepackedINT8) PredictCycles(m int) uint64 {
	nz, _ := w.BlockStats()
	colBlocks := w.padN / blockNi8
	perStripe := uint64(colBlocks)*(cyclesTileZero+cyclesTileStore) +
		uint64(nz)*(2*cyclesTileLoad+cyclesTDP)
	return uint64(ceilDiv(m, blockMi8)) * perStripe
}
