package amx

import (
	"fmt"
)

// INT4 LUT-GEMV tier (SAIL-style): the decode path's single-row GEMV
// replaces inner-loop multiplies with table lookups. For each activation
// element x[k] the kernel precomputes the 16 products x[k]·(c−8) for
// every nibble code c once; walking a weight column is then a gather of
// precomputed partial products plus adds, with one multiply per (group,
// column) to apply the group scale. The weight never gets dequantized —
// its nibbles index the table directly.
//
// Numerics (the tier's documented tolerance): y[j] = Σ_g s(g,j) · Σ_{k∈g}
// x[k]·(q[k][j]−8), i.e. the group scale is factored out of the inner
// sum. That is not the same rounding order as dequantize-then-GEMM, so
// results match a dequantized dense reference to a small float tolerance
// rather than bit-for-bit; the golden-corpus suite pins that the emitted
// tokens are identical.
const (
	// lutVecLanes is the modeled SIMD width (f32 lanes per 512-bit
	// vector) the cycles model charges lookups and FMAs at.
	lutVecLanes = 16
)

// PrepackedINT4 is a right-hand INT4 group-quantized GEMV operand in the
// LUT kernel's runtime layout: nibble codes unpacked one-per-byte and
// transposed column-major (column j's K codes contiguous, like the dense
// operands' decoded views), group scales bf16-pre-rounded to float32,
// also column-major. The storage-format footprint (packed nibbles + 2-byte
// scales) is what internal/quant accounts; this image is compute scratch.
type PrepackedINT4 struct {
	// K and N are the logical dimensions, Group the quantization group
	// length along K (the last group may be short).
	K, N, Group int
	groups      int // ceilDiv(K, Group)
	codes       []uint8
	scales      []float32
}

// PrepackINT4LUT builds the LUT kernel's operand from row-major nibble
// codes (k×n, each 0..15 encoding the signed weight code−8) and row-major
// group scales (ceil(k/group)×n float32; they are bf16-rounded here, the
// precision the storage format keeps).
func PrepackINT4LUT(codes []uint8, k, n, group int, scales []float32) (*PrepackedINT4, error) {
	if k <= 0 || n <= 0 {
		return nil, fmt.Errorf("amx: int4 prepack dimensions must be positive, got %dx%d", k, n)
	}
	if group <= 0 {
		return nil, fmt.Errorf("amx: int4 group size must be positive, got %d", group)
	}
	if len(codes) != k*n {
		return nil, fmt.Errorf("amx: int4 prepack code count %d does not match %dx%d", len(codes), k, n)
	}
	groups := ceilDiv(k, group)
	if len(scales) != groups*n {
		return nil, fmt.Errorf("amx: int4 prepack scale count %d does not match %d groups x %d cols", len(scales), groups, n)
	}
	w := &PrepackedINT4{K: k, N: n, Group: group, groups: groups,
		codes: make([]uint8, k*n), scales: make([]float32, groups*n)}
	for j := 0; j < n; j++ {
		col := w.codes[j*k : (j+1)*k]
		for r := 0; r < k; r++ {
			c := codes[r*n+j]
			if c > 15 {
				return nil, fmt.Errorf("amx: int4 code %d at (%d,%d) out of nibble range", c, r, j)
			}
			col[r] = c
		}
		scol := w.scales[j*groups : (j+1)*groups]
		for g := 0; g < groups; g++ {
			scol[g] = RoundFloat32(scales[g*n+j])
		}
	}
	return w, nil
}

// GEMV4LUT computes y = x·W (x is m×K row-major float32, bf16-rounded on
// read like every kernel here) through the lookup-table path and returns
// the m×N result plus the modeled cycles.
func (w *PrepackedINT4) GEMV4LUT(x []float32, m int) ([]float32, uint64, error) {
	y := make([]float32, m*w.N)
	cycles, err := w.GEMV4LUTInto(y, x, m)
	if err != nil {
		return nil, 0, err
	}
	return y, cycles, nil
}

// GEMV4LUTInto is GEMV4LUT writing into a caller-owned destination
// (len must be exactly m×N).
func (w *PrepackedINT4) GEMV4LUTInto(dst, x []float32, m int) (uint64, error) {
	if m <= 0 {
		return 0, fmt.Errorf("amx: int4 gemv rows must be positive, got %d", m)
	}
	if len(x) != m*w.K {
		return 0, fmt.Errorf("amx: int4 gemv operand size %d does not match %dx%d", len(x), m, w.K)
	}
	if len(dst) != m*w.N {
		return 0, fmt.Errorf("amx: int4 gemv destination size %d does not match %dx%d", len(dst), m, w.N)
	}
	lutBuf := getScratchF32(w.K * 16)
	defer putScratchF32(lutBuf)
	lut := *lutBuf
	for i := 0; i < m; i++ {
		row := x[i*w.K : (i+1)*w.K]
		// Table build: 16 partial products per activation element.
		for k, v := range row {
			xr := RoundFloat32(v)
			t := lut[k*16 : k*16+16]
			for c := range t {
				t[c] = xr * float32(c-8)
			}
		}
		out := dst[i*w.N : (i+1)*w.N]
		for j := 0; j < w.N; j++ {
			col := w.codes[j*w.K : (j+1)*w.K]
			scol := w.scales[j*w.groups : (j+1)*w.groups]
			var acc float32
			for g := 0; g < w.groups; g++ {
				lo := g * w.Group
				hi := lo + w.Group
				if hi > w.K {
					hi = w.K
				}
				var gs float32
				for k := lo; k < hi; k++ {
					gs += lut[k*16+int(col[k])]
				}
				acc += scol[g] * gs
			}
			out[j] = acc
		}
	}
	return uint64(m) * w.PredictCycles(1), nil
}

// PredictCycles is the LUT kernel's documented cycles model for an m-row
// call, the analytic layers' pricing hook (mirroring the tile operands'
// PredictCycles). Per activation row it charges: K cycles of table build
// (one 16-wide broadcast-multiply per element), ceil(K·N/16) cycles of
// gather+add walking every column's nibbles, and ceil(N·groups/16)
// cycles of group-scale FMA. The kernel has no tile file, so there is no
// palette-configure term.
func (w *PrepackedINT4) PredictCycles(m int) uint64 {
	perRow := uint64(w.K) +
		uint64(ceilDiv(w.K*w.N, lutVecLanes)) +
		uint64(ceilDiv(w.N*w.groups, lutVecLanes))
	return uint64(m) * perRow
}

// Groups reports the number of quantization groups along K.
func (w *PrepackedINT4) Groups() int { return w.groups }
