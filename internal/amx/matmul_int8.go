package amx

import (
	"fmt"
)

// Tile-blocking geometry for INT8 matmul: each TDPBUSD consumes a
// 16×64 u8 A block and a 64×16 s8 B block (VNNI-packed into 16 rows of
// quads) and accumulates into a 16×16 int32 C block.
const (
	blockMi8 = MaxRows     // 16 output rows per tile
	blockKi8 = MaxColBytes // 64 u8 values per A row
	blockNi8 = MaxColBytes / 4
)

// int8MatmulConfig mirrors matmulConfig for the INT8 pipeline.
var int8MatmulConfig = TileConfig{Tiles: [NumTiles]TileShape{
	tmmC: {Rows: blockMi8, ColBytes: MaxColBytes},
	tmmA: {Rows: blockMi8, ColBytes: MaxColBytes},
	tmmB: {Rows: blockKi8 / 4, ColBytes: MaxColBytes},
}}

// PackU8 pads a row-major uint8 matrix to padRows × padCols.
func PackU8(src []uint8, rows, cols, padRows, padCols int) []byte {
	out := make([]byte, padRows*padCols)
	packU8Into(out, src, rows, cols, padRows, padCols)
	return out
}

// packU8Into writes the padded image of src into dst, overwriting every
// byte (dst may carry stale data from a previous use). Only the padding
// rows/columns are zeroed — the payload is copied exactly once.
func packU8Into(dst []byte, src []uint8, rows, cols, padRows, padCols int) {
	for r := 0; r < rows; r++ {
		copy(dst[r*padCols:], src[r*cols:(r+1)*cols])
		clear(dst[r*padCols+cols : (r+1)*padCols])
	}
	clear(dst[rows*padCols : padRows*padCols])
}

// PackS8VNNI converts a row-major int8 matrix (rows × cols) into the
// 4-way VNNI layout TDPBUSD expects: packed row r holds, for each output
// column n, the quad (B[4r][n] … B[4r+3][n]). padRows must be a multiple
// of 4.
func PackS8VNNI(src []int8, rows, cols, padRows, padCols int) []byte {
	if padRows%4 != 0 {
		panic(fmt.Sprintf("amx: VNNI padRows %d must be a multiple of 4", padRows))
	}
	out := make([]byte, padRows*padCols)
	packS8VNNIInto(out, src, rows, cols, padRows, padCols)
	return out
}

// packS8VNNIInto writes the VNNI image of src into dst. Like the BF16
// packers it works on hoisted row slices — no per-element closure or
// bounds conditional — and zeroes only the padding region.
func packS8VNNIInto(dst []byte, src []int8, rows, cols, padRows, padCols int) {
	for pr := 0; pr < padRows/4; pr++ {
		drow := dst[pr*padCols*4 : (pr+1)*padCols*4]
		if 4*pr >= rows {
			clear(drow) // pure padding quad rows
			continue
		}
		if 4*pr+3 < rows {
			// Full quad: all four logical rows exist.
			row0 := src[(4*pr+0)*cols : (4*pr+0)*cols+cols]
			row1 := src[(4*pr+1)*cols : (4*pr+1)*cols+cols]
			row2 := src[(4*pr+2)*cols : (4*pr+2)*cols+cols]
			row3 := src[(4*pr+3)*cols : (4*pr+3)*cols+cols]
			for c := 0; c < cols; c++ {
				drow[c*4] = byte(row0[c])
				drow[c*4+1] = byte(row1[c])
				drow[c*4+2] = byte(row2[c])
				drow[c*4+3] = byte(row3[c])
			}
		} else {
			// Trailing partial quad: missing lanes are padding.
			var qrows [4][]int8
			for q := 0; q < 4; q++ {
				if r := 4*pr + q; r < rows {
					qrows[q] = src[r*cols : r*cols+cols]
				}
			}
			for c := 0; c < cols; c++ {
				for q, qr := range qrows {
					if qr != nil {
						drow[c*4+q] = byte(qr[c])
					} else {
						drow[c*4+q] = 0
					}
				}
			}
		}
		clear(drow[cols*4:]) // padding columns
	}
}

// packS8DecodedBInto writes the decoded view of src's VNNI image into
// dst: the signed lanes laid out column-major, dst[c*padRows+r] =
// src[r][c], padding zeroed — the INT8 twin of packBF16DecodedBInto.
// Column c's slice holds exactly the quad sequence TDPBUSD reads for
// output column c, contiguously.
func packS8DecodedBInto(dst []int8, src []int8, rows, cols, padRows, padCols int) {
	for c := 0; c < cols; c++ {
		dcol := dst[c*padRows : (c+1)*padRows]
		for r := 0; r < rows; r++ {
			dcol[r] = src[r*cols+c]
		}
		clear(dcol[rows:])
	}
	clear(dst[cols*padRows : padCols*padRows])
}

// PrepackedINT8 is a right-hand signed 8-bit GEMM operand converted once
// into TDPBUSD's 4-way VNNI layout — the INT8 counterpart of Prepacked.
type PrepackedINT8 struct {
	// K and N are the logical dimensions of the packed matrix.
	K, N       int
	padK, padN int
	vnni       []byte
	// dec is the decoded view of the VNNI image: the signed lanes
	// column-major (column c's padK lanes at dec[c*padK:]), built once at
	// prepack time for the decoded fast path. Nil only on operands built
	// by prepackINT8Bytes (the byte-path oracle used in tests).
	dec []int8
	// zero is the sparse tier's zero-block bitmap (sparse.go), nil on
	// dense operands. Both drivers skip a marked block's TileLoads + TDP.
	zero *zeroBitmap
}

// PrepackINT8 packs a row-major int8 matrix (k × n) for reuse as the
// right-hand operand of MatmulINT8Packed, building both the VNNI byte
// image and its decoded column-major view.
func PrepackINT8(b []int8, k, n int) (*PrepackedINT8, error) {
	w, err := prepackINT8Bytes(b, k, n)
	if err != nil {
		return nil, err
	}
	w.dec = make([]int8, w.padN*w.padK)
	packS8DecodedBInto(w.dec, b, k, n, w.padK, w.padN)
	return w, nil
}

// prepackINT8Bytes builds a PrepackedINT8 with only the VNNI byte image
// for the byte-path oracle driver; tests use it to pin the decoded fast
// path against the byte path.
func prepackINT8Bytes(b []int8, k, n int) (*PrepackedINT8, error) {
	if len(b) != k*n {
		return nil, fmt.Errorf("amx: int8 prepack operand size %d does not match %dx%d", len(b), k, n)
	}
	if k <= 0 || n <= 0 {
		return nil, fmt.Errorf("amx: int8 prepack dimensions must be positive, got %dx%d", k, n)
	}
	padK := ceilDiv(k, blockKi8) * blockKi8
	padN := ceilDiv(n, blockNi8) * blockNi8
	return &PrepackedINT8{K: k, N: n, padK: padK, padN: padN, vnni: PackS8VNNI(b, k, n, padK, padN)}, nil
}

// MatmulINT8 computes C = A·B through the emulated AMX INT8 pipeline:
// A is M×K unsigned 8-bit, B is K×N signed 8-bit, C accumulates int32 —
// exactly TDPBUSD's semantics. It returns the M×N row-major result and
// the AMX cycles consumed.
//
// B is packed into VNNI layout on every call; when B is a static weight,
// prepack it once with PrepackINT8 and use MatmulINT8Packed instead.
func MatmulINT8(a []uint8, b []int8, m, k, n int) ([]int32, uint64, error) {
	if len(a) != m*k || len(b) != k*n {
		return nil, 0, fmt.Errorf("amx: int8 matmul operand sizes %d,%d do not match %dx%d · %dx%d", len(a), len(b), m, k, k, n)
	}
	if m <= 0 || k <= 0 || n <= 0 {
		return nil, 0, fmt.Errorf("amx: int8 matmul dimensions must be positive, got %dx%dx%d", m, k, n)
	}
	padK := ceilDiv(k, blockKi8) * blockKi8
	padN := ceilDiv(n, blockNi8) * blockNi8
	bScratch := getScratchI8(padK * padN)
	defer putScratchI8(bScratch)
	packS8DecodedBInto(*bScratch, b, k, n, padK, padN)
	w := PrepackedINT8{K: k, N: n, padK: padK, padN: padN, dec: *bScratch}
	return matmulINT8Driver(a, m, &w)
}

// MatmulINT8Packed computes C = A·W for a prepacked right-hand operand,
// skipping the per-call VNNI conversion; results match MatmulINT8 exactly
// (integer arithmetic, layout-only packing).
func MatmulINT8Packed(a []uint8, m int, w *PrepackedINT8) ([]int32, uint64, error) {
	if w == nil {
		return nil, 0, fmt.Errorf("amx: nil prepacked operand")
	}
	if len(a) != m*w.K {
		return nil, 0, fmt.Errorf("amx: int8 matmul operand size %d does not match %dx%d", len(a), m, w.K)
	}
	if m <= 0 {
		return nil, 0, fmt.Errorf("amx: int8 matmul rows must be positive, got %d", m)
	}
	return matmulINT8Driver(a, m, w)
}

// matmulINT8Driver packs A into pooled scratch and dispatches row blocks
// onto the persistent worker pool (single-block products run inline on
// the caller), routing to the decoded fast path when the operand carries
// its decoded view (every production PrepackedINT8 does). The unsigned A
// image needs no decoding — its padded bytes are the lane values — so
// both paths share it.
func matmulINT8Driver(a []uint8, m int, w *PrepackedINT8) ([]int32, uint64, error) {
	padM := ceilDiv(m, blockMi8) * blockMi8
	aScratch := getScratch(padM * w.padK)
	defer putScratch(aScratch)
	packedA := *aScratch
	packU8Into(packedA, a, m, w.K, padM, w.padK)

	c := make([]int32, m*w.N)
	rowBlocks := padM / blockMi8
	colBlocks := w.padN / blockNi8
	kBlocks := w.padK / blockKi8

	if rowBlocks == 1 {
		// Decode-shaped fast path, closure-free.
		caller := callerUnits.Get().(*pooledUnit)
		defer callerUnits.Put(caller)
		start := caller.u.Cycles()
		err := caller.ensure(int8MatmulConfig)
		if err == nil {
			if w.dec != nil {
				err = runInt8RowBlockDecoded(caller, 0, colBlocks, kBlocks, w.padK, w.padN, packedA, w.dec, c, m, w.N, w.zero)
			} else {
				err = runInt8RowBlock(caller.u, 0, colBlocks, kBlocks, w.padK, w.padN, packedA, w.vnni, caller.cTile[:blockMi8*blockNi8*4], c, m, w.N, w.zero)
			}
		}
		if err != nil {
			return nil, 0, err
		}
		return c, caller.u.Cycles() - start, nil
	}

	cycles, err := runTiled(int8MatmulConfig, rowBlocks, func(pu *pooledUnit, rb int) error {
		if w.dec != nil {
			return runInt8RowBlockDecoded(pu, rb, colBlocks, kBlocks, w.padK, w.padN, packedA, w.dec, c, m, w.N, w.zero)
		}
		return runInt8RowBlock(pu.u, rb, colBlocks, kBlocks, w.padK, w.padN, packedA, w.vnni, pu.cTile[:blockMi8*blockNi8*4], c, m, w.N, w.zero)
	})
	if err != nil {
		return nil, 0, err
	}
	return c, cycles, nil
}

// runInt8RowBlock computes one 16-row stripe of the INT8 output. A
// non-nil zero bitmap elides a marked block's TileLoads and TDP; the
// integer skip is exact (a zero block adds +0 to every lane).
func runInt8RowBlock(u *Unit, rb, colBlocks, kBlocks, padK, padN int, packedA, packedB, cTile []byte, c []int32, m, n int, zero *zeroBitmap) error {
	aStride := padK     // bytes per packed A row (u8)
	bStride := padN * 4 // bytes per packed VNNI B row (quads)
	for cb := 0; cb < colBlocks; cb++ {
		if err := u.TileZero(tmmC); err != nil {
			return err
		}
		for kb := 0; kb < kBlocks; kb++ {
			if zero.skipBlock(cb, kb, kBlocks) {
				continue
			}
			aOff := rb*blockMi8*aStride + kb*blockKi8
			if err := u.TileLoad(tmmA, packedA[aOff:], aStride); err != nil {
				return err
			}
			bOff := kb*(blockKi8/4)*bStride + cb*blockNi8*4
			if err := u.TileLoad(tmmB, packedB[bOff:], bStride); err != nil {
				return err
			}
			if err := u.TDPBUSD(tmmC, tmmA, tmmB); err != nil {
				return err
			}
		}
		if err := u.TileStore(tmmC, cTile, blockNi8*4); err != nil {
			return err
		}
		for r := 0; r < blockMi8; r++ {
			row := rb*blockMi8 + r
			if row >= m {
				break
			}
			for col := 0; col < blockNi8; col++ {
				j := cb*blockNi8 + col
				if j >= n {
					break
				}
				off := (r*blockNi8 + col) * 4
				c[row*n+j] = int32(uint32(cTile[off]) | uint32(cTile[off+1])<<8 |
					uint32(cTile[off+2])<<16 | uint32(cTile[off+3])<<24)
			}
		}
	}
	return nil
}

// runInt8RowBlockDecoded computes one 16-row stripe of the INT8 output
// through the decoded entry points — the TDPBUSD mirror of
// runRowBlockDecoded: identical faults and cycle accounting via the
// *Check variants, flat-slice MAC loop, int32 accumulator kept decoded
// (its byte image round-trips losslessly, so results are bit-identical).
func runInt8RowBlockDecoded(pu *pooledUnit, rb, colBlocks, kBlocks, padK, padN int, packedA []byte, decB []int8, c []int32, m, n int, zero *zeroBitmap) error {
	u := pu.u
	cDec := pu.cDecI[:blockMi8*blockNi8]
	// Rows of this stripe carrying real data; the padding rows' MAC work
	// is skipped (see runRowBlockDecoded).
	valid := m - rb*blockMi8
	if valid > blockMi8 {
		valid = blockMi8
	}
	aStride := padK      // bytes per packed A row (u8)
	bStrideB := padN * 4 // byte stride of the VNNI image the byte path would load
	bBytes := len(decB)
	for cb := 0; cb < colBlocks; cb++ {
		if err := u.TileZeroCheck(tmmC); err != nil {
			return err
		}
		clear(cDec)
		for kb := 0; kb < kBlocks; kb++ {
			if zero.skipBlock(cb, kb, kBlocks) {
				continue
			}
			aOff := rb*blockMi8*aStride + kb*blockKi8
			if err := u.TileLoadCheck(tmmA, len(packedA)-aOff, aStride); err != nil {
				return err
			}
			// Bounds arithmetic of the byte path's VNNI load, applied to the
			// column-major decoded view's equal-sized backing.
			bOffB := kb*(blockKi8/4)*bStrideB + cb*blockNi8*4
			if err := u.TileLoadCheck(tmmB, bBytes-bOffB, bStrideB); err != nil {
				return err
			}
			bOff := cb*blockNi8*padK + kb*blockKi8
			if err := u.tdpBUSDDecodedRows(tmmC, tmmA, tmmB, valid, cDec, blockNi8, packedA[aOff:], aStride, decB[bOff:], padK); err != nil {
				return err
			}
		}
		if err := u.TileStoreCheck(tmmC, blockMi8*blockNi8*4, blockNi8*4); err != nil {
			return err
		}
		for r := 0; r < blockMi8; r++ {
			row := rb*blockMi8 + r
			if row >= m {
				break
			}
			cols := n - cb*blockNi8
			if cols > blockNi8 {
				cols = blockNi8
			}
			copy(c[row*n+cb*blockNi8:row*n+cb*blockNi8+cols], cDec[r*blockNi8:r*blockNi8+cols])
		}
	}
	return nil
}

// ReferenceMatmulINT8 is the plain-loop reference for MatmulINT8.
func ReferenceMatmulINT8(a []uint8, b []int8, m, k, n int) []int32 {
	c := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for kk := 0; kk < k; kk++ {
				acc += int32(a[i*k+kk]) * int32(b[kk*n+j])
			}
			c[i*n+j] = acc
		}
	}
	return c
}
