package amx

import (
	"fmt"
	"runtime"
	"sync"
)

// Tile-blocking geometry for INT8 matmul: each TDPBUSD consumes a
// 16×64 u8 A block and a 64×16 s8 B block (VNNI-packed into 16 rows of
// quads) and accumulates into a 16×16 int32 C block.
const (
	blockMi8 = MaxRows     // 16 output rows per tile
	blockKi8 = MaxColBytes // 64 u8 values per A row
	blockNi8 = MaxColBytes / 4
)

// int8MatmulConfig mirrors matmulConfig for the INT8 pipeline.
var int8MatmulConfig = TileConfig{Tiles: [NumTiles]TileShape{
	tmmC: {Rows: blockMi8, ColBytes: MaxColBytes},
	tmmA: {Rows: blockMi8, ColBytes: MaxColBytes},
	tmmB: {Rows: blockKi8 / 4, ColBytes: MaxColBytes},
}}

// PackU8 pads a row-major uint8 matrix to padRows × padCols.
func PackU8(src []uint8, rows, cols, padRows, padCols int) []byte {
	out := make([]byte, padRows*padCols)
	for r := 0; r < rows; r++ {
		copy(out[r*padCols:], src[r*cols:(r+1)*cols])
	}
	return out
}

// PackS8VNNI converts a row-major int8 matrix (rows × cols) into the
// 4-way VNNI layout TDPBUSD expects: packed row r holds, for each output
// column n, the quad (B[4r][n] … B[4r+3][n]). padRows must be a multiple
// of 4.
func PackS8VNNI(src []int8, rows, cols, padRows, padCols int) []byte {
	if padRows%4 != 0 {
		panic(fmt.Sprintf("amx: VNNI padRows %d must be a multiple of 4", padRows))
	}
	out := make([]byte, padRows*padCols)
	at := func(r, c int) byte {
		if r >= rows || c >= cols {
			return 0
		}
		return byte(src[r*cols+c])
	}
	for pr := 0; pr < padRows/4; pr++ {
		for c := 0; c < padCols; c++ {
			off := (pr*padCols + c) * 4
			for q := 0; q < 4; q++ {
				out[off+q] = at(4*pr+q, c)
			}
		}
	}
	return out
}

// MatmulINT8 computes C = A·B through the emulated AMX INT8 pipeline:
// A is M×K unsigned 8-bit, B is K×N signed 8-bit, C accumulates int32 —
// exactly TDPBUSD's semantics. It returns the M×N row-major result and
// the AMX cycles consumed.
func MatmulINT8(a []uint8, b []int8, m, k, n int) ([]int32, uint64, error) {
	if len(a) != m*k || len(b) != k*n {
		return nil, 0, fmt.Errorf("amx: int8 matmul operand sizes %d,%d do not match %dx%d · %dx%d", len(a), len(b), m, k, k, n)
	}
	if m <= 0 || k <= 0 || n <= 0 {
		return nil, 0, fmt.Errorf("amx: int8 matmul dimensions must be positive, got %dx%dx%d", m, k, n)
	}
	padM := ceilDiv(m, blockMi8) * blockMi8
	padK := ceilDiv(k, blockKi8) * blockKi8
	padN := ceilDiv(n, blockNi8) * blockNi8

	packedA := PackU8(a, m, k, padM, padK)
	packedB := PackS8VNNI(b, k, n, padK, padN)

	c := make([]int32, m*n)
	rowBlocks := padM / blockMi8
	colBlocks := padN / blockNi8
	kBlocks := padK / blockKi8

	workers := runtime.GOMAXPROCS(0)
	if workers > rowBlocks {
		workers = rowBlocks
	}
	if workers < 1 {
		workers = 1
	}

	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		totalCycles uint64
		firstErr    error
	)
	next := make(chan int, rowBlocks)
	for rb := 0; rb < rowBlocks; rb++ {
		next <- rb
	}
	close(next)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			u := NewUnit()
			if err := u.Configure(int8MatmulConfig); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			cTile := make([]byte, blockMi8*blockNi8*4)
			for rb := range next {
				if err := runInt8RowBlock(u, rb, colBlocks, kBlocks, padK, padN, packedA, packedB, cTile, c, m, n); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			totalCycles += u.Cycles()
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return c, totalCycles, nil
}

// runInt8RowBlock computes one 16-row stripe of the INT8 output.
func runInt8RowBlock(u *Unit, rb, colBlocks, kBlocks, padK, padN int, packedA, packedB, cTile []byte, c []int32, m, n int) error {
	aStride := padK     // bytes per packed A row (u8)
	bStride := padN * 4 // bytes per packed VNNI B row (quads)
	for cb := 0; cb < colBlocks; cb++ {
		if err := u.TileZero(tmmC); err != nil {
			return err
		}
		for kb := 0; kb < kBlocks; kb++ {
			aOff := rb*blockMi8*aStride + kb*blockKi8
			if err := u.TileLoad(tmmA, packedA[aOff:], aStride); err != nil {
				return err
			}
			bOff := kb*(blockKi8/4)*bStride + cb*blockNi8*4
			if err := u.TileLoad(tmmB, packedB[bOff:], bStride); err != nil {
				return err
			}
			if err := u.TDPBUSD(tmmC, tmmA, tmmB); err != nil {
				return err
			}
		}
		if err := u.TileStore(tmmC, cTile, blockNi8*4); err != nil {
			return err
		}
		for r := 0; r < blockMi8; r++ {
			row := rb*blockMi8 + r
			if row >= m {
				break
			}
			for col := 0; col < blockNi8; col++ {
				j := cb*blockNi8 + col
				if j >= n {
					break
				}
				off := (r*blockNi8 + col) * 4
				c[row*n+j] = int32(uint32(cTile[off]) | uint32(cTile[off+1])<<8 |
					uint32(cTile[off+2])<<16 | uint32(cTile[off+3])<<24)
			}
		}
	}
	return nil
}

// ReferenceMatmulINT8 is the plain-loop reference for MatmulINT8.
func ReferenceMatmulINT8(a []uint8, b []int8, m, k, n int) []int32 {
	c := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for kk := 0; kk < k; kk++ {
				acc += int32(a[i*k+kk]) * int32(b[kk*n+j])
			}
			c[i*n+j] = acc
		}
	}
	return c
}
