package amx

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// This file pins the decoded fast path (TDPBF16PSDecoded, TDPBUSDDecoded,
// the *Check tile ops and the decoded drivers) to the byte-accurate oracle:
// bit-identical results (NaN payloads excepted — see sameF32Word), identical
// cycle accounting, identical faults.

// bf16TileConfig builds the palette for one C(m×n) += A(m×2k)·B tile op.
func bf16TileConfig(m, n, kPairs int) TileConfig {
	cfg := TileConfig{}
	cfg.Tiles[tmmC] = TileShape{Rows: m, ColBytes: n * 4}
	cfg.Tiles[tmmA] = TileShape{Rows: m, ColBytes: kPairs * 4}
	cfg.Tiles[tmmB] = TileShape{Rows: kPairs, ColBytes: n * 4}
	return cfg
}

// int8TileConfig builds the palette for one C(m×n) += A(m×4k)·B tile op.
func int8TileConfig(m, n, kQuads int) TileConfig {
	cfg := TileConfig{}
	cfg.Tiles[tmmC] = TileShape{Rows: m, ColBytes: n * 4}
	cfg.Tiles[tmmA] = TileShape{Rows: m, ColBytes: kQuads * 4}
	cfg.Tiles[tmmB] = TileShape{Rows: kQuads, ColBytes: n * 4}
	return cfg
}

// runBF16Pair executes one tile op through the byte oracle and the decoded
// fast path from identical operand images and returns the two C images as
// raw bytes plus the per-unit cycle deltas. The operand bytes are arbitrary
// bit patterns, so NaNs (quiet and signaling payloads), infinities and
// denormals flow through both paths.
func runBF16Pair(t *testing.T, m, n, kPairs int, cImg, aImg, bImg []byte) (byteC, decC []byte, byteCycles, decCycles uint64) {
	t.Helper()
	cfg := bf16TileConfig(m, n, kPairs)

	ub := NewUnit()
	if err := ub.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	start := ub.Cycles()
	if err := ub.TileLoad(tmmC, cImg, n*4); err != nil {
		t.Fatal(err)
	}
	if err := ub.TileLoad(tmmA, aImg, kPairs*4); err != nil {
		t.Fatal(err)
	}
	if err := ub.TileLoad(tmmB, bImg, n*4); err != nil {
		t.Fatal(err)
	}
	if err := ub.TDPBF16PS(tmmC, tmmA, tmmB); err != nil {
		t.Fatal(err)
	}
	byteC = make([]byte, m*n*4)
	if err := ub.TileStore(tmmC, byteC, n*4); err != nil {
		t.Fatal(err)
	}
	byteCycles = ub.Cycles() - start

	// Decoded path: pre-decode the same images exactly the way the packers
	// do — A row-major lanes, B column-major lanes, C as float32 bits.
	lanes := 2 * kPairs
	cDec := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			off := (i*n + j) * 4
			cDec[i*n+j] = f32FromBits(uint32(cImg[off]) | uint32(cImg[off+1])<<8 |
				uint32(cImg[off+2])<<16 | uint32(cImg[off+3])<<24)
		}
	}
	aDec := make([]float32, m*lanes)
	for i := 0; i < m; i++ {
		for l := 0; l < lanes; l++ {
			off := i*kPairs*4 + l*2
			aDec[i*lanes+l] = BF16FromBytes(aImg[off], aImg[off+1]).Float32()
		}
	}
	bCols := make([]float32, n*lanes)
	for j := 0; j < n; j++ {
		for p := 0; p < kPairs; p++ {
			off := p*n*4 + j*4
			bCols[j*lanes+2*p] = BF16FromBytes(bImg[off], bImg[off+1]).Float32()
			bCols[j*lanes+2*p+1] = BF16FromBytes(bImg[off+2], bImg[off+3]).Float32()
		}
	}

	ud := NewUnit()
	if err := ud.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	start = ud.Cycles()
	if err := ud.TileLoadCheck(tmmC, len(cImg), n*4); err != nil {
		t.Fatal(err)
	}
	if err := ud.TileLoadCheck(tmmA, len(aImg), kPairs*4); err != nil {
		t.Fatal(err)
	}
	if err := ud.TileLoadCheck(tmmB, len(bImg), n*4); err != nil {
		t.Fatal(err)
	}
	if err := ud.TDPBF16PSDecoded(tmmC, tmmA, tmmB, cDec, n, aDec, lanes, bCols, lanes); err != nil {
		t.Fatal(err)
	}
	if err := ud.TileStoreCheck(tmmC, m*n*4, n*4); err != nil {
		t.Fatal(err)
	}
	decCycles = ud.Cycles() - start
	decC = make([]byte, m*n*4)
	for i := range cDec {
		bits := f32Bits(cDec[i])
		decC[i*4] = byte(bits)
		decC[i*4+1] = byte(bits >> 8)
		decC[i*4+2] = byte(bits >> 16)
		decC[i*4+3] = byte(bits >> 24)
	}
	return byteC, decC, byteCycles, decCycles
}

// runINT8Pair is the TDPBUSD mirror of runBF16Pair.
func runINT8Pair(t *testing.T, m, n, kQuads int, cImg, aImg, bImg []byte) (byteC, decC []byte, byteCycles, decCycles uint64) {
	t.Helper()
	cfg := int8TileConfig(m, n, kQuads)

	ub := NewUnit()
	if err := ub.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	start := ub.Cycles()
	if err := ub.TileLoad(tmmC, cImg, n*4); err != nil {
		t.Fatal(err)
	}
	if err := ub.TileLoad(tmmA, aImg, kQuads*4); err != nil {
		t.Fatal(err)
	}
	if err := ub.TileLoad(tmmB, bImg, n*4); err != nil {
		t.Fatal(err)
	}
	if err := ub.TDPBUSD(tmmC, tmmA, tmmB); err != nil {
		t.Fatal(err)
	}
	byteC = make([]byte, m*n*4)
	if err := ub.TileStore(tmmC, byteC, n*4); err != nil {
		t.Fatal(err)
	}
	byteCycles = ub.Cycles() - start

	lanes := 4 * kQuads
	cDec := make([]int32, m*n)
	for i := range cDec {
		off := i * 4
		cDec[i] = int32(uint32(cImg[off]) | uint32(cImg[off+1])<<8 |
			uint32(cImg[off+2])<<16 | uint32(cImg[off+3])<<24)
	}
	aDec := make([]uint8, m*lanes)
	for i := 0; i < m; i++ {
		copy(aDec[i*lanes:(i+1)*lanes], aImg[i*kQuads*4:])
	}
	bCols := make([]int8, n*lanes)
	for j := 0; j < n; j++ {
		for q := 0; q < kQuads; q++ {
			off := q*n*4 + j*4
			for l := 0; l < 4; l++ {
				bCols[j*lanes+4*q+l] = int8(bImg[off+l])
			}
		}
	}

	ud := NewUnit()
	if err := ud.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	start = ud.Cycles()
	if err := ud.TileLoadCheck(tmmC, len(cImg), n*4); err != nil {
		t.Fatal(err)
	}
	if err := ud.TileLoadCheck(tmmA, len(aImg), kQuads*4); err != nil {
		t.Fatal(err)
	}
	if err := ud.TileLoadCheck(tmmB, len(bImg), n*4); err != nil {
		t.Fatal(err)
	}
	if err := ud.TDPBUSDDecoded(tmmC, tmmA, tmmB, cDec, n, aDec, lanes, bCols, lanes); err != nil {
		t.Fatal(err)
	}
	if err := ud.TileStoreCheck(tmmC, m*n*4, n*4); err != nil {
		t.Fatal(err)
	}
	decCycles = ud.Cycles() - start
	decC = make([]byte, m*n*4)
	for i := range cDec {
		bits := uint32(cDec[i])
		decC[i*4] = byte(bits)
		decC[i*4+1] = byte(bits >> 8)
		decC[i*4+2] = byte(bits >> 16)
		decC[i*4+3] = byte(bits >> 24)
	}
	return byteC, decC, byteCycles, decCycles
}

// fillPattern fills dst with a deterministic byte stream that cycles
// through every byte value, seeded so different operands differ.
func fillPattern(dst []byte, seed byte) {
	x := seed
	for i := range dst {
		x = x*167 + 19
		dst[i] = x
	}
}

// isNaNBits reports whether bits encodes a float32 NaN.
func isNaNBits(bits uint32) bool {
	return bits&0x7F800000 == 0x7F800000 && bits&0x007FFFFF != 0
}

// sameF32Word compares two float32 bit patterns under the emulator's
// equivalence contract: bitwise equal, or both NaN. Which NaN *payload* an
// FP op with NaN inputs produces depends on machine operand order, which
// the Go compiler is free to commute differently per build (-race changes
// codegen); IEEE 754 and the Go spec both leave payload propagation
// unspecified, so payloads are the one thing the tiers cannot pin.
// NaN-ness, infinity signs, signed zeros, denormals and every finite bit
// are still required to match exactly.
func sameF32Word(a, b uint32) bool {
	return a == b || (isNaNBits(a) && isNaNBits(b))
}

// cycleDiff returns the absolute difference of two cycle counts.
func cycleDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// f32ImagesEqual compares two little-endian float32 tile images word by
// word under sameF32Word.
func f32ImagesEqual(a, b []byte) bool {
	if len(a) != len(b) || len(a)%4 != 0 {
		return false
	}
	for i := 0; i < len(a); i += 4 {
		wa := uint32(a[i]) | uint32(a[i+1])<<8 | uint32(a[i+2])<<16 | uint32(a[i+3])<<24
		wb := uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
		if !sameF32Word(wa, wb) {
			return false
		}
	}
	return true
}

// TestDecodedBF16ExhaustiveShapes runs every configurable tile geometry
// (m, n, kPairs ∈ 1..16, with n and kPairs capped by the 64-byte row)
// through both tiers and requires bit-identical C images (modulo NaN
// payload) and identical cycle counts. The operand bytes include
// NaN/Inf/denormal bf16 patterns by construction (all byte values occur).
func TestDecodedBF16ExhaustiveShapes(t *testing.T) {
	for m := 1; m <= MaxRows; m++ {
		for n := 1; n <= MaxColBytes/4; n++ {
			for kPairs := 1; kPairs <= MaxColBytes/4; kPairs++ {
				cImg := make([]byte, m*n*4)
				aImg := make([]byte, m*kPairs*4)
				bImg := make([]byte, kPairs*n*4)
				fillPattern(cImg, byte(m))
				fillPattern(aImg, byte(n+37))
				fillPattern(bImg, byte(kPairs+81))
				byteC, decC, bc, dc := runBF16Pair(t, m, n, kPairs, cImg, aImg, bImg)
				if !f32ImagesEqual(byteC, decC) {
					t.Fatalf("m=%d n=%d kPairs=%d: decoded C image diverges from byte path", m, n, kPairs)
				}
				if bc != dc {
					t.Fatalf("m=%d n=%d kPairs=%d: cycles %d (byte) != %d (decoded)", m, n, kPairs, bc, dc)
				}
			}
		}
	}
}

// TestDecodedINT8ExhaustiveShapes is the TDPBUSD mirror.
func TestDecodedINT8ExhaustiveShapes(t *testing.T) {
	for m := 1; m <= MaxRows; m++ {
		for n := 1; n <= MaxColBytes/4; n++ {
			for kQuads := 1; kQuads <= MaxColBytes/4; kQuads++ {
				cImg := make([]byte, m*n*4)
				aImg := make([]byte, m*kQuads*4)
				bImg := make([]byte, kQuads*n*4)
				fillPattern(cImg, byte(m+3))
				fillPattern(aImg, byte(n+59))
				fillPattern(bImg, byte(kQuads+113))
				byteC, decC, bc, dc := runINT8Pair(t, m, n, kQuads, cImg, aImg, bImg)
				if !reflect.DeepEqual(byteC, decC) {
					t.Fatalf("m=%d n=%d kQuads=%d: decoded C image diverges from byte path", m, n, kQuads)
				}
				if bc != dc {
					t.Fatalf("m=%d n=%d kQuads=%d: cycles %d (byte) != %d (decoded)", m, n, kQuads, bc, dc)
				}
			}
		}
	}
}

// FuzzDecodedBF16Equivalence feeds arbitrary operand bit patterns and
// geometry through both tiers. Because operands are raw bytes the corpus
// naturally exercises quiet/signaling NaN payloads, infinities and
// denormals; any accumulation-order or decode divergence shows up as a
// byte mismatch in the C image.
func FuzzDecodedBF16Equivalence(f *testing.F) {
	f.Add(uint8(16), uint8(16), uint8(16), []byte{0x01, 0x80, 0x7F, 0xFF, 0x00, 0x80, 0x01, 0x00})
	f.Add(uint8(1), uint8(1), uint8(1), []byte{0xC0, 0x7F})             // quiet NaN bf16
	f.Add(uint8(2), uint8(3), uint8(5), []byte{0x80, 0x7F, 0x80, 0xFF}) // ±Inf bf16
	f.Add(uint8(4), uint8(4), uint8(2), []byte{0x01, 0x00, 0x80, 0x00}) // denormal bf16
	f.Fuzz(func(t *testing.T, mR, nR, kR uint8, data []byte) {
		m := int(mR%MaxRows) + 1
		n := int(nR%(MaxColBytes/4)) + 1
		kPairs := int(kR%(MaxColBytes/4)) + 1
		if len(data) == 0 {
			data = []byte{0}
		}
		grab := func(dst []byte, phase int) {
			for i := range dst {
				dst[i] = data[(i+phase)%len(data)]
			}
		}
		cImg := make([]byte, m*n*4)
		aImg := make([]byte, m*kPairs*4)
		bImg := make([]byte, kPairs*n*4)
		grab(cImg, 0)
		grab(aImg, 1)
		grab(bImg, 2)
		byteC, decC, bc, dc := runBF16Pair(t, m, n, kPairs, cImg, aImg, bImg)
		if !f32ImagesEqual(byteC, decC) {
			t.Fatalf("m=%d n=%d kPairs=%d: decoded C image diverges from byte path", m, n, kPairs)
		}
		if bc != dc {
			t.Fatalf("m=%d n=%d kPairs=%d: cycle mismatch %d != %d", m, n, kPairs, bc, dc)
		}
	})
}

// FuzzDecodedINT8Equivalence is the TDPBUSD mirror of the BF16 fuzzer.
func FuzzDecodedINT8Equivalence(f *testing.F) {
	f.Add(uint8(16), uint8(16), uint8(16), []byte{0x80, 0x7F, 0xFF, 0x01})
	f.Add(uint8(3), uint8(2), uint8(7), []byte{0xFF})
	f.Fuzz(func(t *testing.T, mR, nR, kR uint8, data []byte) {
		m := int(mR%MaxRows) + 1
		n := int(nR%(MaxColBytes/4)) + 1
		kQuads := int(kR%(MaxColBytes/4)) + 1
		if len(data) == 0 {
			data = []byte{0}
		}
		grab := func(dst []byte, phase int) {
			for i := range dst {
				dst[i] = data[(i+phase)%len(data)]
			}
		}
		cImg := make([]byte, m*n*4)
		aImg := make([]byte, m*kQuads*4)
		bImg := make([]byte, kQuads*n*4)
		grab(cImg, 0)
		grab(aImg, 1)
		grab(bImg, 2)
		byteC, decC, bc, dc := runINT8Pair(t, m, n, kQuads, cImg, aImg, bImg)
		if !reflect.DeepEqual(byteC, decC) {
			t.Fatalf("m=%d n=%d kQuads=%d: decoded C image diverges from byte path", m, n, kQuads)
		}
		if bc != dc {
			t.Fatalf("m=%d n=%d kQuads=%d: cycle mismatch %d != %d", m, n, kQuads, bc, dc)
		}
	})
}

// TestDecodedDriverMatchesByteDriverBF16 pins the full decoded BF16 driver
// (pack → blocking → worker pool → scatter) against the byte-path driver
// bit for bit — including NaN and Inf activations — and requires cycle
// parity. Comparison is on float32 bits modulo NaN payload (sameF32Word).
func TestDecodedDriverMatchesByteDriverBF16(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range []struct{ m, k, n int }{
		{1, 64, 64}, {16, 32, 16}, {33, 48, 20}, {5, 129, 3}, {64, 64, 128},
	} {
		a, b := matrices(s.m, s.k, s.n, 0.5)
		// Inject special values: the byte and decoded paths must agree on
		// NaN propagation and signed-infinity arithmetic, not just finite data.
		a[0] = float32(math.NaN())
		a[len(a)-1] = float32(math.Inf(1))
		b[0] = float32(math.Inf(-1))
		b[len(b)-1] = math.Float32frombits(0x00000001) // denormal
		for i := 0; i < 5; i++ {
			a[rng.Intn(len(a))] = float32(math.NaN())
		}

		byteW, err := prepackBF16Bytes(b, s.k, s.n)
		if err != nil {
			t.Fatal(err)
		}
		decW, err := PrepackBF16(b, s.k, s.n)
		if err != nil {
			t.Fatal(err)
		}
		// Warm both drivers so the pooled units have the palette installed;
		// otherwise a one-time Configure charge lands on whichever path
		// happens to draw a cold unit.
		if _, err := matmulBF16DriverBytes(make([]float32, s.m*s.n), a, s.m, byteW); err != nil {
			t.Fatal(err)
		}
		if _, _, err := MatmulBF16Packed(a, s.m, decW); err != nil {
			t.Fatal(err)
		}
		want := make([]float32, s.m*s.n)
		wantCycles, err := matmulBF16DriverBytes(want, a, s.m, byteW)
		if err != nil {
			t.Fatalf("%dx%dx%d byte driver: %v", s.m, s.k, s.n, err)
		}
		got, gotCycles, err := MatmulBF16Packed(a, s.m, decW)
		if err != nil {
			t.Fatalf("%dx%dx%d decoded driver: %v", s.m, s.k, s.n, err)
		}
		for i := range want {
			if !sameF32Word(f32Bits(want[i]), f32Bits(got[i])) {
				t.Fatalf("%dx%dx%d: C[%d] bits %08x (byte) != %08x (decoded)",
					s.m, s.k, s.n, i, f32Bits(want[i]), f32Bits(got[i]))
			}
		}
		// Instruction-level cycle parity is pinned exhaustively at the tile
		// level; at the driver level the pooled units' palette warm-up
		// depends on pool-worker scheduling (and sync.Pool is randomized
		// under -race), so a driver may draw a cold unit and pay one extra
		// Configure. Allow exactly Configure-charge multiples, nothing else.
		if diff := cycleDiff(wantCycles, gotCycles); diff%cyclesConfig != 0 {
			t.Fatalf("%dx%dx%d: cycles %d (byte) != %d (decoded)", s.m, s.k, s.n, wantCycles, gotCycles)
		}
	}
}

// TestDecodedDriverMatchesByteDriverINT8 is the INT8 driver-level pin.
func TestDecodedDriverMatchesByteDriverINT8(t *testing.T) {
	for _, s := range []struct{ m, k, n int }{
		{1, 64, 16}, {16, 64, 16}, {33, 100, 20}, {64, 128, 64},
	} {
		a := make([]uint8, s.m*s.k)
		b := make([]int8, s.k*s.n)
		for i := range a {
			a[i] = uint8(i*29 + 7)
		}
		for i := range b {
			b[i] = int8(i%255 - 127)
		}
		byteW, err := prepackINT8Bytes(b, s.k, s.n)
		if err != nil {
			t.Fatal(err)
		}
		decW, err := PrepackINT8(b, s.k, s.n)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := matmulINT8Driver(a, s.m, byteW); err != nil {
			t.Fatal(err)
		}
		if _, _, err := MatmulINT8Packed(a, s.m, decW); err != nil {
			t.Fatal(err)
		}
		want, wantCycles, err := matmulINT8Driver(a, s.m, byteW)
		if err != nil {
			t.Fatalf("%dx%dx%d byte driver: %v", s.m, s.k, s.n, err)
		}
		got, gotCycles, err := MatmulINT8Packed(a, s.m, decW)
		if err != nil {
			t.Fatalf("%dx%dx%d decoded driver: %v", s.m, s.k, s.n, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%dx%dx%d: decoded result diverges from byte driver", s.m, s.k, s.n)
		}
		// Same Configure-charge tolerance as the BF16 driver test.
		if diff := cycleDiff(wantCycles, gotCycles); diff%cyclesConfig != 0 {
			t.Fatalf("%dx%dx%d: cycles %d (byte) != %d (decoded)", s.m, s.k, s.n, wantCycles, gotCycles)
		}
	}
}

// errText renders an error for equality comparison ("<nil>" for success).
func errText(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// TestDecodedFaultIdentity requires every fault the byte-path instructions
// raise — unconfigured tiles, bad indices, incompatible shapes — to come
// out of the decoded entry points with the *identical* error string, and
// to leave the cycle counter untouched on both.
func TestDecodedFaultIdentity(t *testing.T) {
	type setup func() *Unit
	initUnit := func() *Unit { return NewUnit() }
	okBF16 := func() *Unit {
		u := NewUnit()
		if err := u.Configure(bf16TileConfig(4, 4, 4)); err != nil {
			t.Fatal(err)
		}
		return u
	}
	mismatched := func() *Unit {
		u := NewUnit()
		cfg := bf16TileConfig(4, 4, 4)
		cfg.Tiles[tmmA].Rows = 3 // A rows != dst rows
		if err := u.Configure(cfg); err != nil {
			t.Fatal(err)
		}
		return u
	}
	bShapeBad := func() *Unit {
		u := NewUnit()
		cfg := bf16TileConfig(4, 4, 4)
		cfg.Tiles[tmmB].Rows = 2 // B rows != kPairs
		if err := u.Configure(cfg); err != nil {
			t.Fatal(err)
		}
		return u
	}
	cDec := make([]float32, 16)
	aDec := make([]float32, 32)
	bCols := make([]float32, 32)
	cI := make([]int32, 16)
	aU := make([]uint8, 32)
	bS := make([]int8, 32)

	cases := []struct {
		name      string
		mk        setup
		d, a, b   int
		wantErrIs error
	}{
		{"unconfigured", initUnit, tmmC, tmmA, tmmB, ErrNotConfigured},
		{"bad dst index", okBF16, 9, tmmA, tmmB, ErrBadTile},
		{"bad src index", okBF16, tmmC, -1, tmmB, ErrBadTile},
		{"A rows mismatch", mismatched, tmmC, tmmA, tmmB, ErrShape},
		{"B shape mismatch", bShapeBad, tmmC, tmmA, tmmB, ErrShape},
	}
	for _, tc := range cases {
		ub, ud := tc.mk(), tc.mk()
		cb0, cd0 := ub.Cycles(), ud.Cycles()
		errByte := ub.TDPBF16PS(tc.d, tc.a, tc.b)
		errDec := ud.TDPBF16PSDecoded(tc.d, tc.a, tc.b, cDec, 4, aDec, 8, bCols, 8)
		if errText(errByte) != errText(errDec) {
			t.Errorf("bf16 %s: byte %q != decoded %q", tc.name, errText(errByte), errText(errDec))
		}
		if !errors.Is(errDec, tc.wantErrIs) {
			t.Errorf("bf16 %s: decoded error %v, want %v", tc.name, errDec, tc.wantErrIs)
		}
		if ub.Cycles() != cb0 || ud.Cycles() != cd0 {
			t.Errorf("bf16 %s: fault advanced cycle counter", tc.name)
		}

		ub, ud = tc.mk(), tc.mk()
		errByte = ub.TDPBUSD(tc.d, tc.a, tc.b)
		errDec = ud.TDPBUSDDecoded(tc.d, tc.a, tc.b, cI, 4, aU, 8, bS, 8)
		if errText(errByte) != errText(errDec) {
			t.Errorf("int8 %s: byte %q != decoded %q", tc.name, errText(errByte), errText(errDec))
		}
	}
}

// TestDecodedSliceValidation covers the decoded-only fault class: strides
// below the operand widths and backing slices too short for the configured
// geometry, each a distinct sentinel.
func TestDecodedSliceValidation(t *testing.T) {
	u := NewUnit()
	if err := u.Configure(bf16TileConfig(4, 4, 4)); err != nil {
		t.Fatal(err)
	}
	c := make([]float32, 16)
	a := make([]float32, 32)
	b := make([]float32, 32)
	before := u.Cycles()
	if err := u.TDPBF16PSDecoded(tmmC, tmmA, tmmB, c, 3, a, 8, b, 8); !errors.Is(err, ErrShape) {
		t.Errorf("narrow C stride: %v, want ErrShape", err)
	}
	if err := u.TDPBF16PSDecoded(tmmC, tmmA, tmmB, c, 4, a, 7, b, 8); !errors.Is(err, ErrShape) {
		t.Errorf("narrow A stride: %v, want ErrShape", err)
	}
	if err := u.TDPBF16PSDecoded(tmmC, tmmA, tmmB, c[:15], 4, a, 8, b, 8); !errors.Is(err, ErrBounds) {
		t.Errorf("short C: %v, want ErrBounds", err)
	}
	if err := u.TDPBF16PSDecoded(tmmC, tmmA, tmmB, c, 4, a[:31], 8, b, 8); !errors.Is(err, ErrBounds) {
		t.Errorf("short A: %v, want ErrBounds", err)
	}
	if err := u.TDPBF16PSDecoded(tmmC, tmmA, tmmB, c, 4, a, 8, b[:31], 8); !errors.Is(err, ErrBounds) {
		t.Errorf("short B: %v, want ErrBounds", err)
	}
	if u.Cycles() != before {
		t.Error("decoded slice faults advanced the cycle counter")
	}

	ui := NewUnit()
	if err := ui.Configure(int8TileConfig(4, 4, 4)); err != nil {
		t.Fatal(err)
	}
	ci := make([]int32, 16)
	au := make([]uint8, 64)
	bs := make([]int8, 64)
	if err := ui.TDPBUSDDecoded(tmmC, tmmA, tmmB, ci, 4, au, 15, bs, 16); !errors.Is(err, ErrShape) {
		t.Errorf("int8 narrow A stride: %v, want ErrShape", err)
	}
	if err := ui.TDPBUSDDecoded(tmmC, tmmA, tmmB, ci, 4, au[:60], 16, bs, 16); !errors.Is(err, ErrBounds) {
		t.Errorf("int8 short A: %v, want ErrBounds", err)
	}
}

// TestCheckOpsMatchByteOps requires the fault-and-cycles-only tile ops to
// fault with exactly the strings the data-moving ops produce, and to
// charge the same cycles on success.
func TestCheckOpsMatchByteOps(t *testing.T) {
	mk := func() *Unit {
		u := NewUnit()
		cfg := TileConfig{}
		cfg.Tiles[0] = TileShape{Rows: 16, ColBytes: 64}
		if err := u.Configure(cfg); err != nil {
			t.Fatal(err)
		}
		return u
	}
	mem := make([]byte, 16*64)
	short := make([]byte, 100)

	cases := []struct {
		name string
		run  func(u *Unit) error
		chk  func(u *Unit) error
	}{
		{"load ok", func(u *Unit) error { return u.TileLoad(0, mem, 64) },
			func(u *Unit) error { return u.TileLoadCheck(0, len(mem), 64) }},
		{"load short", func(u *Unit) error { return u.TileLoad(0, short, 64) },
			func(u *Unit) error { return u.TileLoadCheck(0, len(short), 64) }},
		{"load narrow stride", func(u *Unit) error { return u.TileLoad(0, mem, 32) },
			func(u *Unit) error { return u.TileLoadCheck(0, len(mem), 32) }},
		{"load bad tile", func(u *Unit) error { return u.TileLoad(9, mem, 64) },
			func(u *Unit) error { return u.TileLoadCheck(9, len(mem), 64) }},
		{"load unconfigured", func(u *Unit) error { return u.TileLoad(1, mem, 64) },
			func(u *Unit) error { return u.TileLoadCheck(1, len(mem), 64) }},
		{"store ok", func(u *Unit) error { return u.TileStore(0, mem, 64) },
			func(u *Unit) error { return u.TileStoreCheck(0, len(mem), 64) }},
		{"store short", func(u *Unit) error { return u.TileStore(0, short, 64) },
			func(u *Unit) error { return u.TileStoreCheck(0, len(short), 64) }},
		{"zero ok", func(u *Unit) error { return u.TileZero(0) },
			func(u *Unit) error { return u.TileZeroCheck(0) }},
		{"zero unconfigured", func(u *Unit) error { return u.TileZero(3) },
			func(u *Unit) error { return u.TileZeroCheck(3) }},
	}
	for _, tc := range cases {
		ub, uc := mk(), mk()
		b0, c0 := ub.Cycles(), uc.Cycles()
		errB, errC := tc.run(ub), tc.chk(uc)
		if errText(errB) != errText(errC) {
			t.Errorf("%s: byte op %q != check op %q", tc.name, errText(errB), errText(errC))
		}
		if db, dc := ub.Cycles()-b0, uc.Cycles()-c0; db != dc {
			t.Errorf("%s: cycles %d (byte) != %d (check)", tc.name, db, dc)
		}
	}
}

// TestWriteI32PreservesSNaNBits pins the writeI32 fix: an int32
// accumulator whose bit pattern happens to be a signaling NaN
// (0x7F800001) must reach memory unchanged. The old implementation routed
// the bits through a float32 round trip, which FP canonicalization is
// allowed to quieten (flipping bit 22 → 0x7FC00001).
func TestWriteI32PreservesSNaNBits(t *testing.T) {
	snanBits := []uint32{
		0x7F800001, // minimal-payload signaling NaN
		0x7F800000, // +Inf (payload neighbors matter too)
		0xFF800001, // negative signaling NaN
		0x7FBFFFFF, // maximal signaling payload
	}
	// Direct tile-level check.
	var tl tile
	for _, bits := range snanBits {
		tl.writeI32(0, 0, int32(bits))
		if got := uint32(tl.readI32(0, 0)); got != bits {
			t.Errorf("writeI32 round trip of %08x = %08x", bits, got)
		}
	}
	// End-to-end: load the pattern as the initial accumulator, multiply by
	// zero operands (acc unchanged), and require the stored bytes intact.
	u := NewUnit()
	if err := u.Configure(int8TileConfig(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	for _, bits := range snanBits {
		img := []byte{byte(bits), byte(bits >> 8), byte(bits >> 16), byte(bits >> 24)}
		if err := u.TileLoad(tmmC, img, 4); err != nil {
			t.Fatal(err)
		}
		if err := u.TileLoad(tmmA, make([]byte, 4), 4); err != nil {
			t.Fatal(err)
		}
		if err := u.TileLoad(tmmB, make([]byte, 4), 4); err != nil {
			t.Fatal(err)
		}
		if err := u.TDPBUSD(tmmC, tmmA, tmmB); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, 4)
		if err := u.TileStore(tmmC, out, 4); err != nil {
			t.Fatal(err)
		}
		got := uint32(out[0]) | uint32(out[1])<<8 | uint32(out[2])<<16 | uint32(out[3])<<24
		if got != bits {
			t.Errorf("TDPBUSD accumulate of zero over %08x stored %08x", bits, got)
		}
	}
}

// TestPackersZeroOnlyPadding hands every pack routine a scratch buffer
// pre-filled with garbage (as pooled reuse does) and requires the payload
// correct and every padding byte/value zero — the contract that lets the
// packers skip the full-buffer clear.
func TestPackersZeroOnlyPadding(t *testing.T) {
	const rows, cols, padRows, padCols = 3, 5, 16, 32
	src := make([]float32, rows*cols)
	for i := range src {
		src[i] = float32(i)*0.375 - 2
	}

	t.Run("packBF16Into", func(t *testing.T) {
		dst := make([]byte, padRows*padCols*2)
		fillPattern(dst, 0xFF)
		packBF16Into(dst, src, rows, cols, padRows, padCols)
		want := PackBF16(src, rows, cols, padRows, padCols)
		if !reflect.DeepEqual(dst, want) {
			t.Fatal("stale scratch leaked through packBF16Into")
		}
	})
	t.Run("packBF16VNNIInto", func(t *testing.T) {
		dst := make([]byte, padRows*padCols*2)
		fillPattern(dst, 0xAB)
		packBF16VNNIInto(dst, src, rows, cols, padRows, padCols)
		want := PackBF16VNNI(src, rows, cols, padRows, padCols)
		if !reflect.DeepEqual(dst, want) {
			t.Fatal("stale scratch leaked through packBF16VNNIInto")
		}
	})
	t.Run("packBF16DecodedInto", func(t *testing.T) {
		dst := make([]float32, padRows*padCols)
		for i := range dst {
			dst[i] = float32(math.NaN())
		}
		packBF16DecodedInto(dst, src, rows, cols, padRows, padCols)
		for r := 0; r < padRows; r++ {
			for c := 0; c < padCols; c++ {
				got := dst[r*padCols+c]
				if r < rows && c < cols {
					if want := RoundFloat32(src[r*cols+c]); got != want {
						t.Fatalf("payload (%d,%d) = %v, want %v", r, c, got, want)
					}
				} else if f32Bits(got) != 0 {
					t.Fatalf("padding (%d,%d) = %v bits %08x, want +0", r, c, got, f32Bits(got))
				}
			}
		}
	})
	t.Run("packBF16DecodedBInto", func(t *testing.T) {
		dst := make([]float32, padRows*padCols)
		for i := range dst {
			dst[i] = float32(math.Inf(-1))
		}
		packBF16DecodedBInto(dst, src, rows, cols, padRows, padCols)
		for c := 0; c < padCols; c++ {
			for r := 0; r < padRows; r++ {
				got := dst[c*padRows+r]
				if r < rows && c < cols {
					if want := RoundFloat32(src[r*cols+c]); got != want {
						t.Fatalf("payload col %d row %d = %v, want %v", c, r, got, want)
					}
				} else if f32Bits(got) != 0 {
					t.Fatalf("padding col %d row %d = %v, want +0", c, r, got)
				}
			}
		}
	})
	t.Run("packU8Into", func(t *testing.T) {
		srcU := make([]uint8, rows*cols)
		for i := range srcU {
			srcU[i] = uint8(i + 1)
		}
		dst := make([]byte, padRows*padCols)
		fillPattern(dst, 0xEE)
		packU8Into(dst, srcU, rows, cols, padRows, padCols)
		if want := PackU8(srcU, rows, cols, padRows, padCols); !reflect.DeepEqual(dst, want) {
			t.Fatal("stale scratch leaked through packU8Into")
		}
	})
	t.Run("packS8VNNIInto", func(t *testing.T) {
		srcS := make([]int8, rows*cols)
		for i := range srcS {
			srcS[i] = int8(i*7 - 50)
		}
		dst := make([]byte, padRows*padCols)
		fillPattern(dst, 0xCD)
		packS8VNNIInto(dst, srcS, rows, cols, padRows, padCols)
		if want := PackS8VNNI(srcS, rows, cols, padRows, padCols); !reflect.DeepEqual(dst, want) {
			t.Fatal("stale scratch leaked through packS8VNNIInto")
		}
	})
	t.Run("packS8DecodedBInto", func(t *testing.T) {
		srcS := make([]int8, rows*cols)
		for i := range srcS {
			srcS[i] = int8(i*11 - 80)
		}
		dst := make([]int8, padRows*padCols)
		for i := range dst {
			dst[i] = -86
		}
		packS8DecodedBInto(dst, srcS, rows, cols, padRows, padCols)
		for c := 0; c < padCols; c++ {
			for r := 0; r < padRows; r++ {
				got := dst[c*padRows+r]
				if r < rows && c < cols {
					if want := srcS[r*cols+c]; got != want {
						t.Fatalf("payload col %d row %d = %d, want %d", c, r, got, want)
					}
				} else if got != 0 {
					t.Fatalf("padding col %d row %d = %d, want 0", c, r, got)
				}
			}
		}
	})
}
