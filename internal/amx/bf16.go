package amx

import "math"

// BF16 is a bfloat16 value: the top 16 bits of an IEEE-754 float32.
type BF16 uint16

// BF16FromFloat32 converts f to bfloat16 with round-to-nearest-even, the
// rounding AMX and modern GPUs implement.
func BF16FromFloat32(f float32) BF16 {
	bits := math.Float32bits(f)
	// NaN must stay NaN: force a quiet NaN payload bit so truncation
	// cannot turn it into an infinity.
	if f != f {
		return BF16(bits>>16 | 0x0040)
	}
	// Round to nearest even on the truncated 16 bits.
	rounding := uint32(0x7fff) + (bits>>16)&1
	return BF16((bits + rounding) >> 16)
}

// Float32 converts back to float32 (exact: bfloat16 values are a subset of
// float32).
func (b BF16) Float32() float32 {
	return math.Float32frombits(uint32(b) << 16)
}

// BF16FromBytes reassembles the little-endian bfloat16 stored as (lo,
// hi) — the per-element byte shuffle the byte-accurate instructions
// perform inside their MAC loops and the decoded fast path hoists out.
func BF16FromBytes(lo, hi byte) BF16 { return BF16(uint16(lo) | uint16(hi)<<8) }

// RoundFloat32 applies one float32→bfloat16→float32 round trip, the
// precision loss a BF16 store incurs.
func RoundFloat32(f float32) float32 {
	return BF16FromFloat32(f).Float32()
}

// RoundSlice rounds every element of xs through bfloat16 in place and
// returns xs.
func RoundSlice(xs []float32) []float32 {
	for i, v := range xs {
		xs[i] = RoundFloat32(v)
	}
	return xs
}
