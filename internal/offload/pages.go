package offload

import (
	"container/list"
	"errors"
	"fmt"

	"github.com/lia-sim/lia/internal/cxl"
)

// kvPage is one KV-cache page: PageTokens positions across all layers of
// one sequence.
type kvPage struct {
	alloc   *Allocation
	cacheID int64
	idx     int           // page index within its cache
	elem    *list.Element // LRU position while the page is in the KV tier
}

// cacheState tracks one hosted KV cache's pages.
type cacheState struct {
	id      int64
	capRows int
	rows    int // high-water mark of appended positions
	pages   []*kvPage
}

// pageTable implements the §6 KV paging policy: hot pages live in the KV
// tier (DDR under the paper's placement), a global LRU orders them, and
// capacity pressure first spills the coldest page toward CXL, then
// evicts it outright when even the expanders are full. Callers hold the
// host's lock; the table itself is not concurrency-safe.
type pageTable struct {
	plan *Plan
	mgr  *Manager

	caches map[int64]*cacheState
	lru    *list.List // of *kvPage, front = coldest

	spills    uint64
	evictions uint64
	refetches uint64
	overflows uint64
	evictLog  []int64 // cache ids in eviction order, for the LRU tests
}

func newPageTable(plan *Plan, mgr *Manager) *pageTable {
	return &pageTable{plan: plan, mgr: mgr, caches: make(map[int64]*cacheState), lru: list.New()}
}

func (pt *pageTable) createCache(id int64, capRows int) {
	if _, ok := pt.caches[id]; ok {
		return
	}
	pt.caches[id] = &cacheState{id: id, capRows: capRows}
}

func (pt *pageTable) retireCache(id int64) {
	cs, ok := pt.caches[id]
	if !ok {
		return
	}
	for _, pg := range cs.pages {
		pt.dropPage(pg)
	}
	delete(pt.caches, id)
}

// dropPage releases a page's tier residency and LRU slot.
func (pt *pageTable) dropPage(pg *kvPage) {
	if pg == nil {
		return
	}
	if pg.elem != nil {
		pt.lru.Remove(pg.elem)
		pg.elem = nil
	}
	pt.mgr.Free(pg.alloc)
}

// ensure grows cache id to hold totalRows positions, allocating (or
// re-fetching evicted) pages in the KV tier and returning the bytes of
// freshly allocated page space.
func (pt *pageTable) ensure(id int64, totalRows int) error {
	cs, ok := pt.caches[id]
	if !ok {
		return fmt.Errorf("offload: ensure on unknown cache %d", id)
	}
	if totalRows > cs.rows {
		cs.rows = totalRows
	}
	need := (cs.rows + pt.plan.Cfg.PageTokens - 1) / pt.plan.Cfg.PageTokens
	for len(cs.pages) < need {
		cs.pages = append(cs.pages, nil)
	}
	for i, pg := range cs.pages[:need] {
		if pg != nil {
			continue
		}
		refetch := i < need-1 // an interior hole means the page was evicted
		npg, err := pt.allocPage(cs, i)
		if err != nil {
			pt.overflows++
			return err
		}
		cs.pages[i] = npg
		if refetch {
			pt.refetches++
		}
	}
	return nil
}

// allocPage allocates one page in the KV tier, spilling or evicting the
// globally coldest page until it fits.
func (pt *pageTable) allocPage(cs *cacheState, idx int) (*kvPage, error) {
	label := fmt.Sprintf("kv/cache%d/page%d", cs.id, idx)
	for {
		alloc, err := pt.mgr.Alloc(pt.plan.KVTier, cxl.KVCache, label, pt.plan.PageBytes)
		if err == nil {
			pg := &kvPage{alloc: alloc, cacheID: cs.id, idx: idx}
			pg.elem = pt.lru.PushBack(pg)
			return pg, nil
		}
		if !errors.Is(err, ErrTierFull) {
			return nil, err
		}
		if !pt.reclaimColdest() {
			return nil, fmt.Errorf("offload: kv tier exhausted and nothing left to evict: %w", err)
		}
	}
}

// reclaimColdest frees KV-tier space by one page: spill it to CXL when
// the pool can take it (§6: cold KV is the spill class), else evict it.
// Returns false when the LRU is empty.
func (pt *pageTable) reclaimColdest() bool {
	front := pt.lru.Front()
	if front == nil {
		return false
	}
	pg := front.Value.(*kvPage)
	pt.lru.Remove(front)
	pg.elem = nil
	if pt.plan.KVTier != CXL && !pt.plan.Pool.Empty() {
		if err := pt.mgr.Move(pg.alloc, CXL); err == nil {
			pt.spills++
			return true
		}
	}
	// Eviction: the page leaves the tiered model entirely; a later access
	// re-fetches it. The functional engine still holds the values — the
	// hooks are observational — so tokens are unaffected.
	pt.evictions++
	pt.evictLog = append(pt.evictLog, pg.cacheID)
	pt.mgr.Free(pg.alloc)
	if cs, ok := pt.caches[pg.cacheID]; ok && pg.idx < len(cs.pages) && cs.pages[pg.idx] == pg {
		cs.pages[pg.idx] = nil
	}
	return true
}

// touch marks cache id's resident pages most-recently-used, preserving
// their relative page order.
func (pt *pageTable) touch(id int64) {
	cs, ok := pt.caches[id]
	if !ok {
		return
	}
	for _, pg := range cs.pages {
		if pg != nil && pg.elem != nil {
			pt.lru.MoveToBack(pg.elem)
		}
	}
}

// kvResident returns the cache's bytes currently resident in the KV tier.
func (pt *pageTable) kvResident(id int64) int {
	cs, ok := pt.caches[id]
	if !ok {
		return 0
	}
	n := 0
	for _, pg := range cs.pages {
		if pg != nil && pg.elem != nil {
			n++
		}
	}
	return n
}
