package offload

import (
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/units"
)

// PrefixStore adapts the tiered memory to the prefix cache's spill
// interface (kvprefix.Spiller, matched structurally): cold radix-tree
// nodes move out of the paged pool into CXL when the system has
// expanders, else DDR, instead of being evicted outright. Spilling
// charges one write of the node's bytes into the cold tier; the release
// closure charges the read back out (a refetch) and frees the
// reservation.
type PrefixStore struct {
	mgr  *Manager
	tier Tier
}

// PrefixStore returns the host's cold-tier store for prefix-cache nodes.
func (h *Host) PrefixStore() *PrefixStore {
	tier := DDR
	if h.plan.Pool.Capacity() > 0 {
		tier = CXL
	}
	return &PrefixStore{mgr: h.mgr, tier: tier}
}

// Tier reports where spilled nodes land.
func (s *PrefixStore) Tier() Tier { return s.tier }

// Spill reserves b bytes of cold-tier capacity for a node. ok=false when
// the tier is full — the caller then evicts instead.
func (s *PrefixStore) Spill(label string, b units.Bytes) (func(), bool) {
	a, err := s.mgr.Alloc(s.tier, cxl.KVCache, label, b)
	if err != nil {
		return nil, false
	}
	s.mgr.Write(a, b)
	return func() {
		s.mgr.Read(a, b)
		s.mgr.Free(a)
	}, true
}
