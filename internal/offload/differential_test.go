package offload

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// goldenPath is the llm package's invariance corpus: the tokens the seed
// implementation generated for every policy × precision × architecture.
const goldenPath = "../llm/testdata/golden_tokens.json"

func goldenKey(cfg string, p core.Policy, int8 bool) string {
	mode := "bf16"
	if int8 {
		mode = "int8"
	}
	return fmt.Sprintf("%s/%s/%s", cfg, p, mode)
}

// TestHostedExecutorGoldenInvariance is the tentpole differential test:
// an executor whose weights and KV cache live in the tiered runtime must
// emit tokens bit-identical to the resident executor across the full
// invariance corpus — the hooks observe, they never touch the math.
func TestHostedExecutorGoldenInvariance(t *testing.T) {
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden corpus: %v", err)
	}
	var golden map[string][]int
	if err := json.Unmarshal(buf, &golden); err != nil {
		t.Fatal(err)
	}

	optM, err := llm.NewRandom(llm.TinyConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	llamaM, err := llm.NewRandom(llm.TinyLlamaConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	archs := []struct {
		name   string
		m      *llm.Model
		cfg    model.Config
		prompt []int
		ctx    int
		pinned int
	}{
		// tiny-opt pins one layer (Opt-1 active: pinned + streamed mix,
		// ctx 256 so host-side KV outweighs a layer); tiny-llama streams
		// both layers.
		{"tiny-opt", optM, llm.TinyConfig(), []int{5, 17, 42, 9, 63}, 256, 1},
		{"tiny-llama", llamaM, llm.TinyLlamaConfig(), []int{9, 33, 71}, 128, 0},
	}
	policies := core.AllPolicies()
	if testing.Short() {
		policies = []core.Policy{core.FullGPU, core.FullCPU, core.PartialCPU, core.MoEPartial}
	}
	for _, a := range archs {
		// Host over a CXL-equipped tiny system under the §6 policy, so the
		// differential covers the full tier spread (HBM pin, CXL params,
		// DDR KV).
		sys := TinySystem(a.cfg, 1, a.ctx, a.pinned, 1)
		plan, err := NewPlan(Config{System: sys, Model: a.cfg, Batch: 1, Context: a.ctx, Placement: cxl.PolicyPlacement()})
		if err != nil {
			t.Fatal(err)
		}
		if plan.GPU.PinnedLayers != a.pinned {
			t.Fatalf("%s: plan pinned %d layers, test wants %d", a.name, plan.GPU.PinnedLayers, a.pinned)
		}
		for _, p := range policies {
			for _, int8Mode := range []bool{false, true} {
				key := goldenKey(a.name, p, int8Mode)
				want, ok := golden[key]
				if !ok {
					t.Fatalf("golden corpus missing %s", key)
				}
				h, err := NewHost(plan, p)
				if err != nil {
					t.Fatal(err)
				}
				e := llm.NewExecutor(a.m, p)
				e.Mem = h
				if int8Mode {
					e.EnableINT8()
				}
				got, err := e.Generate(a.prompt, 12)
				if err != nil {
					h.Close()
					t.Fatalf("%s: %v", key, err)
				}
				if !reflect.DeepEqual(got, want) {
					h.Close()
					t.Fatalf("%s: tiered hosting changed the tokens:\n got %v\nwant %v", key, got, want)
				}
				s := h.Snapshot()
				h.Close()
				if s.Prefills != 1 || s.Decodes != 11 {
					t.Fatalf("%s: host observed prefills=%d decodes=%d, want 1/11", key, s.Prefills, s.Decodes)
				}
				if s.LastPass.Makespan <= 0 {
					t.Fatalf("%s: virtual clock never advanced", key)
				}
			}
		}
	}
}

// TestLayerStreamTimeMatchesAnalytic pins the virtual clock's per-layer
// parameter-stream time against the analytic engine's per-sublayer D_Y
// loads (core's Eq. 3–7 transfer terms) within 5% on OPT-30B-class
// shapes, for DDR-sourced and CXL-sourced streaming.
func TestLayerStreamTimeMatchesAnalytic(t *testing.T) {
	cases := []struct {
		name string
		sys  hw.System
		pl   cxl.Placement
	}{
		{"ddr-streamed", hw.SPRA100, cxl.DDROnlyPlacement()},
		{"cxl-1-streamed", hw.SPRA100.WithCXL(1, hw.SamsungCXL128), cxl.PolicyPlacement()},
		{"cxl-2-streamed", hw.SPRA100.WithCXL(2, hw.SamsungCXL128), cxl.PolicyPlacement()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := NewPlan(Config{System: tc.sys, Model: model.OPT30B, Batch: 1, Context: 544, Placement: tc.pl})
			if err != nil {
				t.Fatal(err)
			}
			if plan.StreamedLayers() == 0 {
				t.Fatal("OPT-30B should not fit entirely in A100 HBM")
			}
			h, err := NewHost(plan, core.FullGPU)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()

			env := core.NewEnvWithPlacement(tc.sys, model.OPT30B, tc.pl)
			_, parts := core.LayerLatencyOpts(env, model.Decode, core.FullGPU, 1, 512, core.Options{})
			var analytic units.Seconds
			for _, s := range paramSublayers {
				analytic += parts[s].Load
			}
			got := h.LayerStreamTime()
			rel := math.Abs(float64(got-analytic)) / float64(analytic)
			if rel > 0.05 {
				t.Errorf("virtual stream time %v vs analytic D_Y load %v: %.1f%% apart, want ≤5%%",
					got, analytic, 100*rel)
			}
		})
	}
}

// TestHostedParallelSequences runs continuous-batched decoding over a
// hosted executor — the -race configuration exercising the prefetch
// worker, the shared page table, and per-fork pass hooks concurrently —
// and checks the streams still match solo generation.
func TestHostedParallelSequences(t *testing.T) {
	cfg := llm.TinyConfig()
	m, err := llm.NewRandom(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	sys := TinySystem(cfg, 1, 256, 1, 1)
	plan, err := NewPlan(Config{System: sys, Model: cfg, Batch: 1, Context: 256, Placement: cxl.PolicyPlacement()})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(plan, core.PartialCPU)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	e := llm.NewExecutor(m, core.PartialCPU)
	e.Mem = h
	prompts := [][]int{{5, 17, 42}, {9, 63}, {1, 2, 3, 4}, {7}}
	const n = 8
	seqs := make([]*llm.Sequence, len(prompts))
	for i, p := range prompts {
		s, err := e.NewSequence(p, n)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = s
	}
	for step := 0; step < n; step++ {
		if err := llm.StepBatch(context.Background(), seqs); err != nil {
			t.Fatal(err)
		}
	}
	solo := llm.NewExecutor(m, core.PartialCPU)
	for i, s := range seqs {
		want, err := solo.Generate(prompts[i], n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s.Output(), want) {
			t.Errorf("seq %d diverged under tiered hosting:\n got %v\nwant %v", i, s.Output(), want)
		}
		s.Release()
		s.Release() // idempotent
	}
	// All four caches were announced and retired.
	if got := h.Snapshot(); got.Tiers[DDR].Frees == 0 {
		t.Errorf("released caches freed no pages: %+v", got.Tiers[DDR])
	}
}
