package offload

import (
	"sync"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/units"
)

// XferEngine is the virtual-clock transfer engine. It models the single
// host↔GPU link as a serially-occupied resource: each transfer starts no
// earlier than both its request time and the moment the link frees, and
// lasts bytes over the effective bandwidth plus the link setup cost —
// exactly the analytic engine's semantics. Transfers sourced from the
// CXL pool run at the pool's size-dependent interleaved bandwidth capped
// by the link (Observation-1), with the pool's extra load-to-use latency
// folded into setup.
//
// Host-side copies (the DDR↔CXL KV spill path) do not occupy the GPU
// link; they are charged at the pool bandwidth and tracked separately.
type XferEngine struct {
	mu   sync.Mutex
	link hw.LinkSpec
	pool cxl.Pool

	linkFree units.Seconds // virtual time at which the GPU link frees
	fault    LinkFault     // nil = healthy link

	transfers     uint64
	linkBusy      units.Seconds // cumulative GPU-link occupancy
	linkBytes     units.Bytes
	linkFaults    uint64
	linkRetries   uint64
	hostCopies    uint64
	hostCopyTime  units.Seconds
	hostCopyBytes units.Bytes
}

// LinkFault injects transient host-link degradation into the virtual
// clock: before each GPU-link transfer the engine asks the hook for a
// bandwidth scale (1 = nominal, 0.25 = a link running at a quarter of
// its speed) and a transient error. A non-nil error models a CXL
// expander fault: the attempt occupies the link for its full (scaled)
// duration, is wasted, and the transfer is retried once — so faults
// surface as latency-tail inflation plus LinkFaults/LinkRetries counts,
// never as data corruption (the runtime is observational; tokens are
// untouched).
//
// transfer is the 1-based ordinal of the attempt's transfer, so "every
// k-th transfer faults" plans are a modulo; from and b describe the
// source tier and size. The hook runs under the engine's lock and must
// not call back into it. A scale ≤ 0 is treated as 1 (identity); a nil
// hook — or one that always returns (1, nil) — leaves every virtual
// timestamp exactly as the healthy analytic model prices it.
type LinkFault func(transfer uint64, from Tier, b units.Bytes) (bwScale float64, err error)

// SetLinkFault installs (or, with nil, removes) the link-fault hook.
func (x *XferEngine) SetLinkFault(f LinkFault) {
	x.mu.Lock()
	x.fault = f
	x.mu.Unlock()
}

// NewXferEngine builds a transfer engine over the system's host link and
// CXL pool.
func NewXferEngine(link hw.LinkSpec, pool cxl.Pool) *XferEngine {
	return &XferEngine{link: link, pool: pool}
}

// xferCost returns the duration of a b-byte host→GPU transfer sourced
// from the given tier, independent of link contention. bwScale < 1
// degrades the effective bandwidth (link setup and load-to-use latency
// are latency, not bandwidth, so they do not scale); 1 is the healthy
// analytic cost.
func (x *XferEngine) xferCost(from Tier, b units.Bytes, bwScale float64) units.Seconds {
	switch from {
	case CXL:
		bw := x.pool.GPUTransferBW(x.link, b)
		return units.TransferTime(b, scaleBW(bw, bwScale), x.link.Setup+x.pool.ExtraLatency())
	default: // DDR (and HBM staging, which is free of host-link cost)
		bw := x.link.BW
		if x.pool.DDRBW > 0 && x.pool.DDRBW < bw {
			bw = x.pool.DDRBW
		}
		return units.TransferTime(b, scaleBW(bw, bwScale), x.link.Setup)
	}
}

func scaleBW(bw units.BytesPerSecond, s float64) units.BytesPerSecond {
	if s <= 0 || s == 1 {
		return bw
	}
	return units.BytesPerSecond(float64(bw) * s)
}

// TransferCost returns the healthy (fault-free, contention-free) cost of
// a b-byte host→GPU transfer from the given tier — the analytic number
// the virtual clock must reproduce when the fault hook is identity. The
// scenario harness prices fault-plan cost models through this.
func (x *XferEngine) TransferCost(from Tier, b units.Bytes) units.Seconds {
	return x.xferCost(from, b, 1)
}

// HostToGPU schedules a b-byte upload from the given host tier onto the
// GPU link, requested at virtual time `at`. It returns the transfer's
// start and finish times; the link is occupied for the whole interval.
// With a LinkFault hook installed, the attempt runs at the hook's
// bandwidth scale, and a hook error wastes one full scaled attempt on
// the link before the (successful) retry — both attempts occupy the
// link serially, exactly like a real transient expander fault.
func (x *XferEngine) HostToGPU(from Tier, b units.Bytes, at units.Seconds) (start, finish units.Seconds) {
	x.mu.Lock()
	defer x.mu.Unlock()
	scale, faultErr := 1.0, error(nil)
	if x.fault != nil {
		scale, faultErr = x.fault(x.transfers+1, from, b)
	}
	cost := x.xferCost(from, b, scale)
	if faultErr != nil {
		// One wasted attempt plus the retry; count both sides.
		cost *= 2
		x.linkFaults++
		x.linkRetries++
	}
	start = at
	if x.linkFree > start {
		start = x.linkFree
	}
	finish = start + cost
	x.linkFree = finish
	x.transfers++
	x.linkBusy += cost
	x.linkBytes += b
	return start, finish
}

// HostCopy charges a b-byte DDR↔CXL migration (no GPU-link occupancy)
// and returns its duration at the pool's interleaved bandwidth.
func (x *XferEngine) HostCopy(b units.Bytes) units.Seconds {
	bw := x.pool.TransferBW(b)
	if x.pool.Empty() {
		bw = x.pool.DDRBW
	}
	d := units.TransferTime(b, bw, x.pool.ExtraLatency())
	x.mu.Lock()
	x.hostCopies++
	x.hostCopyTime += d
	x.hostCopyBytes += b
	x.mu.Unlock()
	return d
}

// LinkFree returns the virtual time at which the GPU link next frees.
func (x *XferEngine) LinkFree() units.Seconds {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.linkFree
}

// Reset rewinds the virtual link clock to zero, keeping the cumulative
// traffic counters. Each engine pass schedules from a fresh origin.
func (x *XferEngine) Reset() {
	x.mu.Lock()
	x.linkFree = 0
	x.mu.Unlock()
}

// XferStats is the engine's cumulative traffic accounting.
type XferStats struct {
	Transfers     uint64
	LinkBusy      units.Seconds
	LinkBytes     units.Bytes
	LinkFaults    uint64 // transient faults the LinkFault hook injected
	LinkRetries   uint64 // retried attempts (one per fault)
	HostCopies    uint64
	HostCopyTime  units.Seconds
	HostCopyBytes units.Bytes
}

// Stats returns the cumulative transfer accounting.
func (x *XferEngine) Stats() XferStats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return XferStats{
		Transfers: x.transfers, LinkBusy: x.linkBusy, LinkBytes: x.linkBytes,
		LinkFaults: x.linkFaults, LinkRetries: x.linkRetries,
		HostCopies: x.hostCopies, HostCopyTime: x.hostCopyTime, HostCopyBytes: x.hostCopyBytes,
	}
}
