package offload

import (
	"sync"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/units"
)

// XferEngine is the virtual-clock transfer engine. It models the single
// host↔GPU link as a serially-occupied resource: each transfer starts no
// earlier than both its request time and the moment the link frees, and
// lasts bytes over the effective bandwidth plus the link setup cost —
// exactly the analytic engine's semantics. Transfers sourced from the
// CXL pool run at the pool's size-dependent interleaved bandwidth capped
// by the link (Observation-1), with the pool's extra load-to-use latency
// folded into setup.
//
// Host-side copies (the DDR↔CXL KV spill path) do not occupy the GPU
// link; they are charged at the pool bandwidth and tracked separately.
type XferEngine struct {
	mu   sync.Mutex
	link hw.LinkSpec
	pool cxl.Pool

	linkFree units.Seconds // virtual time at which the GPU link frees

	transfers     uint64
	linkBusy      units.Seconds // cumulative GPU-link occupancy
	linkBytes     units.Bytes
	hostCopies    uint64
	hostCopyTime  units.Seconds
	hostCopyBytes units.Bytes
}

// NewXferEngine builds a transfer engine over the system's host link and
// CXL pool.
func NewXferEngine(link hw.LinkSpec, pool cxl.Pool) *XferEngine {
	return &XferEngine{link: link, pool: pool}
}

// xferCost returns the duration of a b-byte host→GPU transfer sourced
// from the given tier, independent of link contention.
func (x *XferEngine) xferCost(from Tier, b units.Bytes) units.Seconds {
	switch from {
	case CXL:
		bw := x.pool.GPUTransferBW(x.link, b)
		return units.TransferTime(b, bw, x.link.Setup+x.pool.ExtraLatency())
	default: // DDR (and HBM staging, which is free of host-link cost)
		bw := x.link.BW
		if x.pool.DDRBW > 0 && x.pool.DDRBW < bw {
			bw = x.pool.DDRBW
		}
		return units.TransferTime(b, bw, x.link.Setup)
	}
}

// HostToGPU schedules a b-byte upload from the given host tier onto the
// GPU link, requested at virtual time `at`. It returns the transfer's
// start and finish times; the link is occupied for the whole interval.
func (x *XferEngine) HostToGPU(from Tier, b units.Bytes, at units.Seconds) (start, finish units.Seconds) {
	cost := x.xferCost(from, b)
	x.mu.Lock()
	defer x.mu.Unlock()
	start = at
	if x.linkFree > start {
		start = x.linkFree
	}
	finish = start + cost
	x.linkFree = finish
	x.transfers++
	x.linkBusy += cost
	x.linkBytes += b
	return start, finish
}

// HostCopy charges a b-byte DDR↔CXL migration (no GPU-link occupancy)
// and returns its duration at the pool's interleaved bandwidth.
func (x *XferEngine) HostCopy(b units.Bytes) units.Seconds {
	bw := x.pool.TransferBW(b)
	if x.pool.Empty() {
		bw = x.pool.DDRBW
	}
	d := units.TransferTime(b, bw, x.pool.ExtraLatency())
	x.mu.Lock()
	x.hostCopies++
	x.hostCopyTime += d
	x.hostCopyBytes += b
	x.mu.Unlock()
	return d
}

// LinkFree returns the virtual time at which the GPU link next frees.
func (x *XferEngine) LinkFree() units.Seconds {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.linkFree
}

// Reset rewinds the virtual link clock to zero, keeping the cumulative
// traffic counters. Each engine pass schedules from a fresh origin.
func (x *XferEngine) Reset() {
	x.mu.Lock()
	x.linkFree = 0
	x.mu.Unlock()
}

// XferStats is the engine's cumulative traffic accounting.
type XferStats struct {
	Transfers     uint64
	LinkBusy      units.Seconds
	LinkBytes     units.Bytes
	HostCopies    uint64
	HostCopyTime  units.Seconds
	HostCopyBytes units.Bytes
}

// Stats returns the cumulative transfer accounting.
func (x *XferEngine) Stats() XferStats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return XferStats{
		Transfers: x.transfers, LinkBusy: x.linkBusy, LinkBytes: x.linkBytes,
		HostCopies: x.hostCopies, HostCopyTime: x.hostCopyTime, HostCopyBytes: x.hostCopyBytes,
	}
}
