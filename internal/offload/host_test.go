package offload

import (
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// closeEnough is a relative-error check for virtual-clock identities.
func closeEnough(a, b units.Seconds, rel float64) bool {
	fa, fb := float64(a), float64(b)
	if fa == fb {
		return true
	}
	den := math.Max(math.Abs(fa), math.Abs(fb))
	return math.Abs(fa-fb)/den <= rel
}

// newTinyHost builds a host over a tiny system, failing the test on any
// setup error.
func newTinyHost(t *testing.T, cfg model.Config, pinned, nCXL int, mutate func(*Config)) *Host {
	t.Helper()
	// Pinning a layer while keeping KV host-side needs kv > layer bytes,
	// which the tiny models only reach at longer contexts.
	ctx := 128
	if pinned > 0 {
		ctx = 256
	}
	sys := TinySystem(cfg, 1, ctx, pinned, nCXL)
	c := Config{System: sys, Model: cfg, Batch: 1, Context: ctx}
	if mutate != nil {
		mutate(&c)
	}
	plan, err := NewPlan(c)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(plan, core.FullGPU)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

// TestPrefetchOverlapComputeBound: on a fast link the stream of layer
// l+1 hides entirely under the compute of layer l (Optimization-2), so
// the makespan collapses to the first layer's stream plus all compute.
func TestPrefetchOverlapComputeBound(t *testing.T) {
	cfg := llm.TinyConfig()
	sys := TinySystem(cfg, 1, 128, 0, 0)
	sys.GPU.HostLink.BW = 100000 * units.GBps
	sys.GPU.HostLink.Setup = units.Seconds(1e-12)
	plan, err := NewPlan(Config{System: sys, Model: cfg, Batch: 1, Context: 128})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(plan, core.FullGPU)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	pt := h.SimulatePass(model.Decode, 1, 64)
	if pt.Stream <= 0 || pt.Compute <= 0 {
		t.Fatalf("degenerate pass: %+v", pt)
	}
	want := pt.Layers[0].StreamFinish + pt.Compute
	if !closeEnough(pt.Makespan, want, 1e-9) {
		t.Errorf("compute-bound makespan %v, want firstStream+compute %v", pt.Makespan, want)
	}
	if pt.Makespan >= pt.Stream+pt.Compute {
		t.Errorf("no overlap: makespan %v ≥ stream %v + compute %v", pt.Makespan, pt.Stream, pt.Compute)
	}
}

// TestPrefetchOverlapTransferBound: on a starved link the pipeline is
// link-limited — the makespan collapses to the full serial stream plus
// the last layer's compute.
func TestPrefetchOverlapTransferBound(t *testing.T) {
	cfg := llm.TinyConfig()
	sys := TinySystem(cfg, 1, 128, 0, 0)
	sys.GPU.HostLink.BW = 1 * units.MBps
	plan, err := NewPlan(Config{System: sys, Model: cfg, Batch: 1, Context: 128})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(plan, core.FullGPU)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	pt := h.SimulatePass(model.Decode, 1, 64)
	last := pt.Layers[len(pt.Layers)-1]
	lastCompute := last.ComputeFinish - last.ComputeStart
	want := pt.Stream + lastCompute
	if !closeEnough(pt.Makespan, want, 1e-9) {
		t.Errorf("transfer-bound makespan %v, want stream+lastCompute %v", pt.Makespan, want)
	}
}

// TestScheduleInvariants checks the double-buffer schedule's structural
// properties on both stages, with and without a pinned layer.
func TestScheduleInvariants(t *testing.T) {
	for _, pinned := range []int{0, 1} {
		h := newTinyHost(t, llm.TinyConfig(), pinned, 0, nil)
		for _, stage := range []model.Stage{model.Prefill, model.Decode} {
			rows := 5
			if stage == model.Decode {
				rows = 1
			}
			pt := h.SimulatePass(stage, rows, 32)
			var prev LayerTiming
			for i, lt := range pt.Layers {
				if lt.Pinned != (i < pinned) {
					t.Fatalf("layer %d pinned=%v, plan pins %d", i, lt.Pinned, pinned)
				}
				if lt.Pinned && lt.StreamFinish != lt.StreamStart {
					t.Errorf("pinned layer %d has stream time", i)
				}
				if lt.ComputeStart < lt.StreamFinish {
					t.Errorf("layer %d computes at %v before its stream finishes at %v", i, lt.ComputeStart, lt.StreamFinish)
				}
				if i > 0 {
					if lt.ComputeStart < prev.ComputeFinish {
						t.Errorf("layer %d compute overlaps layer %d", i, i-1)
					}
					if !lt.Pinned && !prev.Pinned && lt.StreamStart < prev.StreamFinish {
						t.Errorf("layer %d stream overlaps layer %d on the single link", i, i-1)
					}
				}
				prev = lt
			}
			if pt.Makespan != pt.Layers[len(pt.Layers)-1].ComputeFinish {
				t.Errorf("makespan %v ≠ last compute finish", pt.Makespan)
			}
		}
	}
}

// driveKV runs one decode-shaped hook pass against cache id, appending
// one position (past positions already present).
func driveKV(h *Host, id int64, past int) {
	ps := h.BeginPass(id, model.Decode, 1, past)
	for li := 0; li < h.plan.Cfg.Model.Layers; li++ {
		ps.LayerStart(li)
		ps.KVWrite(li, 1)
		ps.KVRead(li, past+1)
	}
	ps.EndPass()
}

// TestKVEvictionLRUOrder fills a two-page KV tier from three caches and
// checks that victims leave in least-recently-used order.
func TestKVEvictionLRUOrder(t *testing.T) {
	cfg := llm.TinyConfig()
	h := newTinyHost(t, cfg, 0, 0, func(c *Config) {
		c.PageTokens = 16
		// Shrink DDR to the hosted weights plus exactly two KV pages.
		var wb units.Bytes
		for _, s := range paramSublayers {
			wb += cfg.DataY(model.Prefill, s, 1, 1)
		}
		wb *= units.Bytes(cfg.Layers)
		page := cfg.KVBytes(1, c.PageTokens)
		c.System.CPU.DRAMCapacity = wb + 2*page + page/2
	})

	h.CacheCreated(1, 128)
	h.CacheCreated(2, 128)
	h.CacheCreated(3, 128)
	driveKV(h, 1, 0) // cache 1 allocates its first page
	driveKV(h, 2, 0) // cache 2 fills the tier
	driveKV(h, 1, 1) // touch cache 1: cache 2 is now coldest
	driveKV(h, 3, 0) // needs a page → evicts cache 2's
	if got := h.EvictLog(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("evict log %v, want [2]", got)
	}
	// Re-extending cache 2 must re-fetch its evicted page (one refetch)
	// and claim a second page, evicting the two coldest: 1 then 3.
	driveKV(h, 2, 16)
	want := []int64{2, 1, 3}
	got := h.EvictLog()
	if len(got) != len(want) {
		t.Fatalf("evict log %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("evict log %v, want %v", got, want)
		}
	}
	s := h.Snapshot()
	if s.KVEvictions != 3 || s.KVRefetches != 1 || s.KVSpills != 0 {
		t.Fatalf("eviction counters: %+v", s)
	}
	// Retiring a cache frees its pages; retiring twice is a no-op.
	h.CacheRetired(2)
	h.CacheRetired(2)
}

// TestKVSpillsToCXLBeforeEvicting: with expanders installed, the
// coldest page migrates to CXL (§6: cold KV is the spill class) instead
// of being dropped.
func TestKVSpillsToCXLBeforeEvicting(t *testing.T) {
	cfg := llm.TinyConfig()
	h := newTinyHost(t, cfg, 0, 1, func(c *Config) {
		c.PageTokens = 16
		var wb units.Bytes
		for _, s := range paramSublayers {
			wb += cfg.DataY(model.Prefill, s, 1, 1)
		}
		wb *= units.Bytes(cfg.Layers)
		page := cfg.KVBytes(1, c.PageTokens)
		c.System.CPU.DRAMCapacity = wb + page + page/2 // room for one page only
	})
	h.CacheCreated(1, 128)
	h.CacheCreated(2, 128)
	driveKV(h, 1, 0)
	driveKV(h, 2, 0) // pressure: cache 1's page spills to CXL
	s := h.Snapshot()
	if s.KVSpills != 1 || s.KVEvictions != 0 {
		t.Fatalf("want one spill and no evictions, got %+v", s)
	}
	if s.Tiers[CXL].Used == 0 || s.Tiers[CXL].BytesIn == 0 {
		t.Fatalf("spilled page not resident in CXL: %+v", s.Tiers[CXL])
	}
}

// TestHostCloseStopsWorker: after Close the prefetch worker is gone and
// the hooks still work (inline accounting).
func TestHostCloseStopsWorker(t *testing.T) {
	cfg := llm.TinyConfig()
	before := runtime.NumGoroutine()
	sys := TinySystem(cfg, 1, 256, 1, 0)
	plan, err := NewPlan(Config{System: sys, Model: cfg, Batch: 1, Context: 256})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(plan, core.FullGPU)
	if err != nil {
		t.Fatal(err)
	}
	m, err := llm.NewRandom(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	e := llm.NewExecutor(m, core.FullGPU)
	e.Mem = h
	if _, err := e.Generate([]int{5, 17, 42}, 4); err != nil {
		t.Fatal(err)
	}
	h.Close()
	h.Close() // idempotent
	for i := 0; i < 100 && runtime.NumGoroutine() > before; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked: %d before, %d after Close", before, got)
	}
	// Hooks after Close run their accounting inline.
	h.CacheCreated(99, 16)
	driveKV(h, 99, 0)
	if s := h.Snapshot(); s.Decodes == 0 {
		t.Fatal("post-Close pass not accounted")
	}
}

// TestHostSnapshotAndPrometheus: a hosted generate populates the tier
// counters, the pass clock, and the /metrics rendering.
func TestHostSnapshotAndPrometheus(t *testing.T) {
	cfg := llm.TinyConfig()
	h := newTinyHost(t, cfg, 1, 0, nil)
	m, err := llm.NewRandom(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	e := llm.NewExecutor(m, core.FullGPU)
	e.Mem = h
	if _, err := e.Generate([]int{5, 17, 42, 9, 63}, 6); err != nil {
		t.Fatal(err)
	}
	s := h.Snapshot()
	if s.Prefills != 1 || s.Decodes != 5 {
		t.Fatalf("pass counters: prefills=%d decodes=%d", s.Prefills, s.Decodes)
	}
	if s.LastPass.Makespan <= 0 || s.TotalMakespan < s.LastPass.Makespan {
		t.Fatalf("pass clock: %+v", s.LastPass)
	}
	if s.Tiers[HBM].Used == 0 || s.Tiers[DDR].Used == 0 {
		t.Fatalf("tier residency: %+v", s.Tiers)
	}
	if s.Tiers[DDR].Reads == 0 || s.Xfer.Transfers == 0 {
		t.Fatalf("traffic: ddr=%+v xfer=%+v", s.Tiers[DDR], s.Xfer)
	}
	if s.WeightPacks == 0 {
		t.Fatal("no weight packs observed")
	}
	prom := h.Prometheus()
	for _, want := range []string{
		`lia_offload_tier_used_bytes{tier="hbm"}`,
		`lia_offload_tier_reads_total{tier="ddr"}`,
		"lia_offload_kv_evictions_total",
		"lia_offload_link_transfers_total",
		"lia_offload_passes_decode_total 5",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
