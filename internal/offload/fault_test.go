package offload

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/units"
)

// TestLinkFaultIdentityMatchesAnalytic: an installed hook that always
// reports a healthy link must leave every virtual timestamp exactly
// where the analytic cost model puts it — same per-transfer cost, same
// serial occupancy, zero fault counts. The scenario lab depends on this:
// its baseline fault plan is the identity hook, and its cells are only
// comparable if "no fault" prices identically to "no hook".
func TestLinkFaultIdentityMatchesAnalytic(t *testing.T) {
	pool := cxl.FromSystem(hw.SPRA100.WithCXL(1, hw.SamsungCXL128))
	for _, from := range []Tier{DDR, CXL} {
		healthy := NewXferEngine(hw.PCIe4x16, pool)
		hooked := NewXferEngine(hw.PCIe4x16, pool)
		hooked.SetLinkFault(func(transfer uint64, from Tier, b units.Bytes) (float64, error) {
			return 1, nil
		})
		b := 48 * units.MiB
		for i := 0; i < 5; i++ {
			hs, hf := healthy.HostToGPU(from, b, 0)
			fs, ff := hooked.HostToGPU(from, b, 0)
			if hs != fs || hf != ff {
				t.Fatalf("%s transfer %d: identity hook moved the clock: healthy [%v,%v], hooked [%v,%v]",
					from, i, hs, hf, fs, ff)
			}
		}
		// The analytic cost is TransferTime over the effective bandwidth;
		// the virtual clock must agree within 5% (it is exact, but the
		// contract the harness relies on is the 5% bound the offload
		// differential suite already pins for streamed layers).
		want := healthy.TransferCost(from, b)
		got := hooked.Stats().LinkBusy / 5
		if rel := math.Abs(float64(got-want)) / float64(want); rel > 0.05 {
			t.Fatalf("%s: per-transfer occupancy %v vs analytic %v (%.2f%% off)", from, got, want, rel*100)
		}
		if st := hooked.Stats(); st.LinkFaults != 0 || st.LinkRetries != 0 {
			t.Fatalf("%s: identity hook injected faults: %+v", from, st)
		}
	}
}

// TestLinkFaultDegradationScalesBandwidth: a 0.5 bandwidth scale must
// double the bandwidth-dependent part of the transfer and leave the
// setup latency alone.
func TestLinkFaultDegradationScalesBandwidth(t *testing.T) {
	pool := cxl.FromSystem(hw.SPRA100)
	x := NewXferEngine(hw.PCIe4x16, pool)
	b := 64 * units.MiB
	healthy := x.TransferCost(DDR, b)
	x.SetLinkFault(func(uint64, Tier, units.Bytes) (float64, error) { return 0.5, nil })
	s, f := x.HostToGPU(DDR, b, 0)
	want := hw.PCIe4x16.Setup + 2*(healthy-hw.PCIe4x16.Setup)
	if got := f - s; math.Abs(float64(got-want)) > 1e-12 {
		t.Fatalf("degraded transfer cost %v, want setup + 2×payload = %v (healthy %v)", got, want, healthy)
	}
	if st := x.Stats(); st.LinkFaults != 0 {
		t.Fatalf("degradation is not a fault: %+v", st)
	}
}

// TestLinkFaultTransientErrorRetries: a hook error must charge one
// wasted attempt plus the retry (both at the hook's scale), count the
// fault and the retry, and keep later transfers queueing behind the
// inflated occupancy — the latency-tail mechanism the chaos cells
// measure.
func TestLinkFaultTransientErrorRetries(t *testing.T) {
	pool := cxl.FromSystem(hw.SPRA100)
	x := NewXferEngine(hw.PCIe4x16, pool)
	b := 16 * units.MiB
	healthy := x.TransferCost(DDR, b)
	// Every 3rd transfer faults at nominal bandwidth.
	x.SetLinkFault(func(n uint64, _ Tier, _ units.Bytes) (float64, error) {
		if n%3 == 0 {
			return 1, errors.New("cxl: transient expander fault")
		}
		return 1, nil
	})
	var finish units.Seconds
	for i := 0; i < 6; i++ {
		_, finish = x.HostToGPU(DDR, b, 0)
	}
	st := x.Stats()
	if st.LinkFaults != 2 || st.LinkRetries != 2 {
		t.Fatalf("6 transfers with every-3rd faulting: faults=%d retries=%d, want 2/2", st.LinkFaults, st.LinkRetries)
	}
	// 4 healthy + 2 doubled = 8 healthy costs of serial occupancy.
	if want := 8 * healthy; math.Abs(float64(finish-want)) > 1e-12 {
		t.Fatalf("link frees at %v, want %v", finish, want)
	}
	if st.Transfers != 6 || st.LinkBytes != 6*b {
		t.Fatalf("fault retries must not double-count transfers or bytes: %+v", st)
	}
}

// TestHostInjectLinkFault: the hook reaches a live Host's prefetch
// transfers — tokens stay bit-identical while the virtual link records
// the injected faults.
func TestHostInjectLinkFault(t *testing.T) {
	cfg := llm.TinyConfig()
	newHost := func() *Host {
		plan, err := NewPlan(Config{
			System:  TinySystem(cfg, 1, 256, 1, 0),
			Model:   cfg,
			Batch:   1,
			Context: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHost(plan, core.FullGPU)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	prompt := []int{5, 17, 42, 9}
	gen := func(h *Host, fault LinkFault) ([]int, XferStats) {
		defer h.Close()
		if fault != nil {
			h.InjectLinkFault(fault)
		}
		m, err := llm.NewRandom(cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		e := llm.NewExecutor(m, core.FullGPU)
		e.Mem = h
		out, err := e.Generate(prompt, 6)
		if err != nil {
			t.Fatal(err)
		}
		return out, h.XferStats()
	}
	base, baseStats := gen(newHost(), nil)
	faulted, faultStats := gen(newHost(), func(n uint64, _ Tier, _ units.Bytes) (float64, error) {
		if n%4 == 0 {
			return 0.5, fmt.Errorf("injected")
		}
		return 0.5, nil
	})
	if len(base) != len(faulted) {
		t.Fatalf("token counts diverge: %d vs %d", len(base), len(faulted))
	}
	for i := range base {
		if base[i] != faulted[i] {
			t.Fatalf("token %d diverges under link faults: %d vs %d", i, base[i], faulted[i])
		}
	}
	if faultStats.LinkFaults == 0 || faultStats.LinkRetries != faultStats.LinkFaults {
		t.Fatalf("injected faults not recorded: %+v", faultStats)
	}
	if faultStats.LinkBusy <= baseStats.LinkBusy {
		t.Fatalf("degraded link should be busier: %v vs healthy %v", faultStats.LinkBusy, baseStats.LinkBusy)
	}
}
