// Package offload is the functional tiered-memory runtime: it hosts the
// live engine's weights and KV cache across three simulated device tiers
// — GPU HBM, host DDR, and a CXL Type-3 pool — sized from the hw catalog
// and the memplan placement decisions, and accounts every access against
// a virtual clock whose transfer costs reuse the analytic link semantics
// (bytes over effective bandwidth plus setup; CXL reads at the pool's
// interleaved bandwidth with its extra load-to-use latency).
//
// The centrepiece is Host, an llm.MemHost implementation that runs the
// paper's §5 streaming schedule against real executor passes: layers
// pinned by Optimization-1 stay HBM-resident, streamed layers are
// double-buffered so layer l+1 prefetches while l computes
// (Optimization-2), and KV pages allocate and evict under the §6 policy
// (parameters→CXL, KV cache and activations→DDR). Hooks never alter the
// math — a hosted executor's tokens are bit-identical to a resident one's
// — but tokens, virtual timings, and admission all flow through the same
// tiered model the analytic engine evaluates, and the differential tests
// pin the two against each other.
package offload

import (
	"errors"
	"fmt"
	"sync"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/units"
)

// Tier identifies one simulated memory device.
type Tier int

// The three tiers of the §6 memory hierarchy.
const (
	// HBM is GPU device memory: pinned layers, staging buffers, and (for
	// small models) the KV cache.
	HBM Tier = iota
	// DDR is host CPU memory: KV cache and activations under the policy
	// placement, parameters when no CXL is installed.
	DDR
	// CXL is the interleaved expander pool: parameters under the §6
	// policy, spill target for cold KV pages.
	CXL

	numTiers
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case HBM:
		return "hbm"
	case DDR:
		return "ddr"
	case CXL:
		return "cxl"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// ErrTierFull reports an allocation that exceeds the tier's capacity.
var ErrTierFull = errors.New("offload: tier capacity exceeded")

// Allocation is one tier-hosted region. The manager tracks only sizes and
// access counts — the functional engine keeps the actual float data; the
// runtime makes its *placement* observable and chargeable.
type Allocation struct {
	tier  Tier
	class cxl.DataClass
	label string
	bytes units.Bytes
	freed bool
}

// Tier returns the allocation's current tier (Move changes it).
func (a *Allocation) Tier() Tier { return a.tier }

// Bytes returns the allocation's size.
func (a *Allocation) Bytes() units.Bytes { return a.bytes }

// Label returns the diagnostic label given at allocation.
func (a *Allocation) Label() string { return a.label }

// tierState is one tier's capacity accounting and traffic counters.
type tierState struct {
	capacity, used, peak    units.Bytes
	allocs, frees           uint64
	reads, writes           uint64
	bytesRead, bytesWritten units.Bytes
	bytesIn, bytesOut       units.Bytes // migration traffic (Move)
}

// Manager is the tiered device-memory manager: capacity bookkeeping and
// per-tier access accounting for HBM, DDR, and the CXL pool. All methods
// are safe for concurrent use — the prefetch worker and every executor
// fork charge it without further coordination.
type Manager struct {
	mu    sync.Mutex
	tiers [numTiers]tierState
}

// NewManager builds a manager with the given tier capacities.
func NewManager(hbm, ddr, cxlCap units.Bytes) *Manager {
	m := &Manager{}
	m.tiers[HBM].capacity = hbm
	m.tiers[DDR].capacity = ddr
	m.tiers[CXL].capacity = cxlCap
	return m
}

// Alloc reserves bytes in a tier. It fails with ErrTierFull when the tier
// cannot hold the allocation — the caller decides whether that means
// spill, evict, or refuse admission.
func (m *Manager) Alloc(t Tier, class cxl.DataClass, label string, b units.Bytes) (*Allocation, error) {
	if b < 0 {
		return nil, fmt.Errorf("offload: negative allocation %v (%s)", b, label)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := &m.tiers[t]
	if ts.used+b > ts.capacity {
		return nil, fmt.Errorf("%w: %s cannot hold %s for %s (%s/%s used)",
			ErrTierFull, t, b, label, ts.used, ts.capacity)
	}
	ts.used += b
	ts.allocs++
	if ts.used > ts.peak {
		ts.peak = ts.used
	}
	return &Allocation{tier: t, class: class, label: label, bytes: b}, nil
}

// Free releases an allocation. Idempotent.
func (m *Manager) Free(a *Allocation) {
	if a == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if a.freed {
		return
	}
	a.freed = true
	ts := &m.tiers[a.tier]
	ts.used -= a.bytes
	ts.frees++
}

// Move migrates an allocation to another tier (the KV spill path),
// failing with ErrTierFull when the destination cannot hold it.
func (m *Manager) Move(a *Allocation, to Tier) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a.freed {
		return fmt.Errorf("offload: move of freed allocation %s", a.label)
	}
	if a.tier == to {
		return nil
	}
	dst := &m.tiers[to]
	if dst.used+a.bytes > dst.capacity {
		return fmt.Errorf("%w: %s cannot hold %s for %s", ErrTierFull, to, a.bytes, a.label)
	}
	src := &m.tiers[a.tier]
	src.used -= a.bytes
	src.bytesOut += a.bytes
	dst.used += a.bytes
	dst.bytesIn += a.bytes
	if dst.used > dst.peak {
		dst.peak = dst.used
	}
	a.tier = to
	return nil
}

// Read charges b bytes of read traffic against the allocation's tier.
func (m *Manager) Read(a *Allocation, b units.Bytes) { m.ReadTier(a.tier, b) }

// Write charges b bytes of write traffic against the allocation's tier.
func (m *Manager) Write(a *Allocation, b units.Bytes) { m.WriteTier(a.tier, b) }

// ReadTier charges b bytes of read traffic against a tier directly (for
// traffic spanning many allocations, like a whole KV cache scan).
func (m *Manager) ReadTier(t Tier, b units.Bytes) {
	m.mu.Lock()
	ts := &m.tiers[t]
	ts.reads++
	ts.bytesRead += b
	m.mu.Unlock()
}

// WriteTier charges b bytes of write traffic against a tier directly.
func (m *Manager) WriteTier(t Tier, b units.Bytes) {
	m.mu.Lock()
	ts := &m.tiers[t]
	ts.writes++
	ts.bytesWritten += b
	m.mu.Unlock()
}

// Used returns the tier's current residency.
func (m *Manager) Used(t Tier) units.Bytes {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tiers[t].used
}

// TierSnapshot is one tier's point-in-time accounting.
type TierSnapshot struct {
	Tier                    Tier
	Capacity, Used, Peak    units.Bytes
	Allocs, Frees           uint64
	Reads, Writes           uint64
	BytesRead, BytesWritten units.Bytes
	BytesIn, BytesOut       units.Bytes
}

// Snapshot returns all three tiers' accounting, HBM/DDR/CXL order.
func (m *Manager) Snapshot() []TierSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TierSnapshot, numTiers)
	for t := Tier(0); t < numTiers; t++ {
		ts := m.tiers[t]
		out[t] = TierSnapshot{
			Tier: t, Capacity: ts.capacity, Used: ts.used, Peak: ts.peak,
			Allocs: ts.allocs, Frees: ts.frees, Reads: ts.reads, Writes: ts.writes,
			BytesRead: ts.bytesRead, BytesWritten: ts.bytesWritten,
			BytesIn: ts.bytesIn, BytesOut: ts.bytesOut,
		}
	}
	return out
}
