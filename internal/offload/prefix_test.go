package offload

import (
	"testing"

	"github.com/lia-sim/lia/internal/kvprefix"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/units"
)

// The store must satisfy the prefix cache's spill interface structurally.
var _ kvprefix.Spiller = (*PrefixStore)(nil)

func TestPrefixStoreTierSelection(t *testing.T) {
	cfg := llm.TinyConfig()
	if got := newTinyHost(t, cfg, 0, 0, nil).PrefixStore().Tier(); got != DDR {
		t.Fatalf("expander-less system spills to %v, want DDR", got)
	}
	if got := newTinyHost(t, cfg, 0, 2, nil).PrefixStore().Tier(); got != CXL {
		t.Fatalf("expander system spills to %v, want CXL", got)
	}
}

func TestPrefixStoreSpillAccounting(t *testing.T) {
	h := newTinyHost(t, llm.TinyConfig(), 0, 2, nil)
	ps := h.PrefixStore()
	before := h.mgr.Used(ps.Tier())

	release, ok := ps.Spill("prefix-node-1", 512)
	if !ok {
		t.Fatal("spill into an empty tier refused")
	}
	if got := h.mgr.Used(ps.Tier()); got != before+512 {
		t.Fatalf("cold tier holds %v after spill, want %v", got, before+512)
	}
	release()
	if got := h.mgr.Used(ps.Tier()); got != before {
		t.Fatalf("cold tier holds %v after release, want %v", got, before)
	}

	// A spill exceeding the tier's capacity is refused, not an error.
	huge := units.Bytes(1e15)
	if _, ok := ps.Spill("prefix-node-2", huge); ok {
		t.Fatal("oversized spill accepted")
	}
}
