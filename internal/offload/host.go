package offload

import (
	"fmt"
	"strings"
	"sync"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// paramSublayers are the four weight-carrying decoder sublayers — the
// unit of streaming granularity (each is one transfer with its own link
// setup, matching the analytic engine's per-sublayer D_Y loads).
var paramSublayers = [...]model.Sublayer{model.QKVMapping, model.OutProjection, model.FC1, model.FC2}

// prefetchTicket is one outstanding layer prefetch travelling from the
// pass goroutine to the streaming worker.
type prefetchTicket struct {
	li   int
	done chan struct{}
}

// LayerTiming is one layer's slot in a pass's virtual-clock schedule.
type LayerTiming struct {
	Layer  int
	Pinned bool
	// StreamStart/StreamFinish bound the layer's parameter upload on the
	// shared link (zero-width for pinned layers).
	StreamStart, StreamFinish units.Seconds
	// ComputeStart/ComputeFinish bound the layer's compute, which waits
	// for both the previous layer's compute and this layer's stream.
	ComputeStart, ComputeFinish units.Seconds
}

// PassTiming is one forward pass's virtual-clock schedule under the §5
// double-buffered pipeline: stream of layer l+1 overlaps compute of l.
type PassTiming struct {
	Stage      model.Stage
	Rows, Past int
	// Makespan is the pass's end-to-end virtual time.
	Makespan units.Seconds
	// Stream and Compute are the per-layer durations summed (overlap
	// makes Makespan < Stream + Compute when the pipeline works).
	Stream, Compute units.Seconds
	Layers          []LayerTiming
}

// durKey memoizes per-layer compute durations by pass shape.
type durKey struct {
	stage  model.Stage
	rows   int
	past   int
	pinned bool
}

// Host hosts a live executor's weights and KV cache in the tiered
// runtime: it implements llm.MemHost, so every weight access, KV
// append, and layer boundary of the functional engine lands here. It
// never touches the data — tokens stay bit-identical — but it runs the
// paper's streaming schedule against those events: a real prefetch
// worker goroutine double-buffers streamed layers (Optimization-2), the
// virtual clock prices each pass, and the page table applies the §6 KV
// placement and eviction policy.
type Host struct {
	plan   *Plan
	mgr    *Manager
	xfer   *XferEngine
	env    core.Env
	policy core.Policy

	// weights and staging are immutable after NewHost: the prefetch
	// worker and executor forks read them without locking.
	weights         map[int]*Allocation
	staging         [2]*Allocation
	layerStreamCost units.Seconds

	mu                                       sync.Mutex
	pt                                       *pageTable
	durMemo                                  map[durKey]units.Seconds
	closed                                   bool
	weightPacks                              uint64
	prefills                                 uint64
	decodes                                  uint64
	lastPass                                 PassTiming
	totalStream, totalCompute, totalMakespan units.Seconds

	tickets chan *prefetchTicket
	wg      sync.WaitGroup
}

var _ llm.MemHost = (*Host)(nil)

// NewHost builds the tiered runtime for a plan and starts its prefetch
// worker (stop it with Close). policy is the compute placement the
// virtual clock prices layers under; the zero value is full-GPU.
func NewHost(plan *Plan, policy core.Policy) (*Host, error) {
	m := plan.Cfg.Model
	h := &Host{
		plan:    plan,
		mgr:     plan.Manager(),
		xfer:    NewXferEngine(plan.Link, plan.Pool),
		env:     core.NewEnvWithPlacement(plan.Cfg.System, m, plan.Cfg.Placement),
		policy:  policy,
		weights: make(map[int]*Allocation, m.Layers*len(paramSublayers)),
		durMemo: make(map[durKey]units.Seconds),
		tickets: make(chan *prefetchTicket, 256),
	}
	h.pt = newPageTable(plan, h.mgr)
	for li := 0; li < m.Layers; li++ {
		tier := plan.ParamTier
		if plan.Pinned(li) {
			tier = HBM
		}
		for _, s := range paramSublayers {
			b := plan.SublayerBytes(s)
			a, err := h.mgr.Alloc(tier, cxl.Parameters, fmt.Sprintf("w/l%d/%s", li, s), b)
			if err != nil {
				return nil, fmt.Errorf("offload: hosting weights: %w", err)
			}
			h.weights[weightKey(li, s)] = a
		}
	}
	for _, s := range paramSublayers {
		h.layerStreamCost += h.xfer.xferCost(plan.ParamTier, plan.SublayerBytes(s), 1)
	}
	if plan.StreamedLayers() > 0 {
		for i := range h.staging {
			a, err := h.mgr.Alloc(HBM, cxl.Parameters, fmt.Sprintf("stage/%d", i), plan.LayerBytes())
			if err != nil {
				return nil, fmt.Errorf("offload: staging buffers: %w", err)
			}
			h.staging[i] = a
		}
	}
	h.wg.Add(1)
	go h.worker()
	return h, nil
}

func weightKey(li int, s model.Sublayer) int { return li*model.NumSublayers + int(s) }

func (h *Host) weight(li int, s model.Sublayer) *Allocation {
	return h.weights[weightKey(li, s)]
}

// worker drains prefetch tickets. It takes only the manager's and the
// transfer engine's internal locks — never h.mu — so a pass goroutine
// blocked sending a ticket under h.mu always makes progress.
func (h *Host) worker() {
	defer h.wg.Done()
	for t := range h.tickets {
		h.prefetch(t)
	}
}

// prefetch performs one streamed layer's upload accounting: read each
// parameter sublayer from its host tier, occupy the link, land the bytes
// in the HBM staging slot.
func (h *Host) prefetch(t *prefetchTicket) {
	for _, s := range paramSublayers {
		if w := h.weight(t.li, s); w != nil {
			h.mgr.Read(w, w.Bytes())
			h.xfer.HostToGPU(w.Tier(), w.Bytes(), 0)
		}
	}
	if st := h.staging[t.li%2]; st != nil {
		h.mgr.Write(st, h.plan.LayerBytes())
	}
	close(t.done)
}

// issueLocked hands a prefetch to the worker (inline after Close).
// Callers hold h.mu.
func (h *Host) issueLocked(li int) *prefetchTicket {
	t := &prefetchTicket{li: li, done: make(chan struct{})}
	if h.closed {
		h.prefetch(t)
		return t
	}
	h.tickets <- t
	return t
}

// Close stops the prefetch worker and waits for it to drain. Hooks keep
// working afterwards with inline (synchronous) prefetch accounting.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	close(h.tickets)
	h.mu.Unlock()
	h.wg.Wait()
}

// CacheCreated implements llm.MemHost.
func (h *Host) CacheCreated(id int64, capRows int) {
	h.mu.Lock()
	h.pt.createCache(id, capRows)
	h.mu.Unlock()
}

// CacheRetired implements llm.MemHost.
func (h *Host) CacheRetired(id int64) {
	h.mu.Lock()
	h.pt.retireCache(id)
	h.mu.Unlock()
}

// BeginPass implements llm.MemHost.
func (h *Host) BeginPass(cacheID int64, stage model.Stage, rows, past int) llm.PassHooks {
	ps := &passState{
		h: h, cacheID: cacheID, stage: stage, rows: rows, past: past,
		pending: make(map[int]*prefetchTicket),
		timing: PassTiming{
			Stage: stage, Rows: rows, Past: past,
			Layers: make([]LayerTiming, h.plan.Cfg.Model.Layers),
		},
	}
	return ps
}

// computeDur returns one layer's compute duration (local memory + FLOPs,
// no link time) for a pass shape, memoized. Callers hold h.mu.
func (h *Host) computeDur(stage model.Stage, rows, past int, pinned bool) units.Seconds {
	key := durKey{stage, rows, past, pinned}
	if d, ok := h.durMemo[key]; ok {
		return d
	}
	l := rows
	if stage == model.Decode {
		l = past + rows
	}
	_, parts := core.LayerLatencyOpts(h.env, stage, h.policy, 1, l,
		core.Options{ParamsResident: pinned, KVOnGPU: h.plan.GPU.KVOnGPU})
	var d units.Seconds
	for _, br := range parts {
		d += br.Compute
	}
	h.durMemo[key] = d
	return d
}

// LayerStreamTime returns one streamed layer's parameter upload time on
// an idle link: four sublayer transfers, each paying the link setup (and
// the pool's extra latency when parameters live in CXL). The
// differential test pins this against the analytic engine's per-layer
// D_Y load within tolerance.
func (h *Host) LayerStreamTime() units.Seconds { return h.layerStreamCost }

// InjectLinkFault installs a transient link-fault hook on the host's
// transfer engine (nil removes it). Faults degrade and occasionally
// double the virtual time of prefetch transfers — the scheduled
// (notional) per-layer stream slots in PassTiming keep pricing the
// healthy link, so Snapshot().Xfer shows exactly how far the faulted
// link fell behind the plan. Tokens are never affected.
func (h *Host) InjectLinkFault(f LinkFault) { h.xfer.SetLinkFault(f) }

// XferStats exposes the host's cumulative link accounting (including
// injected faults and retries) without the full snapshot.
func (h *Host) XferStats() XferStats { return h.xfer.Stats() }

// SimulatePass prices one forward pass on the virtual clock without
// running the engine: the same double-buffered schedule the hooks build,
// from a cold pipeline. The overlap property tests drive this directly.
func (h *Host) SimulatePass(stage model.Stage, rows, past int) PassTiming {
	ps := &passState{
		h: h, stage: stage, rows: rows, past: past,
		timing: PassTiming{Stage: stage, Rows: rows, Past: past,
			Layers: make([]LayerTiming, h.plan.Cfg.Model.Layers)},
	}
	h.mu.Lock()
	for li := range ps.timing.Layers {
		ps.schedule(li)
	}
	h.mu.Unlock()
	ps.timing.Makespan = ps.computeFree
	return ps.timing
}

// KVBudget exposes the plan's KV capacity for gateway admission.
func (h *Host) KVBudget() units.Bytes { return h.plan.KVBudget() }

// Plan returns the host's resolved tier layout.
func (h *Host) Plan() *Plan { return h.plan }

// EvictLog returns the cache ids of evicted KV pages in eviction order.
func (h *Host) EvictLog() []int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int64, len(h.pt.evictLog))
	copy(out, h.pt.evictLog)
	return out
}

// HostSnapshot is the runtime's point-in-time accounting across tiers,
// link, KV policy, and pass clock.
type HostSnapshot struct {
	Tiers []TierSnapshot
	Xfer  XferStats

	KVSpills, KVEvictions, KVRefetches, KVOverflows uint64
	WeightPacks                                     uint64
	Prefills, Decodes                               uint64

	LastPass                                 PassTiming
	TotalStream, TotalCompute, TotalMakespan units.Seconds
}

// Snapshot returns the current accounting.
func (h *Host) Snapshot() HostSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HostSnapshot{
		Tiers:       h.mgr.Snapshot(),
		Xfer:        h.xfer.Stats(),
		KVSpills:    h.pt.spills,
		KVEvictions: h.pt.evictions,
		KVRefetches: h.pt.refetches,
		KVOverflows: h.pt.overflows,
		WeightPacks: h.weightPacks,
		Prefills:    h.prefills,
		Decodes:     h.decodes,
		LastPass:    h.lastPass,
		TotalStream: h.totalStream, TotalCompute: h.totalCompute, TotalMakespan: h.totalMakespan,
	}
}

// Prometheus renders the runtime's counters in Prometheus text format;
// the gateway appends it to its own /metrics page.
func (h *Host) Prometheus() string {
	s := h.Snapshot()
	var b strings.Builder
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	gauge("lia_offload_tier_capacity_bytes", "Installed capacity per memory tier.")
	for _, ts := range s.Tiers {
		fmt.Fprintf(&b, "lia_offload_tier_capacity_bytes{tier=%q} %d\n", ts.Tier, int64(ts.Capacity))
	}
	gauge("lia_offload_tier_used_bytes", "Current residency per memory tier.")
	for _, ts := range s.Tiers {
		fmt.Fprintf(&b, "lia_offload_tier_used_bytes{tier=%q} %d\n", ts.Tier, int64(ts.Used))
	}
	gauge("lia_offload_tier_peak_bytes", "Peak residency per memory tier.")
	for _, ts := range s.Tiers {
		fmt.Fprintf(&b, "lia_offload_tier_peak_bytes{tier=%q} %d\n", ts.Tier, int64(ts.Peak))
	}
	counterVec := func(name, help string, val func(TierSnapshot) uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, ts := range s.Tiers {
			fmt.Fprintf(&b, "%s{tier=%q} %d\n", name, ts.Tier, val(ts))
		}
	}
	counterVec("lia_offload_tier_reads_total", "Read accesses per tier.", func(t TierSnapshot) uint64 { return t.Reads })
	counterVec("lia_offload_tier_writes_total", "Write accesses per tier.", func(t TierSnapshot) uint64 { return t.Writes })
	counterVec("lia_offload_tier_read_bytes_total", "Bytes read per tier.", func(t TierSnapshot) uint64 { return uint64(t.BytesRead) })
	counterVec("lia_offload_tier_written_bytes_total", "Bytes written per tier.", func(t TierSnapshot) uint64 { return uint64(t.BytesWritten) })
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("lia_offload_kv_spills_total", "KV pages spilled from the KV tier to CXL.", s.KVSpills)
	counter("lia_offload_kv_evictions_total", "KV pages evicted from the tiered runtime.", s.KVEvictions)
	counter("lia_offload_kv_refetches_total", "Evicted KV pages re-fetched on later access.", s.KVRefetches)
	counter("lia_offload_weight_packs_total", "Weight pack (layout conversion) events.", s.WeightPacks)
	counter("lia_offload_link_transfers_total", "Host-to-GPU transfers on the virtual link.", s.Xfer.Transfers)
	counter("lia_offload_link_bytes_total", "Bytes moved host-to-GPU on the virtual link.", uint64(s.Xfer.LinkBytes))
	counter("lia_offload_passes_prefill_total", "Prefill passes priced by the virtual clock.", s.Prefills)
	counter("lia_offload_passes_decode_total", "Decode passes priced by the virtual clock.", s.Decodes)
	fmt.Fprintf(&b, "# HELP lia_offload_link_busy_seconds_total Virtual link occupancy.\n# TYPE lia_offload_link_busy_seconds_total counter\nlia_offload_link_busy_seconds_total %g\n", float64(s.Xfer.LinkBusy))
	return b.String()
}

// passState is one forward pass's hook receiver: it owns the pass's
// virtual-clock schedule and its prefetch lookahead. A single goroutine
// drives it (the executor contract), so only the shared host state it
// touches is locked.
type passState struct {
	h          *Host
	cacheID    int64
	stage      model.Stage
	rows, past int

	linkFree         units.Seconds
	computeFree      units.Seconds
	lastComputeStart units.Seconds
	timing           PassTiming
	pending          map[int]*prefetchTicket
}

var _ llm.PassHooks = (*passState)(nil)

// schedule places layer li on the pass's virtual clock. Callers hold
// h.mu (computeDur's memo).
func (ps *passState) schedule(li int) {
	h := ps.h
	pinned := h.plan.Pinned(li)
	lt := LayerTiming{Layer: li, Pinned: pinned}
	if !pinned {
		// Double buffering: the stream may start once the link frees and
		// the previous layer's compute has begun (its buffer is released).
		start := ps.linkFree
		if ps.lastComputeStart > start {
			start = ps.lastComputeStart
		}
		lt.StreamStart = start
		lt.StreamFinish = start + h.layerStreamCost
		ps.linkFree = lt.StreamFinish
		ps.timing.Stream += h.layerStreamCost
	}
	cs := ps.computeFree
	if !pinned && lt.StreamFinish > cs {
		cs = lt.StreamFinish
	}
	dur := h.computeDur(ps.stage, ps.rows, ps.past, pinned)
	lt.ComputeStart = cs
	lt.ComputeFinish = cs + dur
	ps.computeFree = lt.ComputeFinish
	ps.lastComputeStart = cs
	ps.timing.Compute += dur
	if li < len(ps.timing.Layers) {
		ps.timing.Layers[li] = lt
	}
}

// LayerStart implements llm.PassHooks: schedule the layer, launch the
// next streamed layer's prefetch, then wait for this layer's own
// prefetch — the synchronization point that makes Optimization-2's
// overlap real rather than notional.
func (ps *passState) LayerStart(li int) {
	h := ps.h
	var wait *prefetchTicket
	h.mu.Lock()
	ps.schedule(li)
	if !h.plan.Pinned(li) {
		if t, ok := ps.pending[li]; ok {
			wait = t
			delete(ps.pending, li)
		} else {
			wait = h.issueLocked(li)
		}
	}
	if nl := li + 1; nl < h.plan.Cfg.Model.Layers && !h.plan.Pinned(nl) {
		if _, ok := ps.pending[nl]; !ok {
			ps.pending[nl] = h.issueLocked(nl)
		}
	}
	h.mu.Unlock()
	if wait != nil {
		<-wait.done
	}
}

// WeightPacked implements llm.PassHooks: a one-time layout conversion
// writes the packed copy beside the source weights.
func (ps *passState) WeightPacked(li int, s model.Sublayer) {
	h := ps.h
	h.mu.Lock()
	h.weightPacks++
	h.mu.Unlock()
	if w := h.weight(li, s); w != nil {
		h.mgr.Write(w, w.Bytes())
	}
}

// WeightAccess implements llm.PassHooks: compute reads the staged HBM
// copy for streamed layers, the resident allocation for pinned ones.
func (ps *passState) WeightAccess(li int, s model.Sublayer) {
	h := ps.h
	w := h.weight(li, s)
	if w == nil {
		return
	}
	if h.plan.Pinned(li) {
		h.mgr.Read(w, w.Bytes())
	} else {
		h.mgr.ReadTier(HBM, w.Bytes())
	}
}

// KVWrite implements llm.PassHooks: grow the cache's page set at the
// first layer (pages span all layers), then charge the append.
func (ps *passState) KVWrite(li, rows int) {
	h := ps.h
	if li == 0 {
		h.mu.Lock()
		_ = h.pt.ensure(ps.cacheID, ps.past+ps.rows) // overflow is counted, not fatal
		h.mu.Unlock()
	}
	h.mgr.WriteTier(h.plan.KVTier, h.plan.Cfg.Model.KVBytesPerLayer(1, rows))
}

// KVRead implements llm.PassHooks: touch the cache MRU at the first
// layer, charge the attention scan.
func (ps *passState) KVRead(li, rows int) {
	h := ps.h
	if li == 0 {
		h.mu.Lock()
		h.pt.touch(ps.cacheID)
		h.mu.Unlock()
	}
	h.mgr.ReadTier(h.plan.KVTier, h.plan.Cfg.Model.KVBytesPerLayer(1, rows))
}

// EndPass implements llm.PassHooks: seal the pass's schedule into the
// host totals.
func (ps *passState) EndPass() {
	ps.timing.Makespan = ps.computeFree
	h := ps.h
	h.mu.Lock()
	if ps.stage == model.Prefill {
		h.prefills++
	} else {
		h.decodes++
	}
	h.lastPass = ps.timing
	h.totalStream += ps.timing.Stream
	h.totalCompute += ps.timing.Compute
	h.totalMakespan += ps.timing.Makespan
	h.mu.Unlock()
}
