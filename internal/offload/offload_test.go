package offload

import (
	"errors"
	"strings"
	"testing"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

func TestManagerAllocFreeMove(t *testing.T) {
	m := NewManager(10*units.MiB, 20*units.MiB, 30*units.MiB)
	a, err := m.Alloc(HBM, cxl.Parameters, "w", 6*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tier() != HBM || a.Bytes() != 6*units.MiB {
		t.Fatalf("allocation = %s %s", a.Tier(), a.Bytes())
	}
	if _, err := m.Alloc(HBM, cxl.Parameters, "too big", 5*units.MiB); !errors.Is(err, ErrTierFull) {
		t.Fatalf("overcommit: want ErrTierFull, got %v", err)
	}
	// A different tier is unaffected by HBM pressure.
	b, err := m.Alloc(DDR, cxl.KVCache, "kv", 5*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Move(b, CXL); err != nil {
		t.Fatal(err)
	}
	if b.Tier() != CXL || m.Used(DDR) != 0 || m.Used(CXL) != 5*units.MiB {
		t.Fatalf("move accounting wrong: tier=%s ddr=%s cxl=%s", b.Tier(), m.Used(DDR), m.Used(CXL))
	}
	m.Free(b)
	m.Free(b) // idempotent
	if m.Used(CXL) != 0 {
		t.Fatalf("free accounting wrong: %s", m.Used(CXL))
	}
	if err := m.Move(b, DDR); err == nil {
		t.Fatal("moving a freed allocation should fail")
	}
	m.Read(a, units.MiB)
	m.Write(a, 2*units.MiB)
	snap := m.Snapshot()
	hbm := snap[HBM]
	if hbm.Reads != 1 || hbm.Writes != 1 || hbm.BytesRead != units.MiB || hbm.BytesWritten != 2*units.MiB {
		t.Fatalf("traffic counters: %+v", hbm)
	}
	if hbm.Peak != 6*units.MiB || snap[CXL].BytesIn != 5*units.MiB {
		t.Fatalf("peak/migration counters: hbm=%+v cxl=%+v", hbm, snap[CXL])
	}
}

func TestXferEngineSerializesLink(t *testing.T) {
	x := NewXferEngine(hw.PCIe4x16, cxl.Pool{DDRBW: 260 * units.GBps})
	b := 32 * units.MiB
	s1, f1 := x.HostToGPU(DDR, b, 0)
	s2, f2 := x.HostToGPU(DDR, b, 0)
	if s1 != 0 {
		t.Fatalf("first transfer should start immediately, got %v", s1)
	}
	if s2 != f1 {
		t.Fatalf("second transfer must wait for the link: start %v, first finished %v", s2, f1)
	}
	want := units.TransferTime(b, hw.PCIe4x16.BW, hw.PCIe4x16.Setup)
	if got := f1 - s1; got != want {
		t.Fatalf("DDR transfer cost %v, want %v", got, want)
	}
	if f2-s2 != want {
		t.Fatalf("costs should be identical, got %v", f2-s2)
	}
	st := x.Stats()
	if st.Transfers != 2 || st.LinkBytes != 2*b || st.LinkBusy != 2*want {
		t.Fatalf("stats: %+v", st)
	}
	x.Reset()
	if x.LinkFree() != 0 {
		t.Fatal("Reset should rewind the link clock")
	}
}

func TestXferEngineCXLSlowerThanDDR(t *testing.T) {
	// One 17 GB/s expander behind a 32 GB/s link: the pool is the
	// bottleneck (Observation-1 in reverse), so a CXL-sourced transfer
	// must cost more than the same bytes from DDR.
	pool := cxl.FromSystem(hw.SPRA100.WithCXL(1, hw.SamsungCXL128))
	x := NewXferEngine(hw.PCIe4x16, pool)
	b := 256 * units.MiB
	ddr := x.xferCost(DDR, b, 1)
	cx := x.xferCost(CXL, b, 1)
	if cx <= ddr {
		t.Fatalf("CXL transfer %v should exceed DDR transfer %v", cx, ddr)
	}
	if d := x.HostCopy(b); d <= 0 {
		t.Fatalf("host copy duration %v", d)
	}
	if st := x.Stats(); st.HostCopies != 1 || st.HostCopyBytes != b {
		t.Fatalf("host copy stats: %+v", st)
	}
}

func TestNewPlanTinySystemPinsExactly(t *testing.T) {
	for _, tc := range []struct {
		cfg    model.Config
		ctx    int
		pinned int
	}{
		{llm.TinyConfig(), 128, 0},
		// Pinning with host-side KV needs kv > layer: ctx 256 for tiny-opt.
		{llm.TinyConfig(), 256, 1},
		{llm.TinyLlamaConfig(), 128, 0},
	} {
		sys := TinySystem(tc.cfg, 1, tc.ctx, tc.pinned, 0)
		plan, err := NewPlan(Config{System: sys, Model: tc.cfg, Batch: 1, Context: tc.ctx})
		if err != nil {
			t.Fatalf("%s pinned=%d: %v", tc.cfg.Name, tc.pinned, err)
		}
		if plan.GPU.PinnedLayers != tc.pinned {
			t.Errorf("%s: pinned %d layers, want %d (%s)", tc.cfg.Name, plan.GPU.PinnedLayers, tc.pinned, plan.GPU)
		}
		if plan.GPU.KVOnGPU {
			t.Errorf("%s: KV must stay host-side on the tiny system", tc.cfg.Name)
		}
		if plan.ParamTier != DDR || plan.KVTier != DDR {
			t.Errorf("%s: DDR-only system must host everything in DDR, got params→%s kv→%s",
				tc.cfg.Name, plan.ParamTier, plan.KVTier)
		}
		if plan.KVBudget() <= 0 {
			t.Errorf("%s: KV budget %s", tc.cfg.Name, plan.KVBudget())
		}
	}
}

func TestNewPlanPolicyPlacementTiers(t *testing.T) {
	cfg := llm.TinyConfig()
	sys := TinySystem(cfg, 1, 128, 0, 2)
	plan, err := NewPlan(Config{System: sys, Model: cfg, Batch: 1, Context: 128, Placement: cxl.PolicyPlacement()})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ParamTier != CXL {
		t.Errorf("§6 policy must place parameters in CXL, got %s", plan.ParamTier)
	}
	if plan.KVTier != DDR || plan.ActTier != DDR {
		t.Errorf("§6 policy must keep KV and activations in DDR, got %s/%s", plan.KVTier, plan.ActTier)
	}
	if !strings.Contains(plan.String(), "params→cxl") {
		t.Errorf("plan string: %s", plan)
	}
}

func TestNewPlanRejectsCXLPlacementWithoutExpanders(t *testing.T) {
	cfg := llm.TinyConfig()
	sys := TinySystem(cfg, 1, 128, 0, 0)
	if _, err := NewPlan(Config{System: sys, Model: cfg, Placement: cxl.PolicyPlacement()}); err == nil {
		t.Fatal("CXL placement without expanders must fail")
	}
}
