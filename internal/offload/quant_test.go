package offload

import (
	"testing"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/model"
)

// The offload runtime's traffic accounting reads the model config's
// parameter-byte accessors, so a compressed variant shrinks per-layer
// streaming bytes — and with it every transfer the manager prices.
func TestCompressedVariantsShrinkStreamedBytes(t *testing.T) {
	dense := model.OPT30B
	sys := hw30B(t)

	mk := func(m model.Config) *Plan {
		t.Helper()
		plan, err := NewPlan(Config{System: sys, Model: m, Batch: 1, Context: 2016})
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	dp := mk(dense)
	sp := mk(dense.SparseVariant(0.5))
	ip := mk(dense.Int4LUTVariant(0))

	if sp.LayerBytes() != dp.LayerBytes()/2 {
		t.Errorf("sparse layer bytes %v, want half of dense %v", sp.LayerBytes(), dp.LayerBytes())
	}
	if ip.LayerBytes() >= sp.LayerBytes() {
		t.Errorf("int4 layer bytes %v not below sparse %v", ip.LayerBytes(), sp.LayerBytes())
	}
	for _, s := range []model.Sublayer{model.QKVMapping, model.FC1} {
		if sp.SublayerBytes(s) != dp.SublayerBytes(s)/2 {
			t.Errorf("%s: sparse sublayer bytes %v, want half of %v", s, sp.SublayerBytes(s), dp.SublayerBytes(s))
		}
	}
	// Freed host memory flows to the KV budget: the compressed plans can
	// host at least as much KV as the dense one.
	if ip.KVBudget() < dp.KVBudget() {
		t.Errorf("int4 KV budget %v below dense %v", ip.KVBudget(), dp.KVBudget())
	}
}

// hw30B builds a host big enough for every OPT-30B variant so the plans
// differ only through the quant spec.
func hw30B(t *testing.T) hw.System {
	t.Helper()
	return TinySystem(model.OPT30B, 1, 2016, 4, 0)
}
