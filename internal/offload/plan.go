package offload

import (
	"fmt"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/memplan"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// Config describes the deployment an offload plan is built for: the
// platform, the model, the §6 placement policy, and the workload shape
// the tiers are sized against.
type Config struct {
	// System is the hardware platform (GPU HBM, host DDR, CXL expanders).
	System hw.System
	// Model is the hosted architecture.
	Model model.Config
	// Placement is the §6 policy deciding which data classes live in CXL.
	// The zero value keeps everything in DDR.
	Placement cxl.Placement
	// Batch and Context size the GPU pinning plan and the KV budget.
	// They default to 1 and 2048.
	Batch, Context int
	// PageTokens is the KV paging granularity in token positions (all
	// layers of PageTokens positions form one page). Defaults to 64.
	PageTokens int
}

func (c Config) withDefaults() Config {
	if c.Batch == 0 {
		c.Batch = 1
	}
	if c.Context == 0 {
		c.Context = 2048
	}
	if c.PageTokens == 0 {
		c.PageTokens = 64
	}
	return c
}

// Plan is the resolved tier layout: which layers pin in HBM
// (Optimization-1), which tier hosts streamed parameters and which hosts
// the KV cache (§6 policy), and the KV paging shape.
type Plan struct {
	// Cfg is the defaulted configuration the plan was built from.
	Cfg Config
	// GPU is the Optimization-1 pinning decision.
	GPU memplan.GPUPlan
	// Host is the DDR/CXL split of host-resident state.
	Host memplan.HostPlan
	// Pool is the system's CXL pool (empty when no expanders).
	Pool cxl.Pool
	// Link is the host↔GPU interconnect.
	Link hw.LinkSpec
	// ParamTier hosts streamed (non-pinned) layer parameters.
	ParamTier Tier
	// KVTier hosts hot KV pages; cold pages spill from it toward CXL.
	KVTier Tier
	// ActTier hosts activation staging.
	ActTier Tier
	// PageBytes is one KV page: all layers × PageTokens positions at the
	// plan's batch size 1 (pages are per sequence).
	PageBytes units.Bytes
}

// NewPlan resolves a deployment into a tier layout. It fails when the
// inputs are degenerate (propagating memplan's validation) — notably a
// CXL placement on a system without expanders.
func NewPlan(cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	host, err := memplan.PlanHost(cfg.System, cfg.Model, cfg.Batch, cfg.Context, cfg.Placement)
	if err != nil {
		return nil, fmt.Errorf("offload: %w", err)
	}
	p := &Plan{
		Cfg:  cfg,
		GPU:  memplan.PlanLIAGPU(cfg.System.GPU, cfg.Model, cfg.Batch, cfg.Context),
		Host: host,
		Pool: cxl.FromSystem(cfg.System),
		Link: cfg.System.HostLink(),
	}
	tierFor := func(class cxl.DataClass) Tier {
		if !p.Pool.Empty() && cfg.Placement.Holds(class) {
			return CXL
		}
		return DDR
	}
	p.ParamTier = tierFor(cxl.Parameters)
	p.KVTier = tierFor(cxl.KVCache)
	p.ActTier = tierFor(cxl.Activations)
	p.PageBytes = cfg.Model.KVBytes(1, cfg.PageTokens)
	return p, nil
}

// Pinned reports whether layer li's parameters are HBM-resident.
func (p *Plan) Pinned(li int) bool { return li < p.GPU.PinnedLayers }

// StreamedLayers returns how many decoder layers stream per pass.
func (p *Plan) StreamedLayers() int { return p.Cfg.Model.Layers - p.GPU.PinnedLayers }

// LayerBytes returns one decoder layer's parameter bytes.
func (p *Plan) LayerBytes() units.Bytes { return p.Cfg.Model.LayerParamBytes() }

// SublayerBytes returns one layer's parameter bytes for sublayer s (zero
// for the parameter-free attention scores).
func (p *Plan) SublayerBytes(s model.Sublayer) units.Bytes {
	return p.Cfg.Model.DataY(model.Prefill, s, 1, 1)
}

// tierCapacity returns the installed capacity of a tier.
func (p *Plan) tierCapacity(t Tier) units.Bytes {
	switch t {
	case HBM:
		return p.Cfg.System.GPU.MemCapacity
	case DDR:
		return p.Cfg.System.CPU.DRAMCapacity
	default:
		return p.Pool.Capacity()
	}
}

// KVBudget returns the bytes available for KV pages in the KV tier after
// the other data classes assigned there are accounted — the number the
// gateway's admission control consults instead of a flat pool size.
func (p *Plan) KVBudget() units.Bytes {
	capacity := p.tierCapacity(p.KVTier)
	var other units.Bytes
	if p.ParamTier == p.KVTier {
		other += p.Cfg.Model.ParamBytes()
	}
	if p.ActTier == p.KVTier {
		other += p.Cfg.Model.ActivationBytes(p.Cfg.Batch, p.Cfg.Context, model.Prefill)
	}
	if other >= capacity {
		return 0
	}
	return capacity - other
}

// Manager builds the tier manager sized to the plan's system.
func (p *Plan) Manager() *Manager {
	return NewManager(p.tierCapacity(HBM), p.tierCapacity(DDR), p.tierCapacity(CXL))
}

// String summarizes the plan.
func (p *Plan) String() string {
	return fmt.Sprintf("offload plan: %d/%d layers pinned, params→%s, kv→%s, page %s, kv budget %s",
		p.GPU.PinnedLayers, p.Cfg.Model.Layers, p.ParamTier, p.KVTier, p.PageBytes, p.KVBudget())
}

// TinySystem builds a laptop-scale platform whose GPU capacity pins
// exactly `pinned` decoder layers of model m (with the KV cache staying
// host-side) at workload shape (b, ctx), and whose host side holds the
// model with room to spare. nCXL > 0 attaches that many small expanders.
// Because the planner places KV before pinning layers, pinned > 0 needs
// pinned·LayerParamBytes < KVBytes(b, ctx) — pick ctx accordingly.
// It exists for tests and the lia-serve demo: real systems come from the
// hw catalog.
func TinySystem(m model.Config, b, ctx, pinned, nCXL int) hw.System {
	layer := m.LayerParamBytes()
	kv := m.KVBytes(b, ctx)
	reserve := 2*layer + m.ActivationBytes(b, ctx, model.Prefill)
	// PlanLIAGPU pins floor(budget/layer) layers once the KV check fails,
	// so aim the post-reserve budget midway between pinned·layer and the
	// smaller of kv and (pinned+1)·layer. Requires pinned·layer < kv.
	hi := kv
	if lim := units.Bytes(pinned+1) * layer; lim < hi {
		hi = lim
	}
	budget := (units.Bytes(pinned)*layer + hi) / 2
	sys := hw.SPRA100
	sys.Name = fmt.Sprintf("tiny-%s", m.Name)
	sys.GPU.MemCapacity = reserve + budget
	sys.CPU.DRAMCapacity = 4 * (m.ParamBytes() + kv + reserve)
	if nCXL > 0 {
		exp := hw.SamsungCXL128
		exp.Capacity = 4 * m.ParamBytes()
		sys = sys.WithCXL(nCXL, exp)
	}
	return sys
}
