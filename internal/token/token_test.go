package token

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

const corpus = `the quick brown fox jumps over the lazy dog. the dog barks.
the fox runs. inference accelerates when the cache stays warm and the
parameters stay put. the the the fox fox fox.`

func trained(t *testing.T, vocab int) *Tokenizer {
	t.Helper()
	tok, err := Train(corpus, vocab)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train("abc", 100); err == nil {
		t.Error("vocab below 256 accepted")
	}
	if _, err := Train("", 512); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	tok := trained(t, 400)
	for _, s := range []string{
		"the quick brown fox",
		"unseen words entirely!",
		"UTF-8: héllo → 世界 ✓",
		"",
		"\x00\xff binary bytes \x7f",
	} {
		ids := tok.Encode(s)
		back, err := tok.Decode(ids)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if back != s {
			t.Fatalf("round trip broke: %q → %q", s, back)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	tok := trained(t, 320)
	f := func(raw []byte) bool {
		s := string(raw)
		back, err := tok.Decode(tok.Encode(s))
		return err == nil && back == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompression(t *testing.T) {
	tok := trained(t, 512)
	ids := tok.Encode(corpus)
	if len(ids) >= len(corpus) {
		t.Errorf("no compression: %d tokens for %d bytes", len(ids), len(corpus))
	}
	// Common corpus words compress well.
	the := tok.Encode("the the the")
	if len(the) >= len("the the the") {
		t.Errorf("'the' should merge: %d tokens", len(the))
	}
	if tok.VocabSize() <= 256 {
		t.Error("no merges learned")
	}
	if tok.VocabSize() > 512 {
		t.Errorf("vocab %d exceeds the cap", tok.VocabSize())
	}
}

func TestTrainingStopsWhenNoPairsRepeat(t *testing.T) {
	tok, err := Train("abcdefg", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if tok.VocabSize() != 256 {
		t.Errorf("vocab = %d, want 256 (nothing repeats)", tok.VocabSize())
	}
}

func TestDeterministicTraining(t *testing.T) {
	a := trained(t, 384)
	b := trained(t, 384)
	if a.VocabSize() != b.VocabSize() {
		t.Fatal("vocab sizes differ")
	}
	s := "the lazy dog accelerates"
	idsA, idsB := a.Encode(s), b.Encode(s)
	if len(idsA) != len(idsB) {
		t.Fatal("encodings differ")
	}
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatal("training is not deterministic")
		}
	}
}

func TestSaveLoad(t *testing.T) {
	tok := trained(t, 400)
	var buf bytes.Buffer
	if err := tok.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.VocabSize() != tok.VocabSize() {
		t.Fatalf("vocab %d vs %d", loaded.VocabSize(), tok.VocabSize())
	}
	s := "the quick brown fox jumps"
	a, b := tok.Encode(s), loaded.Encode(s)
	if len(a) != len(b) {
		t.Fatal("encodings differ after reload")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoding changed after reload")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not numbers\n")); err == nil {
		t.Error("garbage merges accepted")
	}
	if _, err := Load(strings.NewReader("999 1000\n")); err == nil {
		t.Error("forward-referencing merge accepted")
	}
}

func TestDecodeUnknownToken(t *testing.T) {
	tok := trained(t, 300)
	if _, err := tok.Decode([]int{tok.VocabSize() + 5}); err == nil {
		t.Error("unknown token accepted")
	}
	if _, err := tok.Decode([]int{-1}); err == nil {
		t.Error("negative token accepted")
	}
}
