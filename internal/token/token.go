// Package token implements a byte-level BPE tokenizer: the text
// front-end an LLM inference stack needs ahead of the decoder layers the
// paper models. Byte-level base vocabulary guarantees lossless round
// trips on arbitrary UTF-8; merges are learned with the standard BPE
// procedure (repeatedly fuse the most frequent adjacent pair).
package token

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// byteVocab is the base vocabulary: one token per byte value.
const byteVocab = 256

// pair is an adjacent token pair considered for merging.
type pair struct{ a, b int }

// Tokenizer holds learned merges over the byte base vocabulary.
type Tokenizer struct {
	// merges[i] fuses into token ID byteVocab+i.
	merges []pair
	// rank gives each merge's priority for encoding.
	rank map[pair]int
}

// Train learns a tokenizer from the corpus with at most vocabSize tokens
// (≥256; the first 256 are the raw bytes). Training stops early when no
// adjacent pair repeats.
func Train(corpus string, vocabSize int) (*Tokenizer, error) {
	if vocabSize < byteVocab {
		return nil, fmt.Errorf("token: vocab size %d below the %d byte base", vocabSize, byteVocab)
	}
	if len(corpus) == 0 {
		return nil, fmt.Errorf("token: empty corpus")
	}
	ids := bytesToIDs([]byte(corpus))
	t := &Tokenizer{rank: make(map[pair]int)}
	for len(t.merges) < vocabSize-byteVocab {
		best, count := mostFrequentPair(ids)
		if count < 2 {
			break
		}
		newID := byteVocab + len(t.merges)
		t.rank[best] = len(t.merges)
		t.merges = append(t.merges, best)
		ids = mergePair(ids, best, newID)
	}
	return t, nil
}

// VocabSize returns the number of token IDs the tokenizer can emit.
func (t *Tokenizer) VocabSize() int { return byteVocab + len(t.merges) }

// Encode converts text to token IDs by applying merges in rank order.
func (t *Tokenizer) Encode(s string) []int {
	ids := bytesToIDs([]byte(s))
	for len(ids) > 1 {
		// Find the present pair with the best (lowest) merge rank.
		bestRank := -1
		var best pair
		for i := 0; i+1 < len(ids); i++ {
			p := pair{ids[i], ids[i+1]}
			if r, ok := t.rank[p]; ok && (bestRank < 0 || r < bestRank) {
				bestRank = r
				best = p
			}
		}
		if bestRank < 0 {
			break
		}
		ids = mergePair(ids, best, byteVocab+bestRank)
	}
	return ids
}

// Decode converts token IDs back to text. Unknown IDs are an error.
func (t *Tokenizer) Decode(ids []int) (string, error) {
	var b strings.Builder
	for _, id := range ids {
		if err := t.expand(id, &b); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

// expand writes a token's byte expansion.
func (t *Tokenizer) expand(id int, b *strings.Builder) error {
	switch {
	case id >= 0 && id < byteVocab:
		b.WriteByte(byte(id))
		return nil
	case id >= byteVocab && id < byteVocab+len(t.merges):
		m := t.merges[id-byteVocab]
		if err := t.expand(m.a, b); err != nil {
			return err
		}
		return t.expand(m.b, b)
	default:
		return fmt.Errorf("token: unknown token ID %d (vocab %d)", id, t.VocabSize())
	}
}

// Save writes the merge table as "a b" lines.
func (t *Tokenizer) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range t.merges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", m.a, m.b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a merge table written by Save.
func Load(r io.Reader) (*Tokenizer, error) {
	t := &Tokenizer{rank: make(map[pair]int)}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var a, b int
		if _, err := fmt.Sscanf(line, "%d %d", &a, &b); err != nil {
			return nil, fmt.Errorf("token: bad merge line %q: %w", line, err)
		}
		limit := byteVocab + len(t.merges)
		if a < 0 || a >= limit || b < 0 || b >= limit {
			return nil, fmt.Errorf("token: merge %q references undefined token", line)
		}
		p := pair{a, b}
		t.rank[p] = len(t.merges)
		t.merges = append(t.merges, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// bytesToIDs maps raw bytes onto base token IDs.
func bytesToIDs(bs []byte) []int {
	ids := make([]int, len(bs))
	for i, b := range bs {
		ids[i] = int(b)
	}
	return ids
}

// mostFrequentPair returns the most frequent adjacent pair and its count,
// breaking ties deterministically toward the smaller pair.
func mostFrequentPair(ids []int) (pair, int) {
	counts := make(map[pair]int)
	for i := 0; i+1 < len(ids); i++ {
		counts[pair{ids[i], ids[i+1]}]++
	}
	keys := make([]pair, 0, len(counts))
	for p := range counts {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	if len(keys) == 0 {
		return pair{}, 0
	}
	return keys[0], counts[keys[0]]
}

// mergePair replaces every occurrence of p with newID (left to right,
// non-overlapping).
func mergePair(ids []int, p pair, newID int) []int {
	out := ids[:0:0]
	for i := 0; i < len(ids); {
		if i+1 < len(ids) && ids[i] == p.a && ids[i+1] == p.b {
			out = append(out, newID)
			i += 2
		} else {
			out = append(out, ids[i])
			i++
		}
	}
	return out
}
