package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("beta") // short row pads
	s := tab.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "alpha") {
		t.Errorf("missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), s)
	}
	// Columns align: header and row start at same offset.
	if strings.Index(lines[1], "value") != strings.Index(lines[3], "1") {
		t.Errorf("misaligned columns:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow(`x,"y`, "2")
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,""y"`) {
		t.Errorf("CSV escaping broken: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("missing header: %q", csv)
	}
}

func TestFigureSeriesLengthChecked(t *testing.T) {
	f := NewFigure("f", "x", "y", "32", "64")
	if err := f.Add("s", 1); err == nil {
		t.Error("short series accepted")
	}
	if err := f.Add("s", 1, 2); err != nil {
		t.Error(err)
	}
}

func TestFigureTableAndOOM(t *testing.T) {
	f := NewFigure("Throughput", "B", "tokens/s", "64", "900")
	f.Unit = "%.1f"
	f.MustAdd("LIA", 100, 300)
	f.MustAdd("DGX", 250, math.NaN())
	s := f.String()
	if !strings.Contains(s, "OOM") {
		t.Errorf("NaN should render as OOM:\n%s", s)
	}
	if !strings.Contains(s, "300.0") {
		t.Errorf("unit formatting broken:\n%s", s)
	}
	if !strings.Contains(f.CSV(), "LIA,DGX") {
		t.Errorf("CSV headers wrong:\n%s", f.CSV())
	}
}

func TestFigureRatio(t *testing.T) {
	f := NewFigure("f", "x", "y", "a", "b")
	f.MustAdd("num", 10, 20)
	f.MustAdd("den", 5, 0)
	if got := f.Ratio("num", "den", 0); got != 2 {
		t.Errorf("ratio = %v, want 2", got)
	}
	if got := f.Ratio("num", "den", 1); !math.IsNaN(got) {
		t.Errorf("division by zero should be NaN, got %v", got)
	}
	if got := f.Ratio("missing", "den", 0); !math.IsNaN(got) {
		t.Errorf("missing series should be NaN, got %v", got)
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewFigure("f", "x", "y", "only").MustAdd("bad", 1, 2)
}

func TestGantt(t *testing.T) {
	rows := []GanttRow{
		{Label: "xfer-0", Lane: "pcie", Start: 0, Finish: 2},
		{Label: "gpu-0", Lane: "gpu", Start: 2, Finish: 3},
		{Label: "xfer-1", Lane: "pcie", Start: 2, Finish: 4},
	}
	out := Gantt("demo", rows, 40)
	if !strings.Contains(out, "[pcie]") || !strings.Contains(out, "[gpu]") {
		t.Errorf("missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("no bars:\n%s", out)
	}
	// The later transfer's bar starts after the first one's.
	lines := strings.Split(out, "\n")
	var first, second string
	for _, l := range lines {
		if strings.Contains(l, "xfer-0") {
			first = l
		}
		if strings.Contains(l, "xfer-1") {
			second = l
		}
	}
	if strings.Index(first, "#") >= strings.Index(second, "#") {
		t.Errorf("bars not ordered in time:\n%s", out)
	}
	// Degenerate inputs do not panic.
	_ = Gantt("empty", nil, 5)
	_ = Gantt("zero", []GanttRow{{Label: "x", Lane: "l"}}, 30)
}

func TestMarkdown(t *testing.T) {
	tab := NewTable("Cap", "a", "b")
	tab.AddRow("x|y", "2")
	md := tab.Markdown()
	if !strings.Contains(md, "**Cap**") || !strings.Contains(md, "| --- | --- |") {
		t.Errorf("markdown structure wrong:\n%s", md)
	}
	if !strings.Contains(md, `x\|y`) {
		t.Errorf("pipe not escaped:\n%s", md)
	}
	f := NewFigure("F", "x", "y", "t1")
	f.MustAdd("s", 1)
	if !strings.Contains(f.Markdown(), "| x | s |") {
		t.Errorf("figure markdown wrong:\n%s", f.Markdown())
	}
}
