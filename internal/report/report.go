// Package report renders experiment results as aligned ASCII tables and
// CSV — the output format of cmd/lia-bench and the examples. A Table is a
// titled grid; a Figure is a set of named series over a shared x-axis
// (what the paper draws as bar groups or lines).
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	// Title is printed above the grid.
	Title string
	// Headers label the columns.
	Headers []string
	// Rows holds the data cells.
	Rows [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded, long rows truncated to the
// header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the aligned ASCII grid.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the grid as comma-separated values (headers first).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Series is one named line/bar group of a figure.
type Series struct {
	// Name labels the series (e.g. "LIA", "FlexGen").
	Name string
	// Values align with the figure's X ticks; NaN marks missing points
	// (rendered as "OOM" per the paper's convention).
	Values []float64
}

// Figure is a set of series over shared x-axis ticks.
type Figure struct {
	// Title and axis labels.
	Title, XLabel, YLabel string
	// XTicks label the shared x positions.
	XTicks []string
	// Series holds the data.
	Series []Series
	// Unit formats values (e.g. "%.2f"); empty means "%.3g".
	Unit string
}

// NewFigure creates a figure.
func NewFigure(title, xlabel, ylabel string, xticks ...string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel, XTicks: xticks}
}

// Add appends a series; its length must match the tick count.
func (f *Figure) Add(name string, values ...float64) error {
	if len(values) != len(f.XTicks) {
		return fmt.Errorf("report: series %q has %d values for %d ticks", name, len(values), len(f.XTicks))
	}
	f.Series = append(f.Series, Series{Name: name, Values: values})
	return nil
}

// MustAdd is Add for programmatic construction.
func (f *Figure) MustAdd(name string, values ...float64) {
	if err := f.Add(name, values...); err != nil {
		panic(err)
	}
}

// format renders one value, using "OOM" for NaN.
func (f *Figure) format(v float64) string {
	if v != v {
		return "OOM"
	}
	unit := f.Unit
	if unit == "" {
		unit = "%.3g"
	}
	return fmt.Sprintf(unit, v)
}

// Table converts the figure into a Table (ticks down the rows, one column
// per series).
func (f *Figure) Table() *Table {
	headers := append([]string{f.XLabel}, make([]string, len(f.Series))...)
	for i, s := range f.Series {
		headers[i+1] = s.Name
	}
	t := NewTable(fmt.Sprintf("%s [%s]", f.Title, f.YLabel), headers...)
	for xi, tick := range f.XTicks {
		row := make([]string, len(f.Series)+1)
		row[0] = tick
		for si, s := range f.Series {
			row[si+1] = f.format(s.Values[xi])
		}
		t.AddRow(row...)
	}
	return t
}

// String renders the figure through its table form.
func (f *Figure) String() string { return f.Table().String() }

// CSV renders the figure's table as CSV.
func (f *Figure) CSV() string { return f.Table().CSV() }

// Ratio returns series a's value divided by series b's at tick index i,
// or NaN when either is missing.
func (f *Figure) Ratio(a, b string, i int) float64 {
	av, bv := math.NaN(), math.NaN()
	for _, s := range f.Series {
		if s.Name == a && i < len(s.Values) {
			av = s.Values[i]
		}
		if s.Name == b && i < len(s.Values) {
			bv = s.Values[i]
		}
	}
	if av != av || bv != bv || bv == 0 {
		return math.NaN()
	}
	return av / bv
}

// GanttRow is one bar of an ASCII Gantt chart.
type GanttRow struct {
	// Label names the bar (task ID).
	Label string
	// Lane groups bars (resource name).
	Lane string
	// Start and Finish bound the bar in seconds.
	Start, Finish float64
}

// Gantt renders rows as an ASCII timeline grouped by lane, `width`
// characters across. Zero-length bars render as a single tick.
func Gantt(title string, rows []GanttRow, width int) string {
	if width < 20 {
		width = 20
	}
	var maxT float64
	for _, r := range rows {
		if r.Finish > maxT {
			maxT = r.Finish
		}
	}
	if maxT <= 0 {
		maxT = 1
	}
	lanes := []string{}
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Lane] {
			seen[r.Lane] = true
			lanes = append(lanes, r.Lane)
		}
	}
	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (0 .. %.4gs)\n", title, maxT)
	for _, lane := range lanes {
		fmt.Fprintf(&b, "[%s]\n", lane)
		for _, r := range rows {
			if r.Lane != lane {
				continue
			}
			start := int(r.Start / maxT * float64(width))
			end := int(r.Finish / maxT * float64(width))
			if end <= start {
				end = start + 1
			}
			if end > width {
				end = width
			}
			fmt.Fprintf(&b, "  %-*s |%s%s%s|\n", labelW, r.Label,
				strings.Repeat(" ", start),
				strings.Repeat("#", end-start),
				strings.Repeat(" ", width-end))
		}
	}
	return b.String()
}

// Markdown renders the grid as a GitHub-flavored markdown table (title as
// a bold caption line).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the figure's table as markdown.
func (f *Figure) Markdown() string { return f.Table().Markdown() }
