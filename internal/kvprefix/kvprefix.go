// Package kvprefix implements cross-request KV reuse: a radix (prefix)
// tree keyed on token IDs at KV-block granularity over the paged pool
// (internal/kvpage). Each node owns a whole number of blocks holding the
// K/V rows for its token span; a request whose prompt walks a path
// through the tree reuses those blocks — admission charges only the
// unshared suffix, and prefill (llm.PrefillFrom) skips the cached tokens
// entirely.
//
// Sharing rules:
//
//   - Branching is copy-on-write at the first divergent block: inserting
//     a prompt that diverges inside a node splits the node at the last
//     shared block boundary; both branches keep views into the original
//     (immutable) K/V storage, so no rows are copied.
//   - Nodes are refcounted by the sequences pinned to them. A pin lands
//     on the deepest matched node only; because eviction is leaf-first,
//     every ancestor on the path is protected transitively (it has a
//     descendant, so it is not a leaf). Eviction of a node is only legal
//     at refcount zero.
//   - Pool blocks are refcounted in kvpage: one reference for the tree's
//     ownership plus one per sequence sharing the block, so shared blocks
//     are counted once pool-wide.
//   - Cold nodes spill through the configured Spiller (the offload
//     runtime's DDR/CXL tiers) before they are evicted: a spilled node
//     releases its pool blocks but keeps its data and its place in the
//     tree, frozen — it cannot match lookups, split, or grow children
//     until Refetch re-charges pool blocks for it. The event log records
//     hits, misses, spills, evictions, and refetches.
//
// The tree is internally locked: the serving batcher mutates it from its
// single scheduling goroutine while /metrics readers snapshot Stats
// concurrently.
package kvprefix

import (
	"fmt"
	"sync"

	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/tensor"
	"github.com/lia-sim/lia/internal/units"
)

// Spiller moves a cold node's KV bytes to a colder memory tier. Spill
// reserves capacity there and returns a release closure (plus ok=false
// when the tier cannot hold the node, which turns the spill into a plain
// eviction). The offload Host's PrefixStore implements this.
type Spiller interface {
	Spill(label string, b units.Bytes) (release func(), ok bool)
}

// Exporter copies KV rows [from, to) of a freshly prefilled cache, one
// K and one V matrix per layer — the tree's insert path calls it to
// materialize new nodes (llm.Executor.ExportKV has this shape).
type Exporter func(from, to int) (k, v []tensor.Matrix, err error)

// Config sizes a tree.
type Config struct {
	// BlockTokens is the block granularity; must match the pool's.
	BlockTokens int
	// Layers is the model depth (validates exporter output).
	Layers int
	// Pool, when set, accounts cached blocks against the paged pool the
	// admission policy charges — the tree owns its blocks there via
	// AllocBlocks/ReleaseBlocks. When nil, the tree caps its residency at
	// MaxBlocks instead.
	Pool *kvpage.Manager
	// MaxBlocks bounds resident blocks when Pool is nil (default 1024).
	MaxBlocks int
	// BlockBytes is one block's KV footprint, used for spill accounting.
	// Defaults to the pool's per-token footprint × BlockTokens, or (pool-
	// less) 1 byte per token slot.
	BlockBytes units.Bytes
	// Spiller, when set, receives cold nodes before they would be evicted.
	Spiller Spiller
}

// EventKind labels one prefix-cache decision.
type EventKind uint8

// Prefix-cache events, in rough lifecycle order.
const (
	EventHit EventKind = iota
	EventMiss
	EventInsert
	EventSpill
	EventEvict
	EventRefetch
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventHit:
		return "hit"
	case EventMiss:
		return "miss"
	case EventInsert:
		return "insert"
	case EventSpill:
		return "spill"
	case EventEvict:
		return "evict"
	case EventRefetch:
		return "refetch"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one log entry: what happened and how many tokens it covered.
type Event struct {
	Kind   EventKind
	Tokens int
}

// maxLog bounds the event log (oldest entries drop).
const maxLog = 4096

// Stats is a point-in-time snapshot of the tree's counters and gauges.
type Stats struct {
	// Lookups partitions into Hits (≥1 block reused) and Misses.
	Lookups, Hits, Misses uint64
	// HitTokens counts prompt tokens served from cache; LookupTokens the
	// tokens looked up (hit rate = HitTokens/LookupTokens).
	HitTokens, LookupTokens uint64
	// Inserts counts node creations, InsertedBlocks their blocks, and
	// InsertSkips insertions abandoned (no capacity, or sub-block
	// divergence / frozen spilled node on the path).
	Inserts, InsertedBlocks, InsertSkips uint64
	// Evictions/Spills/Refetches count node transitions; the *Blocks
	// variants their block totals.
	Evictions, EvictedBlocks   uint64
	Spills, SpilledBlocks      uint64
	Refetches, RefetchedBlocks uint64
	// Nodes, ResidentBlocks, ColdNodes and PinnedNodes gauge the tree.
	Nodes, ResidentBlocks, ColdNodes, PinnedNodes int
}

// node is one radix-tree node: a whole number of blocks' worth of tokens
// plus their per-layer K/V rows.
type node struct {
	id       int
	parent   *node
	tokens   []int
	k, v     []tensor.Matrix // per layer, rows == len(tokens); immutable storage
	blocks   []int           // pool block IDs (nil when pool-less or spilled)
	children map[int]*node   // keyed by first token of each child
	refs     int             // pins on this node (deepest-match pins only)
	lastUse  uint64
	spilled  bool
	unspill  func() // releases the cold-tier reservation
}

// blockCount returns the node's span in blocks.
func (n *node) blockCount(blockTokens int) int { return len(n.tokens) / blockTokens }

// Tree is the radix prefix cache. All methods are safe for concurrent
// use; mutation is expected from one scheduling goroutine with Stats
// readers alongside.
type Tree struct {
	mu         sync.Mutex
	cfg        Config
	root       *node
	tick       uint64
	nextNodeID int
	nodes      int
	resident   int // blocks currently charged (pool or MaxBlocks cap)
	cold       int // spilled nodes
	pinned     int // nodes with refs > 0

	stats Stats
	log   []Event
}

// New builds an empty tree.
func New(cfg Config) (*Tree, error) {
	if cfg.BlockTokens < 1 {
		return nil, fmt.Errorf("kvprefix: block size %d must be ≥1 token", cfg.BlockTokens)
	}
	if cfg.Layers < 1 {
		return nil, fmt.Errorf("kvprefix: model depth %d must be ≥1", cfg.Layers)
	}
	if cfg.Pool != nil && cfg.Pool.BlockTokens() != cfg.BlockTokens {
		return nil, fmt.Errorf("kvprefix: block size %d does not match the pool's %d",
			cfg.BlockTokens, cfg.Pool.BlockTokens())
	}
	if cfg.Pool == nil && cfg.MaxBlocks <= 0 {
		cfg.MaxBlocks = 1024
	}
	if cfg.BlockBytes <= 0 {
		if cfg.Pool != nil {
			cfg.BlockBytes = cfg.Pool.BytesPerToken() * units.Bytes(cfg.BlockTokens)
		} else {
			cfg.BlockBytes = units.Bytes(cfg.BlockTokens)
		}
	}
	return &Tree{cfg: cfg, root: &node{children: map[int]*node{}}}, nil
}

// BlockTokens returns the tree's block granularity.
func (t *Tree) BlockTokens() int { return t.cfg.BlockTokens }

// seg is one matched node and how many of its leading blocks matched.
type seg struct {
	n      *node
	blocks int
}

// Match is a lookup result: the longest cached block-aligned prefix.
type Match struct {
	tokens int
	segs   []seg
}

// Tokens returns the matched prefix length.
func (m Match) Tokens() int { return m.tokens }

// Blocks returns the matched prefix length in blocks.
func (m Match) Blocks() int {
	b := 0
	for _, s := range m.segs {
		b += s.blocks
	}
	return b
}

// matchBlocks counts how many of n's leading blocks equal the prompt
// prefix, up to limit blocks. The prompt slice starts at n's first token.
func (t *Tree) matchBlocks(n *node, prompt []int, limit int) int {
	bt := t.cfg.BlockTokens
	nb := n.blockCount(bt)
	if nb > limit {
		nb = limit
	}
	j := 0
outer:
	for j < nb {
		base := j * bt
		for i := 0; i < bt; i++ {
			if n.tokens[base+i] != prompt[base+i] {
				break outer
			}
		}
		j++
	}
	return j
}

// lookupLocked walks the longest matching path. Matching is capped at
// the prompt's last-but-one token so a hit always leaves ≥1 suffix token
// to prefill (admission and PrefillFrom both require it), and stops at
// spilled (frozen) nodes — their data is cold and must be Refetched
// before it can serve a hit.
func (t *Tree) lookupLocked(prompt []int, touch bool) Match {
	bt := t.cfg.BlockTokens
	limitTok := ((len(prompt) - 1) / bt) * bt
	m := Match{}
	cur := t.root
	pos := 0
	for pos < limitTok {
		child, ok := cur.children[prompt[pos]]
		if !ok || child.spilled {
			break
		}
		j := t.matchBlocks(child, prompt[pos:], (limitTok-pos)/bt)
		if j == 0 {
			break
		}
		m.segs = append(m.segs, seg{n: child, blocks: j})
		pos += j * bt
		if touch {
			t.tick++
			child.lastUse = t.tick
		}
		if j < child.blockCount(bt) {
			break
		}
		cur = child
	}
	m.tokens = pos
	return m
}

// Lookup finds the longest cached block-aligned prefix of the prompt.
// It is read-only apart from recency and hit/miss accounting — no pool
// blocks move, so admission can call it freely before deciding.
func (t *Tree) Lookup(prompt []int) Match {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.lookupLocked(prompt, true)
	t.stats.Lookups++
	t.stats.LookupTokens += uint64(len(prompt))
	if m.tokens > 0 {
		t.stats.Hits++
		t.stats.HitTokens += uint64(m.tokens)
		t.logEvent(EventHit, m.tokens)
	} else {
		t.stats.Misses++
		t.logEvent(EventMiss, len(prompt))
	}
	return m
}

// Segment is one matched run of cached KV rows (one K and V per layer) —
// views into the tree's immutable storage, valid independently of later
// splits or evictions.
type Segment struct {
	K, V []tensor.Matrix
}

// segments captures row views for a match, eagerly (splits re-slice the
// node fields afterwards, but never the backing arrays).
func (t *Tree) segmentsLocked(m Match) []Segment {
	bt := t.cfg.BlockTokens
	out := make([]Segment, 0, len(m.segs))
	for _, s := range m.segs {
		rows := s.blocks * bt
		seg := Segment{K: make([]tensor.Matrix, len(s.n.k)), V: make([]tensor.Matrix, len(s.n.v))}
		for li := range s.n.k {
			seg.K[li] = rowsView(s.n.k[li], rows)
			seg.V[li] = rowsView(s.n.v[li], rows)
		}
		out = append(out, seg)
	}
	return out
}

// rowsView returns the first rows rows of m without copying.
func rowsView(m tensor.Matrix, rows int) tensor.Matrix {
	return tensor.FromSlice(rows, m.Cols, m.Data[:rows*m.Cols])
}

// Pin holds a match alive for one admitted sequence: the deepest matched
// node's refcount is raised (protecting the whole path, since eviction
// is leaf-first) and the matched block IDs and KV row views are captured
// eagerly, so later splits of the pinned node cannot skew them.
type Pin struct {
	tree   *Tree
	node   *node
	tokens int
	blocks []int
	segs   []Segment
	done   bool
}

// Pin pins a match. A zero match yields an inert pin (Release is a
// no-op), so callers need not special-case misses.
func (t *Tree) Pin(m Match) *Pin {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := &Pin{tree: t, tokens: m.tokens}
	if len(m.segs) == 0 {
		return p
	}
	deepest := m.segs[len(m.segs)-1].n
	if deepest.refs == 0 {
		t.pinned++
	}
	deepest.refs++
	p.node = deepest
	for _, s := range m.segs {
		p.blocks = append(p.blocks, s.n.blocks[:s.blocks]...)
	}
	p.segs = t.segmentsLocked(m)
	return p
}

// Tokens returns the pinned prefix length.
func (p *Pin) Tokens() int { return p.tokens }

// Blocks returns the pinned pool block IDs in prompt order (nil for a
// pool-less tree or a zero match).
func (p *Pin) Blocks() []int { return p.blocks }

// Segments returns the pinned KV rows, in prompt order.
func (p *Pin) Segments() []Segment { return p.segs }

// Release drops the pin. Idempotent.
func (p *Pin) Release() {
	if p.done {
		return
	}
	p.done = true
	if p.node == nil {
		return
	}
	p.tree.mu.Lock()
	defer p.tree.mu.Unlock()
	p.node.refs--
	if p.node.refs == 0 {
		p.tree.pinned--
	}
}

// Seed looks up the prompt and captures its matched KV rows in one call —
// the pool-less serving path, where nothing needs pinning because block
// accounting is internal to the tree.
func (t *Tree) Seed(prompt []int) ([]Segment, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.lookupLocked(prompt, true)
	return t.segmentsLocked(m), m.tokens
}

// freeLocked returns how many more blocks the tree may charge right now.
func (t *Tree) freeLocked() int {
	if t.cfg.Pool != nil {
		return t.cfg.Pool.FreeBlocks()
	}
	return t.cfg.MaxBlocks - t.resident
}

// Insert adds the prompt's uncached full blocks to the tree, pulling KV
// rows from the exporter (a freshly prefilled sequence cache). It is
// best-effort: under block pressure it evicts/spills cold unpinned
// leaves, and if capacity still cannot be found — or the insertion point
// is frozen (spilled) or diverges inside a block — the remainder is
// skipped and counted, never an error. Returns the number of blocks
// added.
func (t *Tree) Insert(prompt []int, export Exporter) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	bt := t.cfg.BlockTokens
	limitTok := (len(prompt) / bt) * bt
	cur := t.root
	pos := 0
	added := 0
	for pos < limitTok {
		child, ok := cur.children[prompt[pos]]
		if !ok {
			nb := (limitTok - pos) / bt
			n, err := t.newNodeLocked(cur, prompt[pos:limitTok], nb, export, pos)
			if err != nil {
				return added, err
			}
			if n == nil {
				t.stats.InsertSkips++
				return added, nil // no capacity — skip, don't fail
			}
			added += nb
			return added, nil
		}
		if child.spilled {
			// Frozen: cold nodes neither match nor split. The data is
			// already cached (cold); Refetch is the only way back.
			t.stats.InsertSkips++
			return added, nil
		}
		j := t.matchBlocks(child, prompt[pos:], (limitTok-pos)/bt)
		if j == 0 {
			// Same first token, divergence inside block 0: block-granular
			// COW cannot branch below a block boundary.
			t.stats.InsertSkips++
			return added, nil
		}
		if j == child.blockCount(bt) {
			pos += j * bt
			t.tick++
			child.lastUse = t.tick
			cur = child
			continue
		}
		// Diverged (or ran out of prompt) inside child at block j: split
		// so the shared prefix becomes its own node, then continue — the
		// next iteration descends into the new mid node.
		t.splitLocked(child, j)
		pos += j * bt
		t.tick++
		child.parent.lastUse = t.tick
		cur = child.parent
	}
	return added, nil
}

// newNodeLocked materializes a new leaf under parent covering tokens
// (nb full blocks starting at prompt offset promptOff), allocating pool
// blocks (evicting/spilling cold leaves if needed). Returns nil when
// capacity cannot be found.
func (t *Tree) newNodeLocked(parent *node, tokens []int, nb int, export Exporter, promptOff int) (*node, error) {
	// The parent may be a leaf right now — freeing space must not spill
	// or evict the node we are about to attach a child to.
	if !t.ensureFreeLocked(nb, map[*node]bool{parent: true}) {
		return nil, nil
	}
	k, v, err := export(promptOff, promptOff+nb*t.cfg.BlockTokens)
	if err != nil {
		return nil, fmt.Errorf("kvprefix: export: %w", err)
	}
	if len(k) != t.cfg.Layers || len(v) != t.cfg.Layers {
		return nil, fmt.Errorf("kvprefix: exporter returned %d/%d layers, want %d", len(k), len(v), t.cfg.Layers)
	}
	for li := range k {
		if k[li].Rows != nb*t.cfg.BlockTokens || v[li].Rows != nb*t.cfg.BlockTokens {
			return nil, fmt.Errorf("kvprefix: exporter returned %d rows for layer %d, want %d",
				k[li].Rows, li, nb*t.cfg.BlockTokens)
		}
	}
	var blocks []int
	if t.cfg.Pool != nil {
		blocks, err = t.cfg.Pool.AllocBlocks(nb)
		if err != nil {
			return nil, fmt.Errorf("kvprefix: %w", err)
		}
	}
	t.nextNodeID++
	n := &node{
		id:       t.nextNodeID,
		parent:   parent,
		tokens:   append([]int{}, tokens...),
		k:        k,
		v:        v,
		blocks:   blocks,
		children: map[int]*node{},
	}
	t.tick++
	n.lastUse = t.tick
	parent.children[n.tokens[0]] = n
	t.nodes++
	t.resident += nb
	t.stats.Inserts++
	t.stats.InsertedBlocks += uint64(nb)
	t.logEvent(EventInsert, nb*t.cfg.BlockTokens)
	return n, nil
}

// splitLocked splits child at block boundary j (0 < j < child blocks):
// a new mid node takes the first j blocks and adopts child, which keeps
// the tail. Storage is re-sliced, never copied (copy-on-write at the
// divergent block). Pins are unaffected: a pin references child (the
// deepest node at pin time) and captured its row views eagerly; mid is
// protected from eviction by having a child.
func (t *Tree) splitLocked(child *node, j int) {
	bt := t.cfg.BlockTokens
	cut := j * bt
	t.nextNodeID++
	mid := &node{
		id:       t.nextNodeID,
		parent:   child.parent,
		tokens:   child.tokens[:cut],
		k:        make([]tensor.Matrix, len(child.k)),
		v:        make([]tensor.Matrix, len(child.v)),
		children: map[int]*node{child.tokens[cut]: child},
		lastUse:  child.lastUse,
	}
	for li := range child.k {
		mid.k[li] = rowsView(child.k[li], cut)
		mid.v[li] = rowsView(child.v[li], cut)
		rest := child.k[li].Rows - cut
		child.k[li] = tensor.FromSlice(rest, child.k[li].Cols, child.k[li].Data[cut*child.k[li].Cols:])
		child.v[li] = tensor.FromSlice(rest, child.v[li].Cols, child.v[li].Data[cut*child.v[li].Cols:])
	}
	if child.blocks != nil {
		mid.blocks = child.blocks[:j:j]
		child.blocks = child.blocks[j:]
	}
	child.parent.children[mid.tokens[0]] = mid
	child.parent = mid
	child.tokens = child.tokens[cut:]
	t.nodes++
}

// Refetch walks the prompt's path and un-spills frozen nodes that match,
// re-charging their pool blocks, as long as free capacity allows — the
// admission path calls it before Lookup so cold-but-hot-again prefixes
// come back without any eviction pressure. Returns tokens restored.
func (t *Tree) Refetch(prompt []int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	bt := t.cfg.BlockTokens
	limitTok := ((len(prompt) - 1) / bt) * bt
	cur := t.root
	pos := 0
	restored := 0
	for pos < limitTok {
		child, ok := cur.children[prompt[pos]]
		if !ok {
			break
		}
		j := t.matchBlocks(child, prompt[pos:], (limitTok-pos)/bt)
		if j == 0 {
			break
		}
		if child.spilled {
			nb := child.blockCount(bt)
			if nb > t.freeLocked() {
				break // no room to restore; admission proceeds without it
			}
			if t.cfg.Pool != nil {
				blocks, err := t.cfg.Pool.AllocBlocks(nb)
				if err != nil {
					break
				}
				child.blocks = blocks
			}
			t.resident += nb
			t.cold--
			child.spilled = false
			if child.unspill != nil {
				child.unspill()
				child.unspill = nil
			}
			t.stats.Refetches++
			t.stats.RefetchedBlocks += uint64(nb)
			t.logEvent(EventRefetch, len(child.tokens))
			restored += j * bt
		}
		pos += j * bt
		t.tick++
		child.lastUse = t.tick
		if j < child.blockCount(bt) {
			break
		}
		cur = child
	}
	return restored
}

// EnsureFree evicts or spills cold, unpinned leaves until at least n
// blocks are free (pool free list, or MaxBlocks headroom when pool-less),
// excluding the nodes of keep — the match the caller is about to pin.
// Returns whether the target was reached.
func (t *Tree) EnsureFree(n int, keep Match) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	exclude := make(map[*node]bool, len(keep.segs))
	for _, s := range keep.segs {
		exclude[s.n] = true
	}
	return t.ensureFreeLocked(n, exclude)
}

// ensureFreeLocked implements EnsureFree under the lock. Resident leaves
// are reclaimed first (spill-preferred); when none remain, the coldest
// spilled leaf is dropped from the cold tier — it holds no pool blocks,
// but removing it un-shadows its ancestors so they become reclaimable
// leaves on the next iteration.
func (t *Tree) ensureFreeLocked(n int, exclude map[*node]bool) bool {
	for t.freeLocked() < n {
		if victim := t.coldestLeafLocked(exclude, false); victim != nil {
			t.reclaimLocked(victim)
			continue
		}
		victim := t.coldestLeafLocked(exclude, true)
		if victim == nil {
			return false
		}
		t.evictSpilledLocked(victim)
	}
	return true
}

// coldestLeafLocked picks the least-recently-used unpinned leaf, either
// among resident leaves or (spilled=true) cold ones.
func (t *Tree) coldestLeafLocked(exclude map[*node]bool, spilled bool) *node {
	var best *node
	var walk func(n *node)
	walk = func(n *node) {
		if len(n.children) == 0 {
			if n == t.root || n.refs > 0 || n.spilled != spilled || exclude[n] {
				return
			}
			if best == nil || n.lastUse < best.lastUse {
				best = n
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return best
}

// evictSpilledLocked drops a spilled leaf entirely: its cold-tier
// reservation is released and the node leaves the tree. No pool blocks
// move (a spilled node holds none).
func (t *Tree) evictSpilledLocked(victim *node) {
	if victim.unspill != nil {
		victim.unspill()
		victim.unspill = nil
	}
	delete(victim.parent.children, victim.tokens[0])
	victim.parent = nil
	t.cold--
	t.nodes--
	t.stats.Evictions++
	t.logEvent(EventEvict, len(victim.tokens))
}

// reclaimLocked frees a victim leaf's blocks: spill first (data moves to
// the cold tier and the node stays, frozen), eviction only when no
// spiller is configured or the cold tier refuses.
func (t *Tree) reclaimLocked(victim *node) {
	bt := t.cfg.BlockTokens
	nb := victim.blockCount(bt)
	if t.cfg.Spiller != nil {
		label := fmt.Sprintf("prefix-node-%d", victim.id)
		if release, ok := t.cfg.Spiller.Spill(label, units.Bytes(nb)*t.cfg.BlockBytes); ok {
			t.releaseBlocksLocked(victim)
			victim.spilled = true
			victim.unspill = release
			t.cold++
			t.stats.Spills++
			t.stats.SpilledBlocks += uint64(nb)
			t.logEvent(EventSpill, len(victim.tokens))
			return
		}
	}
	t.releaseBlocksLocked(victim)
	delete(victim.parent.children, victim.tokens[0])
	victim.parent = nil
	t.nodes--
	t.stats.Evictions++
	t.stats.EvictedBlocks += uint64(nb)
	t.logEvent(EventEvict, len(victim.tokens))
}

// releaseBlocksLocked returns a resident node's blocks to the pool (or
// the pool-less cap).
func (t *Tree) releaseBlocksLocked(n *node) {
	nb := n.blockCount(t.cfg.BlockTokens)
	if t.cfg.Pool != nil && n.blocks != nil {
		if err := t.cfg.Pool.ReleaseBlocks(n.blocks); err != nil {
			// Double-free would mean corrupted bookkeeping; surface loudly.
			panic(fmt.Sprintf("kvprefix: release node %d: %v", n.id, err))
		}
		n.blocks = nil
	}
	t.resident -= nb
}

// Stats snapshots the tree's counters and gauges.
func (t *Tree) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats
	st.Nodes = t.nodes
	st.ResidentBlocks = t.resident
	st.ColdNodes = t.cold
	st.PinnedNodes = t.pinned
	return st
}

// EvictLog returns a copy of the bounded event log, oldest first.
func (t *Tree) EvictLog() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.log))
	copy(out, t.log)
	return out
}

// logEvent appends to the bounded log.
func (t *Tree) logEvent(kind EventKind, tokens int) {
	if len(t.log) >= maxLog {
		t.log = t.log[1:]
	}
	t.log = append(t.log, Event{Kind: kind, Tokens: tokens})
}

// Validate walks the whole tree checking structural invariants — tests
// and the fuzzer call it after every operation batch. It reports the
// first violation found.
func (t *Tree) Validate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	bt := t.cfg.BlockTokens
	resident, cold, nodes, pinned := 0, 0, 0, 0
	var walk func(n *node) error
	walk = func(n *node) error {
		for first, c := range n.children {
			nodes++
			if c.parent != n {
				return fmt.Errorf("node %d has a stale parent pointer", c.id)
			}
			if len(c.tokens) == 0 || len(c.tokens)%bt != 0 {
				return fmt.Errorf("node %d spans %d tokens — not a whole block count", c.id, len(c.tokens))
			}
			if c.tokens[0] != first {
				return fmt.Errorf("node %d keyed by %d but starts with %d", c.id, first, c.tokens[0])
			}
			if len(c.k) != t.cfg.Layers || len(c.v) != t.cfg.Layers {
				return fmt.Errorf("node %d has %d/%d layer matrices", c.id, len(c.k), len(c.v))
			}
			for li := range c.k {
				if c.k[li].Rows != len(c.tokens) || c.v[li].Rows != len(c.tokens) {
					return fmt.Errorf("node %d layer %d rows mismatch token span", c.id, li)
				}
			}
			if c.refs < 0 {
				return fmt.Errorf("node %d has negative refcount %d", c.id, c.refs)
			}
			if c.refs > 0 {
				pinned++
			}
			if c.spilled {
				cold++
				if c.blocks != nil {
					return fmt.Errorf("spilled node %d still holds pool blocks", c.id)
				}
				if len(c.children) != 0 {
					return fmt.Errorf("spilled node %d has children — spills must be leaves", c.id)
				}
			} else {
				nb := c.blockCount(bt)
				resident += nb
				if t.cfg.Pool != nil {
					if len(c.blocks) != nb {
						return fmt.Errorf("node %d spans %d blocks but holds %d pool blocks", c.id, nb, len(c.blocks))
					}
					for _, id := range c.blocks {
						if t.cfg.Pool.BlockRef(id) < 1 {
							return fmt.Errorf("node %d references freed pool block %d", c.id, id)
						}
					}
				}
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if nodes != t.nodes {
		return fmt.Errorf("tree counts %d nodes, walk found %d", t.nodes, nodes)
	}
	if resident != t.resident {
		return fmt.Errorf("tree counts %d resident blocks, walk found %d", t.resident, resident)
	}
	if cold != t.cold {
		return fmt.Errorf("tree counts %d cold nodes, walk found %d", t.cold, cold)
	}
	if pinned != t.pinned {
		return fmt.Errorf("tree counts %d pinned nodes, walk found %d", t.pinned, pinned)
	}
	return nil
}
