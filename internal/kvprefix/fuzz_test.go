package kvprefix

import (
	"testing"

	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/units"
)

// FuzzPrefixTree drives a random interleaving of lookups, pins, inserts,
// shared admissions, releases, spills/evictions, and refetches against a
// small pool, and checks after every operation that the tree's structural
// invariants hold (Validate) and that pool blocks are conserved — no
// leak, no double-free, refcounts consistent. The byte stream is the
// schedule: each op consumes a few bytes for its kind and operands, so
// the corpus stays minimizable.
func FuzzPrefixTree(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{2, 0, 2, 1, 1, 0, 3, 0, 4, 2, 1, 5, 0, 6})
	f.Add([]byte{2, 3, 2, 3, 5, 3, 2, 7, 6, 3, 1, 3, 0, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const blocks = 6
		pool, err := kvpage.NewManager(units.Bytes(blocks*testBT), testBT, 1)
		if err != nil {
			t.Fatal(err)
		}
		sp := &capSpiller{cap: 4}
		tr, err := New(Config{BlockTokens: testBT, Layers: testLayers, Pool: pool, Spiller: sp})
		if err != nil {
			t.Fatal(err)
		}

		// A small family of prompts sharing prefixes pairwise, so inserts
		// exercise splits and sub-block divergence.
		prompts := [][]int{
			seqPrompt(100, 9),
			append(seqPrompt(100, 4), seqPrompt(500, 5)...),
			append(seqPrompt(100, 8), seqPrompt(700, 5)...),
			seqPrompt(900, 5),
			append([]int{100}, seqPrompt(300, 8)...), // diverges inside block 0
			seqPrompt(100, 13),
		}

		pins := map[int]*Pin{} // seq id -> pin, admitted in the pool
		nextSeq := 0
		defer func() {
			for id, p := range pins {
				if err := pool.Release(id); err != nil {
					t.Fatalf("final release %d: %v", id, err)
				}
				p.Release()
			}
			// With every sequence gone and the tree dropped, all blocks
			// must come back.
			if !tr.EnsureFree(blocks, Match{}) {
				t.Fatalf("tree cannot release all blocks: %+v", tr.Stats())
			}
			if pool.FreeBlocks() != blocks {
				t.Fatalf("%d of %d blocks free at teardown — leak", pool.FreeBlocks(), blocks)
			}
		}()

		check := func(op string) {
			t.Helper()
			if err := tr.Validate(); err != nil {
				t.Fatalf("after %s: %v", op, err)
			}
			st := tr.Stats()
			if st.ResidentBlocks > blocks {
				t.Fatalf("after %s: %d resident blocks in a %d-block pool", op, st.ResidentBlocks, blocks)
			}
			if pool.FreeBlocks() < 0 || pool.FreeBlocks() > blocks {
				t.Fatalf("after %s: free count %d out of range", op, pool.FreeBlocks())
			}
		}

		for i := 0; i+1 < len(ops); i += 2 {
			p := prompts[int(ops[i+1])%len(prompts)]
			switch ops[i] % 6 {
			case 0: // lookup only
				m := tr.Lookup(p)
				if m.Tokens() >= len(p) {
					t.Fatalf("lookup matched the whole prompt (%d of %d)", m.Tokens(), len(p))
				}
				check("lookup")
			case 1: // admission path: refetch, lookup, pin, shared admit
				tr.Refetch(p)
				m := tr.Lookup(p)
				need := pool.BlocksFor(len(p)) - m.Blocks() + 1
				if pool.FreeBlocks() < need {
					tr.EnsureFree(need, m)
				}
				if pool.FreeBlocks() < need {
					check("admit-reject")
					continue
				}
				pin := tr.Pin(m)
				if err := pool.AdmitShared(nextSeq, len(p), pin.Blocks()); err != nil {
					t.Fatalf("admit with %d free, need %d: %v", pool.FreeBlocks(), need, err)
				}
				pins[nextSeq] = pin
				nextSeq++
				check("admit")
			case 2: // insert (export fabricates rows)
				if _, err := tr.Insert(p, fakeExport); err != nil {
					t.Fatalf("insert: %v", err)
				}
				check("insert")
			case 3: // release the oldest live sequence
				for id := 0; id < nextSeq; id++ {
					if pin, ok := pins[id]; ok {
						if err := pool.Release(id); err != nil {
							t.Fatalf("release %d: %v", id, err)
						}
						pin.Release()
						delete(pins, id)
						break
					}
				}
				check("release")
			case 4: // pressure: force spills/evictions
				tr.EnsureFree(1+int(ops[i+1])%blocks, Match{})
				check("ensure-free")
			case 5: // refetch only
				tr.Refetch(p)
				check("refetch")
			}
		}
	})
}
