package kvprefix

import (
	"reflect"
	"testing"

	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/tensor"
	"github.com/lia-sim/lia/internal/units"
)

const (
	testBT     = 4
	testLayers = 2
	testKVDim  = 3
)

// fakeExport fabricates deterministic KV rows for the prompt: position p
// of layer li carries li*1000 + p*10 (+1 for V), so any view anywhere in
// the tree can be checked against the absolute position it claims to
// cover.
func fakeExport(from, to int) (k, v []tensor.Matrix, err error) {
	for li := 0; li < testLayers; li++ {
		km := tensor.New(to-from, testKVDim)
		vm := tensor.New(to-from, testKVDim)
		for r := 0; r < to-from; r++ {
			base := float32(li*1000 + (from+r)*10)
			for c := 0; c < testKVDim; c++ {
				km.Set(r, c, base)
				vm.Set(r, c, base+1)
			}
		}
		k = append(k, km)
		v = append(v, vm)
	}
	return k, v, nil
}

// checkSegments verifies a match/pin's segments cover positions [0, tok)
// with the fabricated values.
func checkSegments(t *testing.T, segs []Segment, tok int) {
	t.Helper()
	pos := 0
	for si, s := range segs {
		if len(s.K) != testLayers || len(s.V) != testLayers {
			t.Fatalf("segment %d has %d/%d layers", si, len(s.K), len(s.V))
		}
		for li := 0; li < testLayers; li++ {
			for r := 0; r < s.K[li].Rows; r++ {
				want := float32(li*1000 + (pos+r)*10)
				if got := s.K[li].At(r, 0); got != want {
					t.Fatalf("segment %d layer %d row %d: K=%v want %v", si, li, r, got, want)
				}
				if got := s.V[li].At(r, 0); got != want+1 {
					t.Fatalf("segment %d layer %d row %d: V=%v want %v", si, li, r, got, want+1)
				}
			}
		}
		pos += s.K[0].Rows
	}
	if pos != tok {
		t.Fatalf("segments cover %d tokens, match claims %d", pos, tok)
	}
}

func newPool(t *testing.T, blocks int) *kvpage.Manager {
	t.Helper()
	m, err := kvpage.NewManager(units.Bytes(blocks*testBT), testBT, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTree(t *testing.T, pool *kvpage.Manager, sp Spiller) *Tree {
	t.Helper()
	tr, err := New(Config{BlockTokens: testBT, Layers: testLayers, Pool: pool, Spiller: sp})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustValidate(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func mustInsert(t *testing.T, tr *Tree, prompt []int) int {
	t.Helper()
	added, err := tr.Insert(prompt, fakeExport)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, tr)
	return added
}

// seqPrompt builds a prompt of n distinct tokens offset by base.
func seqPrompt(base, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = base + i
	}
	return p
}

func TestLookupInsertBasic(t *testing.T) {
	pool := newPool(t, 10)
	tr := newTree(t, pool, nil)

	prompt := seqPrompt(100, 12) // 3 full blocks
	if m := tr.Lookup(prompt); m.Tokens() != 0 {
		t.Fatalf("empty tree matched %d tokens", m.Tokens())
	}
	if added := mustInsert(t, tr, prompt); added != 3 {
		t.Fatalf("insert added %d blocks, want 3", added)
	}
	if free := pool.FreeBlocks(); free != 7 {
		t.Fatalf("pool has %d free blocks after 3-block insert, want 7", free)
	}

	// Same prompt: matching is capped below the last token, so 2 of the 3
	// blocks hit — a full-prompt hit would leave nothing to prefill.
	m := tr.Lookup(prompt)
	if m.Tokens() != 8 || m.Blocks() != 2 {
		t.Fatalf("self-lookup matched %d tokens / %d blocks, want 8 / 2", m.Tokens(), m.Blocks())
	}
	// A longer prompt with the same prefix hits all 3 blocks.
	if m := tr.Lookup(append(prompt[:12:12], 7, 8)); m.Tokens() != 12 {
		t.Fatalf("extended lookup matched %d tokens, want 12", m.Tokens())
	}
	// A divergent prompt hits only the shared full blocks.
	div := append(prompt[:6:6], seqPrompt(500, 6)...)
	if m := tr.Lookup(div); m.Tokens() != 4 {
		t.Fatalf("divergent lookup matched %d tokens, want 4", m.Tokens())
	}
	// An unrelated prompt misses.
	if m := tr.Lookup(seqPrompt(900, 8)); m.Tokens() != 0 {
		t.Fatalf("unrelated lookup matched %d tokens", m.Tokens())
	}

	st := tr.Stats()
	if st.Lookups != 5 || st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("stats %d lookups / %d hits / %d misses, want 5/3/2", st.Lookups, st.Hits, st.Misses)
	}
	if st.HitTokens != 8+12+4 {
		t.Fatalf("hit tokens %d, want 24", st.HitTokens)
	}
	if st.Nodes != 1 || st.ResidentBlocks != 3 {
		t.Fatalf("gauges: %d nodes / %d blocks, want 1 / 3", st.Nodes, st.ResidentBlocks)
	}
	// Partial tails (not a full block) are never cached.
	if added := mustInsert(t, tr, seqPrompt(900, 3)); added != 0 {
		t.Fatalf("sub-block prompt cached %d blocks", added)
	}
}

func TestSplitCopyOnWrite(t *testing.T) {
	pool := newPool(t, 16)
	tr := newTree(t, pool, nil)

	a := seqPrompt(100, 16) // 4 blocks
	mustInsert(t, tr, a)
	// b shares a's first 2 blocks, then diverges: the insert must split
	// a's node at the block boundary and branch, copying no rows.
	b := append(a[:8:8], seqPrompt(600, 8)...)
	if added := mustInsert(t, tr, b); added != 2 {
		t.Fatalf("branch insert added %d blocks, want 2", added)
	}
	st := tr.Stats()
	if st.Nodes != 3 {
		t.Fatalf("after split: %d nodes, want 3 (mid + two tails)", st.Nodes)
	}
	if st.ResidentBlocks != 6 || pool.FreeBlocks() != 10 {
		t.Fatalf("after split: %d resident / %d free, want 6 / 10", st.ResidentBlocks, pool.FreeBlocks())
	}

	// Both paths still serve correct, position-accurate rows.
	ma := tr.Lookup(append(a[:16:16], 1))
	if ma.Tokens() != 16 {
		t.Fatalf("path a matched %d tokens, want 16", ma.Tokens())
	}
	checkSegments(t, tr.mustSegments(ma), 16)
	mb := tr.Lookup(append(b[:16:16], 1))
	if mb.Tokens() != 16 {
		t.Fatalf("path b matched %d tokens, want 16", mb.Tokens())
	}
	segs := tr.mustSegments(mb)
	// The divergent tail's rows carry b's export positions (8..15).
	checkSegments(t, segs[:len(segs)-1], 8)
	tail := segs[len(segs)-1]
	if got, want := tail.K[1].At(0, 0), float32(1000+8*10); got != want {
		t.Fatalf("tail row 0: K=%v want %v", got, want)
	}

	// Inserting a third branch that diverges inside the mid node splits
	// again one level up.
	c := append(a[:4:4], seqPrompt(800, 4)...)
	if added := mustInsert(t, tr, c); added != 1 {
		t.Fatalf("second branch added %d blocks, want 1", added)
	}
	if st := tr.Stats(); st.Nodes != 5 {
		t.Fatalf("after second split: %d nodes, want 5", st.Nodes)
	}
}

// mustSegments captures a match's rows (test-only shorthand for the pin
// path).
func (t *Tree) mustSegments(m Match) []Segment {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.segmentsLocked(m)
}

func TestSubBlockDivergenceSkipped(t *testing.T) {
	tr := newTree(t, newPool(t, 8), nil)
	a := seqPrompt(100, 8)
	mustInsert(t, tr, a)

	// Same first token, divergence at token 1: block-granular COW cannot
	// represent this branch, so the insert is skipped and counted.
	b := append([]int{100}, seqPrompt(700, 7)...)
	if added := mustInsert(t, tr, b); added != 0 {
		t.Fatalf("sub-block divergence cached %d blocks", added)
	}
	st := tr.Stats()
	if st.InsertSkips != 1 || st.Nodes != 1 {
		t.Fatalf("skips %d nodes %d, want 1 and 1", st.InsertSkips, st.Nodes)
	}
	if m := tr.Lookup(b); m.Tokens() != 0 {
		t.Fatalf("sub-block divergent prompt matched %d tokens", m.Tokens())
	}
}

func TestPinBlocksEvictionUntilReleased(t *testing.T) {
	pool := newPool(t, 4)
	tr := newTree(t, pool, nil)
	a := seqPrompt(100, 8) // 2 blocks
	mustInsert(t, tr, a)

	m := tr.Lookup(append(a[:8:8], 1))
	pin := tr.Pin(m)
	if pin.Tokens() != 8 || len(pin.Blocks()) != 2 {
		t.Fatalf("pin covers %d tokens / %d blocks, want 8 / 2", pin.Tokens(), len(pin.Blocks()))
	}
	checkSegments(t, pin.Segments(), 8)

	// 2 free blocks remain; the pinned node cannot be reclaimed.
	if tr.EnsureFree(3, Match{}) {
		t.Fatal("EnsureFree reclaimed a pinned node")
	}
	if st := tr.Stats(); st.Evictions != 0 || st.PinnedNodes != 1 {
		t.Fatalf("evictions %d pinned %d, want 0 and 1", st.Evictions, st.PinnedNodes)
	}
	pin.Release()
	pin.Release() // idempotent
	if !tr.EnsureFree(3, Match{}) {
		t.Fatal("EnsureFree failed after the pin was released")
	}
	mustValidate(t, tr)
	st := tr.Stats()
	if st.Evictions != 1 || st.Nodes != 0 || st.PinnedNodes != 0 {
		t.Fatalf("after eviction: evictions %d nodes %d pinned %d", st.Evictions, st.Nodes, st.PinnedNodes)
	}
	if pool.FreeBlocks() != 4 {
		t.Fatalf("pool has %d free blocks after eviction, want 4", pool.FreeBlocks())
	}
	var evicts int
	for _, ev := range tr.EvictLog() {
		if ev.Kind == EventEvict {
			evicts++
			if ev.Tokens != 8 {
				t.Fatalf("evict event spans %d tokens, want 8", ev.Tokens)
			}
		}
	}
	if evicts != 1 {
		t.Fatalf("evict log has %d evictions, want 1", evicts)
	}
}

func TestPinSurvivesSplit(t *testing.T) {
	pool := newPool(t, 16)
	tr := newTree(t, pool, nil)
	a := seqPrompt(100, 16)
	mustInsert(t, tr, a)

	m := tr.Lookup(append(a[:16:16], 1))
	pin := tr.Pin(m)
	wantBlocks := append([]int{}, pin.Blocks()...)

	// Split the pinned node by branching after block 1.
	b := append(a[:4:4], seqPrompt(800, 4)...)
	mustInsert(t, tr, b)
	if st := tr.Stats(); st.Nodes != 3 {
		t.Fatalf("split produced %d nodes, want 3", st.Nodes)
	}
	// The pin's eager capture is unaffected by the split.
	if !reflect.DeepEqual(pin.Blocks(), wantBlocks) {
		t.Fatalf("pin blocks changed across split: %v -> %v", wantBlocks, pin.Blocks())
	}
	checkSegments(t, pin.Segments(), 16)

	// The pinned path (deepest node + ancestors) still cannot be evicted;
	// only b's unpinned one-block tail can go.
	if tr.EnsureFree(13, Match{}) {
		t.Fatal("EnsureFree reclaimed the pinned path")
	}
	if st := tr.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1 (b's tail only)", st.Evictions)
	}
	pin.Release()
	if !tr.EnsureFree(16, Match{}) {
		t.Fatal("EnsureFree failed after release")
	}
	mustValidate(t, tr)
	if pool.FreeBlocks() != 16 {
		t.Fatalf("pool has %d free blocks, want all 16", pool.FreeBlocks())
	}
}

// capSpiller accepts up to cap spills, recording labels and releases.
type capSpiller struct {
	cap      int
	live     int
	spills   int
	releases int
}

func (s *capSpiller) Spill(label string, b units.Bytes) (func(), bool) {
	if s.live >= s.cap {
		return nil, false
	}
	s.live++
	s.spills++
	return func() { s.live--; s.releases++ }, true
}

func TestSpillAndRefetch(t *testing.T) {
	pool := newPool(t, 4)
	sp := &capSpiller{cap: 8}
	tr := newTree(t, pool, sp)

	a := seqPrompt(100, 8) // 2 blocks
	b := seqPrompt(500, 8) // 2 blocks
	mustInsert(t, tr, a)
	mustInsert(t, tr, b)
	if pool.FreeBlocks() != 0 {
		t.Fatalf("pool has %d free blocks, want 0", pool.FreeBlocks())
	}

	// Touch b so a is the cold one, then demand space: a spills (not
	// evicts — the spiller has room).
	tr.Lookup(append(b[:8:8], 1))
	if !tr.EnsureFree(2, Match{}) {
		t.Fatal("EnsureFree failed with a cold spillable node")
	}
	mustValidate(t, tr)
	st := tr.Stats()
	if st.Spills != 1 || st.Evictions != 0 || st.ColdNodes != 1 || sp.spills != 1 {
		t.Fatalf("spills %d evictions %d cold %d spiller %d, want 1/0/1/1", st.Spills, st.Evictions, st.ColdNodes, sp.spills)
	}
	if st.Nodes != 2 || st.ResidentBlocks != 2 {
		t.Fatalf("nodes %d resident %d, want 2 / 2 (spilled node stays)", st.Nodes, st.ResidentBlocks)
	}

	// Spilled data is frozen: no hit, and inserting under it is skipped.
	if m := tr.Lookup(append(a[:8:8], 1)); m.Tokens() != 0 {
		t.Fatalf("spilled node served a %d-token hit", m.Tokens())
	}
	skipsBefore := tr.Stats().InsertSkips
	mustInsert(t, tr, append(a[:8:8], seqPrompt(900, 4)...))
	if got := tr.Stats().InsertSkips; got != skipsBefore+1 {
		t.Fatalf("insert under a spilled node was not skipped (skips %d)", got)
	}

	// Refetch re-charges a's blocks from the pool and thaws it.
	if restored := tr.Refetch(append(a[:8:8], 1)); restored != 8 {
		t.Fatalf("refetch restored %d tokens, want 8", restored)
	}
	mustValidate(t, tr)
	st = tr.Stats()
	if st.Refetches != 1 || st.ColdNodes != 0 || sp.releases != 1 {
		t.Fatalf("refetches %d cold %d released %d, want 1/0/1", st.Refetches, st.ColdNodes, sp.releases)
	}
	m := tr.Lookup(append(a[:8:8], 1))
	if m.Tokens() != 8 {
		t.Fatalf("refetched node matched %d tokens, want 8", m.Tokens())
	}
	checkSegments(t, tr.mustSegments(m), 8)

	// With the pool full again, a refetch of the still-resident prompt is
	// a no-op and a refetch needing blocks fails soft.
	if restored := tr.Refetch(append(b[:8:8], 1)); restored != 0 {
		t.Fatalf("resident refetch restored %d tokens", restored)
	}
}

func TestSpillerRefusalEvicts(t *testing.T) {
	pool := newPool(t, 2)
	sp := &capSpiller{cap: 0} // cold tier always full
	tr := newTree(t, pool, sp)
	mustInsert(t, tr, seqPrompt(100, 8))
	if !tr.EnsureFree(2, Match{}) {
		t.Fatal("EnsureFree failed")
	}
	st := tr.Stats()
	if st.Spills != 0 || st.Evictions != 1 || st.Nodes != 0 {
		t.Fatalf("spills %d evictions %d nodes %d, want 0/1/0", st.Spills, st.Evictions, st.Nodes)
	}
}

func TestInsertEvictsColdOverCapacity(t *testing.T) {
	pool := newPool(t, 4)
	tr := newTree(t, pool, nil)
	a := seqPrompt(100, 8)
	b := seqPrompt(500, 8)
	mustInsert(t, tr, a)
	mustInsert(t, tr, b) // pool now full
	// A third insert must evict the coldest (a) to make room.
	c := seqPrompt(900, 8)
	if added := mustInsert(t, tr, c); added != 2 {
		t.Fatalf("over-capacity insert added %d blocks, want 2", added)
	}
	st := tr.Stats()
	if st.Evictions != 1 || st.Nodes != 2 {
		t.Fatalf("evictions %d nodes %d, want 1 and 2", st.Evictions, st.Nodes)
	}
	if m := tr.Lookup(append(a[:8:8], 1)); m.Tokens() != 0 {
		t.Fatal("evicted prefix still matches")
	}
	if m := tr.Lookup(append(c[:8:8], 1)); m.Tokens() != 8 {
		t.Fatal("new prefix missing after insert-with-eviction")
	}
	// When nothing is evictable (everything pinned), the insert is
	// skipped, not failed.
	pb := tr.Pin(tr.Lookup(append(b[:8:8], 1)))
	pc := tr.Pin(tr.Lookup(append(c[:8:8], 1)))
	skips := tr.Stats().InsertSkips
	if added := mustInsert(t, tr, seqPrompt(1300, 8)); added != 0 {
		t.Fatalf("insert with no free blocks added %d blocks", added)
	}
	if got := tr.Stats().InsertSkips; got != skips+1 {
		t.Fatalf("skips %d, want %d", got, skips+1)
	}
	pb.Release()
	pc.Release()
}

func TestPoolLessMode(t *testing.T) {
	tr, err := New(Config{BlockTokens: testBT, Layers: testLayers, MaxBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := seqPrompt(100, 8)
	b := seqPrompt(500, 8)
	if added, _ := tr.Insert(a, fakeExport); added != 2 {
		t.Fatalf("insert a added %d", added)
	}
	if added, _ := tr.Insert(b, fakeExport); added != 2 {
		t.Fatalf("insert b added %d", added)
	}
	mustValidate(t, tr)
	if st := tr.Stats(); st.ResidentBlocks != 4 {
		t.Fatalf("resident %d, want 4 (at cap)", st.ResidentBlocks)
	}
	// Over the cap: evict the coldest (a).
	tr.Lookup(append(b[:8:8], 1))
	if added, _ := tr.Insert(seqPrompt(900, 8), fakeExport); added != 2 {
		t.Fatal("insert at cap did not evict to make room")
	}
	mustValidate(t, tr)
	st := tr.Stats()
	if st.Evictions != 1 || st.ResidentBlocks != 4 {
		t.Fatalf("evictions %d resident %d, want 1 and 4", st.Evictions, st.ResidentBlocks)
	}
	// Seed drives the pool-less serving path: lookup + eager capture.
	segs, tok := tr.Seed(append(b[:8:8], 1))
	if tok != 8 {
		t.Fatalf("seed matched %d tokens, want 8", tok)
	}
	checkSegments(t, segs, 8)
}

func TestPinOnMissIsInert(t *testing.T) {
	tr := newTree(t, newPool(t, 4), nil)
	pin := tr.Pin(tr.Lookup(seqPrompt(100, 8)))
	if pin.Tokens() != 0 || pin.Blocks() != nil || pin.Segments() != nil {
		t.Fatalf("miss pin not inert: %d tokens %v blocks", pin.Tokens(), pin.Blocks())
	}
	pin.Release()
	if st := tr.Stats(); st.PinnedNodes != 0 {
		t.Fatalf("pinned %d after inert pin", st.PinnedNodes)
	}
}

func TestAdmitSharedIntegration(t *testing.T) {
	pool := newPool(t, 8)
	tr := newTree(t, pool, nil)
	prompt := seqPrompt(100, 9) // 2 full blocks cached + 1 token tail
	mustInsert(t, tr, prompt)   // caches 2 blocks (9/4 = 2 full)
	if pool.FreeBlocks() != 6 {
		t.Fatalf("free %d, want 6", pool.FreeBlocks())
	}

	m := tr.Lookup(prompt)
	if m.Tokens() != 8 {
		t.Fatalf("matched %d tokens, want 8", m.Tokens())
	}
	pin := tr.Pin(m)
	// Admission charges only the unshared suffix: blocksFor(9)=3, minus 2
	// shared, plus 1 headroom = 2 new blocks.
	if err := pool.AdmitShared(1, len(prompt), pin.Blocks()); err != nil {
		t.Fatal(err)
	}
	if pool.FreeBlocks() != 4 {
		t.Fatalf("free %d after shared admit, want 4", pool.FreeBlocks())
	}
	for _, id := range pin.Blocks() {
		if ref := pool.BlockRef(id); ref != 2 {
			t.Fatalf("shared block %d has refcount %d, want 2 (tree + sequence)", id, ref)
		}
	}
	// The tree cannot evict the pinned node even under demand.
	if tr.EnsureFree(6, Match{}) {
		t.Fatal("EnsureFree evicted a node pinned by a live sequence")
	}
	// Sequence finishes: release pool refs, then the pin.
	if err := pool.Release(1); err != nil {
		t.Fatal(err)
	}
	pin.Release()
	mustValidate(t, tr)
	if tr.Stats().PinnedNodes != 0 {
		t.Fatal("pin count nonzero after release")
	}
	if !tr.EnsureFree(8, Match{}) {
		t.Fatal("EnsureFree failed after sequence release")
	}
	if pool.FreeBlocks() != 8 {
		t.Fatalf("free %d at end, want all 8 — leak", pool.FreeBlocks())
	}
}

func TestEnsureFreeExcludesMatch(t *testing.T) {
	pool := newPool(t, 4)
	tr := newTree(t, pool, nil)
	a := seqPrompt(100, 8)
	b := seqPrompt(500, 8)
	mustInsert(t, tr, a)
	mustInsert(t, tr, b)
	// Make a the LRU choice (b looked up last), then exclude a: b must go
	// instead.
	ma := tr.Lookup(append(a[:8:8], 1))
	tr.Lookup(append(b[:8:8], 1))
	if !tr.EnsureFree(2, ma) {
		t.Fatal("EnsureFree failed with an evictable non-excluded node")
	}
	if m := tr.Lookup(append(a[:8:8], 1)); m.Tokens() != 8 {
		t.Fatal("excluded match was evicted")
	}
	if m := tr.Lookup(append(b[:8:8], 1)); m.Tokens() != 0 {
		t.Fatal("non-excluded node survived")
	}
	mustValidate(t, tr)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{BlockTokens: 0, Layers: 1}); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := New(Config{BlockTokens: 4, Layers: 0}); err == nil {
		t.Error("zero layers accepted")
	}
	pool := newPool(t, 4)
	if _, err := New(Config{BlockTokens: 8, Layers: 1, Pool: pool}); err == nil {
		t.Error("mismatched pool block size accepted")
	}
}
