package kvpage

import (
	"testing"
	"testing/quick"

	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// tiny builds a 100-block manager with 16-token blocks.
func tiny(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(100*16*units.KiB, 16, units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(units.MiB, 0, units.KiB); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := NewManager(units.MiB, 16, 0); err == nil {
		t.Error("zero bytes/token accepted")
	}
	if _, err := NewManager(10, 16, units.KiB); err == nil {
		t.Error("budget below one block accepted")
	}
}

func TestAdmitExtendRelease(t *testing.T) {
	m := tiny(t)
	if m.TotalBlocks() != 100 || m.FreeBlocks() != 100 {
		t.Fatalf("pool = %d/%d", m.FreeBlocks(), m.TotalBlocks())
	}
	// A 20-token prompt needs 2 blocks plus the reserved headroom block.
	if err := m.Admit(1, 20); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 97 || m.Tokens(1) != 20 || m.Blocks(1) != 3 {
		t.Errorf("after admit: free=%d tokens=%d blocks=%d", m.FreeBlocks(), m.Tokens(1), m.Blocks(1))
	}
	// Extending through the partial block and across the first boundary
	// (token 33) allocates nothing: the boundary lands in the headroom
	// block reserved at admission.
	for i := 0; i < 28; i++ { // tokens 21..48
		if err := m.Extend(1); err != nil {
			t.Fatal(err)
		}
	}
	if m.FreeBlocks() != 97 {
		t.Errorf("extend within reserved blocks allocated: free=%d", m.FreeBlocks())
	}
	// The 49th token crosses into a fourth block — only now does the pool
	// hand out another one.
	if err := m.Extend(1); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 96 {
		t.Errorf("block boundary not allocated: free=%d", m.FreeBlocks())
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 100 || m.Live() != 0 {
		t.Errorf("release leaked: free=%d live=%d", m.FreeBlocks(), m.Live())
	}
}

// TestAdmitReservesHeadroom pins the admission-headroom bug: CanAdmit
// charges blocksFor(prompt)+1 but Admit used to pop only blocksFor, so
// two sequences could both pass the check against the same last free
// block and then both fail their first block-boundary Extend. With the
// headroom actually reserved, the second admit is refused up front and
// the first sequence's boundary crossing is guaranteed.
func TestAdmitReservesHeadroom(t *testing.T) {
	m, err := NewManager(3*16*units.KiB, 16, units.KiB) // 3 blocks
	if err != nil {
		t.Fatal(err)
	}
	if !m.CanAdmit(16) {
		t.Fatal("empty 3-block pool must admit a 1-block prompt")
	}
	if err := m.Admit(1, 16); err != nil {
		t.Fatal(err)
	}
	// The headroom block must be gone from the free list now, so a second
	// 1-block prompt (needing 1+1 blocks) no longer fits. The unfixed
	// allocator left it free and admitted sequence 2 here — and then both
	// sequences raced for one block at their first boundary crossing.
	if m.CanAdmit(16) {
		t.Fatal("headroom block not reserved: second admit would race the first sequence's growth")
	}
	// The admitted sequence's guaranteed growth: 16 more tokens (through
	// its second block) without any allocation failure.
	for i := 0; i < 16; i++ {
		if err := m.Extend(1); err != nil {
			t.Fatalf("extend %d failed despite reserved headroom: %v", i, err)
		}
	}
}

func TestAdmitErrors(t *testing.T) {
	m := tiny(t)
	if err := m.Admit(1, 0); err == nil {
		t.Error("zero prompt accepted")
	}
	if err := m.Admit(1, 16); err != nil {
		t.Fatal(err)
	}
	if err := m.Admit(1, 16); err == nil {
		t.Error("duplicate sequence accepted")
	}
	if err := m.Admit(2, 100*16); err == nil {
		t.Error("over-capacity admit accepted")
	}
	if err := m.Extend(99); err == nil {
		t.Error("extending unknown sequence accepted")
	}
	if err := m.Release(99); err == nil {
		t.Error("releasing unknown sequence accepted")
	}
}

func TestExtendExhaustionRollsBack(t *testing.T) {
	m, err := NewManager(2*16*units.KiB, 16, units.KiB) // 2 blocks
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Admit(1, 16); err != nil { // 1 prompt block + 1 headroom = whole pool
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ { // tokens 17..32 fill the headroom block
		if err := m.Extend(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Extend(1); err == nil {
		t.Fatal("extension past capacity accepted")
	}
	if m.Tokens(1) != 32 {
		t.Errorf("failed extend must roll back: tokens=%d", m.Tokens(1))
	}
}

func TestCanAdmitKeepsHeadroom(t *testing.T) {
	m, _ := NewManager(4*16*units.KiB, 16, units.KiB) // 4 blocks
	if !m.CanAdmit(30) {                              // 2 blocks + 1 headroom ≤ 4
		t.Error("should admit")
	}
	if m.CanAdmit(60) { // 4 blocks + 1 headroom > 4
		t.Error("should not admit without headroom")
	}
}

func TestStatsAndWaste(t *testing.T) {
	m := tiny(t)
	if err := m.Admit(1, 17); err != nil { // 2 blocks + headroom, 17/48 slots used
		t.Fatal(err)
	}
	st := m.Stats()
	if st.UsedBlocks != 3 || st.UsedTokens != 17 {
		t.Errorf("stats = %+v", st)
	}
	wantWaste := 1 - 17.0/48.0
	if st.InternalWaste < wantWaste-1e-9 || st.InternalWaste > wantWaste+1e-9 {
		t.Errorf("waste = %v, want %v", st.InternalWaste, wantWaste)
	}
	if st.UsedBytes != 48*units.KiB {
		t.Errorf("used bytes = %v", st.UsedBytes)
	}
}

// TestMaxConcurrentSequencesMatchesAdmission pins the §6 capacity answer
// to what admission actually accepts: repeatedly admitting mean-length
// sequences must place exactly MaxConcurrentSequences of them. (The
// formula previously omitted the +1 headroom block CanAdmit charges,
// so it overstated capacity.)
func TestMaxConcurrentSequencesMatchesAdmission(t *testing.T) {
	cases := []struct {
		blocks, mean int
		want         int
	}{
		{blocks: 100, mean: 16, want: 50},  // 1+1 blocks per sequence
		{blocks: 100, mean: 17, want: 33},  // 2+1 blocks per sequence
		{blocks: 100, mean: 300, want: 5},  // 19+1 blocks per sequence
		{blocks: 3, mean: 16, want: 1},     // the double-admit scenario
		{blocks: 2, mean: 33, want: 0},     // cannot ever fit
		{blocks: 100, mean: 0, want: 0},    // degenerate
	}
	for _, c := range cases {
		m, err := NewManager(units.Bytes(c.blocks)*16*units.KiB, 16, units.KiB)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.MaxConcurrentSequences(c.mean); got != c.want {
			t.Errorf("blocks=%d mean=%d: MaxConcurrentSequences=%d, want %d", c.blocks, c.mean, got, c.want)
		}
		if c.mean < 1 {
			continue
		}
		admitted := 0
		for m.CanAdmit(c.mean) {
			if err := m.Admit(admitted, c.mean); err != nil {
				t.Fatalf("blocks=%d mean=%d: CanAdmit passed but Admit failed: %v", c.blocks, c.mean, err)
			}
			admitted++
		}
		if admitted != c.want {
			t.Errorf("blocks=%d mean=%d: admission placed %d sequences, formula says %d", c.blocks, c.mean, admitted, c.want)
		}
	}
}

func TestMaxConcurrentSequencesShared(t *testing.T) {
	m, err := NewManager(20*16*units.KiB, 16, units.KiB) // 20 blocks
	if err != nil {
		t.Fatal(err)
	}
	// 48-token sequences: 3 blocks + headroom = 4 each → 5 fit cold.
	if got := m.MaxConcurrentSequences(48); got != 5 {
		t.Fatalf("cold capacity = %d, want 5", got)
	}
	// With a 32-token shared prefix (2 blocks charged once), each
	// sequence pays 1 suffix block + 1 headroom → (20−2)/2 = 9.
	if got := m.MaxConcurrentSequencesShared(48, 32); got != 9 {
		t.Errorf("shared capacity = %d, want 9", got)
	}
	// Partial shared blocks don't count; prefix ≥ mean is clamped.
	if got := m.MaxConcurrentSequencesShared(48, 15); got != 5 {
		t.Errorf("sub-block prefix must not discount: got %d", got)
	}
	if got := m.MaxConcurrentSequencesShared(16, 100); got != m.MaxConcurrentSequences(16) {
		t.Errorf("over-long prefix must clamp, got %d", got)
	}
}

func TestAdmitSharedAccounting(t *testing.T) {
	m := tiny(t)
	prefix, err := m.AllocBlocks(2) // tree-owned 32-token prefix
	if err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 98 {
		t.Fatalf("free=%d after AllocBlocks", m.FreeBlocks())
	}
	// 40-token prompt sharing the 2 prefix blocks: pops 1 suffix + 1
	// headroom, retains the shared pair.
	if err := m.AdmitShared(1, 40, prefix); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 96 || m.Blocks(1) != 4 || m.SharedBlocks(1) != 2 {
		t.Errorf("free=%d blocks=%d shared=%d", m.FreeBlocks(), m.Blocks(1), m.SharedBlocks(1))
	}
	for _, id := range prefix {
		if m.BlockRef(id) != 2 {
			t.Errorf("prefix block %d ref=%d, want 2", id, m.BlockRef(id))
		}
	}
	// Shared tokens are counted once: 2 tree blocks (32 slots) + the
	// sequence's 8 unshared tokens.
	if st := m.Stats(); st.UsedTokens != 40 {
		t.Errorf("UsedTokens=%d, want 40", st.UsedTokens)
	}
	// A second sequence over the same prefix pays only its suffix.
	if !m.CanAdmitShared(40, 2) {
		t.Error("shared admit refused")
	}
	if err := m.AdmitShared(2, 40, prefix); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 94 {
		t.Errorf("free=%d after second shared admit", m.FreeBlocks())
	}
	// Releasing the sequences keeps the prefix alive for the tree.
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(2); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 98 {
		t.Errorf("free=%d after releases, want 98", m.FreeBlocks())
	}
	for _, id := range prefix {
		if m.BlockRef(id) != 1 {
			t.Errorf("prefix block %d ref=%d, want 1", id, m.BlockRef(id))
		}
	}
	if err := m.ReleaseBlocks(prefix); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 100 {
		t.Errorf("free=%d after tree release, want 100", m.FreeBlocks())
	}
}

func TestAdmitSharedValidation(t *testing.T) {
	m := tiny(t)
	prefix, err := m.AllocBlocks(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AdmitShared(1, 16, prefix); err == nil {
		t.Error("shared blocks covering the whole prompt accepted")
	}
	if err := m.AdmitShared(1, 20, []int{999}); err == nil {
		t.Error("out-of-range shared block accepted")
	}
	if err := m.AdmitShared(1, 20, []int{50}); err == nil {
		t.Error("free shared block accepted")
	}
	if err := m.ReleaseBlocks(prefix); err != nil {
		t.Fatal(err)
	}
	if err := m.ReleaseBlocks(prefix); err == nil {
		t.Error("double release accepted")
	}
	if _, err := m.AllocBlocks(-1); err == nil {
		t.Error("negative block count accepted")
	}
	if _, err := m.AllocBlocks(101); err == nil {
		t.Error("over-capacity AllocBlocks accepted")
	}
}

// TestPagingBeatsMaxLengthReservation quantifies paging's point: a pool
// sized for OPT-30B admits far more concurrent 300-token sequences under
// paging than under reserve-to-max-length.
func TestPagingBeatsMaxLengthReservation(t *testing.T) {
	budget := 100 * units.GB
	m, err := ForModel(budget, 16, model.OPT30B)
	if err != nil {
		t.Fatal(err)
	}
	paged := m.MaxConcurrentSequences(300)
	perTok := model.OPT30B.KVBytes(1, 1)
	reserved := int(float64(budget) / float64(perTok*units.Bytes(model.OPT30B.MaxSeqLen)))
	if paged < 5*reserved {
		t.Errorf("paging admits %d vs %d reserved — want ≥5x (2048/300 ≈ 6.8x)", paged, reserved)
	}
}

// Property: for any admit/extend/release interleaving, blocks never leak
// and free+used == total.
func TestNoBlockLeaksProperty(t *testing.T) {
	f := func(ops [40]uint8) bool {
		m, err := NewManager(50*16*units.KiB, 16, units.KiB)
		if err != nil {
			return false
		}
		next := 0
		live := []int{}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if m.CanAdmit(int(op)%40 + 1) {
					if err := m.Admit(next, int(op)%40+1); err == nil {
						live = append(live, next)
						next++
					}
				}
			case 1:
				if len(live) > 0 {
					_ = m.Extend(live[int(op)%len(live)]) // may fail when full; fine
				}
			case 2:
				if len(live) > 0 {
					idx := int(op) % len(live)
					if err := m.Release(live[idx]); err != nil {
						return false
					}
					live = append(live[:idx], live[idx+1:]...)
				}
			}
			st := m.Stats()
			if st.UsedBlocks+st.FreeBlocks != st.TotalBlocks {
				return false
			}
		}
		for _, id := range live {
			if err := m.Release(id); err != nil {
				return false
			}
		}
		return m.FreeBlocks() == m.TotalBlocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
