package kvpage

import (
	"testing"
	"testing/quick"

	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// tiny builds a 100-block manager with 16-token blocks.
func tiny(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(100*16*units.KiB, 16, units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(units.MiB, 0, units.KiB); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := NewManager(units.MiB, 16, 0); err == nil {
		t.Error("zero bytes/token accepted")
	}
	if _, err := NewManager(10, 16, units.KiB); err == nil {
		t.Error("budget below one block accepted")
	}
}

func TestAdmitExtendRelease(t *testing.T) {
	m := tiny(t)
	if m.TotalBlocks() != 100 || m.FreeBlocks() != 100 {
		t.Fatalf("pool = %d/%d", m.FreeBlocks(), m.TotalBlocks())
	}
	// A 20-token prompt needs 2 blocks.
	if err := m.Admit(1, 20); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 98 || m.Tokens(1) != 20 {
		t.Errorf("after admit: free=%d tokens=%d", m.FreeBlocks(), m.Tokens(1))
	}
	// Extending within the partial block allocates nothing new.
	for i := 0; i < 12; i++ {
		if err := m.Extend(1); err != nil {
			t.Fatal(err)
		}
	}
	if m.FreeBlocks() != 98 {
		t.Errorf("extend within block allocated: free=%d", m.FreeBlocks())
	}
	// The 33rd token crosses into a third block.
	if err := m.Extend(1); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 97 {
		t.Errorf("block boundary not allocated: free=%d", m.FreeBlocks())
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	if m.FreeBlocks() != 100 || m.Live() != 0 {
		t.Errorf("release leaked: free=%d live=%d", m.FreeBlocks(), m.Live())
	}
}

func TestAdmitErrors(t *testing.T) {
	m := tiny(t)
	if err := m.Admit(1, 0); err == nil {
		t.Error("zero prompt accepted")
	}
	if err := m.Admit(1, 16); err != nil {
		t.Fatal(err)
	}
	if err := m.Admit(1, 16); err == nil {
		t.Error("duplicate sequence accepted")
	}
	if err := m.Admit(2, 100*16); err == nil {
		t.Error("over-capacity admit accepted")
	}
	if err := m.Extend(99); err == nil {
		t.Error("extending unknown sequence accepted")
	}
	if err := m.Release(99); err == nil {
		t.Error("releasing unknown sequence accepted")
	}
}

func TestExtendExhaustionRollsBack(t *testing.T) {
	m, err := NewManager(2*16*units.KiB, 16, units.KiB) // 2 blocks
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Admit(1, 32); err != nil { // consumes both blocks exactly
		t.Fatal(err)
	}
	if err := m.Extend(1); err == nil {
		t.Fatal("extension past capacity accepted")
	}
	if m.Tokens(1) != 32 {
		t.Errorf("failed extend must roll back: tokens=%d", m.Tokens(1))
	}
}

func TestCanAdmitKeepsHeadroom(t *testing.T) {
	m, _ := NewManager(4*16*units.KiB, 16, units.KiB) // 4 blocks
	if !m.CanAdmit(30) {                              // 2 blocks + 1 headroom ≤ 4
		t.Error("should admit")
	}
	if m.CanAdmit(60) { // 4 blocks + 1 headroom > 4
		t.Error("should not admit without headroom")
	}
}

func TestStatsAndWaste(t *testing.T) {
	m := tiny(t)
	if err := m.Admit(1, 17); err != nil { // 2 blocks, 17/32 slots used
		t.Fatal(err)
	}
	st := m.Stats()
	if st.UsedBlocks != 2 || st.UsedTokens != 17 {
		t.Errorf("stats = %+v", st)
	}
	wantWaste := 1 - 17.0/32.0
	if st.InternalWaste < wantWaste-1e-9 || st.InternalWaste > wantWaste+1e-9 {
		t.Errorf("waste = %v, want %v", st.InternalWaste, wantWaste)
	}
	if st.UsedBytes != 32*units.KiB {
		t.Errorf("used bytes = %v", st.UsedBytes)
	}
}

// TestPagingBeatsMaxLengthReservation quantifies paging's point: a pool
// sized for OPT-30B admits far more concurrent 300-token sequences under
// paging than under reserve-to-max-length.
func TestPagingBeatsMaxLengthReservation(t *testing.T) {
	budget := 100 * units.GB
	m, err := ForModel(budget, 16, model.OPT30B)
	if err != nil {
		t.Fatal(err)
	}
	paged := m.MaxConcurrentSequences(300)
	perTok := model.OPT30B.KVBytes(1, 1)
	reserved := int(float64(budget) / float64(perTok*units.Bytes(model.OPT30B.MaxSeqLen)))
	if paged < 5*reserved {
		t.Errorf("paging admits %d vs %d reserved — want ≥5x (2048/300 ≈ 6.8x)", paged, reserved)
	}
}

// Property: for any admit/extend/release interleaving, blocks never leak
// and free+used == total.
func TestNoBlockLeaksProperty(t *testing.T) {
	f := func(ops [40]uint8) bool {
		m, err := NewManager(50*16*units.KiB, 16, units.KiB)
		if err != nil {
			return false
		}
		next := 0
		live := []int{}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if m.CanAdmit(int(op)%40 + 1) {
					if err := m.Admit(next, int(op)%40+1); err == nil {
						live = append(live, next)
						next++
					}
				}
			case 1:
				if len(live) > 0 {
					_ = m.Extend(live[int(op)%len(live)]) // may fail when full; fine
				}
			case 2:
				if len(live) > 0 {
					idx := int(op) % len(live)
					if err := m.Release(live[idx]); err != nil {
						return false
					}
					live = append(live[:idx], live[idx+1:]...)
				}
			}
			st := m.Stats()
			if st.UsedBlocks+st.FreeBlocks != st.TotalBlocks {
				return false
			}
		}
		for _, id := range live {
			if err := m.Release(id); err != nil {
				return false
			}
		}
		return m.FreeBlocks() == m.TotalBlocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
