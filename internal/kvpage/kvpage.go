// Package kvpage is a paged KV-cache allocator: host (or CXL) memory is
// carved into fixed-size blocks of token slots, and each sequence's cache
// grows block by block instead of reserving its full maximum length up
// front. This is the memory-management substrate behind the serving
// layer's continuous batching — the §6 capacity pressure (KV cache
// dominating the 1.6 TB footprint) is exactly what paging relieves, by
// bounding per-sequence waste to one partial block.
package kvpage

import (
	"fmt"
	"sort"

	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// Manager allocates fixed-size KV blocks to sequences.
type Manager struct {
	blockTokens int
	totalBlocks int
	freeBlocks  []int
	seqs        map[int]*sequence
	bytesPerTok units.Bytes
}

// sequence tracks one request's cache.
type sequence struct {
	blocks []int
	tokens int
}

// NewManager builds an allocator over a memory budget. blockTokens is the
// page size in token slots; bytesPerToken is the model's full-stack KV
// footprint per token (all layers, K and V).
func NewManager(budget units.Bytes, blockTokens int, bytesPerToken units.Bytes) (*Manager, error) {
	if blockTokens < 1 {
		return nil, fmt.Errorf("kvpage: block size %d must be ≥1 token", blockTokens)
	}
	if bytesPerToken <= 0 {
		return nil, fmt.Errorf("kvpage: bytes/token must be positive")
	}
	blockBytes := bytesPerToken * units.Bytes(blockTokens)
	total := int(float64(budget) / float64(blockBytes))
	if total < 1 {
		return nil, fmt.Errorf("kvpage: budget %v holds no %v blocks", budget, blockBytes)
	}
	m := &Manager{
		blockTokens: blockTokens,
		totalBlocks: total,
		seqs:        make(map[int]*sequence),
		bytesPerTok: bytesPerToken,
	}
	m.freeBlocks = make([]int, total)
	for i := range m.freeBlocks {
		m.freeBlocks[i] = total - 1 - i // pop from the end → ascending IDs
	}
	return m, nil
}

// ForModel derives the per-token KV footprint from a model config.
func ForModel(budget units.Bytes, blockTokens int, cfg model.Config) (*Manager, error) {
	return NewManager(budget, blockTokens, cfg.KVBytes(1, 1))
}

// TotalBlocks returns the pool size.
func (m *Manager) TotalBlocks() int { return m.totalBlocks }

// BlockTokens returns the page size in token slots.
func (m *Manager) BlockTokens() int { return m.blockTokens }

// FreeBlocks returns how many blocks are unallocated.
func (m *Manager) FreeBlocks() int { return len(m.freeBlocks) }

// blocksFor returns how many blocks `tokens` slots occupy.
func (m *Manager) blocksFor(tokens int) int {
	return (tokens + m.blockTokens - 1) / m.blockTokens
}

// CanAdmit reports whether a new sequence with the given prompt length
// (plus one block of headroom for its first generated tokens) fits now.
func (m *Manager) CanAdmit(promptTokens int) bool {
	return m.blocksFor(promptTokens)+1 <= len(m.freeBlocks)
}

// CanEverAdmit reports whether a prompt of the given length could be
// admitted into a fully drained pool — the shed test serving admission
// runs before queueing work that no amount of waiting can place.
func (m *Manager) CanEverAdmit(promptTokens int) bool {
	return m.blocksFor(promptTokens)+1 <= m.totalBlocks
}

// Admit allocates blocks for a new sequence's prompt. Sequence IDs must
// be unique among live sequences.
func (m *Manager) Admit(seqID, promptTokens int) error {
	if _, exists := m.seqs[seqID]; exists {
		return fmt.Errorf("kvpage: sequence %d already admitted", seqID)
	}
	if promptTokens < 1 {
		return fmt.Errorf("kvpage: prompt must be ≥1 token")
	}
	need := m.blocksFor(promptTokens)
	if need > len(m.freeBlocks) {
		return fmt.Errorf("kvpage: need %d blocks, %d free", need, len(m.freeBlocks))
	}
	s := &sequence{tokens: promptTokens}
	s.blocks = m.pop(need)
	m.seqs[seqID] = s
	return nil
}

// Extend appends one generated token to a sequence, allocating a new
// block when the current one fills.
func (m *Manager) Extend(seqID int) error {
	s, ok := m.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvpage: unknown sequence %d", seqID)
	}
	s.tokens++
	if m.blocksFor(s.tokens) > len(s.blocks) {
		if len(m.freeBlocks) == 0 {
			s.tokens-- // roll back; caller must evict or wait
			return fmt.Errorf("kvpage: out of blocks extending sequence %d", seqID)
		}
		s.blocks = append(s.blocks, m.pop(1)...)
	}
	return nil
}

// Release frees a finished sequence's blocks.
func (m *Manager) Release(seqID int) error {
	s, ok := m.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvpage: unknown sequence %d", seqID)
	}
	m.freeBlocks = append(m.freeBlocks, s.blocks...)
	delete(m.seqs, seqID)
	return nil
}

// Live returns the number of admitted sequences.
func (m *Manager) Live() int { return len(m.seqs) }

// Tokens returns a sequence's current cache length (0 if unknown).
func (m *Manager) Tokens(seqID int) int {
	if s, ok := m.seqs[seqID]; ok {
		return s.tokens
	}
	return 0
}

// Stats summarizes pool occupancy.
type Stats struct {
	// TotalBlocks, UsedBlocks and FreeBlocks partition the pool.
	TotalBlocks, UsedBlocks, FreeBlocks int
	// UsedTokens counts live token slots actually occupied.
	UsedTokens int
	// InternalWaste is the fraction of allocated slots that hold no token
	// (the partial last block of each sequence) — the quantity paging
	// keeps below one block per sequence, versus max-length reservation's
	// (maxLen − len)/maxLen.
	InternalWaste float64
	// UsedBytes is the allocated footprint.
	UsedBytes units.Bytes
}

// Stats returns the current occupancy.
func (m *Manager) Stats() Stats {
	st := Stats{TotalBlocks: m.totalBlocks, FreeBlocks: len(m.freeBlocks)}
	st.UsedBlocks = m.totalBlocks - st.FreeBlocks
	for _, s := range m.seqs {
		st.UsedTokens += s.tokens
	}
	allocSlots := st.UsedBlocks * m.blockTokens
	if allocSlots > 0 {
		st.InternalWaste = 1 - float64(st.UsedTokens)/float64(allocSlots)
	}
	st.UsedBytes = m.bytesPerTok * units.Bytes(allocSlots)
	return st
}

// MaxConcurrentSequences answers the §6-style capacity question under
// paging: how many sequences of the given mean total length fit the
// budget, accounting for per-sequence partial-block waste.
func (m *Manager) MaxConcurrentSequences(meanTotalTokens int) int {
	if meanTotalTokens < 1 {
		return 0
	}
	perSeq := m.blocksFor(meanTotalTokens)
	return m.totalBlocks / perSeq
}

// pop removes n blocks from the free list.
func (m *Manager) pop(n int) []int {
	out := make([]int, n)
	copy(out, m.freeBlocks[len(m.freeBlocks)-n:])
	m.freeBlocks = m.freeBlocks[:len(m.freeBlocks)-n]
	sort.Ints(out)
	return out
}
