// Package kvpage is a paged KV-cache allocator: host (or CXL) memory is
// carved into fixed-size blocks of token slots, and each sequence's cache
// grows block by block instead of reserving its full maximum length up
// front. This is the memory-management substrate behind the serving
// layer's continuous batching — the §6 capacity pressure (KV cache
// dominating the 1.6 TB footprint) is exactly what paging relieves, by
// bounding per-sequence waste to one partial block.
//
// Blocks are refcounted so the prefix cache (internal/kvprefix) can share
// one physical block between the radix tree and every live sequence that
// reuses it: the tree owns cached blocks via AllocBlocks/ReleaseBlocks,
// and AdmitShared charges a new sequence only for its unshared suffix
// while retaining the shared prefix blocks it borrows.
package kvpage

import (
	"fmt"
	"sort"

	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/units"
)

// Manager allocates fixed-size KV blocks to sequences.
type Manager struct {
	blockTokens int
	totalBlocks int
	freeBlocks  []int
	refs        []int32 // per-block owner count; 0 ⇔ on the free list
	seqs        map[int]*sequence
	rawBlocks   int // blocks owned directly via AllocBlocks (prefix tree)
	bytesPerTok units.Bytes
}

// sequence tracks one request's cache.
type sequence struct {
	blocks []int
	shared int // leading blocks borrowed from the prefix cache (refcounted, not exclusive)
	tokens int
}

// NewManager builds an allocator over a memory budget. blockTokens is the
// page size in token slots; bytesPerToken is the model's full-stack KV
// footprint per token (all layers, K and V).
func NewManager(budget units.Bytes, blockTokens int, bytesPerToken units.Bytes) (*Manager, error) {
	if blockTokens < 1 {
		return nil, fmt.Errorf("kvpage: block size %d must be ≥1 token", blockTokens)
	}
	if bytesPerToken <= 0 {
		return nil, fmt.Errorf("kvpage: bytes/token must be positive")
	}
	blockBytes := bytesPerToken * units.Bytes(blockTokens)
	total := int(float64(budget) / float64(blockBytes))
	if total < 1 {
		return nil, fmt.Errorf("kvpage: budget %v holds no %v blocks", budget, blockBytes)
	}
	m := &Manager{
		blockTokens: blockTokens,
		totalBlocks: total,
		refs:        make([]int32, total),
		seqs:        make(map[int]*sequence),
		bytesPerTok: bytesPerToken,
	}
	m.freeBlocks = make([]int, total)
	for i := range m.freeBlocks {
		m.freeBlocks[i] = total - 1 - i // pop from the end → ascending IDs
	}
	return m, nil
}

// ForModel derives the per-token KV footprint from a model config.
func ForModel(budget units.Bytes, blockTokens int, cfg model.Config) (*Manager, error) {
	return NewManager(budget, blockTokens, cfg.KVBytes(1, 1))
}

// TotalBlocks returns the pool size.
func (m *Manager) TotalBlocks() int { return m.totalBlocks }

// BlockTokens returns the page size in token slots.
func (m *Manager) BlockTokens() int { return m.blockTokens }

// BytesPerToken returns the per-token KV footprint the pool was sized by.
func (m *Manager) BytesPerToken() units.Bytes { return m.bytesPerTok }

// FreeBlocks returns how many blocks are unallocated.
func (m *Manager) FreeBlocks() int { return len(m.freeBlocks) }

// blocksFor returns how many blocks `tokens` slots occupy.
func (m *Manager) blocksFor(tokens int) int {
	return (tokens + m.blockTokens - 1) / m.blockTokens
}

// BlocksFor returns how many blocks `tokens` slots occupy — exported for
// admission policies that reason about discounted (prefix-shared) costs.
func (m *Manager) BlocksFor(tokens int) int { return m.blocksFor(tokens) }

// CanAdmit reports whether a new sequence with the given prompt length
// (plus one block of headroom for its first generated tokens) fits now.
func (m *Manager) CanAdmit(promptTokens int) bool {
	return m.blocksFor(promptTokens)+1 <= len(m.freeBlocks)
}

// CanAdmitShared is CanAdmit with the first sharedBlocks prompt blocks
// supplied by the prefix cache: only the unshared suffix (plus the same
// one-block headroom) must come from the free list.
func (m *Manager) CanAdmitShared(promptTokens, sharedBlocks int) bool {
	need := m.blocksFor(promptTokens) - sharedBlocks + 1
	return need <= len(m.freeBlocks)
}

// CanEverAdmit reports whether a prompt of the given length could be
// admitted into a fully drained pool — the shed test serving admission
// runs before queueing work that no amount of waiting can place.
func (m *Manager) CanEverAdmit(promptTokens int) bool {
	return m.blocksFor(promptTokens)+1 <= m.totalBlocks
}

// Admit allocates blocks for a new sequence's prompt, including the one
// headroom block CanAdmit charges, so an admitted sequence is guaranteed
// its first block-boundary extension. (Before this reservation, CanAdmit
// checked blocksFor+1 but Admit popped only blocksFor — two admits could
// both pass the check against the same last free block and then both fail
// their first Extend.) Sequence IDs must be unique among live sequences.
func (m *Manager) Admit(seqID, promptTokens int) error {
	return m.AdmitShared(seqID, promptTokens, nil)
}

// AdmitShared admits a sequence whose leading blocks are shared with the
// prefix cache: shared lists pool block IDs (in prompt order) that already
// hold the first len(shared)×blockTokens prompt tokens. The sequence
// retains those blocks (refcount, counted once pool-wide) and pops only
// its unshared suffix plus the one-block headroom from the free list.
func (m *Manager) AdmitShared(seqID, promptTokens int, shared []int) error {
	if _, exists := m.seqs[seqID]; exists {
		return fmt.Errorf("kvpage: sequence %d already admitted", seqID)
	}
	if promptTokens < 1 {
		return fmt.Errorf("kvpage: prompt must be ≥1 token")
	}
	if len(shared)*m.blockTokens >= promptTokens {
		return fmt.Errorf("kvpage: %d shared blocks cover the whole %d-token prompt", len(shared), promptTokens)
	}
	for _, id := range shared {
		if id < 0 || id >= m.totalBlocks {
			return fmt.Errorf("kvpage: shared block %d out of range", id)
		}
		if m.refs[id] == 0 {
			return fmt.Errorf("kvpage: shared block %d is free", id)
		}
	}
	need := m.blocksFor(promptTokens) - len(shared) + 1
	if need > len(m.freeBlocks) {
		return fmt.Errorf("kvpage: need %d blocks, %d free", need, len(m.freeBlocks))
	}
	s := &sequence{tokens: promptTokens, shared: len(shared)}
	s.blocks = append(append([]int{}, shared...), m.pop(need)...)
	for _, id := range shared {
		m.refs[id]++
	}
	m.seqs[seqID] = s
	return nil
}

// Extend appends one generated token to a sequence, allocating a new
// block when the current one fills. Thanks to the admission headroom
// block, a freshly admitted sequence never allocates on its first
// boundary crossing.
func (m *Manager) Extend(seqID int) error {
	s, ok := m.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvpage: unknown sequence %d", seqID)
	}
	s.tokens++
	if m.blocksFor(s.tokens) > len(s.blocks) {
		if len(m.freeBlocks) == 0 {
			s.tokens-- // roll back; caller must evict or wait
			return fmt.Errorf("kvpage: out of blocks extending sequence %d", seqID)
		}
		s.blocks = append(s.blocks, m.pop(1)...)
	}
	return nil
}

// Release frees a finished sequence's blocks. Shared prefix blocks drop
// one reference and stay allocated as long as the tree (or another
// sequence) still holds them.
func (m *Manager) Release(seqID int) error {
	s, ok := m.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvpage: unknown sequence %d", seqID)
	}
	for _, id := range s.blocks {
		m.unref(id)
	}
	delete(m.seqs, seqID)
	return nil
}

// AllocBlocks pops n blocks for a direct owner (the prefix cache's radix
// tree); they are not tied to any sequence and must be returned with
// ReleaseBlocks.
func (m *Manager) AllocBlocks(n int) ([]int, error) {
	if n < 0 {
		return nil, fmt.Errorf("kvpage: negative block count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	if n > len(m.freeBlocks) {
		return nil, fmt.Errorf("kvpage: need %d blocks, %d free", n, len(m.freeBlocks))
	}
	m.rawBlocks += n
	return m.pop(n), nil
}

// ReleaseBlocks drops one reference from each directly-owned block;
// blocks return to the free list when no sequence still shares them.
func (m *Manager) ReleaseBlocks(ids []int) error {
	for _, id := range ids {
		if id < 0 || id >= m.totalBlocks {
			return fmt.Errorf("kvpage: block %d out of range", id)
		}
		if m.refs[id] == 0 {
			return fmt.Errorf("kvpage: block %d already free", id)
		}
	}
	for _, id := range ids {
		m.unref(id)
	}
	m.rawBlocks -= len(ids)
	if m.rawBlocks < 0 {
		return fmt.Errorf("kvpage: released more direct blocks than allocated")
	}
	return nil
}

// BlockRef returns a block's current reference count (invariant checks).
func (m *Manager) BlockRef(id int) int {
	if id < 0 || id >= m.totalBlocks {
		return 0
	}
	return int(m.refs[id])
}

// Live returns the number of admitted sequences.
func (m *Manager) Live() int { return len(m.seqs) }

// Tokens returns a sequence's current cache length (0 if unknown).
func (m *Manager) Tokens(seqID int) int {
	if s, ok := m.seqs[seqID]; ok {
		return s.tokens
	}
	return 0
}

// Blocks returns how many blocks a sequence holds (0 if unknown),
// including shared prefix blocks and the admission headroom block.
func (m *Manager) Blocks(seqID int) int {
	if s, ok := m.seqs[seqID]; ok {
		return len(s.blocks)
	}
	return 0
}

// SharedBlocks returns how many of a sequence's blocks are borrowed from
// the prefix cache (0 if unknown).
func (m *Manager) SharedBlocks(seqID int) int {
	if s, ok := m.seqs[seqID]; ok {
		return s.shared
	}
	return 0
}

// Stats summarizes pool occupancy.
type Stats struct {
	// TotalBlocks, UsedBlocks and FreeBlocks partition the pool.
	TotalBlocks, UsedBlocks, FreeBlocks int
	// UsedTokens counts live token slots actually occupied. Shared prefix
	// blocks are counted once (as tree-owned, fully occupied blocks), not
	// once per sequence borrowing them.
	UsedTokens int
	// InternalWaste is the fraction of allocated slots that hold no token
	// (each sequence's partial last block plus its reserved headroom
	// block) — the quantity paging keeps to at most two blocks per
	// sequence, versus max-length reservation's (maxLen − len)/maxLen.
	InternalWaste float64
	// UsedBytes is the allocated footprint.
	UsedBytes units.Bytes
}

// Stats returns the current occupancy.
func (m *Manager) Stats() Stats {
	st := Stats{TotalBlocks: m.totalBlocks, FreeBlocks: len(m.freeBlocks)}
	st.UsedBlocks = m.totalBlocks - st.FreeBlocks
	st.UsedTokens = m.rawBlocks * m.blockTokens
	for _, s := range m.seqs {
		st.UsedTokens += s.tokens - s.shared*m.blockTokens
	}
	allocSlots := st.UsedBlocks * m.blockTokens
	if allocSlots > 0 {
		st.InternalWaste = 1 - float64(st.UsedTokens)/float64(allocSlots)
	}
	st.UsedBytes = m.bytesPerTok * units.Bytes(allocSlots)
	return st
}

// MaxConcurrentSequences answers the §6-style capacity question under
// paging: how many sequences of the given mean total length fit the
// budget, accounting for per-sequence partial-block waste and the
// one-block admission headroom CanAdmit charges. (The formula previously
// omitted the headroom block, overstating capacity relative to what
// admission actually accepts.)
func (m *Manager) MaxConcurrentSequences(meanTotalTokens int) int {
	return m.MaxConcurrentSequencesShared(meanTotalTokens, 0)
}

// MaxConcurrentSequencesShared is MaxConcurrentSequences when every
// sequence's first sharedPrefixTokens tokens come from a common cached
// prefix: the prefix's full blocks are charged once pool-wide, and each
// sequence pays only its unshared suffix plus the admission headroom.
func (m *Manager) MaxConcurrentSequencesShared(meanTotalTokens, sharedPrefixTokens int) int {
	if meanTotalTokens < 1 {
		return 0
	}
	if sharedPrefixTokens < 0 {
		sharedPrefixTokens = 0
	}
	if sharedPrefixTokens >= meanTotalTokens {
		sharedPrefixTokens = meanTotalTokens - 1
	}
	sharedBlocks := sharedPrefixTokens / m.blockTokens // only whole blocks are reusable
	perSeq := m.blocksFor(meanTotalTokens) - sharedBlocks + 1
	avail := m.totalBlocks - sharedBlocks
	if avail < perSeq {
		return 0
	}
	return avail / perSeq
}

// pop removes n blocks from the free list and marks them owned.
func (m *Manager) pop(n int) []int {
	out := make([]int, n)
	copy(out, m.freeBlocks[len(m.freeBlocks)-n:])
	m.freeBlocks = m.freeBlocks[:len(m.freeBlocks)-n]
	sort.Ints(out)
	for _, id := range out {
		m.refs[id] = 1
	}
	return out
}

// unref drops one reference, returning the block to the free list at zero.
func (m *Manager) unref(id int) {
	m.refs[id]--
	if m.refs[id] == 0 {
		m.freeBlocks = append(m.freeBlocks, id)
	}
}
