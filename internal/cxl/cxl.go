// Package cxl models a CXL Type-3 memory pool attached to the host CPU:
// interleaved expander bandwidth, the added access latency over DDR, how
// CXL placement affects CPU-GPU transfer bandwidth (Figure 8a /
// Observation-1), and how it degrades AMX compute throughput
// (Figure 8b / Observation-2). It also implements the §6 memory-offloading
// policy: parameters go to CXL, KV cache and activations stay in DDR.
package cxl

import (
	"fmt"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/perf"
	"github.com/lia-sim/lia/internal/units"
)

// Pool is the CXL side of a host memory system.
type Pool struct {
	// Expanders are the installed Type-3 devices; bandwidth interleaves
	// across them with page-granularity NUMA allocation.
	Expanders []hw.CXLExpander
	// DDRBW is the host's DDR bandwidth, the baseline CXL is compared to.
	DDRBW units.BytesPerSecond
}

// FromSystem builds the pool from a system description.
func FromSystem(s hw.System) Pool {
	return Pool{Expanders: s.CXL, DDRBW: s.CPU.MemBW}
}

// Empty reports whether no expanders are installed.
func (p Pool) Empty() bool { return len(p.Expanders) == 0 }

// Capacity returns the total CXL capacity.
func (p Pool) Capacity() units.Bytes {
	var c units.Bytes
	for _, e := range p.Expanders {
		c += e.Capacity
	}
	return c
}

// Bandwidth returns the aggregate interleaved bandwidth.
func (p Pool) Bandwidth() units.BytesPerSecond {
	var bw units.BytesPerSecond
	for _, e := range p.Expanders {
		bw += e.BW
	}
	return bw
}

// ExtraLatency returns the added load-to-use latency over DDR (the
// maximum across expanders, since interleaved lines hit every device).
func (p Pool) ExtraLatency() units.Seconds {
	var worst units.Seconds
	for _, e := range p.Expanders {
		if e.ExtraLatency > worst {
			worst = e.ExtraLatency
		}
	}
	return worst
}

// interleaveRampBytes is the transfer size at which page-granularity
// interleaving reaches half its aggregate bandwidth: small transfers land
// on few pages and see single-expander bandwidth (Figure 8a's rising
// curve, saturating near 300 MB).
const interleaveRampBytes = 32 * units.MiB

// TransferBW returns the effective source bandwidth when the CPU streams
// `size` bytes out of the pool toward the GPU. Figure 8a: for large
// transfers the interleaved pool approaches DDR-class source bandwidth;
// for small ones it degrades toward a single expander.
func (p Pool) TransferBW(size units.Bytes) units.BytesPerSecond {
	if p.Empty() {
		return p.DDRBW
	}
	agg := float64(p.Bandwidth())
	single := float64(p.Expanders[0].BW)
	if size <= 0 {
		return units.BytesPerSecond(single)
	}
	frac := float64(size) / (float64(size) + float64(interleaveRampBytes))
	return units.BytesPerSecond(single + (agg-single)*frac)
}

// GPUTransferBW returns the achieved CPU→GPU bandwidth for a transfer of
// `size` bytes sourced from the pool over the given host link —
// Observation-1: the PCIe link is the bottleneck as long as the
// interleaved pool outruns it.
func (p Pool) GPUTransferBW(link hw.LinkSpec, size units.Bytes) units.BytesPerSecond {
	src := p.TransferBW(size)
	if src < link.BW {
		return src
	}
	return link.BW
}

// DegradeDevice returns a copy of the CPU compute device with its memory
// system replaced by the CXL pool: aggregate pool bandwidth instead of
// DDR bandwidth, and the extra load-to-use latency folded into the
// per-kernel launch cost. Running the perf roofline on the degraded
// device reproduces Figure 8b: memory-bound sublayers (decode attention,
// ops/byte ≈ 1) lose up to ~80% of their throughput, while compute-bound
// prefill GEMMs lose little.
func (p Pool) DegradeDevice(d perf.Device) perf.Device {
	if p.Empty() {
		return d
	}
	out := d
	out.Name = d.Name + "@CXL"
	out.MemBW = p.Bandwidth()
	// Latency sensitivity: each additional 100 ns of load-to-use latency
	// costs roughly one tile-fill worth of stall per strip; fold it into
	// the fixed overhead.
	out.Launch = d.Launch + 20*p.ExtraLatency()
	return out
}

// ThroughputRatio returns CXL-placed throughput divided by DDR-placed
// throughput for a kernel with the given FLOPs, memory traffic, and
// output rows on CPU device d — the quantity Figure 8b plots.
func (p Pool) ThroughputRatio(d perf.Device, flops units.FLOPs, traffic units.Bytes, rows int) float64 {
	if p.Empty() {
		return 1
	}
	ddr := d.Time(flops, traffic, rows)
	cxl := p.DegradeDevice(d).Time(flops, traffic, rows)
	if cxl <= 0 {
		return 1
	}
	return float64(ddr) / float64(cxl)
}

// DataClass labels what a region of host memory holds; the §6 policy
// places classes, not bytes.
type DataClass int

// Host-resident data classes.
const (
	// Parameters are model weights (read by the GPU over PCIe, and by the
	// CPU for CPU-offloaded parameter sublayers).
	Parameters DataClass = iota
	// KVCache is the per-request attention cache (read by the CPU for
	// offloaded attention scoring).
	KVCache
	// Activations are transient hidden states.
	Activations
)

// String implements fmt.Stringer.
func (c DataClass) String() string {
	switch c {
	case Parameters:
		return "parameters"
	case KVCache:
		return "kv-cache"
	case Activations:
		return "activations"
	default:
		return fmt.Sprintf("DataClass(%d)", int(c))
	}
}

// Placement says which classes live in CXL (everything else stays in DDR).
type Placement struct {
	// InCXL flags each class.
	InCXL map[DataClass]bool
}

// PolicyPlacement returns the paper's §6 memory-offloading policy:
// parameters in CXL, KV cache and activations in DDR. The policy follows
// Observation-1 (parameter transfers to GPU are PCIe-bound, so CXL is
// free) and Observation-2 (KV-dependent CPU sublayers are memory-bound,
// so the cache must stay in DDR).
func PolicyPlacement() Placement {
	return Placement{InCXL: map[DataClass]bool{Parameters: true}}
}

// NaivePlacement puts everything in CXL — the oblivious baseline
// Observation-2 warns about.
func NaivePlacement() Placement {
	return Placement{InCXL: map[DataClass]bool{Parameters: true, KVCache: true, Activations: true}}
}

// DDROnlyPlacement keeps everything in DDR.
func DDROnlyPlacement() Placement { return Placement{InCXL: map[DataClass]bool{}} }

// Holds reports whether the class is CXL-resident under this placement.
func (pl Placement) Holds(c DataClass) bool { return pl.InCXL != nil && pl.InCXL[c] }
