package cxl

import (
	"testing"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/units"
)

// TestPoolAggregatesTable pins ExtraLatency and Bandwidth over the empty
// pool and heterogeneous expander mixes: bandwidth sums across devices,
// latency is the worst device (interleaved lines hit every expander), and
// an empty pool contributes nothing.
func TestPoolAggregatesTable(t *testing.T) {
	mk := func(capGiB int, bwGB float64, lat units.Seconds) hw.CXLExpander {
		return hw.CXLExpander{
			Name:         "test-expander",
			Capacity:     units.Bytes(capGiB) * units.GiB,
			BW:           units.BytesPerSecond(bwGB) * units.GBps,
			ExtraLatency: lat,
		}
	}
	const ns = units.Seconds(1e-9)
	cases := []struct {
		name      string
		expanders []hw.CXLExpander
		wantBW    units.BytesPerSecond
		wantLat   units.Seconds
		wantCap   units.Bytes
	}{
		{
			name:      "empty pool",
			expanders: nil,
			wantBW:    0,
			wantLat:   0,
			wantCap:   0,
		},
		{
			name:      "single expander",
			expanders: []hw.CXLExpander{mk(128, 17, 155*ns)},
			wantBW:    17 * units.GBps,
			wantLat:   155 * ns,
			wantCap:   128 * units.GiB,
		},
		{
			name:      "two identical expanders",
			expanders: []hw.CXLExpander{mk(128, 17, 155*ns), mk(128, 17, 155*ns)},
			wantBW:    34 * units.GBps,
			wantLat:   155 * ns,
			wantCap:   256 * units.GiB,
		},
		{
			name: "mixed expanders: slow-but-large dominates latency",
			expanders: []hw.CXLExpander{
				mk(128, 17, 155*ns),
				mk(512, 9, 400*ns),
			},
			wantBW:  26 * units.GBps,
			wantLat: 400 * ns,
			wantCap: 640 * units.GiB,
		},
		{
			name: "mixed expanders: fast device does not hide slow latency",
			expanders: []hw.CXLExpander{
				mk(64, 26, 90*ns),
				mk(128, 17, 155*ns),
				mk(128, 17, 155*ns),
			},
			wantBW:  60 * units.GBps,
			wantLat: 155 * ns,
			wantCap: 320 * units.GiB,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Pool{Expanders: tc.expanders, DDRBW: 260 * units.GBps}
			if got := p.Bandwidth(); got != tc.wantBW {
				t.Errorf("Bandwidth() = %v, want %v", got, tc.wantBW)
			}
			if got := p.ExtraLatency(); got != tc.wantLat {
				t.Errorf("ExtraLatency() = %v, want %v", got, tc.wantLat)
			}
			if got := p.Capacity(); got != tc.wantCap {
				t.Errorf("Capacity() = %v, want %v", got, tc.wantCap)
			}
			if p.Empty() != (len(tc.expanders) == 0) {
				t.Errorf("Empty() = %v with %d expanders", p.Empty(), len(tc.expanders))
			}
		})
	}
}
