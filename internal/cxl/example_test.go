package cxl_test

import (
	"fmt"

	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/hw"
)

// ExampleFromSystem builds the pool for the paper's SPR-A100 platform
// with two Samsung 128 GB expanders and reports its aggregates.
func ExampleFromSystem() {
	sys := hw.SPRA100.WithCXL(2, hw.SamsungCXL128)
	pool := cxl.FromSystem(sys)
	fmt.Println("capacity:", pool.Capacity())
	fmt.Println("bandwidth:", pool.Bandwidth())
	fmt.Println("extra latency:", pool.ExtraLatency())
	// Output:
	// capacity: 256.00 GiB
	// bandwidth: 34.0 GB/s
	// extra latency: 155.0 ns
}

// ExampleFromSystem_empty shows that a system without expanders yields a
// transparent pool: no capacity, DDR-class behaviour everywhere.
func ExampleFromSystem_empty() {
	pool := cxl.FromSystem(hw.SPRA100)
	fmt.Println("empty:", pool.Empty())
	fmt.Println("capacity:", pool.Capacity())
	// Output:
	// empty: true
	// capacity: 0 B
}
