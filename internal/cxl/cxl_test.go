package cxl

import (
	"testing"

	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/perf"
	"github.com/lia-sim/lia/internal/units"
)

func pool2x() Pool {
	return FromSystem(hw.SPRA100.WithCXL(2, hw.SamsungCXL128))
}

func TestEmptyPoolIsTransparent(t *testing.T) {
	p := FromSystem(hw.SPRA100)
	if !p.Empty() {
		t.Fatal("expected empty pool")
	}
	if p.TransferBW(units.GiB) != hw.SPR.MemBW {
		t.Error("empty pool should report DDR bandwidth")
	}
	d := perf.CPUDevice(hw.SPR, hw.AMX)
	if got := p.DegradeDevice(d); got != d {
		t.Error("empty pool must not degrade the device")
	}
	if r := p.ThroughputRatio(d, units.TFLOP, units.GB, 64); r != 1 {
		t.Errorf("empty-pool ratio = %v, want 1", r)
	}
}

func TestPoolAggregation(t *testing.T) {
	p := pool2x()
	if p.Capacity() != 256*units.GiB {
		t.Errorf("capacity = %v", p.Capacity())
	}
	if p.Bandwidth() != 34*units.GBps {
		t.Errorf("bandwidth = %v", p.Bandwidth())
	}
	if p.ExtraLatency() != 155*units.Nanosecond {
		t.Errorf("extra latency = %v", p.ExtraLatency())
	}
}

// TestObservation1 reproduces Figure 8(a): for large transfers (≥300 MB),
// two interleaved 17 GB/s expanders match the PCIe 4.0 link, so CXL-GPU
// transfer bandwidth equals DDR-GPU transfer bandwidth.
func TestObservation1TransferParity(t *testing.T) {
	p := pool2x()
	link := hw.PCIe4x16
	big := p.GPUTransferBW(link, 300*units.MB)
	if float64(big) < 0.95*float64(link.BW) {
		t.Errorf("large-transfer CXL-GPU BW = %v, want ≈%v", big, link.BW)
	}
	// Small transfers fall toward single-expander bandwidth.
	small := p.GPUTransferBW(link, 4*units.MiB)
	if small >= big {
		t.Errorf("small transfer BW %v should be below large %v", small, big)
	}
	if small < 17*units.GBps {
		t.Errorf("small transfer BW %v fell below one expander", small)
	}
}

// TestObservation2 reproduces Figure 8(b): CXL placement degrades
// memory-bound decode attention (ops/byte ≈ 1) far more than
// compute-bound prefill GEMMs.
func TestObservation2ComputeDegradation(t *testing.T) {
	p := pool2x()
	d := perf.CPUDevice(hw.SPR, hw.AMX)

	// Sublayer 2 decode: ops/byte = 1 → heavily degraded (paper: down to
	// 18% of DDR throughput).
	memBoundFlops := units.FLOPs(10 * units.GFLOP)
	memBoundBytes := units.Bytes(10 * units.GB) // 1 FLOP/byte
	r2 := p.ThroughputRatio(d, memBoundFlops, memBoundBytes, 64)
	if r2 > 0.30 || r2 < 0.08 {
		t.Errorf("memory-bound CXL/DDR ratio = %.2f, want ≈0.13-0.25", r2)
	}

	// Sublayer 1 prefill at large B·L: compute-bound → mild degradation
	// (paper: 11-70% across the sweep; the compute-bound end loses least).
	computeFlops := units.FLOPs(10 * units.TFLOP)
	computeBytes := units.Bytes(10 * units.GB) // 1000 FLOP/byte
	r1 := p.ThroughputRatio(d, computeFlops, computeBytes, 4096)
	if r1 < 0.30 || r1 > 0.95 {
		t.Errorf("compute-bound CXL/DDR ratio = %.2f, want within the paper's 0.30-0.89 band", r1)
	}
	if r1 <= r2 {
		t.Error("compute-bound work must degrade less than memory-bound work")
	}
}

func TestDegradeDeviceFields(t *testing.T) {
	p := pool2x()
	d := perf.CPUDevice(hw.SPR, hw.AMX)
	g := p.DegradeDevice(d)
	if g.MemBW != p.Bandwidth() {
		t.Errorf("degraded MemBW = %v, want %v", g.MemBW, p.Bandwidth())
	}
	if g.Launch <= d.Launch {
		t.Error("degraded device should carry extra latency")
	}
	if g.Ceiling != d.Ceiling {
		t.Error("compute ceiling must not change")
	}
}

func TestPlacements(t *testing.T) {
	pol := PolicyPlacement()
	if !pol.Holds(Parameters) {
		t.Error("policy must place parameters in CXL")
	}
	if pol.Holds(KVCache) || pol.Holds(Activations) {
		t.Error("policy must keep KV cache and activations in DDR")
	}
	naive := NaivePlacement()
	for _, c := range []DataClass{Parameters, KVCache, Activations} {
		if !naive.Holds(c) {
			t.Errorf("naive placement should hold %v", c)
		}
	}
	ddr := DDROnlyPlacement()
	if ddr.Holds(Parameters) {
		t.Error("DDR-only placement holds nothing in CXL")
	}
}

func TestDataClassString(t *testing.T) {
	if Parameters.String() != "parameters" || KVCache.String() != "kv-cache" || Activations.String() != "activations" {
		t.Error("DataClass strings wrong")
	}
	if DataClass(9).String() != "DataClass(9)" {
		t.Error("unknown DataClass formatting")
	}
}
