package gateway

import (
	"fmt"
	"strings"

	"github.com/lia-sim/lia/internal/batchpolicy"
	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/kvprefix"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/tensor"
)

// prefixAdmitter is the KV admission backend when the prefix cache is on:
// it fronts the paged pool with the radix tree so admission charges only
// a prompt's unshared suffix. The lifecycle per request:
//
//	CanAdmit: refetch spilled prefix state, look up the longest cached
//	          prefix, and (under pressure) reclaim cold tree blocks; the
//	          match is memoized for the Admit that follows in the same
//	          scheduling round, keeping the two decisions consistent.
//	Admit:    pin the match (refcounting the deepest node) and charge the
//	          pool for blocksFor(prompt) − matched + 1, retaining the
//	          shared blocks.
//	Release:  drop the pool reservation and the pin — reached on finish,
//	          preemption, cancel, and failure alike, because every removal
//	          path in the scheduler routes through KV.Release.
//
// All methods run on the batcher goroutine; no internal locking needed
// beyond the tree's own.
type prefixAdmitter struct {
	pool    *kvpage.Manager
	tree    *kvprefix.Tree
	prompts map[int][]int          // scheduler ref → prompt
	matches map[int]kvprefix.Match // ref → match memoized CanAdmit→Admit
	pins    map[int]*kvprefix.Pin  // pool seq id → pin
}

// The admitter must satisfy the scheduler's KV backend interface.
var _ batchpolicy.KV = (*prefixAdmitter)(nil)

func newPrefixAdmitter(pool *kvpage.Manager, tree *kvprefix.Tree) *prefixAdmitter {
	return &prefixAdmitter{
		pool:    pool,
		tree:    tree,
		prompts: map[int][]int{},
		matches: map[int]kvprefix.Match{},
		pins:    map[int]*kvprefix.Pin{},
	}
}

// register associates a scheduler ref with its prompt (the batcher calls
// it on accept; Item carries only lengths).
func (a *prefixAdmitter) register(ref int, prompt []int) { a.prompts[ref] = prompt }

// forget drops a ref's bookkeeping once the request leaves the gateway.
func (a *prefixAdmitter) forget(ref int) {
	delete(a.prompts, ref)
	delete(a.matches, ref)
}

func (a *prefixAdmitter) CanAdmit(it batchpolicy.Item) bool {
	prompt := a.prompts[it.Ref]
	if prompt == nil {
		return a.pool.CanAdmit(it.PromptLen)
	}
	a.tree.Refetch(prompt)
	m := a.tree.Lookup(prompt)
	a.matches[it.Ref] = m
	need := a.pool.BlocksFor(it.PromptLen) - m.Blocks() + 1
	if a.pool.FreeBlocks() < need {
		a.tree.EnsureFree(need, m)
	}
	return a.pool.FreeBlocks() >= need
}

func (a *prefixAdmitter) Admit(seqID int, it batchpolicy.Item) error {
	prompt := a.prompts[it.Ref]
	if prompt == nil {
		return a.pool.Admit(seqID, it.PromptLen)
	}
	m, ok := a.matches[it.Ref]
	if !ok {
		m = a.tree.Lookup(prompt)
	}
	delete(a.matches, it.Ref)
	pin := a.tree.Pin(m)
	if err := a.pool.AdmitShared(seqID, it.PromptLen, pin.Blocks()); err != nil {
		pin.Release()
		return err
	}
	a.pins[seqID] = pin
	return nil
}

func (a *prefixAdmitter) Extend(seqID int) error { return a.pool.Extend(seqID) }

func (a *prefixAdmitter) Release(seqID int) error {
	err := a.pool.Release(seqID)
	if pin, ok := a.pins[seqID]; ok {
		pin.Release()
		delete(a.pins, seqID)
	}
	return err
}

// seedFor assembles the llm seed for an admitted sequence: from its pin
// on the pooled path, or a fresh tree capture on the pool-less path.
func (g *Gateway) seedFor(seqID int, prompt []int) *llm.KVSeed {
	if g.tree == nil {
		return nil
	}
	var segs []kvprefix.Segment
	if g.prefix != nil {
		if pin, ok := g.prefix.pins[seqID]; ok {
			segs = pin.Segments()
		}
	} else {
		segs, _ = g.tree.Seed(prompt)
	}
	if len(segs) == 0 {
		return nil
	}
	seed := &llm.KVSeed{Segments: make([]llm.KVSegment, len(segs))}
	for i, s := range segs {
		seed.Segments[i] = llm.KVSegment{K: s.K, V: s.V}
	}
	return seed
}

// insertPrefix caches a freshly prefilled sequence's full blocks
// (best-effort; the tree skips under pressure rather than failing).
func (g *Gateway) insertPrefix(prompt []int, s *llm.Sequence) {
	if g.tree == nil {
		return
	}
	_, _ = g.tree.Insert(prompt, func(from, to int) (k, v []tensor.Matrix, err error) {
		seg, err := s.ExportKV(from, to)
		return seg.K, seg.V, err
	})
}

// PrefixStats snapshots the prefix cache's counters; ok is false when the
// cache is disabled.
func (g *Gateway) PrefixStats() (kvprefix.Stats, bool) {
	if g.tree == nil {
		return kvprefix.Stats{}, false
	}
	return g.tree.Stats(), true
}

// prefixProm renders the prefix-cache counters in Prometheus text format.
func prefixProm(st kvprefix.Stats) string {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("lia_prefix_lookups_total", "Prefix-cache lookups at admission.", st.Lookups)
	counter("lia_prefix_hits_total", "Lookups that reused at least one cached block.", st.Hits)
	counter("lia_prefix_misses_total", "Lookups that reused nothing.", st.Misses)
	counter("lia_prefix_hit_tokens_total", "Prompt tokens served from the cache.", st.HitTokens)
	counter("lia_prefix_lookup_tokens_total", "Prompt tokens looked up.", st.LookupTokens)
	counter("lia_prefix_inserts_total", "Nodes inserted into the radix tree.", st.Inserts)
	counter("lia_prefix_insert_skips_total", "Insertions skipped (pressure, frozen node, or sub-block divergence).", st.InsertSkips)
	counter("lia_prefix_evictions_total", "Nodes evicted from the tree.", st.Evictions)
	counter("lia_prefix_spills_total", "Nodes spilled to the cold memory tier.", st.Spills)
	counter("lia_prefix_refetches_total", "Spilled nodes restored into the pool.", st.Refetches)
	gauge("lia_prefix_nodes", "Radix-tree nodes.", st.Nodes)
	gauge("lia_prefix_resident_blocks", "Pool blocks held by the tree.", st.ResidentBlocks)
	gauge("lia_prefix_cold_nodes", "Nodes currently spilled cold.", st.ColdNodes)
	gauge("lia_prefix_pinned_nodes", "Nodes pinned by live sequences.", st.PinnedNodes)
	return b.String()
}
