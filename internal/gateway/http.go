package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// GenerateRequest is the POST /v1/generate body.
type GenerateRequest struct {
	// Prompt is the tokenized prompt (the repo has no tokenizer; clients
	// send token ids).
	Prompt []int `json:"prompt"`
	// MaxNewTokens is how many tokens to generate.
	MaxNewTokens int `json:"max_new_tokens"`
	// TimeoutMs, when positive, bounds the request end to end (queue wait
	// included) on the server side.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// GenerateResponse is the POST /v1/generate success body.
type GenerateResponse struct {
	Tokens  []int   `json:"tokens"`
	QueueMs float64 `json:"queue_ms"`
	TTFTMs  float64 `json:"ttft_ms"`
	TotalMs float64 `json:"total_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the gateway's HTTP API:
//
//	POST /v1/generate  {"prompt":[...],"max_new_tokens":n} → tokens + timings
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      Prometheus text exposition
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", g.handleGenerate)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return mux
}

func (g *Gateway) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	res, err := g.Submit(ctx, req.Prompt, req.MaxNewTokens)
	if err != nil {
		status := statusFor(err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			// Retryable conditions: tell well-behaved clients when to come
			// back. The header must land before writeJSON commits the
			// status line.
			w.Header().Set("Retry-After", retryAfterSeconds)
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, GenerateResponse{
		Tokens:  res.Tokens,
		QueueMs: float64(res.QueueWait) / float64(time.Millisecond),
		TTFTMs:  float64(res.TTFT) / float64(time.Millisecond),
		TotalMs: float64(res.Total) / float64(time.Millisecond),
	})
}

// statusFor maps a Submit error onto its HTTP status: shed traffic is
// 429 (retryable), a draining server 503, a blown deadline 504, a
// client-side cancel 499 (nginx's convention), anything else a 400
// validation failure.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusBadRequest
	}
}

// retryAfterSeconds is the Retry-After hint on retryable failures (shed
// traffic and a draining server): a drain is bounded by the shutdown
// deadline and queue pressure clears within a scheduling round or two,
// so a short constant beats computing a fake precise estimate.
const retryAfterSeconds = "1"

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if g.Draining() {
		// Draining is terminal for this process but load balancers poll:
		// the Retry-After keeps naive pollers from hammering the endpoint.
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(g.Prometheus()))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
