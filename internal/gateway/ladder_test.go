package gateway

import (
	"strings"
	"sync"
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/offload"
	"github.com/lia-sim/lia/internal/units"
)

// mixedWorkload is the latency-ladder differential mix: short prompts, a
// couple of long ones (so chunked prefill has rounds to interleave), and
// repeats (so the batcher sees co-resident duplicates).
func mixedWorkload(vocab int) [][]int {
	var prompts [][]int
	for i := 0; i < 6; i++ {
		p := make([]int, 3+i%4)
		for j := range p {
			p[j] = (i*13 + j*7 + 1) % vocab
		}
		prompts = append(prompts, p)
	}
	for i := 0; i < 2; i++ {
		p := make([]int, 24+8*i)
		for j := range p {
			p[j] = (i*29 + j*3 + 5) % vocab
		}
		prompts = append(prompts, p)
	}
	prompts = append(prompts, append([]int{}, prompts[0]...))
	return prompts
}

// ladderConfigs enumerates the ladder's gateway modes: chunked prefill,
// speculative decoding, and both together, each with and without a
// bounded KV pool (the pool exercises the spec allowance top-up and
// chunked preemption paths).
func ladderConfigs(kv units.Bytes) map[string]Config {
	return map[string]Config{
		"chunked":      {MaxBatch: 4, QueueDepth: 64, PrefillChunk: 5},
		"spec":         {MaxBatch: 4, QueueDepth: 64, SpecGamma: 3},
		"spec+chunked": {MaxBatch: 4, QueueDepth: 64, SpecGamma: 3, PrefillChunk: 5},
		"chunked+pool": {MaxBatch: 4, QueueDepth: 64, PrefillChunk: 5, KVBudget: kv, KVBlockTokens: 4},
		"spec+pool":    {MaxBatch: 4, QueueDepth: 64, SpecGamma: 2, KVBudget: kv, KVBlockTokens: 4},
		"spec+chunked+pool": {MaxBatch: 4, QueueDepth: 64, SpecGamma: 3, PrefillChunk: 5,
			KVBudget: kv, KVBlockTokens: 4},
	}
}

// TestLadderBitIdentical is the gateway-level differential bar for the
// latency ladder: the same workload served with chunked prefill,
// speculative decoding, and both at once — with and without KV-pool
// pressure — must match solo Generate token for token.
func TestLadderBitIdentical(t *testing.T) {
	e := testExecutor(t)
	prompts := mixedWorkload(e.Model.Cfg.VocabSize)
	const n = 9

	want := make([][]int, len(prompts))
	for i, p := range prompts {
		want[i] = reference(t, e, p, n)
	}

	for name, cfg := range ladderConfigs(e.Model.Cfg.KVBytes(1, 256)) {
		t.Run(name, func(t *testing.T) {
			g, err := New(testExecutor(t), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for wave := 0; wave < 2; wave++ {
				got := runGateway(t, g, prompts, n)
				for i := range prompts {
					if got[i] == nil {
						continue // already reported by runGateway
					}
					if len(got[i]) != n {
						t.Fatalf("wave %d prompt %d: %d tokens, want %d", wave, i, len(got[i]), n)
					}
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("wave %d prompt %d: got %v want %v", wave, i, got[i], want[i])
						}
					}
				}
			}
			snap := g.Snapshot()
			if cfg.PrefillChunk > 0 && snap.PrefillChunks == 0 {
				t.Error("chunked gateway computed no prompt chunks")
			}
			if cfg.SpecGamma > 0 {
				if snap.SpecRounds == 0 || snap.SpecDrafted == 0 {
					t.Errorf("speculative gateway ran no draft rounds: %+v", snap)
				}
				if snap.SpecAccepted > snap.SpecDrafted {
					t.Errorf("accepted %d > drafted %d", snap.SpecAccepted, snap.SpecDrafted)
				}
				if snap.SpecEmitted < snap.SpecRounds {
					t.Errorf("emitted %d < rounds %d: every round must emit", snap.SpecEmitted, snap.SpecRounds)
				}
			}
			shutdown(t, g)
		})
	}
}

// TestLadderMetricsExposition: the spec and chunked counters appear in
// the Prometheus rendering and agree with the snapshot.
func TestLadderMetricsExposition(t *testing.T) {
	g, err := New(testExecutor(t), Config{MaxBatch: 4, QueueDepth: 16, SpecGamma: 2, PrefillChunk: 3})
	if err != nil {
		t.Fatal(err)
	}
	prompts := [][]int{{5, 17, 42, 9, 63, 2, 11}, {9, 33, 71}}
	runGateway(t, g, prompts, 6)
	prom := g.Prometheus()
	for _, name := range []string{
		"lia_prefill_chunks_total",
		"lia_spec_rounds_total",
		"lia_spec_drafted_tokens_total",
		"lia_spec_accepted_tokens_total",
		"lia_spec_emitted_tokens_total",
	} {
		if !strings.Contains(prom, name) {
			t.Errorf("metrics exposition missing %s", name)
		}
	}
	snap := g.Snapshot()
	if snap.PrefillChunks == 0 || snap.SpecRounds == 0 {
		t.Fatalf("ladder counters flat: %+v", snap)
	}
	// Tokens served through spec steps are part of the generated total.
	if snap.SpecEmitted > snap.Tokens {
		t.Fatalf("spec emitted %d > total tokens %d", snap.SpecEmitted, snap.Tokens)
	}
	shutdown(t, g)
}

// TestLadderConfigValidation: the compositions the ladder rejects.
func TestLadderConfigValidation(t *testing.T) {
	e := testExecutor(t)
	if _, err := New(e, Config{MaxBatch: 2, PrefillChunk: -1}); err == nil {
		t.Error("negative prefill chunk accepted")
	}
	if _, err := New(e, Config{MaxBatch: 2, SpecGamma: -2}); err == nil {
		t.Error("negative spec gamma accepted")
	}
	if _, err := New(e, Config{MaxBatch: 2, SpecGamma: 2, SpecDraftLayers: -1}); err == nil {
		t.Error("negative draft layers accepted")
	}
	// Spec + tiered-memory offload: rejected at validation.
	cfg := e.Model.Cfg
	plan, err := offload.NewPlan(offload.Config{
		System: offload.TinySystem(cfg, 1, 128, 0, 1), Model: cfg,
		Batch: 1, Context: 128, Placement: cxl.PolicyPlacement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err := offload.NewHost(plan, core.PartialCPU)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	hosted := testExecutor(t)
	hosted.Mem = host
	if _, err := New(hosted, Config{MaxBatch: 2, SpecGamma: 2, Offload: host}); err == nil {
		t.Error("spec + offload accepted")
	}
	// Spec on an INT8 executor: rejected at construction.
	int8e := testExecutor(t)
	int8e.EnableINT8()
	if _, err := New(int8e, Config{MaxBatch: 2, SpecGamma: 2}); err == nil {
		t.Error("spec + INT8 accepted")
	}
}

// TestLadderConcurrentSpecChunked floods a spec+chunked gateway from
// many goroutines — the -race run's target for the new batcher paths.
func TestLadderConcurrentSpecChunked(t *testing.T) {
	e := testExecutor(t)
	g, err := New(testExecutor(t), Config{
		MaxBatch:      4,
		QueueDepth:    64,
		SpecGamma:     2,
		PrefillChunk:  4,
		KVBudget:      e.Model.Cfg.KVBytes(1, 192),
		KVBlockTokens: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	prompts := mixedWorkload(e.Model.Cfg.VocabSize)
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runGateway(t, g, prompts, 7)
		}()
	}
	wg.Wait()
	shutdown(t, g)
}
