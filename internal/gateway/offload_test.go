package gateway

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/cxl"
	"github.com/lia-sim/lia/internal/offload"
)

// TestGatewayOverOffloadHost serves live traffic through an executor
// whose weights and KV cache live in the tiered runtime: admission takes
// its KV budget from the host's KV tier, responses stay bit-identical to
// solo generation, tier counters render into /metrics, and every
// retired sequence returns its KV pages to the tiers.
func TestGatewayOverOffloadHost(t *testing.T) {
	baseline := runtime.NumGoroutine()
	exec := testExecutor(t)
	cfg := exec.Model.Cfg
	sys := offload.TinySystem(cfg, 1, 128, 0, 1)
	plan, err := offload.NewPlan(offload.Config{
		System: sys, Model: cfg, Batch: 1, Context: 128,
		Placement: cxl.PolicyPlacement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	host, err := offload.NewHost(plan, core.PartialCPU)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	exec.Mem = host

	g, err := New(exec, Config{MaxBatch: 4, Offload: host})
	if err != nil {
		t.Fatal(err)
	}
	if g.cfg.KVBudget != host.KVBudget() {
		t.Fatalf("admission budget %v, host KV budget %v", g.cfg.KVBudget, host.KVBudget())
	}

	prompts := [][]int{{5, 17, 42}, {9, 63}, {1, 2, 3, 4}, {7, 11}}
	var wg sync.WaitGroup
	results := make([]Result, len(prompts))
	errs := make([]error, len(prompts))
	for i, p := range prompts {
		wg.Add(1)
		go func(i int, p []int) {
			defer wg.Done()
			results[i], errs[i] = g.Submit(context.Background(), p, 6)
		}(i, p)
	}
	wg.Wait()
	for i, p := range prompts {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if want := reference(t, exec, p, 6); !reflect.DeepEqual(results[i].Tokens, want) {
			t.Errorf("request %d diverged under tiered hosting:\n got %v\nwant %v", i, results[i].Tokens, want)
		}
	}

	prom := g.Prometheus()
	for _, want := range []string{
		"lia_gateway_requests_completed_total",
		`lia_offload_tier_used_bytes{tier="hbm"}`,
		`lia_offload_tier_reads_total{tier="ddr"}`,
		"lia_offload_passes_decode_total",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	shutdown(t, g)
	snap := host.Snapshot()
	if snap.Prefills == 0 || snap.Decodes == 0 {
		t.Fatalf("host saw no passes: %+v", snap)
	}
	// Finished sequences were Released, so their tier-hosted KV pages are
	// back in the pool: residency equals the immutable weight footprint.
	tiers := snap.Tiers
	if tiers[offload.DDR].Frees == 0 {
		t.Errorf("no KV pages freed on retirement: %+v", tiers[offload.DDR])
	}
	if tiers[offload.DDR].Used != 0 {
		t.Errorf("DDR residency %s after all retirements (KV tier should be empty)", tiers[offload.DDR].Used)
	}
	host.Close()
	checkNoGoroutineLeak(t, baseline)
}
