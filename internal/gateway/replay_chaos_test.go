package gateway

import (
	"reflect"
	"testing"

	"github.com/lia-sim/lia/internal/batchpolicy"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/units"
)

// accounting asserts the replay's outcome identity: every request is
// resolved exactly once and the summary counts match the per-request
// records — the invariant every scenario trial re-checks.
func accounting(t *testing.T, res ReplayResult, n int) {
	t.Helper()
	if got := res.Completed + res.Shed + res.Canceled; got != n {
		t.Fatalf("outcome accounting: completed %d + shed %d + canceled %d = %d, want %d",
			res.Completed, res.Shed, res.Canceled, got, n)
	}
	var c, s, x int
	for i, r := range res.Requests {
		switch r.Outcome {
		case ReplayCompleted:
			c++
		case ReplayShed:
			s++
		case ReplayCanceled:
			x++
		default:
			t.Fatalf("request %d left unresolved: %+v", i, r)
		}
		if r.Finish == 0 && r.Outcome != ReplayShed {
			// A shed at virtual time 0 legitimately finishes at 0.
			if r.Arrival > 0 {
				t.Fatalf("request %d has no finish time: %+v", i, r)
			}
		}
	}
	if c != res.Completed || s != res.Shed || x != res.Canceled {
		t.Fatalf("summary counts (%d/%d/%d) disagree with records (%d/%d/%d)",
			res.Completed, res.Shed, res.Canceled, c, s, x)
	}
}

// TestReplayShedAtQueueDepth: a burst that exceeds the queue depth is
// shed deterministically — the first QueueDepth waiters are kept FIFO,
// the overflow is rejected at arrival, exactly like the live gateway's
// full submit channel answering 429.
func TestReplayShedAtQueueDepth(t *testing.T) {
	// Two queue slots; six simultaneous arrivals all land before the
	// batcher runs a round (exactly like a burst filling the live submit
	// channel): the first two are kept, the last four are shed.
	reqs := make([]ReplayRequest, 6)
	for i := range reqs {
		reqs[i] = ReplayRequest{PromptLen: 4, OutputLen: 3}
	}
	res, err := Replay(ReplayConfig{
		MaxBatch:   1,
		Model:      llm.TinyConfig(),
		Costs:      diffCosts(),
		QueueDepth: 2,
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, res, len(reqs))
	if res.Completed != 2 || res.Shed != 4 || res.Canceled != 0 {
		t.Fatalf("completed/shed/canceled = %d/%d/%d, want 2/4/0", res.Completed, res.Shed, res.Canceled)
	}
	// FIFO: the kept requests are exactly the first two.
	for i, r := range res.Requests {
		want := ReplayCompleted
		if i >= 2 {
			want = ReplayShed
		}
		if r.Outcome != want {
			t.Fatalf("request %d outcome %q, want %q", i, r.Outcome, want)
		}
	}
	if res.Requests[0].FirstToken == 0 || res.Requests[0].Finish <= res.Requests[0].FirstToken {
		t.Fatalf("completed request timeline broken: %+v", res.Requests[0])
	}
}

// TestReplayCancelWhileWaiting: a request whose client walks away before
// it is ever admitted leaves the queue with no scheduler events and no
// tokens.
func TestReplayCancelWhileWaiting(t *testing.T) {
	reqs := []ReplayRequest{
		{PromptLen: 4, OutputLen: 50, Arrival: 0},
		// Arrives immediately but cancels long before the head-of-line
		// request's 50 decode steps finish (batch of one ⇒ it starves).
		{PromptLen: 4, OutputLen: 5, Arrival: 0.001, CancelAt: 0.010},
	}
	res, err := Replay(ReplayConfig{
		MaxBatch: 1,
		Model:    llm.TinyConfig(),
		Costs:    diffCosts(),
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, res, len(reqs))
	if res.Canceled != 1 || res.Completed != 1 {
		t.Fatalf("completed/canceled = %d/%d, want 1/1", res.Completed, res.Canceled)
	}
	r := res.Requests[1]
	if r.Outcome != ReplayCanceled || r.Admitted != 0 || r.FirstToken != 0 || r.Emitted != 0 {
		t.Fatalf("waiting cancel should leave no admission trace: %+v", r)
	}
	for _, e := range res.Events {
		if e.Ref == 1 {
			t.Fatalf("never-admitted request leaked a scheduler event: %+v", e)
		}
	}
}

// TestReplayDeadlineReapsRunning: a deadline that expires mid-decode
// removes the running sequence (EventRemove — the live reaper's
// signature), records the partial token count, and frees the batch slot
// for the next request.
func TestReplayDeadlineReapsRunning(t *testing.T) {
	reqs := []ReplayRequest{
		// Prefill costs 1*4ms = 4ms; each decode step ~(1+ctx)ms. The
		// deadline lands well before the 100 steps finish.
		{PromptLen: 4, OutputLen: 100, Arrival: 0, Deadline: 0.050},
		{PromptLen: 4, OutputLen: 2, Arrival: 0.5},
	}
	res, err := Replay(ReplayConfig{
		MaxBatch: 1,
		Model:    llm.TinyConfig(),
		Costs:    diffCosts(),
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, res, len(reqs))
	if res.Canceled != 1 || res.Completed != 1 {
		t.Fatalf("completed/canceled = %d/%d, want 1/1", res.Completed, res.Canceled)
	}
	r := res.Requests[0]
	if r.Outcome != ReplayCanceled || r.FirstToken == 0 {
		t.Fatalf("reaped request should have been admitted and prefilled: %+v", r)
	}
	if r.Emitted <= 0 || r.Emitted >= 100 {
		t.Fatalf("reaped mid-decode should report partial output, got %d tokens", r.Emitted)
	}
	if r.Finish < 0.050 {
		t.Fatalf("reap happened before the deadline: finish %v", r.Finish)
	}
	var removes int
	for _, e := range res.Events {
		if e.Kind == batchpolicy.EventRemove && e.Ref == 0 {
			removes++
		}
	}
	if removes != 1 {
		t.Fatalf("running reap must emit exactly one EventRemove, got %d", removes)
	}
	if res.Requests[1].Outcome != ReplayCompleted {
		t.Fatalf("slot freed by the reap should serve the next request: %+v", res.Requests[1])
	}
}

// TestReplayCancelStormDeterministic: a chaotic mix — queue saturation,
// waiting cancels, running deadlines, a tight KV pool forcing
// preemptions — must resolve every request, and two runs of the same
// configuration must produce deeply equal results (the byte-for-byte
// reproducibility the scenario harness publishes).
func TestReplayCancelStormDeterministic(t *testing.T) {
	modelCfg := llm.TinyConfig()
	reqs := diffRequests(7, 60)
	for i := range reqs {
		switch i % 4 {
		case 1:
			reqs[i].CancelAt = reqs[i].Arrival + 0.015
		case 2:
			reqs[i].Deadline = reqs[i].Arrival + 0.120
		}
	}
	run := func() ReplayResult {
		res, err := Replay(ReplayConfig{
			MaxBatch:      4,
			Model:         modelCfg,
			KVBudget:      modelCfg.KVBytes(1, 64),
			KVBlockTokens: 4,
			Costs:         diffCosts(),
			QueueDepth:    6,
		}, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	accounting(t, a, len(reqs))
	if a.Canceled == 0 {
		t.Fatal("storm designed to cancel saw no cancellations — chaos coverage lost")
	}
	b := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay is not deterministic:\nrun1: %+v counts %d/%d/%d\nrun2: %+v counts %d/%d/%d",
			a.Makespan, a.Completed, a.Shed, a.Canceled, b.Makespan, b.Completed, b.Shed, b.Canceled)
	}
}

// TestReplayZeroFieldsKeepHistoricalShape: with the new fields zero the
// result must look exactly like the pre-chaos replay — every request
// completed, no sheds or cancels, and per-request records consistent
// with the summary (the differential test separately pins the event
// stream bit-identical to the simulator).
func TestReplayZeroFieldsKeepHistoricalShape(t *testing.T) {
	reqs := diffRequests(3, 40)
	res, err := Replay(ReplayConfig{
		MaxBatch:      4,
		Model:         llm.TinyConfig(),
		KVBudget:      llm.TinyConfig().KVBytes(1, 64),
		KVBlockTokens: 4,
		Costs:         diffCosts(),
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, res, len(reqs))
	if res.Completed != len(reqs) || res.Shed != 0 || res.Canceled != 0 {
		t.Fatalf("zero-field replay must complete everything: %d/%d/%d", res.Completed, res.Shed, res.Canceled)
	}
	var prev units.Seconds
	for i, r := range res.Requests {
		if r.Admitted < r.Arrival || r.FirstToken <= r.Admitted || r.Finish < r.FirstToken {
			t.Fatalf("request %d timeline out of order: %+v", i, r)
		}
		if r.Emitted != reqs[i].OutputLen {
			t.Fatalf("request %d emitted %d tokens, want %d", i, r.Emitted, reqs[i].OutputLen)
		}
		if r.Arrival < prev {
			t.Fatalf("records must keep request order")
		}
		prev = r.Arrival
	}
}
