package gateway

import (
	"math/rand"
	"testing"

	"github.com/lia-sim/lia/internal/batchpolicy"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/serve"
	"github.com/lia-sim/lia/internal/trace"
	"github.com/lia-sim/lia/internal/units"
)

// diffCosts is the shared deterministic fake engine: whole-millisecond
// costs keep every clock comparison exact in float64, so the two sides
// can only diverge through scheduling decisions, never rounding.
func diffCosts() *serve.StepCosts {
	return &serve.StepCosts{
		Prefill: func(b, maxIn int) (units.Seconds, error) { return units.Seconds(b*maxIn) * 1e-3, nil },
		Decode:  func(b, meanCtx int) (units.Seconds, error) { return units.Seconds(b+meanCtx) * 1e-3, nil },
	}
}

// diffRequests builds a seeded request stream sized for a tight tiny
// pool: prompts of 2–14 tokens, outputs of 1–24, arrivals bunched enough
// to keep the batch full and the pool preempting.
func diffRequests(seed int64, n int) []ReplayRequest {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ReplayRequest, n)
	var clock units.Seconds
	for i := range out {
		clock += units.Seconds(rng.ExpFloat64() * 5e-3)
		// Worst case 10+14 = 24 total tokens (6 four-token blocks): even the
		// tightest scenario pool below can hold any one sequence alone, so
		// a sole-sequence extension failure is impossible and every request
		// eventually completes on both sides.
		out[i] = ReplayRequest{
			PromptLen: 2 + rng.Intn(9),
			OutputLen: 1 + rng.Intn(14),
			Arrival:   clock,
		}
	}
	return out
}

// TestDifferentialSimulatorVsGateway is the alignment test the policy
// extraction exists for: one trace, one fake cost model, one pool
// construction — replayed through serve.SimulateContinuous and through
// the gateway's scheduling loop — must produce bit-identical event
// streams: the same admissions, the same preemption victims with the
// same sequence ids, the same completion order. Both sides run twice to
// pin determinism of each on its own.
func TestDifferentialSimulatorVsGateway(t *testing.T) {
	modelCfg := llm.TinyConfig()
	for _, tc := range []struct {
		name     string
		kvTokens int // pool capacity in tokens (0 = unconstrained)
		maxBatch int
		seed     int64
		n        int
	}{
		{"unconstrained", 0, 4, 1, 40},
		{"tight-pool", 64, 6, 2, 60},
		{"tiny-pool-heavy-preemption", 32, 8, 3, 60},
		{"batch-of-one", 48, 1, 4, 30},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var budget units.Bytes
			if tc.kvTokens > 0 {
				budget = modelCfg.KVBytes(1, tc.kvTokens)
			}
			reqs := diffRequests(tc.seed, tc.n)

			simulate := func() ([]batchpolicy.Event, serve.Metrics) {
				var events []batchpolicy.Event
				cfg := serve.Config{
					Model:         modelCfg,
					MaxBatch:      tc.maxBatch,
					KVBudget:      budget,
					KVBlockTokens: 4,
					StepCosts:     diffCosts(),
					OnEvent:       func(e batchpolicy.Event) { events = append(events, e) },
				}
				sreqs := make([]serve.Request, len(reqs))
				for i, r := range reqs {
					sreqs[i] = serve.Request{
						Request: trace.Request{InputLen: r.PromptLen, OutputLen: r.OutputLen},
						Arrival: r.Arrival,
					}
				}
				m, err := serve.SimulateContinuous(cfg, sreqs)
				if err != nil {
					t.Fatal(err)
				}
				return events, m
			}
			replay := func() ReplayResult {
				r, err := Replay(ReplayConfig{
					MaxBatch:      tc.maxBatch,
					Model:         modelCfg,
					KVBudget:      budget,
					KVBlockTokens: 4,
					Costs:         diffCosts(),
				}, reqs)
				if err != nil {
					t.Fatal(err)
				}
				return r
			}

			simEvents, simMetrics := simulate()
			gwRes := replay()

			if len(simEvents) != len(gwRes.Events) {
				t.Fatalf("event streams differ in length: simulator %d, gateway %d", len(simEvents), len(gwRes.Events))
			}
			for i := range simEvents {
				if simEvents[i] != gwRes.Events[i] {
					t.Fatalf("event %d diverges: simulator %+v, gateway %+v", i, simEvents[i], gwRes.Events[i])
				}
			}
			if simMetrics.Completed != gwRes.Completed {
				t.Errorf("completions: simulator %d, gateway %d", simMetrics.Completed, gwRes.Completed)
			}
			if simMetrics.Preemptions != gwRes.Preemptions {
				t.Errorf("preemptions: simulator %d, gateway %d", simMetrics.Preemptions, gwRes.Preemptions)
			}
			if simMetrics.Makespan != gwRes.Makespan {
				t.Errorf("makespan: simulator %v, gateway %v", simMetrics.Makespan, gwRes.Makespan)
			}
			if gwRes.Completed != tc.n {
				t.Errorf("completed %d of %d requests", gwRes.Completed, tc.n)
			}
			if tc.name == "tiny-pool-heavy-preemption" && gwRes.Preemptions == 0 {
				t.Error("scenario designed to preempt saw no preemptions — differential coverage lost")
			}

			// Bit-determinism of each side on its own.
			simEvents2, simMetrics2 := simulate()
			gwRes2 := replay()
			if simMetrics != simMetrics2 || len(simEvents) != len(simEvents2) {
				t.Error("simulator not deterministic across runs")
			}
			if len(gwRes.Events) != len(gwRes2.Events) || gwRes.Makespan != gwRes2.Makespan {
				t.Error("gateway replay not deterministic across runs")
			}
			for i := range simEvents {
				if simEvents[i] != simEvents2[i] || gwRes.Events[i] != gwRes2.Events[i] {
					t.Fatalf("event %d unstable across identical runs", i)
				}
			}
		})
	}
}

// TestReplayValidation: degenerate replay configurations are rejected.
func TestReplayValidation(t *testing.T) {
	costs := diffCosts()
	good := ReplayConfig{MaxBatch: 2, Model: llm.TinyConfig(), Costs: costs}
	reqs := []ReplayRequest{{PromptLen: 2, OutputLen: 2}}
	if _, err := Replay(good, reqs); err != nil {
		t.Fatalf("valid replay rejected: %v", err)
	}
	if _, err := Replay(ReplayConfig{Model: llm.TinyConfig(), Costs: costs}, reqs); err == nil {
		t.Error("MaxBatch=0 accepted")
	}
	if _, err := Replay(ReplayConfig{MaxBatch: 2, Model: llm.TinyConfig()}, reqs); err == nil {
		t.Error("missing costs accepted")
	}
	unsorted := []ReplayRequest{{PromptLen: 2, OutputLen: 1, Arrival: 5}, {PromptLen: 2, OutputLen: 1, Arrival: 1}}
	if _, err := Replay(good, unsorted); err == nil {
		t.Error("unsorted arrivals accepted")
	}
}
