package gateway

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/lia-sim/lia/internal/core"
	"github.com/lia-sim/lia/internal/llm"
)

// Serving under a compressed weight tier: the gateway applies the tier
// at construction, tokens match a solo executor with the same tier, and
// the lia_quant_* gauges report it.
func TestGatewayServesCompressedTiers(t *testing.T) {
	prompt := []int{3, 14, 15}
	for _, tc := range []struct {
		cfg  Config
		tier string
	}{
		{Config{Quant: "sparse", QuantSparsity: 0.5}, "sparse"},
		{Config{Quant: "int4lut"}, "int4lut"},
	} {
		g, err := New(testExecutor(t), Config{MaxBatch: 2, Quant: tc.cfg.Quant, QuantSparsity: tc.cfg.QuantSparsity, QuantGroup: tc.cfg.QuantGroup})
		if err != nil {
			t.Fatal(err)
		}
		// Reference: a solo executor with the same tier enabled.
		ref := testExecutor(t)
		switch tc.tier {
		case "sparse":
			ref.EnableSparse(0.5)
		case "int4lut":
			ref.EnableINT4LUT(0)
		}
		want, err := ref.Generate(prompt, 6)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := g.Submit(ctx, prompt, 6)
		cancel()
		if err != nil {
			t.Fatalf("%s: %v", tc.tier, err)
		}
		for i := range want {
			if res.Tokens[i] != want[i] {
				t.Fatalf("%s: served tokens %v, want %v", tc.tier, res.Tokens, want)
			}
		}

		snap := g.Snapshot()
		if snap.QuantTier != tc.tier {
			t.Errorf("snapshot tier %q, want %q", snap.QuantTier, tc.tier)
		}
		if snap.WeightFootprintBytes == 0 {
			t.Error("zero weight footprint reported")
		}
		prom := g.Prometheus()
		if !strings.Contains(prom, `lia_quant_tier{tier="`+tc.tier+`"} 1`) {
			t.Errorf("%s: lia_quant_tier gauge missing:\n%s", tc.tier, prom)
		}
		if !strings.Contains(prom, "lia_quant_weight_bytes") {
			t.Error("lia_quant_weight_bytes gauge missing")
		}
		if tc.tier == "sparse" && !strings.Contains(prom, "lia_quant_block_sparsity") {
			t.Error("lia_quant_block_sparsity gauge missing for sparse tier")
		}
		shutdown(t, g)
	}
}

// The compressed tiers shrink the footprint the gateway reports, in the
// documented order: int4lut < sparse(0.5) < dense.
func TestGatewayQuantFootprintOrdering(t *testing.T) {
	footprint := func(q string) uint64 {
		g, err := New(testExecutor(t), Config{Quant: q, MaxBatch: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer shutdown(t, g)
		return g.Snapshot().WeightFootprintBytes
	}
	dense := footprint("dense")
	sparse := footprint("sparse")
	int4 := footprint("int4lut")
	if !(int4 < sparse && sparse < dense) {
		t.Errorf("footprints not ordered: int4 %d, sparse %d, dense %d", int4, sparse, dense)
	}
}

func TestGatewayRejectsBadQuantConfig(t *testing.T) {
	m, err := llm.NewRandom(llm.TinyConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	exec := llm.NewExecutor(m, core.PartialCPU)
	if _, err := New(exec, Config{Quant: "fp8"}); err == nil {
		t.Error("unknown tier accepted")
	}
	if _, err := New(exec, Config{Quant: "sparse", QuantSparsity: 1.5}); err == nil {
		t.Error("sparsity ≥ 1 accepted")
	}
	if _, err := New(exec, Config{Quant: "int4lut", QuantGroup: -2}); err == nil {
		t.Error("negative group accepted")
	}
}
