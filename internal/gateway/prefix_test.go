package gateway

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// hotPrefixWorkload builds a request mix where many prompts share long
// prefixes — the workload the prefix cache exists for. Three 12-token
// prefixes, each continued by several distinct suffixes.
func hotPrefixWorkload(vocab int) [][]int {
	var prompts [][]int
	for p := 0; p < 3; p++ {
		prefix := make([]int, 12)
		for i := range prefix {
			prefix[i] = (p*31 + i*7 + 1) % vocab
		}
		for s := 0; s < 4; s++ {
			suffix := make([]int, 2+s)
			for i := range suffix {
				suffix[i] = (p*17 + s*13 + i*5 + 3) % vocab
			}
			prompts = append(prompts, append(append([]int{}, prefix...), suffix...))
		}
	}
	return prompts
}

// runGateway serves every prompt concurrently and returns the token
// streams in prompt order.
func runGateway(t *testing.T, g *Gateway, prompts [][]int, n int) [][]int {
	t.Helper()
	out := make([][]int, len(prompts))
	var wg sync.WaitGroup
	for i, p := range prompts {
		wg.Add(1)
		go func(i int, prompt []int) {
			defer wg.Done()
			res, err := g.Submit(context.Background(), prompt, n)
			if err != nil {
				t.Errorf("prompt %d: %v", i, err)
				return
			}
			out[i] = res.Tokens
		}(i, p)
	}
	wg.Wait()
	return out
}

// TestPrefixCacheBitIdentical is the gateway-level differential bar:
// the same hot-prefix workload served with the prefix cache off and on
// must produce bit-identical token streams (both equal to solo
// Generate), while the cache-on run actually reuses prefixes and leaves
// the tree and pool accounting clean after drain.
func TestPrefixCacheBitIdentical(t *testing.T) {
	e := testExecutor(t)
	prompts := hotPrefixWorkload(e.Model.Cfg.VocabSize)
	const n = 4

	want := make([][]int, len(prompts))
	for i, p := range prompts {
		want[i] = reference(t, e, p, n)
	}

	for _, cacheOn := range []bool{false, true} {
		cfg := Config{
			MaxBatch:      4,
			QueueDepth:    64,
			KVBudget:      e.Model.Cfg.KVBytes(1, 128), // 32 blocks of 4 tokens
			KVBlockTokens: 4,
			PrefixCache:   cacheOn,
		}
		g, err := New(testExecutor(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Two waves: the second wave's prompts are all warm when the
		// cache is on.
		for wave := 0; wave < 2; wave++ {
			got := runGateway(t, g, prompts, n)
			for i := range prompts {
				if got[i] == nil {
					continue // already reported
				}
				if len(got[i]) != len(want[i]) {
					t.Fatalf("cache=%v wave %d prompt %d: %d tokens, want %d", cacheOn, wave, i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("cache=%v wave %d prompt %d: got %v want %v",
							cacheOn, wave, i, got[i], want[i])
					}
				}
			}
		}

		st, ok := g.PrefixStats()
		if ok != cacheOn {
			t.Fatalf("PrefixStats ok=%v with cache=%v", ok, cacheOn)
		}
		if cacheOn {
			if st.Hits == 0 || st.HitTokens == 0 {
				t.Fatalf("cache-on run never hit: %+v", st)
			}
			if st.Inserts == 0 {
				t.Fatalf("cache-on run never inserted: %+v", st)
			}
			if !strings.Contains(g.Prometheus(), "lia_prefix_hits_total") {
				t.Error("metrics exposition missing lia_prefix_hits_total")
			}
		}
		shutdown(t, g)
		if cacheOn {
			// After the drain every pin is gone, the tree is structurally
			// sound, and pool blocks partition exactly into tree-owned and
			// free.
			if err := g.tree.Validate(); err != nil {
				t.Fatalf("tree invalid after drain: %v", err)
			}
			st, _ := g.PrefixStats()
			if st.PinnedNodes != 0 {
				t.Fatalf("%d nodes still pinned after drain", st.PinnedNodes)
			}
			pool := g.prefix.pool
			if pool.Live() != 0 {
				t.Fatalf("%d sequences live after drain", pool.Live())
			}
			if free := pool.FreeBlocks(); free != pool.TotalBlocks()-st.ResidentBlocks {
				t.Fatalf("%d free + %d tree-resident != %d total — leak", free, st.ResidentBlocks, pool.TotalBlocks())
			}
			if len(g.prefix.prompts) != 0 || len(g.prefix.pins) != 0 || len(g.prefix.matches) != 0 {
				t.Fatalf("admitter leaked state: %d prompts, %d pins, %d matches",
					len(g.prefix.prompts), len(g.prefix.pins), len(g.prefix.matches))
			}
		}
	}
}

// TestPrefixCachePoolLess: with no KV pool the cache still works in its
// MaxBlocks mode — seeding prefills without admission accounting — and
// stays bit-identical.
func TestPrefixCachePoolLess(t *testing.T) {
	e := testExecutor(t)
	prompts := hotPrefixWorkload(e.Model.Cfg.VocabSize)
	const n = 4
	g, err := New(testExecutor(t), Config{MaxBatch: 4, PrefixCache: true, PrefixMaxBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, g)
	if g.prefix != nil {
		t.Fatal("pool-less gateway built a pooled admitter")
	}
	for wave := 0; wave < 2; wave++ {
		got := runGateway(t, g, prompts, n)
		for i := range prompts {
			want := reference(t, e, prompts[i], n)
			if got[i] == nil {
				continue
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("wave %d prompt %d: got %v want %v", wave, i, got[i], want)
				}
			}
		}
	}
	st, ok := g.PrefixStats()
	if !ok || st.Inserts == 0 {
		t.Fatalf("pool-less cache inert: ok=%v %+v", ok, st)
	}
	if err := g.tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixCachePreemptionSafety: a pool tight enough to preempt with
// the cache on must still serve every request bit-identically — pins
// protect shared blocks across evictions, and re-admission re-looks-up.
func TestPrefixCachePreemptionSafety(t *testing.T) {
	e := testExecutor(t)
	prompts := hotPrefixWorkload(e.Model.Cfg.VocabSize)
	const n = 6
	g, err := New(testExecutor(t), Config{
		MaxBatch:      4,
		KVBudget:      e.Model.Cfg.KVBytes(1, 64), // 16 blocks: real pressure
		KVBlockTokens: 4,
		PrefixCache:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := runGateway(t, g, prompts, n)
	for i := range prompts {
		want := reference(t, e, prompts[i], n)
		if got[i] == nil {
			continue
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("prompt %d: got %v want %v", i, got[i], want)
			}
		}
	}
	shutdown(t, g)
	if err := g.tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if st, _ := g.PrefixStats(); st.PinnedNodes != 0 {
		t.Fatalf("%d pinned nodes after drain", st.PinnedNodes)
	}
}
