package gateway

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/lia-sim/lia/internal/llm"
)

// histBuckets are the latency histogram's upper bounds: powers of two
// from 64µs to ~134s plus +Inf. Log-spaced buckets keep the histogram
// cheap (one atomic add per observation) while resolving both
// microsecond queue waits and multi-second tail latencies.
var histBuckets = func() []time.Duration {
	var b []time.Duration
	for d := 64 * time.Microsecond; d < 3*time.Minute; d *= 2 {
		b = append(b, d)
	}
	return b
}()

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation: per-bucket counters plus a running sum and count, all
// atomic, no locks.
type histogram struct {
	counts []atomic.Uint64 // one per bound, plus the +Inf overflow at the end
	sumNs  atomic.Int64
	n      atomic.Uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Uint64, len(histBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	i := sort.Search(len(histBuckets), func(i int) bool { return d <= histBuckets[i] })
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.n.Add(1)
}

// quantile returns an upper bound on the q-quantile: the bound of the
// bucket holding the q-th observation (+Inf reports the largest finite
// bound). Bucketed quantiles overestimate by at most one bucket width —
// fine for operational percentiles; tests needing exact values compute
// them client-side from raw durations.
func (h *histogram) quantile(q float64) time.Duration {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(histBuckets) {
				return histBuckets[i]
			}
			return histBuckets[len(histBuckets)-1]
		}
	}
	return histBuckets[len(histBuckets)-1]
}

func (h *histogram) mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / int64(n))
}

// writeProm renders the histogram in Prometheus text format
// (cumulative `le` buckets, then sum and count).
func (h *histogram) writeProm(b *strings.Builder, name string) {
	var cum uint64
	for i, bound := range histBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", bound.Seconds()), cum)
	}
	cum += h.counts[len(histBuckets)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %g\n", name, time.Duration(h.sumNs.Load()).Seconds())
	fmt.Fprintf(b, "%s_count %d\n", name, h.n.Load())
}

// Metrics is the gateway's observability surface: monotonic counters
// for every request outcome plus latency histograms for the three
// serving-quality signals (queue wait, time-to-first-token, per-token
// decode time). All fields are safe for concurrent use; the batcher and
// every client goroutine update them without coordination.
type metrics struct {
	received  atomic.Uint64 // accepted into the queue
	completed atomic.Uint64 // served to completion
	shed      atomic.Uint64 // rejected: queue full
	rejected  atomic.Uint64 // rejected: invalid shape or impossible fit
	canceled  atomic.Uint64 // abandoned: deadline or client cancel
	preempted atomic.Uint64 // evictions under KV pressure (recomputed later)
	reaped    atomic.Uint64 // sequences removed mid-flight (cancel/deadline reaping)
	tokens    atomic.Uint64 // generated tokens, including recomputation

	prefillChunks atomic.Uint64 // prompt chunks computed (chunked prefill)
	specRounds    atomic.Uint64 // draft-and-verify rounds
	specDrafted   atomic.Uint64 // tokens the draft proposed
	specAccepted  atomic.Uint64 // proposals matching the target's argmax
	specEmitted   atomic.Uint64 // tokens emitted through speculative steps

	queueWait *histogram // enqueue → first admission
	ttft      *histogram // enqueue → first token available
	perToken  *histogram // mean decode-iteration time per served token
}

func newMetrics() *metrics {
	return &metrics{queueWait: newHistogram(), ttft: newHistogram(), perToken: newHistogram()}
}

// Snapshot is a point-in-time copy of the gateway's counters and
// histogram summaries, for the final stats dump and tests.
type Snapshot struct {
	Received, Completed, Shed, Rejected, Canceled uint64
	Preempted, Tokens                             uint64
	// Reaped counts sequences the batcher removed mid-flight when their
	// context was canceled or their deadline passed — the cancel-storm
	// signal the scenario harness asserts on (every reap also counts as a
	// Canceled outcome once the client is answered).
	Reaped uint64
	PrefillChunks                                 uint64
	SpecRounds, SpecDrafted                       uint64
	SpecAccepted, SpecEmitted                     uint64
	// QuantTier and WeightFootprintBytes describe the executor's active
	// weight tier (immutable after New).
	QuantTier            string
	WeightFootprintBytes uint64
	QueueWaitMean, QueueWaitP99                   time.Duration
	TTFTMean, TTFTP50, TTFTP99                    time.Duration
	PerTokenMean                                  time.Duration
}

func (m *metrics) snapshot() Snapshot {
	return Snapshot{
		Received:      m.received.Load(),
		Completed:     m.completed.Load(),
		Shed:          m.shed.Load(),
		Rejected:      m.rejected.Load(),
		Canceled:      m.canceled.Load(),
		Preempted:     m.preempted.Load(),
		Reaped:        m.reaped.Load(),
		Tokens:        m.tokens.Load(),
		PrefillChunks: m.prefillChunks.Load(),
		SpecRounds:    m.specRounds.Load(),
		SpecDrafted:   m.specDrafted.Load(),
		SpecAccepted:  m.specAccepted.Load(),
		SpecEmitted:   m.specEmitted.Load(),
		QueueWaitMean: m.queueWait.mean(),
		QueueWaitP99:  m.queueWait.quantile(0.99),
		TTFTMean:      m.ttft.mean(),
		TTFTP50:       m.ttft.quantile(0.50),
		TTFTP99:       m.ttft.quantile(0.99),
		PerTokenMean:  m.perToken.mean(),
	}
}

// prometheus renders every counter and histogram in Prometheus text
// exposition format for GET /metrics.
func (m *metrics) prometheus() string {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("lia_gateway_requests_received_total", "Requests accepted into the queue.", m.received.Load())
	counter("lia_gateway_requests_completed_total", "Requests served to completion.", m.completed.Load())
	counter("lia_gateway_requests_shed_total", "Requests rejected because the queue was full.", m.shed.Load())
	counter("lia_gateway_requests_rejected_total", "Requests rejected as invalid or impossible to place.", m.rejected.Load())
	counter("lia_gateway_requests_canceled_total", "Requests abandoned by deadline or client cancel.", m.canceled.Load())
	counter("lia_gateway_preemptions_total", "Sequences evicted under KV pressure.", m.preempted.Load())
	counter("lia_gateway_reaped_total", "Sequences removed mid-flight by cancel/deadline reaping.", m.reaped.Load())
	counter("lia_gateway_generated_tokens_total", "Generated tokens, including recomputation after preemption.", m.tokens.Load())
	counter("lia_prefill_chunks_total", "Prompt chunks computed under chunked prefill.", m.prefillChunks.Load())
	counter("lia_spec_rounds_total", "Speculative draft-and-verify rounds.", m.specRounds.Load())
	counter("lia_spec_drafted_tokens_total", "Tokens proposed by the speculative draft.", m.specDrafted.Load())
	counter("lia_spec_accepted_tokens_total", "Draft proposals accepted (matched the target argmax).", m.specAccepted.Load())
	counter("lia_spec_emitted_tokens_total", "Tokens emitted through speculative decode steps.", m.specEmitted.Load())
	hist := func(name, help string, h *histogram) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		h.writeProm(&b, name)
	}
	hist("lia_gateway_queue_wait_seconds", "Enqueue to first admission.", m.queueWait)
	hist("lia_gateway_ttft_seconds", "Enqueue to first token available.", m.ttft)
	hist("lia_gateway_per_token_seconds", "Mean decode-iteration time per served token.", m.perToken)
	return b.String()
}

// quantProm renders the weight-tier gauges. Everything here is immutable
// after gateway construction (the tier is applied before the batcher
// starts), so concurrent scrapes are race-free.
func quantProm(exec *llm.Executor) string {
	var b strings.Builder
	gauge := func(name, help string, labels string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s%s %g\n", name, help, name, name, labels, v)
	}
	gauge("lia_quant_tier", "Active weight tier (1 for the tier named by the label).",
		fmt.Sprintf("{tier=%q}", exec.QuantTier()), 1)
	gauge("lia_quant_weight_bytes", "Serving footprint of the decoder layers' parameter matrices under the active tier.",
		"", float64(exec.WeightFootprint()))
	if f := exec.SparseSkipFraction(); f > 0 {
		gauge("lia_quant_block_sparsity", "Zero tile-block fraction the sparse tier skips.", "", f)
	}
	return b.String()
}
