package gateway

import (
	"context"
	"fmt"
	"time"

	"github.com/lia-sim/lia/internal/batchpolicy"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/runner"
)

// entry is one live request's batcher-side state. Ref is the scheduler
// handle; a preempted request keeps its entry (and its recorded
// queue-wait/TTFT) across re-admission.
type entry struct {
	p   *pending
	ref int

	admitted  bool // queue wait recorded (first admission only)
	ttftDone  bool // TTFT recorded (first prefill only)
	queueWait time.Duration
	ttft      time.Duration
}

// run is the batcher goroutine: the only code that touches the
// scheduler, the sequences, and the per-request bookkeeping. One loop
// iteration = gather new work, reap canceled work, then one shared
// batchpolicy.Round (admit+prefill, or extend+decode+retire).
func (g *Gateway) run(sched *batchpolicy.Scheduler) {
	defer close(g.done)
	// Release the kill watcher (below) on every exit path.
	defer g.killOnce.Do(func() { close(g.kill) })

	// stepCtx aborts in-flight engine work when the drain deadline kills
	// the gateway.
	stepCtx, cancelStep := context.WithCancel(context.Background())
	defer cancelStep()
	go func() {
		<-g.kill
		cancelStep()
	}()

	var (
		backlog []*entry                  // accepted, not yet admitted
		byRef   = map[int]*entry{}        // every live request by scheduler ref
		seqs    = map[int]*llm.Sequence{} // running engine state by pool id
		nextRef int
		// ahead tracks, per pool id, KV slots reserved beyond the tokens
		// emitted so far — the speculative rounds' draft allowance.
		// ExtendAll contributes one slot per round; TryExtend tops the
		// balance up toward γ+1; each round's emissions draw it down. A
		// sequence's over-reservation is bounded by γ slots and is freed
		// with the rest of its blocks on retirement or eviction.
		ahead = map[int]int{}
	)

	accept := func(p *pending) {
		e := &entry{p: p, ref: nextRef}
		nextRef++
		byRef[e.ref] = e
		backlog = append(backlog, e)
		if g.prefix != nil {
			g.prefix.register(e.ref, p.prompt)
		}
	}
	// forget retires a ref from every side table; all removal paths go
	// through it so the prefix admitter never leaks prompt state.
	forget := func(ref int) {
		delete(byRef, ref)
		if g.prefix != nil {
			g.prefix.forget(ref)
		}
	}
	gather := func() {
		for {
			select {
			case p := <-g.submit:
				accept(p)
			default:
				return
			}
		}
	}
	respond := func(e *entry, out outcome) {
		e.p.resp <- out // buffered(1); each entry is responded to at most once
		forget(e.ref)
	}
	abortAll := func() {
		for id, s := range seqs {
			s.Release()
			delete(seqs, id)
		}
		for _, e := range byRef {
			e.p.resp <- outcome{err: ErrShuttingDown}
		}
		for {
			select {
			case p := <-g.submit:
				p.resp <- outcome{err: ErrShuttingDown}
			default:
				return
			}
		}
	}

	hooks := batchpolicy.Hooks{
		Waiting: func() []batchpolicy.Item {
			items := make([]batchpolicy.Item, len(backlog))
			for i, e := range backlog {
				items[i] = batchpolicy.Item{Ref: e.ref, PromptLen: len(e.p.prompt), OutputLen: e.p.n}
			}
			return items
		},
		Consumed: func(n int) { backlog = backlog[n:] },
		Prefill: func(admitted []batchpolicy.Seq) error {
			// Record queue waits at the admission decision, then prefill
			// every admitted prompt in parallel on the deterministic
			// runner pool. Per-request failures (which validation should
			// have made impossible) fail that request alone.
			for _, a := range admitted {
				e := byRef[a.Item.Ref]
				if !e.admitted {
					e.admitted = true
					e.queueWait = time.Since(e.p.enqueued)
					g.m.queueWait.observe(e.queueWait)
				}
			}
			type prefillRes struct {
				s   *llm.Sequence
				err error
			}
			// Capture seeds on the batcher goroutine (the admitter's maps
			// are confined here), then prefill in parallel: with the prefix
			// cache on, each sequence resumes from its pinned cached prefix
			// and computes only the unshared suffix.
			type prefillJob struct {
				prompt []int
				n      int
				seed   *llm.KVSeed
			}
			jobs := make([]prefillJob, len(admitted))
			for i, a := range admitted {
				prompt := byRef[a.Item.Ref].p.prompt
				jobs[i] = prefillJob{prompt: prompt, n: a.Item.OutputLen, seed: g.seedFor(a.ID, prompt)}
			}
			results, mapErr := runner.Map(stepCtx, jobs, func(_ context.Context, j prefillJob) (prefillRes, error) {
				s, err := g.exec.NewSequenceFrom(j.prompt, j.n, j.seed)
				return prefillRes{s: s, err: err}, nil
			})
			if mapErr != nil { // kill aborted the prefill wave mid-flight
				for _, a := range admitted {
					if rmErr := sched.Remove(a.ID); rmErr != nil {
						continue
					}
					if e, ok := byRef[a.Item.Ref]; ok {
						respond(e, outcome{err: fmt.Errorf("gateway: prefill: %w", mapErr)})
					}
				}
				return nil
			}
			for i, a := range admitted {
				e := byRef[a.Item.Ref]
				if results[i].err != nil {
					if rmErr := sched.Remove(a.ID); rmErr != nil {
						results[i].err = fmt.Errorf("%w (and removing it failed: %v)", results[i].err, rmErr)
					}
					respond(e, outcome{err: fmt.Errorf("gateway: prefill: %w", results[i].err)})
					continue
				}
				seqs[a.ID] = results[i].s
				// Cache the freshly computed prefix for future requests
				// (a no-op for blocks already in the tree).
				g.insertPrefix(e.p.prompt, results[i].s)
				if !e.ttftDone {
					e.ttftDone = true
					e.ttft = time.Since(e.p.enqueued)
					g.m.ttft.observe(e.ttft)
				}
			}
			return nil
		},
		PrefillChunk: func(prefilling []batchpolicy.Seq) error {
			// First sight of a sequence is its admission: record the queue
			// wait and build the chunked engine sequence (resuming from a
			// cached prefix when the tree has one). Then every listed
			// sequence computes one prompt chunk, in parallel on the runner
			// pool. The scheduler walks the full prompt even when a prefix
			// seed let the engine skip ahead, so the engine-side advance
			// no-ops once its (shorter) remainder is done.
			for _, a := range prefilling {
				e := byRef[a.Item.Ref]
				if !e.admitted {
					e.admitted = true
					e.queueWait = time.Since(e.p.enqueued)
					g.m.queueWait.observe(e.queueWait)
				}
				if seqs[a.ID] != nil {
					continue
				}
				s, err := g.exec.NewSequenceChunked(e.p.prompt, a.Item.OutputLen, sched.Chunk(), g.seedFor(a.ID, e.p.prompt))
				if err != nil {
					if rmErr := sched.Remove(a.ID); rmErr != nil {
						err = fmt.Errorf("%w (and removing it failed: %v)", err, rmErr)
					}
					respond(e, outcome{err: fmt.Errorf("gateway: chunked prefill: %w", err)})
					continue
				}
				seqs[a.ID] = s
			}
			type chunkRes struct {
				done bool
				err  error
			}
			var live []batchpolicy.Seq
			for _, a := range prefilling {
				if seqs[a.ID] != nil {
					live = append(live, a)
				}
			}
			results, mapErr := runner.Map(stepCtx, live, func(_ context.Context, a batchpolicy.Seq) (chunkRes, error) {
				done, err := seqs[a.ID].AdvancePrefill()
				return chunkRes{done: done, err: err}, nil
			})
			if mapErr != nil { // kill aborted the chunk wave mid-flight
				for _, a := range live {
					if rmErr := sched.Remove(a.ID); rmErr != nil {
						continue
					}
					seqs[a.ID].Release()
					delete(seqs, a.ID)
					if e, ok := byRef[a.Item.Ref]; ok {
						respond(e, outcome{err: fmt.Errorf("gateway: chunked prefill: %w", mapErr)})
					}
				}
				return nil
			}
			for i, a := range live {
				e := byRef[a.Item.Ref]
				if results[i].err != nil {
					err := results[i].err
					if rmErr := sched.Remove(a.ID); rmErr != nil {
						err = fmt.Errorf("%w (and removing it failed: %v)", err, rmErr)
					}
					seqs[a.ID].Release()
					delete(seqs, a.ID)
					respond(e, outcome{err: fmt.Errorf("gateway: chunked prefill: %w", err)})
					continue
				}
				g.m.prefillChunks.Add(1)
				if results[i].done {
					// Cache the completed prefix for future requests (no-op
					// for blocks already in the tree).
					g.insertPrefix(e.p.prompt, seqs[a.ID])
					if !e.ttftDone {
						// The final chunk computed the first pending token.
						e.ttftDone = true
						e.ttft = time.Since(e.p.enqueued)
						g.m.ttft.observe(e.ttft)
					}
				}
			}
			return nil
		},
		Step: func(running []batchpolicy.Seq) error {
			live := make([]*llm.Sequence, len(running))
			for i, r := range running {
				live[i] = seqs[r.ID]
			}
			start := time.Now()
			// Fused decode: the whole batch's parameter GEMMs stack into
			// one call per sublayer (bit-identical to per-sequence steps;
			// INT8 and offloaded executors fall back internally).
			if err := g.exec.StepBatchFused(stepCtx, live); err != nil {
				return err
			}
			g.m.perToken.observe(time.Since(start))
			g.m.tokens.Add(uint64(len(running)))
			return nil
		},
		Evicted: func(evicted []batchpolicy.Seq) {
			// Preempted sequences lose their engine state; re-admission
			// recomputes the prefill (the tokens are deterministic, so the
			// client still sees one coherent stream).
			for _, ev := range evicted {
				if s := seqs[ev.ID]; s != nil {
					s.Release()
				}
				delete(seqs, ev.ID)
				delete(ahead, ev.ID)
			}
		},
		Finished: func(finished []batchpolicy.Seq) {
			for _, f := range finished {
				e := byRef[f.Item.Ref]
				s := seqs[f.ID]
				delete(seqs, f.ID)
				delete(ahead, f.ID)
				toks := make([]int, len(s.Output()))
				copy(toks, s.Output())
				s.Release()
				respond(e, outcome{res: Result{
					Tokens:    toks,
					QueueWait: e.queueWait,
					TTFT:      e.ttft,
					Total:     time.Since(e.p.enqueued),
				}})
			}
		},
	}

	if g.draft != nil {
		// Speculative decode rounds replace Step: each ready sequence runs
		// one draft-and-verify round, emitting 1+accepted tokens per target
		// pass. The emitted stream is bit-identical to plain decode.
		hooks.StepN = func(running []batchpolicy.Seq) (map[int]int, error) {
			gamma := g.cfg.SpecGamma
			for _, r := range running {
				s := seqs[r.ID]
				if !s.SpecEnabled() {
					// First decode round for this sequence: attach a draft
					// fork, prefilled over the confirmed stream.
					if err := s.EnableSpec(g.draft, gamma); err != nil {
						return nil, err
					}
				}
				// ExtendAll reserved this round's guaranteed slot; top the
				// balance up toward γ+1 so the round can draft. Refusals
				// just shallow this round's draft — never fatal, and never
				// preempting.
				ahead[r.ID]++
				for ahead[r.ID] < gamma+1 && sched.TryExtend(r.ID) {
					ahead[r.ID]++
				}
			}
			type specRes struct {
				emitted int
				stats   llm.SpecStats
			}
			start := time.Now()
			results, mapErr := runner.Map(stepCtx, running, func(_ context.Context, r batchpolicy.Seq) (specRes, error) {
				s := seqs[r.ID]
				prev := s.SpecStats()
				emitted, err := s.SpecStep(ahead[r.ID])
				if err != nil {
					return specRes{}, err
				}
				cur := s.SpecStats()
				return specRes{emitted: emitted, stats: llm.SpecStats{
					Rounds:   cur.Rounds - prev.Rounds,
					Drafted:  cur.Drafted - prev.Drafted,
					Accepted: cur.Accepted - prev.Accepted,
					Emitted:  cur.Emitted - prev.Emitted,
				}}, nil
			})
			if mapErr != nil {
				return nil, mapErr
			}
			g.m.perToken.observe(time.Since(start))
			counts := make(map[int]int, len(running))
			for i, r := range running {
				counts[r.ID] = results[i].emitted
				ahead[r.ID] -= results[i].emitted
				if ahead[r.ID] < 0 {
					ahead[r.ID] = 0
				}
				g.m.tokens.Add(uint64(results[i].emitted))
				g.m.specRounds.Add(uint64(results[i].stats.Rounds))
				g.m.specDrafted.Add(uint64(results[i].stats.Drafted))
				g.m.specAccepted.Add(uint64(results[i].stats.Accepted))
				g.m.specEmitted.Add(uint64(results[i].stats.Emitted))
			}
			return counts, nil
		}
	}

	// expired reports whether a request's budget is spent: its context is
	// done, or its wall-clock deadline has passed. The second clause is
	// load-bearing on a saturated box: the runtime can deliver a context's
	// deadline timer many milliseconds late while the batcher monopolizes
	// the CPU, so budget enforcement reads the clock directly instead of
	// waiting for ctx.Err() to flip.
	expired := func(ctx context.Context) bool {
		if ctx.Err() != nil {
			return true
		}
		d, ok := ctx.Deadline()
		return ok && !time.Now().Before(d)
	}
	// reapErr is the error a reaped request is answered with. Answering
	// (rather than relying on the client's own ctx.Done()) matters for the
	// same reason expired checks the clock: the client may not see its
	// timer fire for a while, but it is always watching the resp channel.
	reapErr := func(ctx context.Context) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return context.DeadlineExceeded
	}

	reapCanceled := func() {
		kept := backlog[:0]
		for _, e := range backlog {
			if expired(e.p.ctx) {
				respond(e, outcome{err: reapErr(e.p.ctx)})
			} else {
				kept = append(kept, e)
			}
		}
		backlog = kept
		for _, seq := range sched.Running() {
			e := byRef[seq.Item.Ref]
			if !expired(e.p.ctx) {
				continue
			}
			if err := sched.Remove(seq.ID); err == nil {
				if s := seqs[seq.ID]; s != nil {
					s.Release()
				}
				delete(seqs, seq.ID)
				delete(ahead, seq.ID)
				respond(e, outcome{err: reapErr(e.p.ctx)})
			}
		}
		for _, it := range sched.DropRequeued(func(it batchpolicy.Item) bool {
			return expired(byRef[it.Ref].p.ctx)
		}) {
			if e := byRef[it.Ref]; e != nil {
				respond(e, outcome{err: reapErr(e.p.ctx)})
			}
		}
	}

	// publishLoad refreshes the health gauges the router's probes read;
	// the pool and scheduler are confined here, so each round exports a
	// consistent view through atomics.
	publishLoad := func() {
		if p := sched.Pool(); p != nil {
			g.kvFree.Store(int64(p.FreeBlocks()))
		}
		g.running.Store(int64(sched.RunningLen()))
	}
	defer publishLoad()

	for {
		select {
		case <-g.kill:
			abortAll()
			return
		default:
		}
		gather()
		reapCanceled()
		publishLoad()

		if !sched.Busy() && len(backlog) == 0 {
			// Idle. Exit if draining, otherwise block for the next
			// submission (or shutdown).
			select {
			case <-g.stop:
				return
			default:
			}
			select {
			case p := <-g.submit:
				accept(p)
			case <-g.stop:
			case <-g.kill:
			}
			continue
		}

		progressed, err := batchpolicy.Round(sched, hooks)
		if err != nil {
			g.failRound(sched, seqs, byRef, err)
			clear(ahead) // the whole batch is gone; reservations went with it
			continue
		}
		if !progressed && len(backlog) > 0 {
			// Nothing running and the backlog head cannot be placed even
			// into a drained pool — validation should have shed it, so
			// fail it rather than spin.
			e := backlog[0]
			backlog = backlog[1:]
			respond(e, outcome{err: fmt.Errorf("gateway: request cannot be placed: prompt %d tokens", len(e.p.prompt))})
		}
	}
}

// failRound handles a Round error: a sole running sequence that cannot
// extend its KV reservation (fail that one request, keep serving), or an
// engine/step failure (fail the whole running batch, keep accepting).
func (g *Gateway) failRound(sched *batchpolicy.Scheduler, seqs map[int]*llm.Sequence, byRef map[int]*entry, err error) {
	for _, seq := range sched.Running() {
		if rmErr := sched.Remove(seq.ID); rmErr != nil {
			continue
		}
		if s := seqs[seq.ID]; s != nil {
			s.Release()
		}
		delete(seqs, seq.ID)
		if e, ok := byRef[seq.Item.Ref]; ok {
			e.p.resp <- outcome{err: fmt.Errorf("gateway: %w", err)}
			delete(byRef, e.ref)
			if g.prefix != nil {
				g.prefix.forget(e.ref)
			}
		}
	}
}
