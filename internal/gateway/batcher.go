package gateway

import (
	"context"
	"fmt"
	"time"

	"github.com/lia-sim/lia/internal/batchpolicy"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/runner"
)

// entry is one live request's batcher-side state. Ref is the scheduler
// handle; a preempted request keeps its entry (and its recorded
// queue-wait/TTFT) across re-admission.
type entry struct {
	p   *pending
	ref int

	admitted  bool // queue wait recorded (first admission only)
	ttftDone  bool // TTFT recorded (first prefill only)
	queueWait time.Duration
	ttft      time.Duration
}

// run is the batcher goroutine: the only code that touches the
// scheduler, the sequences, and the per-request bookkeeping. One loop
// iteration = gather new work, reap canceled work, then one shared
// batchpolicy.Round (admit+prefill, or extend+decode+retire).
func (g *Gateway) run(sched *batchpolicy.Scheduler) {
	defer close(g.done)
	// Release the kill watcher (below) on every exit path.
	defer g.killOnce.Do(func() { close(g.kill) })

	// stepCtx aborts in-flight engine work when the drain deadline kills
	// the gateway.
	stepCtx, cancelStep := context.WithCancel(context.Background())
	defer cancelStep()
	go func() {
		<-g.kill
		cancelStep()
	}()

	var (
		backlog []*entry                  // accepted, not yet admitted
		byRef   = map[int]*entry{}        // every live request by scheduler ref
		seqs    = map[int]*llm.Sequence{} // running engine state by pool id
		nextRef int
	)

	accept := func(p *pending) {
		e := &entry{p: p, ref: nextRef}
		nextRef++
		byRef[e.ref] = e
		backlog = append(backlog, e)
		if g.prefix != nil {
			g.prefix.register(e.ref, p.prompt)
		}
	}
	// forget retires a ref from every side table; all removal paths go
	// through it so the prefix admitter never leaks prompt state.
	forget := func(ref int) {
		delete(byRef, ref)
		if g.prefix != nil {
			g.prefix.forget(ref)
		}
	}
	gather := func() {
		for {
			select {
			case p := <-g.submit:
				accept(p)
			default:
				return
			}
		}
	}
	respond := func(e *entry, out outcome) {
		e.p.resp <- out // buffered(1); each entry is responded to at most once
		forget(e.ref)
	}
	abortAll := func() {
		for id, s := range seqs {
			s.Release()
			delete(seqs, id)
		}
		for _, e := range byRef {
			e.p.resp <- outcome{err: ErrShuttingDown}
		}
		for {
			select {
			case p := <-g.submit:
				p.resp <- outcome{err: ErrShuttingDown}
			default:
				return
			}
		}
	}

	hooks := batchpolicy.Hooks{
		Waiting: func() []batchpolicy.Item {
			items := make([]batchpolicy.Item, len(backlog))
			for i, e := range backlog {
				items[i] = batchpolicy.Item{Ref: e.ref, PromptLen: len(e.p.prompt), OutputLen: e.p.n}
			}
			return items
		},
		Consumed: func(n int) { backlog = backlog[n:] },
		Prefill: func(admitted []batchpolicy.Seq) error {
			// Record queue waits at the admission decision, then prefill
			// every admitted prompt in parallel on the deterministic
			// runner pool. Per-request failures (which validation should
			// have made impossible) fail that request alone.
			for _, a := range admitted {
				e := byRef[a.Item.Ref]
				if !e.admitted {
					e.admitted = true
					e.queueWait = time.Since(e.p.enqueued)
					g.m.queueWait.observe(e.queueWait)
				}
			}
			type prefillRes struct {
				s   *llm.Sequence
				err error
			}
			// Capture seeds on the batcher goroutine (the admitter's maps
			// are confined here), then prefill in parallel: with the prefix
			// cache on, each sequence resumes from its pinned cached prefix
			// and computes only the unshared suffix.
			type prefillJob struct {
				prompt []int
				n      int
				seed   *llm.KVSeed
			}
			jobs := make([]prefillJob, len(admitted))
			for i, a := range admitted {
				prompt := byRef[a.Item.Ref].p.prompt
				jobs[i] = prefillJob{prompt: prompt, n: a.Item.OutputLen, seed: g.seedFor(a.ID, prompt)}
			}
			results, mapErr := runner.Map(stepCtx, jobs, func(_ context.Context, j prefillJob) (prefillRes, error) {
				s, err := g.exec.NewSequenceFrom(j.prompt, j.n, j.seed)
				return prefillRes{s: s, err: err}, nil
			})
			if mapErr != nil { // kill aborted the prefill wave mid-flight
				for _, a := range admitted {
					if rmErr := sched.Remove(a.ID); rmErr != nil {
						continue
					}
					if e, ok := byRef[a.Item.Ref]; ok {
						respond(e, outcome{err: fmt.Errorf("gateway: prefill: %w", mapErr)})
					}
				}
				return nil
			}
			for i, a := range admitted {
				e := byRef[a.Item.Ref]
				if results[i].err != nil {
					if rmErr := sched.Remove(a.ID); rmErr != nil {
						results[i].err = fmt.Errorf("%w (and removing it failed: %v)", results[i].err, rmErr)
					}
					respond(e, outcome{err: fmt.Errorf("gateway: prefill: %w", results[i].err)})
					continue
				}
				seqs[a.ID] = results[i].s
				// Cache the freshly computed prefix for future requests
				// (a no-op for blocks already in the tree).
				g.insertPrefix(e.p.prompt, results[i].s)
				if !e.ttftDone {
					e.ttftDone = true
					e.ttft = time.Since(e.p.enqueued)
					g.m.ttft.observe(e.ttft)
				}
			}
			return nil
		},
		Step: func(running []batchpolicy.Seq) error {
			live := make([]*llm.Sequence, len(running))
			for i, r := range running {
				live[i] = seqs[r.ID]
			}
			start := time.Now()
			if err := llm.StepBatch(stepCtx, live); err != nil {
				return err
			}
			g.m.perToken.observe(time.Since(start))
			g.m.tokens.Add(uint64(len(running)))
			return nil
		},
		Evicted: func(evicted []batchpolicy.Seq) {
			// Preempted sequences lose their engine state; re-admission
			// recomputes the prefill (the tokens are deterministic, so the
			// client still sees one coherent stream).
			for _, ev := range evicted {
				if s := seqs[ev.ID]; s != nil {
					s.Release()
				}
				delete(seqs, ev.ID)
			}
		},
		Finished: func(finished []batchpolicy.Seq) {
			for _, f := range finished {
				e := byRef[f.Item.Ref]
				s := seqs[f.ID]
				delete(seqs, f.ID)
				toks := make([]int, len(s.Output()))
				copy(toks, s.Output())
				s.Release()
				respond(e, outcome{res: Result{
					Tokens:    toks,
					QueueWait: e.queueWait,
					TTFT:      e.ttft,
					Total:     time.Since(e.p.enqueued),
				}})
			}
		},
	}

	reapCanceled := func() {
		kept := backlog[:0]
		for _, e := range backlog {
			if e.p.ctx.Err() != nil {
				forget(e.ref) // client already unblocked on its context
			} else {
				kept = append(kept, e)
			}
		}
		backlog = kept
		for _, seq := range sched.Running() {
			e := byRef[seq.Item.Ref]
			if e.p.ctx.Err() == nil {
				continue
			}
			if err := sched.Remove(seq.ID); err == nil {
				if s := seqs[seq.ID]; s != nil {
					s.Release()
				}
				delete(seqs, seq.ID)
				forget(e.ref)
			}
		}
		for _, it := range sched.DropRequeued(func(it batchpolicy.Item) bool {
			return byRef[it.Ref].p.ctx.Err() != nil
		}) {
			forget(it.Ref)
		}
	}

	for {
		select {
		case <-g.kill:
			abortAll()
			return
		default:
		}
		gather()
		reapCanceled()

		if !sched.Busy() && len(backlog) == 0 {
			// Idle. Exit if draining, otherwise block for the next
			// submission (or shutdown).
			select {
			case <-g.stop:
				return
			default:
			}
			select {
			case p := <-g.submit:
				accept(p)
			case <-g.stop:
			case <-g.kill:
			}
			continue
		}

		progressed, err := batchpolicy.Round(sched, hooks)
		if err != nil {
			g.failRound(sched, seqs, byRef, err)
			continue
		}
		if !progressed && len(backlog) > 0 {
			// Nothing running and the backlog head cannot be placed even
			// into a drained pool — validation should have shed it, so
			// fail it rather than spin.
			e := backlog[0]
			backlog = backlog[1:]
			respond(e, outcome{err: fmt.Errorf("gateway: request cannot be placed: prompt %d tokens", len(e.p.prompt))})
		}
	}
}

// failRound handles a Round error: a sole running sequence that cannot
// extend its KV reservation (fail that one request, keep serving), or an
// engine/step failure (fail the whole running batch, keep accepting).
func (g *Gateway) failRound(sched *batchpolicy.Scheduler, seqs map[int]*llm.Sequence, byRef map[int]*entry, err error) {
	for _, seq := range sched.Running() {
		if rmErr := sched.Remove(seq.ID); rmErr != nil {
			continue
		}
		if s := seqs[seq.ID]; s != nil {
			s.Release()
		}
		delete(seqs, seq.ID)
		if e, ok := byRef[seq.Item.Ref]; ok {
			e.p.resp <- outcome{err: fmt.Errorf("gateway: %w", err)}
			delete(byRef, e.ref)
			if g.prefix != nil {
				g.prefix.forget(e.ref)
			}
		}
	}
}
