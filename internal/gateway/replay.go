package gateway

import (
	"fmt"

	"github.com/lia-sim/lia/internal/batchpolicy"
	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/serve"
	"github.com/lia-sim/lia/internal/units"
)

// ReplayRequest is one request in a deterministic replay: lengths plus a
// virtual arrival time, and optionally the client-side abandonment times
// the live gateway honours through contexts. All times are absolute on
// the replay's virtual clock; zero means "never".
type ReplayRequest struct {
	PromptLen, OutputLen int
	Arrival              units.Seconds
	// CancelAt is when the client walks away; Deadline when its SLO
	// expires. Both resolve the request as canceled: still waiting → it
	// leaves the queue, running → the batcher reaps the sequence
	// (EventRemove) and frees its KV blocks, exactly like the live
	// gateway's reapCanceled pass.
	CancelAt units.Seconds
	Deadline units.Seconds
}

// Replay outcomes. The zero value is never reported: every request in a
// finished replay is completed, shed, or canceled — the accounting
// identity the scenario harness asserts.
const (
	ReplayCompleted = "completed"
	ReplayShed      = "shed"
	ReplayCanceled  = "canceled"
)

// ReplayOutcome is one request's fate and timeline on the virtual
// clock. Zero times mean the request never reached that stage (a shed
// request has only Arrival and Finish; a request canceled while waiting
// has no Admitted or FirstToken).
type ReplayOutcome struct {
	Outcome    string
	Arrival    units.Seconds
	Admitted   units.Seconds // first admission (re-admissions after preemption don't reset it)
	FirstToken units.Seconds // end of the prefill that produced the first token
	Finish     units.Seconds // completion, shed, or cancel time
	Emitted    int           // output tokens produced (partial for canceled)
}

// ReplayConfig parameterizes a replay. The pool is constructed exactly
// as the simulator constructs its own (kvpage.ForModel over the same
// model config), and Costs is the same injected fake engine type
// serve.Config.StepCosts takes — the differential test hands one value
// to both sides.
type ReplayConfig struct {
	MaxBatch      int
	Model         model.Config
	KVBudget      units.Bytes
	KVBlockTokens int
	Costs         *serve.StepCosts
	// QueueDepth bounds the not-yet-admitted backlog, mirroring the live
	// gateway's submit channel: an arrival that finds QueueDepth requests
	// already waiting is shed (the virtual 429). 0 means unbounded.
	QueueDepth int
}

// ReplayResult is the replay's observable behaviour: the full ordered
// scheduling-decision stream, summary counts, and a per-request outcome
// record (indexed like the request slice).
type ReplayResult struct {
	Events      []batchpolicy.Event
	Completed   int
	Preemptions int
	Shed        int
	Canceled    int
	Makespan    units.Seconds
	Requests    []ReplayOutcome
}

// Replay drives the gateway's batcher loop — the same batchpolicy.Round
// skeleton run() uses — over a virtual clock and the injected cost
// model, with arrivals released by time instead of a live queue. The
// differential test replays one trace through this and through
// serve.SimulateContinuous and requires bit-identical event streams:
// same admissions, same preemption victims, same completion order.
//
// With the abandonment fields zero and QueueDepth 0 the behaviour (and
// the event stream) is exactly the historical one. Nonzero CancelAt or
// Deadline values are honoured between rounds: expired waiting requests
// leave the queue, expired running sequences are removed mid-flight
// (emitting EventRemove, like the live reaper), and expired preempted
// requests are dropped from the requeue. QueueDepth sheds arrivals that
// find a full backlog. Everything stays deterministic — the scenario
// harness replays chaos plans through this and requires byte-identical
// results across runs.
func Replay(cfg ReplayConfig, reqs []ReplayRequest) (ReplayResult, error) {
	if cfg.MaxBatch < 1 {
		return ReplayResult{}, fmt.Errorf("gateway: replay MaxBatch must be ≥1, got %d", cfg.MaxBatch)
	}
	if cfg.Costs == nil || cfg.Costs.Prefill == nil || cfg.Costs.Decode == nil {
		return ReplayResult{}, fmt.Errorf("gateway: replay requires injected step costs")
	}
	if cfg.QueueDepth < 0 {
		return ReplayResult{}, fmt.Errorf("gateway: replay QueueDepth must be ≥0, got %d", cfg.QueueDepth)
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return ReplayResult{}, fmt.Errorf("gateway: replay requests not sorted by arrival")
		}
	}
	var pool *kvpage.Manager
	if cfg.KVBudget > 0 {
		blockTokens := cfg.KVBlockTokens
		if blockTokens <= 0 {
			blockTokens = 16
		}
		var err error
		pool, err = kvpage.ForModel(cfg.KVBudget, blockTokens, cfg.Model)
		if err != nil {
			return ReplayResult{}, err
		}
	}
	sched, err := batchpolicy.NewScheduler(cfg.MaxBatch, pool)
	if err != nil {
		return ReplayResult{}, err
	}

	var (
		out     ReplayResult
		clock   units.Seconds
		next    int       // arrivals not yet ingested
		waiting []int     // ingested, not yet admitted (request indexes, FIFO)
		costErr error
	)
	out.Requests = make([]ReplayOutcome, len(reqs))
	for i := range reqs {
		out.Requests[i].Arrival = reqs[i].Arrival
	}

	// expiry returns the earliest abandonment time for request i, 0 if
	// it never abandons.
	expiry := func(i int) units.Seconds {
		e := reqs[i].CancelAt
		if d := reqs[i].Deadline; d > 0 && (e == 0 || d < e) {
			e = d
		}
		return e
	}
	cancel := func(i int, emitted int) {
		r := &out.Requests[i]
		r.Outcome = ReplayCanceled
		r.Finish = clock
		r.Emitted = emitted
		out.Canceled++
	}

	sched.OnEvent = func(e batchpolicy.Event) {
		out.Events = append(out.Events, e)
		switch e.Kind {
		case batchpolicy.EventPreempt:
			out.Preemptions++
		case batchpolicy.EventComplete:
			out.Completed++
			r := &out.Requests[e.Ref]
			r.Outcome = ReplayCompleted
			r.Finish = clock
			r.Emitted = reqs[e.Ref].OutputLen
		}
	}
	hooks := batchpolicy.Hooks{
		Waiting: func() []batchpolicy.Item {
			items := make([]batchpolicy.Item, 0, len(waiting))
			for _, i := range waiting {
				items = append(items, batchpolicy.Item{Ref: i, PromptLen: reqs[i].PromptLen, OutputLen: reqs[i].OutputLen})
			}
			return items
		},
		Consumed: func(n int) {
			for _, i := range waiting[:n] {
				out.Requests[i].Admitted = clock
			}
			waiting = waiting[n:]
		},
		Prefill: func(admitted []batchpolicy.Seq) error {
			maxIn := 1
			for _, a := range admitted {
				if a.Item.PromptLen > maxIn {
					maxIn = a.Item.PromptLen
				}
			}
			c, err := cfg.Costs.Prefill(len(admitted), maxIn)
			if err != nil {
				costErr = err
				return err
			}
			clock += c
			for _, a := range admitted {
				if r := &out.Requests[a.Item.Ref]; r.FirstToken == 0 {
					r.FirstToken = clock
				}
			}
			return nil
		},
		Step: func(running []batchpolicy.Seq) error {
			var ctxSum int
			for _, a := range running {
				ctxSum += a.Context
			}
			c, err := cfg.Costs.Decode(len(running), ctxSum/len(running))
			if err != nil {
				costErr = err
				return err
			}
			clock += c
			return nil
		},
	}

	// reap resolves every waiting, requeued, or running request whose
	// CancelAt/Deadline has passed on the virtual clock — the replay's
	// equivalent of the live batcher's reapCanceled pass between rounds.
	reap := func() error {
		kept := waiting[:0]
		for _, i := range waiting {
			if e := expiry(i); e > 0 && e <= clock {
				cancel(i, 0)
			} else {
				kept = append(kept, i)
			}
		}
		waiting = kept
		for _, it := range sched.DropRequeued(func(it batchpolicy.Item) bool {
			e := expiry(it.Ref)
			return e > 0 && e <= clock
		}) {
			cancel(it.Ref, 0)
		}
		for _, seq := range sched.Running() {
			if e := expiry(seq.Item.Ref); e > 0 && e <= clock {
				if err := sched.Remove(seq.ID); err != nil {
					return err
				}
				cancel(seq.Item.Ref, seq.Item.OutputLen-seq.Remaining)
			}
		}
		return nil
	}
	// ingest moves due arrivals into the waiting queue, shedding when the
	// backlog is full and cancelling dead-on-arrival requests.
	ingest := func() {
		for next < len(reqs) && reqs[next].Arrival <= clock {
			i := next
			next++
			if e := expiry(i); e > 0 && e <= clock {
				cancel(i, 0)
				continue
			}
			if cfg.QueueDepth > 0 && len(waiting) >= cfg.QueueDepth {
				r := &out.Requests[i]
				r.Outcome = ReplayShed
				r.Finish = clock
				out.Shed++
				continue
			}
			waiting = append(waiting, i)
		}
	}

	for next < len(reqs) || len(waiting) > 0 || sched.Busy() {
		if err := reap(); err != nil {
			return ReplayResult{}, fmt.Errorf("gateway: replay reap: %w", err)
		}
		ingest()
		if next >= len(reqs) && len(waiting) == 0 && !sched.Busy() {
			break
		}
		progressed, err := batchpolicy.Round(sched, hooks)
		if err != nil {
			if costErr != nil {
				return ReplayResult{}, costErr
			}
			return ReplayResult{}, fmt.Errorf("gateway: replay: %w", err)
		}
		if !progressed {
			// Nothing could run. Jump the clock to the next thing that
			// changes the world: an arrival, or the expiry of a starved
			// waiting/requeued request. If neither exists the trace is
			// stuck — the KV budget cannot hold what remains.
			var wake units.Seconds
			consider := func(t units.Seconds) {
				if t > clock && (wake == 0 || t < wake) {
					wake = t
				}
			}
			if next < len(reqs) {
				consider(reqs[next].Arrival)
			}
			for _, i := range waiting {
				if e := expiry(i); e > 0 {
					consider(e)
				}
			}
			if wake == 0 {
				return ReplayResult{}, fmt.Errorf("gateway: replay: KV budget %v cannot hold the next request", cfg.KVBudget)
			}
			clock = wake
			continue
		}
		if clock > out.Makespan {
			out.Makespan = clock
		}
	}
	return out, nil
}
