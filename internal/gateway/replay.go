package gateway

import (
	"fmt"

	"github.com/lia-sim/lia/internal/batchpolicy"
	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/model"
	"github.com/lia-sim/lia/internal/serve"
	"github.com/lia-sim/lia/internal/units"
)

// ReplayRequest is one request in a deterministic replay: lengths only,
// plus a virtual arrival time.
type ReplayRequest struct {
	PromptLen, OutputLen int
	Arrival              units.Seconds
}

// ReplayConfig parameterizes a replay. The pool is constructed exactly
// as the simulator constructs its own (kvpage.ForModel over the same
// model config), and Costs is the same injected fake engine type
// serve.Config.StepCosts takes — the differential test hands one value
// to both sides.
type ReplayConfig struct {
	MaxBatch      int
	Model         model.Config
	KVBudget      units.Bytes
	KVBlockTokens int
	Costs         *serve.StepCosts
}

// ReplayResult is the replay's observable behaviour: the full ordered
// scheduling-decision stream plus summary counts.
type ReplayResult struct {
	Events      []batchpolicy.Event
	Completed   int
	Preemptions int
	Makespan    units.Seconds
}

// Replay drives the gateway's batcher loop — the same batchpolicy.Round
// skeleton run(
// ) uses — over a virtual clock and the injected cost model,
// with arrivals released by time instead of a live queue. The
// differential test replays one trace through this and through
// serve.SimulateContinuous and requires bit-identical event streams:
// same admissions, same preemption victims, same completion order.
func Replay(cfg ReplayConfig, reqs []ReplayRequest) (ReplayResult, error) {
	if cfg.MaxBatch < 1 {
		return ReplayResult{}, fmt.Errorf("gateway: replay MaxBatch must be ≥1, got %d", cfg.MaxBatch)
	}
	if cfg.Costs == nil || cfg.Costs.Prefill == nil || cfg.Costs.Decode == nil {
		return ReplayResult{}, fmt.Errorf("gateway: replay requires injected step costs")
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			return ReplayResult{}, fmt.Errorf("gateway: replay requests not sorted by arrival")
		}
	}
	var pool *kvpage.Manager
	if cfg.KVBudget > 0 {
		blockTokens := cfg.KVBlockTokens
		if blockTokens <= 0 {
			blockTokens = 16
		}
		var err error
		pool, err = kvpage.ForModel(cfg.KVBudget, blockTokens, cfg.Model)
		if err != nil {
			return ReplayResult{}, err
		}
	}
	sched, err := batchpolicy.NewScheduler(cfg.MaxBatch, pool)
	if err != nil {
		return ReplayResult{}, err
	}

	var (
		out     ReplayResult
		clock   units.Seconds
		next    int
		costErr error
	)
	sched.OnEvent = func(e batchpolicy.Event) {
		out.Events = append(out.Events, e)
		if e.Kind == batchpolicy.EventPreempt {
			out.Preemptions++
		}
		if e.Kind == batchpolicy.EventComplete {
			out.Completed++
		}
	}
	hooks := batchpolicy.Hooks{
		Waiting: func() []batchpolicy.Item {
			var waiting []batchpolicy.Item
			for i := next; i < len(reqs) && reqs[i].Arrival <= clock; i++ {
				waiting = append(waiting, batchpolicy.Item{Ref: i, PromptLen: reqs[i].PromptLen, OutputLen: reqs[i].OutputLen})
			}
			return waiting
		},
		Consumed: func(n int) { next += n },
		Prefill: func(admitted []batchpolicy.Seq) error {
			maxIn := 1
			for _, a := range admitted {
				if a.Item.PromptLen > maxIn {
					maxIn = a.Item.PromptLen
				}
			}
			c, err := cfg.Costs.Prefill(len(admitted), maxIn)
			if err != nil {
				costErr = err
				return err
			}
			clock += c
			return nil
		},
		Step: func(running []batchpolicy.Seq) error {
			var ctxSum int
			for _, a := range running {
				ctxSum += a.Context
			}
			c, err := cfg.Costs.Decode(len(running), ctxSum/len(running))
			if err != nil {
				costErr = err
				return err
			}
			clock += c
			return nil
		},
	}

	for next < len(reqs) || sched.Busy() {
		progressed, err := batchpolicy.Round(sched, hooks)
		if err != nil {
			if costErr != nil {
				return ReplayResult{}, costErr
			}
			return ReplayResult{}, fmt.Errorf("gateway: replay: %w", err)
		}
		if !progressed {
			if sched.RequeuedLen() > 0 || next >= len(reqs) || reqs[next].Arrival <= clock {
				return ReplayResult{}, fmt.Errorf("gateway: replay: KV budget %v cannot hold the next request", cfg.KVBudget)
			}
			clock = reqs[next].Arrival
			continue
		}
		if clock > out.Makespan {
			out.Makespan = clock
		}
	}
	return out, nil
}
