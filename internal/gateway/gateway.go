// Package gateway is the live serving layer over the functional
// inference engine: a bounded admission queue in front of an
// iteration-level continuous batcher that drives llm.Executor under
// concurrent traffic. Scheduling — FIFO admission with eager KV-block
// reservation, youngest-first preemption, immediate retirement — is the
// batchpolicy package, the exact same state machine the serving
// simulator (internal/serve) runs; the differential test replays one
// trace through both and requires identical event streams.
//
// Concurrency model: every client goroutine talks to the single batcher
// goroutine through a bounded channel, and all scheduler/engine state is
// confined to the batcher. Responses travel over per-request buffered
// channels, so the batcher never blocks on a slow or departed client;
// metrics are lock-free atomics, the only state shared both ways.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lia-sim/lia/internal/batchpolicy"
	"github.com/lia-sim/lia/internal/hw"
	"github.com/lia-sim/lia/internal/kvpage"
	"github.com/lia-sim/lia/internal/kvprefix"
	"github.com/lia-sim/lia/internal/llm"
	"github.com/lia-sim/lia/internal/offload"
	"github.com/lia-sim/lia/internal/units"
)

// Errors a Submit can return, beyond the caller's own context errors.
var (
	// ErrOverloaded: the admission queue is full; shed and retry later
	// (HTTP 429).
	ErrOverloaded = errors.New("gateway: overloaded, admission queue full")
	// ErrShuttingDown: the gateway no longer accepts work (HTTP 503).
	ErrShuttingDown = errors.New("gateway: shutting down")
)

// Config parameterizes the gateway.
type Config struct {
	// MaxBatch caps the running batch (default 8).
	MaxBatch int
	// QueueDepth bounds the admission queue; a full queue sheds new
	// submissions with ErrOverloaded instead of queueing unboundedly
	// (default 64).
	QueueDepth int
	// MaxNewTokens caps a single request's generation length (default:
	// whatever fits the model's MaxSeqLen).
	MaxNewTokens int
	// KVBudget, when positive, bounds the paged KV pool; admission then
	// reserves blocks eagerly and exhaustion preempts youngest-first.
	KVBudget units.Bytes
	// KVBlockTokens is the KV page size in token slots (default 16).
	KVBlockTokens int
	// Offload, when set, is the tiered-memory runtime hosting the
	// executor's weights and KV cache. Admission then consults the tiered
	// capacity — a zero KVBudget is filled in from the host's KV-tier
	// budget — and the host's per-tier counters render into /metrics
	// alongside the gateway's own.
	Offload *offload.Host
	// PrefixCache enables cross-request KV reuse: a radix tree over the
	// paged pool caches prompt prefixes at block granularity, admission
	// charges only a prompt's unshared suffix, and prefill skips the
	// cached tokens. Generated tokens stay bit-identical to the cache-off
	// path. With an Offload host, cold prefix nodes spill to the DDR/CXL
	// tiers instead of being evicted. Off by default.
	PrefixCache bool
	// PrefixMaxBlocks bounds the cache's residency when no KV pool is
	// configured (ignored otherwise; default 1024).
	PrefixMaxBlocks int
	// PrefillChunk, when positive, prefills admitted prompts in fixed-
	// size chunks interleaved with the running batch's decode rounds, so
	// one long arrival stops stalling everyone else's inter-token latency
	// and queued work's TTFT. Tokens stay bit-identical to monolithic
	// prefill (INT8 executors fall back internally). Off (monolithic) by
	// default.
	PrefillChunk int
	// SpecGamma, when positive, decodes speculatively: a shallow draft
	// sharing the target's weights proposes up to γ tokens per round and
	// the target verifies them all in one multi-row pass, emitting
	// 1+accepted tokens per target pass. Greedy acceptance keeps the
	// streams bit-identical to plain decode. Requires the BF16 path
	// without an Offload host. Off by default.
	SpecGamma int
	// SpecDraftLayers is the draft model's depth (default 1).
	SpecDraftLayers int
	// Quant selects the executor's weight tier: "" or "dense" (BF16),
	// "sparse" (block-sparse AMX — zero tile blocks skip their loads and
	// TDP), "int4lut" (INT4 group quantization through the LUT-GEMV
	// kernel), "int8" (W8A8 TDPBUSD), or "sparse-int8" (block-pruned W8A8
	// whose prepacked image skips zero blocks). The gateway applies the
	// tier to the executor before serving; lia_quant_* gauges report the
	// resulting footprint.
	Quant string
	// QuantSparsity is the sparse tiers' zero-block fraction (default 0.5).
	QuantSparsity float64
	// QuantGroup is the int4lut tier's group length (default
	// quant.DefaultGroupINT4).
	QuantGroup int
	// TPWays, when ≥2, shards the executor tensor-parallel across that
	// many virtual GPUs over an NVLink3 fabric (llm.EnableTP): one
	// replica serving as a multi-GPU node. Tokens stay bit-identical;
	// the executor's TPStats ledger prices the virtual all-reduces.
	// Requires the dense BF16 tier. 0 (off) by default.
	TPWays int
	// OnEvent, when set, observes every scheduler event the batcher
	// sees (admissions, preemptions, evictions, removals) after the
	// gateway's own counters update. The router's differential tests
	// use it to compare event streams. Called on the batcher goroutine —
	// keep it fast and do not call back into the gateway.
	OnEvent func(batchpolicy.Event)
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.Offload != nil && c.KVBudget == 0 {
		c.KVBudget = c.Offload.KVBudget()
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.KVBlockTokens == 0 {
		c.KVBlockTokens = 16
	}
	if c.SpecGamma > 0 && c.SpecDraftLayers == 0 {
		c.SpecDraftLayers = 1
	}
	if (c.Quant == "sparse" || c.Quant == "sparse-int8") && c.QuantSparsity == 0 {
		c.QuantSparsity = 0.5
	}
	return c
}

// Validate reports configuration errors (after defaulting).
func (c Config) Validate() error {
	if c.MaxBatch < 1 {
		return fmt.Errorf("gateway: MaxBatch must be ≥1, got %d", c.MaxBatch)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("gateway: QueueDepth must be ≥1, got %d", c.QueueDepth)
	}
	if c.MaxNewTokens < 0 {
		return fmt.Errorf("gateway: MaxNewTokens must be ≥0, got %d", c.MaxNewTokens)
	}
	if c.KVBudget < 0 {
		return fmt.Errorf("gateway: KVBudget must be ≥0, got %v", c.KVBudget)
	}
	if c.PrefillChunk < 0 {
		return fmt.Errorf("gateway: PrefillChunk must be ≥0, got %d", c.PrefillChunk)
	}
	if c.SpecGamma < 0 {
		return fmt.Errorf("gateway: SpecGamma must be ≥0, got %d", c.SpecGamma)
	}
	if c.SpecGamma > 0 {
		if c.SpecDraftLayers < 1 {
			return fmt.Errorf("gateway: SpecDraftLayers must be ≥1, got %d", c.SpecDraftLayers)
		}
		if c.Offload != nil {
			return fmt.Errorf("gateway: speculative decoding does not compose with tiered-memory offload")
		}
	}
	switch c.Quant {
	case "", "dense", "sparse", "int4lut", "int8", "sparse-int8":
	default:
		return fmt.Errorf("gateway: unknown quant tier %q (want dense, sparse, int4lut, int8 or sparse-int8)", c.Quant)
	}
	if c.QuantSparsity < 0 || c.QuantSparsity >= 1 {
		return fmt.Errorf("gateway: QuantSparsity must be in [0,1), got %g", c.QuantSparsity)
	}
	if c.QuantGroup < 0 {
		return fmt.Errorf("gateway: QuantGroup must be ≥0, got %d", c.QuantGroup)
	}
	if c.TPWays < 0 || c.TPWays == 1 {
		return fmt.Errorf("gateway: TPWays must be 0 (off) or ≥2, got %d", c.TPWays)
	}
	if c.TPWays >= 2 {
		switch c.Quant {
		case "", "dense":
		default:
			return fmt.Errorf("gateway: tensor parallelism requires the dense tier, got %q", c.Quant)
		}
	}
	return nil
}

// Result is one served request's output and timing.
type Result struct {
	// Tokens is the generated token stream, bit-identical to a solo
	// Generate call with the same prompt and length.
	Tokens []int
	// QueueWait is enqueue → first admission, TTFT enqueue → first token
	// available, Total enqueue → completion.
	QueueWait, TTFT, Total time.Duration
}

// outcome is what the batcher sends back over a request's response
// channel (buffered, so the batcher never blocks on delivery).
type outcome struct {
	res Result
	err error
}

// pending is one submitted request travelling from a client goroutine to
// the batcher.
type pending struct {
	ctx      context.Context
	prompt   []int
	n        int
	enqueued time.Time
	resp     chan outcome // buffered(1); batcher sends exactly once
}

// Gateway serves generation requests over one shared Executor.
type Gateway struct {
	cfg  Config
	exec *llm.Executor
	m    *metrics

	submit chan *pending
	stop   chan struct{} // closed by Shutdown: refuse new work, drain
	kill   chan struct{} // closed when the drain deadline passes: abort
	done   chan struct{} // closed when the batcher exits

	stopOnce sync.Once
	killOnce sync.Once

	poolTotalBlocks int // for the can-ever-fit admission check (0 = unconstrained)
	blockTokens     int

	// Load gauges the batcher publishes each round for the router's
	// health probes (the pool itself is batcher-confined).
	kvFree  atomic.Int64
	running atomic.Int64

	tree   *kvprefix.Tree  // prefix cache (nil when disabled)
	prefix *prefixAdmitter // pooled admission through the tree (nil when pool-less or disabled)

	draft *llm.Executor // speculative draft (nil when SpecGamma is 0)
}

// New starts a gateway over the executor. The batcher goroutine runs
// until Shutdown.
func New(exec *llm.Executor, cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Apply the weight tier before anything reads the executor (the
	// speculative-decode check below sees the final tier, and the batcher
	// never observes a tier change mid-serve).
	switch cfg.Quant {
	case "sparse":
		exec.EnableSparse(cfg.QuantSparsity)
	case "int4lut":
		exec.EnableINT4LUT(cfg.QuantGroup)
	case "int8":
		exec.EnableINT8()
	case "sparse-int8":
		exec.EnableSparseINT8(cfg.QuantSparsity)
	}
	if cfg.TPWays >= 2 {
		if err := exec.EnableTP(cfg.TPWays, hw.NVLink3); err != nil {
			return nil, err
		}
	}
	var pool *kvpage.Manager
	if cfg.KVBudget > 0 {
		var err error
		pool, err = kvpage.ForModel(cfg.KVBudget, cfg.KVBlockTokens, exec.Model.Cfg)
		if err != nil {
			return nil, err
		}
	}
	g := &Gateway{
		cfg:    cfg,
		exec:   exec,
		m:      newMetrics(),
		submit: make(chan *pending, cfg.QueueDepth),
		stop:   make(chan struct{}),
		kill:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	var sched *batchpolicy.Scheduler
	var err error
	if cfg.PrefixCache {
		var spiller kvprefix.Spiller
		if cfg.Offload != nil {
			spiller = cfg.Offload.PrefixStore()
		}
		g.tree, err = kvprefix.New(kvprefix.Config{
			BlockTokens: cfg.KVBlockTokens,
			Layers:      len(exec.Model.Layers),
			Pool:        pool,
			MaxBlocks:   cfg.PrefixMaxBlocks,
			Spiller:     spiller,
		})
		if err != nil {
			return nil, err
		}
	}
	if g.tree != nil && pool != nil {
		// Admission goes through the tree: charge only unshared suffixes.
		g.prefix = newPrefixAdmitter(pool, g.tree)
		sched, err = batchpolicy.NewSchedulerKV(cfg.MaxBatch, g.prefix)
	} else {
		sched, err = batchpolicy.NewScheduler(cfg.MaxBatch, pool)
	}
	if err != nil {
		return nil, err
	}
	if pool != nil {
		g.poolTotalBlocks = pool.TotalBlocks()
		g.blockTokens = pool.BlockTokens()
		g.kvFree.Store(int64(pool.FreeBlocks()))
	}
	// The scheduler's event stream is the batcher's only view of
	// preemptions and mid-flight removals (cancel/deadline reaping); both
	// feed counters the scenario harness reads.
	sched.OnEvent = func(e batchpolicy.Event) {
		switch e.Kind {
		case batchpolicy.EventPreempt:
			g.m.preempted.Add(1)
		case batchpolicy.EventRemove:
			g.m.reaped.Add(1)
		}
		if cfg.OnEvent != nil {
			cfg.OnEvent(e)
		}
	}
	if err := sched.SetChunk(cfg.PrefillChunk); err != nil {
		return nil, err
	}
	if cfg.SpecGamma > 0 {
		if exec.INT8() || exec.Mem != nil {
			return nil, fmt.Errorf("gateway: speculative decoding requires a BF16 executor without a memory host")
		}
		draftM, err := llm.DraftModel(exec.Model, cfg.SpecDraftLayers)
		if err != nil {
			return nil, err
		}
		g.draft = llm.NewExecutor(draftM, exec.Policy)
	}
	go g.run(sched)
	return g, nil
}

// validate rejects work that could never be served, before it occupies a
// queue slot: degenerate shapes, prompts past the context window or the
// vocabulary, and prompts no amount of KV-pool draining could place.
func (g *Gateway) validate(prompt []int, n int) error {
	if n < 1 {
		return fmt.Errorf("gateway: must request at least one token, got %d", n)
	}
	if g.cfg.MaxNewTokens > 0 && n > g.cfg.MaxNewTokens {
		return fmt.Errorf("gateway: %d tokens requested, cap is %d", n, g.cfg.MaxNewTokens)
	}
	cfg := g.exec.Model.Cfg
	if len(prompt) == 0 {
		return fmt.Errorf("gateway: empty prompt")
	}
	if len(prompt)+n-1 > cfg.MaxSeqLen {
		return fmt.Errorf("gateway: prompt %d + %d generated tokens exceeds max sequence length %d",
			len(prompt), n, cfg.MaxSeqLen)
	}
	for i, tok := range prompt {
		if tok < 0 || tok >= cfg.VocabSize {
			return fmt.Errorf("gateway: prompt token %d (%d) outside vocabulary [0,%d)", i, tok, cfg.VocabSize)
		}
	}
	if g.poolTotalBlocks > 0 {
		need := (len(prompt)+g.blockTokens-1)/g.blockTokens + 1
		if need > g.poolTotalBlocks {
			return fmt.Errorf("gateway: prompt needs %d KV blocks, pool holds %d", need, g.poolTotalBlocks)
		}
	}
	return nil
}

// Submit enqueues a generation request and blocks until it completes,
// the context is canceled, or the gateway sheds or refuses it. The
// returned tokens are bit-identical to Executor.Generate(prompt, n).
func (g *Gateway) Submit(ctx context.Context, prompt []int, n int) (Result, error) {
	if err := g.validate(prompt, n); err != nil {
		g.m.rejected.Add(1)
		return Result{}, err
	}
	select {
	case <-g.stop:
		return Result{}, ErrShuttingDown
	default:
	}
	p := &pending{
		ctx:      ctx,
		prompt:   prompt,
		n:        n,
		enqueued: time.Now(),
		resp:     make(chan outcome, 1),
	}
	select {
	case g.submit <- p:
		g.m.received.Add(1)
	default:
		g.m.shed.Add(1)
		return Result{}, ErrOverloaded
	}
	select {
	case out := <-p.resp:
		return g.deliver(out)
	case <-ctx.Done():
		// Prefer a response that raced in just before the cancel; else
		// the batcher notices the canceled context on its next iteration
		// and discards the work (the buffered channel means it never
		// blocks on us having left).
		select {
		case out := <-p.resp:
			return g.deliver(out)
		default:
			g.m.canceled.Add(1)
			return Result{}, ctx.Err()
		}
	case <-g.done:
		// The batcher exited between our enqueue and its final drain.
		// Prefer a response it may have buffered just before exiting.
		select {
		case out := <-p.resp:
			return g.deliver(out)
		default:
			return Result{}, ErrShuttingDown
		}
	}
}

// deliver finalizes a batcher response on the client's goroutine.
// Outcome counters live here, on the side that actually observes the
// outcome, so completed/canceled/shed always sum to what clients saw —
// counting completions in the batcher would race a client taking the
// cancellation branch.
func (g *Gateway) deliver(out outcome) (Result, error) {
	switch {
	case out.err == nil:
		g.m.completed.Add(1)
	case errors.Is(out.err, context.Canceled), errors.Is(out.err, context.DeadlineExceeded):
		// The batcher reaped this request against its budget before the
		// client's own context watcher fired; it is a cancel either way.
		g.m.canceled.Add(1)
	}
	return out.res, out.err
}

// Shutdown stops admission immediately, drains in-flight and queued work,
// and returns when the batcher has exited. If ctx expires first the
// drain is aborted: outstanding requests are failed with ErrShuttingDown
// and the context's error is returned.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.stopOnce.Do(func() { close(g.stop) })
	select {
	case <-g.done:
		return nil
	case <-ctx.Done():
		g.killOnce.Do(func() { close(g.kill) })
		<-g.done
		return ctx.Err()
	}
}

// Snapshot returns the current counters and latency summaries.
func (g *Gateway) Snapshot() Snapshot {
	s := g.m.snapshot()
	// Tier identity and footprint are immutable after New, so reading the
	// executor here is race-free.
	s.QuantTier = g.exec.QuantTier()
	s.WeightFootprintBytes = uint64(g.exec.WeightFootprint())
	return s
}

// Prometheus renders the metrics in Prometheus text format. With an
// offload host configured, the tiered-memory counters
// (lia_offload_*) follow the gateway's own; with the prefix cache on,
// the lia_prefix_* counters follow too.
func (g *Gateway) Prometheus() string {
	out := g.m.prometheus() + quantProm(g.exec)
	if g.cfg.Offload != nil {
		out += g.cfg.Offload.Prometheus()
	}
	if st, ok := g.PrefixStats(); ok {
		out += prefixProm(st)
	}
	return out
}

// Draining reports whether Shutdown has begun.
func (g *Gateway) Draining() bool {
	select {
	case <-g.stop:
		return true
	default:
		return false
	}
}

// Health is the load signal a router's placement scorer reads: queue
// occupancy, in-flight batch size, and KV-pool headroom. The KV gauges
// are published by the batcher once per round (the pool itself is
// confined to the batcher goroutine), so they trail the true pool state
// by at most one scheduling round.
type Health struct {
	// QueueLen and QueueCap are the admission queue's occupancy and bound.
	QueueLen, QueueCap int
	// Running is the in-flight batch size as of the last round.
	Running int
	// KVFreeBlocks and KVTotalBlocks are the paged pool's headroom and
	// capacity (both 0 when serving without a KV budget).
	KVFreeBlocks, KVTotalBlocks int
	// Draining reports whether Shutdown has begun.
	Draining bool
}

// Health returns the gateway's current load signal. Safe to call from
// any goroutine.
func (g *Gateway) Health() Health {
	return Health{
		QueueLen:      len(g.submit),
		QueueCap:      g.cfg.QueueDepth,
		Running:       int(g.running.Load()),
		KVFreeBlocks:  int(g.kvFree.Load()),
		KVTotalBlocks: g.poolTotalBlocks,
		Draining:      g.Draining(),
	}
}
